// Figures 5 & 6: throughput/latency trends with increasing client counts,
// TAO (fig 5) and DFLT (fig 6), in-memory and out-of-core (simulated).
// Paper shape: LiveGraph's peak throughput far above both baselines in
// memory (8.77M vs 3.24M reqs/s for TAO); out of core the gap narrows and
// RocksDB overtakes LMDB.
//
// `--json` emits one machine-readable document (the BENCH_shard.json
// record shape: one row per system/clients point) instead of the tables.
#include <cstring>
#include <vector>

#include "bench/linkbench_tables.h"

namespace livegraph::bench {
namespace {

struct Row {
  const char* figure;
  const char* panel;
  const char* system;
  int clients;
  double throughput;
  double mean_ms;
};

void Series(const char* figure, const char* panel, const LinkBenchMix& mix,
            bool out_of_core, bool json, std::vector<Row>* rows) {
  if (!json) {
    std::printf("\n=== %s (%s) ===\n", figure, panel);
    std::printf("%-12s %8s %14s %12s\n", "system", "clients", "reqs/s",
                "mean(ms)");
  }
  std::vector<int> client_counts;
  for (int64_t c : {2, 4, 8, 16, 24}) {
    if (c <= EnvInt("LG_MAX_CLIENTS", 16)) {
      client_counts.push_back(static_cast<int>(c));
    }
  }
  for (const char* system : {"LiveGraph", "LSMT", "BTree"}) {
    LinkBenchConfig config = DefaultLinkBenchConfig();
    config.mix = mix;
    config.ops_per_client = static_cast<uint64_t>(
        EnvInt("LG_OPS", out_of_core ? 2'000 : 10'000));
    std::unique_ptr<PageCacheSim> pagesim;
    if (out_of_core) {
      size_t dataset_pages = (uint64_t{1} << config.scale) * 5 *
                             (config.payload_bytes + 64) / 4096;
      pagesim =
          std::make_unique<PageCacheSim>(PageCacheSim::Optane(dataset_pages / 8));
    }
    auto store = MakeStore(system, pagesim.get(),
                           /*wal=*/system == std::string("LiveGraph"));
    vertex_t n = LoadLinkBenchGraph(store.get(), config);
    for (int clients : client_counts) {
      config.clients = clients;
      DriverResult result = RunLinkBench(store.get(), config, n);
      rows->push_back(Row{figure, panel, system, clients,
                          result.throughput(),
                          result.overall.MeanMillis()});
      if (!json) {
        std::printf("%-12s %8d %14.0f %12.4f\n", system, clients,
                    result.throughput(), result.overall.MeanMillis());
      }
    }
  }
}

}  // namespace
}  // namespace livegraph::bench

int main(int argc, char** argv) {
  using namespace livegraph::bench;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  std::vector<Row> rows;
  Series("Figure 5: TAO throughput vs latency", "a: in memory",
         livegraph::TaoMix(), false, json, &rows);
  Series("Figure 5: TAO throughput vs latency", "c: out of core (Optane sim)",
         livegraph::TaoMix(), true, json, &rows);
  Series("Figure 6: DFLT throughput vs latency", "a: in memory",
         livegraph::DfltMix(), false, json, &rows);
  Series("Figure 6: DFLT throughput vs latency", "c: out of core (Optane sim)",
         livegraph::DfltMix(), true, json, &rows);
  if (json) {
    std::printf("{\n  \"bench\": \"fig5_fig6_throughput\",\n  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      std::printf("    {\"figure\": \"%s\", \"panel\": \"%s\", "
                  "\"system\": \"%s\", \"clients\": %d, "
                  "\"throughput\": %.0f, \"mean_ms\": %.4f}%s\n",
                  rows[i].figure, rows[i].panel, rows[i].system,
                  rows[i].clients, rows[i].throughput, rows[i].mean_ms,
                  i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  }
  return 0;
}
