// Figures 5 & 6: throughput/latency trends with increasing client counts,
// TAO (fig 5) and DFLT (fig 6), in-memory and out-of-core (simulated).
// Paper shape: LiveGraph's peak throughput far above both baselines in
// memory (8.77M vs 3.24M reqs/s for TAO); out of core the gap narrows and
// RocksDB overtakes LMDB.
#include <vector>

#include "bench/linkbench_tables.h"

namespace livegraph::bench {
namespace {

void Series(const char* figure, const char* panel, const LinkBenchMix& mix,
            bool out_of_core) {
  std::printf("\n=== %s (%s) ===\n", figure, panel);
  std::printf("%-12s %8s %14s %12s\n", "system", "clients", "reqs/s",
              "mean(ms)");
  std::vector<int> client_counts;
  for (int64_t c : {2, 4, 8, 16, 24}) {
    if (c <= EnvInt("LG_MAX_CLIENTS", 16)) {
      client_counts.push_back(static_cast<int>(c));
    }
  }
  for (const char* system : {"LiveGraph", "LSMT", "BTree"}) {
    LinkBenchConfig config = DefaultLinkBenchConfig();
    config.mix = mix;
    config.ops_per_client = static_cast<uint64_t>(
        EnvInt("LG_OPS", out_of_core ? 2'000 : 10'000));
    std::unique_ptr<PageCacheSim> pagesim;
    if (out_of_core) {
      size_t dataset_pages = (uint64_t{1} << config.scale) * 5 *
                             (config.payload_bytes + 64) / 4096;
      pagesim =
          std::make_unique<PageCacheSim>(PageCacheSim::Optane(dataset_pages / 8));
    }
    auto store = MakeStore(system, pagesim.get(),
                           /*wal=*/system == std::string("LiveGraph"));
    vertex_t n = LoadLinkBenchGraph(store.get(), config);
    for (int clients : client_counts) {
      config.clients = clients;
      DriverResult result = RunLinkBench(store.get(), config, n);
      std::printf("%-12s %8d %14.0f %12.4f\n", system, clients,
                  result.throughput(), result.overall.MeanMillis());
    }
  }
}

}  // namespace
}  // namespace livegraph::bench

int main() {
  using namespace livegraph::bench;
  Series("Figure 5: TAO throughput vs latency", "a: in memory",
         livegraph::TaoMix(), false);
  Series("Figure 5: TAO throughput vs latency", "c: out of core (Optane sim)",
         livegraph::TaoMix(), true);
  Series("Figure 6: DFLT throughput vs latency", "a: in memory",
         livegraph::DfltMix(), false);
  Series("Figure 6: DFLT throughput vs latency", "c: out of core (Optane sim)",
         livegraph::DfltMix(), true);
  return 0;
}
