// Table 10: iterative analytics — PageRank (20 iters) and Connected
// Components on the SNB person-knows subgraph, run (a) in-situ on the
// LiveGraph snapshot and (b) on the Gemini-style CSR engine including the
// ETL export it requires. Paper: LiveGraph reaches 58.6% / 24.6% of
// Gemini's PageRank/ConnComp speed, but ETL alone (1520ms) dwarfs both
// kernel times — end-to-end, in-situ wins.
#include "analytics/conncomp.h"
#include "analytics/etl.h"
#include "analytics/pagerank.h"
#include "analytics/static_engine.h"
#include "bench/bench_common.h"
#include "snb/datagen.h"

int main() {
  using namespace livegraph;
  using namespace livegraph::bench;
  using namespace livegraph::snb;
  using livegraph::Csr;
  using livegraph::ExportToCsr;
  using livegraph::PageRankOptions;

  DatagenOptions datagen;
  datagen.scale_factor = EnvDouble("LG_SF", 8.0);
  LiveGraphStore store(BenchGraphOptions());
  SnbDataset data = GenerateSnb(&store, datagen);
  const int threads = static_cast<int>(EnvInt("LG_THREADS", 8));

  auto snapshot = store.graph().BeginReadOnlyTransaction();

  PageRankOptions pr;
  pr.threads = threads;

  // In-situ on the latest snapshot: zero ETL.
  Timer t1;
  auto ranks = livegraph::PageRankOnSnapshot(snapshot, kKnows, pr);
  double livegraph_pr_ms = t1.Millis();
  Timer t2;
  auto comps = livegraph::ConnCompOnSnapshot(snapshot, kKnows, threads);
  double livegraph_cc_ms = t2.Millis();

  // Dedicated engine: pay the export first.
  Timer t3;
  Csr csr = ExportToCsr(snapshot, kKnows, threads);
  double etl_ms = t3.Millis();
  livegraph::StaticGraphEngine engine(std::move(csr));
  Timer t4;
  auto engine_ranks = engine.PageRank(pr);
  double engine_pr_ms = t4.Millis();
  Timer t5;
  auto engine_comps = engine.ConnComp(threads);
  double engine_cc_ms = t5.Millis();

  std::printf("=== Table 10: ETL and execution times (ms) ===\n");
  std::printf("(knows subgraph: %zu persons, %lld edges)\n",
              data.persons.size(),
              static_cast<long long>(engine.csr().edge_count()));
  std::printf("%-12s %12s %14s\n", "task", "LiveGraph", "StaticEngine");
  std::printf("%-12s %12s %14.1f\n", "ETL", "-", etl_ms);
  std::printf("%-12s %12.1f %14.1f\n", "PageRank", livegraph_pr_ms,
              engine_pr_ms);
  std::printf("%-12s %12.1f %14.1f\n", "ConnComp", livegraph_cc_ms,
              engine_cc_ms);
  std::printf("\nend-to-end: LiveGraph %.1f ms vs StaticEngine %.1f ms "
              "(incl. ETL)\n", livegraph_pr_ms + livegraph_cc_ms,
              etl_ms + engine_pr_ms + engine_cc_ms);
  std::printf("paper shape: engine kernels faster, but ETL dominates "
              "end-to-end\n");
  // Keep results alive so the compiler cannot elide the computations.
  if (ranks.size() != engine_ranks.size() || comps.size() != engine_comps.size()) {
    std::printf("WARNING: result size mismatch\n");
    return 1;
  }
  return 0;
}
