// Table 10: iterative analytics — PageRank (20 iters) and Connected
// Components on the SNB person-knows subgraph, run (a) in-situ on the
// LiveGraph snapshot and (b) on the Gemini-style CSR engine including the
// ETL export it requires. Paper: LiveGraph reaches 58.6% / 24.6% of
// Gemini's PageRank/ConnComp speed, but ETL alone (1520ms) dwarfs both
// kernel times — end-to-end, in-situ wins.
//
// `--shards=N` loads the same dataset into the hash-partitioned
// ShardedLiveGraph and fans the in-situ kernels out across the shards: one
// pinned snapshot per shard, one shared frontier (docs/SHARDING.md). The
// CSR engine rows then include the cross-shard export in their ETL cost.
// `--json` emits one machine-readable document (BENCH_shard.json-style
// records) instead of the human table.
#include <cstring>

#include "analytics/conncomp.h"
#include "analytics/etl.h"
#include "analytics/pagerank.h"
#include "analytics/static_engine.h"
#include "bench/bench_common.h"
#include "shard/sharded_store.h"
#include "snb/datagen.h"

int main(int argc, char** argv) {
  using namespace livegraph;
  using namespace livegraph::bench;
  using namespace livegraph::snb;
  using livegraph::Csr;
  using livegraph::ExportToCsr;
  using livegraph::PageRankOptions;

  bool json = false;
  int shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    }
  }

  DatagenOptions datagen;
  datagen.scale_factor = EnvDouble("LG_SF", 8.0);
  const int threads = static_cast<int>(EnvInt("LG_THREADS", 8));
  PageRankOptions pr;
  pr.threads = threads;

  std::unique_ptr<Store> store = MakeStore("LiveGraph", nullptr,
                                           /*wal=*/false, shards);
  SnbDataset data = GenerateSnb(store.get(), datagen);

  // In-situ on the latest snapshot: zero ETL. Sharded runs pin one
  // snapshot per shard (a consistent epoch vector) and share the frontier.
  double livegraph_pr_ms = 0, livegraph_cc_ms = 0;
  double etl_ms = 0, engine_pr_ms = 0, engine_cc_ms = 0;
  size_t ranks_size = 0, comps_size = 0;
  int64_t edge_count = 0;
  size_t engine_ranks_size = 0, engine_comps_size = 0;

  auto run_static = [&](Csr csr) {
    livegraph::StaticGraphEngine engine(std::move(csr));
    edge_count = engine.csr().edge_count();
    Timer t_pr;
    engine_ranks_size = engine.PageRank(pr).size();
    engine_pr_ms = t_pr.Millis();
    Timer t_cc;
    engine_comps_size = engine.ConnComp(threads).size();
    engine_cc_ms = t_cc.Millis();
  };

  if (shards > 1) {
    auto* sharded = static_cast<ShardedStore*>(store.get());
    std::vector<ReadTransaction> snapshots = sharded->PinShardSnapshots();
    Timer t1;
    ranks_size = PageRankOnShardSnapshots(snapshots, kKnows, pr).size();
    livegraph_pr_ms = t1.Millis();
    Timer t2;
    comps_size =
        ConnCompOnShardSnapshots(snapshots, kKnows, threads).size();
    livegraph_cc_ms = t2.Millis();
    // Dedicated engine: the same threads-way two-pass export as the
    // single-engine run, with each vertex's scan routed to its owner shard
    // — the ETL rows compare apples to apples across shard counts.
    Timer t3;
    Csr csr = ExportToCsr(snapshots, kKnows, threads);
    etl_ms = t3.Millis();
    run_static(std::move(csr));
  } else {
    auto& graph = static_cast<LiveGraphStore*>(store.get())->graph();
    auto snapshot = graph.BeginReadOnlyTransaction();
    Timer t1;
    ranks_size = livegraph::PageRankOnSnapshot(snapshot, kKnows, pr).size();
    livegraph_pr_ms = t1.Millis();
    Timer t2;
    comps_size =
        livegraph::ConnCompOnSnapshot(snapshot, kKnows, threads).size();
    livegraph_cc_ms = t2.Millis();
    Timer t3;
    Csr csr = ExportToCsr(snapshot, kKnows, threads);
    etl_ms = t3.Millis();
    run_static(std::move(csr));
  }

  if (json) {
    std::printf("{\n  \"bench\": \"table10_analytics\",\n");
    std::printf("  \"shards\": %d,\n  \"threads\": %d,\n", shards, threads);
    std::printf("  \"persons\": %zu,\n  \"knows_edges\": %lld,\n",
                data.persons.size(), static_cast<long long>(edge_count));
    std::printf("  \"rows\": [\n");
    std::printf("    {\"task\": \"ETL\", \"livegraph_ms\": 0, "
                "\"static_ms\": %.1f},\n", etl_ms);
    std::printf("    {\"task\": \"PageRank\", \"livegraph_ms\": %.1f, "
                "\"static_ms\": %.1f},\n", livegraph_pr_ms, engine_pr_ms);
    std::printf("    {\"task\": \"ConnComp\", \"livegraph_ms\": %.1f, "
                "\"static_ms\": %.1f}\n", livegraph_cc_ms, engine_cc_ms);
    std::printf("  ],\n");
    std::printf("  \"end_to_end\": {\"livegraph_ms\": %.1f, "
                "\"static_ms\": %.1f}\n}\n",
                livegraph_pr_ms + livegraph_cc_ms,
                etl_ms + engine_pr_ms + engine_cc_ms);
  } else {
    std::printf("=== Table 10: ETL and execution times (ms) ===\n");
    std::printf("(knows subgraph: %zu persons, %lld edges, engine %s)\n",
                data.persons.size(), static_cast<long long>(edge_count),
                store->Name().c_str());
    std::printf("%-12s %12s %14s\n", "task", store->Name().c_str(),
                "StaticEngine");
    std::printf("%-12s %12s %14.1f\n", "ETL", "-", etl_ms);
    std::printf("%-12s %12.1f %14.1f\n", "PageRank", livegraph_pr_ms,
                engine_pr_ms);
    std::printf("%-12s %12.1f %14.1f\n", "ConnComp", livegraph_cc_ms,
                engine_cc_ms);
    std::printf("\nend-to-end: %s %.1f ms vs StaticEngine %.1f ms "
                "(incl. ETL)\n", store->Name().c_str(),
                livegraph_pr_ms + livegraph_cc_ms,
                etl_ms + engine_pr_ms + engine_cc_ms);
    std::printf("paper shape: engine kernels faster, but ETL dominates "
                "end-to-end\n");
  }
  // The sharded frontier spans global IDs (round-robin interleave), so its
  // arrays are exactly as long as the single-engine run's.
  if (ranks_size != engine_ranks_size || comps_size != engine_comps_size) {
    std::printf("WARNING: result size mismatch\n");
    return 1;
  }
  return 0;
}
