// Table 7: LDBC SNB interactive throughput in memory — Complex-Only and
// Overall mixes, LiveGraph vs the lock-based B+ tree comparator standing
// in for Virtuoso/PostgreSQL (DESIGN.md substitution 2). Paper: LiveGraph
// beats the runner-up by 31.2x (Complex-Only) / 36.4x (Overall); MVCC
// keeps complex reads from blocking updates.
#include "bench/bench_common.h"
#include "snb/snb_driver.h"

namespace livegraph::bench {
namespace {

void RunTable(bool out_of_core) {
  using namespace livegraph::snb;
  DatagenOptions datagen;
  datagen.scale_factor = EnvDouble("LG_SF", 1.0);
  std::printf("\n=== Table %s: SNB throughput (reqs/s)%s ===\n",
              out_of_core ? "8" : "7",
              out_of_core ? " out of core (Optane sim)" : " in memory");
  std::printf("%-14s %14s %14s\n", "system", "Complex-Only", "Overall");
  for (const char* system : {"LiveGraph", "BTree"}) {
    std::unique_ptr<PageCacheSim> pagesim;
    if (out_of_core) {
      size_t pages = static_cast<size_t>(datagen.scale_factor * 20'000);
      pagesim = std::make_unique<PageCacheSim>(PageCacheSim::Optane(pages));
    }
    auto store = MakeStore(system, pagesim.get(),
                           /*wal=*/system == std::string("LiveGraph"));
    SnbDataset data = GenerateSnb(store.get(), datagen);
    SnbRunOptions run;
    run.clients = static_cast<int>(EnvInt("LG_CLIENTS", 8));
    run.ops_per_client = static_cast<uint64_t>(
        EnvInt("LG_OPS", out_of_core ? 200 : 1'000));
    run.mode = SnbMode::kComplexOnly;
    double complex_tput = RunSnb(store.get(), &data, run).throughput();
    run.mode = SnbMode::kOverall;
    double overall_tput = RunSnb(store.get(), &data, run).throughput();
    std::printf("%-14s %14.0f %14.0f\n", system, complex_tput, overall_tput);
  }
}

}  // namespace
}  // namespace livegraph::bench

int main() {
  livegraph::bench::RunTable(/*out_of_core=*/false);
  std::printf("\npaper shape: LiveGraph >> comparator on both mixes\n");
  return 0;
}
