// Figure 1 (+ Table 1): adjacency-list seek and per-edge scan latency of
// TEL vs LSMT vs B+ tree vs linked list vs CSR on Kronecker graphs across
// scales, start vertices drawn from a power-law (§2.1).
//
// Paper setup: scales 2^20..2^26, 10^8 scans. Defaults here are trimmed
// (LG_MIN_SCALE/LG_MAX_SCALE/LG_SAMPLES env to go bigger). The expected
// shape: seeks — CSR ~ TEL (O(1)) << B+ tree < LSMT (logarithmic + runs);
// scans — CSR < TEL << B+ tree < LSMT < linked list.
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "baselines/csr.h"
#include "bench/bench_common.h"
#include "core/transaction.h"
#include "util/zipf.h"
#include "workload/kronecker.h"

namespace livegraph::bench {
namespace {

struct Measurement {
  double seek_us_per_vertex;
  double scan_ns_per_edge;
};

volatile int64_t g_sink;  // defeat dead-code elimination

template <typename Seek, typename Scan>
Measurement Measure(uint64_t n, uint64_t samples, uint64_t seed,
                    const Seek& seek, const Scan& scan) {
  ScrambledZipf zipf(n, 0.99, seed);
  Xorshift rng(seed);
  std::vector<vertex_t> starts(samples);
  for (auto& v : starts) v = static_cast<vertex_t>(zipf.Sample(rng));

  Measurement m;
  {
    Timer timer;
    int64_t acc = 0;
    for (vertex_t v : starts) acc += seek(v);
    g_sink = acc;
    m.seek_us_per_vertex = timer.Seconds() * 1e6 / double(samples);
  }
  {
    Timer timer;
    int64_t edges = 0;
    for (vertex_t v : starts) edges += scan(v);
    g_sink = edges;
    m.scan_ns_per_edge =
        edges > 0 ? timer.Seconds() * 1e9 / double(edges) : 0.0;
  }
  return m;
}

void Row(const char* name, int scale, const Measurement& m) {
  std::printf("%-12s 2^%-3d %14.4f %14.2f\n", name, scale,
              m.seek_us_per_vertex, m.scan_ns_per_edge);
}

}  // namespace

void Run() {
  const int min_scale = static_cast<int>(EnvInt("LG_MIN_SCALE", 14));
  const int max_scale = static_cast<int>(EnvInt("LG_MAX_SCALE", 18));
  const auto samples = static_cast<uint64_t>(EnvInt("LG_SAMPLES", 200'000));

  std::printf("Figure 1: adjacency list scan micro-benchmark\n");
  std::printf("(paper: scales 2^20..2^26; see EXPERIMENTS.md for mapping)\n");
  std::printf("%-12s %-5s %14s %14s\n", "structure", "|V|", "seek(us/vtx)",
              "scan(ns/edge)");

  for (int scale = min_scale; scale <= max_scale; scale += 2) {
    const uint64_t n = uint64_t{1} << scale;
    KroneckerOptions kron;
    kron.scale = scale;
    kron.average_degree = 4;
    auto edges = GenerateKronecker(kron);

    // --- TEL (LiveGraph) ---
    {
      Graph graph(BenchGraphOptions());
      auto txn = graph.BeginTransaction();
      for (uint64_t v = 0; v < n; ++v) txn.AddVertex();
      for (auto& [src, dst] : edges) txn.AddEdge(src, 0, dst);
      if (txn.Commit() != Status::kOk) return;
      auto read = graph.BeginReadOnlyTransaction();
      Row("TEL", scale,
          Measure(
              n, samples, 1,
              [&](vertex_t v) {
                auto it = read.GetEdges(v, 0);
                return it.Valid() ? it.DstId() : 0;
              },
              [&](vertex_t v) {
                int64_t count = 0;
                for (auto it = read.GetEdges(v, 0); it.Valid(); it.Next()) {
                  g_sink = it.DstId();
                  count++;
                }
                return count;
              }));
    }

    // --- LSMT ---
    {
      Lsmt lsmt;
      for (auto& [src, dst] : edges) lsmt.Put(EdgeKey{src, 0, dst}, {});
      auto scan_all = [&](vertex_t v) {
        int64_t count = 0;
        lsmt.Scan(EdgeKey{v, 0, INT64_MIN}, EdgeKey{v, 1, INT64_MIN},
                  [&count](const EdgeKey& key, std::string_view) {
                    g_sink = key.dst;
                    count++;
                    return true;
                  });
        return count;
      };
      Row("LSMT", scale,
          Measure(
              n, samples, 2,
              [&](vertex_t v) {
                int64_t first = 0;
                lsmt.Scan(EdgeKey{v, 0, INT64_MIN}, EdgeKey{v, 1, INT64_MIN},
                          [&first](const EdgeKey& key, std::string_view) {
                            first = key.dst;
                            return false;  // seek = position only
                          });
                return first;
              },
              scan_all));
    }

    // --- B+ tree ---
    {
      BPlusTree tree;
      for (auto& [src, dst] : edges) tree.Insert(EdgeKey{src, 0, dst}, {});
      Row("B+Tree", scale,
          Measure(
              n, samples, 3,
              [&](vertex_t v) {
                auto it = tree.LowerBound(EdgeKey{v, 0, INT64_MIN});
                return it.Valid() ? it.key().dst : 0;
              },
              [&](vertex_t v) {
                int64_t count = 0;
                for (auto it = tree.LowerBound(EdgeKey{v, 0, INT64_MIN});
                     it.Valid() && it.key().src == v; it.Next()) {
                  g_sink = it.key().dst;
                  count++;
                }
                return count;
              }));
    }

    // --- Linked list ---
    {
      LinkedListStore list;
      for (uint64_t v = 0; v < n; ++v) list.AddNode({});
      for (auto& [src, dst] : edges) list.AddLink(src, 0, dst, {});
      // Walk the raw chain (single-threaded): the measurement is the
      // pointer chase itself, not session or cursor machinery.
      Row("LinkedList", scale,
          Measure(
              n, samples, 4,
              [&](vertex_t v) {
                const auto* node = list.head(v);
                return node != nullptr ? node->dst : 0;
              },
              [&](vertex_t v) {
                int64_t count = 0;
                for (const auto* node = list.head(v); node != nullptr;
                     node = node->next) {
                  g_sink = node->dst;
                  count++;
                }
                return count;
              }));
    }

    // --- CSR (read-only reference) ---
    {
      Csr csr = Csr::FromEdges(static_cast<vertex_t>(n), edges);
      Row("CSR", scale,
          Measure(
              n, samples, 5,
              [&](vertex_t v) {
                auto span = csr.Neighbors(v);
                return span.empty() ? 0 : span.front();
              },
              [&](vertex_t v) {
                int64_t count = 0;
                for (vertex_t dst : csr.Neighbors(v)) {
                  g_sink = dst;
                  count++;
                }
                return count;
              }));
    }
    std::printf("\n");
  }
}

}  // namespace livegraph::bench

int main() {
  livegraph::bench::Run();
  return 0;
}
