// §7.2 "Long-running transactions and checkpoints": dump a consistent
// snapshot while LinkBench runs concurrently. Paper: checkpointing slows
// 22.5% under load; LinkBench throughput drops only 6.5% (single-thread
// checkpointer), 13.6% with 24 checkpoint threads.
#include <filesystem>

#include "bench/linkbench_tables.h"

namespace livegraph::bench {
namespace {

double CheckpointSeconds(LiveGraphStore* store, const std::string& dir,
                         int threads) {
  std::filesystem::create_directories(dir);
  Timer timer;
  store->graph().Checkpoint(dir, threads);
  return timer.Seconds();
}

}  // namespace
}  // namespace livegraph::bench

int main() {
  using namespace livegraph;
  using namespace livegraph::bench;
  std::string dir = "/tmp/livegraph_ckpt_bench_" + std::to_string(::getpid());

  LinkBenchConfig config = DefaultLinkBenchConfig();
  config.ops_per_client = static_cast<uint64_t>(EnvInt("LG_OPS", 30'000));
  LiveGraphStore store(BenchGraphOptions(/*wal=*/true));
  vertex_t n = LoadLinkBenchGraph(&store, config);

  std::printf("=== §7.2 checkpointing under load ===\n");
  // Baselines: idle checkpoint and idle workload.
  double idle_ckpt_1t = CheckpointSeconds(&store, dir, 1);
  double idle_ckpt_nt =
      CheckpointSeconds(&store, dir, static_cast<int>(EnvInt("LG_CKPT_THREADS", 8)));
  DriverResult solo = RunLinkBench(&store, config, n);

  // Concurrent: checkpoint in a thread while LinkBench runs.
  double loaded_ckpt = 0;
  std::thread checkpointer(
      [&] { loaded_ckpt = CheckpointSeconds(&store, dir, 1); });
  DriverResult loaded = RunLinkBench(&store, config, n);
  checkpointer.join();

  std::printf("%-34s %10.2fs\n", "checkpoint (1 thread, idle)", idle_ckpt_1t);
  std::printf("%-34s %10.2fs\n", "checkpoint (N threads, idle)", idle_ckpt_nt);
  std::printf("%-34s %10.2fs  (+%.1f%% vs idle)\n",
              "checkpoint (1 thread, under load)", loaded_ckpt,
              100.0 * (loaded_ckpt / idle_ckpt_1t - 1.0));
  std::printf("%-34s %10.0f reqs/s\n", "LinkBench solo", solo.throughput());
  std::printf("%-34s %10.0f reqs/s  (-%.1f%%)\n",
              "LinkBench with concurrent ckpt", loaded.throughput(),
              100.0 * (1.0 - loaded.throughput() / solo.throughput()));
  std::printf("\npaper: ckpt +22.5%% under load; workload -6.5%%\n");
  std::filesystem::remove_all(dir);
  return 0;
}
