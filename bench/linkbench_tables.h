// Shared harness for the LinkBench latency tables (3/4 in-memory, 5/6
// out-of-core) and throughput figures.
#ifndef LIVEGRAPH_BENCH_LINKBENCH_TABLES_H_
#define LIVEGRAPH_BENCH_LINKBENCH_TABLES_H_

#include <optional>

#include "bench/bench_common.h"

namespace livegraph::bench {

struct TableConfig {
  const char* title;
  LinkBenchMix mix;
  bool out_of_core = false;   // instrument stores with a page-cache sim
  bool nand_profile = false;  // NAND latencies instead of Optane
};

inline LinkBenchConfig DefaultLinkBenchConfig() {
  LinkBenchConfig config;
  config.scale = static_cast<int>(EnvInt("LG_SCALE", 15));  // 32K vertices
  config.clients = static_cast<int>(EnvInt("LG_CLIENTS", 8));
  config.ops_per_client =
      static_cast<uint64_t>(EnvInt("LG_OPS", 20'000));
  return config;
}

inline void RunLatencyTable(const TableConfig& table) {
  LinkBenchConfig config = DefaultLinkBenchConfig();
  config.mix = table.mix;
  PrintLatencyHeader(table.title);
  for (const char* system : {"LiveGraph", "LSMT", "BTree"}) {
    std::unique_ptr<PageCacheSim> pagesim;
    if (table.out_of_core) {
      // Cache sized to ~1/8 of the dataset's pages (the paper caps DRAM at
      // ~16% of LiveGraph's footprint).
      size_t dataset_pages =
          (uint64_t{1} << config.scale) * 5 * (config.payload_bytes + 64) /
          4096;
      auto options = table.nand_profile
                         ? PageCacheSim::Nand(dataset_pages / 8)
                         : PageCacheSim::Optane(dataset_pages / 8);
      pagesim = std::make_unique<PageCacheSim>(options);
    }
    auto store = MakeStore(system, pagesim.get(), /*wal=*/system ==
                                                      std::string("LiveGraph"));
    vertex_t n = LoadLinkBenchGraph(store.get(), config);
    if (pagesim != nullptr) pagesim->ResetStats();
    DriverResult result = RunLinkBench(store.get(), config, n);
    PrintLatencyRow(system, result);
  }
}

}  // namespace livegraph::bench

#endif  // LIVEGRAPH_BENCH_LINKBENCH_TABLES_H_
