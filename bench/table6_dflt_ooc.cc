// Table 6: LinkBench DFLT out-of-core latency, both device profiles.
// Paper shape: LiveGraph ahead of RocksDB by 1.79x (Optane) / 1.15x
// (NAND) mean; LMDB far behind.
#include "bench/linkbench_tables.h"

int main() {
  using namespace livegraph::bench;
  RunLatencyTable(TableConfig{"Table 6a: DFLT out of core, Optane profile",
                              livegraph::DfltMix(), /*out_of_core=*/true,
                              /*nand=*/false});
  RunLatencyTable(TableConfig{"Table 6b: DFLT out of core, NAND profile",
                              livegraph::DfltMix(), /*out_of_core=*/true,
                              /*nand=*/true});
  return 0;
}
