// Table 5: LinkBench TAO out-of-core latency, Optane-like and NAND-like
// device profiles (simulated page cache; DESIGN.md substitution 3).
// Paper shape: LiveGraph wins mean latency on both devices; RocksDB beats
// LMDB on NAND (compression/bandwidth), LiveGraph P99 can trail RocksDB.
#include "bench/linkbench_tables.h"

int main() {
  using namespace livegraph::bench;
  RunLatencyTable(TableConfig{"Table 5a: TAO out of core, Optane profile",
                              livegraph::TaoMix(), /*out_of_core=*/true,
                              /*nand=*/false});
  RunLatencyTable(TableConfig{"Table 5b: TAO out of core, NAND profile",
                              livegraph::TaoMix(), /*out_of_core=*/true,
                              /*nand=*/true});
  return 0;
}
