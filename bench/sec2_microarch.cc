// §2.1 micro-architectural analysis: cache misses and branch behaviour of
// adjacency scans per data structure. The paper reports LLC-miss ratios on
// a 2^26-scale graph (B+ tree 7.09x, LSMT 11.18x, linked list 63.54x more
// LLC misses than TEL; CSR 1/2.42x of TEL).
//
// Hardware counters are read via perf_event_open when the container allows
// it; otherwise the bench falls back to software proxies (time/edge and
// per-edge pointer hops) and says so — see DESIGN.md substitution 4.
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "baselines/csr.h"
#include "bench/bench_common.h"
#include "core/transaction.h"
#include "util/zipf.h"
#include "workload/kronecker.h"

namespace livegraph::bench {
namespace {

volatile int64_t g_sink;

class PerfCounter {
 public:
  PerfCounter(uint32_t type, uint64_t config) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    fd_ = static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
  }
  ~PerfCounter() {
    if (fd_ >= 0) close(fd_);
  }
  bool available() const { return fd_ >= 0; }
  void Start() {
    if (fd_ < 0) return;
    ioctl(fd_, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0);
  }
  int64_t Stop() {
    if (fd_ < 0) return -1;
    ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0);
    int64_t value = -1;
    if (read(fd_, &value, sizeof(value)) != sizeof(value)) value = -1;
    return value;
  }

 private:
  int fd_ = -1;
};

struct ScanStats {
  double ns_per_edge;
  int64_t edges;
  int64_t llc_misses;       // -1 if counters unavailable
  int64_t branch_misses;    // -1 if unavailable
};

template <typename Scan>
ScanStats MeasureScans(uint64_t n, uint64_t samples, const Scan& scan) {
  ScrambledZipf zipf(n, 0.99, 11);
  Xorshift rng(11);
  std::vector<vertex_t> starts(samples);
  for (auto& v : starts) v = static_cast<vertex_t>(zipf.Sample(rng));

  PerfCounter llc(PERF_TYPE_HW_CACHE,
                  PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                      (PERF_COUNT_HW_CACHE_RESULT_MISS << 16));
  PerfCounter branches(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES);
  llc.Start();
  branches.Start();
  Timer timer;
  int64_t edges = 0;
  for (vertex_t v : starts) edges += scan(v);
  double seconds = timer.Seconds();
  ScanStats stats;
  stats.llc_misses = llc.Stop();
  stats.branch_misses = branches.Stop();
  stats.edges = edges;
  stats.ns_per_edge = edges > 0 ? seconds * 1e9 / double(edges) : 0;
  return stats;
}

void Row(const char* name, const ScanStats& s, const ScanStats& tel) {
  auto ratio = [](int64_t a, int64_t b) {
    return (a > 0 && b > 0) ? double(a) / double(b) : 0.0;
  };
  std::printf("%-12s %12.2f", name, s.ns_per_edge);
  if (s.llc_misses >= 0) {
    std::printf(" %14" PRId64 " %10.2fx %14" PRId64 "\n", s.llc_misses,
                ratio(s.llc_misses, tel.llc_misses), s.branch_misses);
  } else {
    std::printf(" %14s %10s %14s\n", "n/a", "n/a", "n/a");
  }
}

}  // namespace

void Run() {
  const int scale = static_cast<int>(EnvInt("LG_SCALE", 18));
  const auto samples = static_cast<uint64_t>(EnvInt("LG_SAMPLES", 100'000));
  const uint64_t n = uint64_t{1} << scale;

  KroneckerOptions kron;
  kron.scale = scale;
  auto edges = GenerateKronecker(kron);

  std::printf("Section 2.1 micro-architectural analysis (scale 2^%d)\n",
              scale);
  PerfCounter probe(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  if (!probe.available()) {
    std::printf("note: perf counters unavailable in this environment; "
                "reporting time-based proxies only\n");
  }
  std::printf("%-12s %12s %14s %10s %14s\n", "structure", "ns/edge",
              "LLC-misses", "vs TEL", "branch-miss");

  // TEL first (the ratio baseline).
  Graph graph(BenchGraphOptions());
  {
    auto txn = graph.BeginTransaction();
    for (uint64_t v = 0; v < n; ++v) txn.AddVertex();
    for (auto& [src, dst] : edges) txn.AddEdge(src, 0, dst);
    if (txn.Commit() != Status::kOk) return;
  }
  auto read = graph.BeginReadOnlyTransaction();
  ScanStats tel = MeasureScans(n, samples, [&](vertex_t v) {
    int64_t count = 0;
    for (auto it = read.GetEdges(v, 0); it.Valid(); it.Next()) {
      g_sink = it.DstId();
      count++;
    }
    return count;
  });
  Row("TEL", tel, tel);

  {
    Csr csr = Csr::FromEdges(static_cast<vertex_t>(n), edges);
    Row("CSR", MeasureScans(n, samples, [&](vertex_t v) {
          int64_t count = 0;
          for (vertex_t dst : csr.Neighbors(v)) {
            g_sink = dst;
            count++;
          }
          return count;
        }),
        tel);
  }
  {
    BPlusTree tree;
    for (auto& [src, dst] : edges) tree.Insert(EdgeKey{src, 0, dst}, {});
    Row("B+Tree", MeasureScans(n, samples, [&](vertex_t v) {
          int64_t count = 0;
          for (auto it = tree.LowerBound(EdgeKey{v, 0, INT64_MIN});
               it.Valid() && it.key().src == v; it.Next()) {
            g_sink = it.key().dst;
            count++;
          }
          return count;
        }),
        tel);
  }
  {
    Lsmt lsmt;
    for (auto& [src, dst] : edges) lsmt.Put(EdgeKey{src, 0, dst}, {});
    Row("LSMT", MeasureScans(n, samples, [&](vertex_t v) {
          int64_t count = 0;
          lsmt.Scan(EdgeKey{v, 0, INT64_MIN}, EdgeKey{v, 1, INT64_MIN},
                    [&count](const EdgeKey& key, std::string_view) {
                      g_sink = key.dst;
                      count++;
                      return true;
                    });
          return count;
        }),
        tel);
  }
  {
    LinkedListStore list;
    for (uint64_t v = 0; v < n; ++v) list.AddNode({});
    for (auto& [src, dst] : edges) list.AddLink(src, 0, dst, {});
    // Raw chain walk: measures the pointer chase, not cursor machinery.
    Row("LinkedList", MeasureScans(n, samples, [&](vertex_t v) {
          int64_t count = 0;
          for (const auto* node = list.head(v); node != nullptr;
               node = node->next) {
            g_sink = node->dst;
            count++;
          }
          return count;
        }),
        tel);
  }
}

}  // namespace livegraph::bench

int main() {
  livegraph::bench::Run();
  return 0;
}
