// Table 9: average latency of selected SNB queries — the paper's case
// studies: IC1 (3-hop neighbourhood, MVCC vs locks), IC13 (pairwise
// shortest path), IS2 (1-hop short read, seek-bound), and the update
// average. Paper: LiveGraph wins every row (e.g. IC13 4.68x vs Virtuoso,
// updates 2.51x).
#include "bench/bench_common.h"
#include "snb/snb_driver.h"

int main() {
  using namespace livegraph;
  using namespace livegraph::bench;
  using namespace livegraph::snb;

  DatagenOptions datagen;
  datagen.scale_factor = EnvDouble("LG_SF", 1.0);

  struct Row {
    std::string system;
    std::map<std::string, double> latency_ms;
    double update_ms = 0;
  };
  std::vector<Row> rows;
  for (const char* system : {"LiveGraph", "BTree"}) {
    auto store = MakeStore(system, nullptr,
                           /*wal=*/system == std::string("LiveGraph"));
    SnbDataset data = GenerateSnb(store.get(), datagen);
    SnbRunOptions run;
    run.clients = static_cast<int>(EnvInt("LG_CLIENTS", 8));
    run.ops_per_client = static_cast<uint64_t>(EnvInt("LG_OPS", 1'500));
    DriverResult result = RunSnb(store.get(), &data, run);
    Row row;
    row.system = system;
    double update_sum = 0;
    uint64_t update_count = 0;
    for (const auto& [name, histogram] : result.per_class) {
      if (name.substr(0, 2) == "U_" || name[0] == 'U') {
        update_sum += histogram.MeanNanos() * double(histogram.count());
        update_count += histogram.count();
      } else {
        row.latency_ms[name] = histogram.MeanMillis();
      }
    }
    row.update_ms =
        update_count > 0 ? update_sum / double(update_count) / 1e6 : 0.0;
    rows.push_back(std::move(row));
  }

  std::printf("=== Table 9: average SNB query latency (ms) ===\n");
  std::printf("%-16s", "query");
  for (const auto& row : rows) std::printf(" %14s", row.system.c_str());
  std::printf("\n");
  for (const char* query : {"IC1", "IC2", "IC6", "IC9", "IC13", "IS1", "IS2",
                            "IS3", "IS4", "IS5", "IS7"}) {
    std::printf("%-16s", query);
    for (const auto& row : rows) {
      auto it = row.latency_ms.find(query);
      std::printf(" %14.4f", it != row.latency_ms.end() ? it->second : 0.0);
    }
    std::printf("\n");
  }
  std::printf("%-16s", "Updates(avg)");
  for (const auto& row : rows) std::printf(" %14.4f", row.update_ms);
  std::printf("\n\npaper shape: LiveGraph lowest on every row\n");
  return 0;
}
