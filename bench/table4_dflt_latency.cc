// Table 4: LinkBench DFLT (31% writes) in-memory latency. Paper result:
// LiveGraph beats the runner-up by 2.67x mean / 3.06x P99 / 4.99x P999;
// the B+ tree (LMDB) collapses under single-writer insert costs.
#include "bench/linkbench_tables.h"

int main() {
  using namespace livegraph::bench;
  RunLatencyTable(TableConfig{"Table 4: LinkBench DFLT, in memory",
                              livegraph::DfltMix()});
  std::printf("\npaper shape: LiveGraph < LSMT(RocksDB) << BTree(LMDB)\n");
  return 0;
}
