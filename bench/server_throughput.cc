// Remote LinkBench: N client threads drive the LinkBench request mix
// against a graph server over localhost TCP, through the same
// workload/driver.h harness the embedded benches use — the only change is
// that the Store handed to RunLinkBench is a RemoteStore. Reports
// throughput, p50/p99 (plus mean/p999) and the failed-request count, for
// the server stack against the embedded baseline it wraps.
//
// Env knobs:
//   LG_ENGINE   LiveGraph | LSMT | BTree | LinkedList   (default LiveGraph)
//   LG_SHARDS   shard count; > 1 serves ShardedLiveGraph (LiveGraph only)
//   LG_CLIENTS  client threads                          (default 8)
//   LG_OPS      requests per client                     (default 20000)
//   LG_SCALE    log2 vertices of the base graph         (default 15)
//   LG_MIX      dflt | tao                              (default dflt)
//   LG_CONNECT  host:port of an already-running livegraph_server; when
//               unset the bench starts an in-process loopback server.
#include <cstring>
#include <string>

#include "bench/linkbench_tables.h"
#include "server/graph_server.h"
#include "server/remote_store.h"

namespace livegraph::bench {
namespace {

const char* EnvString(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : fallback;
}

void PrintJsonResult(const char* key, const DriverResult& result,
                     const char* trailer) {
  std::printf("  \"%s\": {\"throughput\": %.0f, \"mean_ms\": %.4f, "
              "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f, "
              "\"failures\": %llu}%s\n",
              key, result.throughput(), result.overall.MeanMillis(),
              result.overall.PercentileMillis(0.50),
              result.overall.PercentileMillis(0.99),
              result.overall.PercentileMillis(0.999),
              static_cast<unsigned long long>(result.failures), trailer);
}

void PrintRemoteRow(const char* label, const DriverResult& result) {
  std::printf("%-22s %12.0f %10.4f %10.4f %10.4f %10.4f", label,
              result.throughput(), result.overall.MeanMillis(),
              result.overall.PercentileMillis(0.50),
              result.overall.PercentileMillis(0.99),
              result.overall.PercentileMillis(0.999));
  if (result.failures > 0) {
    std::printf("  (%llu failed)",
                static_cast<unsigned long long>(result.failures));
  }
  std::printf("\n");
}

int Run(bool json) {
  LinkBenchConfig config = DefaultLinkBenchConfig();
  const std::string engine = EnvString("LG_ENGINE", "LiveGraph");
  const int shards = static_cast<int>(EnvInt("LG_SHARDS", 1));
  if (std::string(EnvString("LG_MIX", "dflt")) == "tao") {
    config.mix = TaoMix();
  }

  if (!json) {
    std::printf("=== Remote LinkBench over the graph server ===\n");
    std::printf("engine=%s clients=%d ops/client=%llu scale=%d\n",
                engine.c_str(), config.clients,
                static_cast<unsigned long long>(config.ops_per_client),
                config.scale);
    std::printf("%-22s %12s %10s %10s %10s %10s\n", "store", "reqs/s",
                "mean(ms)", "P50(ms)", "P99(ms)", "P999(ms)");
  }

  // The serving engine. With LG_CONNECT the server lives in another
  // process and this engine is unused for serving (still used to report
  // the embedded baseline).
  std::unique_ptr<Store> store = MakeStore(engine, nullptr,
                                           /*wal=*/false, shards);
  vertex_t n = LoadLinkBenchGraph(store.get(), config);

  // Embedded baseline: same harness, in-process store. The gap to the
  // remote rows is the cost of the network layer.
  DriverResult embedded = RunLinkBench(store.get(), config, n);
  if (!json) PrintRemoteRow(("embedded/" + engine).c_str(), embedded);

  std::unique_ptr<GraphServer> server;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  const char* connect = std::getenv("LG_CONNECT");
  if (connect != nullptr) {
    const char* colon = std::strrchr(connect, ':');
    if (colon == nullptr) {
      std::fprintf(stderr, "LG_CONNECT must be host:port\n");
      return 1;
    }
    host.assign(connect, static_cast<size_t>(colon - connect));
    port = static_cast<uint16_t>(std::atoi(colon + 1));
    std::printf("(connecting to external server %s:%u — base graph must "
                "already be loaded there)\n",
                host.c_str(), unsigned{port});
  } else {
    server = std::make_unique<GraphServer>(*store, GraphServer::Options{});
    if (!server->Start()) {
      std::fprintf(stderr, "failed to start loopback server\n");
      return 1;
    }
    port = server->port();
  }

  std::unique_ptr<RemoteStore> remote = RemoteStore::Connect(host, port);
  if (remote == nullptr) {
    std::fprintf(stderr, "failed to connect to %s:%u\n", host.c_str(),
                 unsigned{port});
    return 1;
  }
  // Warm the connection pool so dials don't land inside the timed run:
  // the driver runs `clients` concurrent sessions.
  {
    std::vector<std::unique_ptr<StoreReadTxn>> warm;
    warm.reserve(static_cast<size_t>(config.clients));
    for (int i = 0; i < config.clients; ++i) {
      warm.push_back(remote->BeginReadTxn());
    }
  }

  DriverResult result = RunLinkBench(remote.get(), config, n);
  double retained = embedded.throughput() > 0
                        ? 100.0 * result.throughput() / embedded.throughput()
                        : 0.0;
  if (json) {
    std::printf("{\n  \"bench\": \"server_throughput\",\n");
    std::printf("  \"engine\": \"%s\",\n  \"clients\": %d,\n"
                "  \"ops_per_client\": %llu,\n",
                engine.c_str(), config.clients,
                static_cast<unsigned long long>(config.ops_per_client));
    PrintJsonResult("embedded", embedded, ",");
    PrintJsonResult("remote", result, ",");
    std::printf("  \"retained_pct\": %.1f\n}\n", retained);
  } else {
    PrintRemoteRow(remote->Name().c_str(), result);
    std::printf("network overhead: %.1f%% of embedded throughput retained\n",
                retained);
  }

  remote.reset();
  if (server != nullptr) server->Stop();
  return 0;
}

}  // namespace
}  // namespace livegraph::bench

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  return livegraph::bench::Run(json);
}
