// Remote LinkBench: N client threads drive the LinkBench request mix
// against a graph server over localhost TCP, through the same
// workload/driver.h harness the embedded benches use — the only change is
// that the Store handed to RunLinkBench is a RemoteStore. Reports
// throughput, p50/p99 (plus mean/p999) and the failed-request count, for
// the server stack against the embedded baseline it wraps.
//
// Env knobs:
//   LG_ENGINE   LiveGraph | LSMT | BTree | LinkedList   (default LiveGraph)
//   LG_SHARDS   shard count; > 1 serves ShardedLiveGraph (LiveGraph only)
//   LG_CLIENTS  client threads                          (default 8)
//   LG_OPS      requests per client                     (default 20000)
//   LG_SCALE    log2 vertices of the base graph         (default 15)
//   LG_MIX      dflt | tao | ro                         (default dflt)
//   LG_CONNECT  host:port of an already-running livegraph_server; when
//               unset the bench starts an in-process loopback server.
//
// --replica runs the read-scaling experiment instead
// (docs/REPLICATION.md): a durable sharded primary with WAL shipping
// attached and one follower, then the TAO-style read-only mix against
// ONE read target (primary) vs TWO read targets (primary + follower,
// driven concurrently). Emit with --json as BENCH_replication.json.
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "bench/linkbench_tables.h"
#include "replication/epoch_frontier.h"
#include "replication/replica.h"
#include "replication/replication_hub.h"
#include "server/graph_server.h"
#include "server/remote_store.h"
#include "shard/sharded_store.h"

namespace livegraph::bench {
namespace {

const char* EnvString(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : fallback;
}

void PrintJsonResult(const char* key, const DriverResult& result,
                     const char* trailer) {
  std::printf("  \"%s\": {\"throughput\": %.0f, \"mean_ms\": %.4f, "
              "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f, "
              "\"failures\": %llu}%s\n",
              key, result.throughput(), result.overall.MeanMillis(),
              result.overall.PercentileMillis(0.50),
              result.overall.PercentileMillis(0.99),
              result.overall.PercentileMillis(0.999),
              static_cast<unsigned long long>(result.failures), trailer);
}

void PrintRemoteRow(const char* label, const DriverResult& result) {
  std::printf("%-22s %12.0f %10.4f %10.4f %10.4f %10.4f", label,
              result.throughput(), result.overall.MeanMillis(),
              result.overall.PercentileMillis(0.50),
              result.overall.PercentileMillis(0.99),
              result.overall.PercentileMillis(0.999));
  if (result.failures > 0) {
    std::printf("  (%llu failed)",
                static_cast<unsigned long long>(result.failures));
  }
  std::printf("\n");
}

int Run(bool json, bool dump_metrics) {
  LinkBenchConfig config = DefaultLinkBenchConfig();
  const std::string engine = EnvString("LG_ENGINE", "LiveGraph");
  const int shards = static_cast<int>(EnvInt("LG_SHARDS", 1));
  const std::string mix = EnvString("LG_MIX", "dflt");
  if (mix == "tao") {
    config.mix = TaoMix();
  } else if (mix == "ro") {
    // Read-only: the mix a follower can serve (CI points this at one).
    config.mix = MixWithWriteRatio(0.0);
  }

  if (!json) {
    std::printf("=== Remote LinkBench over the graph server ===\n");
    std::printf("engine=%s clients=%d ops/client=%llu scale=%d\n",
                engine.c_str(), config.clients,
                static_cast<unsigned long long>(config.ops_per_client),
                config.scale);
    std::printf("%-22s %12s %10s %10s %10s %10s\n", "store", "reqs/s",
                "mean(ms)", "P50(ms)", "P99(ms)", "P999(ms)");
  }

  // The serving engine. With LG_CONNECT the server lives in another
  // process and this engine is unused for serving (still used to report
  // the embedded baseline).
  std::unique_ptr<Store> store = MakeStore(engine, nullptr,
                                           /*wal=*/false, shards);
  vertex_t n = LoadLinkBenchGraph(store.get(), config);

  // Embedded baseline: same harness, in-process store. The gap to the
  // remote rows is the cost of the network layer.
  DriverResult embedded = RunLinkBench(store.get(), config, n);
  if (!json) PrintRemoteRow(("embedded/" + engine).c_str(), embedded);

  std::unique_ptr<GraphServer> server;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  const char* connect = std::getenv("LG_CONNECT");
  if (connect != nullptr) {
    const char* colon = std::strrchr(connect, ':');
    if (colon == nullptr) {
      std::fprintf(stderr, "LG_CONNECT must be host:port\n");
      return 1;
    }
    host.assign(connect, static_cast<size_t>(colon - connect));
    port = static_cast<uint16_t>(std::atoi(colon + 1));
    std::printf("(connecting to external server %s:%u — base graph must "
                "already be loaded there)\n",
                host.c_str(), unsigned{port});
  } else {
    server = std::make_unique<GraphServer>(*store, GraphServer::Options{});
    if (!server->Start()) {
      std::fprintf(stderr, "failed to start loopback server\n");
      return 1;
    }
    port = server->port();
  }

  std::unique_ptr<RemoteStore> remote = RemoteStore::Connect(host, port);
  if (remote == nullptr) {
    std::fprintf(stderr, "failed to connect to %s:%u\n", host.c_str(),
                 unsigned{port});
    return 1;
  }
  // Warm the connection pool so dials don't land inside the timed run:
  // the driver runs `clients` concurrent sessions.
  {
    std::vector<std::unique_ptr<StoreReadTxn>> warm;
    warm.reserve(static_cast<size_t>(config.clients));
    for (int i = 0; i < config.clients; ++i) {
      warm.push_back(remote->BeginReadTxn());
    }
  }

  DriverResult result = RunLinkBench(remote.get(), config, n);
  double retained = embedded.throughput() > 0
                        ? 100.0 * result.throughput() / embedded.throughput()
                        : 0.0;
  if (json) {
    std::printf("{\n  \"bench\": \"server_throughput\",\n");
    std::printf("  \"engine\": \"%s\",\n  \"clients\": %d,\n"
                "  \"ops_per_client\": %llu,\n",
                engine.c_str(), config.clients,
                static_cast<unsigned long long>(config.ops_per_client));
    PrintJsonResult("embedded", embedded, ",");
    PrintJsonResult("remote", result, ",");
    std::printf("  \"retained_pct\": %.1f%s\n", retained,
                dump_metrics ? "," : "");
    // With LG_CONNECT the serving engine lives in another process; this
    // dump still carries the local (embedded + client) side's registry.
    if (dump_metrics) {
      std::printf("  \"metrics\": %s\n", MetricsJson().c_str());
    }
    std::printf("}\n");
  } else {
    PrintRemoteRow(remote->Name().c_str(), result);
    std::printf("network overhead: %.1f%% of embedded throughput retained\n",
                retained);
  }

  remote.reset();
  if (server != nullptr) server->Stop();
  return 0;
}

// Read scale-out: identical read-only rounds against one read target
// (the primary) and against two (primary + follower driven concurrently,
// each by its own client fleet). The follower applies the replication
// stream; reads through it carry the read-your-epoch bound, so this is
// the served contract, not a dirty-read shortcut.
int RunReplica(bool json, bool dump_metrics) {
  LinkBenchConfig config = DefaultLinkBenchConfig();
  config.mix = MixWithWriteRatio(0.0);  // followers serve reads only
  const int shards = static_cast<int>(EnvInt("LG_SHARDS", 2));

  const std::string root =
      "/tmp/lg_bench_replica_" + std::to_string(::getpid());
  std::filesystem::remove_all(root);
  ShardOptions shard_options;
  shard_options.shards = shards;
  shard_options.dir = root + "/primary";
  shard_options.graph.region_reserve = size_t{1} << 34;
  shard_options.graph.max_vertices = size_t{1} << 24;
  shard_options.graph.fsync_wal = false;
  std::unique_ptr<ShardedStore> primary = ShardedStore::Recover(shard_options);
  if (primary == nullptr) {
    std::fprintf(stderr, "failed to open primary at %s\n",
                 shard_options.dir.c_str());
    return 1;
  }
  vertex_t n = LoadLinkBenchGraph(primary.get(), config);

  ReplicationHub hub;
  if (!hub.Attach(*primary)) {
    std::fprintf(stderr, "replication hub failed to attach\n");
    return 1;
  }
  DomainFrontier primary_frontier(hub.domain());
  GraphServer::Options primary_options;
  primary_options.replication = &hub;
  primary_options.frontier = &primary_frontier;
  GraphServer primary_server(*primary, primary_options);
  if (!primary_server.Start()) {
    std::fprintf(stderr, "failed to start primary server\n");
    return 1;
  }

  Replica::Options replica_options;
  replica_options.primary_port = primary_server.port();
  replica_options.graph = shard_options.graph;
  Replica replica(replica_options);
  replica.Start();
  if (!replica.WaitReady(60'000)) {
    std::fprintf(stderr, "follower never bootstrapped\n");
    return 1;
  }
  GraphServer::Options follower_options;
  follower_options.frontier = &replica.frontier();
  GraphServer follower_server(replica.store(), follower_options);
  if (!follower_server.Start()) {
    std::fprintf(stderr, "failed to start follower server\n");
    return 1;
  }

  auto connect = [&](bool to_follower) {
    RemoteStore::Options options;
    options.port = primary_server.port();
    if (to_follower) {
      options.replica_port = follower_server.port();
      options.read_your_epoch_timeout_ms = 10'000;
    }
    return RemoteStore::Connect(options);
  };
  std::unique_ptr<RemoteStore> primary_client = connect(false);
  std::unique_ptr<RemoteStore> follower_client = connect(true);
  if (primary_client == nullptr || follower_client == nullptr) {
    std::fprintf(stderr, "client connect failed\n");
    return 1;
  }

  if (!json) {
    std::printf("=== Replicated read scaling (read-only mix) ===\n");
    std::printf("shards=%d clients/target=%d ops/client=%llu scale=%d\n",
                shards, config.clients,
                static_cast<unsigned long long>(config.ops_per_client),
                config.scale);
    std::printf("%-22s %12s %10s %10s %10s %10s\n", "targets", "reqs/s",
                "mean(ms)", "P50(ms)", "P99(ms)", "P999(ms)");
  }

  // Round 1: one read target, all clients on the primary.
  DriverResult one = RunLinkBench(primary_client.get(), config, n);
  if (!json) PrintRemoteRow("1 (primary)", one);

  // Round 2: two read targets, a full client fleet per target running
  // concurrently. Aggregate throughput is the read-scaling headline.
  DriverResult two_primary, two_follower;
  std::thread follower_fleet([&] {
    two_follower = RunLinkBench(follower_client.get(), config, n);
  });
  two_primary = RunLinkBench(primary_client.get(), config, n);
  follower_fleet.join();
  double combined = two_primary.throughput() + two_follower.throughput();
  double scaling = one.throughput() > 0 ? combined / one.throughput() : 0.0;
  if (json) {
    std::printf("{\n  \"bench\": \"replication_read_scaling\",\n");
    std::printf("  \"shards\": %d,\n  \"clients_per_target\": %d,\n"
                "  \"ops_per_client\": %llu,\n",
                shards, config.clients,
                static_cast<unsigned long long>(config.ops_per_client));
    PrintJsonResult("one_target", one, ",");
    PrintJsonResult("two_targets_primary", two_primary, ",");
    PrintJsonResult("two_targets_follower", two_follower, ",");
    std::printf("  \"combined_throughput\": %.0f,\n  \"scaling_x\": %.2f%s\n",
                combined, scaling, dump_metrics ? "," : "");
    if (dump_metrics) {
      std::printf("  \"metrics\": %s\n", MetricsJson().c_str());
    }
    std::printf("}\n");
  } else {
    PrintRemoteRow("2 (primary share)", two_primary);
    PrintRemoteRow("2 (follower share)", two_follower);
    std::printf("combined %.0f reqs/s — %.2fx one target\n", combined,
                scaling);
  }

  primary_client.reset();
  follower_client.reset();
  follower_server.Stop();
  replica.Stop();
  primary_server.Stop();
  hub.Detach();
  primary.reset();
  std::filesystem::remove_all(root);
  return 0;
}

}  // namespace
}  // namespace livegraph::bench

int main(int argc, char** argv) {
  bool json = false;
  bool replica = false;
  bool dump_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--replica") == 0) replica = true;
    if (std::strcmp(argv[i], "--dump-metrics") == 0) dump_metrics = true;
  }
  return replica ? livegraph::bench::RunReplica(json, dump_metrics)
                 : livegraph::bench::Run(json, dump_metrics);
}
