// Remote LinkBench: N client threads drive the LinkBench request mix
// against a graph server over localhost TCP, through the same
// workload/driver.h harness the embedded benches use — the only change is
// that the Store handed to RunLinkBench is a RemoteStore. Reports
// throughput, p50/p99 (plus mean/p999) and the failed-request count, for
// the server stack against the embedded baseline it wraps.
//
// Env knobs:
//   LG_ENGINE   LiveGraph | LSMT | BTree | LinkedList   (default LiveGraph)
//   LG_SHARDS   shard count; > 1 serves ShardedLiveGraph (LiveGraph only)
//   LG_CLIENTS  client threads                          (default 8)
//   LG_OPS      requests per client                     (default 20000)
//   LG_SCALE    log2 vertices of the base graph         (default 15)
//   LG_MIX      dflt | tao | ro                         (default dflt)
//   LG_CONNECT  host:port of an already-running livegraph_server; when
//               unset the bench starts an in-process loopback server.
//
// --replica runs the read-scaling experiment instead
// (docs/REPLICATION.md): a durable sharded primary with WAL shipping
// attached and one follower, then the TAO-style read-only mix against
// ONE read target (primary) vs TWO read targets (primary + follower,
// driven concurrently). Emit with --json as BENCH_replication.json.
//
// --idle-conns=K runs the transport comparison instead (docs/SERVER.md
// "Event loop"): the same LinkBench mix against the legacy blocking
// thread-per-connection server and the epoll reactor server, each while K
// extra idle connections sit parked on the listener — the connection-scale
// story (a blocking server pays a thread per parked client; the reactor
// pays an epoll registration). Also measures pipelined vs sequential
// write round trips through RemoteStore::Pipeline. Emit with --json as
// BENCH_server.json.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/linkbench_tables.h"
#include "replication/epoch_frontier.h"
#include "replication/replica.h"
#include "replication/replication_hub.h"
#include "server/graph_server.h"
#include "server/net.h"
#include "server/remote_store.h"
#include "server/wire.h"
#include "shard/sharded_store.h"
#include "util/metrics.h"

namespace livegraph::bench {
namespace {

const char* EnvString(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : fallback;
}

void PrintJsonResult(const char* key, const DriverResult& result,
                     const char* trailer) {
  std::printf("  \"%s\": {\"throughput\": %.0f, \"mean_ms\": %.4f, "
              "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f, "
              "\"failures\": %llu}%s\n",
              key, result.throughput(), result.overall.MeanMillis(),
              result.overall.PercentileMillis(0.50),
              result.overall.PercentileMillis(0.99),
              result.overall.PercentileMillis(0.999),
              static_cast<unsigned long long>(result.failures), trailer);
}

void PrintRemoteRow(const char* label, const DriverResult& result) {
  std::printf("%-22s %12.0f %10.4f %10.4f %10.4f %10.4f", label,
              result.throughput(), result.overall.MeanMillis(),
              result.overall.PercentileMillis(0.50),
              result.overall.PercentileMillis(0.99),
              result.overall.PercentileMillis(0.999));
  if (result.failures > 0) {
    std::printf("  (%llu failed)",
                static_cast<unsigned long long>(result.failures));
  }
  std::printf("\n");
}

int Run(bool json, bool dump_metrics) {
  LinkBenchConfig config = DefaultLinkBenchConfig();
  const std::string engine = EnvString("LG_ENGINE", "LiveGraph");
  const int shards = static_cast<int>(EnvInt("LG_SHARDS", 1));
  const std::string mix = EnvString("LG_MIX", "dflt");
  if (mix == "tao") {
    config.mix = TaoMix();
  } else if (mix == "ro") {
    // Read-only: the mix a follower can serve (CI points this at one).
    config.mix = MixWithWriteRatio(0.0);
  }

  if (!json) {
    std::printf("=== Remote LinkBench over the graph server ===\n");
    std::printf("engine=%s clients=%d ops/client=%llu scale=%d\n",
                engine.c_str(), config.clients,
                static_cast<unsigned long long>(config.ops_per_client),
                config.scale);
    std::printf("%-22s %12s %10s %10s %10s %10s\n", "store", "reqs/s",
                "mean(ms)", "P50(ms)", "P99(ms)", "P999(ms)");
  }

  // The serving engine. With LG_CONNECT the server lives in another
  // process and this engine is unused for serving (still used to report
  // the embedded baseline).
  std::unique_ptr<Store> store = MakeStore(engine, nullptr,
                                           /*wal=*/false, shards);
  vertex_t n = LoadLinkBenchGraph(store.get(), config);

  // Embedded baseline: same harness, in-process store. The gap to the
  // remote rows is the cost of the network layer.
  DriverResult embedded = RunLinkBench(store.get(), config, n);
  if (!json) PrintRemoteRow(("embedded/" + engine).c_str(), embedded);

  std::unique_ptr<GraphServer> server;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  const char* connect = std::getenv("LG_CONNECT");
  if (connect != nullptr) {
    const char* colon = std::strrchr(connect, ':');
    if (colon == nullptr) {
      std::fprintf(stderr, "LG_CONNECT must be host:port\n");
      return 1;
    }
    host.assign(connect, static_cast<size_t>(colon - connect));
    port = static_cast<uint16_t>(std::atoi(colon + 1));
    std::printf("(connecting to external server %s:%u — base graph must "
                "already be loaded there)\n",
                host.c_str(), unsigned{port});
  } else {
    server = std::make_unique<GraphServer>(*store, GraphServer::Options{});
    if (!server->Start()) {
      std::fprintf(stderr, "failed to start loopback server\n");
      return 1;
    }
    port = server->port();
  }

  std::unique_ptr<RemoteStore> remote = RemoteStore::Connect(host, port);
  if (remote == nullptr) {
    std::fprintf(stderr, "failed to connect to %s:%u\n", host.c_str(),
                 unsigned{port});
    return 1;
  }
  // Warm the connection pool so dials don't land inside the timed run:
  // the driver runs `clients` concurrent sessions.
  {
    std::vector<std::unique_ptr<StoreReadTxn>> warm;
    warm.reserve(static_cast<size_t>(config.clients));
    for (int i = 0; i < config.clients; ++i) {
      warm.push_back(remote->BeginReadTxn());
    }
  }

  DriverResult result = RunLinkBench(remote.get(), config, n);
  double retained = embedded.throughput() > 0
                        ? 100.0 * result.throughput() / embedded.throughput()
                        : 0.0;
  if (json) {
    std::printf("{\n  \"bench\": \"server_throughput\",\n");
    std::printf("  \"engine\": \"%s\",\n  \"clients\": %d,\n"
                "  \"ops_per_client\": %llu,\n",
                engine.c_str(), config.clients,
                static_cast<unsigned long long>(config.ops_per_client));
    PrintJsonResult("embedded", embedded, ",");
    PrintJsonResult("remote", result, ",");
    std::printf("  \"retained_pct\": %.1f%s\n", retained,
                dump_metrics ? "," : "");
    // With LG_CONNECT the serving engine lives in another process; this
    // dump still carries the local (embedded + client) side's registry.
    if (dump_metrics) {
      std::printf("  \"metrics\": %s\n", MetricsJson().c_str());
    }
    std::printf("}\n");
  } else {
    PrintRemoteRow(remote->Name().c_str(), result);
    std::printf("network overhead: %.1f%% of embedded throughput retained\n",
                retained);
  }

  remote.reset();
  if (server != nullptr) server->Stop();
  return 0;
}

// One parked client: a real protocol connection (TCP dial + Hello
// handshake) that then sits silent, the shape of a connection-pool
// member between requests. On the blocking server each costs a dedicated
// thread; on the reactor each costs an epoll registration.
size_t OpenIdleConns(const std::string& host, uint16_t port, size_t count,
                     std::vector<Socket>* conns) {
  conns->reserve(count);
  std::string scratch;
  size_t ok = 0;
  for (size_t i = 0; i < count; ++i) {
    Socket socket = ConnectTcp(host, port);
    if (!socket.valid()) continue;
    std::string body;
    WireWriter writer(&body);
    writer.PutU32(kProtocolVersion);
    Frame reply;
    if (!socket.WriteFrame(MsgType::kHello, kFlagNone, body, &scratch) ||
        !socket.ReadFrame(&reply)) {
      continue;
    }
    conns->push_back(std::move(socket));
    ++ok;
  }
  return ok;
}

struct ModeResult {
  size_t idle_requested = 0;
  size_t idle_ok = 0;
  DriverResult mix;
  // Pipelined vs sequential write round trips (RemoteStore::Pipeline).
  double sequential_ops_s = 0.0;
  double pipelined_ops_s = 0.0;
  bool pipeline_ok = false;
};

// The pipelining microbenchmark: the same K link writes issued as K
// request/reply round trips vs queued client-side and shipped as one
// batched send with in-order replies (the server dispatches every
// buffered frame per wakeup — in-connection pipelining).
bool MeasurePipelining(RemoteStore* remote, vertex_t n, ModeResult* out) {
  constexpr size_t kOps = 512;
  const std::string_view payload = "pipelined-write";
  auto pick = [n](size_t i, vertex_t* src, vertex_t* dst) {
    *src = static_cast<vertex_t>(i % static_cast<size_t>(n));
    *dst = static_cast<vertex_t>((i * 7 + 1) % static_cast<size_t>(n));
  };

  auto begin = std::chrono::steady_clock::now();
  std::unique_ptr<StoreTxn> txn = remote->BeginTxn();
  if (txn == nullptr) return false;
  for (size_t i = 0; i < kOps; ++i) {
    vertex_t src, dst;
    pick(i, &src, &dst);
    if (!txn->AddLink(src, label_t{1}, dst, payload).ok()) {
      txn->Abort();
      return false;
    }
  }
  txn->Abort();  // measurement traffic; keep the graph unchanged
  double sequential_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  begin = std::chrono::steady_clock::now();
  std::unique_ptr<RemoteStore::Pipeline> pipeline = remote->NewPipeline();
  if (!pipeline->ok()) return false;
  for (size_t i = 0; i < kOps; ++i) {
    vertex_t src, dst;
    pick(i, &src, &dst);
    pipeline->AddLink(src, label_t{1}, dst, payload);
  }
  std::vector<Status> statuses;
  if (!pipeline->Flush(&statuses) || statuses.size() != kOps) return false;
  for (Status status : statuses) {
    if (status != Status::kOk) return false;
  }
  pipeline->Abort();
  double pipelined_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  out->sequential_ops_s = sequential_s > 0 ? kOps / sequential_s : 0.0;
  out->pipelined_ops_s = pipelined_s > 0 ? kOps / pipelined_s : 0.0;
  out->pipeline_ok = true;
  return true;
}

bool RunOneMode(Store* store, const LinkBenchConfig& config, vertex_t n,
                int reactors, size_t idle_conns, ModeResult* out) {
  GraphServer::Options options;
  options.reactors = reactors;
  GraphServer server(*store, options);
  if (!server.Start()) {
    std::fprintf(stderr, "failed to start loopback server (reactors=%d)\n",
                 reactors);
    return false;
  }

  std::vector<Socket> idle;
  out->idle_requested = idle_conns;
  out->idle_ok = OpenIdleConns("127.0.0.1", server.port(), idle_conns, &idle);

  std::unique_ptr<RemoteStore> remote =
      RemoteStore::Connect("127.0.0.1", server.port());
  if (remote == nullptr) {
    std::fprintf(stderr, "client connect failed (reactors=%d)\n", reactors);
    return false;
  }
  {
    std::vector<std::unique_ptr<StoreReadTxn>> warm;
    warm.reserve(static_cast<size_t>(config.clients));
    for (int i = 0; i < config.clients; ++i) {
      warm.push_back(remote->BeginReadTxn());
    }
  }

  out->mix = RunLinkBench(remote.get(), config, n);
  if (!MeasurePipelining(remote.get(), n, out)) {
    std::fprintf(stderr, "pipelining measurement failed (reactors=%d)\n",
                 reactors);
  }

  remote.reset();
  idle.clear();
  server.Stop();
  return true;
}

void PrintModeJson(const char* key, const ModeResult& mode, const char* trailer) {
  std::printf("  \"%s\": {\"idle_requested\": %zu, \"idle_ok\": %zu, "
              "\"throughput\": %.0f, \"mean_ms\": %.4f, \"p50_ms\": %.4f, "
              "\"p99_ms\": %.4f, \"p999_ms\": %.4f, \"failures\": %llu, "
              "\"sequential_write_ops_s\": %.0f, "
              "\"pipelined_write_ops_s\": %.0f, \"pipeline_speedup\": %.2f}%s\n",
              key, mode.idle_requested, mode.idle_ok, mode.mix.throughput(),
              mode.mix.overall.MeanMillis(),
              mode.mix.overall.PercentileMillis(0.50),
              mode.mix.overall.PercentileMillis(0.99),
              mode.mix.overall.PercentileMillis(0.999),
              static_cast<unsigned long long>(mode.mix.failures),
              mode.sequential_ops_s, mode.pipelined_ops_s,
              mode.sequential_ops_s > 0
                  ? mode.pipelined_ops_s / mode.sequential_ops_s
                  : 0.0,
              trailer);
}

// Transport comparison: blocking thread-per-connection vs epoll reactor,
// each under `idle_conns` parked connections plus the live LinkBench mix.
int RunModes(bool json, bool dump_metrics, size_t idle_conns) {
  LinkBenchConfig config = DefaultLinkBenchConfig();
  const std::string engine = EnvString("LG_ENGINE", "LiveGraph");
  const int shards = static_cast<int>(EnvInt("LG_SHARDS", 1));
  const std::string mix = EnvString("LG_MIX", "dflt");
  if (mix == "tao") {
    config.mix = TaoMix();
  } else if (mix == "ro") {
    config.mix = MixWithWriteRatio(0.0);
  }

  std::unique_ptr<Store> store = MakeStore(engine, nullptr,
                                           /*wal=*/false, shards);
  vertex_t n = LoadLinkBenchGraph(store.get(), config);

  if (!json) {
    std::printf("=== Server transport comparison (%zu idle conns) ===\n",
                idle_conns);
    std::printf("engine=%s clients=%d ops/client=%llu scale=%d\n",
                engine.c_str(), config.clients,
                static_cast<unsigned long long>(config.ops_per_client),
                config.scale);
    std::printf("%-22s %12s %10s %10s %10s %10s\n", "transport", "reqs/s",
                "mean(ms)", "P50(ms)", "P99(ms)", "P999(ms)");
  }

  ModeResult blocking, reactor;
  if (!RunOneMode(store.get(), config, n, /*reactors=*/0, idle_conns,
                  &blocking)) {
    return 1;
  }
  if (!RunOneMode(store.get(), config, n, /*reactors=*/-1, idle_conns,
                  &reactor)) {
    return 1;
  }

  if (json) {
    std::printf("{\n  \"bench\": \"server_modes\",\n");
    std::printf("  \"engine\": \"%s\",\n  \"clients\": %d,\n"
                "  \"ops_per_client\": %llu,\n  \"idle_conns\": %zu,\n",
                engine.c_str(), config.clients,
                static_cast<unsigned long long>(config.ops_per_client),
                idle_conns);
    PrintModeJson("blocking", blocking, ",");
    PrintModeJson("reactor", reactor, dump_metrics ? "," : "");
    if (dump_metrics) {
      std::printf("  \"metrics\": %s\n", MetricsJson().c_str());
    }
    std::printf("}\n");
  } else {
    PrintRemoteRow("blocking (reactors=0)", blocking.mix);
    PrintRemoteRow("reactor (default)", reactor.mix);
    std::printf("idle conns accepted: blocking %zu/%zu, reactor %zu/%zu\n",
                blocking.idle_ok, blocking.idle_requested, reactor.idle_ok,
                reactor.idle_requested);
    std::printf("pipelined writes: blocking %.0f -> %.0f ops/s (%.1fx), "
                "reactor %.0f -> %.0f ops/s (%.1fx)\n",
                blocking.sequential_ops_s, blocking.pipelined_ops_s,
                blocking.sequential_ops_s > 0
                    ? blocking.pipelined_ops_s / blocking.sequential_ops_s
                    : 0.0,
                reactor.sequential_ops_s, reactor.pipelined_ops_s,
                reactor.sequential_ops_s > 0
                    ? reactor.pipelined_ops_s / reactor.sequential_ops_s
                    : 0.0);
  }

  // The acceptance gate for the high-connection mode: every parked
  // connection accepted and zero failed requests in the live mix, on both
  // transports.
  bool clean = blocking.idle_ok == idle_conns && reactor.idle_ok == idle_conns &&
               blocking.mix.failures == 0 && reactor.mix.failures == 0;
  if (!clean) {
    std::fprintf(stderr, "server_modes: FAILED gate (idle %zu/%zu + %zu/%zu, "
                 "failures %llu + %llu)\n",
                 blocking.idle_ok, idle_conns, reactor.idle_ok, idle_conns,
                 static_cast<unsigned long long>(blocking.mix.failures),
                 static_cast<unsigned long long>(reactor.mix.failures));
    return 1;
  }
  return 0;
}

// Read scale-out: identical read-only rounds against one read target
// (the primary) and against two (primary + follower driven concurrently,
// each by its own client fleet). The follower applies the replication
// stream; reads through it carry the read-your-epoch bound, so this is
// the served contract, not a dirty-read shortcut.
int RunReplica(bool json, bool dump_metrics) {
  LinkBenchConfig config = DefaultLinkBenchConfig();
  config.mix = MixWithWriteRatio(0.0);  // followers serve reads only
  const int shards = static_cast<int>(EnvInt("LG_SHARDS", 2));

  const std::string root =
      "/tmp/lg_bench_replica_" + std::to_string(::getpid());
  std::filesystem::remove_all(root);
  ShardOptions shard_options;
  shard_options.shards = shards;
  shard_options.dir = root + "/primary";
  shard_options.graph.region_reserve = size_t{1} << 34;
  shard_options.graph.max_vertices = size_t{1} << 24;
  shard_options.graph.fsync_wal = false;
  std::unique_ptr<ShardedStore> primary = ShardedStore::Recover(shard_options);
  if (primary == nullptr) {
    std::fprintf(stderr, "failed to open primary at %s\n",
                 shard_options.dir.c_str());
    return 1;
  }
  vertex_t n = LoadLinkBenchGraph(primary.get(), config);

  ReplicationHub hub;
  if (!hub.Attach(*primary)) {
    std::fprintf(stderr, "replication hub failed to attach\n");
    return 1;
  }
  DomainFrontier primary_frontier(hub.domain());
  GraphServer::Options primary_options;
  primary_options.replication = &hub;
  primary_options.frontier = &primary_frontier;
  GraphServer primary_server(*primary, primary_options);
  if (!primary_server.Start()) {
    std::fprintf(stderr, "failed to start primary server\n");
    return 1;
  }

  Replica::Options replica_options;
  replica_options.primary_port = primary_server.port();
  replica_options.graph = shard_options.graph;
  Replica replica(replica_options);
  replica.Start();
  if (!replica.WaitReady(60'000)) {
    std::fprintf(stderr, "follower never bootstrapped\n");
    return 1;
  }
  GraphServer::Options follower_options;
  follower_options.frontier = &replica.frontier();
  GraphServer follower_server(replica.store(), follower_options);
  if (!follower_server.Start()) {
    std::fprintf(stderr, "failed to start follower server\n");
    return 1;
  }

  auto connect = [&](bool to_follower) {
    RemoteStore::Options options;
    options.port = primary_server.port();
    if (to_follower) {
      options.replica_port = follower_server.port();
      options.read_your_epoch_timeout_ms = 10'000;
    }
    return RemoteStore::Connect(options);
  };
  std::unique_ptr<RemoteStore> primary_client = connect(false);
  std::unique_ptr<RemoteStore> follower_client = connect(true);
  if (primary_client == nullptr || follower_client == nullptr) {
    std::fprintf(stderr, "client connect failed\n");
    return 1;
  }

  if (!json) {
    std::printf("=== Replicated read scaling (read-only mix) ===\n");
    std::printf("shards=%d clients/target=%d ops/client=%llu scale=%d\n",
                shards, config.clients,
                static_cast<unsigned long long>(config.ops_per_client),
                config.scale);
    std::printf("%-22s %12s %10s %10s %10s %10s\n", "targets", "reqs/s",
                "mean(ms)", "P50(ms)", "P99(ms)", "P999(ms)");
  }

  // Round 1: one read target, all clients on the primary.
  DriverResult one = RunLinkBench(primary_client.get(), config, n);
  if (!json) PrintRemoteRow("1 (primary)", one);

  // Round 2: two read targets, a full client fleet per target running
  // concurrently. Aggregate throughput is the read-scaling headline.
  DriverResult two_primary, two_follower;
  std::thread follower_fleet([&] {
    two_follower = RunLinkBench(follower_client.get(), config, n);
  });
  two_primary = RunLinkBench(primary_client.get(), config, n);
  follower_fleet.join();
  double combined = two_primary.throughput() + two_follower.throughput();
  double scaling = one.throughput() > 0 ? combined / one.throughput() : 0.0;
  if (json) {
    std::printf("{\n  \"bench\": \"replication_read_scaling\",\n");
    std::printf("  \"shards\": %d,\n  \"clients_per_target\": %d,\n"
                "  \"ops_per_client\": %llu,\n",
                shards, config.clients,
                static_cast<unsigned long long>(config.ops_per_client));
    PrintJsonResult("one_target", one, ",");
    PrintJsonResult("two_targets_primary", two_primary, ",");
    PrintJsonResult("two_targets_follower", two_follower, ",");
    std::printf("  \"combined_throughput\": %.0f,\n  \"scaling_x\": %.2f%s\n",
                combined, scaling, dump_metrics ? "," : "");
    if (dump_metrics) {
      std::printf("  \"metrics\": %s\n", MetricsJson().c_str());
    }
    std::printf("}\n");
  } else {
    PrintRemoteRow("2 (primary share)", two_primary);
    PrintRemoteRow("2 (follower share)", two_follower);
    std::printf("combined %.0f reqs/s — %.2fx one target\n", combined,
                scaling);
  }

  primary_client.reset();
  follower_client.reset();
  follower_server.Stop();
  replica.Stop();
  primary_server.Stop();
  hub.Detach();
  primary.reset();
  std::filesystem::remove_all(root);
  return 0;
}

}  // namespace
}  // namespace livegraph::bench

int main(int argc, char** argv) {
  bool json = false;
  bool replica = false;
  bool dump_metrics = false;
  long idle_conns = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--replica") == 0) replica = true;
    if (std::strcmp(argv[i], "--dump-metrics") == 0) dump_metrics = true;
    if (std::strncmp(argv[i], "--idle-conns=", 13) == 0) {
      idle_conns = std::atol(argv[i] + 13);
      if (idle_conns < 0) {
        std::fprintf(stderr, "--idle-conns must be >= 0\n");
        return 1;
      }
    }
  }
  if (idle_conns >= 0) {
    return livegraph::bench::RunModes(json, dump_metrics,
                                      static_cast<size_t>(idle_conns));
  }
  return replica ? livegraph::bench::RunReplica(json, dump_metrics)
                 : livegraph::bench::Run(json, dump_metrics);
}
