// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench prints the corresponding paper table/figure as aligned text.
// Scales default small enough that the full suite completes in minutes;
// env overrides (LG_SCALE, LG_OPS, LG_CLIENTS, ...) reproduce paper-sized
// runs when hardware/time permits.
#ifndef LIVEGRAPH_BENCH_BENCH_COMMON_H_
#define LIVEGRAPH_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "baselines/btree_store.h"
#include "baselines/linked_list_store.h"
#include "baselines/livegraph_store.h"
#include "baselines/lsmt_store.h"
#include "shard/sharded_store.h"
#include "util/metrics.h"
#include "workload/linkbench.h"

namespace livegraph::bench {

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline GraphOptions BenchGraphOptions(bool wal = false) {
  GraphOptions options;
  options.region_reserve = size_t{1} << 34;
  options.max_vertices = size_t{1} << 24;
  if (wal) {
    options.wal_path = "/tmp/livegraph_bench_wal_" +
                       std::to_string(::getpid()) + ".log";
    options.fsync_wal = false;  // tmp storage; group commit path still runs
  }
  return options;
}

/// The three transactional contenders of Tables 3-6 (§7.1: "we compare
/// LiveGraph with three embedded implementations ... as representatives for
/// using B+ tree, LSMT, and linked list respectively"). `shards > 1` swaps
/// the LiveGraph engine for the hash-partitioned ShardedLiveGraph
/// (docs/SHARDING.md); page-cache instrumentation stays single-engine.
inline std::unique_ptr<Store> MakeStore(const std::string& name,
                                        PageCacheSim* pagesim = nullptr,
                                        bool wal = false, int shards = 1) {
  if (name == "LiveGraph") {
    if (shards > 1) {
      ShardOptions options;
      options.shards = shards;
      options.graph = BenchGraphOptions(wal);
      return std::make_unique<ShardedStore>(options);
    }
    return std::make_unique<LiveGraphStore>(BenchGraphOptions(wal), pagesim);
  }
  if (name == "LSMT") {
    Lsmt::Options options;
    options.pagesim = pagesim;
    return std::make_unique<LsmtStore>(options);
  }
  if (name == "BTree") {
    return std::make_unique<BTreeStore>(pagesim);
  }
  return std::make_unique<LinkedListStore>(pagesim);
}

inline void PrintLatencyRow(const char* system, const DriverResult& result) {
  std::printf("%-12s %10.4f %10.4f %10.4f %14.0f", system,
              result.overall.MeanMillis(),
              result.overall.PercentileMillis(0.99),
              result.overall.PercentileMillis(0.999), result.throughput());
  if (result.failures > 0) {
    std::printf("  (%llu failed, %.2f%%)",
                static_cast<unsigned long long>(result.failures),
                100.0 * result.failure_rate());
  }
  std::printf("\n");
}

inline void PrintLatencyHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-12s %10s %10s %10s %14s\n", "system", "mean(ms)", "P99(ms)",
              "P999(ms)", "reqs/s");
}

/// --dump-metrics support (docs/OBSERVABILITY.md): the process metrics
/// registry rendered as one JSON object — counters and gauges keyed by
/// their registered names (label text included), histograms as
/// {count, sum, p50_ns, p99_ns}. Embed as a `"metrics"` member of a
/// bench's --json document so a perf run carries the engine's own view of
/// what it did (commits, WAL bytes, group sizes) next to the harness
/// numbers.
inline std::string MetricsJson() {
  metrics::Snapshot snapshot = metrics::Registry::Instance().Collect();
  std::string out = "{";
  auto append_key = [&out](const std::string& name) {
    out += '"';
    for (char c : name) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\": ";
  };
  char buffer[160];
  bool first = true;
  auto separator = [&] {
    if (!first) out += ", ";
    first = false;
  };
  for (const auto& [name, value] : snapshot.counters) {
    separator();
    append_key(name);
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(value));
    out += buffer;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    separator();
    append_key(name);
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    out += buffer;
  }
  for (const metrics::HistogramSample& h : snapshot.histograms) {
    separator();
    append_key(h.name);
    std::snprintf(buffer, sizeof(buffer),
                  "{\"count\": %llu, \"sum\": %.10g, \"p50_ns\": %llu, "
                  "\"p99_ns\": %llu}",
                  static_cast<unsigned long long>(h.count), h.sum,
                  static_cast<unsigned long long>(h.p50),
                  static_cast<unsigned long long>(h.p99));
    out += buffer;
  }
  out += "}";
  return out;
}

}  // namespace livegraph::bench

#endif  // LIVEGRAPH_BENCH_BENCH_COMMON_H_
