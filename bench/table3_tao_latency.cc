// Table 3: LinkBench TAO (99.8% reads) in-memory latency — mean/P99/P999
// per system. Paper result: LiveGraph 2.47x lower mean latency than the
// runner-up (LMDB/B+ tree); RocksDB/LSMT worst in memory.
#include "bench/linkbench_tables.h"

int main() {
  using namespace livegraph::bench;
  RunLatencyTable(TableConfig{"Table 3: LinkBench TAO, in memory",
                              livegraph::TaoMix()});
  std::printf("\npaper shape: LiveGraph < BTree(LMDB) < LSMT(RocksDB)\n");
  return 0;
}
