// §7.2 "Memory consumption" and "Effectiveness of compaction": footprint
// with compaction on vs off under an update-heavy LinkBench run. Paper:
// disabling compaction inflates LiveGraph's footprint by 33.7%; final
// occupancy with compaction is 81.2%.
#include "bench/linkbench_tables.h"

namespace livegraph::bench {
namespace {

Graph::MemoryStats RunAndMeasure(bool compaction_enabled) {
  GraphOptions options = BenchGraphOptions();
  options.enable_compaction = compaction_enabled;
  options.compaction_interval =
      static_cast<uint64_t>(EnvInt("LG_COMPACTION_INTERVAL", 8192));
  LiveGraphStore store(options);
  LinkBenchConfig config = DefaultLinkBenchConfig();
  config.mix = MixWithWriteRatio(0.5);  // update-heavy to create garbage
  config.ops_per_client = static_cast<uint64_t>(EnvInt("LG_OPS", 20'000));
  vertex_t n = LoadLinkBenchGraph(&store, config);
  RunLinkBench(&store, config, n);
  // Drain: a couple of synchronous passes reclaim what the background
  // thread retired.
  if (compaction_enabled) {
    store.graph().RunCompactionPass();
    store.graph().RunCompactionPass();
  }
  return store.graph().CollectMemoryStats();
}

}  // namespace
}  // namespace livegraph::bench

int main() {
  using namespace livegraph::bench;
  std::printf("=== §7.2 memory consumption & compaction effectiveness ===\n");
  auto with = RunAndMeasure(true);
  auto without = RunAndMeasure(false);
  auto mib = [](uint64_t bytes) { return double(bytes) / (1 << 20); };
  std::printf("%-22s %12s %12s %12s %12s\n", "config", "alloc(MiB)",
              "live(MiB)", "free(MiB)", "retired");
  std::printf("%-22s %12.1f %12.1f %12.1f %12.1f\n", "compaction ON",
              mib(with.block_store_allocated), mib(with.block_store_live),
              mib(with.block_store_free), mib(with.block_store_retired));
  std::printf("%-22s %12.1f %12.1f %12.1f %12.1f\n", "compaction OFF",
              mib(without.block_store_allocated),
              mib(without.block_store_live), mib(without.block_store_free),
              mib(without.block_store_retired));
  double inflation =
      100.0 * (double(without.block_store_live) / double(with.block_store_live) -
               1.0);
  std::printf("\nfootprint inflation without compaction: %.1f%%  "
              "(paper: 33.7%%)\n", inflation);
  double occupancy = 100.0 * double(with.block_store_live) /
                     double(with.block_store_allocated);
  std::printf("final occupancy with compaction:        %.1f%%  "
              "(paper: 81.2%%)\n", occupancy);
  return 0;
}
