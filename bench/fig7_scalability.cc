// Figure 7a: LiveGraph multi-core scalability on TAO and DFLT (paper:
// near-ideal for TAO until physical cores exhausted; DFLT limited by WAL).
// Figure 7b: TEL block-size distribution after the run — the power-law
// degree distribution mapped onto power-of-2 blocks ("validating TEL's
// buddy-system design").
//
// `--json` switches stdout to a single machine-readable JSON document
// (used by the CI perf smoke and the BENCH_commit.json / BENCH_shard.json
// before/after recordings); the human tables are suppressed.
//
// `--shards=N` runs the same sweep over the hash-partitioned
// ShardedLiveGraph engine (docs/SHARDING.md) — N commit pipelines, N lock
// arrays — which is how BENCH_shard.json's 1-vs-4-shard rows are recorded.
#include <cstring>
#include <map>
#include <vector>

#include "bench/linkbench_tables.h"

namespace {

struct Row {
  std::string mix;
  int clients;
  double throughput;
  uint64_t failures;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace livegraph;
  using namespace livegraph::bench;

  bool json = false;
  bool dump_metrics = false;
  int shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--dump-metrics") == 0) dump_metrics = true;
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::atoi(argv[i] + 9);
    }
  }

  std::vector<Row> rows;
  uint64_t ops_per_client = static_cast<uint64_t>(EnvInt("LG_OPS", 20'000));

  if (!json) {
    std::printf("=== Figure 7a: %s scalability ===\n",
                shards > 1 ? "ShardedLiveGraph" : "LiveGraph");
    std::printf("%-8s %8s %14s %14s %10s\n", "mix", "clients", "reqs/s",
                "ideal", "eff");
  }
  LiveGraphStore* dflt_store_keepalive = nullptr;
  std::unique_ptr<Store> dflt_store;
  for (const auto& [name, mix] :
       std::map<std::string, livegraph::LinkBenchMix>{
           {"TAO", livegraph::TaoMix()}, {"DFLT", livegraph::DfltMix()}}) {
    LinkBenchConfig config = DefaultLinkBenchConfig();
    config.mix = mix;
    config.ops_per_client = ops_per_client;
    auto store = MakeStore("LiveGraph", nullptr, /*wal=*/true, shards);
    vertex_t n = LoadLinkBenchGraph(store.get(), config);
    double base_throughput = 0;
    for (int clients : {1, 2, 4, 8, 16}) {
      if (clients > EnvInt("LG_MAX_CLIENTS", 16)) break;
      config.clients = clients;
      DriverResult result = RunLinkBench(store.get(), config, n);
      if (clients == 1) base_throughput = result.throughput();
      double ideal = base_throughput * clients;
      rows.push_back(Row{name, clients, result.throughput(), result.failures});
      if (!json) {
        std::printf("%-8s %8d %14.0f %14.0f %9.0f%%\n", name.c_str(), clients,
                    result.throughput(), ideal,
                    ideal > 0 ? 100.0 * result.throughput() / ideal : 0.0);
      }
    }
    if (name == "DFLT" && shards == 1) {
      dflt_store = std::move(store);
      dflt_store_keepalive =
          static_cast<LiveGraphStore*>(dflt_store.get());
    }
  }

  if (json) {
    std::printf("{\n  \"bench\": \"fig7_scalability\",\n");
    std::printf("  \"shards\": %d,\n", shards);
    std::printf("  \"ops_per_client\": %llu,\n",
                static_cast<unsigned long long>(ops_per_client));
    std::printf("  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      std::printf("    {\"mix\": \"%s\", \"clients\": %d, "
                  "\"throughput\": %.0f, \"failures\": %llu}%s\n",
                  rows[i].mix.c_str(), rows[i].clients, rows[i].throughput,
                  static_cast<unsigned long long>(rows[i].failures),
                  i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]%s\n", dump_metrics ? "," : "");
    if (dump_metrics) {
      std::printf("  \"metrics\": %s\n", MetricsJson().c_str());
    }
    std::printf("}\n");
    return 0;
  }

  if (dflt_store_keepalive != nullptr) {
    std::printf("\n=== Figure 7b: TEL block size distribution ===\n");
    std::printf("%-12s %12s\n", "bytes", "blocks");
    for (const auto& [size, count] :
         dflt_store_keepalive->graph().CollectTelSizeHistogram()) {
      std::printf("%-12zu %12zu\n", size, count);
    }
  }
  return 0;
}
