// Figure 7a: LiveGraph multi-core scalability on TAO and DFLT (paper:
// near-ideal for TAO until physical cores exhausted; DFLT limited by WAL).
// Figure 7b: TEL block-size distribution after the run — the power-law
// degree distribution mapped onto power-of-2 blocks ("validating TEL's
// buddy-system design").
#include <map>

#include "bench/linkbench_tables.h"

int main() {
  using namespace livegraph;
  using namespace livegraph::bench;

  std::printf("=== Figure 7a: LiveGraph scalability ===\n");
  std::printf("%-8s %8s %14s %14s %10s\n", "mix", "clients", "reqs/s",
              "ideal", "eff");
  LiveGraphStore* dflt_store_keepalive = nullptr;
  std::unique_ptr<Store> dflt_store;
  for (const auto& [name, mix] :
       std::map<std::string, livegraph::LinkBenchMix>{
           {"TAO", livegraph::TaoMix()}, {"DFLT", livegraph::DfltMix()}}) {
    LinkBenchConfig config = DefaultLinkBenchConfig();
    config.mix = mix;
    config.ops_per_client = static_cast<uint64_t>(EnvInt("LG_OPS", 20'000));
    auto store = MakeStore("LiveGraph", nullptr, /*wal=*/true);
    vertex_t n = LoadLinkBenchGraph(store.get(), config);
    double base_throughput = 0;
    for (int clients : {1, 2, 4, 8, 16}) {
      if (clients > EnvInt("LG_MAX_CLIENTS", 16)) break;
      config.clients = clients;
      DriverResult result = RunLinkBench(store.get(), config, n);
      if (clients == 1) base_throughput = result.throughput();
      double ideal = base_throughput * clients;
      std::printf("%-8s %8d %14.0f %14.0f %9.0f%%\n", name.c_str(), clients,
                  result.throughput(), ideal,
                  ideal > 0 ? 100.0 * result.throughput() / ideal : 0.0);
    }
    if (name == "DFLT") {
      dflt_store = std::move(store);
      dflt_store_keepalive =
          static_cast<LiveGraphStore*>(dflt_store.get());
    }
  }

  std::printf("\n=== Figure 7b: TEL block size distribution ===\n");
  std::printf("%-12s %12s\n", "bytes", "blocks");
  for (const auto& [size, count] :
       dflt_store_keepalive->graph().CollectTelSizeHistogram()) {
    std::printf("%-12zu %12zu\n", size, count);
  }
  return 0;
}
