// Ablations of the design choices DESIGN.md §3 calls out:
//   1. Bloom filters on/off — insert-vs-update discrimination (§4).
//   2. Group-commit batch size — persist-phase batching (§5).
//   3. Compaction interval — GC pressure vs footprint (§6).
#include <thread>

#include "bench/linkbench_tables.h"
#include "util/futex_lock.h"

namespace livegraph::bench {
namespace {

// §5: "for write-intensive scenarios when many concurrent writers compete
// for a common lock, spinning becomes a significant bottleneck while
// futex-based implementations utilize CPU cycles better".
template <typename LockType>
double LockedOpsPerSecond(int threads, int64_t iterations) {
  LockType lock;
  volatile int64_t counter = 0;
  Timer timer;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (int64_t i = 0; i < iterations; ++i) {
        while (!lock.TryLockFor(1'000'000'000)) {
        }
        counter = counter + 1;
        lock.Unlock();
      }
    });
  }
  for (auto& th : pool) th.join();
  return double(threads) * double(iterations) / timer.Seconds();
}

double Throughput(GraphOptions options, const LinkBenchMix& mix) {
  LiveGraphStore store(std::move(options));
  LinkBenchConfig config = DefaultLinkBenchConfig();
  config.mix = mix;
  config.ops_per_client = static_cast<uint64_t>(EnvInt("LG_OPS", 15'000));
  vertex_t n = LoadLinkBenchGraph(&store, config);
  return RunLinkBench(&store, config, n).throughput();
}

}  // namespace
}  // namespace livegraph::bench

int main() {
  using namespace livegraph;
  using namespace livegraph::bench;

  std::printf("=== Ablation 1: TEL Bloom filters (insert-heavy mix) ===\n");
  {
    auto mix = livegraph::MixWithWriteRatio(0.8);
    GraphOptions on = BenchGraphOptions();
    GraphOptions off = BenchGraphOptions();
    off.enable_bloom_filters = false;
    std::printf("%-18s %14.0f reqs/s\n", "bloom ON", Throughput(on, mix));
    std::printf("%-18s %14.0f reqs/s\n", "bloom OFF", Throughput(off, mix));
    std::printf("(paper §4: >99.9%% of inserts skip the duplicate scan "
                "thanks to early Bloom rejection)\n");
  }

  std::printf("\n=== Ablation 2: group commit batch size (DFLT) ===\n");
  for (size_t batch : {size_t{1}, size_t{16}, size_t{256}}) {
    GraphOptions options = BenchGraphOptions(/*wal=*/true);
    options.group_commit_max_batch = batch;
    std::printf("max batch %-8zu %14.0f reqs/s\n", batch,
                Throughput(options, livegraph::DfltMix()));
  }

  std::printf("\n=== Ablation 3: compaction interval (50%% writes) ===\n");
  for (uint64_t interval : {uint64_t{1024}, uint64_t{65536}}) {
    GraphOptions options = BenchGraphOptions();
    options.compaction_interval = interval;
    std::printf("interval %-8llu %14.0f reqs/s\n",
                static_cast<unsigned long long>(interval),
                Throughput(options, livegraph::MixWithWriteRatio(0.5)));
  }
  std::printf("(paper §7.2: varying compaction frequency changes "
              "performance <5%%)\n");

  std::printf("\n=== Ablation 4: futex vs spinlock vertex locks ===\n");
  const int64_t iters = EnvInt("LG_LOCK_ITERS", 200'000);
  for (int threads : {2, 8, 16}) {
    std::printf("threads %-4d futex %12.0f locks/s   spin %12.0f locks/s\n",
                threads, LockedOpsPerSecond<FutexLock>(threads, iters),
                LockedOpsPerSecond<SpinLock>(threads, iters));
  }
  std::printf("(paper §5: futexes chosen — spinning wastes cycles under "
              "write contention)\n");
  return 0;
}
