// Table 8: SNB interactive throughput out of core (simulated page cache).
// Paper: both systems drop hard; LiveGraph still an order of magnitude
// ahead, and its OOC Overall beats the comparator's in-memory number.
#include "bench/bench_common.h"
#include "snb/snb_driver.h"

// Reuses the harness from table7 via a second compilation of the table
// function with the out-of-core flag.
namespace livegraph::bench {
void RunTable8() {
  using namespace livegraph::snb;
  DatagenOptions datagen;
  datagen.scale_factor = EnvDouble("LG_SF", 0.5);
  std::printf("=== Table 8: SNB throughput out of core (reqs/s) ===\n");
  std::printf("%-14s %14s %14s\n", "system", "Complex-Only", "Overall");
  for (const char* system : {"LiveGraph", "BTree"}) {
    size_t pages = static_cast<size_t>(datagen.scale_factor * 10'000);
    PageCacheSim pagesim(PageCacheSim::Optane(pages));
    auto store = MakeStore(system, &pagesim,
                           /*wal=*/system == std::string("LiveGraph"));
    SnbDataset data = GenerateSnb(store.get(), datagen);
    SnbRunOptions run;
    run.clients = static_cast<int>(EnvInt("LG_CLIENTS", 8));
    run.ops_per_client = static_cast<uint64_t>(EnvInt("LG_OPS", 150));
    run.mode = SnbMode::kComplexOnly;
    double complex_tput = RunSnb(store.get(), &data, run).throughput();
    run.mode = SnbMode::kOverall;
    double overall_tput = RunSnb(store.get(), &data, run).throughput();
    std::printf("%-14s %14.1f %14.1f\n", system, complex_tput, overall_tput);
  }
  std::printf("\npaper shape: heavy hit for both; LiveGraph ~10x ahead\n");
}
}  // namespace livegraph::bench

int main() {
  livegraph::bench::RunTable8();
  return 0;
}
