// Figure 8: LinkBench throughput with the write ratio scaled from DFLT's
// 31% up to 100%, LiveGraph vs the LSMT (the DFLT winners), in memory (a)
// and out of core (b). Paper shape: LiveGraph's advantage shrinks as
// writes grow but it still wins in memory at 100% writes (1.54x); out of
// core RocksDB overtakes at ~75% (Optane) thanks to sequential flushing.
#include "bench/linkbench_tables.h"

namespace livegraph::bench {
namespace {

void Panel(const char* title, bool out_of_core) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-12s %8s %14s\n", "system", "write%", "reqs/s");
  for (const char* system : {"LiveGraph", "LSMT"}) {
    LinkBenchConfig config = DefaultLinkBenchConfig();
    config.ops_per_client =
        static_cast<uint64_t>(EnvInt("LG_OPS", out_of_core ? 2'000 : 10'000));
    std::unique_ptr<PageCacheSim> pagesim;
    if (out_of_core) {
      size_t dataset_pages = (uint64_t{1} << config.scale) * 5 *
                             (config.payload_bytes + 64) / 4096;
      pagesim = std::make_unique<PageCacheSim>(
          PageCacheSim::Optane(dataset_pages / 8));
    }
    auto store = MakeStore(system, pagesim.get(),
                           /*wal=*/system == std::string("LiveGraph"));
    vertex_t n = LoadLinkBenchGraph(store.get(), config);
    for (int write_pct : {25, 50, 75, 100}) {
      config.mix = MixWithWriteRatio(write_pct / 100.0);
      DriverResult result = RunLinkBench(store.get(), config, n);
      std::printf("%-12s %8d %14.0f\n", system, write_pct,
                  result.throughput());
    }
  }
}

}  // namespace
}  // namespace livegraph::bench

int main() {
  using namespace livegraph::bench;
  Panel("Figure 8a: write-ratio sweep, in memory", false);
  Panel("Figure 8b: write-ratio sweep, out of core (Optane sim)", true);
  return 0;
}
