#include "snb/datagen.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"
#include "util/zipf.h"

namespace livegraph::snb {

namespace {

// Monotone "event clock": every created entity gets the next date, giving
// realistic time-ordered TELs (LinkBench/TAO-style time locality).
class EventClock {
 public:
  int64_t Next() { return ++now_; }
  int64_t now() const { return now_; }

 private:
  int64_t now_ = 1'000'000;
};

}  // namespace

SnbDataset GenerateSnb(Store* store, const DatagenOptions& options) {
  SnbDataset data;
  Xorshift rng(options.seed);
  EventClock clock;
  const int person_count = std::max(
      8, static_cast<int>(options.persons_per_sf * options.scale_factor));

  // --- Tags & places ---
  for (int i = 0; i < options.tags; ++i) {
    Tag tag;
    tag.name = static_cast<uint32_t>(i);
    data.tags.push_back(store->AddNode(Encode(tag)));
  }
  for (int i = 0; i < options.places; ++i) {
    Place place;
    place.name = static_cast<uint32_t>(i);
    data.places.push_back(store->AddNode(Encode(place)));
  }

  // --- Persons ---
  for (int i = 0; i < person_count; ++i) {
    Person person;
    person.first_name = static_cast<uint16_t>(rng.NextBounded(kFirstNamePool));
    person.last_name = static_cast<uint16_t>(rng.NextBounded(kLastNamePool));
    person.birthday = static_cast<int64_t>(rng.NextBounded(2'000'000));
    person.creation_date = clock.Next();
    vertex_t v = store->AddNode(Encode(person));
    data.persons.push_back(v);
    store->AddLink(v, kIsLocatedIn,
                   data.places[rng.NextBounded(data.places.size())], {});
    // 1-4 interests.
    for (uint64_t t = 0, n = 1 + rng.NextBounded(4); t < n; ++t) {
      store->AddLink(v, kHasInterest,
                     data.tags[rng.NextBounded(data.tags.size())], {});
    }
  }

  // --- Knows graph: power-law mutual friendships ---
  // Degree-skewed partner sampling (Zipf over persons) approximates the
  // LDBC generator's correlated, heavy-tailed friend distribution.
  ScrambledZipf person_zipf(data.persons.size(), 0.8, options.seed * 3 + 1);
  const auto knows_edges = static_cast<uint64_t>(
      options.avg_knows * static_cast<double>(person_count) / 2.0);
  for (uint64_t e = 0; e < knows_edges; ++e) {
    vertex_t a = data.persons[person_zipf.Sample(rng)];
    vertex_t b = data.persons[person_zipf.Sample(rng)];
    if (a == b) continue;
    KnowsProps props{clock.Next()};
    std::string encoded = Encode(props);
    store->AddLink(a, kKnows, b, encoded);  // mutual
    store->AddLink(b, kKnows, a, encoded);
  }

  // --- Forums ---
  const int forum_count = std::max(1, person_count / 3);
  for (int f = 0; f < forum_count; ++f) {
    Forum forum;
    forum.moderator = data.persons[rng.NextBounded(data.persons.size())];
    forum.creation_date = clock.Next();
    vertex_t v = store->AddNode(Encode(forum));
    data.forums.push_back(v);
    store->AddLink(v, kHasModerator, forum.moderator, {});
    for (uint64_t m = 0, n = 2 + rng.NextBounded(16); m < n; ++m) {
      store->AddLink(v, kHasMember,
                     data.persons[rng.NextBounded(data.persons.size())], {});
    }
  }

  // --- Posts (power-law activity per author) ---
  ScrambledZipf author_zipf(data.persons.size(), 0.9, options.seed * 5 + 1);
  const auto post_count = static_cast<uint64_t>(
      options.posts_per_person * static_cast<double>(person_count));
  std::vector<vertex_t> posts;
  for (uint64_t p = 0; p < post_count; ++p) {
    Message post;
    post.kind = EntityKind::kPost;
    post.creation_date = clock.Next();
    post.author = data.persons[author_zipf.Sample(rng)];
    post.content_length = 20 + static_cast<uint32_t>(rng.NextBounded(2000));
    vertex_t v = store->AddNode(Encode(post));
    posts.push_back(v);
    data.messages.push_back(v);
    store->AddLink(v, kHasCreator, post.author, {});
    store->AddLink(post.author, kCreated, v, {});
    vertex_t forum = data.forums[rng.NextBounded(data.forums.size())];
    store->AddLink(forum, kContainerOf, v, {});
    for (uint64_t t = 0, n = 1 + rng.NextBounded(3); t < n; ++t) {
      store->AddLink(v, kHasTag, data.tags[rng.NextBounded(data.tags.size())],
                     {});
    }
  }

  // --- Comment trees ---
  const auto comment_count = static_cast<uint64_t>(
      options.comments_per_post * static_cast<double>(posts.size()));
  std::vector<vertex_t> comment_targets = posts;  // grows with comments
  for (uint64_t c = 0; c < comment_count; ++c) {
    Message comment;
    comment.kind = EntityKind::kComment;
    comment.creation_date = clock.Next();
    comment.author = data.persons[author_zipf.Sample(rng)];
    comment.content_length = 5 + static_cast<uint32_t>(rng.NextBounded(500));
    vertex_t parent =
        comment_targets[rng.NextBounded(comment_targets.size())];
    vertex_t v = store->AddNode(Encode(comment));
    data.messages.push_back(v);
    comment_targets.push_back(v);
    store->AddLink(v, kHasCreator, comment.author, {});
    store->AddLink(comment.author, kCreated, v, {});
    store->AddLink(v, kReplyOf, parent, {});
    store->AddLink(parent, kReplies, v, {});
  }

  // --- Likes ---
  const auto like_count = static_cast<uint64_t>(
      options.likes_per_message * static_cast<double>(data.messages.size()));
  for (uint64_t l = 0; l < like_count; ++l) {
    vertex_t person = data.persons[person_zipf.Sample(rng)];
    vertex_t message = data.messages[rng.NextBounded(data.messages.size())];
    KnowsProps like{clock.Next()};
    std::string encoded = Encode(like);
    store->AddLink(person, kLikes, message, encoded);
    store->AddLink(message, kLikedBy, person, encoded);
  }

  data.max_date = clock.now();
  return data;
}

}  // namespace livegraph::snb
