// LDBC SNB interactive queries, written once against the v2 StoreReadTxn /
// Store session interfaces so they run unmodified on LiveGraph and on the
// relational-style B+ tree comparator (§7.3). Three request categories:
// "short reads (similar to LinkBench operations), transactional updates
// (possibly involving multiple objects), and complex reads (multi-hop
// traversals, shortest paths, and analytical processing)". Reads scan
// through EdgeCursor; each update runs as ONE write session covering all
// of its objects (the multi-object transactionality §7.3 calls out).
#ifndef LIVEGRAPH_SNB_QUERIES_H_
#define LIVEGRAPH_SNB_QUERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/store.h"
#include "snb/schema.h"

namespace livegraph::snb {

// --- Short reads ---

/// IS1: a person's profile.
bool ShortPersonProfile(StoreReadTxn& txn, vertex_t person, Person* out);

/// IS2: a person's 10 most recent messages.
struct RecentMessage {
  vertex_t message;
  int64_t creation_date;
};
std::vector<RecentMessage> ShortRecentMessages(StoreReadTxn& txn,
                                               vertex_t person,
                                               size_t limit = 10);

/// IS3: all friends of a person with the friendship creation date.
struct Friendship {
  vertex_t person;
  int64_t since;
};
std::vector<Friendship> ShortFriends(StoreReadTxn& txn, vertex_t person);

/// IS7: replies to a message, with their authors.
struct Reply {
  vertex_t comment;
  vertex_t author;
};
std::vector<Reply> ShortReplies(StoreReadTxn& txn, vertex_t message);

/// IS4: content metadata of a message.
bool ShortMessageContent(StoreReadTxn& txn, vertex_t message, Message* out);

/// IS5: the creator of a message.
vertex_t ShortMessageCreator(StoreReadTxn& txn, vertex_t message);

// --- Complex reads ---

/// IC1: persons with a given first name within 3 knows-hops, nearest first,
/// up to `limit` ("Complex read 1 accesses many vertices (3-hop
/// neighbors)", §7.3).
struct NamedPerson {
  vertex_t person;
  int distance;
};
std::vector<NamedPerson> ComplexFriendsByName(StoreReadTxn& txn,
                                              vertex_t start,
                                              uint16_t first_name,
                                              size_t limit = 20);

/// IC2: 20 most recent messages created by the person's friends, newest
/// first.
std::vector<RecentMessage> ComplexFriendMessages(StoreReadTxn& txn,
                                                 vertex_t person,
                                                 int64_t max_date,
                                                 size_t limit = 20);

/// IC9: 20 most recent messages by friends or friends-of-friends strictly
/// before `max_date`.
std::vector<RecentMessage> ComplexFofMessages(StoreReadTxn& txn,
                                              vertex_t person,
                                              int64_t max_date,
                                              size_t limit = 20);

/// IC13: length of the shortest knows-path between two persons, -1 if
/// disconnected ("Complex read 13 performs pairwise shortest path
/// computation", §7.3). Bidirectional BFS.
int ComplexShortestPath(StoreReadTxn& txn, vertex_t a, vertex_t b);

/// IC6-style: tags co-occurring with `tag` on friends' messages — for each
/// message by a friend (1-2 hops) that carries `tag`, count its other tags.
struct TagCount {
  vertex_t tag;
  int64_t count;
};
std::vector<TagCount> ComplexCooccurringTags(StoreReadTxn& txn,
                                             vertex_t person, vertex_t tag,
                                             size_t limit = 10);

// --- Updates (each one write session, committed with conflict retry) ---

vertex_t UpdateAddPerson(Store* store, uint16_t first_name,
                         uint16_t last_name, int64_t date, vertex_t place,
                         const std::vector<vertex_t>& interests);

vertex_t UpdateAddPost(Store* store, vertex_t author, vertex_t forum,
                       int64_t date, uint32_t length);

vertex_t UpdateAddComment(Store* store, vertex_t author, vertex_t parent,
                          int64_t date, uint32_t length);

void UpdateAddLike(Store* store, vertex_t person, vertex_t message,
                   int64_t date);

void UpdateAddFriendship(Store* store, vertex_t a, vertex_t b, int64_t date);

}  // namespace livegraph::snb

#endif  // LIVEGRAPH_SNB_QUERIES_H_
