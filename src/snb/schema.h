// LDBC Social Network Benchmark schema (Erling et al., SIGMOD'15) — the
// paper's real-time analytics workload (§7.1: "Its schema has 11 entities
// connected by 20 relations"). Entities are property-graph vertices with
// small binary payloads; relations are labelled edges, materialized in both
// directions where queries traverse them backwards.
#ifndef LIVEGRAPH_SNB_SCHEMA_H_
#define LIVEGRAPH_SNB_SCHEMA_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/types.h"

namespace livegraph::snb {

// --- Edge labels ---
inline constexpr label_t kKnows = 1;        // person <-> person (mutual)
inline constexpr label_t kHasCreator = 2;   // message -> person
inline constexpr label_t kCreated = 3;      // person -> message (reverse)
inline constexpr label_t kLikes = 4;        // person -> message
inline constexpr label_t kLikedBy = 5;      // message -> person (reverse)
inline constexpr label_t kReplyOf = 6;      // comment -> parent message
inline constexpr label_t kReplies = 7;      // message -> comment (reverse)
inline constexpr label_t kHasTag = 8;       // message -> tag
inline constexpr label_t kHasInterest = 9;  // person -> tag
inline constexpr label_t kContainerOf = 10; // forum -> post
inline constexpr label_t kHasMember = 11;   // forum -> person
inline constexpr label_t kIsLocatedIn = 12; // person -> place
inline constexpr label_t kHasModerator = 13;// forum -> person

// --- Vertex kinds ---
enum class EntityKind : uint8_t {
  kPerson = 1,
  kPost = 2,
  kComment = 3,
  kForum = 4,
  kTag = 5,
  kPlace = 6,
};

/// Person payload. Names are indices into the fixed pools below, mirroring
/// the LDBC generator's dictionary-based attribute generation.
struct Person {
  EntityKind kind = EntityKind::kPerson;
  uint16_t first_name;
  uint16_t last_name;
  int64_t birthday;
  int64_t creation_date;
};

struct Message {  // posts and comments share the layout
  EntityKind kind;  // kPost or kComment
  int64_t creation_date;
  vertex_t author;
  uint32_t content_length;
};

struct Forum {
  EntityKind kind = EntityKind::kForum;
  vertex_t moderator;
  int64_t creation_date;
};

struct Tag {
  EntityKind kind = EntityKind::kTag;
  uint32_t name;
};

struct Place {
  EntityKind kind = EntityKind::kPlace;
  uint32_t name;
};

inline constexpr int kFirstNamePool = 200;
inline constexpr int kLastNamePool = 500;

/// Knows-edge payload: friendship creation date (IS3 returns it).
struct KnowsProps {
  int64_t creation_date;
};

template <typename T>
std::string Encode(const T& value) {
  return std::string(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Decodes a payload; returns false on kind/size mismatch.
template <typename T>
bool Decode(std::string_view bytes, T* out) {
  if (bytes.size() < sizeof(T)) return false;
  std::memcpy(out, bytes.data(), sizeof(T));
  return true;
}

inline EntityKind KindOf(std::string_view bytes) {
  return bytes.empty() ? EntityKind::kPlace
                       : static_cast<EntityKind>(bytes[0]);
}

}  // namespace livegraph::snb

#endif  // LIVEGRAPH_SNB_SCHEMA_H_
