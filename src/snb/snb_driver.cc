#include "snb/snb_driver.h"

#include <atomic>
#include <mutex>

#include "snb/queries.h"
#include "util/random.h"

namespace livegraph::snb {

namespace {

/// Shared mutable parameter state: updates append new entities that later
/// requests may reference.
struct DriverState {
  explicit DriverState(SnbDataset* dataset) : data(dataset) {
    clock.store(dataset->max_date + 1);
  }
  SnbDataset* data;
  std::mutex mu;  // guards the dataset vectors during appends
  std::atomic<int64_t> clock;

  vertex_t RandomPerson(Xorshift& rng) {
    std::lock_guard<std::mutex> guard(mu);
    return data->persons[rng.NextBounded(data->persons.size())];
  }
  vertex_t RandomMessage(Xorshift& rng) {
    std::lock_guard<std::mutex> guard(mu);
    return data->messages[rng.NextBounded(data->messages.size())];
  }
  vertex_t RandomForum(Xorshift& rng) {
    std::lock_guard<std::mutex> guard(mu);
    return data->forums[rng.NextBounded(data->forums.size())];
  }
  vertex_t RandomTag(Xorshift& rng) {
    std::lock_guard<std::mutex> guard(mu);
    return data->tags[rng.NextBounded(data->tags.size())];
  }
  vertex_t RandomPlace(Xorshift& rng) {
    std::lock_guard<std::mutex> guard(mu);
    return data->places[rng.NextBounded(data->places.size())];
  }
  void AddPerson(vertex_t v) {
    std::lock_guard<std::mutex> guard(mu);
    data->persons.push_back(v);
  }
  void AddMessage(vertex_t v) {
    std::lock_guard<std::mutex> guard(mu);
    data->messages.push_back(v);
  }
};

const char* RunComplex(Store* store, DriverState* state, Xorshift& rng) {
  auto view = store->BeginReadTxn();
  // relaxed (also the fetch_add in RunUpdate): the logical clock only
  // shapes query recency windows; any monotone value is equally valid.
  int64_t now = state->clock.load(std::memory_order_relaxed);
  switch (rng.NextBounded(5)) {
    case 0: {
      ComplexFriendsByName(*view, state->RandomPerson(rng),
                           static_cast<uint16_t>(rng.NextBounded(kFirstNamePool)));
      return "IC1";
    }
    case 1:
      ComplexFriendMessages(*view, state->RandomPerson(rng), now);
      return "IC2";
    case 2:
      ComplexFofMessages(*view, state->RandomPerson(rng), now);
      return "IC9";
    case 3:
      ComplexCooccurringTags(*view, state->RandomPerson(rng),
                             state->RandomTag(rng));
      return "IC6";
    default:
      ComplexShortestPath(*view, state->RandomPerson(rng),
                          state->RandomPerson(rng));
      return "IC13";
  }
}

const char* RunShort(Store* store, DriverState* state, Xorshift& rng) {
  auto view = store->BeginReadTxn();
  switch (rng.NextBounded(6)) {
    case 0: {
      Person person;
      ShortPersonProfile(*view, state->RandomPerson(rng), &person);
      return "IS1";
    }
    case 1:
      ShortRecentMessages(*view, state->RandomPerson(rng));
      return "IS2";
    case 2:
      ShortFriends(*view, state->RandomPerson(rng));
      return "IS3";
    case 3: {
      Message message;
      ShortMessageContent(*view, state->RandomMessage(rng), &message);
      return "IS4";
    }
    case 4:
      ShortMessageCreator(*view, state->RandomMessage(rng));
      return "IS5";
    default:
      ShortReplies(*view, state->RandomMessage(rng));
      return "IS7";
  }
}

const char* RunUpdate(Store* store, DriverState* state, Xorshift& rng) {
  int64_t date = state->clock.fetch_add(1, std::memory_order_relaxed);
  switch (rng.NextBounded(5)) {
    case 0: {
      vertex_t v = UpdateAddPerson(
          store, static_cast<uint16_t>(rng.NextBounded(kFirstNamePool)),
          static_cast<uint16_t>(rng.NextBounded(kLastNamePool)), date,
          state->RandomPlace(rng), {state->RandomTag(rng)});
      state->AddPerson(v);
      return "U1_ADD_PERSON";
    }
    case 1: {
      UpdateAddLike(store, state->RandomPerson(rng), state->RandomMessage(rng),
                    date);
      return "U2_ADD_LIKE";
    }
    case 2: {
      vertex_t v = UpdateAddComment(store, state->RandomPerson(rng),
                                    state->RandomMessage(rng), date,
                                    static_cast<uint32_t>(rng.NextBounded(500)));
      state->AddMessage(v);
      return "U3_ADD_COMMENT";
    }
    case 3: {
      vertex_t v = UpdateAddPost(store, state->RandomPerson(rng),
                                 state->RandomForum(rng), date,
                                 static_cast<uint32_t>(rng.NextBounded(2000)));
      state->AddMessage(v);
      return "U6_ADD_POST";
    }
    default:
      UpdateAddFriendship(store, state->RandomPerson(rng),
                          state->RandomPerson(rng), date);
      return "U8_ADD_FRIENDSHIP";
  }
}

}  // namespace

DriverResult RunSnb(Store* store, SnbDataset* dataset,
                    const SnbRunOptions& options) {
  DriverState state(dataset);
  DriverOptions driver;
  driver.clients = options.clients;
  driver.ops_per_client = options.ops_per_client;

  auto client_op = [&, store](int client, uint64_t) -> const char* {
    thread_local Xorshift rng(options.seed * 31 +
                              static_cast<uint64_t>(client) + 1);
    if (options.mode == SnbMode::kComplexOnly) {
      return RunComplex(store, &state, rng);
    }
    double r = rng.NextDouble();
    if (r < 0.0726) return RunComplex(store, &state, rng);
    if (r < 0.0726 + 0.6382) return RunShort(store, &state, rng);
    return RunUpdate(store, &state, rng);
  };
  return RunClients(driver, client_op);
}

}  // namespace livegraph::snb
