#include "snb/queries.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace livegraph::snb {

namespace {

/// Keeps the `limit` newest messages (min-heap on creation_date).
class TopKMessages {
 public:
  explicit TopKMessages(size_t limit) : limit_(limit) {}

  void Offer(vertex_t message, int64_t date) {
    if (heap_.size() < limit_) {
      heap_.push_back({message, date});
      std::push_heap(heap_.begin(), heap_.end(), Older);
    } else if (date > heap_.front().creation_date) {
      std::pop_heap(heap_.begin(), heap_.end(), Older);
      heap_.back() = {message, date};
      std::push_heap(heap_.begin(), heap_.end(), Older);
    }
  }

  std::vector<RecentMessage> TakeSortedNewestFirst() {
    std::sort(heap_.begin(), heap_.end(),
              [](const RecentMessage& a, const RecentMessage& b) {
                return a.creation_date > b.creation_date;
              });
    return std::move(heap_);
  }

  int64_t cutoff() const {
    return heap_.size() < limit_ ? INT64_MIN : heap_.front().creation_date;
  }

 private:
  static bool Older(const RecentMessage& a, const RecentMessage& b) {
    return a.creation_date > b.creation_date;  // min-heap on date
  }
  size_t limit_;
  std::vector<RecentMessage> heap_;
};

bool MessageDate(StoreReadTxn& txn, vertex_t message, int64_t* date) {
  StatusOr<std::string> bytes = txn.GetNode(message);
  Message decoded;
  if (!bytes.ok() || !Decode(*bytes, &decoded)) return false;
  *date = decoded.creation_date;
  return true;
}

/// Collects messages authored by `person` into `top`, honoring max_date.
void OfferPersonMessages(StoreReadTxn& txn, vertex_t person, int64_t max_date,
                         TopKMessages* top) {
  for (EdgeCursor c = txn.ScanLinks(person, kCreated); c.Valid(); c.Next()) {
    int64_t date;
    if (MessageDate(txn, c.dst(), &date) && date < max_date) {
      top->Offer(c.dst(), date);
    }
  }
}

/// Friends, plus friends-of-friends when `two_hops` (excluding `person`).
std::unordered_set<vertex_t> KnowsNeighborhood(StoreReadTxn& txn,
                                               vertex_t person,
                                               bool two_hops) {
  std::unordered_set<vertex_t> sources;
  for (EdgeCursor c = txn.ScanLinks(person, kKnows); c.Valid(); c.Next()) {
    sources.insert(c.dst());
  }
  if (two_hops) {
    std::vector<vertex_t> first_hop(sources.begin(), sources.end());
    for (vertex_t friend_id : first_hop) {
      for (EdgeCursor c = txn.ScanLinks(friend_id, kKnows); c.Valid();
           c.Next()) {
        if (c.dst() != person) sources.insert(c.dst());
      }
    }
  }
  return sources;
}

}  // namespace

// --- Short reads ---

bool ShortPersonProfile(StoreReadTxn& txn, vertex_t person, Person* out) {
  StatusOr<std::string> bytes = txn.GetNode(person);
  return bytes.ok() && KindOf(*bytes) == EntityKind::kPerson &&
         Decode(*bytes, out);
}

std::vector<RecentMessage> ShortRecentMessages(StoreReadTxn& txn,
                                               vertex_t person, size_t limit) {
  // The kCreated TEL is scanned newest-first, so on LiveGraph this is a
  // bounded backward scan — the access pattern §7.2 credits for TAO wins.
  std::vector<RecentMessage> result;
  for (EdgeCursor c = txn.ScanLinks(person, kCreated, limit);
       c.Valid() && result.size() < limit; c.Next()) {
    int64_t date;
    if (MessageDate(txn, c.dst(), &date)) {
      result.push_back({c.dst(), date});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const RecentMessage& a, const RecentMessage& b) {
              return a.creation_date > b.creation_date;
            });
  return result;
}

std::vector<Friendship> ShortFriends(StoreReadTxn& txn, vertex_t person) {
  std::vector<Friendship> result;
  for (EdgeCursor c = txn.ScanLinks(person, kKnows); c.Valid(); c.Next()) {
    KnowsProps decoded{0};
    Decode(c.properties(), &decoded);
    result.push_back({c.dst(), decoded.creation_date});
  }
  return result;
}

std::vector<Reply> ShortReplies(StoreReadTxn& txn, vertex_t message) {
  std::vector<Reply> result;
  for (EdgeCursor c = txn.ScanLinks(message, kReplies); c.Valid(); c.Next()) {
    Reply reply{c.dst(), kNullVertex};
    EdgeCursor creator = txn.ScanLinks(c.dst(), kHasCreator);
    if (creator.Valid()) reply.author = creator.dst();
    result.push_back(reply);
  }
  return result;
}

bool ShortMessageContent(StoreReadTxn& txn, vertex_t message, Message* out) {
  StatusOr<std::string> bytes = txn.GetNode(message);
  if (!bytes.ok()) return false;
  EntityKind kind = KindOf(*bytes);
  if (kind != EntityKind::kPost && kind != EntityKind::kComment) return false;
  return Decode(*bytes, out);
}

vertex_t ShortMessageCreator(StoreReadTxn& txn, vertex_t message) {
  EdgeCursor c = txn.ScanLinks(message, kHasCreator);
  return c.Valid() ? c.dst() : kNullVertex;
}

// --- Complex reads ---

std::vector<NamedPerson> ComplexFriendsByName(StoreReadTxn& txn,
                                              vertex_t start,
                                              uint16_t first_name,
                                              size_t limit) {
  std::vector<NamedPerson> result;
  std::unordered_set<vertex_t> visited{start};
  std::vector<vertex_t> frontier{start};
  for (int hop = 1; hop <= 3 && result.size() < limit; ++hop) {
    std::vector<vertex_t> next;
    for (vertex_t v : frontier) {
      for (EdgeCursor c = txn.ScanLinks(v, kKnows); c.Valid(); c.Next()) {
        if (visited.insert(c.dst()).second) next.push_back(c.dst());
      }
    }
    // Distance-ordered result (LDBC sorts by distance, then name).
    for (vertex_t candidate : next) {
      if (result.size() >= limit) break;
      Person person;
      StatusOr<std::string> bytes = txn.GetNode(candidate);
      if (bytes.ok() && Decode(*bytes, &person) &&
          person.kind == EntityKind::kPerson &&
          person.first_name == first_name) {
        result.push_back({candidate, hop});
      }
    }
    frontier = std::move(next);
  }
  return result;
}

std::vector<RecentMessage> ComplexFriendMessages(StoreReadTxn& txn,
                                                 vertex_t person,
                                                 int64_t max_date,
                                                 size_t limit) {
  TopKMessages top(limit);
  for (EdgeCursor c = txn.ScanLinks(person, kKnows); c.Valid(); c.Next()) {
    OfferPersonMessages(txn, c.dst(), max_date, &top);
  }
  return top.TakeSortedNewestFirst();
}

std::vector<RecentMessage> ComplexFofMessages(StoreReadTxn& txn,
                                              vertex_t person,
                                              int64_t max_date, size_t limit) {
  std::unordered_set<vertex_t> sources =
      KnowsNeighborhood(txn, person, /*two_hops=*/true);
  TopKMessages top(limit);
  for (vertex_t source : sources) {
    OfferPersonMessages(txn, source, max_date, &top);
  }
  return top.TakeSortedNewestFirst();
}

int ComplexShortestPath(StoreReadTxn& txn, vertex_t a, vertex_t b) {
  if (a == b) return 0;
  // Bidirectional BFS over the mutual knows graph.
  std::unordered_set<vertex_t> forward{a}, backward{b};
  std::vector<vertex_t> forward_frontier{a}, backward_frontier{b};
  int depth = 0;
  while (!forward_frontier.empty() && !backward_frontier.empty()) {
    depth++;
    if (depth > 32) return -1;  // pathological guard
    // Expand the smaller side.
    bool expand_forward = forward_frontier.size() <= backward_frontier.size();
    auto& frontier = expand_forward ? forward_frontier : backward_frontier;
    auto& mine = expand_forward ? forward : backward;
    auto& other = expand_forward ? backward : forward;
    std::vector<vertex_t> next;
    for (vertex_t v : frontier) {
      for (EdgeCursor c = txn.ScanLinks(v, kKnows); c.Valid(); c.Next()) {
        if (other.count(c.dst()) > 0) return depth;
        if (mine.insert(c.dst()).second) next.push_back(c.dst());
      }
    }
    frontier = std::move(next);
  }
  return -1;
}

std::vector<TagCount> ComplexCooccurringTags(StoreReadTxn& txn,
                                             vertex_t person, vertex_t tag,
                                             size_t limit) {
  // Gather friends and friends-of-friends.
  std::unordered_set<vertex_t> sources =
      KnowsNeighborhood(txn, person, /*two_hops=*/true);
  // For every message they created that carries `tag`, tally co-tags.
  std::unordered_map<vertex_t, int64_t> counts;
  for (vertex_t source : sources) {
    for (EdgeCursor m = txn.ScanLinks(source, kCreated); m.Valid();
         m.Next()) {
      bool has_target = false;
      std::vector<vertex_t> tags;
      for (EdgeCursor t = txn.ScanLinks(m.dst(), kHasTag); t.Valid();
           t.Next()) {
        if (t.dst() == tag) {
          has_target = true;
        } else {
          tags.push_back(t.dst());
        }
      }
      if (has_target) {
        for (vertex_t t : tags) counts[t]++;
      }
    }
  }
  std::vector<TagCount> result;
  result.reserve(counts.size());
  for (const auto& [t, c] : counts) result.push_back({t, c});
  std::sort(result.begin(), result.end(),
            [](const TagCount& a, const TagCount& b) {
              return a.count != b.count ? a.count > b.count : a.tag < b.tag;
            });
  if (result.size() > limit) result.resize(limit);
  return result;
}

// --- Updates ---
// Each update is one multi-object write session: all of its nodes and links
// commit (or retry) together, unlike the seed's per-operation auto-commits.

vertex_t UpdateAddPerson(Store* store, uint16_t first_name,
                         uint16_t last_name, int64_t date, vertex_t place,
                         const std::vector<vertex_t>& interests) {
  Person person;
  person.first_name = first_name;
  person.last_name = last_name;
  person.birthday = date % 2'000'000;
  person.creation_date = date;
  std::string encoded = Encode(person);
  vertex_t v = kNullVertex;
  Status st = RunWrite(*store, [&](StoreTxn& txn) -> Status {
    StatusOr<vertex_t> added = txn.AddNode(encoded);
    if (!added.ok()) return added.status();
    v = *added;
    Status st = txn.AddLink(v, kIsLocatedIn, place, {}).status();
    if (st != Status::kOk) return st;
    for (vertex_t tag : interests) {
      st = txn.AddLink(v, kHasInterest, tag, {}).status();
      if (st != Status::kOk) return st;
    }
    return Status::kOk;
  });
  // A rolled-back session must not leak its staged vertex id.
  return st == Status::kOk ? v : kNullVertex;
}

vertex_t UpdateAddPost(Store* store, vertex_t author, vertex_t forum,
                       int64_t date, uint32_t length) {
  Message post;
  post.kind = EntityKind::kPost;
  post.creation_date = date;
  post.author = author;
  post.content_length = length;
  std::string encoded = Encode(post);
  vertex_t v = kNullVertex;
  Status st = RunWrite(*store, [&](StoreTxn& txn) -> Status {
    StatusOr<vertex_t> added = txn.AddNode(encoded);
    if (!added.ok()) return added.status();
    v = *added;
    Status st = txn.AddLink(v, kHasCreator, author, {}).status();
    if (st != Status::kOk) return st;
    st = txn.AddLink(author, kCreated, v, {}).status();
    if (st != Status::kOk) return st;
    return txn.AddLink(forum, kContainerOf, v, {}).status();
  });
  return st == Status::kOk ? v : kNullVertex;
}

vertex_t UpdateAddComment(Store* store, vertex_t author, vertex_t parent,
                          int64_t date, uint32_t length) {
  Message comment;
  comment.kind = EntityKind::kComment;
  comment.creation_date = date;
  comment.author = author;
  comment.content_length = length;
  std::string encoded = Encode(comment);
  vertex_t v = kNullVertex;
  Status st = RunWrite(*store, [&](StoreTxn& txn) -> Status {
    StatusOr<vertex_t> added = txn.AddNode(encoded);
    if (!added.ok()) return added.status();
    v = *added;
    Status st = txn.AddLink(v, kHasCreator, author, {}).status();
    if (st != Status::kOk) return st;
    st = txn.AddLink(author, kCreated, v, {}).status();
    if (st != Status::kOk) return st;
    st = txn.AddLink(v, kReplyOf, parent, {}).status();
    if (st != Status::kOk) return st;
    return txn.AddLink(parent, kReplies, v, {}).status();
  });
  return st == Status::kOk ? v : kNullVertex;
}

void UpdateAddLike(Store* store, vertex_t person, vertex_t message,
                   int64_t date) {
  KnowsProps like{date};
  std::string encoded = Encode(like);
  RunWrite(*store, [&](StoreTxn& txn) -> Status {
    Status st = txn.AddLink(person, kLikes, message, encoded).status();
    if (st != Status::kOk) return st;
    return txn.AddLink(message, kLikedBy, person, encoded).status();
  });
}

void UpdateAddFriendship(Store* store, vertex_t a, vertex_t b, int64_t date) {
  KnowsProps props{date};
  std::string encoded = Encode(props);
  RunWrite(*store, [&](StoreTxn& txn) -> Status {
    Status st = txn.AddLink(a, kKnows, b, encoded).status();
    if (st != Status::kOk) return st;
    return txn.AddLink(b, kKnows, a, encoded).status();
  });
}

}  // namespace livegraph::snb
