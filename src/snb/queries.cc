#include "snb/queries.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace livegraph::snb {

namespace {

/// Keeps the `limit` newest messages (min-heap on creation_date).
class TopKMessages {
 public:
  explicit TopKMessages(size_t limit) : limit_(limit) {}

  void Offer(vertex_t message, int64_t date) {
    if (heap_.size() < limit_) {
      heap_.push_back({message, date});
      std::push_heap(heap_.begin(), heap_.end(), Older);
    } else if (date > heap_.front().creation_date) {
      std::pop_heap(heap_.begin(), heap_.end(), Older);
      heap_.back() = {message, date};
      std::push_heap(heap_.begin(), heap_.end(), Older);
    }
  }

  std::vector<RecentMessage> TakeSortedNewestFirst() {
    std::sort(heap_.begin(), heap_.end(),
              [](const RecentMessage& a, const RecentMessage& b) {
                return a.creation_date > b.creation_date;
              });
    return std::move(heap_);
  }

  int64_t cutoff() const {
    return heap_.size() < limit_ ? INT64_MIN : heap_.front().creation_date;
  }

 private:
  static bool Older(const RecentMessage& a, const RecentMessage& b) {
    return a.creation_date > b.creation_date;  // min-heap on date
  }
  size_t limit_;
  std::vector<RecentMessage> heap_;
};

bool MessageDate(const GraphReadView& view, vertex_t message, int64_t* date) {
  std::string bytes;
  Message decoded;
  if (!view.GetNode(message, &bytes) || !Decode(bytes, &decoded)) return false;
  *date = decoded.creation_date;
  return true;
}

/// Collects messages authored by `person` into `top`, honoring max_date.
void OfferPersonMessages(const GraphReadView& view, vertex_t person,
                         int64_t max_date, TopKMessages* top) {
  view.ScanLinks(person, kCreated, [&](vertex_t message, std::string_view) {
    int64_t date;
    if (MessageDate(view, message, &date) && date < max_date) {
      top->Offer(message, date);
    }
    return true;
  });
}

}  // namespace

// --- Short reads ---

bool ShortPersonProfile(const GraphReadView& view, vertex_t person,
                        Person* out) {
  std::string bytes;
  return view.GetNode(person, &bytes) && KindOf(bytes) == EntityKind::kPerson &&
         Decode(bytes, out);
}

std::vector<RecentMessage> ShortRecentMessages(const GraphReadView& view,
                                               vertex_t person, size_t limit) {
  // The kCreated TEL is scanned newest-first, so on LiveGraph this is a
  // bounded backward scan — the access pattern §7.2 credits for TAO wins.
  std::vector<RecentMessage> result;
  view.ScanLinks(person, kCreated, [&](vertex_t message, std::string_view) {
    int64_t date;
    if (MessageDate(view, message, &date)) {
      result.push_back({message, date});
    }
    return result.size() < limit;
  });
  std::sort(result.begin(), result.end(),
            [](const RecentMessage& a, const RecentMessage& b) {
              return a.creation_date > b.creation_date;
            });
  return result;
}

std::vector<Friendship> ShortFriends(const GraphReadView& view,
                                     vertex_t person) {
  std::vector<Friendship> result;
  view.ScanLinks(person, kKnows, [&](vertex_t friend_id,
                                     std::string_view props) {
    KnowsProps decoded{0};
    Decode(props, &decoded);
    result.push_back({friend_id, decoded.creation_date});
    return true;
  });
  return result;
}

std::vector<Reply> ShortReplies(const GraphReadView& view, vertex_t message) {
  std::vector<Reply> result;
  view.ScanLinks(message, kReplies, [&](vertex_t comment, std::string_view) {
    Reply reply{comment, kNullVertex};
    view.ScanLinks(comment, kHasCreator,
                   [&reply](vertex_t author, std::string_view) {
                     reply.author = author;
                     return false;
                   });
    result.push_back(reply);
    return true;
  });
  return result;
}

bool ShortMessageContent(const GraphReadView& view, vertex_t message,
                         Message* out) {
  std::string bytes;
  if (!view.GetNode(message, &bytes)) return false;
  EntityKind kind = KindOf(bytes);
  if (kind != EntityKind::kPost && kind != EntityKind::kComment) return false;
  return Decode(bytes, out);
}

vertex_t ShortMessageCreator(const GraphReadView& view, vertex_t message) {
  vertex_t creator = kNullVertex;
  view.ScanLinks(message, kHasCreator,
                 [&creator](vertex_t author, std::string_view) {
                   creator = author;
                   return false;
                 });
  return creator;
}

// --- Complex reads ---

std::vector<NamedPerson> ComplexFriendsByName(const GraphReadView& view,
                                              vertex_t start,
                                              uint16_t first_name,
                                              size_t limit) {
  std::vector<NamedPerson> result;
  std::unordered_set<vertex_t> visited{start};
  std::vector<vertex_t> frontier{start};
  for (int hop = 1; hop <= 3 && result.size() < limit; ++hop) {
    std::vector<vertex_t> next;
    for (vertex_t v : frontier) {
      view.ScanLinks(v, kKnows, [&](vertex_t friend_id, std::string_view) {
        if (visited.insert(friend_id).second) next.push_back(friend_id);
        return true;
      });
    }
    // Distance-ordered result (LDBC sorts by distance, then name).
    for (vertex_t candidate : next) {
      if (result.size() >= limit) break;
      Person person;
      std::string bytes;
      if (view.GetNode(candidate, &bytes) && Decode(bytes, &person) &&
          person.kind == EntityKind::kPerson &&
          person.first_name == first_name) {
        result.push_back({candidate, hop});
      }
    }
    frontier = std::move(next);
  }
  return result;
}

std::vector<RecentMessage> ComplexFriendMessages(const GraphReadView& view,
                                                 vertex_t person,
                                                 int64_t max_date,
                                                 size_t limit) {
  TopKMessages top(limit);
  view.ScanLinks(person, kKnows, [&](vertex_t friend_id, std::string_view) {
    OfferPersonMessages(view, friend_id, max_date, &top);
    return true;
  });
  return top.TakeSortedNewestFirst();
}

std::vector<RecentMessage> ComplexFofMessages(const GraphReadView& view,
                                              vertex_t person,
                                              int64_t max_date, size_t limit) {
  std::unordered_set<vertex_t> sources;
  view.ScanLinks(person, kKnows, [&](vertex_t friend_id, std::string_view) {
    sources.insert(friend_id);
    return true;
  });
  std::vector<vertex_t> first_hop(sources.begin(), sources.end());
  for (vertex_t friend_id : first_hop) {
    view.ScanLinks(friend_id, kKnows, [&](vertex_t fof, std::string_view) {
      if (fof != person) sources.insert(fof);
      return true;
    });
  }
  TopKMessages top(limit);
  for (vertex_t source : sources) {
    OfferPersonMessages(view, source, max_date, &top);
  }
  return top.TakeSortedNewestFirst();
}

int ComplexShortestPath(const GraphReadView& view, vertex_t a, vertex_t b) {
  if (a == b) return 0;
  // Bidirectional BFS over the mutual knows graph.
  std::unordered_set<vertex_t> forward{a}, backward{b};
  std::vector<vertex_t> forward_frontier{a}, backward_frontier{b};
  int depth = 0;
  while (!forward_frontier.empty() && !backward_frontier.empty()) {
    depth++;
    if (depth > 32) return -1;  // pathological guard
    // Expand the smaller side.
    bool expand_forward = forward_frontier.size() <= backward_frontier.size();
    auto& frontier = expand_forward ? forward_frontier : backward_frontier;
    auto& mine = expand_forward ? forward : backward;
    auto& other = expand_forward ? backward : forward;
    std::vector<vertex_t> next;
    for (vertex_t v : frontier) {
      bool found = false;
      view.ScanLinks(v, kKnows, [&](vertex_t n, std::string_view) {
        if (other.count(n) > 0) {
          found = true;
          return false;
        }
        if (mine.insert(n).second) next.push_back(n);
        return true;
      });
      if (found) return depth;
    }
    frontier = std::move(next);
  }
  return -1;
}

std::vector<TagCount> ComplexCooccurringTags(const GraphReadView& view,
                                             vertex_t person, vertex_t tag,
                                             size_t limit) {
  // Gather friends and friends-of-friends.
  std::unordered_set<vertex_t> sources;
  view.ScanLinks(person, kKnows, [&](vertex_t f, std::string_view) {
    sources.insert(f);
    return true;
  });
  std::vector<vertex_t> first_hop(sources.begin(), sources.end());
  for (vertex_t f : first_hop) {
    view.ScanLinks(f, kKnows, [&](vertex_t fof, std::string_view) {
      if (fof != person) sources.insert(fof);
      return true;
    });
  }
  // For every message they created that carries `tag`, tally co-tags.
  std::unordered_map<vertex_t, int64_t> counts;
  for (vertex_t source : sources) {
    view.ScanLinks(source, kCreated, [&](vertex_t message, std::string_view) {
      bool has_target = false;
      std::vector<vertex_t> tags;
      view.ScanLinks(message, kHasTag, [&](vertex_t t, std::string_view) {
        if (t == tag) {
          has_target = true;
        } else {
          tags.push_back(t);
        }
        return true;
      });
      if (has_target) {
        for (vertex_t t : tags) counts[t]++;
      }
      return true;
    });
  }
  std::vector<TagCount> result;
  result.reserve(counts.size());
  for (const auto& [t, c] : counts) result.push_back({t, c});
  std::sort(result.begin(), result.end(),
            [](const TagCount& a, const TagCount& b) {
              return a.count != b.count ? a.count > b.count : a.tag < b.tag;
            });
  if (result.size() > limit) result.resize(limit);
  return result;
}

// --- Updates ---

vertex_t UpdateAddPerson(GraphStore* store, uint16_t first_name,
                         uint16_t last_name, int64_t date, vertex_t place,
                         const std::vector<vertex_t>& interests) {
  Person person;
  person.first_name = first_name;
  person.last_name = last_name;
  person.birthday = date % 2'000'000;
  person.creation_date = date;
  vertex_t v = store->AddNode(Encode(person));
  store->AddLink(v, kIsLocatedIn, place, {});
  for (vertex_t tag : interests) store->AddLink(v, kHasInterest, tag, {});
  return v;
}

vertex_t UpdateAddPost(GraphStore* store, vertex_t author, vertex_t forum,
                       int64_t date, uint32_t length) {
  Message post;
  post.kind = EntityKind::kPost;
  post.creation_date = date;
  post.author = author;
  post.content_length = length;
  vertex_t v = store->AddNode(Encode(post));
  store->AddLink(v, kHasCreator, author, {});
  store->AddLink(author, kCreated, v, {});
  store->AddLink(forum, kContainerOf, v, {});
  return v;
}

vertex_t UpdateAddComment(GraphStore* store, vertex_t author, vertex_t parent,
                          int64_t date, uint32_t length) {
  Message comment;
  comment.kind = EntityKind::kComment;
  comment.creation_date = date;
  comment.author = author;
  comment.content_length = length;
  vertex_t v = store->AddNode(Encode(comment));
  store->AddLink(v, kHasCreator, author, {});
  store->AddLink(author, kCreated, v, {});
  store->AddLink(v, kReplyOf, parent, {});
  store->AddLink(parent, kReplies, v, {});
  return v;
}

void UpdateAddLike(GraphStore* store, vertex_t person, vertex_t message,
                   int64_t date) {
  KnowsProps like{date};
  std::string encoded = Encode(like);
  store->AddLink(person, kLikes, message, encoded);
  store->AddLink(message, kLikedBy, person, encoded);
}

void UpdateAddFriendship(GraphStore* store, vertex_t a, vertex_t b,
                         int64_t date) {
  KnowsProps props{date};
  std::string encoded = Encode(props);
  store->AddLink(a, kKnows, b, encoded);
  store->AddLink(b, kKnows, a, encoded);
}

}  // namespace livegraph::snb
