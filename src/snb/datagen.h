// LDBC SNB data generator (scaled): produces a social network with the
// schema of snb/schema.h — persons with a power-law mutual "knows" graph,
// forums, posts, comment trees, likes and tags, with monotonically
// increasing creation dates ("simulates the users' activities in a social
// network for a period of time", §7.1).
#ifndef LIVEGRAPH_SNB_DATAGEN_H_
#define LIVEGRAPH_SNB_DATAGEN_H_

#include <cstdint>
#include <vector>

#include "api/store.h"
#include "snb/schema.h"

namespace livegraph::snb {

struct DatagenOptions {
  /// LDBC scale factor. The entity counts below scale linearly with it; at
  /// the default multiplier SF10 yields ~140K vertices (the paper's SF10 is
  /// 30M — shapes are preserved, absolute sizes trimmed; see DESIGN.md).
  double scale_factor = 1.0;
  int persons_per_sf = 1000;
  double avg_knows = 18.0;       // LDBC SF10 average friend count
  double posts_per_person = 6.0;
  double comments_per_post = 2.0;
  double likes_per_message = 2.0;
  int tags = 200;
  int places = 50;
  uint64_t seed = 42;
};

/// IDs of everything generated, for the driver's parameter curves.
struct SnbDataset {
  std::vector<vertex_t> persons;
  std::vector<vertex_t> forums;
  std::vector<vertex_t> messages;  // posts + comments
  std::vector<vertex_t> tags;
  std::vector<vertex_t> places;
  int64_t max_date = 0;  // newest creation date in the initial graph
};

SnbDataset GenerateSnb(Store* store, const DatagenOptions& options);

}  // namespace livegraph::snb

#endif  // LIVEGRAPH_SNB_DATAGEN_H_
