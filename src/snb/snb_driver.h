// SNB interactive driver: runs the official request mix — 7.26% complex
// reads, 63.82% short reads, 28.91% updates (§7.3 "The Overall workload
// uses SNB's official mix") — or Complex-Only, against any Store. Reads
// run inside one StoreReadTxn session per request; updates are one write
// session each.
#ifndef LIVEGRAPH_SNB_SNB_DRIVER_H_
#define LIVEGRAPH_SNB_SNB_DRIVER_H_

#include <cstdint>

#include "snb/datagen.h"
#include "workload/driver.h"

namespace livegraph::snb {

enum class SnbMode {
  kOverall,      // 7.26% complex / 63.82% short / 28.91% updates
  kComplexOnly,  // complex reads only (Table 7/8 "Complex-Only" row)
};

struct SnbRunOptions {
  SnbMode mode = SnbMode::kOverall;
  int clients = 8;
  uint64_t ops_per_client = 2000;
  uint64_t seed = 99;
};

/// Runs the mix; per-query-class latencies land in
/// DriverResult::per_class under the LDBC names (IC1, IC2, IC9, IC13,
/// IS1, IS2, IS3, IS7, U_*).
DriverResult RunSnb(Store* store, SnbDataset* dataset,
                    const SnbRunOptions& options);

}  // namespace livegraph::snb

#endif  // LIVEGRAPH_SNB_SNB_DRIVER_H_
