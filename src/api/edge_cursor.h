// Concrete cursor over one (vertex, label) adjacency list — the v2 scan
// protocol (docs/API.md).
//
// The seed's std::function scan callback put a type-erased indirect
// call on the purely sequential scan path the paper exists to keep tight
// (§4: one branch-predictable loop over a contiguous edge log). EdgeCursor
// replaces it with a value type the caller advances: `Next()` / `dst()` /
// `properties()` are non-virtual and inline. For LiveGraph the cursor wraps
// the core EdgeIterator directly — scanning stays allocation-free and the
// per-edge work is the same pointer bump as the raw TEL walk, with a single
// always-taken mode branch. Baseline engines, which must drop their latches
// or merge multiple components before a caller may hold positions, return
// the same type in materialized mode: their adaptor snapshots the list into
// the cursor once, and iteration is an index bump. A third, chunked mode
// backs remote scans (docs/SERVER.md): the cursor pulls fixed-size edge
// batches from a BatchSource as the caller advances, so streamed adjacency
// lists are bounded by one batch of client memory. A fourth, merged mode
// fans several child cursors into one stream (docs/SHARDING.md): the
// sharded engine uses it to gather per-shard adjacency cursors — each child
// still a purely sequential scan inside its own shard — picking the child
// with the newest head entry first, so multi-source queries ("latest posts
// of my friends", whose friends hash to different shards) keep the
// newest-first consumption shape without materializing the union.
#ifndef LIVEGRAPH_API_EDGE_CURSOR_H_
#define LIVEGRAPH_API_EDGE_CURSOR_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/transaction.h"
#include "util/types.h"

namespace livegraph {

class EdgeCursor {
 public:
  /// One materialized edge. Properties live in the cursor's arena so a
  /// snapshot of N edges costs two allocations, not N.
  struct Edge {
    vertex_t dst;
    uint32_t prop_offset;
    uint32_t prop_size;
    timestamp_t created;
  };

  /// Empty cursor (no adjacency list).
  EdgeCursor() = default;

  /// Live TEL mode: wraps a core EdgeIterator, yielding at most `limit`
  /// edges. Valid while the owning transaction lives, like the iterator
  /// itself.
  explicit EdgeCursor(EdgeIterator it,
                      size_t limit = std::numeric_limits<size_t>::max())
      : mode_(Mode::kTel), it_(it), remaining_(limit) {}

  /// Materialized mode: adopts a snapshot taken by a baseline adaptor.
  EdgeCursor(std::vector<Edge> edges, std::string arena)
      : mode_(Mode::kMaterialized),
        edges_(std::move(edges)),
        arena_(std::move(arena)) {}

  /// Incremental supplier of edge batches for chunked cursors. Used by the
  /// network client (server/remote_store.h): the server streams a scan as
  /// a sequence of frames, and the cursor pulls them one batch at a time,
  /// so a remote adjacency list is never fully resident on either side.
  class BatchSource {
   public:
    virtual ~BatchSource() = default;
    /// Replaces `edges`/`arena` with the next non-empty batch. Returns
    /// false when the stream is exhausted (or torn down), after which it
    /// is not called again.
    virtual bool Fill(std::vector<Edge>* edges, std::string* arena) = 0;
  };

  /// Chunked mode: pulls batches from `source` on demand. The source is
  /// queried for the first batch immediately, so Valid() is meaningful
  /// without a priming Next().
  explicit EdgeCursor(std::unique_ptr<BatchSource> source)
      : mode_(Mode::kChunked), source_(std::move(source)) {
    Refill();
  }

  /// Merged (shard fan-in) mode: yields from `children`, at most `limit`
  /// edges total. When `newest_first` is set the cursor always yields the
  /// child head with the greatest creation timestamp (ties break toward the
  /// lower child index), preserving exact newest-first order per child;
  /// across children the interleave is exact when the children share one
  /// epoch domain — which the sharded engine's shards do since the
  /// unified EpochDomain (docs/SHARDING.md "Epoch domain") — and
  /// best-effort otherwise. With `newest_first` false the
  /// children are drained in order (concatenation).
  static EdgeCursor Merge(std::vector<EdgeCursor> children,
                          size_t limit = std::numeric_limits<size_t>::max(),
                          bool newest_first = true) {
    EdgeCursor c;
    c.mode_ = Mode::kMerged;
    c.remaining_ = limit;
    c.merge_ = std::make_unique<MergeState>();
    c.merge_->children = std::move(children);
    c.merge_->newest_first = newest_first;
    if (newest_first) {
      // Seed the head heap: O(K) for K children; each subsequent yield
      // costs one sift instead of a rescan of every child.
      auto& m = *c.merge_;
      m.heap.reserve(m.children.size());
      for (size_t i = 0; i < m.children.size(); ++i) {
        if (m.children[i].Valid()) {
          m.heap.push_back(
              HeapEntry{m.children[i].creation_timestamp(), i});
        }
      }
      std::make_heap(m.heap.begin(), m.heap.end(), HeapLess{});
    }
    c.SelectChild();
    return c;
  }

  EdgeCursor(EdgeCursor&&) = default;
  EdgeCursor& operator=(EdgeCursor&&) = default;
  EdgeCursor(const EdgeCursor&) = delete;
  EdgeCursor& operator=(const EdgeCursor&) = delete;

  bool Valid() const {
    if (mode_ == Mode::kTel) return remaining_ != 0 && it_.Valid();
    if (mode_ == Mode::kMerged) {
      return remaining_ != 0 && merge_->current != kNoChild;
    }
    return index_ < edges_.size();
  }

  /// Advances to the next visible edge (newer-to-older on engines with
  /// time-ordered lists; see StoreTraits::time_ordered_scans).
  void Next() {
    if (mode_ == Mode::kTel) {
      it_.Next();
      --remaining_;
    } else if (mode_ == Mode::kMerged) {
      MergeState& m = *merge_;
      EdgeCursor& child = m.children[m.current];
      child.Next();
      --remaining_;
      if (m.newest_first && child.Valid()) {
        m.heap.push_back(HeapEntry{child.creation_timestamp(), m.current});
        std::push_heap(m.heap.begin(), m.heap.end(), HeapLess{});
      }
      SelectChild();
    } else {
      ++index_;
      if (mode_ == Mode::kChunked && index_ >= edges_.size()) Refill();
    }
  }

  vertex_t dst() const {
    if (mode_ == Mode::kTel) return it_.DstId();
    if (mode_ == Mode::kMerged) return merge_->children[merge_->current].dst();
    return edges_[index_].dst;
  }

  /// This edge's property bytes. A view into the TEL (live mode) or the
  /// cursor's arena (materialized mode); stable until Next().
  std::string_view properties() const {
    if (mode_ == Mode::kTel) return it_.Properties();
    if (mode_ == Mode::kMerged) {
      return merge_->children[merge_->current].properties();
    }
    const Edge& e = edges_[index_];
    return std::string_view(arena_.data() + e.prop_offset, e.prop_size);
  }

  /// Creation timestamp (commit epoch) of the current edge; engines without
  /// version timestamps report their insertion sequence number.
  timestamp_t creation_timestamp() const {
    if (mode_ == Mode::kTel) return it_.CreationTimestamp();
    if (mode_ == Mode::kMerged) {
      return merge_->children[merge_->current].creation_timestamp();
    }
    return edges_[index_].created;
  }

  /// The child cursor the current edge came from (merged mode: the shard /
  /// source index); 0 elsewhere. Lets fan-in consumers attribute an edge to
  /// the source vertex whose list it was merged from.
  size_t merge_source() const {
    return mode_ == Mode::kMerged ? merge_->current : 0;
  }

  /// Address range of the underlying edge-log strip, for out-of-core
  /// page-touch accounting. {nullptr, 0} for materialized cursors (their
  /// adaptor accounts touches while snapshotting).
  std::pair<const void*, size_t> ScanSpan() const {
    if (mode_ == Mode::kTel) return it_.ScanSpan();
    if (mode_ == Mode::kMerged && merge_->current != kNoChild) {
      return merge_->children[merge_->current].ScanSpan();
    }
    return {nullptr, 0};
  }

 private:
  enum class Mode : uint8_t { kTel, kMaterialized, kChunked, kMerged };

  static constexpr size_t kNoChild = std::numeric_limits<size_t>::max();

  /// Head-of-child entry in the merge heap: max timestamp wins, ties break
  /// toward the lower child index.
  struct HeapEntry {
    timestamp_t ts;
    size_t child;
  };
  struct HeapLess {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.ts != b.ts ? a.ts < b.ts : a.child > b.child;
    }
  };

  /// All merged-mode state, heap-allocated as one unit so the common
  /// single-list cursor pays exactly one null pointer for the mode's
  /// existence. `heap` holds the heads of every valid non-current child
  /// (newest-first merge), so advancing is O(log K) in the child count.
  struct MergeState {
    std::vector<EdgeCursor> children;
    std::vector<HeapEntry> heap;
    size_t current = kNoChild;
    bool newest_first = true;
  };

  void Refill() {
    index_ = 0;
    if (source_ == nullptr || !source_->Fill(&edges_, &arena_)) {
      edges_.clear();  // Valid() goes false
      source_.reset();
    }
  }

  /// Merged mode: picks the child to yield from next. Newest-first pops
  /// the child with the newest head off the heap (the previous current
  /// child, if still valid, is pushed back first by Next()); concatenation
  /// takes the first valid child.
  void SelectChild() {
    MergeState& m = *merge_;
    if (m.newest_first) {
      if (m.heap.empty()) {
        m.current = kNoChild;
        return;
      }
      std::pop_heap(m.heap.begin(), m.heap.end(), HeapLess{});
      m.current = m.heap.back().child;
      m.heap.pop_back();
      return;
    }
    for (size_t i = m.current == kNoChild ? 0 : m.current;
         i < m.children.size(); ++i) {
      if (m.children[i].Valid()) {
        m.current = i;
        return;
      }
    }
    m.current = kNoChild;
  }

  Mode mode_ = Mode::kMaterialized;  // default: empty materialized cursor
  EdgeIterator it_;
  size_t remaining_ = 0;  // TEL/merged mode: yields left before the bound
  size_t index_ = 0;
  std::vector<Edge> edges_;
  std::string arena_;
  std::unique_ptr<BatchSource> source_;  // chunked mode only
  std::unique_ptr<MergeState> merge_;  // merged mode only
};

/// Incremental builder for materialized cursors (baseline adaptors).
class EdgeCursorBuilder {
 public:
  void Reserve(size_t edges) { edges_.reserve(edges); }

  void Add(vertex_t dst, std::string_view properties, timestamp_t created) {
    edges_.push_back(EdgeCursor::Edge{
        dst, static_cast<uint32_t>(arena_.size()),
        static_cast<uint32_t>(properties.size()), created});
    arena_.append(properties.data(), properties.size());
  }

  size_t size() const { return edges_.size(); }

  EdgeCursor Build() && {
    return EdgeCursor(std::move(edges_), std::move(arena_));
  }

 private:
  std::vector<EdgeCursor::Edge> edges_;
  std::string arena_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_API_EDGE_CURSOR_H_
