// Concrete cursor over one (vertex, label) adjacency list — the v2 scan
// protocol (docs/API.md).
//
// The seed's std::function scan callback put a type-erased indirect
// call on the purely sequential scan path the paper exists to keep tight
// (§4: one branch-predictable loop over a contiguous edge log). EdgeCursor
// replaces it with a value type the caller advances: `Next()` / `dst()` /
// `properties()` are non-virtual and inline. For LiveGraph the cursor wraps
// the core EdgeIterator directly — scanning stays allocation-free and the
// per-edge work is the same pointer bump as the raw TEL walk, with a single
// always-taken mode branch. Baseline engines, which must drop their latches
// or merge multiple components before a caller may hold positions, return
// the same type in materialized mode: their adaptor snapshots the list into
// the cursor once, and iteration is an index bump. A third, chunked mode
// backs remote scans (docs/SERVER.md): the cursor pulls fixed-size edge
// batches from a BatchSource as the caller advances, so streamed adjacency
// lists are bounded by one batch of client memory.
#ifndef LIVEGRAPH_API_EDGE_CURSOR_H_
#define LIVEGRAPH_API_EDGE_CURSOR_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/transaction.h"
#include "util/types.h"

namespace livegraph {

class EdgeCursor {
 public:
  /// One materialized edge. Properties live in the cursor's arena so a
  /// snapshot of N edges costs two allocations, not N.
  struct Edge {
    vertex_t dst;
    uint32_t prop_offset;
    uint32_t prop_size;
    timestamp_t created;
  };

  /// Empty cursor (no adjacency list).
  EdgeCursor() = default;

  /// Live TEL mode: wraps a core EdgeIterator, yielding at most `limit`
  /// edges. Valid while the owning transaction lives, like the iterator
  /// itself.
  explicit EdgeCursor(EdgeIterator it,
                      size_t limit = std::numeric_limits<size_t>::max())
      : mode_(Mode::kTel), it_(it), remaining_(limit) {}

  /// Materialized mode: adopts a snapshot taken by a baseline adaptor.
  EdgeCursor(std::vector<Edge> edges, std::string arena)
      : mode_(Mode::kMaterialized),
        edges_(std::move(edges)),
        arena_(std::move(arena)) {}

  /// Incremental supplier of edge batches for chunked cursors. Used by the
  /// network client (server/remote_store.h): the server streams a scan as
  /// a sequence of frames, and the cursor pulls them one batch at a time,
  /// so a remote adjacency list is never fully resident on either side.
  class BatchSource {
   public:
    virtual ~BatchSource() = default;
    /// Replaces `edges`/`arena` with the next non-empty batch. Returns
    /// false when the stream is exhausted (or torn down), after which it
    /// is not called again.
    virtual bool Fill(std::vector<Edge>* edges, std::string* arena) = 0;
  };

  /// Chunked mode: pulls batches from `source` on demand. The source is
  /// queried for the first batch immediately, so Valid() is meaningful
  /// without a priming Next().
  explicit EdgeCursor(std::unique_ptr<BatchSource> source)
      : mode_(Mode::kChunked), source_(std::move(source)) {
    Refill();
  }

  EdgeCursor(EdgeCursor&&) = default;
  EdgeCursor& operator=(EdgeCursor&&) = default;
  EdgeCursor(const EdgeCursor&) = delete;
  EdgeCursor& operator=(const EdgeCursor&) = delete;

  bool Valid() const {
    return mode_ == Mode::kTel ? remaining_ != 0 && it_.Valid()
                               : index_ < edges_.size();
  }

  /// Advances to the next visible edge (newer-to-older on engines with
  /// time-ordered lists; see StoreTraits::time_ordered_scans).
  void Next() {
    if (mode_ == Mode::kTel) {
      it_.Next();
      --remaining_;
    } else {
      ++index_;
      if (mode_ == Mode::kChunked && index_ >= edges_.size()) Refill();
    }
  }

  vertex_t dst() const {
    return mode_ == Mode::kTel ? it_.DstId() : edges_[index_].dst;
  }

  /// This edge's property bytes. A view into the TEL (live mode) or the
  /// cursor's arena (materialized mode); stable until Next().
  std::string_view properties() const {
    if (mode_ == Mode::kTel) return it_.Properties();
    const Edge& e = edges_[index_];
    return std::string_view(arena_.data() + e.prop_offset, e.prop_size);
  }

  /// Creation timestamp (commit epoch) of the current edge; engines without
  /// version timestamps report their insertion sequence number.
  timestamp_t creation_timestamp() const {
    return mode_ == Mode::kTel ? it_.CreationTimestamp()
                               : edges_[index_].created;
  }

  /// Address range of the underlying edge-log strip, for out-of-core
  /// page-touch accounting. {nullptr, 0} for materialized cursors (their
  /// adaptor accounts touches while snapshotting).
  std::pair<const void*, size_t> ScanSpan() const {
    if (mode_ == Mode::kTel) return it_.ScanSpan();
    return {nullptr, 0};
  }

 private:
  enum class Mode : uint8_t { kTel, kMaterialized, kChunked };

  void Refill() {
    index_ = 0;
    if (source_ == nullptr || !source_->Fill(&edges_, &arena_)) {
      edges_.clear();  // Valid() goes false
      source_.reset();
    }
  }

  Mode mode_ = Mode::kMaterialized;  // default: empty materialized cursor
  EdgeIterator it_;
  size_t remaining_ = 0;  // TEL mode: yields left before the scan bound
  size_t index_ = 0;
  std::vector<Edge> edges_;
  std::string arena_;
  std::unique_ptr<BatchSource> source_;  // chunked mode only
};

/// Incremental builder for materialized cursors (baseline adaptors).
class EdgeCursorBuilder {
 public:
  void Reserve(size_t edges) { edges_.reserve(edges); }

  void Add(vertex_t dst, std::string_view properties, timestamp_t created) {
    edges_.push_back(EdgeCursor::Edge{
        dst, static_cast<uint32_t>(arena_.size()),
        static_cast<uint32_t>(properties.size()), created});
    arena_.append(properties.data(), properties.size());
  }

  size_t size() const { return edges_.size(); }

  EdgeCursor Build() && {
    return EdgeCursor(std::move(edges_), std::move(arena_));
  }

 private:
  std::vector<EdgeCursor::Edge> edges_;
  std::string arena_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_API_EDGE_CURSOR_H_
