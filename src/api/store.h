// The v2 engine-neutral storage surface: a transaction-first session API
// (docs/API.md).
//
// The paper's §7.1 methodology drives one workload harness against
// LiveGraph and each baseline through embedded-store adaptors. The seed
// expressed that as a per-operation `GraphStore` (begin/commit hidden
// inside every call) plus a separate `GraphReadView`, with std::function
// callbacks on the scan path. v2 collapses both into explicit sessions:
//
//   auto txn = store->BeginTxn();         // writes + read-your-writes
//   txn->AddLink(src, label, dst, data);
//   StatusOr<timestamp_t> epoch = txn->Commit();
//
//   auto read = store->BeginReadTxn();    // consistent multi-op reads
//   for (EdgeCursor c = read->ScanLinks(v, label); c.Valid(); c.Next())
//     Use(c.dst(), c.properties());
//
// LiveGraph backs sessions with MVCC snapshots (readers never block);
// lock-based baselines hold their latch for the session's lifetime —
// exactly the contrast the paper measures on SNB complex queries (§7.3).
#ifndef LIVEGRAPH_API_STORE_H_
#define LIVEGRAPH_API_STORE_H_

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "api/edge_cursor.h"
#include "api/status.h"
#include "util/types.h"

namespace livegraph {

/// What a driver may assume about an engine beyond the common contract.
/// Conformance tests key their stricter assertions off these.
struct StoreTraits {
  /// ScanLinks returns edges newest-first (LiveGraph TELs, linked-list
  /// prepend order). Engines keyed on (src, label, dst) — B+ tree, LSMT —
  /// scan in destination order instead: serving "most recent first" without
  /// a secondary time index is exactly the cost §7.2 attributes to them.
  bool time_ordered_scans = false;
  /// Read sessions are MVCC snapshots: concurrent commits stay invisible
  /// and readers never block writers. Latch-based engines instead pin
  /// consistency by holding their shared latch open.
  bool snapshot_reads = false;
  /// Write sessions stage privately and roll back on Abort(). Non-MVCC
  /// baselines apply writes in place; for them Abort() only ends the
  /// session (the paper's comparators are no stronger).
  bool transactional_writes = false;
};

/// A consistent read session. MVCC engines never block writers; latch-based
/// engines hold their read latch until the session is destroyed.
class StoreReadTxn {
 public:
  /// No bound on ScanLinks.
  static constexpr size_t kScanAll = std::numeric_limits<size_t>::max();

  virtual ~StoreReadTxn() = default;

  virtual StatusOr<std::string> GetNode(vertex_t id) = 0;
  virtual StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                        vertex_t dst) = 0;
  /// Cursor over (src, label)'s adjacency list, yielding at most `limit`
  /// edges. See StoreTraits for order. The limit keeps LIMIT-style queries
  /// (LinkBench GET_LINKS_LIST, SNB top-k) O(limit) on engines that
  /// materialize their cursor; LiveGraph's lazy cursor enforces the same
  /// bound with a counter, so the contract is uniform across engines.
  virtual EdgeCursor ScanLinks(vertex_t src, label_t label,
                               size_t limit) = 0;
  EdgeCursor ScanLinks(vertex_t src, label_t label) {
    return ScanLinks(src, label, kScanAll);
  }
  virtual size_t CountLinks(vertex_t src, label_t label) = 0;
  /// Upper bound (exclusive) on node IDs visible to this session.
  virtual vertex_t VertexCount() = 0;

  /// Health of the session itself, for operations without a status
  /// channel (CountLinks, ScanLinks): kOk for embedded engines; a remote
  /// session reports kUnavailable once its connection is gone, so a
  /// driver can tell "empty adjacency list" from "the store stopped
  /// answering" (docs/SERVER.md).
  virtual Status SessionStatus() const { return Status::kOk; }
};

/// A read-write session. Supports every read (with read-your-writes) plus
/// LinkBench-style node/link mutations. End with Commit() or Abort();
/// destroying an open session aborts it.
class StoreTxn : public StoreReadTxn {
 public:
  // --- Node operations ---
  virtual StatusOr<vertex_t> AddNode(std::string_view data) = 0;
  /// kNotFound for tombstoned or never-written IDs (LinkBench UPDATE_NODE
  /// must not resurrect).
  virtual Status UpdateNode(vertex_t id, std::string_view data) = 0;
  virtual Status DeleteNode(vertex_t id) = 0;

  // --- Link operations ---
  /// Upsert (LinkBench ADD_LINK): true if the link was newly inserted,
  /// false if an existing link was overwritten.
  virtual StatusOr<bool> AddLink(vertex_t src, label_t label, vertex_t dst,
                                 std::string_view data) = 0;
  /// kNotFound if the link does not exist.
  virtual Status UpdateLink(vertex_t src, label_t label, vertex_t dst,
                            std::string_view data) = 0;
  virtual Status DeleteLink(vertex_t src, label_t label, vertex_t dst) = 0;

  // --- Lifecycle ---
  /// Persists and publishes the session's writes; returns the commit epoch
  /// (engines without global versioning return a monotonic commit
  /// sequence). kConflict/kTimeout losers are already rolled back — rerun
  /// the whole session (see RunWrite).
  virtual StatusOr<timestamp_t> Commit() = 0;
  /// Ends the session; rolls back iff StoreTraits::transactional_writes.
  virtual void Abort() = 0;

  // --- Cross-thread hand-off ---
  /// True if the session may migrate between threads mid-life (work phase
  /// on one thread, Commit/Abort on another, one thread at a time). The
  /// reactor server keys on this to offload group-commit waits to a
  /// worker pool instead of stalling its event loop. Engines whose
  /// sessions hold thread-affine state (pthread latches held for the
  /// session's lifetime, thread-local caches) must leave this false; the
  /// server then commits them inline on the owning thread.
  virtual bool SupportsThreadHandoff() const { return false; }
  /// Hand-off notifications: DetachFromThread() on the old thread after
  /// its last operation, AttachToThread() on the new thread before the
  /// next. Default no-ops; engines returning SupportsThreadHandoff() use
  /// them to migrate debug-ledger state (util/lock_rank.h).
  virtual void DetachFromThread() {}
  virtual void AttachToThread() {}
};

/// An embedded graph store: a factory for sessions.
class Store {
 public:
  virtual ~Store() = default;

  virtual std::string Name() const = 0;
  virtual StoreTraits Traits() const = 0;

  virtual std::unique_ptr<StoreTxn> BeginTxn() = 0;
  virtual std::unique_ptr<StoreReadTxn> BeginReadTxn() = 0;

  // --- Auto-commit convenience wrappers ---
  // One-operation sessions with bounded conflict retry, for loaders and
  // examples; latency-sensitive drivers manage sessions themselves.

  vertex_t AddNode(std::string_view data);
  StatusOr<std::string> GetNode(vertex_t id);
  Status UpdateNode(vertex_t id, std::string_view data);
  Status DeleteNode(vertex_t id);
  StatusOr<bool> AddLink(vertex_t src, label_t label, vertex_t dst,
                         std::string_view data);
  Status UpdateLink(vertex_t src, label_t label, vertex_t dst,
                    std::string_view data);
  Status DeleteLink(vertex_t src, label_t label, vertex_t dst);
  StatusOr<std::string> GetLink(vertex_t src, label_t label, vertex_t dst);
  size_t CountLinks(vertex_t src, label_t label);
};

/// Runs `fn(StoreTxn&)` in a fresh session and commits, retrying the whole
/// body on write-write conflicts (kConflict) up to `max_retries` times with
/// capped exponential backoff — the retry discipline the paper's LinkBench
/// harness applies to embedded stores (§7.1). Only kConflict is replayed:
/// it is the one outcome where the losing session was rolled back purely
/// because another writer won the race, so an immediate rerun is both safe
/// and likely to succeed. Every other status — logical results (kNotFound),
/// lock timeouts (kTimeout, the caller may be part of the deadlock), and
/// remote I/O failures (kUnavailable, the connection is gone) — surfaces
/// immediately instead of burning the retry budget against a store that
/// cannot answer.
template <typename Fn>
Status RunWrite(Store& store, Fn&& fn, int max_retries = 32) {
  constexpr auto kBackoffBase = std::chrono::microseconds(2);
  constexpr auto kBackoffCap = std::chrono::microseconds(512);
  Status last = Status::kConflict;
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    if (attempt > 0) {
      auto backoff = attempt < 16 ? kBackoffBase * (1 << (attempt - 1))
                                  : kBackoffCap;
      std::this_thread::sleep_for(std::min(backoff, kBackoffCap));
    }
    std::unique_ptr<StoreTxn> txn = store.BeginTxn();
    Status st = fn(*txn);
    if (st != Status::kOk) {
      txn->Abort();
      if (st != Status::kConflict) return st;
      last = st;
      continue;
    }
    StatusOr<timestamp_t> committed = txn->Commit();
    if (committed.ok()) return Status::kOk;
    if (committed.status() != Status::kConflict) return committed.status();
    last = committed.status();
  }
  return last;
}

inline vertex_t Store::AddNode(std::string_view data) {
  vertex_t id = kNullVertex;
  Status st = RunWrite(*this, [&](StoreTxn& txn) -> Status {
    StatusOr<vertex_t> added = txn.AddNode(data);
    if (!added.ok()) return added.status();
    id = *added;
    return Status::kOk;
  });
  return st == Status::kOk ? id : kNullVertex;
}

inline StatusOr<std::string> Store::GetNode(vertex_t id) {
  return BeginReadTxn()->GetNode(id);
}

inline Status Store::UpdateNode(vertex_t id, std::string_view data) {
  return RunWrite(*this,
                  [&](StoreTxn& txn) { return txn.UpdateNode(id, data); });
}

inline Status Store::DeleteNode(vertex_t id) {
  return RunWrite(*this, [&](StoreTxn& txn) { return txn.DeleteNode(id); });
}

inline StatusOr<bool> Store::AddLink(vertex_t src, label_t label, vertex_t dst,
                                     std::string_view data) {
  bool inserted = false;
  Status st = RunWrite(*this, [&](StoreTxn& txn) -> Status {
    StatusOr<bool> added = txn.AddLink(src, label, dst, data);
    if (!added.ok()) return added.status();
    inserted = *added;
    return Status::kOk;
  });
  if (st != Status::kOk) return st;
  return inserted;
}

inline Status Store::UpdateLink(vertex_t src, label_t label, vertex_t dst,
                                std::string_view data) {
  return RunWrite(*this, [&](StoreTxn& txn) {
    return txn.UpdateLink(src, label, dst, data);
  });
}

inline Status Store::DeleteLink(vertex_t src, label_t label, vertex_t dst) {
  return RunWrite(*this, [&](StoreTxn& txn) {
    return txn.DeleteLink(src, label, dst);
  });
}

inline StatusOr<std::string> Store::GetLink(vertex_t src, label_t label,
                                            vertex_t dst) {
  return BeginReadTxn()->GetLink(src, label, dst);
}

inline size_t Store::CountLinks(vertex_t src, label_t label) {
  return BeginReadTxn()->CountLinks(src, label);
}

}  // namespace livegraph

#endif  // LIVEGRAPH_API_STORE_H_
