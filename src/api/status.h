// Unified result type for the v2 storage API (docs/API.md).
//
// Every fallible operation across the public surface — the core
// Transaction/ReadTransaction API and the engine-neutral StoreTxn session
// API — reports through the one `Status` enum (util/types.h) or, when a
// value is produced, through `StatusOr<T>`. This replaces the seed's mix of
// `Status`, `std::optional<std::string_view>` and bare `bool` returns, so a
// driver written once runs identically against LiveGraph and every baseline
// (the paper's §7.1 single-harness methodology).
#ifndef LIVEGRAPH_API_STATUS_H_
#define LIVEGRAPH_API_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <type_traits>
#include <utility>

#include "util/types.h"

namespace livegraph {

/// True for outcomes a caller may retry by re-running the transaction
/// (optimistic-concurrency losers), false for logical results (kNotFound,
/// kOk), programming errors (kNotActive), and I/O failures (kUnavailable).
/// Note that RunWrite auto-retries only kConflict: a kTimeout caller may
/// itself be holding the lock the other side wants, so blind replay can
/// livelock — rerunning after a timeout is a policy decision left to the
/// driver.
inline constexpr bool IsRetryable(Status s) {
  return s == Status::kConflict || s == Status::kTimeout;
}

/// Either a value of `T` or the `Status` explaining its absence.
///
/// Deliberately mirrors the subset of std::optional the seed call sites
/// already used (`has_value()`, `value()`, `operator*`, `operator->`), so
/// migrating a return type from optional to StatusOr does not churn its
/// readers — they just gain access to the precise failure code. Also
/// comparable against a bare `Status` (`txn.Commit() == Status::kOk`),
/// where an engaged value compares equal to kOk.
template <typename T>
class StatusOr {
 public:
  using value_type = T;

  /// Error state. Constructing from kOk is a contract violation: a kOk
  /// result must carry a value.
  StatusOr(Status status) : status_(status) {  // NOLINT(google-explicit-*)
    assert(status != Status::kOk && "kOk StatusOr requires a value");
  }

  /// Success state. Accepts anything T is constructible from (e.g. a
  /// string_view initializing a StatusOr<std::string>).
  template <typename U = T,
            typename = std::enable_if_t<
                std::is_constructible_v<T, U&&> &&
                !std::is_same_v<std::decay_t<U>, StatusOr> &&
                !std::is_same_v<std::decay_t<U>, Status>>>
  StatusOr(U&& value)  // NOLINT(google-explicit-constructor)
      : status_(Status::kOk), value_(std::forward<U>(value)) {}

  bool ok() const { return status_ == Status::kOk; }
  bool has_value() const { return ok(); }
  Status status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  friend bool operator==(const StatusOr& result, Status status) {
    return result.status_ == status;
  }
  friend bool operator==(const StatusOr& a, const StatusOr& b) {
    if (a.status_ != b.status_) return false;
    return !a.ok() || *a.value_ == *b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, const StatusOr& result) {
    return os << "StatusOr<" << StatusName(result.status_) << ">";
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_API_STATUS_H_
