// Multi-client benchmark driver: N client threads each execute a stream of
// operations, recording per-class latency histograms; aggregates
// throughput. Mirrors the paper's harness ("each client sends 500K query
// requests", optional recorded think times, §7.1/§7.2).
#ifndef LIVEGRAPH_WORKLOAD_DRIVER_H_
#define LIVEGRAPH_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace livegraph {

struct DriverResult {
  double seconds;
  uint64_t operations;
  double throughput() const {
    return seconds > 0 ? double(operations) / seconds : 0.0;
  }
  LatencyHistogram overall;
  std::map<std::string, LatencyHistogram> per_class;
};

/// One client's operation: executes op #i and returns its class name for
/// histogram bucketing.
using ClientOp = std::function<const char*(int client, uint64_t i)>;

struct DriverOptions {
  int clients = 8;
  uint64_t ops_per_client = 100'000;
  /// Fixed think time between requests in nanoseconds (0 = closed loop at
  /// full speed, as in the paper's saturation runs).
  uint64_t think_time_ns = 0;
};

DriverResult RunClients(const DriverOptions& options, const ClientOp& op);

}  // namespace livegraph

#endif  // LIVEGRAPH_WORKLOAD_DRIVER_H_
