// Multi-client benchmark driver: N client threads each execute a stream of
// operations, recording per-class latency histograms; aggregates
// throughput. Mirrors the paper's harness ("each client sends 500K query
// requests", optional recorded think times, §7.1/§7.2).
#ifndef LIVEGRAPH_WORKLOAD_DRIVER_H_
#define LIVEGRAPH_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace livegraph {

struct DriverResult {
  double seconds;
  /// Operations that completed successfully. Only these count toward
  /// throughput(): a saturated run where half the requests die (conflict
  /// budgets exhausted, remote store unreachable) must not report the
  /// failure rate as serving capacity.
  uint64_t operations = 0;
  /// Operations whose OpResult reported failure. Their latencies are still
  /// recorded in the histograms (the client paid them), but they are
  /// excluded from throughput.
  uint64_t failures = 0;
  double throughput() const {
    return seconds > 0 ? double(operations) / seconds : 0.0;
  }
  double failure_rate() const {
    uint64_t attempts = operations + failures;
    return attempts > 0 ? double(failures) / double(attempts) : 0.0;
  }
  LatencyHistogram overall;
  std::map<std::string, LatencyHistogram> per_class;
};

/// Outcome of one client operation: its class name (histogram bucket) and
/// whether it succeeded. Implicitly constructible from a bare class name
/// so read-only ops that cannot fail stay one `return "GET_NODE";`.
struct OpResult {
  // NOLINTNEXTLINE(google-explicit-constructor)
  OpResult(const char* op_class) : op_class(op_class), ok(true) {}
  OpResult(const char* op_class, bool ok) : op_class(op_class), ok(ok) {}

  const char* op_class;
  bool ok;
};

/// Marks an operation failed while keeping its class label.
inline OpResult FailedOp(const char* op_class) {
  return OpResult(op_class, false);
}

/// One client's operation: executes op #i and reports its outcome.
using ClientOp = std::function<OpResult(int client, uint64_t i)>;

struct DriverOptions {
  int clients = 8;
  uint64_t ops_per_client = 100'000;
  /// Fixed think time between requests in nanoseconds (0 = closed loop at
  /// full speed, as in the paper's saturation runs).
  uint64_t think_time_ns = 0;
};

DriverResult RunClients(const DriverOptions& options, const ClientOp& op);

}  // namespace livegraph

#endif  // LIVEGRAPH_WORKLOAD_DRIVER_H_
