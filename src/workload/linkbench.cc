#include "workload/linkbench.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "util/random.h"
#include "util/zipf.h"
#include "workload/kronecker.h"

namespace livegraph {

namespace {

constexpr label_t kLinkType = 0;

// LinkBench paper's default operation mix (percent).
constexpr double kDflt[kNumLinkBenchOps] = {
    /*AddNode*/ 2.6,    /*UpdateNode*/ 7.4, /*DeleteNode*/ 1.0,
    /*GetNode*/ 12.9,   /*AddLink*/ 9.0,    /*DeleteLink*/ 3.0,
    /*UpdateLink*/ 8.0, /*CountLink*/ 4.9,  /*MultigetLink*/ 0.5,
    /*GetLinkList*/ 50.7};

// TAO: 99.8% reads split per the TAO paper; 0.2% writes split by TAO's
// write breakdown (assoc_add dominating).
constexpr double kTao[kNumLinkBenchOps] = {
    /*AddNode*/ 0.033,   /*UpdateNode*/ 0.041, /*DeleteNode*/ 0.004,
    /*GetNode*/ 28.842,  /*AddLink*/ 0.105,    /*DeleteLink*/ 0.017,
    /*UpdateLink*/ 0.0,  /*CountLink*/ 11.677, /*MultigetLink*/ 15.669,
    /*GetLinkList*/ 43.612};

constexpr bool kIsWrite[kNumLinkBenchOps] = {true,  true,  true, false, true,
                                             true,  true,  false, false, false};

LinkBenchMix Normalize(const double (&raw)[kNumLinkBenchOps]) {
  LinkBenchMix mix{};
  double sum = 0;
  for (double v : raw) sum += v;
  for (int i = 0; i < kNumLinkBenchOps; ++i) mix[size_t(i)] = raw[i] / sum;
  return mix;
}

}  // namespace

LinkBenchMix DfltMix() { return Normalize(kDflt); }
LinkBenchMix TaoMix() { return Normalize(kTao); }

LinkBenchMix MixWithWriteRatio(double write_fraction) {
  LinkBenchMix base = DfltMix();
  double write_sum = 0, read_sum = 0;
  for (int i = 0; i < kNumLinkBenchOps; ++i) {
    (kIsWrite[i] ? write_sum : read_sum) += base[size_t(i)];
  }
  LinkBenchMix mix{};
  for (int i = 0; i < kNumLinkBenchOps; ++i) {
    mix[size_t(i)] = kIsWrite[i]
                         ? base[size_t(i)] / write_sum * write_fraction
                         : base[size_t(i)] / read_sum * (1.0 - write_fraction);
  }
  return mix;
}

const char* LinkBenchOpName(LinkBenchOp op) {
  static const char* kNames[] = {"ADD_NODE",    "UPDATE_NODE", "DELETE_NODE",
                                 "GET_NODE",    "ADD_LINK",    "DELETE_LINK",
                                 "UPDATE_LINK", "COUNT_LINK",  "MULTIGET_LINK",
                                 "GET_LINKS_LIST"};
  return kNames[static_cast<int>(op)];
}

vertex_t LoadLinkBenchGraph(Store* store, const LinkBenchConfig& config) {
  // Bulk load through batched sessions: one commit per kLoadBatch staged
  // operations amortizes the persist phase (and, on latch-based engines,
  // the latch round trip) across the batch. Each batch goes through
  // RunWrite so a conflicting/timed-out commit replays the whole batch
  // instead of silently dropping it; a terminally failed batch is loud.
  constexpr size_t kLoadBatch = 4096;
  auto load_batch = [store](auto&& stage_fn) {
    Status st = RunWrite(*store, stage_fn);
    if (st != Status::kOk) {
      std::fprintf(stderr, "LoadLinkBenchGraph: batch failed: %s\n",
                   StatusName(st));
    }
  };

  const auto n = vertex_t{1} << config.scale;
  std::string payload(config.payload_bytes, 'v');
  for (vertex_t base = 0; base < n; base += kLoadBatch) {
    vertex_t count = std::min<vertex_t>(kLoadBatch, n - base);
    load_batch([&](StoreTxn& txn) -> Status {
      for (vertex_t i = 0; i < count; ++i) {
        StatusOr<vertex_t> added = txn.AddNode(payload);
        if (!added.ok()) return added.status();
      }
      return Status::kOk;
    });
  }

  KroneckerOptions kron;
  kron.scale = config.scale;
  kron.average_degree = 4;
  kron.seed = config.seed;
  std::string link_payload(config.payload_bytes, 'e');
  const auto edges = GenerateKronecker(kron);
  for (size_t base = 0; base < edges.size(); base += kLoadBatch) {
    size_t end = std::min(base + kLoadBatch, edges.size());
    load_batch([&](StoreTxn& txn) -> Status {
      for (size_t i = base; i < end; ++i) {
        const auto& [src, dst] = edges[i];
        Status st = txn.AddLink(src, kLinkType, dst, link_payload).status();
        if (st != Status::kOk) return st;
      }
      return Status::kOk;
    });
  }
  return n;
}

DriverResult RunLinkBench(Store* store, const LinkBenchConfig& config,
                          vertex_t vertex_count) {
  // Cumulative distribution over ops.
  std::array<double, kNumLinkBenchOps> cdf{};
  double acc = 0;
  for (int i = 0; i < kNumLinkBenchOps; ++i) {
    acc += config.mix[size_t(i)];
    cdf[size_t(i)] = acc;
  }
  ScrambledZipf zipf(static_cast<uint64_t>(vertex_count), config.zipf_theta,
                     config.seed);
  std::string payload(config.payload_bytes, 'w');
  // New nodes appended during the run extend the ID space.
  std::atomic<vertex_t> max_vertex{vertex_count};

  DriverOptions driver;
  driver.clients = config.clients;
  driver.ops_per_client = config.ops_per_client;
  driver.think_time_ns = config.think_time_ns;

  auto client_op = [&, store](int client, uint64_t /*op_index*/) -> OpResult {
    thread_local Xorshift rng(config.seed * 7919 +
                              static_cast<uint64_t>(client) + 1);
    double r = rng.NextDouble();
    int op_index = 0;
    while (op_index < kNumLinkBenchOps - 1 && r > cdf[size_t(op_index)]) {
      op_index++;
    }
    auto op = static_cast<LinkBenchOp>(op_index);
    const char* name = LinkBenchOpName(op);
    // kNotFound is a logical outcome on zipf-sampled ids (updating a
    // deleted node, reading a missing link); everything else non-OK —
    // exhausted conflict retries, lock timeouts, an unreachable remote
    // store — is a failed request and must not count as served load.
    auto outcome = [name](Status st) {
      return OpResult(name, st == Status::kOk || st == Status::kNotFound);
    };
    vertex_t id1 = static_cast<vertex_t>(zipf.Sample(rng));
    vertex_t id2 = static_cast<vertex_t>(zipf.Sample(rng));
    switch (op) {
      case LinkBenchOp::kAddNode: {
        vertex_t v = kNullVertex;
        Status st = RunWrite(*store, [&](StoreTxn& txn) -> Status {
          StatusOr<vertex_t> added = txn.AddNode(payload);
          if (!added.ok()) return added.status();
          v = *added;
          return Status::kOk;
        });
        if (st != Status::kOk) return FailedOp(name);
        // relaxed monotone-max CAS: max_vertex only seeds the ID picker —
        // a stale bound just re-targets recent vertices; no data rides on
        // it.
        vertex_t expected = max_vertex.load(std::memory_order_relaxed);
        while (v >= expected && !max_vertex.compare_exchange_weak(
                                    expected, v + 1,
                                    std::memory_order_relaxed)) {
        }
        return name;
      }
      case LinkBenchOp::kUpdateNode:
        return outcome(RunWrite(
            *store, [&](StoreTxn& txn) { return txn.UpdateNode(id1, payload); }));
      case LinkBenchOp::kDeleteNode:
        return outcome(RunWrite(
            *store, [&](StoreTxn& txn) { return txn.DeleteNode(id1); }));
      case LinkBenchOp::kGetNode:
        return outcome(store->BeginReadTxn()->GetNode(id1).status());
      case LinkBenchOp::kAddLink:
        return outcome(RunWrite(*store, [&](StoreTxn& txn) {
          return txn.AddLink(id1, kLinkType, id2, payload).status();
        }));
      case LinkBenchOp::kDeleteLink:
        return outcome(RunWrite(*store, [&](StoreTxn& txn) {
          return txn.DeleteLink(id1, kLinkType, id2);
        }));
      case LinkBenchOp::kUpdateLink:
        return outcome(RunWrite(*store, [&](StoreTxn& txn) {  // upsert
          return txn.AddLink(id1, kLinkType, id2, payload).status();
        }));
      case LinkBenchOp::kCountLink: {
        // CountLinks has no status channel; the session's health says
        // whether the count was real or a dead connection's zero.
        auto read = store->BeginReadTxn();
        read->CountLinks(id1, kLinkType);
        return outcome(read->SessionStatus());
      }
      case LinkBenchOp::kMultigetLink:
        return outcome(
            store->BeginReadTxn()->GetLink(id1, kLinkType, id2).status());
      case LinkBenchOp::kGetLinkList:
      default: {
        // GET_LINKS_LIST: bounded newest-first range scan. Passing the
        // limit keeps materializing engines O(limit); LiveGraph's lazy
        // cursor is additionally bounded by consumption.
        std::unique_ptr<StoreReadTxn> read = store->BeginReadTxn();
        size_t remaining = config.range_limit;
        for (EdgeCursor cursor =
                 read->ScanLinks(id1, kLinkType, config.range_limit);
             cursor.Valid() && remaining > 0; cursor.Next()) {
          --remaining;
        }
        return outcome(read->SessionStatus());
      }
    }
  };
  return RunClients(driver, client_op);
}

}  // namespace livegraph
