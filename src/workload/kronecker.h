// Kronecker (R-MAT) graph generator [Leskovec et al., JMLR'10] — the
// generator the paper uses for its §2.1 micro-benchmarks ("Graphs are
// generated using the Kronecker generator with sizes ranging from 2^20 to
// 2^26 vertices, and an average degree of 4").
#ifndef LIVEGRAPH_WORKLOAD_KRONECKER_H_
#define LIVEGRAPH_WORKLOAD_KRONECKER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.h"

namespace livegraph {

struct KroneckerOptions {
  int scale = 16;          // |V| = 2^scale
  int average_degree = 4;  // |E| = |V| * average_degree
  // Graph500 initiator probabilities (power-law degree distribution).
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 2026;
};

/// Generates |V|*degree directed edges; multi-edges possible (stores treat
/// repeats as upserts, matching the paper's insertion workload).
std::vector<std::pair<vertex_t, vertex_t>> GenerateKronecker(
    const KroneckerOptions& options);

}  // namespace livegraph

#endif  // LIVEGRAPH_WORKLOAD_KRONECKER_H_
