#include "workload/kronecker.h"

#include "util/random.h"

namespace livegraph {

std::vector<std::pair<vertex_t, vertex_t>> GenerateKronecker(
    const KroneckerOptions& options) {
  const uint64_t n = uint64_t{1} << options.scale;
  const uint64_t m = n * static_cast<uint64_t>(options.average_degree);
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  edges.reserve(m);
  Xorshift rng(options.seed);
  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  for (uint64_t e = 0; e < m; ++e) {
    uint64_t src = 0, dst = 0;
    for (int bit = 0; bit < options.scale; ++bit) {
      double r = rng.NextDouble();
      if (r < options.a) {
        // top-left quadrant: neither bit set
      } else if (r < ab) {
        dst |= uint64_t{1} << bit;
      } else if (r < abc) {
        src |= uint64_t{1} << bit;
      } else {
        src |= uint64_t{1} << bit;
        dst |= uint64_t{1} << bit;
      }
    }
    edges.emplace_back(static_cast<vertex_t>(src), static_cast<vertex_t>(dst));
  }
  return edges;
}

}  // namespace livegraph
