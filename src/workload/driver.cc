#include "workload/driver.h"

#include <chrono>
#include <mutex>
#include <thread>

namespace livegraph {

DriverResult RunClients(const DriverOptions& options, const ClientOp& op) {
  struct ClientState {
    LatencyHistogram overall;
    std::map<std::string, LatencyHistogram> per_class;
    uint64_t failures = 0;
  };
  std::vector<ClientState> states(static_cast<size_t>(options.clients));
  std::vector<std::thread> threads;
  auto wall_start = std::chrono::steady_clock::now();
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      ClientState& state = states[static_cast<size_t>(c)];
      for (uint64_t i = 0; i < options.ops_per_client; ++i) {
        auto start = std::chrono::steady_clock::now();
        OpResult outcome = op(c, i);
        auto end = std::chrono::steady_clock::now();
        auto nanos = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count());
        state.overall.Record(nanos);
        state.per_class[outcome.op_class].Record(nanos);
        if (!outcome.ok) state.failures++;
        if (options.think_time_ns > 0) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options.think_time_ns));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto wall_end = std::chrono::steady_clock::now();

  DriverResult result;
  result.seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  for (ClientState& state : states) {
    result.overall.Merge(state.overall);
    result.failures += state.failures;
    for (auto& [name, histogram] : state.per_class) {
      result.per_class[name].Merge(histogram);
    }
  }
  result.operations = static_cast<uint64_t>(options.clients) *
                          options.ops_per_client -
                      result.failures;
  return result;
}

}  // namespace livegraph
