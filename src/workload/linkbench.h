// LinkBench workload (Armstrong et al., SIGMOD'13) — Facebook's social
// graph benchmark, the paper's transactional workload (§7.1/§7.2). Two
// mixes: DFLT (69% reads / 31% writes, the benchmark default) and TAO
// (99.8% reads, parameters from the Facebook TAO paper).
#ifndef LIVEGRAPH_WORKLOAD_LINKBENCH_H_
#define LIVEGRAPH_WORKLOAD_LINKBENCH_H_

#include <array>
#include <cstdint>
#include <string>

#include "api/store.h"
#include "workload/driver.h"

namespace livegraph {

enum class LinkBenchOp {
  kAddNode = 0,
  kUpdateNode,
  kDeleteNode,
  kGetNode,
  kAddLink,
  kDeleteLink,
  kUpdateLink,
  kCountLink,
  kMultigetLink,
  kGetLinkList,
  kNumOps,
};

constexpr int kNumLinkBenchOps = static_cast<int>(LinkBenchOp::kNumOps);

/// Operation mix: probabilities summing to 1.
using LinkBenchMix = std::array<double, kNumLinkBenchOps>;

/// LinkBench default mix (benchmark paper, Table 2): 69.0% reads.
LinkBenchMix DfltMix();

/// TAO read-mostly mix: 99.8% reads with the TAO paper's read breakdown
/// (assoc_range 40.9, obj_get 28.9, assoc_get 15.7, assoc_count 11.7,
/// assoc_time_range 2.8 — the last folded into range scans).
LinkBenchMix TaoMix();

/// Mix with an exact write fraction, interpolated from DFLT's relative
/// write/read breakdowns (Figure 8's write-ratio sweep).
LinkBenchMix MixWithWriteRatio(double write_fraction);

struct LinkBenchConfig {
  /// Base graph: |V| = 1<<scale vertices, |E| ~ 4.4|V| (the paper's 32M/140M
  /// base graph has the same ratio).
  int scale = 17;
  uint64_t seed = 7;
  /// Node/link payload bytes (LinkBench's median data size ~128 B).
  size_t payload_bytes = 120;
  double zipf_theta = 0.99;
  /// GET_LINKS_LIST limit (LinkBench default 10'000; TAO caps at 6'000 but
  /// most lists are short anyway).
  size_t range_limit = 10'000;
  LinkBenchMix mix = DfltMix();
  int clients = 8;
  uint64_t ops_per_client = 50'000;
  uint64_t think_time_ns = 0;
};

/// Loads the base graph (Kronecker edges + payloads) into `store` through
/// batched write sessions. Returns the number of vertices created.
vertex_t LoadLinkBenchGraph(Store* store, const LinkBenchConfig& config);

/// Runs the request mix against a pre-loaded store. Each request is one
/// explicit session: reads open a StoreReadTxn, writes a StoreTxn with
/// bounded conflict retry (§7.1's embedded-store harness discipline).
DriverResult RunLinkBench(Store* store, const LinkBenchConfig& config,
                          vertex_t vertex_count);

const char* LinkBenchOpName(LinkBenchOp op);

}  // namespace livegraph

#endif  // LIVEGRAPH_WORKLOAD_LINKBENCH_H_
