#include "shard/sharded_store.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <unordered_map>
#include <utility>

#include "storage/wal.h"
#include "util/lock_rank.h"
#include "util/raw_io.h"

namespace livegraph {

/// Befriended by ShardedStore: the coordinator internals the write session
/// needs, kept off the public surface.
struct ShardedStoreAccess {
  static int PickShard(ShardedStore& store) { return store.PickShard(); }
  static EpochDomain* Domain(ShardedStore& store) {
    return store.domain_.get();
  }
};

namespace {

constexpr uint64_t kManifestMagic = 0x4C4753484D414E31ull;  // "LGSHMAN1"
constexpr uint32_t kManifestVersion = 1;

/// The effective durable directory: ShardOptions::dir, with the template's
/// wal_path accepted as a fallback spelling of the same thing.
std::string EffectiveDir(const ShardOptions& options) {
  if (!options.dir.empty()) return options.dir;
  return options.graph.wal_path;
}

/// Shard s's engine options: an equal slice of the global vertex budget,
/// the shared epoch domain, and this shard's slot of the durable
/// directory layout.
GraphOptions ShardGraphOptions(const ShardOptions& options,
                               std::shared_ptr<EpochDomain> domain,
                               const std::string& wal_path, int shards,
                               int s) {
  GraphOptions g = options.graph;
  g.epoch_domain = std::move(domain);
  g.max_vertices =
      (options.graph.max_vertices + static_cast<size_t>(shards) - 1) /
      static_cast<size_t>(shards);
  g.wal_path = wal_path;
  if (!g.storage_path.empty()) {
    g.storage_path += ".shard" + std::to_string(s);
  }
  return g;
}

/// A read-write session over the shards. The session pins ONE global
/// read epoch up front (an O(1) domain pin); native per-shard transactions
/// still open lazily on first touch — at that pinned epoch — so a
/// transaction that only ever addresses one shard is exactly a native
/// LiveGraph transaction plus one array index and one pin. The up-front
/// pin means every shard reads the SAME cross-shard-consistent snapshot no
/// matter when it is first touched (lazy first-touch pinning could see a
/// commit on shard B but miss its sibling piece on later-touched shard A).
/// Cross-shard atomicity mirrors the native eager-abort discipline: the
/// moment any shard reports kConflict/kTimeout (its native transaction has
/// already rolled back), every other open shard is rolled back too and the
/// session dies.
class ShardedWriteTxn : public StoreTxn {
 public:
  explicit ShardedWriteTxn(ShardedStore* store)
      : store_(store),
        txns_(static_cast<size_t>(store->num_shards())),
        wrote_(static_cast<size_t>(store->num_shards()), false),
        pin_(store->epoch_domain()->PinRead()) {}

  ~ShardedWriteTxn() override {
    if (active_) AbortAll();
    ReleasePin();
  }

  // --- Reads (read-your-writes via the owning shard's native txn) ---

  StatusOr<std::string> GetNode(vertex_t id) override {
    if (!active_) return Status::kNotActive;
    if (id < 0) return Status::kNotFound;
    StatusOr<std::string_view> props =
        Shard(store_->ShardOf(id)).GetVertex(store_->LocalId(id));
    if (!props.ok()) return props.status();
    return std::string(*props);
  }

  StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                vertex_t dst) override {
    if (!active_) return Status::kNotActive;
    if (src < 0) return Status::kNotFound;
    StatusOr<std::string_view> props =
        Shard(store_->ShardOf(src))
            .GetEdge(store_->LocalId(src), label, dst);
    if (!props.ok()) return props.status();
    return std::string(*props);
  }

  EdgeCursor ScanLinks(vertex_t src, label_t label, size_t limit) override {
    if (!active_ || src < 0) return EdgeCursor();
    return EdgeCursor(
        Shard(store_->ShardOf(src)).GetEdges(store_->LocalId(src), label),
        limit);
  }

  size_t CountLinks(vertex_t src, label_t label) override {
    if (!active_ || src < 0) return 0;
    return Shard(store_->ShardOf(src))
        .CountEdges(store_->LocalId(src), label);
  }

  vertex_t VertexCount() override { return store_->VertexCount(); }

  // --- Writes ---

  StatusOr<vertex_t> AddNode(std::string_view data) override {
    if (!active_) return Status::kNotActive;
    // Round-robin placement with a capacity-fallback probe (the first step
    // of ROADMAP "Shard rebalancing"): when the home shard is full the ID
    // moves to the next shard with room instead of failing the store while
    // capacity remains elsewhere. Capacity is not a conflict — probed-full
    // shards keep their native transaction active (and committable empty).
    const int n = store_->num_shards();
    const int home = ShardedStoreAccess::PickShard(*store_);
    for (int probe = 0; probe < n; ++probe) {
      const int s = (home + probe) % n;
      Transaction& txn = Shard(s);
      vertex_t local = txn.AddVertex(data);
      if (local == kNullVertex) {
        // A lock timeout killed the native transaction — take the rest of
        // the session down too. Plain exhaustion: probe the next shard.
        if (!txn.active()) {
          AbortAll();
          return Status::kTimeout;
        }
        continue;
      }
      wrote_[static_cast<size_t>(s)] = true;
      return store_->GlobalId(s, local);
    }
    return Status::kOutOfRange;  // every shard is at capacity
  }

  Status UpdateNode(vertex_t id, std::string_view data) override {
    if (!active_) return Status::kNotActive;
    if (id < 0) return Status::kNotFound;
    int s = store_->ShardOf(id);
    Transaction& txn = Shard(s);
    vertex_t local = store_->LocalId(id);
    // LinkBench UPDATE_NODE: tombstoned / never-written IDs must not
    // resurrect.
    if (!txn.GetVertex(local).ok()) return Status::kNotFound;
    return Wrote(s, Filter(txn.PutVertex(local, data)));
  }

  Status DeleteNode(vertex_t id) override {
    if (!active_) return Status::kNotActive;
    if (id < 0) return Status::kNotFound;
    int s = store_->ShardOf(id);
    Transaction& txn = Shard(s);
    vertex_t local = store_->LocalId(id);
    if (!txn.GetVertex(local).ok()) return Status::kNotFound;
    return Wrote(s, Filter(txn.DeleteVertex(local)));
  }

  StatusOr<bool> AddLink(vertex_t src, label_t label, vertex_t dst,
                         std::string_view data) override {
    if (!active_) return Status::kNotActive;
    if (src < 0) return Status::kNotFound;
    int s = store_->ShardOf(src);
    Transaction& txn = Shard(s);
    vertex_t local = store_->LocalId(src);
    // Upsert: report whether this was a true insertion (Bloom-fast, §4).
    bool existed = txn.GetEdge(local, label, dst).ok();
    Status st = Wrote(s, Filter(txn.AddEdge(local, label, dst, data)));
    if (st != Status::kOk) return st;
    return !existed;
  }

  Status UpdateLink(vertex_t src, label_t label, vertex_t dst,
                    std::string_view data) override {
    if (!active_) return Status::kNotActive;
    if (src < 0) return Status::kNotFound;
    int s = store_->ShardOf(src);
    Transaction& txn = Shard(s);
    vertex_t local = store_->LocalId(src);
    if (!txn.GetEdge(local, label, dst).ok()) return Status::kNotFound;
    return Wrote(s, Filter(txn.AddEdge(local, label, dst, data)));
  }

  Status DeleteLink(vertex_t src, label_t label, vertex_t dst) override {
    if (!active_) return Status::kNotActive;
    if (src < 0) return Status::kNotFound;
    int s = store_->ShardOf(src);
    Transaction& txn = Shard(s);
    return Wrote(s, Filter(txn.DeleteEdge(store_->LocalId(src), label, dst)));
  }

  // --- Lifecycle ---

  StatusOr<timestamp_t> Commit() override {
    if (!active_) return Status::kNotActive;
    // Store-wide read-only degradation: the shards share one disk, so a
    // WAL failure latched by ANY shard rejects every commit — not just
    // those routed to the poisoned shard. Sessions that staged writes
    // before the latch abort cleanly (locks released, nothing visible).
    if (Status degraded = store_->degraded_status();
        degraded != Status::kOk) {
      AbortAll();
      return degraded;
    }
    active_ = false;
    // The domain pin only has to outlive lazy first-touches: every open
    // shard's worker slot published the pinned epoch itself, and Commit
    // touches no new shards, so the pin's job is done.
    ReleasePin();

    // Shards without a landed mutation publish no visible data (at most an
    // empty staged TEL write from a missed delete): their native commits
    // cannot tear anything. Run them outside any coordination.
    int writers = 0;
    for (size_t s = 0; s < txns_.size(); ++s) {
      if (!txns_[s].has_value()) continue;
      if (wrote_[s]) {
        ++writers;
      } else {
        txns_[s]->Commit();
        txns_[s].reset();
      }
    }

    EpochDomain* domain = ShardedStoreAccess::Domain(*store_);
    if (writers == 0) return domain->visible();

    if (writers == 1) {
      // Single-shard fast path: straight through that shard's commit
      // pipeline. Its fresh epoch comes from the shared domain, so it IS
      // a global epoch — no extra coordination to make it comparable.
      for (auto& txn : txns_) {
        if (!txn.has_value()) continue;
        StatusOr<timestamp_t> committed = txn->Commit();
        txn.reset();
        return committed;
      }
    }

    // Multi-shard commit: ONE domain epoch for the whole transaction, each
    // shard's piece committed at it (CommitAt) through its own pipeline.
    // The epoch becomes visible only when the last piece applies — and no
    // reader can pin an epoch at or above it before then — so the commit
    // is all-or-nothing without any coordinator lock. Pieces that fail
    // unexpectedly still report their MarkApplied inside CommitAt, so the
    // frontier cannot wedge; committing the remaining shards keeps locks
    // from leaking.
    // Coordinator section (rank kCommitCoordinator): entered while this
    // session's vertex locks are still held by the pieces below; it must
    // never acquire NEW vertex locks — a write after the epoch is stamped
    // would escape its WAL record. The rank table turns that rule into an
    // abort at the violation site.
    LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kCommitCoordinator);
    timestamp_t epoch = domain->Acquire(static_cast<uint32_t>(writers));
    Status failure = Status::kOk;
    for (auto& txn : txns_) {
      if (!txn.has_value()) continue;
      StatusOr<timestamp_t> committed =
          txn->CommitAt(epoch, static_cast<uint32_t>(writers));
      txn.reset();
      if (!committed.ok() && failure == Status::kOk) {
        failure = committed.status();
      }
    }
    // Read-your-commit across the whole store: return only once the epoch
    // is visible everywhere (the per-piece commits skipped this wait).
    domain->WaitVisible(epoch);
    if (failure != Status::kOk) return failure;
    return epoch;
  }

  void Abort() override {
    if (active_) AbortAll();
  }

  // Every engaged per-shard piece migrates its debug-ledger state; the
  // futex locks themselves are not thread-affine (core/transaction.h
  // "Cross-thread hand-off").
  bool SupportsThreadHandoff() const override { return true; }
  void DetachFromThread() override {
    for (auto& txn : txns_) {
      if (txn.has_value()) txn->DetachFromThread();
    }
  }
  void AttachToThread() override {
    for (auto& txn : txns_) {
      if (txn.has_value()) txn->AttachToThread();
    }
  }

 private:
  /// The shard's native transaction, opened on first touch AT the
  /// session's up-front pinned epoch — one consistent read view across
  /// every shard regardless of touch order.
  Transaction& Shard(int s) {
    auto& slot = txns_[static_cast<size_t>(s)];
    if (!slot.has_value()) {
      slot.emplace(store_->shard(s).BeginTransactionAt(pin_.epoch));
    }
    return *slot;
  }

  /// Native write ops abort their own transaction on conflict/timeout;
  /// propagate that to every other open shard so the session stays
  /// all-or-nothing.
  Status Filter(Status st) {
    if (st == Status::kConflict || st == Status::kTimeout) AbortAll();
    return st;
  }

  /// Marks shard `s` as a writer only when the mutation actually landed.
  /// A miss (kNotFound — e.g. a routine LinkBench DELETE_LINK of a
  /// non-existent edge) stages no visible change, so leaving wrote_ unset
  /// keeps an otherwise single-shard commit off the coordinated path.
  Status Wrote(int s, Status st) {
    if (st == Status::kOk) wrote_[static_cast<size_t>(s)] = true;
    return st;
  }

  void AbortAll() {
    active_ = false;
    for (auto& txn : txns_) {
      if (!txn.has_value()) continue;
      if (txn->active()) txn->Abort();
      txn.reset();
    }
    ReleasePin();
  }

  /// Releases the session's global read pin exactly once (Commit entry,
  /// AbortAll, or the destructor as backstop).
  void ReleasePin() {
    if (!pinned_) return;
    pinned_ = false;
    store_->epoch_domain()->Unpin(pin_);
  }

  ShardedStore* store_;
  std::vector<std::optional<Transaction>> txns_;  // index = shard
  std::vector<bool> wrote_;  // mutation reached this shard's native txn
  /// The session's one global read epoch, pinned at construction.
  EpochDomain::ReadPin pin_;
  bool pinned_ = true;
  bool active_ = true;
};

}  // namespace

// --- ShardedReadTxn ---

ShardedReadTxn::ShardedReadTxn(ShardedStore* store, EpochDomain::ReadPin pin,
                               vertex_t vertex_bound)
    : store_(store),
      pin_(pin),
      snapshots_(static_cast<size_t>(store->num_shards())),
      vertex_bound_(vertex_bound) {}

ShardedReadTxn::~ShardedReadTxn() {
  // Drop the per-shard snapshots (worker slots) before releasing the
  // domain pin that guards their epoch.
  snapshots_.clear();
  store_->epoch_domain()->Unpin(pin_);
}

/// The snapshot owning global vertex `v`, opened at the session's pinned
/// epoch on first touch (single-shard read fast path).
const ReadTransaction& ShardedReadTxn::Owner(vertex_t v) {
  int s = store_->ShardOf(v);
  auto& slot = snapshots_[static_cast<size_t>(s)];
  if (!slot.has_value()) {
    slot.emplace(store_->shard(s).BeginTimeTravelTransaction(pin_.epoch));
  }
  return *slot;
}

vertex_t ShardedReadTxn::Local(vertex_t v) const {
  return store_->LocalId(v);
}

StatusOr<std::string> ShardedReadTxn::GetNode(vertex_t id) {
  if (id < 0) return Status::kNotFound;
  StatusOr<std::string_view> props = Owner(id).GetVertex(Local(id));
  if (!props.ok()) return props.status();
  return std::string(*props);
}

StatusOr<std::string> ShardedReadTxn::GetLink(vertex_t src, label_t label,
                                              vertex_t dst) {
  if (src < 0) return Status::kNotFound;
  StatusOr<std::string_view> props =
      Owner(src).GetEdge(Local(src), label, dst);
  if (!props.ok()) return props.status();
  return std::string(*props);
}

EdgeCursor ShardedReadTxn::ScanLinks(vertex_t src, label_t label,
                                     size_t limit) {
  if (src < 0) return EdgeCursor();
  // Co-location: the whole (src, label) list lives in src's shard — the
  // scan is one sequential TEL walk there, no merging.
  return EdgeCursor(Owner(src).GetEdges(Local(src), label), limit);
}

size_t ShardedReadTxn::CountLinks(vertex_t src, label_t label) {
  if (src < 0) return 0;
  return Owner(src).CountEdges(Local(src), label);
}

EdgeCursor ShardedReadTxn::FanInScan(const std::vector<vertex_t>& srcs,
                                     label_t label, size_t limit) {
  std::vector<EdgeCursor> children;
  children.reserve(srcs.size());
  for (vertex_t src : srcs) {
    if (src < 0) {
      children.emplace_back();  // keeps merge_source() aligned with srcs
      continue;
    }
    children.emplace_back(Owner(src).GetEdges(Local(src), label));
  }
  return EdgeCursor::Merge(std::move(children), limit, /*newest_first=*/true);
}

// --- ShardedStore ---

ShardedStore::ShardedStore(ShardOptions options)
    : options_(std::move(options)) {
  const int n = std::max(1, options_.shards);
  options_.shards = n;
  options_.dir = EffectiveDir(options_);
  options_.graph.wal_path.clear();

  // One visibility domain for all shards, its in-flight window sized past
  // the worst case of every shard's worker table committing at once.
  domain_ = std::make_shared<EpochDomain>(
      static_cast<size_t>(n) *
      static_cast<size_t>(options_.graph.max_workers) * 4);

  if (!options_.dir.empty()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    for (int s = 0; s < n; ++s) {
      fs::create_directories(ShardDirPath(s), ec);
      fs::create_directories(ShardDirPath(s) + "/checkpoint", ec);
      // Make the fresh directory ENTRIES durable too (a file fsync does
      // not persist its parent's entry): shard<i> in <dir>, and
      // checkpoint/ in shard<i>.
      Wal::FsyncParentDir(ShardDirPath(s));
      Wal::FsyncParentDir(ShardDirPath(s) + "/checkpoint");
    }
    Wal::FsyncParentDir(options_.dir);
  }

  shards_.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Graph>(ShardGraphOptions(
        options_, domain_,
        options_.dir.empty() ? std::string() : ShardWalPath(s), n, s)));
  }
}

ShardedStore::~ShardedStore() = default;

std::string ShardedStore::ShardDirPath(int s) const {
  return options_.dir + "/shard" + std::to_string(s);
}

std::string ShardedStore::ShardWalPath(int s) const {
  return ShardDirPath(s) + "/wal";
}

std::string ShardedStore::ShardCheckpointPath(int s,
                                              timestamp_t epoch) const {
  return ShardDirPath(s) + "/checkpoint/" + std::to_string(epoch);
}

std::string ShardedStore::ManifestPath() const {
  return options_.dir + "/MANIFEST";
}

bool ShardedStore::ReadManifest(const std::string& dir, int* shards,
                                timestamp_t* epoch) {
  std::FILE* f = std::fopen((dir + "/MANIFEST").c_str(), "rb");
  if (f == nullptr) return false;
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t shard_count = 0;
  timestamp_t manifest_epoch = 0;
  bool ok = ReadRaw(f, &magic) && magic == kManifestMagic &&
            ReadRaw(f, &version) && version == kManifestVersion &&
            ReadRaw(f, &shard_count) && shard_count > 0 &&
            ReadRaw(f, &manifest_epoch);
  std::fclose(f);
  if (!ok) return false;
  *shards = static_cast<int>(shard_count);
  *epoch = manifest_epoch;
  return true;
}

vertex_t ShardedStore::VertexCount() const {
  const int n = static_cast<int>(shards_.size());
  vertex_t bound = 0;
  for (int s = 0; s < n; ++s) {
    bound = std::max(
        bound, shard_id::GlobalBoundOf(
                   s, shards_[static_cast<size_t>(s)]->VertexCount(), n));
  }
  return bound;
}

void ShardedStore::ApplyReplicated(int s, std::string_view payload) {
  if (s < 0 || s >= num_shards()) return;
  shards_[static_cast<size_t>(s)]->ApplyWalRecord(payload);
}

std::vector<ReadTransaction> ShardedStore::PinShardSnapshots() {
  // Pin ONE global epoch, open every shard's snapshot at exactly it, then
  // release the domain pin — each snapshot's own reading-epoch slot keeps
  // protecting the epoch on its shard. No commit path is blocked: the
  // domain's visibility order makes the cut consistent, not a lock.
  EpochDomain::ReadPin pin = domain_->PinRead();
  std::vector<ReadTransaction> snapshots;
  snapshots.reserve(shards_.size());
  for (auto& shard : shards_) {
    snapshots.push_back(shard->BeginTimeTravelTransaction(pin.epoch));
  }
  domain_->Unpin(pin);
  return snapshots;
}

std::unique_ptr<ShardedReadTxn> ShardedStore::BeginShardedReadTxn() {
  EpochDomain::ReadPin pin = domain_->PinRead();
  return std::unique_ptr<ShardedReadTxn>(
      new ShardedReadTxn(this, pin, VertexCount()));
}

std::unique_ptr<ShardedReadTxn> ShardedStore::BeginTimeTravelReadTxn(
    timestamp_t epoch) {
  EpochDomain::ReadPin pin = domain_->PinReadAt(epoch);
  return std::unique_ptr<ShardedReadTxn>(
      new ShardedReadTxn(this, pin, VertexCount()));
}

std::unique_ptr<StoreReadTxn> ShardedStore::BeginReadTxn() {
  return BeginShardedReadTxn();
}

std::unique_ptr<StoreTxn> ShardedStore::BeginTxn() {
  return std::make_unique<ShardedWriteTxn>(this);
}

timestamp_t ShardedStore::Checkpoint(int threads) {
  if (options_.dir.empty()) return 0;
  namespace fs = std::filesystem;

  // One pinned global epoch; every shard checkpointed at exactly it. The
  // snapshots are taken together under one pin, then written without
  // blocking any commit path.
  std::vector<ReadTransaction> snapshots = PinShardSnapshots();
  const timestamp_t epoch = snapshots.empty() ? 0 : snapshots[0].read_epoch();

  // A checkpoint's content is a pure function of its epoch, so if the
  // durable manifest already records this exact epoch the on-disk state
  // IS this checkpoint — return without touching it. (Rewriting would
  // remove_all the very directories the live manifest points at, opening
  // a crash window that loses the store; this is the idempotent-reseal
  // path recovery takes when the WAL tail was empty.)
  {
    int manifest_shards = 0;
    timestamp_t manifest_epoch = -1;
    if (ReadManifest(options_.dir, &manifest_shards, &manifest_epoch) &&
        manifest_shards == num_shards() && manifest_epoch == epoch) {
      return epoch;
    }
  }

  std::error_code ec;
  for (int s = 0; s < num_shards(); ++s) {
    const std::string dir = ShardCheckpointPath(s, epoch);
    fs::remove_all(dir, ec);  // re-checkpoint of the same epoch: start clean
    fs::create_directories(dir, ec);
    if (shards_[static_cast<size_t>(s)]->CheckpointSnapshot(
            snapshots[static_cast<size_t>(s)], dir, threads) < 0) {
      // Shard checkpoint failed: the global manifest is never rewritten,
      // so the previous checkpoint stays authoritative; the partial epoch
      // directory is swept by the next successful checkpoint's GC.
      return -1;
    }
    // The epoch directory's own entry must be durable before the global
    // manifest names it: fsync its parent (shard<i>/checkpoint/). The
    // files inside were fsynced by CheckpointSnapshot, and that also
    // synced the epoch directory itself on its manifest rename.
    Wal::FsyncParentDir(dir);
  }

  // Manifest last, atomically renamed: its epoch is the single global cut
  // recovery restores. Until the rename lands, the previous checkpoint
  // (if any) stays authoritative — per-shard files are written into
  // per-epoch directories precisely so an interrupted checkpoint can
  // never clobber the one the manifest still points at.
  const std::string tmp = ManifestPath() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return -1;
  WriteRaw(f, kManifestMagic);
  WriteRaw(f, kManifestVersion);
  WriteRaw(f, static_cast<uint32_t>(num_shards()));
  WriteRaw(f, epoch);
  int err = 0;
  if (std::ferror(f) != 0 || std::fflush(f) != 0) err = errno != 0 ? errno : EIO;
  if (err == 0 && ::fsync(::fileno(f)) != 0) err = errno;
  std::fclose(f);
  if (err != 0) {
    fs::remove(tmp, ec);
    return -1;
  }
  if (!Wal::CommitRename(tmp, ManifestPath())) return -1;

  // GC superseded per-epoch checkpoint directories.
  for (int s = 0; s < num_shards(); ++s) {
    const fs::path root = ShardDirPath(s) + "/checkpoint";
    for (const auto& entry : fs::directory_iterator(root, ec)) {
      if (entry.path().filename() != std::to_string(epoch)) {
        fs::remove_all(entry.path(), ec);
      }
    }
  }
  return epoch;
}

std::unique_ptr<ShardedStore> ShardedStore::Recover(ShardOptions options) {
  options.dir = EffectiveDir(options);
  timestamp_t checkpoint_epoch = 0;
  if (!options.dir.empty()) {
    int manifest_shards = 0;
    if (ReadManifest(options.dir, &manifest_shards, &checkpoint_epoch)) {
      if (manifest_shards != options.shards) {
        std::fprintf(stderr,
                     "ShardedStore::Recover: manifest has %d shards, "
                     "options asked for %d — using the manifest (the data "
                     "layout is keyed on it)\n",
                     manifest_shards, options.shards);
        options.shards = manifest_shards;
      }
    }
  }

  auto store = std::make_unique<ShardedStore>(std::move(options));
  if (store->options_.dir.empty()) return store;
  const int n = store->num_shards();

  // Pass 1 over every shard's WAL: find the highest durable epoch, and for
  // each multi-shard epoch past the checkpoint count the pieces actually
  // on disk. A piece is one WAL record; a transaction whose coordinator
  // crashed between two shards' fsyncs is exactly an epoch with fewer
  // pieces found than its records' participant count — such an epoch was
  // never visible to anyone (the visibility frontier requires every piece
  // applied, and applying follows durability), so dropping ALL its pieces
  // recovers the strongest state that contains no torn transaction.
  struct PieceCount {
    uint32_t expected = 0;
    uint32_t found = 0;
  };
  std::unordered_map<timestamp_t, PieceCount> pieces;
  timestamp_t max_epoch = checkpoint_epoch;
  for (int s = 0; s < n; ++s) {
    Wal::Reader scan(store->ShardWalPath(s));
    timestamp_t epoch = 0;
    uint32_t participants = 0;
    std::string payload;
    while (scan.Next(&epoch, &participants, &payload)) {
      if (epoch > max_epoch) max_epoch = epoch;
      if (participants > 1 && epoch > checkpoint_epoch) {
        PieceCount& count = pieces[epoch];
        count.expected = participants;
        ++count.found;
      }
    }
    // Cut off this shard's torn/corrupt tail (crash mid-append) right
    // away: even if the sealing checkpoint below fails and the WALs are
    // kept, post-recovery appends must not land behind unreadable bytes.
    // (Pass 2 re-reads each file rather than holding all N readers — one
    // WAL-sized buffer at a time bounds recovery memory at any shard
    // count.)
    scan.TruncateTornTail(store->ShardWalPath(s));
  }

  // Resume the durable epoch sequence past everything stamped on disk so
  // replayed state commits at fresh epochs and the post-recovery manifest
  // supersedes every surviving record.
  store->domain_->FastForward(max_epoch);

  // Load the manifest checkpoint (every shard at the same pinned epoch).
  if (checkpoint_epoch > 0) {
    for (int s = 0; s < n; ++s) {
      store->shards_[static_cast<size_t>(s)]->LoadCheckpoint(
          store->ShardCheckpointPath(s, checkpoint_epoch));
    }
  }

  // Pass 2: replay each shard's WAL tail in log order, skipping records
  // the checkpoint already contains and every incomplete multi-shard
  // epoch.
  for (int s = 0; s < n; ++s) {
    Graph& graph = *store->shards_[static_cast<size_t>(s)];
    Wal::Reader reader(store->ShardWalPath(s));
    timestamp_t epoch = 0;
    uint32_t participants = 0;
    std::string payload;
    while (reader.Next(&epoch, &participants, &payload)) {
      if (epoch <= checkpoint_epoch) continue;
      if (participants > 1) {
        auto it = pieces.find(epoch);
        if (it == pieces.end() || it->second.found < it->second.expected) {
          continue;  // half-durable cross-shard transaction: drop atomically
        }
      }
      graph.ApplyWalRecord(payload);
    }
  }

  // Resume round-robin placement roughly where the recovered occupancy
  // left off. relaxed: recovery is single-threaded; the store is published
  // to other threads by the unique_ptr hand-off to the caller.
  store->next_shard_.store(static_cast<uint64_t>(store->VertexCount()),
                           std::memory_order_relaxed);

  // Seal the recovered state: checkpoint it under a fresh manifest, then
  // truncate every WAL. After this, no surviving byte of the old logs —
  // including any dropped torn suffix — can influence a later recovery;
  // the manifest IS the consistent prefix. The WALs are destroyed ONLY if
  // the checkpoint actually published at the recovered frontier — on
  // failure (e.g. ENOSPC) the old manifest + intact logs still recover
  // the same state next time.
  timestamp_t sealed = store->Checkpoint();
  if (sealed == store->domain_->visible()) {
    for (int s = 0; s < n; ++s) {
      store->shards_[static_cast<size_t>(s)]->ResetWal();
    }
    // Replication: no log byte below the seal survives, so subscribers
    // older than this epoch need the snapshot bootstrap.
    store->recovered_epoch_ = sealed;
  } else {
    std::fprintf(stderr,
                 "ShardedStore::Recover: sealing checkpoint failed; "
                 "keeping WALs for the next recovery\n");
  }
  return store;
}

}  // namespace livegraph
