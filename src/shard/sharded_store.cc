#include "shard/sharded_store.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>

namespace livegraph {

/// Befriended by ShardedStore: the coordinator internals the write session
/// needs, kept off the public surface.
struct ShardedStoreAccess {
  static timestamp_t TickEpoch(ShardedStore& store) {
    return store.TickEpoch();
  }
  static int PickShard(ShardedStore& store) { return store.PickShard(); }
  static std::shared_mutex& CoordinatorMu(ShardedStore& store) {
    return store.coordinator_mu_;
  }
};

namespace {

/// Shard s's engine options: an equal slice of the global vertex budget,
/// and per-shard durable files so N WALs / N backing files never collide.
GraphOptions ShardGraphOptions(const ShardOptions& options, int shards,
                               int s) {
  GraphOptions g = options.graph;
  g.max_vertices =
      (options.graph.max_vertices + static_cast<size_t>(shards) - 1) /
      static_cast<size_t>(shards);
  const std::string suffix = ".shard" + std::to_string(s);
  if (!g.wal_path.empty()) g.wal_path += suffix;
  if (!g.storage_path.empty()) g.storage_path += suffix;
  return g;
}

/// A read-write session over the shards. Native per-shard transactions
/// open lazily on first touch, so a transaction that only ever addresses
/// one shard is exactly a native LiveGraph transaction plus one array
/// index — the single-shard fast path. Cross-shard atomicity mirrors the
/// native eager-abort discipline: the moment any shard reports
/// kConflict/kTimeout (its native transaction has already rolled back),
/// every other open shard is rolled back too and the session dies.
class ShardedWriteTxn : public StoreTxn {
 public:
  explicit ShardedWriteTxn(ShardedStore* store)
      : store_(store),
        txns_(static_cast<size_t>(store->num_shards())),
        wrote_(static_cast<size_t>(store->num_shards()), false) {}

  ~ShardedWriteTxn() override {
    if (active_) AbortAll();
  }

  // --- Reads (read-your-writes via the owning shard's native txn) ---

  StatusOr<std::string> GetNode(vertex_t id) override {
    if (!active_) return Status::kNotActive;
    if (id < 0) return Status::kNotFound;
    StatusOr<std::string_view> props =
        Shard(store_->ShardOf(id)).GetVertex(store_->LocalId(id));
    if (!props.ok()) return props.status();
    return std::string(*props);
  }

  StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                vertex_t dst) override {
    if (!active_) return Status::kNotActive;
    if (src < 0) return Status::kNotFound;
    StatusOr<std::string_view> props =
        Shard(store_->ShardOf(src))
            .GetEdge(store_->LocalId(src), label, dst);
    if (!props.ok()) return props.status();
    return std::string(*props);
  }

  EdgeCursor ScanLinks(vertex_t src, label_t label, size_t limit) override {
    if (!active_ || src < 0) return EdgeCursor();
    return EdgeCursor(
        Shard(store_->ShardOf(src)).GetEdges(store_->LocalId(src), label),
        limit);
  }

  size_t CountLinks(vertex_t src, label_t label) override {
    if (!active_ || src < 0) return 0;
    return Shard(store_->ShardOf(src))
        .CountEdges(store_->LocalId(src), label);
  }

  vertex_t VertexCount() override { return store_->VertexCount(); }

  // --- Writes ---

  StatusOr<vertex_t> AddNode(std::string_view data) override {
    if (!active_) return Status::kNotActive;
    int s = ShardedStoreAccess::PickShard(*store_);
    Transaction& txn = Shard(s);
    vertex_t local = txn.AddVertex(data);
    if (local == kNullVertex) {
      // Capacity exhaustion keeps the shard transaction active (and this
      // session usable); a lock timeout killed it — take the rest down too.
      if (txn.active()) return Status::kOutOfRange;
      AbortAll();
      return Status::kTimeout;
    }
    wrote_[static_cast<size_t>(s)] = true;
    return store_->GlobalId(s, local);
  }

  Status UpdateNode(vertex_t id, std::string_view data) override {
    if (!active_) return Status::kNotActive;
    if (id < 0) return Status::kNotFound;
    int s = store_->ShardOf(id);
    Transaction& txn = Shard(s);
    vertex_t local = store_->LocalId(id);
    // LinkBench UPDATE_NODE: tombstoned / never-written IDs must not
    // resurrect.
    if (!txn.GetVertex(local).ok()) return Status::kNotFound;
    return Wrote(s, Filter(txn.PutVertex(local, data)));
  }

  Status DeleteNode(vertex_t id) override {
    if (!active_) return Status::kNotActive;
    if (id < 0) return Status::kNotFound;
    int s = store_->ShardOf(id);
    Transaction& txn = Shard(s);
    vertex_t local = store_->LocalId(id);
    if (!txn.GetVertex(local).ok()) return Status::kNotFound;
    return Wrote(s, Filter(txn.DeleteVertex(local)));
  }

  StatusOr<bool> AddLink(vertex_t src, label_t label, vertex_t dst,
                         std::string_view data) override {
    if (!active_) return Status::kNotActive;
    if (src < 0) return Status::kNotFound;
    int s = store_->ShardOf(src);
    Transaction& txn = Shard(s);
    vertex_t local = store_->LocalId(src);
    // Upsert: report whether this was a true insertion (Bloom-fast, §4).
    bool existed = txn.GetEdge(local, label, dst).ok();
    Status st = Wrote(s, Filter(txn.AddEdge(local, label, dst, data)));
    if (st != Status::kOk) return st;
    return !existed;
  }

  Status UpdateLink(vertex_t src, label_t label, vertex_t dst,
                    std::string_view data) override {
    if (!active_) return Status::kNotActive;
    if (src < 0) return Status::kNotFound;
    int s = store_->ShardOf(src);
    Transaction& txn = Shard(s);
    vertex_t local = store_->LocalId(src);
    if (!txn.GetEdge(local, label, dst).ok()) return Status::kNotFound;
    return Wrote(s, Filter(txn.AddEdge(local, label, dst, data)));
  }

  Status DeleteLink(vertex_t src, label_t label, vertex_t dst) override {
    if (!active_) return Status::kNotActive;
    if (src < 0) return Status::kNotFound;
    int s = store_->ShardOf(src);
    Transaction& txn = Shard(s);
    return Wrote(s, Filter(txn.DeleteEdge(store_->LocalId(src), label, dst)));
  }

  // --- Lifecycle ---

  StatusOr<timestamp_t> Commit() override {
    if (!active_) return Status::kNotActive;
    active_ = false;

    // Shards without a landed mutation publish no visible data (at most an
    // empty staged TEL write from a missed delete): their native commits
    // cannot tear a snapshot. Run them outside any coordination.
    int writers = 0;
    for (size_t s = 0; s < txns_.size(); ++s) {
      if (!txns_[s].has_value()) continue;
      if (wrote_[s]) {
        ++writers;
      } else {
        txns_[s]->Commit();
        txns_[s].reset();
      }
    }

    if (writers <= 1) {
      // Single-shard fast path: straight through that shard's commit
      // pipeline, no coordinator involvement.
      for (auto& txn : txns_) {
        if (!txn.has_value()) continue;
        StatusOr<timestamp_t> committed = txn->Commit();
        txn.reset();
        if (!committed.ok()) return committed.status();
      }
      return ShardedStoreAccess::TickEpoch(*store_);
    }

    // Multi-shard commit: one coordinator epoch, applied per-shard in
    // shard order while holding the coordinator lock exclusively. Each
    // native Commit() returns only once its shard's GRE covers it, so on
    // release the transaction is visible everywhere at once — and no epoch
    // vector can be pinned in between (readers hold the shared side).
    std::unique_lock<std::shared_mutex> coordinator(
        ShardedStoreAccess::CoordinatorMu(*store_));
    timestamp_t epoch = ShardedStoreAccess::TickEpoch(*store_);
    Status failure = Status::kOk;
    for (auto& txn : txns_) {
      if (!txn.has_value()) continue;
      // Cannot fail by construction: every conflict/timeout already
      // surfaced (and aborted the session) during the work phase. Committing
      // the remaining shards even after an unexpected error keeps locks
      // from leaking.
      StatusOr<timestamp_t> committed = txn->Commit();
      txn.reset();
      if (!committed.ok() && failure == Status::kOk) {
        failure = committed.status();
      }
    }
    if (failure != Status::kOk) return failure;
    return epoch;
  }

  void Abort() override {
    if (active_) AbortAll();
  }

 private:
  /// The shard's native transaction, opened on first touch. Each shard's
  /// read epoch pins when that shard is first addressed (docs/SHARDING.md
  /// on the multi-shard write-session read view).
  Transaction& Shard(int s) {
    auto& slot = txns_[static_cast<size_t>(s)];
    if (!slot.has_value()) {
      slot.emplace(store_->shard(s).BeginTransaction());
    }
    return *slot;
  }

  /// Native write ops abort their own transaction on conflict/timeout;
  /// propagate that to every other open shard so the session stays
  /// all-or-nothing.
  Status Filter(Status st) {
    if (st == Status::kConflict || st == Status::kTimeout) AbortAll();
    return st;
  }

  /// Marks shard `s` as a writer only when the mutation actually landed.
  /// A miss (kNotFound — e.g. a routine LinkBench DELETE_LINK of a
  /// non-existent edge) stages no visible change, so leaving wrote_ unset
  /// keeps an otherwise single-shard commit off the exclusive coordinator
  /// path. (A missed DeleteEdge can still leave an empty staged TEL write
  /// behind; its native commit publishes no data, so committing it outside
  /// the coordinator cannot tear a snapshot.)
  Status Wrote(int s, Status st) {
    if (st == Status::kOk) wrote_[static_cast<size_t>(s)] = true;
    return st;
  }

  void AbortAll() {
    active_ = false;
    for (auto& txn : txns_) {
      if (!txn.has_value()) continue;
      if (txn->active()) txn->Abort();
      txn.reset();
    }
  }

  ShardedStore* store_;
  std::vector<std::optional<Transaction>> txns_;  // index = shard
  std::vector<bool> wrote_;  // mutation reached this shard's native txn
  bool active_ = true;
};

}  // namespace

// --- ShardedReadTxn ---

/// The pinned snapshot owning global vertex `v` (shard/id_partition.h).
const ReadTransaction& ShardedReadTxn::Owner(vertex_t v) const {
  const int n = static_cast<int>(snapshots_.size());
  return snapshots_[static_cast<size_t>(shard_id::ShardOf(v, n))];
}

vertex_t ShardedReadTxn::Local(vertex_t v) const {
  return shard_id::LocalOf(v, static_cast<int>(snapshots_.size()));
}

StatusOr<std::string> ShardedReadTxn::GetNode(vertex_t id) {
  if (id < 0) return Status::kNotFound;
  StatusOr<std::string_view> props = Owner(id).GetVertex(Local(id));
  if (!props.ok()) return props.status();
  return std::string(*props);
}

StatusOr<std::string> ShardedReadTxn::GetLink(vertex_t src, label_t label,
                                              vertex_t dst) {
  if (src < 0) return Status::kNotFound;
  StatusOr<std::string_view> props =
      Owner(src).GetEdge(Local(src), label, dst);
  if (!props.ok()) return props.status();
  return std::string(*props);
}

EdgeCursor ShardedReadTxn::ScanLinks(vertex_t src, label_t label,
                                     size_t limit) {
  if (src < 0) return EdgeCursor();
  // Co-location: the whole (src, label) list lives in src's shard — the
  // scan is one sequential TEL walk there, no merging.
  return EdgeCursor(Owner(src).GetEdges(Local(src), label), limit);
}

size_t ShardedReadTxn::CountLinks(vertex_t src, label_t label) {
  if (src < 0) return 0;
  return Owner(src).CountEdges(Local(src), label);
}

EdgeCursor ShardedReadTxn::FanInScan(const std::vector<vertex_t>& srcs,
                                     label_t label, size_t limit) {
  std::vector<EdgeCursor> children;
  children.reserve(srcs.size());
  for (vertex_t src : srcs) {
    if (src < 0) {
      children.emplace_back();  // keeps merge_source() aligned with srcs
      continue;
    }
    children.emplace_back(Owner(src).GetEdges(Local(src), label));
  }
  return EdgeCursor::Merge(std::move(children), limit, /*newest_first=*/true);
}

// --- ShardedStore ---

ShardedStore::ShardedStore(ShardOptions options)
    : options_(std::move(options)) {
  const int n = std::max(1, options_.shards);
  options_.shards = n;
  shards_.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    shards_.push_back(
        std::make_unique<Graph>(ShardGraphOptions(options_, n, s)));
  }
}

ShardedStore::~ShardedStore() = default;

vertex_t ShardedStore::VertexCount() const {
  const int n = static_cast<int>(shards_.size());
  vertex_t bound = 0;
  for (int s = 0; s < n; ++s) {
    bound = std::max(
        bound, shard_id::GlobalBoundOf(
                   s, shards_[static_cast<size_t>(s)]->VertexCount(), n));
  }
  return bound;
}

std::vector<ReadTransaction> ShardedStore::PinShardSnapshots() {
  std::vector<ReadTransaction> snapshots;
  snapshots.reserve(shards_.size());
  // Shared side of the coordinator: a multi-shard commit (exclusive side)
  // can never land between two of these begins, so the epoch vector is
  // all-or-nothing with respect to every cross-shard transaction.
  std::shared_lock<std::shared_mutex> coordinator(coordinator_mu_);
  for (auto& shard : shards_) {
    snapshots.push_back(shard->BeginReadOnlyTransaction());
  }
  return snapshots;
}

std::unique_ptr<ShardedReadTxn> ShardedStore::BeginShardedReadTxn() {
  std::vector<ReadTransaction> snapshots = PinShardSnapshots();
  return std::unique_ptr<ShardedReadTxn>(
      new ShardedReadTxn(std::move(snapshots), VertexCount()));
}

std::unique_ptr<StoreReadTxn> ShardedStore::BeginReadTxn() {
  return BeginShardedReadTxn();
}

std::unique_ptr<StoreTxn> ShardedStore::BeginTxn() {
  return std::make_unique<ShardedWriteTxn>(this);
}

}  // namespace livegraph
