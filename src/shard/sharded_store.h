// Sharded store: a hash-partitioned multi-graph engine behind the v2
// Store surface (docs/SHARDING.md).
//
// One ShardedStore owns N fully independent LiveGraph engines — N commit
// pipelines, N vertex-lock arrays, N compaction threads, N WALs — and maps
// the single-store API onto them. Vertices are hash-partitioned by ID
// (shard = v mod N with the interleaved ID encoding below), and every edge
// lives with its source vertex, so an adjacency scan is still one purely
// sequential TEL walk inside one shard — the paper's §4 property survives
// partitioning untouched.
//
// Cross-shard snapshot isolation is preserved by a small coordinator:
//
//   * Read sessions pin an epoch vector: one native MVCC snapshot per
//     shard, all begun while holding the coordinator lock in shared mode.
//   * Single-shard write transactions take the existing fast path — they
//     commit straight through their shard's group-commit pipeline and
//     never touch the coordinator lock.
//   * Multi-shard write transactions hold the coordinator lock exclusively
//     across their per-shard commits, which are applied in shard order
//     under one coordinator-assigned epoch. A native Commit() only returns
//     once its shard's GRE covers the commit, so when the exclusive
//     section ends the transaction is visible in every shard — and no
//     epoch vector can be pinned in between. All-or-nothing, by
//     construction.
//
// IDs: global = local * N + shard. The inverse maps are single
// div/mod operations on the hot path, new vertices round-robin across
// shards (uniform occupancy regardless of insertion pattern), and edge
// destinations are stored as global IDs inside shard-local TELs, so scans
// yield global IDs with zero translation.
#ifndef LIVEGRAPH_SHARD_SHARDED_STORE_H_
#define LIVEGRAPH_SHARD_SHARDED_STORE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/store.h"
#include "core/graph.h"
#include "core/transaction.h"
#include "shard/id_partition.h"

namespace livegraph {

struct ShardOptions {
  /// Number of independent LiveGraph shards.
  int shards = 4;
  /// Template options for every shard. `max_vertices` is the GLOBAL bound
  /// and is divided across shards; `wal_path`/`storage_path`, when set, get
  /// a ".shard<i>" suffix per shard so the files never collide.
  GraphOptions graph;
};

/// A consistent cross-shard read session: one native MVCC snapshot per
/// shard, pinned atomically with respect to multi-shard commits (the epoch
/// vector can never straddle one).
class ShardedReadTxn : public StoreReadTxn {
 public:
  StatusOr<std::string> GetNode(vertex_t id) override;
  StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                vertex_t dst) override;
  EdgeCursor ScanLinks(vertex_t src, label_t label, size_t limit) override;
  size_t CountLinks(vertex_t src, label_t label) override;
  vertex_t VertexCount() override { return vertex_bound_; }

  /// Shard fan-in scan (EdgeCursor merged mode): one cursor over the
  /// adjacency lists of several source vertices — each list a purely
  /// sequential scan inside its own shard — consumed newest-head-first.
  /// `merge_source()` on the cursor reports which of `srcs` the current
  /// edge belongs to. The cross-shard interleave is best-effort (per-shard
  /// epochs; see docs/SHARDING.md), the per-source order exact.
  EdgeCursor FanInScan(const std::vector<vertex_t>& srcs, label_t label,
                       size_t limit = kScanAll);

  /// The pinned per-shard snapshots (shard s at index s) — shareable across
  /// threads for analytics fan-out (PageRankOnShardSnapshots).
  const std::vector<ReadTransaction>& shard_snapshots() const {
    return snapshots_;
  }

 private:
  friend class ShardedStore;
  ShardedReadTxn(std::vector<ReadTransaction> snapshots,
                 vertex_t vertex_bound)
      : snapshots_(std::move(snapshots)), vertex_bound_(vertex_bound) {}

  const ReadTransaction& Owner(vertex_t v) const;
  vertex_t Local(vertex_t v) const;

  std::vector<ReadTransaction> snapshots_;
  vertex_t vertex_bound_;
};

/// The full v2 Store surface over N LiveGraph shards.
class ShardedStore : public Store {
 public:
  explicit ShardedStore(ShardOptions options = {});
  ~ShardedStore() override;

  std::string Name() const override { return "ShardedLiveGraph"; }
  StoreTraits Traits() const override {
    return StoreTraits{/*time_ordered_scans=*/true, /*snapshot_reads=*/true,
                       /*transactional_writes=*/true};
  }

  std::unique_ptr<StoreTxn> BeginTxn() override;
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override;

  /// Typed BeginReadTxn, for callers that want the per-shard snapshots or
  /// fan-in scans without a downcast.
  std::unique_ptr<ShardedReadTxn> BeginShardedReadTxn();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Graph& shard(int s) { return *shards_[static_cast<size_t>(s)]; }

  // --- ID partitioning (shard/id_partition.h) ---
  int ShardOf(vertex_t v) const {
    return shard_id::ShardOf(v, num_shards());
  }
  vertex_t LocalId(vertex_t v) const {
    return shard_id::LocalOf(v, num_shards());
  }
  vertex_t GlobalId(int shard, vertex_t local) const {
    return shard_id::GlobalOf(shard, local, num_shards());
  }

  /// Upper bound (exclusive) on global vertex IDs across all shards.
  vertex_t VertexCount() const;

  /// Pins one read snapshot per shard under the coordinator lock — the
  /// consistent epoch vector used by read sessions and the analytics
  /// fan-out. Index s is shard s's snapshot.
  std::vector<ReadTransaction> PinShardSnapshots();

 private:
  /// In-library access for the write-session implementation
  /// (sharded_store.cc), which lives outside the class.
  friend struct ShardedStoreAccess;

  /// Next coordinator epoch: the store-level commit sequence returned by
  /// Commit() (monotonic across shards, unlike per-shard GWEs) and the
  /// order in which multi-shard commits apply relative to EACH OTHER.
  /// It is not a visibility order across commit paths: a single-shard
  /// commit ticks after its native commit without the coordinator lock, so
  /// its (higher) epoch can become visible while a concurrent multi-shard
  /// commit's (lower) epoch is still applying. See docs/SHARDING.md
  /// "Known limits".
  timestamp_t TickEpoch() {
    return 1 + coordinator_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Round-robin placement for new vertices.
  int PickShard() {
    return static_cast<int>(next_shard_.fetch_add(
                                1, std::memory_order_relaxed) %
                            static_cast<uint64_t>(num_shards()));
  }

  ShardOptions options_;
  std::vector<std::unique_ptr<Graph>> shards_;

  /// Coordinator lock: shared while pinning an epoch vector, exclusive
  /// across a multi-shard commit's per-shard applies. Single-shard commits
  /// never touch it.
  std::shared_mutex coordinator_mu_;
  std::atomic<timestamp_t> coordinator_epoch_{0};
  std::atomic<uint64_t> next_shard_{0};
};

}  // namespace livegraph

#endif  // LIVEGRAPH_SHARD_SHARDED_STORE_H_
