// Sharded store: a hash-partitioned multi-graph engine behind the v2
// Store surface (docs/SHARDING.md).
//
// One ShardedStore owns N fully independent LiveGraph engines — N commit
// pipelines, N vertex-lock arrays, N compaction threads, N WALs — and maps
// the single-store API onto them. Vertices are hash-partitioned by ID
// (shard = v mod N with the interleaved ID encoding below), and every edge
// lives with its source vertex, so an adjacency scan is still one purely
// sequential TEL walk inside one shard — the paper's §4 property survives
// partitioning untouched.
//
// Cross-shard snapshot isolation comes from the unified EpochDomain
// (core/epoch_domain.h) shared by every shard:
//
//   * Every commit — single-shard fast path and coordinator multi-shard —
//     draws its epoch from the one shared domain, and an epoch becomes
//     visible only after every lower epoch finished applying on every
//     shard. Commit epochs ARE the global visibility order.
//   * Read sessions pin ONE domain epoch (an O(1) pin, not an O(N)
//     snapshot vector) and open per-shard snapshots lazily at that epoch,
//     only for the shards they actually touch — a point read costs one
//     shard's worker slot, like the single engine.
//   * Multi-shard write transactions acquire one epoch for the whole
//     transaction and commit each shard's piece at it (CommitAt), so all
//     pieces surface at a single point of the visibility order:
//     all-or-nothing for every reader and for time travel, with no
//     coordinator lock anywhere.
//
// Durability (docs/SHARDING.md "Recovery"): with ShardOptions::dir set the
// store owns a directory
//
//   <dir>/MANIFEST              cross-shard checkpoint manifest (atomic
//                               rename; records THE pinned global epoch)
//   <dir>/shard<i>/wal          per-shard write-ahead log
//   <dir>/shard<i>/checkpoint/<epoch>/   per-shard checkpoint files
//
// Checkpoint() pins one global epoch and checkpoints every shard at it;
// Recover() loads the manifest's checkpoint, replays each shard's WAL tail
// — skipping any multi-shard epoch whose pieces are not ALL durable, so a
// crash between two shards' fsyncs can never resurrect half a transaction
// — then re-checkpoints and truncates the WALs to seal the recovered
// state.
//
// IDs: global = local * N + shard. The inverse maps are single
// div/mod operations on the hot path, new vertices round-robin across
// shards (uniform occupancy regardless of insertion pattern), and edge
// destinations are stored as global IDs inside shard-local TELs, so scans
// yield global IDs with zero translation.
#ifndef LIVEGRAPH_SHARD_SHARDED_STORE_H_
#define LIVEGRAPH_SHARD_SHARDED_STORE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/store.h"
#include "core/epoch_domain.h"
#include "core/graph.h"
#include "core/transaction.h"
#include "shard/id_partition.h"

namespace livegraph {

struct ShardOptions {
  /// Number of independent LiveGraph shards.
  int shards = 4;
  /// Durable directory (WAL + checkpoint layout above); empty disables
  /// durability. When empty and `graph.wal_path` is set, that path is used
  /// as the directory (the pre-directory file-suffix scheme is gone).
  std::string dir;
  /// Template options for every shard. `max_vertices` is the GLOBAL bound
  /// and is divided across shards; `wal_path` is superseded by `dir` (see
  /// above); `storage_path`, when set, gets a ".shard<i>" suffix per shard
  /// so the block-store backing files never collide.
  GraphOptions graph;
};

class ShardedStore;

/// A consistent cross-shard read session: one pinned global epoch, exact
/// on every shard. Per-shard MVCC snapshots open lazily at that epoch on
/// first touch, so a session that only ever reads one shard costs one
/// domain pin plus one worker slot — the single-shard read fast path.
/// Sessions are single-threaded; use ShardedStore::PinShardSnapshots for
/// the multi-threaded analytics fan-out.
class ShardedReadTxn : public StoreReadTxn {
 public:
  ~ShardedReadTxn() override;

  StatusOr<std::string> GetNode(vertex_t id) override;
  StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                vertex_t dst) override;
  EdgeCursor ScanLinks(vertex_t src, label_t label, size_t limit) override;
  size_t CountLinks(vertex_t src, label_t label) override;
  vertex_t VertexCount() override { return vertex_bound_; }

  /// The session's global read epoch: every commit <= it is visible (on
  /// every shard), every commit above it invisible.
  timestamp_t read_epoch() const { return pin_.epoch; }

  /// Shard fan-in scan (EdgeCursor merged mode): one cursor over the
  /// adjacency lists of several source vertices — each list a purely
  /// sequential scan inside its own shard — consumed newest-head-first.
  /// `merge_source()` on the cursor reports which of `srcs` the current
  /// edge belongs to. Epochs share one domain, so the cross-shard
  /// interleave is exact, like the per-source order.
  EdgeCursor FanInScan(const std::vector<vertex_t>& srcs, label_t label,
                       size_t limit = kScanAll);

 private:
  friend class ShardedStore;
  ShardedReadTxn(ShardedStore* store, EpochDomain::ReadPin pin,
                 vertex_t vertex_bound);

  const ReadTransaction& Owner(vertex_t v);
  vertex_t Local(vertex_t v) const;

  ShardedStore* store_;
  EpochDomain::ReadPin pin_;
  /// Lazily opened per-shard snapshots, all at pin_.epoch (index = shard).
  std::vector<std::optional<ReadTransaction>> snapshots_;
  vertex_t vertex_bound_;
};

/// The full v2 Store surface over N LiveGraph shards.
class ShardedStore : public Store {
 public:
  explicit ShardedStore(ShardOptions options = {});
  ~ShardedStore() override;

  /// Opens a sharded store from its durable directory: loads the manifest
  /// checkpoint, replays every shard's WAL tail (dropping half-durable
  /// multi-shard transactions atomically), fast-forwards the epoch domain
  /// past every durable epoch, then re-checkpoints and truncates the WALs.
  /// A missing/empty directory recovers to an empty store. If the manifest
  /// disagrees with `options.shards`, the manifest wins (the data layout
  /// is keyed on it).
  static std::unique_ptr<ShardedStore> Recover(ShardOptions options);

  std::string Name() const override { return "ShardedLiveGraph"; }
  StoreTraits Traits() const override {
    return StoreTraits{/*time_ordered_scans=*/true, /*snapshot_reads=*/true,
                       /*transactional_writes=*/true};
  }

  std::unique_ptr<StoreTxn> BeginTxn() override;
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override;

  /// Typed BeginReadTxn, for callers that want fan-in scans or the read
  /// epoch without a downcast.
  std::unique_ptr<ShardedReadTxn> BeginShardedReadTxn();

  /// Cross-shard time travel: a read session pinned at a historical global
  /// epoch (clamped to [0, visible]). Exact on every shard — one epoch
  /// domain means one timeline (subject to compaction retention, as in
  /// Graph::BeginTimeTravelTransaction).
  std::unique_ptr<ShardedReadTxn> BeginTimeTravelReadTxn(timestamp_t epoch);

  /// Cross-shard checkpoint: pins ONE global epoch, checkpoints every
  /// shard at exactly that epoch (no quiescing of writers — the epoch
  /// domain makes the cut consistent by construction), then atomically
  /// renames <dir>/MANIFEST recording it. Returns the pinned epoch, 0
  /// when the store has no durable directory, or -1 when an I/O failure
  /// prevented the checkpoint — the previous manifest stays authoritative
  /// and the next cadence retries. `threads` is the per-shard checkpoint
  /// writer count.
  timestamp_t Checkpoint(int threads = 1);

  /// Degraded-mode status across the shards: kOk while every shard is
  /// healthy, else the first shard's latched degraded status (see
  /// Graph::degraded_status()). One degraded shard makes the WHOLE store
  /// read-only — commits are rejected with the typed status regardless of
  /// routing (the shards share a disk, and multi-shard transactions could
  /// touch the poisoned WAL); reads keep serving the last durable epoch.
  Status degraded_status() const {
    for (const auto& shard : shards_) {
      if (Status s = shard->degraded_status(); s != Status::kOk) return s;
    }
    return Status::kOk;
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Graph& shard(int s) { return *shards_[static_cast<size_t>(s)]; }

  /// The shared visibility-epoch domain spanning all shards.
  EpochDomain* epoch_domain() const { return domain_.get(); }

  // --- ID partitioning (shard/id_partition.h) ---
  int ShardOf(vertex_t v) const {
    return shard_id::ShardOf(v, num_shards());
  }
  vertex_t LocalId(vertex_t v) const {
    return shard_id::LocalOf(v, num_shards());
  }
  vertex_t GlobalId(int shard, vertex_t local) const {
    return shard_id::GlobalOf(shard, local, num_shards());
  }

  /// Upper bound (exclusive) on global vertex IDs across all shards.
  vertex_t VertexCount() const;

  /// One read snapshot per shard, all at ONE pinned global epoch (index s
  /// is shard s's snapshot) — the consistent view used by the analytics
  /// fan-out (PageRankOnShardSnapshots), shareable across threads.
  std::vector<ReadTransaction> PinShardSnapshots();

  // --- Replication plumbing (docs/REPLICATION.md) ---

  /// Applies one replicated WAL payload to shard `s` through the recovery
  /// apply path (replay-mode transaction: upsert semantics, no local WAL
  /// record). Follower-side only — the payload commits at a fresh LOCAL
  /// epoch; the primary's epoch is tracked separately by the replica's
  /// frontier. Out-of-range shards are ignored.
  void ApplyReplicated(int s, std::string_view payload);

  /// Shard `s`'s WAL file path (empty when the store is not durable) —
  /// the replication hub's disk catch-up phase reads these directly.
  std::string wal_path(int s) const {
    return options_.dir.empty() ? std::string() : ShardWalPath(s);
  }

  /// The durable directory ("" when in-memory).
  const std::string& dir() const { return options_.dir; }

  /// The epoch the store's durable state was sealed at by Recover (0 for a
  /// store that never went through Recover). Every WAL byte predating it
  /// was truncated by the recovery seal, so a replication subscriber can
  /// only be served from the log for epochs ABOVE this floor.
  timestamp_t recovered_epoch() const { return recovered_epoch_; }

 private:
  /// In-library access for the write-session implementation
  /// (sharded_store.cc), which lives outside the class.
  friend struct ShardedStoreAccess;

  /// Round-robin placement for new vertices.
  /// relaxed: the counter only spreads placement; any interleaving of
  /// increments yields a valid (and still near-uniform) assignment.
  int PickShard() {
    return static_cast<int>(next_shard_.fetch_add(
                                1, std::memory_order_relaxed) %
                            static_cast<uint64_t>(num_shards()));
  }

  std::string ShardDirPath(int s) const;
  std::string ShardWalPath(int s) const;
  std::string ShardCheckpointPath(int s, timestamp_t epoch) const;
  std::string ManifestPath() const;
  /// Reads <dir>/MANIFEST; returns false when absent/corrupt.
  static bool ReadManifest(const std::string& dir, int* shards,
                           timestamp_t* epoch);

  ShardOptions options_;
  std::shared_ptr<EpochDomain> domain_;
  std::vector<std::unique_ptr<Graph>> shards_;
  std::atomic<uint64_t> next_shard_{0};
  timestamp_t recovered_epoch_ = 0;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_SHARD_SHARDED_STORE_H_
