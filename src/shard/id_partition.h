// The sharded store's ID partitioning scheme, in one place
// (docs/SHARDING.md): vertices hash-partition by ID with an interleaved
// encoding, global = local * N + shard, so the owner shard and the
// shard-local ID are one mod/div each. Everything that routes global IDs —
// the store itself, its read sessions, the analytics fan-out — goes
// through these helpers, so a future encoding change (e.g. consistent-hash
// ranges for rebalancing) has exactly one home.
#ifndef LIVEGRAPH_SHARD_ID_PARTITION_H_
#define LIVEGRAPH_SHARD_ID_PARTITION_H_

#include "util/types.h"

namespace livegraph::shard_id {

/// Owner shard of global vertex `v` (v >= 0).
inline int ShardOf(vertex_t v, int shards) {
  return static_cast<int>(v % shards);
}

/// `v`'s ID inside its owner shard.
inline vertex_t LocalOf(vertex_t v, int shards) { return v / shards; }

/// Global ID of shard-local vertex `local` in `shard`.
inline vertex_t GlobalOf(int shard, vertex_t local, int shards) {
  return local * shards + shard;
}

/// Exclusive global-ID upper bound contributed by `shard` holding
/// `local_count` vertices (0 when empty).
inline vertex_t GlobalBoundOf(int shard, vertex_t local_count, int shards) {
  return local_count > 0 ? (local_count - 1) * shards + shard + 1 : 0;
}

}  // namespace livegraph::shard_id

#endif  // LIVEGRAPH_SHARD_ID_PARTITION_H_
