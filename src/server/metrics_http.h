// Prometheus exposition endpoint (docs/OBSERVABILITY.md): a minimal
// HTTP/1.0 server on the net.h socket helpers that answers GET /metrics
// with the text exposition format rendered from the live metrics registry.
//
// Deliberately tiny: one accept thread, one request per connection,
// Connection: close. Scrapes arrive every few seconds from one collector —
// an event loop or keep-alive would be machinery without a workload.
// Anything that is not `GET /metrics` gets a 404; malformed or slow
// clients are cut off by a short socket deadline so a stuck scraper can
// never wedge the thread.
#ifndef LIVEGRAPH_SERVER_METRICS_HTTP_H_
#define LIVEGRAPH_SERVER_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "server/net.h"

namespace livegraph {

class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds host:port (port 0 = ephemeral) and starts the serve thread.
  /// False if the address cannot be bound.
  bool Start(const std::string& host, uint16_t port);
  /// Stops serving and joins the thread. Idempotent.
  void Stop();

  /// Port actually bound. Valid after a successful Start().
  uint16_t port() const { return port_; }

 private:
  void Loop();
  void ServeOne(Socket conn);

  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_METRICS_HTTP_H_
