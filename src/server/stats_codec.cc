#include "server/stats_codec.h"

#include <bit>
#include <cstdint>

#include "server/wire.h"

namespace livegraph {

namespace {

/// Bound on decoded element counts: a corrupt count field must not become
/// a giant allocation. Far above any real registry size.
constexpr uint32_t kMaxElements = 1u << 20;

}  // namespace

void EncodeStats(const metrics::Snapshot& snapshot, std::string* out) {
  WireWriter writer(out);
  writer.PutU32(kStatsFormatVersion);
  writer.PutU64(snapshot.mono_nanos);
  writer.PutU64(snapshot.wall_unix_micros);
  writer.PutBytes(snapshot.build_info);

  writer.PutU32(static_cast<uint32_t>(snapshot.counters.size()));
  for (const auto& [name, value] : snapshot.counters) {
    writer.PutBytes(name);
    writer.PutU64(value);
  }
  writer.PutU32(static_cast<uint32_t>(snapshot.gauges.size()));
  for (const auto& [name, value] : snapshot.gauges) {
    writer.PutBytes(name);
    writer.PutI64(value);
  }
  writer.PutU32(static_cast<uint32_t>(snapshot.histograms.size()));
  for (const metrics::HistogramSample& h : snapshot.histograms) {
    writer.PutBytes(h.name);
    writer.PutU8(static_cast<uint8_t>(h.unit));
    writer.PutU64(h.count);
    writer.PutU64(std::bit_cast<uint64_t>(h.sum));
    writer.PutU64(h.p50);
    writer.PutU64(h.p90);
    writer.PutU64(h.p99);
    writer.PutU64(h.p999);
  }
  writer.PutU64(snapshot.slow_ops_total);
  writer.PutU32(static_cast<uint32_t>(snapshot.slow_ops.size()));
  for (const metrics::SlowOp& op : snapshot.slow_ops) {
    writer.PutBytes(op.name);
    writer.PutU32(op.shard < 0 ? 0 : static_cast<uint32_t>(op.shard) + 1);
    writer.PutI64(op.epoch);
    writer.PutU64(op.total_nanos);
    for (uint64_t stage : op.stage_nanos) writer.PutU64(stage);
    writer.PutU64(op.wall_unix_micros);
  }
}

bool DecodeStats(std::string_view body, metrics::Snapshot* out) {
  WireReader reader(body);
  uint32_t version = 0;
  if (!reader.GetU32(&version) || version != kStatsFormatVersion) {
    return false;
  }
  *out = metrics::Snapshot{};
  std::string_view bytes;
  if (!reader.GetU64(&out->mono_nanos) ||
      !reader.GetU64(&out->wall_unix_micros) || !reader.GetBytes(&bytes)) {
    return false;
  }
  out->build_info.assign(bytes);

  uint32_t n = 0;
  if (!reader.GetU32(&n) || n > kMaxElements) return false;
  out->counters.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t value = 0;
    if (!reader.GetBytes(&bytes) || !reader.GetU64(&value)) return false;
    out->counters.emplace_back(std::string(bytes), value);
  }
  if (!reader.GetU32(&n) || n > kMaxElements) return false;
  out->gauges.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int64_t value = 0;
    if (!reader.GetBytes(&bytes) || !reader.GetI64(&value)) return false;
    out->gauges.emplace_back(std::string(bytes), value);
  }
  if (!reader.GetU32(&n) || n > kMaxElements) return false;
  out->histograms.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    metrics::HistogramSample h;
    uint8_t unit = 0;
    uint64_t sum_bits = 0;
    if (!reader.GetBytes(&bytes) || !reader.GetU8(&unit) ||
        !reader.GetU64(&h.count) || !reader.GetU64(&sum_bits) ||
        !reader.GetU64(&h.p50) || !reader.GetU64(&h.p90) ||
        !reader.GetU64(&h.p99) || !reader.GetU64(&h.p999)) {
      return false;
    }
    if (unit > static_cast<uint8_t>(metrics::Unit::kBytes)) return false;
    h.name.assign(bytes);
    h.unit = static_cast<metrics::Unit>(unit);
    h.sum = std::bit_cast<double>(sum_bits);
    out->histograms.push_back(std::move(h));
  }
  if (!reader.GetU64(&out->slow_ops_total)) return false;
  if (!reader.GetU32(&n) || n > kMaxElements) return false;
  out->slow_ops.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    metrics::SlowOp op;
    uint32_t shard_plus_one = 0;
    if (!reader.GetBytes(&bytes) || !reader.GetU32(&shard_plus_one) ||
        !reader.GetI64(&op.epoch) || !reader.GetU64(&op.total_nanos)) {
      return false;
    }
    for (uint64_t& stage : op.stage_nanos) {
      if (!reader.GetU64(&stage)) return false;
    }
    if (!reader.GetU64(&op.wall_unix_micros)) return false;
    op.name.assign(bytes);
    op.shard = shard_plus_one == 0 ? -1
                                   : static_cast<int32_t>(shard_plus_one - 1);
    out->slow_ops.push_back(std::move(op));
  }
  return reader.Exhausted();
}

}  // namespace livegraph
