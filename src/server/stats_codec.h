// Binary codec for the kStats reply body (docs/OBSERVABILITY.md): a
// versioned, self-describing serialization of metrics::Snapshot carried
// over the wire protocol and decoded by RemoteStore::Stats() and
// tools/livegraph_top. The snapshot format carries its own version (u32,
// independent of kProtocolVersion) so STATS payloads can evolve without a
// protocol bump; a decoder rejects versions it does not know.
//
// Layout (all integers little-endian via server/wire.h):
//
//   u32 version (= kStatsFormatVersion)
//   u64 mono_nanos, u64 wall_unix_micros, bytes build_info
//   u32 n, n * { bytes name, u64 value }                    counters
//   u32 n, n * { bytes name, i64 value }                    gauges
//   u32 n, n * { bytes name, u8 unit, u64 count,
//                u64 sum_bits (IEEE-754 double), u64 p50,
//                u64 p90, u64 p99, u64 p999 }               histograms
//   u64 slow_ops_total
//   u32 n, n * { bytes name, u32 shard(+1, 0 = none),
//                i64 epoch, u64 total_nanos, 4 * u64 stage,
//                u64 wall_unix_micros }                     slow ops
#ifndef LIVEGRAPH_SERVER_STATS_CODEC_H_
#define LIVEGRAPH_SERVER_STATS_CODEC_H_

#include <string>
#include <string_view>

#include "util/metrics.h"

namespace livegraph {

inline constexpr uint32_t kStatsFormatVersion = 1;

/// Appends the serialized snapshot to `out` (not cleared).
void EncodeStats(const metrics::Snapshot& snapshot, std::string* out);

/// Decodes a serialized snapshot; false on an unknown version or a
/// malformed/truncated body.
bool DecodeStats(std::string_view body, metrics::Snapshot* out);

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_STATS_CODEC_H_
