#include "server/reactor.h"

#include <sys/uio.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "replication/epoch_frontier.h"
#include "util/metrics.h"

namespace livegraph {

namespace {

/// Epoll cookie reserved for the reactor's eventfd doorbell; connection
/// ids start above it.
constexpr uint64_t kWakeCookie = 0;

/// Per-wakeup read budget: one greedy connection cannot starve the rest
/// of the loop (level-triggered epoll re-reports whatever it left).
constexpr size_t kReadBudgetPerWakeup = 1u << 20;
constexpr size_t kReadChunk = 64u << 10;

/// Gathered-write fan: frames coalesced into one writev call.
constexpr int kMaxIov = 64;

/// Recycled output-buffer pool bounds (per connection).
constexpr size_t kSpareBuffers = 16;
constexpr size_t kSpareMaxBytes = 1u << 20;

/// Input buffer compaction threshold: consumed prefix worth a memmove.
constexpr size_t kCompactThreshold = 256u << 10;

metrics::Counter& WakeupsTotal() {
  static metrics::Counter& counter = metrics::Registry::Instance().GetCounter(
      "livegraph_server_reactor_wakeups_total");
  return counter;
}

metrics::Histogram& FramesPerWakeup() {
  static metrics::Histogram& histogram =
      metrics::Registry::Instance().GetHistogram(
          "livegraph_server_frames_per_wakeup", metrics::Unit::kCount);
  return histogram;
}

metrics::Histogram& PendingWriteBytes() {
  static metrics::Histogram& histogram =
      metrics::Registry::Instance().GetHistogram(
          "livegraph_server_pending_write_bytes", metrics::Unit::kBytes);
  return histogram;
}

metrics::Counter& IdleClosedTotal() {
  static metrics::Counter& counter = metrics::Registry::Instance().GetCounter(
      "livegraph_server_idle_closed_total");
  return counter;
}

}  // namespace

/// What a worker task will do — and, crucially, which pool lane it may
/// run in (see ReactorWorkerPool).
enum class TaskKind : uint8_t {
  kCommit,    // releases the transaction's locks; bounded by group commit
  kEpochWait, // may block for the client's full timeout (seconds)
  kMutation,  // may futex-wait on a vertex lock another task will release
};

/// A blocking operation in flight on the worker pool, and its result on
/// the way back to the owning reactor.
struct AsyncTask {
  Reactor* reactor = nullptr;
  uint64_t conn_id = 0;
  TaskKind kind = TaskKind::kCommit;
  std::unique_ptr<StoreTxn> txn;               // kCommit
  ServerSession::PendingMutation mutation;     // kMutation (owns its txn)
  EpochFrontier* frontier = nullptr;           // kEpochWait
  int64_t min_epoch = 0;
  int64_t timeout_ms = 0;
};

struct AsyncCompletion {
  uint64_t conn_id = 0;
  TaskKind kind = TaskKind::kCommit;
  StatusOr<timestamp_t> committed{Status::kUnavailable};
  bool covered = false;
  ServerSession::PendingMutation mutation;     // kMutation (txn rides back)
  ServerSession::MutationResult result;
};

/// The shared blocking-work pool, split into two lanes:
///
///   release lane  commits — the tasks that RELEASE vertex locks. Their
///                 only wait is group-commit durability, which the WAL
///                 thread always resolves.
///   acquire lane  mutations and epoch waits — tasks that may BLOCK for a
///                 long bound (a contended vertex lock, a frontier
///                 timeout).
///
/// The split is a deadlock-shaped requirement, not a tuning choice: a
/// mutation blocked on a vertex lock is waiting, transitively, for some
/// holder's commit to run. If that commit could queue behind blocked
/// mutations (one shared lane), every worker could end up waiting for a
/// release that none of them will ever execute, and all of them would ride
/// their waits to the full timeout. With commits in their own lane the
/// release is always schedulable, so contended waits resolve in
/// microseconds instead.
///
/// Stop() drains both lanes before joining: every handed-off transaction
/// runs to completion (its client may be gone, but its locks and epoch
/// must not leak).
class ReactorWorkerPool {
 public:
  explicit ReactorWorkerPool(int workers) : workers_(workers) {}
  ~ReactorWorkerPool() { Stop(); }

  void Start() {
    for (int i = 0; i < workers_; ++i) {
      threads_.emplace_back([this] { Run(&release_queue_, &release_cv_); });
      threads_.emplace_back([this] { Run(&acquire_queue_, &acquire_cv_); });
    }
  }

  void Submit(AsyncTask task) {
    const bool release = task.kind == TaskKind::kCommit;
    {
      std::lock_guard<std::mutex> lock(mu_);
      (release ? release_queue_ : acquire_queue_).push_back(std::move(task));
    }
    (release ? release_cv_ : acquire_cv_).notify_one();
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    release_cv_.notify_all();
    acquire_cv_.notify_all();
    for (std::thread& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    threads_.clear();
  }

 private:
  void Run(std::deque<AsyncTask>* queue, std::condition_variable* cv);
  static void Execute(AsyncTask task);

  int workers_;
  std::mutex mu_;
  std::condition_variable release_cv_;
  std::condition_variable acquire_cv_;
  std::deque<AsyncTask> release_queue_;
  std::deque<AsyncTask> acquire_queue_;
  bool stopped_ = false;
  std::vector<std::thread> threads_;
};

/// One event-loop thread: an epoll instance, an eventfd doorbell, and the
/// connections the acceptor assigned here. Everything per-connection is
/// touched only from this thread; the doorbell paths (new sockets, worker
/// completions) go through small mutex-guarded hand-off queues.
class Reactor {
 public:
  Reactor(const ReactorGroup::Options& options,
          const ReactorGroup::AdoptFn* adopt, ReactorWorkerPool* workers,
          int index)
      : options_(options),
        adopt_(adopt),
        workers_(workers),
        conn_gauge_(metrics::Registry::Instance().GetGauge(
            "livegraph_server_reactor_connections{reactor=\"" +
            std::to_string(index) + "\"}")) {}

  ~Reactor() {
    Join();
    // Completions posted after the loop exited were parked here; any
    // mutation transactions they carry still hold locks.
    for (AsyncCompletion& completion : completions_) {
      ReleaseOrphanMutation(&completion);
    }
  }

  bool Start() {
    if (!epoll_.valid() || !wake_.valid()) return false;
    if (!epoll_.Add(wake_.fd(), Epoll::kRead, kWakeCookie)) return false;
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { Run(); });
    return true;
  }

  void RequestStop() {
    running_.store(false, std::memory_order_release);
    wake_.Signal();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Acceptor hand-off (any thread).
  void Enqueue(Socket socket) {
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.push_back(std::move(socket));
    }
    wake_.Signal();
  }

  /// Worker-pool hand-back (any thread).
  void PostCompletion(AsyncCompletion completion) {
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(std::move(completion));
    }
    wake_.Signal();
  }

  size_t active() const { return active_.load(std::memory_order_relaxed); }

 private:
  struct Conn {
    uint64_t id = 0;
    Socket socket;
    ServerSession session;
    /// Input: raw bytes [in_off, in_len) of `in` are unparsed.
    std::string in;
    size_t in_off = 0;
    size_t in_len = 0;
    /// Output: encoded frames; out.front() is written from out_off.
    std::deque<std::string> out;
    size_t out_off = 0;
    size_t out_bytes = 0;
    std::vector<std::string> spare;
    /// Currently registered epoll interest bits.
    uint32_t interest = Epoll::kRead;
    enum class Wait : uint8_t { kNone, kCommit, kEpoch, kMutation };
    Wait wait = Wait::kNone;
    bool eof = false;
    bool closing = false;
    bool adopting = false;
    /// Mirrored into the reactor's write_conns_ aggregate (the
    /// mutation-offload hint): true while this connection holds >= 1 open
    /// write transaction.
    bool counted_write = false;
    Frame frame;
    uint64_t last_activity_ns = 0;
    /// Nonzero while output is queued: last time a flush made progress.
    uint64_t last_write_progress_ns = 0;

    Conn(uint64_t conn_id, Socket s, const ServerSession::Config& config)
        : id(conn_id), socket(std::move(s)), session(config) {}

    /// An async op or parked scan owns the reply stream: no new frames
    /// may dispatch until it completes (replies are in request order).
    bool blocked() const {
      return wait != Wait::kNone || session.scan_paused();
    }
  };

  /// Replies append to the connection's output queue; frames are recycled
  /// through the spare pool so the steady state allocates nothing.
  class QueueSink : public ServerSession::Sink {
   public:
    QueueSink(const Reactor* reactor, Conn* conn)
        : reactor_(reactor), conn_(conn) {}

    bool SendFrame(MsgType type, uint8_t flags,
                   std::string_view body) override {
      if (conn_->closing) return false;
      if (body.size() > kMaxFrameBody) return false;
      std::string buf;
      if (!conn_->spare.empty()) {
        buf = std::move(conn_->spare.back());
        conn_->spare.pop_back();
        buf.clear();
      }
      EncodeFrame(type, flags, body, &buf);
      if (conn_->out_bytes == 0) {
        conn_->last_write_progress_ns = metrics::MonotonicNanos();
      }
      conn_->out_bytes += buf.size();
      conn_->out.push_back(std::move(buf));
      return true;
    }

    bool throttled() const override {
      return conn_->out_bytes >= reactor_->options_.write_high_water;
    }

   private:
    const Reactor* reactor_;
    Conn* conn_;
  };

  void Run() {
    std::vector<Epoll::Event> events;
    while (running_.load(std::memory_order_acquire)) {
      epoll_.Wait(SweepIntervalMs(), &events);
      WakeupsTotal().Add();
      uint64_t frames = 0;
      bool woken = false;
      for (const Epoll::Event& event : events) {
        if (event.data == kWakeCookie) {
          woken = true;
          continue;
        }
        auto it = conns_.find(event.data);
        if (it == conns_.end()) continue;  // closed earlier this round
        Conn* conn = it->second.get();
        if (event.readable) ReadInto(conn);
        PostProcess(conn, &frames);
      }
      if (woken) {
        wake_.Drain();
        AdoptPendingSockets();
        DrainCompletions(&frames);
      }
      if (!events.empty()) FramesPerWakeup().Record(frames);
      Sweep();
    }
    ShutdownAll();
  }

  /// Epoll timeout: bounded only when a periodic sweep has work to do.
  int SweepIntervalMs() const {
    if (conns_.empty()) return -1;
    if (options_.idle_timeout_ms <= 0 &&
        options_.write_stall_timeout_ms <= 0) {
      return -1;
    }
    int64_t interval = options_.idle_timeout_ms > 0
                           ? options_.idle_timeout_ms / 2
                           : options_.write_stall_timeout_ms / 2;
    if (interval < 10) interval = 10;
    if (interval > 1000) interval = 1000;
    return static_cast<int>(interval);
  }

  /// Drains the socket into the connection's input buffer (bounded per
  /// wakeup). EOF and errors mark the connection; frames already buffered
  /// are still served before the close (a half-closing client gets its
  /// replies, as it would from the blocking server).
  void ReadInto(Conn* conn) {
    if (conn->closing) return;
    size_t budget = kReadBudgetPerWakeup;
    while (budget > 0) {
      if (conn->in.size() - conn->in_len < kReadChunk) {
        size_t grown = conn->in.size() == 0 ? kReadChunk
                                            : conn->in.size() * 2;
        conn->in.resize(grown);
      }
      size_t want = conn->in.size() - conn->in_len;
      if (want > budget) want = budget;
      int64_t n =
          conn->socket.ReadNonBlocking(&conn->in[conn->in_len], want);
      if (n == Socket::kWouldBlock) break;
      if (n == 0) {
        conn->eof = true;
        break;
      }
      if (n < 0) {
        conn->closing = true;
        break;
      }
      conn->in_len += static_cast<size_t>(n);
      budget -= static_cast<size_t>(n);
      conn->last_activity_ns = metrics::MonotonicNanos();
      if (static_cast<size_t>(n) < want) break;  // socket drained
    }
  }

  /// Dispatches every complete buffered frame, stopping at backpressure,
  /// an async hand-off, a parked scan, or a protocol violation.
  void ProcessFrames(Conn* conn, uint64_t* frames) {
    while (!conn->closing && !conn->adopting && !conn->blocked() &&
           conn->out_bytes < options_.write_high_water) {
      size_t avail = conn->in_len - conn->in_off;
      if (avail < kFrameHeaderSize) break;
      char header[kFrameHeaderSize];
      std::memcpy(header, conn->in.data() + conn->in_off, kFrameHeaderSize);
      uint32_t body_size;
      if (!DecodeFrameHeader(header, &conn->frame.type, &conn->frame.flags,
                             &body_size)) {
        conn->closing = true;
        break;
      }
      if (avail < kFrameHeaderSize + body_size) break;
      conn->frame.body.assign(
          conn->in.data() + conn->in_off + kFrameHeaderSize, body_size);
      if (!ValidateFrame(header, conn->frame.body)) {
        conn->closing = true;
        break;
      }
      conn->in_off += kFrameHeaderSize + body_size;
      ++*frames;
      QueueSink sink(this, conn);
      // Mutations must offload only when ANOTHER connection on this loop
      // holds a write transaction (a potential vertex-lock holder whose
      // releasing Commit this loop must stay live to dispatch); otherwise
      // the inline lock acquisition cannot wait on anything this loop
      // serves, and the worker round trip is skipped. Re-derived per
      // frame: a pipelined batch can open and close transactions as it
      // drains.
      conn->session.set_offload_mutations(
          write_conns_ > (conn->counted_write ? 1u : 0u));
      ServerSession::Outcome outcome = conn->session.Handle(conn->frame,
                                                            &sink);
      SyncWriteCount(conn);
      switch (outcome) {
        case ServerSession::Outcome::kDone:
          break;
        case ServerSession::Outcome::kClose:
          conn->closing = true;
          break;
        case ServerSession::Outcome::kScanPaused:
          break;  // blocked() is now true; resume on output drain
        case ServerSession::Outcome::kCommitAsync:
          SubmitCommit(conn);
          break;
        case ServerSession::Outcome::kWaitAsync:
          SubmitEpochWait(conn);
          break;
        case ServerSession::Outcome::kMutateAsync:
          SubmitMutation(conn);
          break;
        case ServerSession::Outcome::kSubscribe:
          conn->adopting = true;  // conn->frame is the kSubscribe frame
          break;
      }
    }
    // Reclaim the consumed prefix once it is worth a memmove.
    if (conn->in_off == conn->in_len) {
      conn->in_off = 0;
      conn->in_len = 0;
    } else if (conn->in_off >= kCompactThreshold) {
      std::memmove(&conn->in[0], conn->in.data() + conn->in_off,
                   conn->in_len - conn->in_off);
      conn->in_len -= conn->in_off;
      conn->in_off = 0;
    }
  }

  /// Writes as much queued output as the socket accepts, one writev per
  /// iov-full. Short writes keep their queue position; EPOLLOUT retries.
  void FlushConn(Conn* conn) {
    if (conn->closing || conn->out.empty()) return;
    PendingWriteBytes().Record(conn->out_bytes);
    while (!conn->out.empty()) {
      struct iovec iov[kMaxIov];
      int count = 0;
      size_t skip = conn->out_off;
      for (auto it = conn->out.begin();
           it != conn->out.end() && count < kMaxIov; ++it) {
        iov[count].iov_base = const_cast<char*>(it->data()) + skip;
        iov[count].iov_len = it->size() - skip;
        skip = 0;
        ++count;
      }
      int64_t n = conn->socket.WritevNonBlocking(iov, count);
      if (n == Socket::kWouldBlock) return;
      if (n < 0) {
        conn->closing = true;
        return;
      }
      conn->out_bytes -= static_cast<size_t>(n);
      conn->last_write_progress_ns =
          conn->out_bytes == 0 ? 0 : metrics::MonotonicNanos();
      size_t consumed = static_cast<size_t>(n);
      while (consumed > 0) {
        std::string& front = conn->out.front();
        size_t remain = front.size() - conn->out_off;
        if (consumed < remain) {
          conn->out_off += consumed;
          break;
        }
        consumed -= remain;
        conn->out_off = 0;
        if (conn->spare.size() < kSpareBuffers &&
            front.capacity() <= kSpareMaxBytes) {
          conn->spare.push_back(std::move(front));
        }
        conn->out.pop_front();
      }
    }
  }

  /// Alternates dispatch and flush until the connection can make no more
  /// progress this round: input exhausted, output throttled, an async op
  /// pending, or teardown.
  void Drive(Conn* conn, uint64_t* frames) {
    while (!conn->closing && !conn->adopting) {
      if (!conn->blocked()) ProcessFrames(conn, frames);
      FlushConn(conn);
      if (conn->closing || conn->adopting) break;
      bool resume_scan = conn->session.scan_paused() &&
                         conn->wait == Conn::Wait::kNone &&
                         conn->out_bytes <= options_.write_low_water;
      if (!resume_scan) break;
      QueueSink sink(this, conn);
      if (conn->session.ResumeScan(&sink) ==
          ServerSession::Outcome::kClose) {
        conn->closing = true;
      }
    }
  }

  void PostProcess(Conn* conn, uint64_t* frames) {
    Drive(conn, frames);
    if (conn->adopting) {
      AdoptSubscription(conn);
      return;
    }
    if (conn->eof && !conn->blocked() && conn->out.empty()) {
      // Every frame the peer managed to send has been served and every
      // reply flushed; nothing further can arrive.
      conn->closing = true;
    }
    if (conn->closing) {
      CloseConn(conn);
      return;
    }
    UpdateInterest(conn);
  }

  void UpdateInterest(Conn* conn) {
    bool backpressured = conn->out_bytes >= options_.write_high_water;
    uint32_t want = 0;
    if (!conn->blocked() && !backpressured && !conn->eof) {
      want |= Epoll::kRead;
    }
    if (!conn->out.empty()) want |= Epoll::kWrite;
    if (want != conn->interest) {
      epoll_.Mod(conn->socket.fd(), want, conn->id);
      conn->interest = want;
    }
  }

  void SubmitCommit(Conn* conn) {
    conn->wait = Conn::Wait::kCommit;
    AsyncTask task;
    task.reactor = this;
    task.conn_id = conn->id;
    task.kind = TaskKind::kCommit;
    task.txn = conn->session.TakePendingCommit().txn;
    workers_->Submit(std::move(task));
  }

  void SubmitEpochWait(Conn* conn) {
    conn->wait = Conn::Wait::kEpoch;
    const ServerSession::PendingWait& wait = conn->session.pending_wait();
    AsyncTask task;
    task.reactor = this;
    task.conn_id = conn->id;
    task.kind = TaskKind::kEpochWait;
    task.frontier = options_.session.frontier;
    task.min_epoch = wait.min_epoch;
    task.timeout_ms = static_cast<int64_t>(wait.timeout_ms);
    workers_->Submit(std::move(task));
  }

  void SubmitMutation(Conn* conn) {
    conn->wait = Conn::Wait::kMutation;
    AsyncTask task;
    task.reactor = this;
    task.conn_id = conn->id;
    task.kind = TaskKind::kMutation;
    task.mutation = conn->session.TakePendingMutation();
    workers_->Submit(std::move(task));
  }

  void AdoptPendingSockets() {
    std::vector<Socket> sockets;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      sockets.swap(pending_);
    }
    for (Socket& socket : sockets) {
      if (!socket.SetNonBlocking(true)) continue;
      uint64_t id = next_id_++;
      ServerSession::Config config = options_.session;
      config.offload = true;
      auto conn = std::make_unique<Conn>(id, std::move(socket), config);
      conn->last_activity_ns = metrics::MonotonicNanos();
      if (!epoll_.Add(conn->socket.fd(), Epoll::kRead, id)) continue;
      conns_.emplace(id, std::move(conn));
    }
    NoteConnCount();
  }

  void DrainCompletions(uint64_t* frames) {
    std::vector<AsyncCompletion> completions;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions.swap(completions_);
    }
    for (AsyncCompletion& completion : completions) {
      auto it = conns_.find(completion.conn_id);
      if (it == conns_.end()) {
        // Connection died while waiting. A mutation's transaction rides in
        // the completion: re-attach so its abort releases on this thread.
        ReleaseOrphanMutation(&completion);
        continue;
      }
      Conn* conn = it->second.get();
      conn->wait = Conn::Wait::kNone;
      QueueSink sink(this, conn);
      ServerSession::Outcome outcome = ServerSession::Outcome::kClose;
      switch (completion.kind) {
        case TaskKind::kCommit:
          outcome = conn->session.FinishCommit(
              std::move(completion.committed), &sink);
          break;
        case TaskKind::kEpochWait:
          outcome = conn->session.FinishEpochWait(completion.covered, &sink);
          break;
        case TaskKind::kMutation:
          outcome = conn->session.FinishMutation(
              std::move(completion.mutation), completion.result, &sink);
          break;
      }
      if (outcome == ServerSession::Outcome::kClose) conn->closing = true;
      SyncWriteCount(conn);
      PostProcess(conn, frames);
    }
  }

  /// Hands the socket (blocking again, queued output flushed) plus the
  /// kSubscribe frame to the owner's adoption callback; the replication
  /// push stream runs on a dedicated thread from here on.
  void AdoptSubscription(Conn* conn) {
    if (conn->counted_write) --write_conns_;
    epoll_.Del(conn->socket.fd());
    Socket socket = std::move(conn->socket);
    Frame frame = std::move(conn->frame);
    bool ok = socket.SetNonBlocking(false);
    size_t skip = conn->out_off;
    for (std::string& buf : conn->out) {
      if (!ok) break;
      ok = socket.WriteFull(buf.data() + skip, buf.size() - skip);
      skip = 0;
    }
    conns_.erase(conn->id);
    NoteConnCount();
    if (ok && adopt_ != nullptr && *adopt_) {
      (*adopt_)(std::move(socket), std::move(frame));
    }
  }

  /// Folds the connection's open-write-transaction state into the loop
  /// aggregate backing the mutation-offload hint.
  void SyncWriteCount(Conn* conn) {
    const bool has = conn->session.open_write_txns() > 0;
    if (has == conn->counted_write) return;
    if (has) {
      ++write_conns_;
    } else {
      --write_conns_;
    }
    conn->counted_write = has;
  }

  /// Destroys a completion's orphaned mutation transaction (its
  /// connection is gone): attach first so the abort's lock releases are
  /// accounted to this thread.
  static void ReleaseOrphanMutation(AsyncCompletion* completion) {
    if (completion->mutation.txn == nullptr) return;
    completion->mutation.txn->AttachToThread();
    completion->mutation.txn.reset();
  }

  void CloseConn(Conn* conn) {
    if (conn->counted_write) --write_conns_;
    epoll_.Del(conn->socket.fd());
    conns_.erase(conn->id);  // Socket closes; session aborts open txns
    NoteConnCount();
  }

  /// Periodic policing: idle clients (silent past the deadline) and dead
  /// weight (queued output making no progress — the peer stopped
  /// draining). Both classes abort their open transactions on close, so
  /// they cannot pin epochs or hold locks forever.
  void Sweep() {
    if (options_.idle_timeout_ms <= 0 &&
        options_.write_stall_timeout_ms <= 0) {
      return;
    }
    const uint64_t now = metrics::MonotonicNanos();
    std::vector<uint64_t> doomed;
    for (auto& [id, conn] : conns_) {
      if (options_.idle_timeout_ms > 0 && conn->out.empty() &&
          !conn->blocked() &&
          now - conn->last_activity_ns >
              static_cast<uint64_t>(options_.idle_timeout_ms) * 1'000'000) {
        IdleClosedTotal().Add();
        doomed.push_back(id);
        continue;
      }
      if (options_.write_stall_timeout_ms > 0 &&
          conn->last_write_progress_ns != 0 &&
          now - conn->last_write_progress_ns >
              static_cast<uint64_t>(options_.write_stall_timeout_ms) *
                  1'000'000) {
        doomed.push_back(id);
      }
    }
    for (uint64_t id : doomed) {
      auto it = conns_.find(id);
      if (it != conns_.end()) CloseConn(it->second.get());
    }
  }

  /// Loop exit: best-effort flush of queued replies, then teardown. Open
  /// transactions abort in the session destructors.
  void ShutdownAll() {
    for (auto& [id, conn] : conns_) {
      FlushConn(conn.get());
      conn->socket.Shutdown();
    }
    conns_.clear();
    write_conns_ = 0;
    NoteConnCount();
  }

  void NoteConnCount() {
    active_.store(conns_.size(), std::memory_order_relaxed);
    conn_gauge_.Set(static_cast<int64_t>(conns_.size()));
  }

  const ReactorGroup::Options& options_;
  const ReactorGroup::AdoptFn* adopt_;
  ReactorWorkerPool* workers_;
  metrics::Gauge& conn_gauge_;

  Epoll epoll_;
  EventFd wake_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> active_{0};

  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  /// Connections holding >= 1 open write transaction (offload hint).
  size_t write_conns_ = 0;

  std::mutex pending_mu_;
  std::vector<Socket> pending_;

  std::mutex completions_mu_;
  std::vector<AsyncCompletion> completions_;
};

void ReactorWorkerPool::Run(std::deque<AsyncTask>* queue,
                            std::condition_variable* cv) {
  while (true) {
    AsyncTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv->wait(lock, [&] { return stopped_ || !queue->empty(); });
      // Drain before exiting: a handed-off transaction must run (or the
      // epoch frontier could wedge on its acquired epoch).
      if (queue->empty()) return;
      task = std::move(queue->front());
      queue->pop_front();
    }
    Execute(std::move(task));
  }
}

void ReactorWorkerPool::Execute(AsyncTask task) {
  AsyncCompletion done;
  done.conn_id = task.conn_id;
  done.kind = task.kind;
  switch (task.kind) {
    case TaskKind::kCommit:
      task.txn->AttachToThread();
      done.committed = task.txn->Commit();
      task.txn.reset();
      break;
    case TaskKind::kEpochWait:
      done.covered =
          task.frontier->WaitCovered(task.min_epoch, task.timeout_ms);
      break;
    case TaskKind::kMutation:
      task.mutation.txn->AttachToThread();
      done.result =
          ServerSession::ExecuteMutation(*task.mutation.txn, task.mutation);
      task.mutation.txn->DetachFromThread();
      done.mutation = std::move(task.mutation);
      break;
  }
  task.reactor->PostCompletion(std::move(done));
}

ReactorGroup::ReactorGroup(Options options, AdoptFn adopt)
    : options_(std::move(options)), adopt_(std::move(adopt)) {}

ReactorGroup::~ReactorGroup() { Stop(); }

bool ReactorGroup::Start() {
  if (running_) return true;
  int reactors = options_.reactors < 1 ? 1 : options_.reactors;
  int workers = options_.workers < 1 ? 1 : options_.workers;
  workers_ = std::make_unique<ReactorWorkerPool>(workers);
  workers_->Start();
  for (int i = 0; i < reactors; ++i) {
    reactors_.push_back(
        std::make_unique<Reactor>(options_, &adopt_, workers_.get(), i));
    if (!reactors_.back()->Start()) {
      Stop();
      return false;
    }
  }
  running_ = true;
  return true;
}

void ReactorGroup::Stop() {
  // Loops first: they stop submitting new work, close their connections,
  // and exit. The pool then drains — completions posted to stopped
  // reactors are parked harmlessly until destruction. The Reactor objects
  // themselves stay alive (threads joined, zero connections) so that
  // concurrent active_connections() readers never race their teardown.
  for (auto& reactor : reactors_) reactor->RequestStop();
  for (auto& reactor : reactors_) reactor->Join();
  if (workers_ != nullptr) workers_->Stop();
  running_ = false;
}

void ReactorGroup::AddConnection(Socket socket) {
  if (reactors_.empty()) return;
  reactors_[next_reactor_++ % reactors_.size()]->Enqueue(std::move(socket));
}

size_t ReactorGroup::active_connections() const {
  size_t total = 0;
  for (const auto& reactor : reactors_) total += reactor->active();
  return total;
}

}  // namespace livegraph
