// The graph-server wire protocol: length-prefixed binary frames with
// CRC32C-guarded headers (docs/SERVER.md).
//
// Every message is one frame:
//
//   +--------+------+-------+----------+-----------+---------+  +------+
//   | magic  | type | flags | reserved | body_size |   crc   |  | body |
//   |  u32   |  u8  |  u8   |   u16    |    u32    |   u32   |  | ...  |
//   +--------+------+-------+----------+-----------+---------+  +------+
//
// `crc` is CRC32C over the first 12 header bytes extended over the body
// (util/crc32, the same Castagnoli polynomial guarding WAL records), so a
// torn or bit-flipped frame — header or payload — is detected before any
// field is trusted. A peer that receives a frame failing validation closes
// the connection: framing is lost, and resynchronizing inside a corrupt
// byte stream is not worth the attack surface.
//
// Requests carry a session-scoped transaction id assigned by Begin{,Read}-
// Txn. Responses are kReply (status byte + operation-specific payload)
// except scans: ScanLinks answers with a pipelined sequence of kScanBatch
// frames, each holding up to the server's batch budget of edges, the last
// flagged kEndOfStream — the server never materializes the adjacency list,
// and the client never holds more than one batch (EdgeCursor chunked mode).
#ifndef LIVEGRAPH_SERVER_PROTOCOL_H_
#define LIVEGRAPH_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/types.h"

namespace livegraph {

/// Bumped on any incompatible frame/body layout change; checked during the
/// Hello handshake. v2 added the replication frames (kSubscribe,
/// kLogBatch, kSnapshotBatch, kFrontierAck) and epoch-gated reads
/// (kBeginReadTxnAt) — docs/REPLICATION.md. v3 added kStats
/// (docs/OBSERVABILITY.md).
inline constexpr uint32_t kProtocolVersion = 3;

/// "LGW1" — rejects non-protocol peers (and byte-shifted streams) before
/// the CRC even runs.
inline constexpr uint32_t kFrameMagic = 0x3157474C;

/// Hard ceiling on body size: a corrupt length field must not become a
/// multi-gigabyte allocation. 16 MiB comfortably holds the largest legal
/// body (one property blob or one scan batch).
inline constexpr uint32_t kMaxFrameBody = 16u << 20;

enum class MsgType : uint8_t {
  // Requests. All carry `u64 txn_id` first unless noted.
  kHello = 1,         // u32 protocol_version (no txn id)
  kBeginTxn = 2,      // (no txn id)
  kBeginReadTxn = 3,  // (no txn id)
  kCommit = 4,
  kAbort = 5,
  kEndRead = 6,
  kGetNode = 7,       // i64 id
  kGetLink = 8,       // i64 src, u16 label, i64 dst
  kScanLinks = 9,     // i64 src, u16 label, u64 limit
  kCountLinks = 10,   // i64 src, u16 label
  kVertexCount = 11,
  kAddNode = 12,      // bytes data
  kUpdateNode = 13,   // i64 id, bytes data
  kDeleteNode = 14,   // i64 id
  kAddLink = 15,      // i64 src, u16 label, i64 dst, bytes data
  kUpdateLink = 16,   // i64 src, u16 label, i64 dst, bytes data
  kDeleteLink = 17,   // i64 src, u16 label, i64 dst

  // Replication (docs/REPLICATION.md). A follower sends kSubscribe once;
  // on kOk the connection becomes a push stream of kSnapshotBatch (when
  // the reply offered a snapshot) and then kLogBatch frames, with the
  // follower sending only kFrontierAck back.
  kSubscribe = 18,      // i64 from_epoch, u32 follower_shards (0 = fresh)
                        //   -> kReply{status; on kOk: u32 shards,
                        //      u8 snapshot_follows, i64 snapshot_epoch}
  kBeginReadTxnAt = 19, // i64 min_epoch, u32 timeout_ms (no txn id)
                        //   -> kReply{status, u64 txn_id}; kTimeout when
                        //      the frontier does not cover min_epoch in time
  kFrontierAck = 20,    // i64 epoch — follower->primary, no reply

  kStats = 21,          // (empty body, no txn id) -> kReply{status, bytes
                        //   versioned metrics snapshot — stats_codec.h}

  // Responses.
  kReply = 64,      // u8 status, then on kOk an op-specific payload
  kScanBatch = 65,  // u32 count, count * (i64 dst, i64 created, bytes props)
  kSnapshotBatch = 66,  // u32 shard, bytes payload (WAL-record format);
                        // the last frame carries kFlagEndOfStream
  kLogBatch = 67,       // i64 frontier, u32 count, count * (i64 epoch,
                        // u32 participants, u32 shard, bytes payload);
                        // count = 0 is a frontier heartbeat
};

enum FrameFlags : uint8_t {
  kFlagNone = 0,
  /// Last frame of a scan response. Set on the final kScanBatch (which may
  /// carry zero edges) and on a kReply that aborts a scan, so "read until
  /// kEndOfStream" is the complete client-side drain rule.
  kFlagEndOfStream = 1,
};

/// A decoded frame. `body` owns its bytes (copied out of the receive
/// buffer) so replies survive buffer reuse.
struct Frame {
  MsgType type = MsgType::kReply;
  uint8_t flags = 0;
  std::string body;
};

inline constexpr size_t kFrameHeaderSize = 16;

/// Appends a fully framed message (header + crc + body) to `out`. `out` is
/// not cleared: connections batch small frames into one write.
void EncodeFrame(MsgType type, uint8_t flags, std::string_view body,
                 std::string* out);

/// Validates a 16-byte header's structure (magic, known type, sane body
/// size) and extracts its fields. Acceptance is provisional: the CRC spans
/// the body too, so the caller must follow up with ValidateFrame once the
/// body bytes arrive.
bool DecodeFrameHeader(const char (&header)[kFrameHeaderSize],
                       MsgType* type, uint8_t* flags, uint32_t* body_size);

/// True iff the frame's CRC (stored in the header) matches a recomputation
/// over the header's guarded prefix plus the received body.
bool ValidateFrame(const char (&header)[kFrameHeaderSize],
                   std::string_view body);

/// Status <-> wire byte. Unknown bytes decode to kUnavailable: a peer
/// speaking a newer dialect must degrade loudly, not alias onto kOk.
uint8_t StatusToWire(Status status);
Status StatusFromWire(uint8_t wire);

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_PROTOCOL_H_
