#include "server/metrics_http.h"

#include <cstdio>
#include <string_view>
#include <utility>

#include "util/metrics.h"

namespace livegraph {

namespace {

/// Request size cap: a scrape request is one short line plus a few
/// headers; anything larger is not a scraper.
constexpr size_t kMaxRequestBytes = 8u << 10;

/// Socket deadline for the whole request/response exchange. A scraper that
/// cannot send one line or drain the body in this window is cut off.
constexpr int64_t kIoTimeoutMs = 2000;

bool SendResponse(Socket& conn, const char* status_line,
                  std::string_view content_type, std::string_view body) {
  char header[256];
  int n = std::snprintf(header, sizeof(header),
                        "HTTP/1.0 %s\r\n"
                        "Content-Type: %.*s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n"
                        "\r\n",
                        status_line, static_cast<int>(content_type.size()),
                        content_type.data(), body.size());
  if (n <= 0 || static_cast<size_t>(n) >= sizeof(header)) return false;
  return conn.WriteFull(header, static_cast<size_t>(n)) &&
         conn.WriteFull(body.data(), body.size());
}

}  // namespace

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

bool MetricsHttpServer::Start(const std::string& host, uint16_t port) {
  listener_ = ListenTcp(host, port, &port_);
  if (!listener_.valid()) return false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void MetricsHttpServer::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (!was_running) return;
  listener_.Shutdown();
  if (thread_.joinable()) thread_.join();
  listener_.Close();
}

void MetricsHttpServer::Loop() {
  while (running_.load(std::memory_order_acquire)) {
    Socket conn = AcceptTcp(listener_);
    if (!conn.valid()) break;  // listener shut down
    // Served inline: scrapes are infrequent singletons, and a per-request
    // thread would only add teardown races. The deadline bounds how long
    // one bad client can hold the loop.
    conn.SetRecvTimeout(kIoTimeoutMs);
    conn.SetSendTimeout(kIoTimeoutMs);
    ServeOne(std::move(conn));
  }
}

void MetricsHttpServer::ServeOne(Socket conn) {
  std::string request;
  char chunk[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    int64_t n = conn.ReadSome(chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF, error, or deadline
    request.append(chunk, static_cast<size_t>(n));
  }
  // Parse just the request line: METHOD SP PATH SP VERSION. Headers are
  // irrelevant to a fixed single-resource endpoint.
  size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // never got a full line
  std::string_view line(request.data(), line_end);
  size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos) return;
  size_t path_end = line.find(' ', method_end + 1);
  if (path_end == std::string_view::npos) return;
  std::string_view method = line.substr(0, method_end);
  std::string_view path =
      line.substr(method_end + 1, path_end - method_end - 1);
  if (method != "GET") {
    SendResponse(conn, "405 Method Not Allowed", "text/plain",
                 "method not allowed\n");
    return;
  }
  if (path != "/metrics") {
    SendResponse(conn, "404 Not Found", "text/plain", "not found\n");
    return;
  }
  metrics::Snapshot snapshot = metrics::Registry::Instance().Collect();
  std::string body;
  metrics::RenderPrometheus(snapshot, &body);
  SendResponse(conn, "200 OK",
               "text/plain; version=0.0.4; charset=utf-8", body);
}

}  // namespace livegraph
