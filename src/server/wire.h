// Bounds-checked little-endian encode/decode primitives for the wire
// protocol (docs/SERVER.md). Fixed-width fields only: every message on the
// graph-server protocol is a flat struct of integers plus length-prefixed
// byte strings, so a varint layer would buy nothing but branches on the
// scan-streaming hot path.
#ifndef LIVEGRAPH_SERVER_WIRE_H_
#define LIVEGRAPH_SERVER_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace livegraph {

/// Appends fixed-width little-endian values to a caller-owned buffer. The
/// buffer is a plain std::string so connections can reuse one allocation
/// across frames (clear() keeps capacity).
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutLittleEndian(v); }
  void PutU32(uint32_t v) { PutLittleEndian(v); }
  void PutU64(uint64_t v) { PutLittleEndian(v); }
  void PutI64(int64_t v) { PutLittleEndian(static_cast<uint64_t>(v)); }

  /// Length-prefixed byte string (u32 length + raw bytes).
  void PutBytes(std::string_view bytes) {
    PutU32(static_cast<uint32_t>(bytes.size()));
    out_->append(bytes.data(), bytes.size());
  }

 private:
  template <typename T>
  void PutLittleEndian(T v) {
    char bytes[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>(v >> (8 * i));
    }
    out_->append(bytes, sizeof(T));
  }

  std::string* out_;
};

/// Consumes fixed-width little-endian values from a buffer. Every getter
/// reports truncation through its return value instead of trapping, so a
/// corrupt or maliciously short frame is rejected, never read past.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (data_.size() < 1) return false;
    *v = static_cast<uint8_t>(data_[0]);
    data_.remove_prefix(1);
    return true;
  }
  bool GetU16(uint16_t* v) { return GetLittleEndian(v); }
  bool GetU32(uint32_t* v) { return GetLittleEndian(v); }
  bool GetU64(uint64_t* v) { return GetLittleEndian(v); }
  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!GetLittleEndian(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  /// Length-prefixed byte string; the view aliases the frame buffer.
  bool GetBytes(std::string_view* bytes) {
    uint32_t size;
    if (!GetU32(&size) || data_.size() < size) return false;
    *bytes = data_.substr(0, size);
    data_.remove_prefix(size);
    return true;
  }

  /// True when the whole body was consumed — trailing garbage means the
  /// peer speaks a different dialect, and the frame is rejected.
  bool Exhausted() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }

 private:
  template <typename T>
  bool GetLittleEndian(T* v) {
    if (data_.size() < sizeof(T)) return false;
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out = static_cast<T>(out |
                           (static_cast<T>(static_cast<uint8_t>(data_[i]))
                            << (8 * i)));
    }
    *v = out;
    data_.remove_prefix(sizeof(T));
    return true;
  }

  std::string_view data_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_WIRE_H_
