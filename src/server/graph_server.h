// GraphServer: the network front end over any v2 Store engine
// (docs/SERVER.md).
//
// Two transports share one protocol brain (server/session.h). The default
// front end is the epoll reactor (server/reactor.h): `reactors` event-loop
// threads own the accepted connections, pipeline buffered requests, batch
// replies into single writev calls, and hand blocking work (group-commit
// waits, frontier waits) to a small worker pool. `reactors = 0` selects
// the legacy mode — one accept thread plus one blocking thread per
// connection. Either way a connection is a protocol session: it owns a
// table of open transactions (ids handed out by Begin{,Read}Txn) mapped
// onto real StoreTxn/StoreReadTxn sessions, so remote sessions keep
// exactly the engine's semantics — MVCC snapshots stay snapshots, latch
// engines hold their latch for the remote session's lifetime, and a
// dropped connection aborts whatever it left open. Replication
// subscriptions always run on dedicated blocking threads; the reactor
// hands those sockets back (adoption) when kSubscribe arrives.
//
// Scans stream: ScanLinks walks the engine cursor once, packing edges into
// reused batch buffers and writing each batch as soon as it fills — the
// purely sequential adjacency walk the paper optimizes (§4) goes straight
// from the TEL into the socket without materializing the list, and the
// steady state allocates nothing.
#ifndef LIVEGRAPH_SERVER_GRAPH_SERVER_H_
#define LIVEGRAPH_SERVER_GRAPH_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/store.h"
#include "server/net.h"

namespace livegraph {

class ReplicationHub;
class EpochFrontier;
class ReactorGroup;

class GraphServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; the bound port is available from port() after
    /// Start().
    uint16_t port = 0;
    /// Scan batches flush at whichever budget fills first. Defaults sized
    /// so a batch rides in a few TCP segments while short adjacency lists
    /// (the LinkBench common case) still fit in one frame.
    size_t scan_batch_edges = 512;
    size_t scan_batch_bytes = 60 * 1024;
    /// Primary-side replication: when set (and attached), kSubscribe turns
    /// the connection into a follower push stream (docs/REPLICATION.md).
    /// Not owned; must outlive Stop().
    ReplicationHub* replication = nullptr;
    /// Epoch-gated reads: kBeginReadTxnAt waits on this frontier (the
    /// domain's visibility on a primary, the applied-primary-epoch
    /// frontier on a follower). Null rejects epoch-gated requests with a
    /// positive bound. Not owned; must outlive Stop().
    EpochFrontier* frontier = nullptr;
    /// Per-operation send deadline installed on every accepted socket
    /// (Socket::SetSendTimeout): a peer that stops draining its replies or
    /// its replication push stream fails the write instead of wedging the
    /// connection thread forever. 0 disables. In reactor mode the same
    /// value bounds how long a connection's queued output may sit without
    /// flush progress before the connection is closed.
    int64_t io_timeout_ms = 30'000;
    /// Event-loop threads (docs/SERVER.md "Event loop"). -1 resolves to
    /// the hardware concurrency at Start(); 0 selects the legacy blocking
    /// thread-per-connection mode.
    int reactors = -1;
    /// Commit-offload worker threads shared by the reactors. 0 resolves
    /// to max(2, reactors).
    int workers = 0;
    /// Reactor per-connection output-queue watermarks, in bytes: above
    /// high the reactor stops reading from the connection (and parks
    /// streaming scans); below low it resumes.
    size_t write_high_water = 1u << 20;
    size_t write_low_water = 256u << 10;
    /// Reactor mode: close connections that send nothing for this long
    /// (0 = never), aborting their open transactions.
    int64_t idle_timeout_ms = 0;
  };

  /// Serves `store`; does not own it. The store must outlive Stop().
  GraphServer(Store& store, Options options);
  ~GraphServer();

  /// Binds and starts accepting. False if the address cannot be bound.
  bool Start();
  /// Stops accepting, tears down live connections (aborting their open
  /// transactions), and joins every thread. Idempotent.
  void Stop();

  /// Graceful drain (SIGTERM path): stops accepting new connections
  /// immediately, then waits up to `deadline_ms` for in-flight sessions to
  /// finish on their own before tearing down whatever remains via Stop().
  /// Replication push streams never finish voluntarily, so the deadline is
  /// also the bound on how long a drain can take.
  void Drain(int64_t deadline_ms);

  /// Port actually bound (resolves port 0 requests). Valid after Start().
  uint16_t port() const { return port_; }
  const Options& options() const { return options_; }

  /// Connections currently attached, across both transports
  /// (observability, tests). relaxed: a monitoring gauge; nothing is
  /// synchronized through it.
  size_t active_connections() const;

  /// Reactor threads actually running (0 in blocking mode). Valid after
  /// Start().
  int resolved_reactors() const { return resolved_reactors_; }

 private:
  class Connection;

  void AcceptLoop();
  /// Reactor hand-back: runs a kSubscribe connection on a dedicated
  /// blocking thread (replication push streams outlive any event loop).
  void AdoptSubscription(Socket socket, Frame frame);

  Store& store_;
  Options options_;
  Socket listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> active_connections_{0};
  int resolved_reactors_ = 0;

  /// The event-loop front end (null in blocking mode).
  std::unique_ptr<ReactorGroup> reactor_group_;

  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  /// Connections-gauge probe (registered in Start, removed in Stop).
  uint64_t metrics_probe_ = 0;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_GRAPH_SERVER_H_
