// GraphServer: the network front end over any v2 Store engine
// (docs/SERVER.md).
//
// One accept thread plus one thread per connection, each speaking the
// framed protocol (server/protocol.h). A connection is a protocol session:
// it owns a table of open transactions (ids handed out by Begin{,Read}Txn)
// mapped onto real StoreTxn/StoreReadTxn sessions, so remote sessions keep
// exactly the engine's semantics — MVCC snapshots stay snapshots, latch
// engines hold their latch for the remote session's lifetime, and a
// dropped connection aborts whatever it left open.
//
// Scans stream: ScanLinks walks the engine cursor once, packing edges into
// reused batch buffers and writing each batch as soon as it fills — the
// purely sequential adjacency walk the paper optimizes (§4) goes straight
// from the TEL into the socket without materializing the list, and the
// steady state allocates nothing.
#ifndef LIVEGRAPH_SERVER_GRAPH_SERVER_H_
#define LIVEGRAPH_SERVER_GRAPH_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/store.h"
#include "server/net.h"

namespace livegraph {

class ReplicationHub;
class EpochFrontier;

class GraphServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; the bound port is available from port() after
    /// Start().
    uint16_t port = 0;
    /// Scan batches flush at whichever budget fills first. Defaults sized
    /// so a batch rides in a few TCP segments while short adjacency lists
    /// (the LinkBench common case) still fit in one frame.
    size_t scan_batch_edges = 512;
    size_t scan_batch_bytes = 60 * 1024;
    /// Primary-side replication: when set (and attached), kSubscribe turns
    /// the connection into a follower push stream (docs/REPLICATION.md).
    /// Not owned; must outlive Stop().
    ReplicationHub* replication = nullptr;
    /// Epoch-gated reads: kBeginReadTxnAt waits on this frontier (the
    /// domain's visibility on a primary, the applied-primary-epoch
    /// frontier on a follower). Null rejects epoch-gated requests with a
    /// positive bound. Not owned; must outlive Stop().
    EpochFrontier* frontier = nullptr;
    /// Per-operation send deadline installed on every accepted socket
    /// (Socket::SetSendTimeout): a peer that stops draining its replies or
    /// its replication push stream fails the write instead of wedging the
    /// connection thread forever. 0 disables.
    int64_t io_timeout_ms = 30'000;
  };

  /// Serves `store`; does not own it. The store must outlive Stop().
  GraphServer(Store& store, Options options);
  ~GraphServer();

  /// Binds and starts accepting. False if the address cannot be bound.
  bool Start();
  /// Stops accepting, tears down live connections (aborting their open
  /// transactions), and joins every thread. Idempotent.
  void Stop();

  /// Graceful drain (SIGTERM path): stops accepting new connections
  /// immediately, then waits up to `deadline_ms` for in-flight sessions to
  /// finish on their own before tearing down whatever remains via Stop().
  /// Replication push streams never finish voluntarily, so the deadline is
  /// also the bound on how long a drain can take.
  void Drain(int64_t deadline_ms);

  /// Port actually bound (resolves port 0 requests). Valid after Start().
  uint16_t port() const { return port_; }
  const Options& options() const { return options_; }

  /// Connections currently attached (observability, tests).
  /// relaxed: a monitoring gauge; nothing is synchronized through it.
  size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  class Connection;

  void AcceptLoop();

  Store& store_;
  Options options_;
  Socket listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> active_connections_{0};

  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  /// Connections-gauge probe (registered in Start, removed in Stop).
  uint64_t metrics_probe_ = 0;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_GRAPH_SERVER_H_
