// RemoteStore: the client side of the graph-server protocol, implementing
// the same Store/StoreTxn/StoreReadTxn surface as the embedded engines —
// so every driver, bench, example, and the conformance suite runs
// unmodified against a LiveGraph across the network (docs/SERVER.md).
//
// Model: a RemoteStore owns a pool of TCP connections. Each session
// (BeginTxn / BeginReadTxn) checks a connection out of the pool for its
// lifetime — requests within a session are strictly ordered, which is what
// gives remote sessions the same semantics as local ones — and returns it
// on Commit/Abort/EndRead. Scans arrive as the server's pipelined batch
// stream; the cursor handed to the caller is EdgeCursor in chunked mode,
// pulling one batch at a time, so neither side ever materializes a long
// adjacency list. Interleaved access — a nested scan or point read issued
// while a cursor is mid-stream, as SNB traversals do — parks the live
// stream's remaining frames into a client-side buffer so the outer cursor
// keeps its position; an abandoned stream (LIMIT-style early exit, cursor
// destroyed) is drained and discarded before the connection carries the
// next request.
//
// Failures degrade to Status::kUnavailable: a dead connection fails the
// session's remaining operations immediately (RunWrite deliberately does
// not retry kUnavailable) and is dropped from the pool instead of being
// returned.
#ifndef LIVEGRAPH_SERVER_REMOTE_STORE_H_
#define LIVEGRAPH_SERVER_REMOTE_STORE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/store.h"

namespace livegraph {

namespace metrics {
struct Snapshot;
}  // namespace metrics

enum class MsgType : uint8_t;  // server/protocol.h

class RemoteStore : public Store {
 public:
  /// One pooled protocol connection (defined in remote_store.cc; public
  /// only so the chunked-cursor batch source can hold one).
  class Connection;

  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Read scale-out (docs/REPLICATION.md): when `replica_port` is set,
    /// read sessions dial this follower with kBeginReadTxnAt, carrying the
    /// session's last observed commit epoch — read-your-epoch: the
    /// follower blocks (bounded) until its applied frontier covers that
    /// epoch, so this client's own writes are always visible. Writes
    /// always go to `host:port`. A dead or lagging follower fails the
    /// read session over to the primary transparently (one retry, capped
    /// backoff before the follower is dialed again).
    std::string replica_host = "127.0.0.1";
    uint16_t replica_port = 0;
    /// Bound on the follower-side frontier wait before failing over.
    uint32_t read_your_epoch_timeout_ms = 2000;
    /// First follower-redial backoff after a failover; doubles, capped.
    int64_t replica_backoff_ms = 100;
    int64_t replica_backoff_cap_ms = 5000;
    /// Per-operation socket deadline (SO_RCVTIMEO/SO_SNDTIMEO) on every
    /// dialed connection: a hung server fails the call with kUnavailable
    /// instead of wedging the client thread. Must comfortably exceed the
    /// server-side epoch-gated read wait (read_your_epoch_timeout_ms).
    /// 0 disables.
    int64_t io_timeout_ms = 30'000;
  };

  /// Dials the server and performs the version/traits handshake. Null if
  /// the server is unreachable or speaks an incompatible protocol.
  static std::unique_ptr<RemoteStore> Connect(const Options& options);
  static std::unique_ptr<RemoteStore> Connect(const std::string& host,
                                              uint16_t port) {
    return Connect(Options{host, port});
  }

  ~RemoteStore() override;

  /// "remote/" + the server engine's name.
  std::string Name() const override { return "remote/" + remote_name_; }
  /// The server engine's traits, learned at handshake: a remote MVCC
  /// snapshot is still a snapshot, so conformance asserts the same
  /// strengths over the wire.
  StoreTraits Traits() const override { return traits_; }

  std::unique_ptr<StoreTxn> BeginTxn() override;
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override;

  /// Client-side request pipelining over one pooled connection, the
  /// client knob for the server's in-connection pipelining (docs/SERVER.md
  /// "Event loop"): queue mutations locally, then Flush() ships every
  /// queued frame in one send and reads the replies in order — K ops cost
  /// one round trip instead of K. A pipeline owns a private server-side
  /// write transaction; Commit() flushes whatever is queued, then commits.
  /// Flush chunks very large batches (a bounded number of request bytes
  /// per send) so the reply backlog can never deadlock against the
  /// server's per-connection output backpressure.
  class Pipeline {
   public:
    ~Pipeline();
    Pipeline(const Pipeline&) = delete;
    Pipeline& operator=(const Pipeline&) = delete;

    /// False when the session could not be opened or the transport died;
    /// every further call fails with kUnavailable.
    bool ok() const { return open_; }

    // Queue mutations (no I/O until Flush/Commit).
    void AddNode(std::string_view data);
    void UpdateNode(vertex_t id, std::string_view data);
    void DeleteNode(vertex_t id);
    void AddLink(vertex_t src, label_t label, vertex_t dst,
                 std::string_view data);
    void UpdateLink(vertex_t src, label_t label, vertex_t dst,
                    std::string_view data);
    void DeleteLink(vertex_t src, label_t label, vertex_t dst);
    size_t pending() const { return ends_.size(); }

    /// Ships every queued request, reads the replies in order. When
    /// `statuses` is non-null it receives one Status per queued op (queue
    /// order). False on transport failure (the session is dead).
    bool Flush(std::vector<Status>* statuses = nullptr);
    /// Flush + commit the underlying transaction.
    StatusOr<timestamp_t> Commit();
    /// Flush-discarding abort; the connection returns to the pool.
    void Abort();

   private:
    friend class RemoteStore;
    Pipeline(RemoteStore* store, std::shared_ptr<Connection> connection,
             uint64_t txn_id);

    void Queue(MsgType type, std::string_view body);
    /// Returns the (healthy) connection to the pool.
    void Release();

    RemoteStore* store_;
    std::shared_ptr<Connection> connection_;
    uint64_t txn_id_ = 0;
    bool open_ = false;
    std::string batch_;          // queued frames, already encoded
    std::vector<size_t> ends_;   // cumulative end offset of each frame
  };

  /// Opens a pipeline (one round trip for its BeginTxn). Never null; a
  /// failed open yields a pipeline whose ok() is false.
  std::unique_ptr<Pipeline> NewPipeline();

  /// Fetches the server's metrics snapshot via the STATS opcode
  /// (docs/OBSERVABILITY.md), using a pooled connection. False on I/O
  /// failure, a non-kOk reply, or an undecodable payload.
  bool Stats(metrics::Snapshot* out);

  /// Pooled idle connections (observability, tests).
  size_t idle_connections() const;

  /// Read sessions that fell over from the follower to the primary
  /// (observability, tests).
  uint64_t read_failovers() const {
    return read_failovers_.load(std::memory_order_relaxed);
  }
  /// Highest commit epoch observed by this client's write sessions — the
  /// read-your-epoch bound carried to the follower.
  timestamp_t last_commit_epoch() const {
    return last_commit_epoch_.load(std::memory_order_relaxed);
  }

 private:
  friend class RemoteTxn;

  explicit RemoteStore(Options options) : options_(std::move(options)) {}

  std::shared_ptr<Connection> AcquireConnection(bool replica);
  void ReleaseConnection(std::shared_ptr<Connection> connection,
                         bool replica);
  std::unique_ptr<StoreTxn> BeginSession(bool writable);
  /// Follower-first read session; null means "use the primary".
  std::unique_ptr<StoreTxn> BeginReplicaReadSession();
  void NoteCommitEpoch(timestamp_t epoch);
  /// True while the follower is in its post-failover penalty box.
  bool ReplicaBackedOff();
  void NoteReplicaFailure();

  Options options_;
  std::string remote_name_;
  StoreTraits traits_;

  std::atomic<timestamp_t> last_commit_epoch_{0};
  std::atomic<uint64_t> read_failovers_{0};

  mutable std::mutex pool_mu_;
  std::vector<std::shared_ptr<Connection>> pool_;
  std::vector<std::shared_ptr<Connection>> replica_pool_;
  std::chrono::steady_clock::time_point replica_retry_at_{};
  int64_t replica_backoff_ms_ = 0;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_REMOTE_STORE_H_
