// RemoteStore: the client side of the graph-server protocol, implementing
// the same Store/StoreTxn/StoreReadTxn surface as the embedded engines —
// so every driver, bench, example, and the conformance suite runs
// unmodified against a LiveGraph across the network (docs/SERVER.md).
//
// Model: a RemoteStore owns a pool of TCP connections. Each session
// (BeginTxn / BeginReadTxn) checks a connection out of the pool for its
// lifetime — requests within a session are strictly ordered, which is what
// gives remote sessions the same semantics as local ones — and returns it
// on Commit/Abort/EndRead. Scans arrive as the server's pipelined batch
// stream; the cursor handed to the caller is EdgeCursor in chunked mode,
// pulling one batch at a time, so neither side ever materializes a long
// adjacency list. Interleaved access — a nested scan or point read issued
// while a cursor is mid-stream, as SNB traversals do — parks the live
// stream's remaining frames into a client-side buffer so the outer cursor
// keeps its position; an abandoned stream (LIMIT-style early exit, cursor
// destroyed) is drained and discarded before the connection carries the
// next request.
//
// Failures degrade to Status::kUnavailable: a dead connection fails the
// session's remaining operations immediately (RunWrite deliberately does
// not retry kUnavailable) and is dropped from the pool instead of being
// returned.
#ifndef LIVEGRAPH_SERVER_REMOTE_STORE_H_
#define LIVEGRAPH_SERVER_REMOTE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/store.h"

namespace livegraph {

class RemoteStore : public Store {
 public:
  /// One pooled protocol connection (defined in remote_store.cc; public
  /// only so the chunked-cursor batch source can hold one).
  class Connection;

  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
  };

  /// Dials the server and performs the version/traits handshake. Null if
  /// the server is unreachable or speaks an incompatible protocol.
  static std::unique_ptr<RemoteStore> Connect(const Options& options);
  static std::unique_ptr<RemoteStore> Connect(const std::string& host,
                                              uint16_t port) {
    return Connect(Options{host, port});
  }

  ~RemoteStore() override;

  /// "remote/" + the server engine's name.
  std::string Name() const override { return "remote/" + remote_name_; }
  /// The server engine's traits, learned at handshake: a remote MVCC
  /// snapshot is still a snapshot, so conformance asserts the same
  /// strengths over the wire.
  StoreTraits Traits() const override { return traits_; }

  std::unique_ptr<StoreTxn> BeginTxn() override;
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override;

  /// Pooled idle connections (observability, tests).
  size_t idle_connections() const;

 private:
  friend class RemoteTxn;

  explicit RemoteStore(Options options) : options_(std::move(options)) {}

  std::shared_ptr<Connection> AcquireConnection();
  void ReleaseConnection(std::shared_ptr<Connection> connection);
  std::unique_ptr<StoreTxn> BeginSession(bool writable);

  Options options_;
  std::string remote_name_;
  StoreTraits traits_;

  mutable std::mutex pool_mu_;
  std::vector<std::shared_ptr<Connection>> pool_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_REMOTE_STORE_H_
