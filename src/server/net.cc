#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

#include "util/fault_injection.h"
#include "util/metrics.h"

namespace livegraph {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    rx_bytes_ = other.rx_bytes_;
    tx_bytes_ = other.tx_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::ReadFull(void* data, size_t size) {
  if (faults::Action fault = LIVEGRAPH_FAULT("net.recv")) {
    if (fault.kind == faults::Action::Kind::kShortWrite) {
      // Consume up to the injected budget, then tear the stream mid-frame
      // — the receiver-side half of a torn/half-closed connection.
      size_t budget = static_cast<size_t>(fault.arg) < size
                          ? static_cast<size_t>(fault.arg)
                          : size;
      char* at = static_cast<char*>(data);
      while (budget > 0) {
        ssize_t n = ::recv(fd_, at, budget, 0);
        if (n <= 0) break;
        at += n;
        budget -= static_cast<size_t>(n);
      }
    }
    Shutdown();
    return false;
  }
  char* at = static_cast<char*>(data);
  while (size > 0) {
    ssize_t n = ::recv(fd_, at, size, 0);
    if (n == 0) return false;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      // Expired SO_RCVTIMEO deadline: the peer is hung, fail the read.
      return false;
    }
    at += n;
    size -= static_cast<size_t>(n);
  }
  if (rx_bytes_ != nullptr) {
    rx_bytes_->Add(static_cast<uint64_t>(at - static_cast<char*>(data)));
  }
  return true;
}

int64_t Socket::ReadSome(void* data, size_t size) {
  while (true) {
    ssize_t n = ::recv(fd_, data, size, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return -1;  // error or expired SO_RCVTIMEO deadline
    if (n > 0 && rx_bytes_ != nullptr) {
      rx_bytes_->Add(static_cast<uint64_t>(n));
    }
    return static_cast<int64_t>(n);
  }
}

bool Socket::WriteFull(const void* data, size_t size) {
  if (faults::Action fault = LIVEGRAPH_FAULT("net.send")) {
    if (fault.kind == faults::Action::Kind::kShortWrite) {
      // Push a real partial frame onto the wire before tearing the
      // stream, so the peer exercises its mid-frame-close handling.
      size_t budget = static_cast<size_t>(fault.arg) < size
                          ? static_cast<size_t>(fault.arg)
                          : size;
      const char* at = static_cast<const char*>(data);
      while (budget > 0) {
        ssize_t n = ::send(fd_, at, budget, MSG_NOSIGNAL);
        if (n <= 0) break;
        at += n;
        budget -= static_cast<size_t>(n);
      }
    }
    Shutdown();
    return false;
  }
  const char* at = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::send(fd_, at, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Expired SO_SNDTIMEO deadline: the peer stopped draining, fail.
      return false;
    }
    at += n;
    size -= static_cast<size_t>(n);
  }
  if (tx_bytes_ != nullptr) {
    tx_bytes_->Add(
        static_cast<uint64_t>(at - static_cast<const char*>(data)));
  }
  return true;
}

bool Socket::SetNonBlocking(bool enabled) {
  if (fd_ < 0) return false;
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return flags == wanted || ::fcntl(fd_, F_SETFL, wanted) == 0;
}

int64_t Socket::ReadNonBlocking(void* data, size_t size) {
  if (faults::Action fault = LIVEGRAPH_FAULT("net.recv")) {
    // Same failure the blocking path injects: tear the stream. The
    // reactor sees an error return and closes the connection.
    (void)fault;
    Shutdown();
    return -1;
  }
  while (true) {
    ssize_t n = ::recv(fd_, data, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
      return -1;
    }
    if (n > 0 && rx_bytes_ != nullptr) {
      rx_bytes_->Add(static_cast<uint64_t>(n));
    }
    return static_cast<int64_t>(n);
  }
}

int64_t Socket::WritevNonBlocking(const struct iovec* iov, int iov_count) {
  if (faults::Action fault = LIVEGRAPH_FAULT("net.send")) {
    if (fault.kind == faults::Action::Kind::kShortWrite) {
      // Push a bounded prefix onto the wire before tearing the stream —
      // the peer exercises its mid-frame-close handling (same shape as
      // WriteFull's injection).
      size_t budget = static_cast<size_t>(fault.arg);
      for (int i = 0; i < iov_count && budget > 0; ++i) {
        size_t chunk = iov[i].iov_len < budget ? iov[i].iov_len : budget;
        ssize_t n = ::send(fd_, iov[i].iov_base, chunk, MSG_NOSIGNAL);
        if (n <= 0) break;
        budget -= static_cast<size_t>(n);
      }
    }
    Shutdown();
    return -1;
  }
  while (true) {
    msghdr msg = {};
    msg.msg_iov = const_cast<struct iovec*>(iov);
    msg.msg_iovlen = static_cast<size_t>(iov_count);
    ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
      return -1;
    }
    if (n > 0 && tx_bytes_ != nullptr) {
      tx_bytes_->Add(static_cast<uint64_t>(n));
    }
    return static_cast<int64_t>(n);
  }
}

namespace {

void SetSockTimeout(int fd, int option, int64_t timeout_ms) {
  if (fd < 0 || timeout_ms < 0) return;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

}  // namespace

void Socket::SetRecvTimeout(int64_t timeout_ms) {
  SetSockTimeout(fd_, SO_RCVTIMEO, timeout_ms);
}

void Socket::SetSendTimeout(int64_t timeout_ms) {
  SetSockTimeout(fd_, SO_SNDTIMEO, timeout_ms);
}

bool Socket::Readable(int timeout_ms) const {
  if (fd_ < 0) return false;
  pollfd pfd = {fd_, POLLIN, 0};
  while (true) {
    int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0 && errno == EINTR) continue;
    // POLLHUP/POLLERR also report readable: the next ReadFrame surfaces
    // the EOF/error, which is how the caller learns the peer is gone.
    return n > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
  }
}

bool Socket::WriteFrame(MsgType type, uint8_t flags, std::string_view body,
                        std::string* scratch) {
  // A body over the protocol cap would be rejected by the receiver's
  // header check anyway (and one over 4 GiB would truncate the u32 length
  // and desync framing); refuse locally so the failure is immediate and
  // the bytes never hit the wire.
  if (body.size() > kMaxFrameBody) return false;
  scratch->clear();
  EncodeFrame(type, flags, body, scratch);
  return WriteFull(scratch->data(), scratch->size());
}

bool Socket::ReadFrame(Frame* frame) {
  char header[kFrameHeaderSize];
  if (!ReadFull(header, sizeof(header))) return false;
  uint32_t body_size;
  if (!DecodeFrameHeader(header, &frame->type, &frame->flags, &body_size)) {
    return false;
  }
  frame->body.resize(body_size);
  if (body_size > 0 && !ReadFull(frame->body.data(), body_size)) {
    return false;
  }
  return ValidateFrame(header, frame->body);
}

namespace {

bool FillAddress(const std::string& host, uint16_t port,
                 sockaddr_in* address) {
  std::memset(address, 0, sizeof(*address));
  address->sin_family = AF_INET;
  address->sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &address->sin_addr) == 1;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket ListenTcp(const std::string& host, uint16_t port,
                 uint16_t* bound_port) {
  sockaddr_in address;
  if (!FillAddress(host, port, &address)) return Socket();
  Socket listener(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listener.valid()) return Socket();
  int one = 1;
  ::setsockopt(listener.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listener.fd(), reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listener.fd(), SOMAXCONN) != 0) {
    return Socket();
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t bound_size = sizeof(bound);
    if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&bound),
                      &bound_size) != 0) {
      return Socket();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return listener;
}

Socket AcceptTcp(const Socket& listener) {
  while (true) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      return Socket(fd);
    }
    // Transient failures must not kill the accept loop: a queued client
    // resetting before accept() returns (ECONNABORTED) or momentary
    // fd/buffer exhaustion is recoverable. Only genuine listener
    // teardown (EBADF/EINVAL after shutdown) ends the loop.
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      timespec backoff = {0, 10'000'000};  // 10 ms for fds to free up
      ::nanosleep(&backoff, nullptr);
      continue;
    }
    return Socket();
  }
}

Epoll::Epoll() : fd_(::epoll_create1(EPOLL_CLOEXEC)) {}

Epoll::~Epoll() {
  if (fd_ >= 0) ::close(fd_);
}

namespace {

uint32_t ToEpollMask(uint32_t interest) {
  uint32_t mask = 0;
  if ((interest & Epoll::kRead) != 0) mask |= EPOLLIN;
  if ((interest & Epoll::kWrite) != 0) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

bool Epoll::Add(int fd, uint32_t interest, uint64_t data) {
  epoll_event ev = {};
  ev.events = ToEpollMask(interest);
  ev.data.u64 = data;
  return ::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool Epoll::Mod(int fd, uint32_t interest, uint64_t data) {
  epoll_event ev = {};
  ev.events = ToEpollMask(interest);
  ev.data.u64 = data;
  return ::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

bool Epoll::Del(int fd) {
  epoll_event ev = {};
  return ::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, &ev) == 0;
}

int Epoll::Wait(int timeout_ms, std::vector<Event>* out) {
  out->clear();
  epoll_event events[128];
  int n;
  do {
    n = ::epoll_wait(fd_, events, 128, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return 0;
  out->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event event;
    event.data = events[i].data.u64;
    // HUP/ERR surface as readable: the next read returns EOF/error, which
    // is how the reactor learns the peer is gone.
    event.readable =
        (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
    event.writable = (events[i].events & EPOLLOUT) != 0;
    out->push_back(event);
  }
  return n;
}

EventFd::EventFd() : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {}

EventFd::~EventFd() {
  if (fd_ >= 0) ::close(fd_);
}

void EventFd::Signal() {
  uint64_t one = 1;
  // A full counter (EAGAIN) still leaves the fd readable — the wakeup is
  // already pending, so dropping the write is correct.
  [[maybe_unused]] ssize_t n = ::write(fd_, &one, sizeof(one));
}

void EventFd::Drain() {
  uint64_t value;
  while (::read(fd_, &value, sizeof(value)) > 0) {
  }
}

Socket ConnectTcp(const std::string& host, uint16_t port) {
  if (LIVEGRAPH_FAULT("net.connect")) return Socket();
  sockaddr_in address;
  if (!FillAddress(host, port, &address)) return Socket();
  Socket conn(::socket(AF_INET, SOCK_STREAM, 0));
  if (!conn.valid()) return Socket();
  if (::connect(conn.fd(), reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    return Socket();
  }
  SetNoDelay(conn.fd());
  return conn;
}

}  // namespace livegraph
