// The epoll reactor frontend (docs/SERVER.md "Event loop").
//
// A ReactorGroup owns N event-loop threads ("reactors"), each with its own
// epoll instance and an exclusive share of the accepted connections (the
// acceptor hands sockets over round-robin, so a connection lives on one
// reactor for its whole life and needs no locking), plus one small shared
// worker pool for operations that would block the loops.
//
// Per connection the reactor keeps a non-blocking read/decode state
// machine and a bounded output queue:
//
//   - Pipelining: every complete frame buffered on the socket is decoded
//     and dispatched before the loop moves on; replies are queued, then
//     written with ONE writev — a client that batches K requests pays one
//     wakeup and one syscall each way instead of K blocking round trips.
//   - Backpressure: when a connection's queued output exceeds the high
//     water mark the reactor stops reading from it (EPOLLIN off) and a
//     streaming scan parks between batches (ServerSession::kScanPaused);
//     when EPOLLOUT drains the queue below the low water mark, reading
//     and the scan resume. Memory per connection stays bounded no matter
//     how asymmetric the peer.
//   - Blocking work: group-commit durability waits, replication frontier
//     waits, AND lock-acquiring mutations run on the worker pool (the
//     transaction migrates threads — api/store.h "Cross-thread
//     hand-off"); the completion is posted back to the owning reactor
//     through an eventfd and the reply is sent from the loop, preserving
//     reply order. Mutations must offload because a contended vertex
//     lock's holder is often another connection on the SAME loop: its
//     releasing Commit frame could never dispatch under a blocked loop,
//     so every contended wait would ride to the engine's deadlock
//     timeout. The pool itself is split into a release lane (commits)
//     and an acquire lane (mutations, frontier waits) for the same
//     reason one level down — see ReactorWorkerPool in reactor.cc.
//
// Replication subscriptions (kSubscribe) do not fit an event loop — they
// are infinite write-mostly streams — so the reactor detaches the socket
// (restored to blocking) and hands it to the owner's adoption callback,
// which runs the push stream on a dedicated thread exactly like the
// legacy blocking mode.
#ifndef LIVEGRAPH_SERVER_REACTOR_H_
#define LIVEGRAPH_SERVER_REACTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "server/net.h"
#include "server/session.h"

namespace livegraph {

class Reactor;
class ReactorWorkerPool;

class ReactorGroup {
 public:
  struct Options {
    /// Event-loop thread count (resolved by the caller; >= 1).
    int reactors = 1;
    /// Blocking-work worker threads shared by all reactors — per lane:
    /// the pool runs this many commit (lock-releasing) threads plus this
    /// many mutation/wait (lock-acquiring) threads.
    int workers = 2;
    /// Output-queue watermarks, bytes per connection. Above high: stop
    /// reading and park scans. Below low: resume.
    size_t write_high_water = 1u << 20;
    size_t write_low_water = 256u << 10;
    /// Close connections silent for this long (0 = never). Aborts their
    /// open transactions so leaked clients cannot pin epochs forever.
    int64_t idle_timeout_ms = 0;
    /// A connection whose queued output makes no progress for this long
    /// is dead weight (peer stopped draining) and is closed. 0 disables.
    int64_t write_stall_timeout_ms = 30'000;
    /// Session template: store, scan budgets, frontier. `offload` is
    /// forced on for every reactor-owned session.
    ServerSession::Config session;
  };

  /// Invoked from a reactor thread when a connection subscribes
  /// (replication push stream): the socket — blocking again, output queue
  /// flushed — and the kSubscribe frame move to the callee, which serves
  /// the stream on its own thread.
  using AdoptFn = std::function<void(Socket, Frame)>;

  ReactorGroup(Options options, AdoptFn adopt);
  ~ReactorGroup();
  ReactorGroup(const ReactorGroup&) = delete;
  ReactorGroup& operator=(const ReactorGroup&) = delete;

  bool Start();
  /// Stops the loops (closing every connection; sessions abort their open
  /// transactions), then drains and joins the worker pool. Idempotent.
  void Stop();

  /// Hands an accepted socket to the next reactor (round-robin).
  void AddConnection(Socket socket);

  /// Connections currently owned by the loops (drain/observability).
  size_t active_connections() const;

 private:
  Options options_;
  AdoptFn adopt_;
  std::unique_ptr<ReactorWorkerPool> workers_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  size_t next_reactor_ = 0;
  bool running_ = false;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_REACTOR_H_
