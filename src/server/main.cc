// livegraph_server: stand-alone graph server binary (docs/SERVER.md).
//
//   livegraph_server [--engine=LiveGraph|PagedLiveGraph|BTree|LSMT|LinkedList]
//                    [--shards=N] [--host=127.0.0.1] [--port=9271]
//                    [--durability=none|wal|wal-fsync] [--wal-path=PATH]
//                    [--checkpoint-dir=DIR] [--storage-path=FILE]
//                    [--max-vertices=N] [--page-cache-pages=N]
//                    [--scan-batch-edges=N]
//                    [--replica-of=HOST:PORT] [--replica-dir=DIR]
//                    [--replica-checkpoint-epochs=N]
//                    [--metrics-port=N] [--slow-op-ms=N]
//
// Serves the chosen engine over the binary wire protocol until SIGINT or
// SIGTERM. --shards=N (LiveGraph engine only) serves a hash-partitioned
// ShardedLiveGraph instead — N independent commit pipelines, lock arrays
// and compaction threads behind the same wire protocol, one shared
// visibility-epoch domain, remote read sessions pinning a single global
// epoch transparently (docs/SHARDING.md).
//
// --replica-of=HOST:PORT runs a read-only FOLLOWER instead of a primary
// (docs/REPLICATION.md): the server subscribes to that primary's WAL
// stream, applies it continuously, rejects writes with kUnavailable, and
// serves reads/scans/analytics — epoch-gated read sessions wait until the
// follower's applied frontier covers the client's epoch. A durable primary
// (LiveGraph engines with --durability != none) automatically accepts
// follower subscriptions on its own port.
//
// Durability flags apply to the LiveGraph engines only (the baselines are
// volatile comparators, as in the paper's §7.1 setup). With durability
// enabled the server RECOVERS on start: a single-engine server replays
// --checkpoint-dir (if given) plus the --wal-path tail (§6); a sharded
// server treats --wal-path as its durable DIRECTORY (<dir>/MANIFEST,
// <dir>/shard<i>/wal, <dir>/shard<i>/checkpoint/) and runs
// ShardedStore::Recover — so restarting against a populated directory
// resumes exactly the committed state, never half of a cross-shard
// transaction.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>

#include "baselines/btree_store.h"
#include "baselines/linked_list_store.h"
#include "baselines/livegraph_store.h"
#include "baselines/lsmt_store.h"
#include "replication/epoch_frontier.h"
#include "replication/replica.h"
#include "replication/replication_hub.h"
#include "server/graph_server.h"
#include "server/metrics_http.h"
#include "shard/sharded_store.h"
#include "util/build_info.h"
#include "util/fault_injection.h"
#include "util/log.h"
#include "util/metrics.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;  // SIGINT: stop now
volatile std::sig_atomic_t g_term = 0;  // SIGTERM: graceful drain
volatile std::sig_atomic_t g_dump_slow = 0;  // SIGUSR1: dump slow-op ring

void HandleInt(int) { g_stop = 1; }
void HandleTerm(int) { g_term = 1; }
void HandleUsr1(int) { g_dump_slow = 1; }

struct Flags {
  std::string engine = "LiveGraph";
  int shards = 1;
  std::string host = "127.0.0.1";
  uint16_t port = 9271;
  std::string durability = "none";  // none | wal | wal-fsync
  std::string wal_path = "/tmp/livegraph_server_wal.log";
  std::string checkpoint_dir;  // single-engine recovery source (optional)
  std::string storage_path;
  size_t max_vertices = size_t{1} << 24;
  size_t page_cache_pages = size_t{1} << 16;  // PagedLiveGraph: 256 MiB
  size_t scan_batch_edges = 512;
  int reactors = -1;  // event-loop threads; -1 = hw concurrency, 0 = blocking
  int workers = 0;    // commit-offload workers; 0 = max(2, reactors)
  int64_t idle_timeout_ms = 0;  // reactor mode: close silent connections
  std::string replica_of;   // "host:port" of the primary (follower mode)
  std::string replica_dir;  // follower durable dir (empty = in-memory)
  int64_t replica_checkpoint_epochs = 65536;
  int64_t drain_deadline_ms = 5000;  // SIGTERM graceful-drain bound
  int metrics_port = -1;  // /metrics HTTP port; -1 = disabled, 0 = ephemeral
  int64_t slow_op_ms = 100;  // slow-op trace threshold; 0 disables
};

/// Splits "host:port"; false on a missing/invalid port.
bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  int parsed = std::atoi(spec.c_str() + colon + 1);
  if (parsed <= 0 || parsed > 65535) return false;
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return true;
}

bool TakeValue(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--engine=LiveGraph|PagedLiveGraph|BTree|LSMT|LinkedList]\n"
      "          [--shards=N] [--host=ADDR] [--port=N]\n"
      "          [--durability=none|wal|wal-fsync] [--wal-path=PATH]\n"
      "          [--checkpoint-dir=DIR] [--storage-path=FILE]\n"
      "          [--max-vertices=N] [--page-cache-pages=N]\n"
      "          [--scan-batch-edges=N]\n"
      "          [--reactors=N] [--workers=N] [--idle-timeout-ms=N]\n"
      "          [--replica-of=HOST:PORT] [--replica-dir=DIR]\n"
      "          [--replica-checkpoint-epochs=N]\n"
      "          [--drain-deadline-ms=N] [--faults=SPEC]\n"
      "          [--metrics-port=N] [--slow-op-ms=N]\n"
      "  --reactors picks the epoll event-loop thread count (docs/SERVER.md\n"
      "  \"Event loop\"): -1 (default) = hardware concurrency, 0 = legacy\n"
      "  blocking thread-per-connection. --workers sizes the commit-offload\n"
      "  pool (0 = max(2, reactors)); --idle-timeout-ms closes connections\n"
      "  silent that long (0 = never, reactor mode only).\n"
      "  --shards=N (N > 1) serves a hash-partitioned ShardedLiveGraph;\n"
      "  LiveGraph engine only. With durability the server recovers its\n"
      "  durable state on start; a sharded server uses --wal-path as its\n"
      "  per-shard WAL/checkpoint directory.\n"
      "  --replica-of runs a read-only follower of that primary\n"
      "  (docs/REPLICATION.md); --replica-dir makes its state durable.\n"
      "  SIGTERM drains gracefully: stop accepting, finish in-flight\n"
      "  requests (up to --drain-deadline-ms), final checkpoint, exit 0.\n"
      "  --faults installs fault-injection failpoints (docs/FAULTS.md);\n"
      "  requires a build with -DLIVEGRAPH_FAULTS=ON.\n"
      "  --metrics-port serves Prometheus text exposition on GET /metrics\n"
      "  (docs/OBSERVABILITY.md); 0 picks an ephemeral port. --slow-op-ms\n"
      "  traces requests/commits slower than N ms into a ring dumped by\n"
      "  SIGUSR1 and the STATS opcode (default 100, 0 disables).\n",
      argv0);
  return 2;
}

std::unique_ptr<livegraph::Store> MakeEngine(const Flags& flags) {
  using namespace livegraph;
  if (flags.engine == "LiveGraph" || flags.engine == "PagedLiveGraph") {
    GraphOptions options;
    options.max_vertices = flags.max_vertices;
    options.storage_path = flags.storage_path;
    const bool durable = flags.durability != "none";
    if (durable) {
      options.wal_path = flags.wal_path;
      options.fsync_wal = flags.durability == "wal-fsync";
    }
    if (flags.engine == "PagedLiveGraph") {
      // Out-of-core configuration: the engine owns a page-cache simulator
      // charging device latencies for the byte ranges scans really walk.
      // Durable restarts recover exactly like the plain engine.
      if (durable) {
        return std::make_unique<LiveGraphStore>(
            Graph::Recover(options, flags.checkpoint_dir),
            PageCacheSim::Optane(flags.page_cache_pages));
      }
      return std::make_unique<LiveGraphStore>(
          options, PageCacheSim::Optane(flags.page_cache_pages));
    }
    if (flags.shards > 1) {
      ShardOptions sharded;
      sharded.shards = flags.shards;
      sharded.graph = options;
      sharded.graph.wal_path.clear();
      if (durable) {
        // --wal-path is the sharded durable DIRECTORY; restart == recover
        // (a fresh directory recovers to an empty store).
        sharded.dir = flags.wal_path;
        return ShardedStore::Recover(std::move(sharded));
      }
      return std::make_unique<ShardedStore>(sharded);
    }
    if (durable) {
      // Restart path (§6): checkpoint (if any) + WAL tail replay.
      return std::make_unique<LiveGraphStore>(
          Graph::Recover(options, flags.checkpoint_dir));
    }
    return std::make_unique<LiveGraphStore>(options);
  }
  if (flags.engine == "BTree") return std::make_unique<BTreeStore>();
  if (flags.engine == "LSMT") return std::make_unique<LsmtStore>();
  if (flags.engine == "LinkedList") {
    return std::make_unique<LinkedListStore>();
  }
  return nullptr;
}

/// Binds the /metrics endpoint when --metrics-port is given. False only on
/// a bind failure — an operator who asked for scrapes must not silently
/// run without them.
bool StartMetricsEndpoint(const Flags& flags,
                          livegraph::MetricsHttpServer* http) {
  if (flags.metrics_port < 0) return true;
  if (!http->Start(flags.host,
                   static_cast<uint16_t>(flags.metrics_port))) {
    livegraph::logging::LogLine("server.metrics_bind_failed")
        .Str("host", flags.host)
        .I64("port", flags.metrics_port);
    return false;
  }
  return true;
}

/// Shared serve loop: sleep in 200 ms ticks (signals interrupt promptly
/// enough for a CLI) until SIGINT/SIGTERM, dumping the slow-op trace ring
/// to stderr whenever SIGUSR1 arrived.
void RunUntilSignal() {
  std::signal(SIGINT, HandleInt);
  std::signal(SIGTERM, HandleTerm);
  std::signal(SIGUSR1, HandleUsr1);
  while (g_stop == 0 && g_term == 0) {
    if (g_dump_slow != 0) {
      g_dump_slow = 0;
      livegraph::metrics::SlowOpRing::Instance().DumpToStderr();
    }
    struct timespec tick = {0, 200'000'000};
    nanosleep(&tick, nullptr);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Env-var spec (LIVEGRAPH_FAULTS) first, so an explicit --faults= below
  // overrides it.
  livegraph::faults::ConfigureFromEnv();
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (TakeValue(argv[i], "--engine", &flags.engine) ||
        TakeValue(argv[i], "--host", &flags.host) ||
        TakeValue(argv[i], "--durability", &flags.durability) ||
        TakeValue(argv[i], "--wal-path", &flags.wal_path) ||
        TakeValue(argv[i], "--checkpoint-dir", &flags.checkpoint_dir) ||
        TakeValue(argv[i], "--storage-path", &flags.storage_path) ||
        TakeValue(argv[i], "--replica-of", &flags.replica_of) ||
        TakeValue(argv[i], "--replica-dir", &flags.replica_dir)) {
      continue;
    }
    if (TakeValue(argv[i], "--port", &value)) {
      flags.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (TakeValue(argv[i], "--shards", &value)) {
      flags.shards = std::atoi(value.c_str());
    } else if (TakeValue(argv[i], "--max-vertices", &value)) {
      flags.max_vertices = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (TakeValue(argv[i], "--page-cache-pages", &value)) {
      flags.page_cache_pages = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (TakeValue(argv[i], "--scan-batch-edges", &value)) {
      flags.scan_batch_edges =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (TakeValue(argv[i], "--reactors", &value)) {
      flags.reactors = std::atoi(value.c_str());
      if (flags.reactors < -1) return Usage(argv[0]);
    } else if (TakeValue(argv[i], "--workers", &value)) {
      flags.workers = std::atoi(value.c_str());
      if (flags.workers < 0) return Usage(argv[0]);
    } else if (TakeValue(argv[i], "--idle-timeout-ms", &value)) {
      flags.idle_timeout_ms = std::atoll(value.c_str());
      if (flags.idle_timeout_ms < 0) return Usage(argv[0]);
    } else if (TakeValue(argv[i], "--replica-checkpoint-epochs", &value)) {
      flags.replica_checkpoint_epochs = std::atoll(value.c_str());
    } else if (TakeValue(argv[i], "--drain-deadline-ms", &value)) {
      flags.drain_deadline_ms = std::atoll(value.c_str());
    } else if (TakeValue(argv[i], "--metrics-port", &value)) {
      flags.metrics_port = std::atoi(value.c_str());
      if (flags.metrics_port < 0 || flags.metrics_port > 65535) {
        return Usage(argv[0]);
      }
    } else if (TakeValue(argv[i], "--slow-op-ms", &value)) {
      flags.slow_op_ms = std::atoll(value.c_str());
      if (flags.slow_op_ms < 0) return Usage(argv[0]);
    } else if (TakeValue(argv[i], "--faults", &value)) {
      std::string error;
      if (!livegraph::faults::Configure(value, &error)) {
        std::fprintf(stderr, "--faults: %s\n", error.c_str());
        return 2;
      }
      if (!livegraph::faults::Enabled()) {
        std::fprintf(stderr,
                     "--faults ignored: build with -DLIVEGRAPH_FAULTS=ON\n");
      }
    } else {
      return Usage(argv[0]);
    }
  }
  if (flags.durability != "none" && flags.durability != "wal" &&
      flags.durability != "wal-fsync") {
    return Usage(argv[0]);
  }
  if (flags.shards < 1 ||
      (flags.shards > 1 && flags.engine != "LiveGraph")) {
    std::fprintf(stderr, "--shards=N requires N >= 1 and --engine=LiveGraph\n");
    return Usage(argv[0]);
  }
  livegraph::metrics::SlowOpRing::Instance().set_threshold_nanos(
      static_cast<uint64_t>(flags.slow_op_ms) * 1'000'000u);

  // --- Follower mode: subscribe to a primary, serve reads only ---
  if (!flags.replica_of.empty()) {
    livegraph::Replica::Options replica_options;
    if (!ParseHostPort(flags.replica_of, &replica_options.primary_host,
                       &replica_options.primary_port)) {
      std::fprintf(stderr, "--replica-of wants HOST:PORT\n");
      return Usage(argv[0]);
    }
    replica_options.dir = flags.replica_dir;
    replica_options.graph.max_vertices = flags.max_vertices;
    replica_options.checkpoint_every_epochs =
        flags.replica_checkpoint_epochs;
    livegraph::Replica replica(replica_options);
    replica.Start();

    livegraph::GraphServer::Options options;
    options.host = flags.host;
    options.port = flags.port;
    options.scan_batch_edges = flags.scan_batch_edges;
    options.reactors = flags.reactors;
    options.workers = flags.workers;
    options.idle_timeout_ms = flags.idle_timeout_ms;
    options.frontier = &replica.frontier();
    livegraph::GraphServer server(replica.store(), options);
    if (!server.Start()) {
      livegraph::logging::LogLine("server.bind_failed")
          .Str("host", flags.host)
          .I64("port", flags.port);
      return 1;
    }
    livegraph::MetricsHttpServer metrics_http;
    if (!StartMetricsEndpoint(flags, &metrics_http)) return 1;
    {
      livegraph::logging::LogLine line("server.start");
      line.Str("role", "follower")
          .Str("primary", flags.replica_of)
          .Str("host", flags.host)
          .U64("port", server.port())
          .I64("reactors", server.resolved_reactors())
          .Str("sha", livegraph::kBuildGitSha)
          .Str("build", livegraph::kBuildType)
          .Str("build_flags", livegraph::kBuildFlags)
          .I64("slow_op_ms", flags.slow_op_ms);
      if (flags.metrics_port >= 0) line.U64("metrics_port", metrics_http.port());
    }

    RunUntilSignal();
    livegraph::logging::LogLine("server.stop")
        .Str("role", "follower")
        .Bool("drain", g_term != 0)
        .I64("frontier", replica.frontier().Frontier());
    if (g_term != 0) {
      // Graceful: finish serving in-flight reads before detaching from
      // the primary (Replica::Stop persists nothing extra — its cadence
      // checkpoints already bound the re-stream on restart).
      server.Drain(flags.drain_deadline_ms);
    } else {
      server.Stop();
    }
    replica.Stop();
    return 0;
  }

  std::unique_ptr<livegraph::Store> engine = MakeEngine(flags);
  if (engine == nullptr) {
    std::fprintf(stderr, "unknown engine '%s'\n", flags.engine.c_str());
    return Usage(argv[0]);
  }

  livegraph::GraphServer::Options options;
  options.host = flags.host;
  options.port = flags.port;
  options.scan_batch_edges = flags.scan_batch_edges;
  options.reactors = flags.reactors;
  options.workers = flags.workers;
  options.idle_timeout_ms = flags.idle_timeout_ms;
  // A durable LiveGraph primary accepts follower subscriptions; the hub
  // stays inert (and kSubscribe answers kUnavailable) for volatile or
  // baseline engines.
  livegraph::ReplicationHub hub;
  std::unique_ptr<livegraph::DomainFrontier> frontier;
  if (hub.Attach(*engine)) {
    options.replication = &hub;
    frontier = std::make_unique<livegraph::DomainFrontier>(hub.domain());
    options.frontier = frontier.get();
  }
  livegraph::GraphServer server(*engine, options);
  if (!server.Start()) {
    livegraph::logging::LogLine("server.bind_failed")
        .Str("host", flags.host)
        .I64("port", flags.port);
    return 1;
  }
  livegraph::MetricsHttpServer metrics_http;
  if (!StartMetricsEndpoint(flags, &metrics_http)) return 1;
  {
    livegraph::logging::LogLine line("server.start");
    line.Str("role", "primary")
        .Str("engine", engine->Name())
        .I64("shards", flags.shards)
        .Str("durability", flags.durability)
        .Bool("replication", hub.attached())
        .Str("host", flags.host)
        .U64("port", server.port())
        .I64("reactors", server.resolved_reactors())
        .Str("sha", livegraph::kBuildGitSha)
        .Str("build", livegraph::kBuildType)
        .Str("build_flags", livegraph::kBuildFlags)
        .I64("slow_op_ms", flags.slow_op_ms);
    if (flags.metrics_port >= 0) line.U64("metrics_port", metrics_http.port());
  }

  RunUntilSignal();
  if (g_term != 0) {
    // Graceful SIGTERM drain: stop accepting, let in-flight requests
    // finish (bounded), then take a final checkpoint so a clean restart
    // replays (almost) no WAL tail. A degraded engine skips the
    // checkpoint — its last good one must stay authoritative.
    livegraph::logging::LogLine("server.drain")
        .U64("connections", server.active_connections())
        .I64("deadline_ms", flags.drain_deadline_ms);
    server.Drain(flags.drain_deadline_ms);
    if (auto* sharded =
            dynamic_cast<livegraph::ShardedStore*>(engine.get())) {
      if (sharded->degraded_status() == livegraph::Status::kOk) {
        sharded->Checkpoint();
      }
    } else if (auto* live =
                   dynamic_cast<livegraph::LiveGraphStore*>(engine.get());
               live != nullptr && !flags.checkpoint_dir.empty()) {
      if (live->graph().degraded_status() == livegraph::Status::kOk) {
        live->graph().Checkpoint(flags.checkpoint_dir);
      }
    }
    livegraph::logging::LogLine("server.stop")
        .Str("role", "primary")
        .Bool("drain", true);
    return 0;
  }
  livegraph::logging::LogLine("server.stop")
      .Str("role", "primary")
      .Bool("drain", false)
      .U64("connections", server.active_connections());
  server.Stop();
  return 0;
}
