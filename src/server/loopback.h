// Loopback deployment: an engine, a GraphServer bound to an ephemeral
// localhost port, and a RemoteStore dialed back into it, packaged as one
// Store. This is how the conformance suite and the server bench exercise
// the full network stack in-process — every request really crosses the
// TCP loopback, frames, CRCs and all.
#ifndef LIVEGRAPH_SERVER_LOOPBACK_H_
#define LIVEGRAPH_SERVER_LOOPBACK_H_

#include <memory>

#include "api/store.h"
#include "server/graph_server.h"
#include "server/remote_store.h"

namespace livegraph {

struct ShardOptions;

/// Wraps `engine` behind a loopback GraphServer + RemoteStore. All Store
/// calls go through the wire. Null if the server cannot bind or the
/// client cannot connect. `server_options.port` is overridden to 0
/// (ephemeral) unless explicitly set.
std::unique_ptr<Store> MakeLoopbackStore(
    std::unique_ptr<Store> engine,
    GraphServer::Options server_options = {});

/// The full replication topology over loopback TCP, packaged as one Store
/// (docs/REPLICATION.md): a durable sharded PRIMARY (recovered from
/// `primary_options.dir`, which must be set) serving writes with a
/// replication hub attached, a FOLLOWER subscribed to it (durable under
/// `replica_dir` when non-empty), and a RemoteStore client that sends
/// writes to the primary and read sessions to the follower carrying the
/// read-your-epoch bound. Blocks until the follower has bootstrapped.
/// Null on any bind/connect/bootstrap failure. Caller owns both
/// directories' cleanup.
std::unique_ptr<Store> MakeReplicatedLoopbackStore(
    const ShardOptions& primary_options, const std::string& replica_dir);

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_LOOPBACK_H_
