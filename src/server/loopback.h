// Loopback deployment: an engine, a GraphServer bound to an ephemeral
// localhost port, and a RemoteStore dialed back into it, packaged as one
// Store. This is how the conformance suite and the server bench exercise
// the full network stack in-process — every request really crosses the
// TCP loopback, frames, CRCs and all.
#ifndef LIVEGRAPH_SERVER_LOOPBACK_H_
#define LIVEGRAPH_SERVER_LOOPBACK_H_

#include <memory>

#include "api/store.h"
#include "server/graph_server.h"
#include "server/remote_store.h"

namespace livegraph {

/// Wraps `engine` behind a loopback GraphServer + RemoteStore. All Store
/// calls go through the wire. Null if the server cannot bind or the
/// client cannot connect. `server_options.port` is overridden to 0
/// (ephemeral) unless explicitly set.
std::unique_ptr<Store> MakeLoopbackStore(
    std::unique_ptr<Store> engine,
    GraphServer::Options server_options = {});

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_LOOPBACK_H_
