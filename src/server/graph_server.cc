#include "server/graph_server.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "replication/replication_hub.h"
#include "server/reactor.h"
#include "server/session.h"
#include "server/wire.h"
#include "storage/wal_reader.h"
#include "util/fault_injection.h"
#include "util/metrics.h"

namespace livegraph {

namespace {

/// Non-kOk subscribe replies, labelled by status (the request/response
/// path counts its own errors inside ServerSession).
void CountReplyError(Status status) {
  metrics::Registry::Instance()
      .GetCounter(std::string("livegraph_server_errors_total{status=\"") +
                  StatusName(status) + "\"}")
      .Add();
}

/// Writes replies straight to the socket; never throttles, so every
/// ServerSession::Handle call completes inline (no async outcomes).
class BlockingSink : public ServerSession::Sink {
 public:
  BlockingSink(Socket* socket, std::string* scratch)
      : socket_(socket), scratch_(scratch) {}

  bool SendFrame(MsgType type, uint8_t flags,
                 std::string_view body) override {
    return socket_->WriteFrame(type, flags, body, scratch_);
  }

 private:
  Socket* socket_;
  std::string* scratch_;
};

}  // namespace

// One blocking connection thread. In legacy mode it is the whole
// transport: read a frame, hand it to the ServerSession, repeat. In
// reactor mode it exists only for adopted replication subscriptions — the
// reactor passes the socket (blocking again) plus the kSubscribe frame as
// `first`, and the thread runs the push stream.
class GraphServer::Connection {
 public:
  Connection(GraphServer* server, Socket socket)
      : server_(server), socket_(std::move(socket)) {}

  Connection(GraphServer* server, Socket socket, Frame first)
      : server_(server),
        socket_(std::move(socket)),
        first_(std::move(first)),
        has_first_(true) {}

  void Start() {
    thread_ = std::thread([this] { Run(); });
  }

  void ShutdownSocket() { socket_.Shutdown(); }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }
  bool done() const { return done_.load(std::memory_order_acquire); }

 private:
  void Run() {
    // relaxed (both edges): active_connections_ is an observability gauge;
    // connection lifetime is ordered by done_/Join, not this counter.
    server_->active_connections_.fetch_add(1, std::memory_order_relaxed);
    {
      ServerSession::Config config;
      config.store = &server_->store_;
      config.scan_batch_edges = server_->options_.scan_batch_edges;
      config.scan_batch_bytes = server_->options_.scan_batch_bytes;
      config.frontier = server_->options_.frontier;
      config.offload = false;
      ServerSession session(config);
      BlockingSink sink(&socket_, &send_scratch_);
      Frame request;
      bool have_frame = has_first_;
      if (have_frame) request = std::move(first_);
      while (have_frame || socket_.ReadFrame(&request)) {
        have_frame = false;
        ServerSession::Outcome outcome = session.Handle(request, &sink);
        if (outcome == ServerSession::Outcome::kDone) continue;
        if (outcome == ServerSession::Outcome::kSubscribe) {
          WireReader reader(request.body);
          HandleSubscribe(reader);
        }
        break;  // kClose, or a finished subscription
      }
      // Destroying the session aborts open write sessions and releases
      // read sessions (latches, snapshots) — a vanished client holds
      // nothing.
    }
    // Shutdown only — never Close() here: GraphServer::Stop() may call
    // ShutdownSocket() concurrently, and closing would both race on fd_
    // and free the descriptor number for reuse while Stop still holds it.
    // The fd is released by the Socket destructor, after Join().
    socket_.Shutdown();
    server_->active_connections_.fetch_sub(1, std::memory_order_relaxed);
    done_.store(true, std::memory_order_release);
  }

  // --- Reply plumbing (subscription handshake only) -----------------------

  WireWriter BeginReply(Status status) {
    if (status != Status::kOk) CountReplyError(status);
    reply_body_.clear();
    WireWriter writer(&reply_body_);
    writer.PutU8(StatusToWire(status));
    return writer;
  }

  bool SendReply(uint8_t flags = kFlagNone) {
    return socket_.WriteFrame(MsgType::kReply, flags, reply_body_,
                              &send_scratch_);
  }

  bool ReplyStatus(Status status, uint8_t flags = kFlagNone) {
    BeginReply(status);
    return SendReply(flags);
  }

  // --- Replication (docs/REPLICATION.md) ----------------------------------

  /// Converts the connection into a follower push stream: catch-up phase
  /// (snapshot or WAL-file range, per the hub's tier), then live batches
  /// until either side goes away. Always returns false — a subscription
  /// connection never reverts to request/response.
  bool HandleSubscribe(WireReader& reader) {
    int64_t from_epoch;
    uint32_t follower_shards;
    if (!reader.GetI64(&from_epoch) || !reader.GetU32(&follower_shards) ||
        !reader.Exhausted()) {
      return false;
    }
    ReplicationHub* hub = server_->options_.replication;
    if (hub == nullptr || !hub->attached()) {
      ReplyStatus(Status::kUnavailable);
      return false;
    }
    ReplicationHub::Subscription sub;
    if (!hub->Subscribe(from_epoch, follower_shards, &sub)) {
      ReplyStatus(Status::kUnavailable);
      return false;
    }
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutU32(static_cast<uint32_t>(hub->num_shards()));
    writer.PutU8(sub.need_snapshot ? 1 : 0);
    writer.PutI64(sub.need_snapshot ? sub.filter : 0);
    bool ok = SendReply();
    if (ok && sub.need_snapshot) ok = StreamSnapshot(hub, &sub);
    if (ok && sub.need_disk) ok = StreamWalRange(hub, sub);
    if (ok) PushLoop(hub, sub);
    hub->Unsubscribe(&sub);
    return false;
  }

  /// Tier C: exports every shard's pinned snapshot as synthetic WAL
  /// payload chunks, one kSnapshotBatch frame per chunk, then an empty
  /// end-of-stream frame. Releases the pins as it goes.
  bool StreamSnapshot(ReplicationHub* hub,
                      ReplicationHub::Subscription* sub) {
    for (int s = 0; s < hub->num_shards(); ++s) {
      bool ok = true;
      hub->shard_graph(s)->ExportSnapshot(
          sub->snapshots[static_cast<size_t>(s)],
          [&](std::string_view payload) {
            if (!ok) return;
            batch_body_.clear();
            WireWriter writer(&batch_body_);
            writer.PutU32(static_cast<uint32_t>(s));
            writer.PutBytes(payload);
            ok = socket_.WriteFrame(MsgType::kSnapshotBatch, kFlagNone,
                                    batch_body_, &send_scratch_);
          });
      if (!ok) return false;
    }
    sub->snapshots.clear();  // release the pins before going live
    batch_body_.clear();
    WireWriter writer(&batch_body_);
    writer.PutU32(0);
    writer.PutBytes(std::string_view());
    return socket_.WriteFrame(MsgType::kSnapshotBatch, kFlagEndOfStream,
                              batch_body_, &send_scratch_);
  }

  /// Tier B: ships WAL-file records with epoch in (disk_from, filter],
  /// gathered across shards and sorted by epoch so batch frontiers can
  /// advance incrementally (a frontier only ever covers fully-shipped
  /// epochs).
  bool StreamWalRange(ReplicationHub* hub,
                      const ReplicationHub::Subscription& sub) {
    struct DiskRecord {
      timestamp_t epoch;
      uint32_t participants;
      uint32_t shard;
      std::string payload;
    };
    std::vector<DiskRecord> records;
    for (int s = 0; s < hub->num_shards(); ++s) {
      WalReader wal(hub->wal_path(s));
      WalRecordView view;
      while (wal.Next(&view)) {
        if (view.epoch > sub.disk_from && view.epoch <= sub.filter) {
          records.push_back(DiskRecord{
              view.epoch, view.participants, static_cast<uint32_t>(s),
              std::string(reinterpret_cast<const char*>(view.payload),
                          view.payload_len)});
        }
      }
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const DiskRecord& a, const DiskRecord& b) {
                       return a.epoch < b.epoch;
                     });
    constexpr size_t kDiskBatchBytes = 256u << 10;
    size_t at = 0;
    do {
      const size_t begin = at;
      size_t bytes = 0;
      uint32_t count = 0;
      while (at < records.size() &&
             (count == 0 || bytes + records[at].payload.size() <=
                                kDiskBatchBytes)) {
        bytes += records[at].payload.size();
        ++count;
        ++at;
      }
      // Every epoch strictly below the next unshipped record is complete;
      // once everything shipped, the whole (disk_from, filter] range is.
      const timestamp_t frontier =
          at < records.size() ? records[at].epoch - 1 : sub.filter;
      batch_body_.clear();
      WireWriter writer(&batch_body_);
      writer.PutI64(frontier);
      writer.PutU32(count);
      for (size_t i = begin; i < at; ++i) {
        writer.PutI64(records[i].epoch);
        writer.PutU32(records[i].participants);
        writer.PutU32(records[i].shard);
        writer.PutBytes(records[i].payload);
      }
      if (!socket_.WriteFrame(MsgType::kLogBatch, kFlagNone, batch_body_,
                              &send_scratch_)) {
        return false;
      }
    } while (at < records.size());
    return true;
  }

  /// The live phase: drain follower acks (poll, no second thread), sample
  /// the visibility frontier, fetch buffered records past the filter, and
  /// push one kLogBatch. The frontier is sampled BEFORE the fetch
  /// (tee-before-visible: every record of an epoch <= it is in the buffer
  /// at that point), and while a fetch is truncated (`more`) the shipped
  /// frontier holds — epochs at or below the sample may still be in the
  /// remainder. On kTimeout the batch degrades to a frontier heartbeat,
  /// safe for the same reason: a pending record of a covered epoch would
  /// have been returned.
  void PushLoop(ReplicationHub* hub,
                const ReplicationHub::Subscription& sub) {
    timestamp_t last_sent = sub.filter;
    std::vector<ReplicationLog::Entry> entries;
    int idle_rounds = 0;
    while (server_->running_.load(std::memory_order_acquire)) {
      if (LIVEGRAPH_FAULT("repl.push")) {
        // Injected push failure: tear the stream; the follower notices the
        // dead socket, reconnects, and resubscribes from its frontier.
        socket_.Shutdown();
        return;
      }
      while (socket_.Readable(0)) {
        Frame ack;
        if (!socket_.ReadFrame(&ack)) return;
        if (ack.type != MsgType::kFrontierAck) return;
        WireReader ack_reader(ack.body);
        int64_t acked;
        if (!ack_reader.GetI64(&acked) || !ack_reader.Exhausted()) return;
        hub->NoteFollowerAck(acked);
      }
      const timestamp_t sampled = hub->domain()->visible();
      bool more = false;
      ReplicationLog::FetchStatus status =
          hub->log().Fetch(sub.cursor, sub.filter, /*max_bytes=*/2u << 20,
                           /*timeout_ms=*/500, &entries, &more);
      if (status == ReplicationLog::FetchStatus::kLapped ||
          status == ReplicationLog::FetchStatus::kClosed) {
        return;  // dropped; the follower resubscribes (snapshot tier)
      }
      const timestamp_t frontier =
          (status == ReplicationLog::FetchStatus::kOk && more)
              ? last_sent
              : std::max(sampled, last_sent);
      if (entries.empty() && frontier == last_sent) {
        // Quiet stream: every few idle fetch rounds, send an empty
        // LOG_BATCH heartbeat anyway. The follower's blocking read is
        // then bounded — it can always tell "idle primary" from "dead
        // primary", and its Stop() never waits on a silent socket.
        if (++idle_rounds < 4) continue;
      }
      idle_rounds = 0;
      batch_body_.clear();
      WireWriter writer(&batch_body_);
      writer.PutI64(frontier);
      writer.PutU32(static_cast<uint32_t>(entries.size()));
      for (const ReplicationLog::Entry& entry : entries) {
        writer.PutI64(entry.epoch);
        writer.PutU32(entry.participants);
        writer.PutU32(entry.shard);
        writer.PutBytes(entry.payload);
      }
      if (!socket_.WriteFrame(MsgType::kLogBatch, kFlagNone, batch_body_,
                              &send_scratch_)) {
        return;
      }
      last_sent = frontier;
    }
  }

  GraphServer* server_;
  Socket socket_;
  std::thread thread_;
  std::atomic<bool> done_{false};
  Frame first_;
  bool has_first_ = false;

  // Reused per-connection buffers: steady state sends allocate nothing.
  std::string reply_body_;
  std::string batch_body_;
  std::string send_scratch_;
};

GraphServer::GraphServer(Store& store, Options options)
    : store_(store), options_(std::move(options)) {}

GraphServer::~GraphServer() { Stop(); }

bool GraphServer::Start() {
  listener_ = ListenTcp(options_.host, options_.port, &port_);
  if (!listener_.valid()) return false;
  auto& registry = metrics::Registry::Instance();
  // Eagerly register the gauges scrapes key on, so they exist (at 0) from
  // the first snapshot instead of appearing after the first event.
  registry.GetGauge("livegraph_degraded");
  registry.GetGauge("livegraph_server_open_txns");

  resolved_reactors_ = options_.reactors;
  if (resolved_reactors_ < 0) {
    unsigned hw = std::thread::hardware_concurrency();
    resolved_reactors_ = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (resolved_reactors_ > 0) {
    ReactorGroup::Options group;
    group.reactors = resolved_reactors_;
    group.workers = options_.workers > 0 ? options_.workers
                                         : std::max(2, resolved_reactors_);
    group.write_high_water = options_.write_high_water;
    group.write_low_water =
        std::min(options_.write_low_water, options_.write_high_water);
    group.idle_timeout_ms = options_.idle_timeout_ms;
    group.write_stall_timeout_ms = options_.io_timeout_ms;
    group.session.store = &store_;
    group.session.scan_batch_edges = options_.scan_batch_edges;
    group.session.scan_batch_bytes = options_.scan_batch_bytes;
    group.session.frontier = options_.frontier;
    reactor_group_ = std::make_unique<ReactorGroup>(
        std::move(group), [this](Socket socket, Frame frame) {
          AdoptSubscription(std::move(socket), std::move(frame));
        });
    if (!reactor_group_->Start()) {
      reactor_group_.reset();
      listener_.Close();
      return false;
    }
  }

  // The probe registers after the reactor group exists: it reads
  // reactor_group_ from scrape threads.
  metrics::Gauge& connections =
      registry.GetGauge("livegraph_server_connections");
  metrics_probe_ = registry.AddProbe([this, &connections] {
    connections.Set(static_cast<int64_t>(active_connections()));
  });

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void GraphServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    Socket conn = AcceptTcp(listener_);
    if (!conn.valid()) break;  // listener shut down (or fatal error)
    // Send deadline only: a hung peer fails its connection thread's writes
    // instead of wedging it. Receives stay unbounded — an idle client
    // parked between requests is normal, not a fault. (Non-blocking
    // reactor I/O ignores the deadline, but an adopted subscription socket
    // reverts to blocking sends and inherits it.)
    conn.SetSendTimeout(options_.io_timeout_ms);
    static metrics::Counter& rx = metrics::Registry::Instance().GetCounter(
        "livegraph_server_rx_bytes_total");
    static metrics::Counter& tx = metrics::Registry::Instance().GetCounter(
        "livegraph_server_tx_bytes_total");
    conn.SetByteCounters(&rx, &tx);
    if (reactor_group_ != nullptr) {
      reactor_group_->AddConnection(std::move(conn));
      continue;
    }
    std::lock_guard<std::mutex> lock(connections_mu_);
    // Reap finished connections so a long-lived server with connection
    // churn doesn't accumulate dead session objects.
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i]->done()) {
        connections_[i]->Join();
        connections_.erase(connections_.begin() +
                           static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    connections_.push_back(
        std::make_unique<Connection>(this, std::move(conn)));
    connections_.back()->Start();
  }
}

void GraphServer::AdoptSubscription(Socket socket, Frame frame) {
  std::lock_guard<std::mutex> lock(connections_mu_);
  // Checked under the lock: Stop() flips running_ before it swaps the
  // connection list out (also under the lock), so either this connection
  // lands in the list Stop() joins, or it is dropped here.
  if (!running_.load(std::memory_order_acquire)) return;
  connections_.push_back(std::make_unique<Connection>(
      this, std::move(socket), std::move(frame)));
  connections_.back()->Start();
}

size_t GraphServer::active_connections() const {
  size_t total = active_connections_.load(std::memory_order_relaxed);
  if (reactor_group_ != nullptr) {
    total += reactor_group_->active_connections();
  }
  return total;
}

void GraphServer::Drain(int64_t deadline_ms) {
  if (!running_.load(std::memory_order_acquire)) return;
  // Stop accepting immediately: shut the listener down and collect the
  // accept thread, but leave running_ set so in-flight sessions (on either
  // transport) keep serving until they finish or the deadline lands.
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (active_connections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Whatever remains (hung clients, replication push streams — which never
  // end voluntarily) is torn down the hard way.
  Stop();
}

void GraphServer::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (!was_running) return;
  if (metrics_probe_ != 0) {
    // Blocks out any in-flight Collect() before `this` can go away.
    metrics::Registry::Instance().RemoveProbe(metrics_probe_);
    metrics_probe_ = 0;
  }
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Reactors first: their connections close and any in-flight offloaded
  // commits drain inside ReactorGroup::Stop(). Blocking threads
  // (subscriptions, legacy mode) see running_ false and unwind once their
  // sockets are shut.
  if (reactor_group_ != nullptr) reactor_group_->Stop();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) connection->ShutdownSocket();
  for (auto& connection : connections) connection->Join();
  // reactor_group_ stays allocated (threads joined, zero connections) so
  // concurrent active_connections() readers never race its teardown; the
  // destructor frees it.
}

}  // namespace livegraph
