#include "server/graph_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "replication/epoch_frontier.h"
#include "replication/replication_hub.h"
#include "server/stats_codec.h"
#include "server/wire.h"
#include "storage/wal_reader.h"
#include "util/fault_injection.h"
#include "util/metrics.h"

namespace livegraph {

namespace {

// Per-opcode request counter + latency histogram, resolved once per opcode
// (thread-safe static locals) so the steady-state dispatch cost is two
// pointer loads, not a registry map lookup.
struct OpMetrics {
  const char* name;
  metrics::Counter& requests;
  metrics::Histogram& latency;
};

OpMetrics MakeOpMetrics(const char* op) {
  auto& registry = metrics::Registry::Instance();
  std::string label = std::string("{op=\"") + op + "\"}";
  return OpMetrics{
      op,
      registry.GetCounter("livegraph_server_requests_total" + label),
      registry.GetHistogram("livegraph_server_op_latency" + label,
                            metrics::Unit::kNanos)};
}

const OpMetrics* OpMetricsFor(MsgType type) {
#define LIVEGRAPH_OP_METRICS(TYPE, NAME)                \
  case MsgType::TYPE: {                                 \
    static OpMetrics metrics = MakeOpMetrics(NAME);     \
    return &metrics;                                    \
  }
  switch (type) {
    LIVEGRAPH_OP_METRICS(kHello, "HELLO")
    LIVEGRAPH_OP_METRICS(kBeginTxn, "BEGIN_TXN")
    LIVEGRAPH_OP_METRICS(kBeginReadTxn, "BEGIN_READ_TXN")
    LIVEGRAPH_OP_METRICS(kCommit, "COMMIT")
    LIVEGRAPH_OP_METRICS(kAbort, "ABORT")
    LIVEGRAPH_OP_METRICS(kEndRead, "END_READ")
    LIVEGRAPH_OP_METRICS(kGetNode, "GET_NODE")
    LIVEGRAPH_OP_METRICS(kGetLink, "GET_LINK")
    LIVEGRAPH_OP_METRICS(kScanLinks, "SCAN_LINKS")
    LIVEGRAPH_OP_METRICS(kCountLinks, "COUNT_LINKS")
    LIVEGRAPH_OP_METRICS(kVertexCount, "VERTEX_COUNT")
    LIVEGRAPH_OP_METRICS(kAddNode, "ADD_NODE")
    LIVEGRAPH_OP_METRICS(kUpdateNode, "UPDATE_NODE")
    LIVEGRAPH_OP_METRICS(kDeleteNode, "DELETE_NODE")
    LIVEGRAPH_OP_METRICS(kAddLink, "ADD_LINK")
    LIVEGRAPH_OP_METRICS(kUpdateLink, "UPDATE_LINK")
    LIVEGRAPH_OP_METRICS(kDeleteLink, "DELETE_LINK")
    LIVEGRAPH_OP_METRICS(kBeginReadTxnAt, "BEGIN_READ_TXN_AT")
    LIVEGRAPH_OP_METRICS(kStats, "STATS")
    default:
      // kSubscribe converts the connection into a push stream (its latency
      // is the stream lifetime, not a request) and response types are
      // protocol violations — neither belongs in the op histograms.
      return nullptr;
  }
#undef LIVEGRAPH_OP_METRICS
}

/// Non-kOk replies, labelled by status. Looked up per error (registry map
/// under its mutex): errors are rare, and this keeps one chokepoint
/// instead of a static per status value.
void CountReplyError(Status status) {
  metrics::Registry::Instance()
      .GetCounter(std::string("livegraph_server_errors_total{status=\"") +
                  StatusName(status) + "\"}")
      .Add();
}

metrics::Gauge& OpenTxnsGauge() {
  static metrics::Gauge& gauge =
      metrics::Registry::Instance().GetGauge("livegraph_server_open_txns");
  return gauge;
}

}  // namespace

// One protocol session: a connection thread that owns its socket, its open
// transactions, and three reused buffers (parse is in-place over the
// receive frame; replies and scan batches build into per-connection
// strings whose capacity survives across requests).
class GraphServer::Connection {
 public:
  Connection(GraphServer* server, Socket socket)
      : server_(server), socket_(std::move(socket)) {}

  void Start() {
    thread_ = std::thread([this] { Run(); });
  }

  void ShutdownSocket() { socket_.Shutdown(); }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }
  bool done() const { return done_.load(std::memory_order_acquire); }

 private:
  // A slot in the session's transaction table. Write sessions serve reads
  // too (read-your-writes); read sessions reject mutations.
  struct OpenTxn {
    std::unique_ptr<StoreTxn> write;
    std::unique_ptr<StoreReadTxn> read;
    StoreReadTxn* AsRead() const {
      return write != nullptr ? write.get() : read.get();
    }
  };

  void Run() {
    // relaxed (both edges): active_connections_ is an observability gauge;
    // connection lifetime is ordered by done_/Join, not this counter.
    server_->active_connections_.fetch_add(1, std::memory_order_relaxed);
    Frame request;
    while (socket_.ReadFrame(&request)) {
      if (!Dispatch(request)) break;
    }
    // Destroying the table aborts open write sessions and releases read
    // sessions (latches, snapshots) — a vanished client holds nothing.
    OpenTxnsGauge().Add(-static_cast<int64_t>(txns_.size()));
    txns_.clear();
    // Shutdown only — never Close() here: GraphServer::Stop() may call
    // ShutdownSocket() concurrently, and closing would both race on fd_
    // and free the descriptor number for reuse while Stop still holds it.
    // The fd is released by the Socket destructor, after Join().
    socket_.Shutdown();
    server_->active_connections_.fetch_sub(1, std::memory_order_relaxed);
    done_.store(true, std::memory_order_release);
  }

  /// Handles one request frame with per-opcode accounting (request count,
  /// latency histogram, slow-op trace). False tears the connection down
  /// (protocol violation or dead socket).
  bool Dispatch(const Frame& request) {
    const OpMetrics* op = OpMetricsFor(request.type);
    if (op == nullptr) return DispatchInner(request);
    const uint64_t start = metrics::MonotonicNanos();
    bool keep = DispatchInner(request);
    const uint64_t elapsed = metrics::MonotonicNanos() - start;
    op->requests.Add();
    op->latency.Record(elapsed);
    auto& ring = metrics::SlowOpRing::Instance();
    if (ring.ShouldRecord(elapsed)) {
      metrics::SlowOp slow;
      slow.name = op->name;
      slow.total_nanos = elapsed;
      slow.wall_unix_micros = metrics::WallUnixMicros();
      ring.Record(std::move(slow));
    }
    return keep;
  }

  bool DispatchInner(const Frame& request) {
    WireReader reader(request.body);
    switch (request.type) {
      case MsgType::kHello: return HandleHello(reader);
      case MsgType::kBeginTxn: return HandleBegin(reader, /*write=*/true);
      case MsgType::kBeginReadTxn:
        return HandleBegin(reader, /*write=*/false);
      case MsgType::kCommit: return HandleCommit(reader);
      case MsgType::kAbort: return HandleAbort(reader);
      case MsgType::kEndRead: return HandleEndRead(reader);
      case MsgType::kGetNode: return HandleGetNode(reader);
      case MsgType::kGetLink: return HandleGetLink(reader);
      case MsgType::kScanLinks: return HandleScanLinks(reader);
      case MsgType::kCountLinks: return HandleCountLinks(reader);
      case MsgType::kVertexCount: return HandleVertexCount(reader);
      case MsgType::kAddNode: return HandleAddNode(reader);
      case MsgType::kUpdateNode: return HandleUpdateNode(reader);
      case MsgType::kDeleteNode: return HandleDeleteNode(reader);
      case MsgType::kAddLink: return HandleAddLink(reader, /*upsert=*/true);
      case MsgType::kUpdateLink:
        return HandleAddLink(reader, /*upsert=*/false);
      case MsgType::kDeleteLink: return HandleDeleteLink(reader);
      case MsgType::kSubscribe: return HandleSubscribe(reader);
      case MsgType::kBeginReadTxnAt: return HandleBeginReadTxnAt(reader);
      case MsgType::kStats: return HandleStats(reader);
      case MsgType::kFrontierAck:
        return false;  // only valid inside an established push stream
      case MsgType::kReply:
      case MsgType::kScanBatch:
      case MsgType::kSnapshotBatch:
      case MsgType::kLogBatch:
        return false;  // response types are not requests
    }
    return false;
  }

  // --- Reply plumbing -----------------------------------------------------

  /// Starts a reply body with its status byte; append the payload through
  /// the returned writer, then SendReply().
  WireWriter BeginReply(Status status) {
    if (status != Status::kOk) CountReplyError(status);
    reply_body_.clear();
    WireWriter writer(&reply_body_);
    writer.PutU8(StatusToWire(status));
    return writer;
  }

  bool SendReply(uint8_t flags = kFlagNone) {
    return socket_.WriteFrame(MsgType::kReply, flags, reply_body_,
                              &send_scratch_);
  }

  bool ReplyStatus(Status status, uint8_t flags = kFlagNone) {
    BeginReply(status);
    return SendReply(flags);
  }

  // --- Handshake ----------------------------------------------------------

  bool HandleHello(WireReader& reader) {
    uint32_t version;
    if (!reader.GetU32(&version) || !reader.Exhausted()) return false;
    if (version != kProtocolVersion) {
      ReplyStatus(Status::kUnavailable);
      return false;  // incompatible dialect: refuse loudly, then hang up
    }
    StoreTraits traits = server_->store_.Traits();
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutU32(kProtocolVersion);
    writer.PutBytes(server_->store_.Name());
    writer.PutU8(traits.time_ordered_scans ? 1 : 0);
    writer.PutU8(traits.snapshot_reads ? 1 : 0);
    writer.PutU8(traits.transactional_writes ? 1 : 0);
    return SendReply();
  }

  // --- Session lifecycle --------------------------------------------------

  bool HandleBegin(WireReader& reader, bool write) {
    if (!reader.Exhausted()) return false;
    uint64_t id = next_txn_id_++;
    OpenTxn& slot = txns_[id];
    OpenTxnsGauge().Add(1);
    if (write) {
      slot.write = server_->store_.BeginTxn();
    } else {
      slot.read = server_->store_.BeginReadTxn();
    }
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutU64(id);
    return SendReply();
  }

  bool HandleCommit(WireReader& reader) {
    uint64_t id;
    if (!reader.GetU64(&id) || !reader.Exhausted()) return false;
    auto it = txns_.find(id);
    if (it == txns_.end() || it->second.write == nullptr) {
      return ReplyStatus(Status::kNotActive);
    }
    StatusOr<timestamp_t> committed = it->second.write->Commit();
    txns_.erase(it);
    OpenTxnsGauge().Sub(1);
    if (!committed.ok()) return ReplyStatus(committed.status());
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutI64(*committed);
    return SendReply();
  }

  bool HandleAbort(WireReader& reader) {
    uint64_t id;
    if (!reader.GetU64(&id) || !reader.Exhausted()) return false;
    auto it = txns_.find(id);
    if (it == txns_.end() || it->second.write == nullptr) {
      return ReplyStatus(Status::kNotActive);
    }
    it->second.write->Abort();
    txns_.erase(it);
    OpenTxnsGauge().Sub(1);
    return ReplyStatus(Status::kOk);
  }

  bool HandleEndRead(WireReader& reader) {
    uint64_t id;
    if (!reader.GetU64(&id) || !reader.Exhausted()) return false;
    auto it = txns_.find(id);
    if (it == txns_.end() || it->second.read == nullptr) {
      return ReplyStatus(Status::kNotActive);
    }
    txns_.erase(it);  // releases the engine read session (latch, snapshot)
    OpenTxnsGauge().Sub(1);
    return ReplyStatus(Status::kOk);
  }

  // --- Reads --------------------------------------------------------------

  StoreReadTxn* FindRead(uint64_t id) {
    auto it = txns_.find(id);
    return it != txns_.end() ? it->second.AsRead() : nullptr;
  }

  StoreTxn* FindWrite(uint64_t id) {
    auto it = txns_.find(id);
    return it != txns_.end() ? it->second.write.get() : nullptr;
  }

  bool HandleGetNode(WireReader& reader) {
    uint64_t id;
    int64_t vertex;
    if (!reader.GetU64(&id) || !reader.GetI64(&vertex) ||
        !reader.Exhausted()) {
      return false;
    }
    StoreReadTxn* read = FindRead(id);
    if (read == nullptr) return ReplyStatus(Status::kNotActive);
    StatusOr<std::string> props = read->GetNode(vertex);
    if (!props.ok()) return ReplyStatus(props.status());
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutBytes(*props);
    return SendReply();
  }

  bool HandleGetLink(WireReader& reader) {
    uint64_t id;
    int64_t src, dst;
    uint16_t label;
    if (!reader.GetU64(&id) || !reader.GetI64(&src) ||
        !reader.GetU16(&label) || !reader.GetI64(&dst) ||
        !reader.Exhausted()) {
      return false;
    }
    StoreReadTxn* read = FindRead(id);
    if (read == nullptr) return ReplyStatus(Status::kNotActive);
    StatusOr<std::string> props = read->GetLink(src, label, dst);
    if (!props.ok()) return ReplyStatus(props.status());
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutBytes(*props);
    return SendReply();
  }

  bool HandleCountLinks(WireReader& reader) {
    uint64_t id;
    int64_t src;
    uint16_t label;
    if (!reader.GetU64(&id) || !reader.GetI64(&src) ||
        !reader.GetU16(&label) || !reader.Exhausted()) {
      return false;
    }
    StoreReadTxn* read = FindRead(id);
    if (read == nullptr) return ReplyStatus(Status::kNotActive);
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutU64(read->CountLinks(src, label));
    return SendReply();
  }

  bool HandleVertexCount(WireReader& reader) {
    uint64_t id;
    if (!reader.GetU64(&id) || !reader.Exhausted()) return false;
    StoreReadTxn* read = FindRead(id);
    if (read == nullptr) return ReplyStatus(Status::kNotActive);
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutI64(read->VertexCount());
    return SendReply();
  }

  // The streaming scan: walk the engine cursor once, flushing a reused
  // batch buffer whenever either budget (edges or bytes) fills. The last
  // frame carries kFlagEndOfStream; an error reply does too, so the client
  // drain rule is uniform.
  bool HandleScanLinks(WireReader& reader) {
    uint64_t id, limit;
    int64_t src;
    uint16_t label;
    if (!reader.GetU64(&id) || !reader.GetI64(&src) ||
        !reader.GetU16(&label) || !reader.GetU64(&limit) ||
        !reader.Exhausted()) {
      return false;
    }
    StoreReadTxn* read = FindRead(id);
    if (read == nullptr) {
      return ReplyStatus(Status::kNotActive, kFlagEndOfStream);
    }
    const Options& options = server_->options_;
    uint32_t batch_count = 0;
    batch_body_.clear();
    WireWriter writer(&batch_body_);
    writer.PutU32(0);  // count placeholder, patched at flush
    auto flush = [&](bool end_of_stream) {
      uint8_t count_le[4] = {
          static_cast<uint8_t>(batch_count),
          static_cast<uint8_t>(batch_count >> 8),
          static_cast<uint8_t>(batch_count >> 16),
          static_cast<uint8_t>(batch_count >> 24)};
      std::memcpy(batch_body_.data(), count_le, sizeof(count_le));
      bool sent = socket_.WriteFrame(
          MsgType::kScanBatch,
          end_of_stream ? kFlagEndOfStream : kFlagNone, batch_body_,
          &send_scratch_);
      batch_count = 0;
      batch_body_.clear();
      writer.PutU32(0);
      return sent;
    };
    for (EdgeCursor cursor = read->ScanLinks(src, label, limit);
         cursor.Valid(); cursor.Next()) {
      // Flush early if this edge would push the frame past the protocol
      // cap (possible with outsized property blobs loaded embedded); a
      // single edge that alone exceeds the cap is unrepresentable and
      // fails the WriteFrame below, closing the connection.
      size_t edge_bytes = 8 + 8 + 4 + cursor.properties().size();
      if (batch_count > 0 && batch_body_.size() + edge_bytes > kMaxFrameBody) {
        if (!flush(/*end_of_stream=*/false)) return false;
      }
      writer.PutI64(cursor.dst());
      writer.PutI64(cursor.creation_timestamp());
      writer.PutBytes(cursor.properties());
      if (++batch_count >= options.scan_batch_edges ||
          batch_body_.size() >= options.scan_batch_bytes) {
        if (!flush(/*end_of_stream=*/false)) return false;
      }
    }
    return flush(/*end_of_stream=*/true);
  }

  // --- Replication (docs/REPLICATION.md) ----------------------------------

  /// Epoch-gated read session: wait until this node's frontier covers the
  /// client's epoch, then open a plain read snapshot (which therefore
  /// includes every commit at or below it). kTimeout when the frontier
  /// does not catch up in time — the client may fail over.
  bool HandleBeginReadTxnAt(WireReader& reader) {
    int64_t min_epoch;
    uint32_t timeout_ms;
    if (!reader.GetI64(&min_epoch) || !reader.GetU32(&timeout_ms) ||
        !reader.Exhausted()) {
      return false;
    }
    EpochFrontier* frontier = server_->options_.frontier;
    if (min_epoch > 0) {
      if (frontier == nullptr) return ReplyStatus(Status::kUnavailable);
      if (!frontier->WaitCovered(min_epoch,
                                 static_cast<int64_t>(timeout_ms))) {
        return ReplyStatus(Status::kTimeout);
      }
    }
    uint64_t id = next_txn_id_++;
    txns_[id].read = server_->store_.BeginReadTxn();
    OpenTxnsGauge().Add(1);
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutU64(id);
    return SendReply();
  }

  /// STATS: collect the live registry (probes included) and reply with the
  /// versioned binary snapshot (server/stats_codec.h).
  bool HandleStats(WireReader& reader) {
    if (!reader.Exhausted()) return false;
    metrics::Snapshot snapshot = metrics::Registry::Instance().Collect();
    batch_body_.clear();
    EncodeStats(snapshot, &batch_body_);
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutBytes(batch_body_);
    return SendReply();
  }

  /// Converts the connection into a follower push stream: catch-up phase
  /// (snapshot or WAL-file range, per the hub's tier), then live batches
  /// until either side goes away. Always returns false — a subscription
  /// connection never reverts to request/response.
  bool HandleSubscribe(WireReader& reader) {
    int64_t from_epoch;
    uint32_t follower_shards;
    if (!reader.GetI64(&from_epoch) || !reader.GetU32(&follower_shards) ||
        !reader.Exhausted()) {
      return false;
    }
    ReplicationHub* hub = server_->options_.replication;
    if (hub == nullptr || !hub->attached()) {
      ReplyStatus(Status::kUnavailable);
      return false;
    }
    ReplicationHub::Subscription sub;
    if (!hub->Subscribe(from_epoch, follower_shards, &sub)) {
      ReplyStatus(Status::kUnavailable);
      return false;
    }
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutU32(static_cast<uint32_t>(hub->num_shards()));
    writer.PutU8(sub.need_snapshot ? 1 : 0);
    writer.PutI64(sub.need_snapshot ? sub.filter : 0);
    bool ok = SendReply();
    if (ok && sub.need_snapshot) ok = StreamSnapshot(hub, &sub);
    if (ok && sub.need_disk) ok = StreamWalRange(hub, sub);
    if (ok) PushLoop(hub, sub);
    hub->Unsubscribe(&sub);
    return false;
  }

  /// Tier C: exports every shard's pinned snapshot as synthetic WAL
  /// payload chunks, one kSnapshotBatch frame per chunk, then an empty
  /// end-of-stream frame. Releases the pins as it goes.
  bool StreamSnapshot(ReplicationHub* hub,
                      ReplicationHub::Subscription* sub) {
    for (int s = 0; s < hub->num_shards(); ++s) {
      bool ok = true;
      hub->shard_graph(s)->ExportSnapshot(
          sub->snapshots[static_cast<size_t>(s)],
          [&](std::string_view payload) {
            if (!ok) return;
            batch_body_.clear();
            WireWriter writer(&batch_body_);
            writer.PutU32(static_cast<uint32_t>(s));
            writer.PutBytes(payload);
            ok = socket_.WriteFrame(MsgType::kSnapshotBatch, kFlagNone,
                                    batch_body_, &send_scratch_);
          });
      if (!ok) return false;
    }
    sub->snapshots.clear();  // release the pins before going live
    batch_body_.clear();
    WireWriter writer(&batch_body_);
    writer.PutU32(0);
    writer.PutBytes(std::string_view());
    return socket_.WriteFrame(MsgType::kSnapshotBatch, kFlagEndOfStream,
                              batch_body_, &send_scratch_);
  }

  /// Tier B: ships WAL-file records with epoch in (disk_from, filter],
  /// gathered across shards and sorted by epoch so batch frontiers can
  /// advance incrementally (a frontier only ever covers fully-shipped
  /// epochs).
  bool StreamWalRange(ReplicationHub* hub,
                      const ReplicationHub::Subscription& sub) {
    struct DiskRecord {
      timestamp_t epoch;
      uint32_t participants;
      uint32_t shard;
      std::string payload;
    };
    std::vector<DiskRecord> records;
    for (int s = 0; s < hub->num_shards(); ++s) {
      WalReader wal(hub->wal_path(s));
      WalRecordView view;
      while (wal.Next(&view)) {
        if (view.epoch > sub.disk_from && view.epoch <= sub.filter) {
          records.push_back(DiskRecord{
              view.epoch, view.participants, static_cast<uint32_t>(s),
              std::string(reinterpret_cast<const char*>(view.payload),
                          view.payload_len)});
        }
      }
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const DiskRecord& a, const DiskRecord& b) {
                       return a.epoch < b.epoch;
                     });
    constexpr size_t kDiskBatchBytes = 256u << 10;
    size_t at = 0;
    do {
      const size_t begin = at;
      size_t bytes = 0;
      uint32_t count = 0;
      while (at < records.size() &&
             (count == 0 || bytes + records[at].payload.size() <=
                                kDiskBatchBytes)) {
        bytes += records[at].payload.size();
        ++count;
        ++at;
      }
      // Every epoch strictly below the next unshipped record is complete;
      // once everything shipped, the whole (disk_from, filter] range is.
      const timestamp_t frontier =
          at < records.size() ? records[at].epoch - 1 : sub.filter;
      batch_body_.clear();
      WireWriter writer(&batch_body_);
      writer.PutI64(frontier);
      writer.PutU32(count);
      for (size_t i = begin; i < at; ++i) {
        writer.PutI64(records[i].epoch);
        writer.PutU32(records[i].participants);
        writer.PutU32(records[i].shard);
        writer.PutBytes(records[i].payload);
      }
      if (!socket_.WriteFrame(MsgType::kLogBatch, kFlagNone, batch_body_,
                              &send_scratch_)) {
        return false;
      }
    } while (at < records.size());
    return true;
  }

  /// The live phase: drain follower acks (poll, no second thread), sample
  /// the visibility frontier, fetch buffered records past the filter, and
  /// push one kLogBatch. The frontier is sampled BEFORE the fetch
  /// (tee-before-visible: every record of an epoch <= it is in the buffer
  /// at that point), and while a fetch is truncated (`more`) the shipped
  /// frontier holds — epochs at or below the sample may still be in the
  /// remainder. On kTimeout the batch degrades to a frontier heartbeat,
  /// safe for the same reason: a pending record of a covered epoch would
  /// have been returned.
  void PushLoop(ReplicationHub* hub,
                const ReplicationHub::Subscription& sub) {
    timestamp_t last_sent = sub.filter;
    std::vector<ReplicationLog::Entry> entries;
    int idle_rounds = 0;
    while (server_->running_.load(std::memory_order_acquire)) {
      if (LIVEGRAPH_FAULT("repl.push")) {
        // Injected push failure: tear the stream; the follower notices the
        // dead socket, reconnects, and resubscribes from its frontier.
        socket_.Shutdown();
        return;
      }
      while (socket_.Readable(0)) {
        Frame ack;
        if (!socket_.ReadFrame(&ack)) return;
        if (ack.type != MsgType::kFrontierAck) return;
        WireReader ack_reader(ack.body);
        int64_t acked;
        if (!ack_reader.GetI64(&acked) || !ack_reader.Exhausted()) return;
        hub->NoteFollowerAck(acked);
      }
      const timestamp_t sampled = hub->domain()->visible();
      bool more = false;
      ReplicationLog::FetchStatus status =
          hub->log().Fetch(sub.cursor, sub.filter, /*max_bytes=*/2u << 20,
                           /*timeout_ms=*/500, &entries, &more);
      if (status == ReplicationLog::FetchStatus::kLapped ||
          status == ReplicationLog::FetchStatus::kClosed) {
        return;  // dropped; the follower resubscribes (snapshot tier)
      }
      const timestamp_t frontier =
          (status == ReplicationLog::FetchStatus::kOk && more)
              ? last_sent
              : std::max(sampled, last_sent);
      if (entries.empty() && frontier == last_sent) {
        // Quiet stream: every few idle fetch rounds, send an empty
        // LOG_BATCH heartbeat anyway. The follower's blocking read is
        // then bounded — it can always tell "idle primary" from "dead
        // primary", and its Stop() never waits on a silent socket.
        if (++idle_rounds < 4) continue;
      }
      idle_rounds = 0;
      batch_body_.clear();
      WireWriter writer(&batch_body_);
      writer.PutI64(frontier);
      writer.PutU32(static_cast<uint32_t>(entries.size()));
      for (const ReplicationLog::Entry& entry : entries) {
        writer.PutI64(entry.epoch);
        writer.PutU32(entry.participants);
        writer.PutU32(entry.shard);
        writer.PutBytes(entry.payload);
      }
      if (!socket_.WriteFrame(MsgType::kLogBatch, kFlagNone, batch_body_,
                              &send_scratch_)) {
        return;
      }
      last_sent = frontier;
    }
  }

  // --- Writes -------------------------------------------------------------

  bool HandleAddNode(WireReader& reader) {
    uint64_t id;
    std::string_view data;
    if (!reader.GetU64(&id) || !reader.GetBytes(&data) ||
        !reader.Exhausted()) {
      return false;
    }
    StoreTxn* txn = FindWrite(id);
    if (txn == nullptr) return ReplyStatus(Status::kNotActive);
    StatusOr<vertex_t> added = txn->AddNode(data);
    if (!added.ok()) return ReplyStatus(added.status());
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutI64(*added);
    return SendReply();
  }

  bool HandleUpdateNode(WireReader& reader) {
    uint64_t id;
    int64_t vertex;
    std::string_view data;
    if (!reader.GetU64(&id) || !reader.GetI64(&vertex) ||
        !reader.GetBytes(&data) || !reader.Exhausted()) {
      return false;
    }
    StoreTxn* txn = FindWrite(id);
    if (txn == nullptr) return ReplyStatus(Status::kNotActive);
    return ReplyStatus(txn->UpdateNode(vertex, data));
  }

  bool HandleDeleteNode(WireReader& reader) {
    uint64_t id;
    int64_t vertex;
    if (!reader.GetU64(&id) || !reader.GetI64(&vertex) ||
        !reader.Exhausted()) {
      return false;
    }
    StoreTxn* txn = FindWrite(id);
    if (txn == nullptr) return ReplyStatus(Status::kNotActive);
    return ReplyStatus(txn->DeleteNode(vertex));
  }

  bool HandleAddLink(WireReader& reader, bool upsert) {
    uint64_t id;
    int64_t src, dst;
    uint16_t label;
    std::string_view data;
    if (!reader.GetU64(&id) || !reader.GetI64(&src) ||
        !reader.GetU16(&label) || !reader.GetI64(&dst) ||
        !reader.GetBytes(&data) || !reader.Exhausted()) {
      return false;
    }
    StoreTxn* txn = FindWrite(id);
    if (txn == nullptr) return ReplyStatus(Status::kNotActive);
    if (!upsert) return ReplyStatus(txn->UpdateLink(src, label, dst, data));
    StatusOr<bool> inserted = txn->AddLink(src, label, dst, data);
    if (!inserted.ok()) return ReplyStatus(inserted.status());
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutU8(*inserted ? 1 : 0);
    return SendReply();
  }

  bool HandleDeleteLink(WireReader& reader) {
    uint64_t id;
    int64_t src, dst;
    uint16_t label;
    if (!reader.GetU64(&id) || !reader.GetI64(&src) ||
        !reader.GetU16(&label) || !reader.GetI64(&dst) ||
        !reader.Exhausted()) {
      return false;
    }
    StoreTxn* txn = FindWrite(id);
    if (txn == nullptr) return ReplyStatus(Status::kNotActive);
    return ReplyStatus(txn->DeleteLink(src, label, dst));
  }

  GraphServer* server_;
  Socket socket_;
  std::thread thread_;
  std::atomic<bool> done_{false};

  uint64_t next_txn_id_ = 1;
  std::map<uint64_t, OpenTxn> txns_;

  // Reused per-connection buffers: steady state sends allocate nothing.
  std::string reply_body_;
  std::string batch_body_;
  std::string send_scratch_;
};

GraphServer::GraphServer(Store& store, Options options)
    : store_(store), options_(std::move(options)) {}

GraphServer::~GraphServer() { Stop(); }

bool GraphServer::Start() {
  listener_ = ListenTcp(options_.host, options_.port, &port_);
  if (!listener_.valid()) return false;
  auto& registry = metrics::Registry::Instance();
  // Eagerly register the gauges scrapes key on, so they exist (at 0) from
  // the first snapshot instead of appearing after the first event.
  registry.GetGauge("livegraph_degraded");
  OpenTxnsGauge();
  metrics::Gauge& connections =
      registry.GetGauge("livegraph_server_connections");
  metrics_probe_ = registry.AddProbe([this, &connections] {
    connections.Set(static_cast<int64_t>(
        active_connections_.load(std::memory_order_relaxed)));
  });
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void GraphServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    Socket conn = AcceptTcp(listener_);
    if (!conn.valid()) break;  // listener shut down (or fatal error)
    // Send deadline only: a hung peer fails its connection thread's writes
    // instead of wedging it. Receives stay unbounded — an idle client
    // parked between requests is normal, not a fault.
    conn.SetSendTimeout(options_.io_timeout_ms);
    static metrics::Counter& rx = metrics::Registry::Instance().GetCounter(
        "livegraph_server_rx_bytes_total");
    static metrics::Counter& tx = metrics::Registry::Instance().GetCounter(
        "livegraph_server_tx_bytes_total");
    conn.SetByteCounters(&rx, &tx);
    std::lock_guard<std::mutex> lock(connections_mu_);
    // Reap finished connections so a long-lived server with connection
    // churn doesn't accumulate dead session objects.
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i]->done()) {
        connections_[i]->Join();
        connections_.erase(connections_.begin() +
                           static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    connections_.push_back(
        std::make_unique<Connection>(this, std::move(conn)));
    connections_.back()->Start();
  }
}

void GraphServer::Drain(int64_t deadline_ms) {
  if (!running_.load(std::memory_order_acquire)) return;
  // Stop accepting immediately: shut the listener down and collect the
  // accept thread, but leave running_ set so in-flight sessions keep
  // serving until they finish or the deadline lands.
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (active_connections_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Whatever remains (hung clients, replication push streams — which never
  // end voluntarily) is torn down the hard way.
  Stop();
}

void GraphServer::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (!was_running) return;
  if (metrics_probe_ != 0) {
    // Blocks out any in-flight Collect() before `this` can go away.
    metrics::Registry::Instance().RemoveProbe(metrics_probe_);
    metrics_probe_ = 0;
  }
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) connection->ShutdownSocket();
  for (auto& connection : connections) connection->Join();
}

}  // namespace livegraph
