#include "server/session.h"

#include <cstring>
#include <utility>

#include "replication/epoch_frontier.h"
#include "server/stats_codec.h"
#include "util/metrics.h"

namespace livegraph {

namespace {

// Per-opcode request counter + latency histogram, resolved once per opcode
// (thread-safe static locals) so the steady-state dispatch cost is two
// pointer loads, not a registry map lookup.
struct OpMetrics {
  const char* name;
  metrics::Counter& requests;
  metrics::Histogram& latency;
};

OpMetrics MakeOpMetrics(const char* op) {
  auto& registry = metrics::Registry::Instance();
  std::string label = std::string("{op=\"") + op + "\"}";
  return OpMetrics{
      op,
      registry.GetCounter("livegraph_server_requests_total" + label),
      registry.GetHistogram("livegraph_server_op_latency" + label,
                            metrics::Unit::kNanos)};
}

const OpMetrics* OpMetricsFor(MsgType type) {
#define LIVEGRAPH_OP_METRICS(TYPE, NAME)                \
  case MsgType::TYPE: {                                 \
    static OpMetrics metrics = MakeOpMetrics(NAME);     \
    return &metrics;                                    \
  }
  switch (type) {
    LIVEGRAPH_OP_METRICS(kHello, "HELLO")
    LIVEGRAPH_OP_METRICS(kBeginTxn, "BEGIN_TXN")
    LIVEGRAPH_OP_METRICS(kBeginReadTxn, "BEGIN_READ_TXN")
    LIVEGRAPH_OP_METRICS(kCommit, "COMMIT")
    LIVEGRAPH_OP_METRICS(kAbort, "ABORT")
    LIVEGRAPH_OP_METRICS(kEndRead, "END_READ")
    LIVEGRAPH_OP_METRICS(kGetNode, "GET_NODE")
    LIVEGRAPH_OP_METRICS(kGetLink, "GET_LINK")
    LIVEGRAPH_OP_METRICS(kScanLinks, "SCAN_LINKS")
    LIVEGRAPH_OP_METRICS(kCountLinks, "COUNT_LINKS")
    LIVEGRAPH_OP_METRICS(kVertexCount, "VERTEX_COUNT")
    LIVEGRAPH_OP_METRICS(kAddNode, "ADD_NODE")
    LIVEGRAPH_OP_METRICS(kUpdateNode, "UPDATE_NODE")
    LIVEGRAPH_OP_METRICS(kDeleteNode, "DELETE_NODE")
    LIVEGRAPH_OP_METRICS(kAddLink, "ADD_LINK")
    LIVEGRAPH_OP_METRICS(kUpdateLink, "UPDATE_LINK")
    LIVEGRAPH_OP_METRICS(kDeleteLink, "DELETE_LINK")
    LIVEGRAPH_OP_METRICS(kBeginReadTxnAt, "BEGIN_READ_TXN_AT")
    LIVEGRAPH_OP_METRICS(kStats, "STATS")
    default:
      // kSubscribe converts the connection into a push stream (its latency
      // is the stream lifetime, not a request) and response types are
      // protocol violations — neither belongs in the op histograms.
      return nullptr;
  }
#undef LIVEGRAPH_OP_METRICS
}

void RecordOp(const OpMetrics* op, uint64_t start_nanos) {
  if (op == nullptr) return;
  const uint64_t elapsed = metrics::MonotonicNanos() - start_nanos;
  op->requests.Add();
  op->latency.Record(elapsed);
  auto& ring = metrics::SlowOpRing::Instance();
  if (ring.ShouldRecord(elapsed)) {
    metrics::SlowOp slow;
    slow.name = op->name;
    slow.total_nanos = elapsed;
    slow.wall_unix_micros = metrics::WallUnixMicros();
    ring.Record(std::move(slow));
  }
}

/// Non-kOk replies, labelled by status. Looked up per error (registry map
/// under its mutex): errors are rare, and this keeps one chokepoint
/// instead of a static per status value.
void CountReplyError(Status status) {
  metrics::Registry::Instance()
      .GetCounter(std::string("livegraph_server_errors_total{status=\"") +
                  StatusName(status) + "\"}")
      .Add();
}

metrics::Gauge& OpenTxnsGauge() {
  static metrics::Gauge& gauge =
      metrics::Registry::Instance().GetGauge("livegraph_server_open_txns");
  return gauge;
}

}  // namespace

ServerSession::ServerSession(const Config& config) : config_(config) {
  OpenTxnsGauge();  // eager registration: present (at 0) from first scrape
}

ServerSession::~ServerSession() {
  // Destroying the table aborts open write sessions and releases read
  // sessions (latches, snapshots) — a vanished client holds nothing.
  OpenTxnsGauge().Add(-static_cast<int64_t>(txns_.size()));
  txns_.clear();
  if (pending_commit_.txn != nullptr) {
    // The transaction was detached for a worker hand-off that never
    // happened (connection torn down in the same scheduling step);
    // re-attach so the abort in the destructor releases on this thread.
    pending_commit_.txn->AttachToThread();
    pending_commit_.txn.reset();
  }
  if (pending_mutation_.txn != nullptr) {
    pending_mutation_.txn->AttachToThread();
    pending_mutation_.txn.reset();
  }
}

ServerSession::Outcome ServerSession::Handle(const Frame& request,
                                             Sink* sink) {
  const OpMetrics* op = OpMetricsFor(request.type);
  if (op == nullptr) return DispatchInner(request, sink);
  const uint64_t start = metrics::MonotonicNanos();
  Outcome outcome = DispatchInner(request, sink);
  // Paused scans and offloaded commits/waits/mutations record when they
  // complete (ResumeScan / FinishCommit / FinishEpochWait /
  // FinishMutation).
  if (outcome == Outcome::kDone || outcome == Outcome::kClose) {
    RecordOp(op, start);
  }
  return outcome;
}

ServerSession::Outcome ServerSession::DispatchInner(const Frame& request,
                                                    Sink* sink) {
  WireReader reader(request.body);
  switch (request.type) {
    case MsgType::kHello: return HandleHello(reader, sink);
    case MsgType::kBeginTxn:
      return HandleBegin(reader, sink, /*write=*/true);
    case MsgType::kBeginReadTxn:
      return HandleBegin(reader, sink, /*write=*/false);
    case MsgType::kCommit: return HandleCommit(reader, sink);
    case MsgType::kAbort: return HandleAbort(reader, sink);
    case MsgType::kEndRead: return HandleEndRead(reader, sink);
    case MsgType::kGetNode: return HandleGetNode(reader, sink);
    case MsgType::kGetLink: return HandleGetLink(reader, sink);
    case MsgType::kScanLinks: return HandleScanLinks(reader, sink);
    case MsgType::kCountLinks: return HandleCountLinks(reader, sink);
    case MsgType::kVertexCount: return HandleVertexCount(reader, sink);
    case MsgType::kAddNode: return HandleAddNode(reader, sink);
    case MsgType::kUpdateNode: return HandleUpdateNode(reader, sink);
    case MsgType::kDeleteNode: return HandleDeleteNode(reader, sink);
    case MsgType::kAddLink:
      return HandleAddLink(reader, sink, /*upsert=*/true);
    case MsgType::kUpdateLink:
      return HandleAddLink(reader, sink, /*upsert=*/false);
    case MsgType::kDeleteLink: return HandleDeleteLink(reader, sink);
    case MsgType::kSubscribe:
      // Long-lived push stream: the transport moves the socket to a
      // dedicated blocking thread (GraphServer's subscription path).
      return Outcome::kSubscribe;
    case MsgType::kBeginReadTxnAt: return HandleBeginReadTxnAt(reader, sink);
    case MsgType::kStats: return HandleStats(reader, sink);
    case MsgType::kFrontierAck:
      return Outcome::kClose;  // only valid inside an established stream
    case MsgType::kReply:
    case MsgType::kScanBatch:
    case MsgType::kSnapshotBatch:
    case MsgType::kLogBatch:
      return Outcome::kClose;  // response types are not requests
  }
  return Outcome::kClose;
}

// --- Reply plumbing --------------------------------------------------------

WireWriter ServerSession::BeginReply(Status status) {
  if (status != Status::kOk) CountReplyError(status);
  reply_body_.clear();
  WireWriter writer(&reply_body_);
  writer.PutU8(StatusToWire(status));
  return writer;
}

bool ServerSession::SendReply(Sink* sink, uint8_t flags) {
  return sink->SendFrame(MsgType::kReply, flags, reply_body_);
}

ServerSession::Outcome ServerSession::ReplyStatus(Sink* sink, Status status,
                                                  uint8_t flags) {
  BeginReply(status);
  return SendReply(sink, flags) ? Outcome::kDone : Outcome::kClose;
}

// --- Handshake -------------------------------------------------------------

ServerSession::Outcome ServerSession::HandleHello(WireReader& reader,
                                                  Sink* sink) {
  uint32_t version;
  if (!reader.GetU32(&version) || !reader.Exhausted()) {
    return Outcome::kClose;
  }
  if (version != kProtocolVersion) {
    ReplyStatus(sink, Status::kUnavailable);
    return Outcome::kClose;  // incompatible dialect: refuse loudly, hang up
  }
  StoreTraits traits = config_.store->Traits();
  WireWriter writer = BeginReply(Status::kOk);
  writer.PutU32(kProtocolVersion);
  writer.PutBytes(config_.store->Name());
  writer.PutU8(traits.time_ordered_scans ? 1 : 0);
  writer.PutU8(traits.snapshot_reads ? 1 : 0);
  writer.PutU8(traits.transactional_writes ? 1 : 0);
  return SendReply(sink) ? Outcome::kDone : Outcome::kClose;
}

// --- Session lifecycle -----------------------------------------------------

ServerSession::Outcome ServerSession::HandleBegin(WireReader& reader,
                                                  Sink* sink, bool write) {
  if (!reader.Exhausted()) return Outcome::kClose;
  uint64_t id = next_txn_id_++;
  OpenTxn& slot = txns_[id];
  OpenTxnsGauge().Add(1);
  if (write) {
    slot.write = config_.store->BeginTxn();
    ++open_writes_;
  } else {
    slot.read = config_.store->BeginReadTxn();
  }
  WireWriter writer = BeginReply(Status::kOk);
  writer.PutU64(id);
  return SendReply(sink) ? Outcome::kDone : Outcome::kClose;
}

ServerSession::Outcome ServerSession::HandleCommit(WireReader& reader,
                                                   Sink* sink) {
  uint64_t id;
  if (!reader.GetU64(&id) || !reader.Exhausted()) return Outcome::kClose;
  auto it = txns_.find(id);
  if (it == txns_.end() || it->second.write == nullptr) {
    return ReplyStatus(sink, Status::kNotActive);
  }
  std::unique_ptr<StoreTxn> txn = std::move(it->second.write);
  txns_.erase(it);
  OpenTxnsGauge().Sub(1);
  --open_writes_;
  if (config_.offload && txn->SupportsThreadHandoff()) {
    // The commit would futex-wait on group durability; hand it to a
    // worker so the event loop keeps serving other connections. Detach
    // here — still on the transport thread — so the worker may release
    // the transaction's locks (api/store.h "Cross-thread hand-off").
    txn->DetachFromThread();
    pending_commit_.txn = std::move(txn);
    pending_commit_.start_nanos = metrics::MonotonicNanos();
    return Outcome::kCommitAsync;
  }
  StatusOr<timestamp_t> committed = txn->Commit();
  txn.reset();
  if (!committed.ok()) return ReplyStatus(sink, committed.status());
  WireWriter writer = BeginReply(Status::kOk);
  writer.PutI64(*committed);
  return SendReply(sink) ? Outcome::kDone : Outcome::kClose;
}

ServerSession::PendingCommit ServerSession::TakePendingCommit() {
  PendingCommit taken;
  taken.txn = std::move(pending_commit_.txn);
  taken.start_nanos = pending_commit_.start_nanos;
  return taken;
}

ServerSession::Outcome ServerSession::FinishCommit(
    StatusOr<timestamp_t> committed, Sink* sink) {
  const uint64_t start = pending_commit_.start_nanos;
  pending_commit_ = PendingCommit{};
  Outcome outcome;
  if (!committed.ok()) {
    outcome = ReplyStatus(sink, committed.status());
  } else {
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutI64(*committed);
    outcome = SendReply(sink) ? Outcome::kDone : Outcome::kClose;
  }
  RecordOp(OpMetricsFor(MsgType::kCommit), start);
  return outcome;
}

ServerSession::Outcome ServerSession::HandleAbort(WireReader& reader,
                                                  Sink* sink) {
  uint64_t id;
  if (!reader.GetU64(&id) || !reader.Exhausted()) return Outcome::kClose;
  auto it = txns_.find(id);
  if (it == txns_.end() || it->second.write == nullptr) {
    return ReplyStatus(sink, Status::kNotActive);
  }
  it->second.write->Abort();
  txns_.erase(it);
  OpenTxnsGauge().Sub(1);
  --open_writes_;
  return ReplyStatus(sink, Status::kOk);
}

ServerSession::Outcome ServerSession::HandleEndRead(WireReader& reader,
                                                    Sink* sink) {
  uint64_t id;
  if (!reader.GetU64(&id) || !reader.Exhausted()) return Outcome::kClose;
  auto it = txns_.find(id);
  if (it == txns_.end() || it->second.read == nullptr) {
    return ReplyStatus(sink, Status::kNotActive);
  }
  txns_.erase(it);  // releases the engine read session (latch, snapshot)
  OpenTxnsGauge().Sub(1);
  return ReplyStatus(sink, Status::kOk);
}

// --- Reads -----------------------------------------------------------------

StoreReadTxn* ServerSession::FindRead(uint64_t id) {
  auto it = txns_.find(id);
  return it != txns_.end() ? it->second.AsRead() : nullptr;
}

StoreTxn* ServerSession::FindWrite(uint64_t id) {
  auto it = txns_.find(id);
  return it != txns_.end() ? it->second.write.get() : nullptr;
}

ServerSession::Outcome ServerSession::HandleGetNode(WireReader& reader,
                                                    Sink* sink) {
  uint64_t id;
  int64_t vertex;
  if (!reader.GetU64(&id) || !reader.GetI64(&vertex) ||
      !reader.Exhausted()) {
    return Outcome::kClose;
  }
  StoreReadTxn* read = FindRead(id);
  if (read == nullptr) return ReplyStatus(sink, Status::kNotActive);
  StatusOr<std::string> props = read->GetNode(vertex);
  if (!props.ok()) return ReplyStatus(sink, props.status());
  WireWriter writer = BeginReply(Status::kOk);
  writer.PutBytes(*props);
  return SendReply(sink) ? Outcome::kDone : Outcome::kClose;
}

ServerSession::Outcome ServerSession::HandleGetLink(WireReader& reader,
                                                    Sink* sink) {
  uint64_t id;
  int64_t src, dst;
  uint16_t label;
  if (!reader.GetU64(&id) || !reader.GetI64(&src) ||
      !reader.GetU16(&label) || !reader.GetI64(&dst) ||
      !reader.Exhausted()) {
    return Outcome::kClose;
  }
  StoreReadTxn* read = FindRead(id);
  if (read == nullptr) return ReplyStatus(sink, Status::kNotActive);
  StatusOr<std::string> props = read->GetLink(src, label, dst);
  if (!props.ok()) return ReplyStatus(sink, props.status());
  WireWriter writer = BeginReply(Status::kOk);
  writer.PutBytes(*props);
  return SendReply(sink) ? Outcome::kDone : Outcome::kClose;
}

ServerSession::Outcome ServerSession::HandleCountLinks(WireReader& reader,
                                                       Sink* sink) {
  uint64_t id;
  int64_t src;
  uint16_t label;
  if (!reader.GetU64(&id) || !reader.GetI64(&src) ||
      !reader.GetU16(&label) || !reader.Exhausted()) {
    return Outcome::kClose;
  }
  StoreReadTxn* read = FindRead(id);
  if (read == nullptr) return ReplyStatus(sink, Status::kNotActive);
  WireWriter writer = BeginReply(Status::kOk);
  writer.PutU64(read->CountLinks(src, label));
  return SendReply(sink) ? Outcome::kDone : Outcome::kClose;
}

ServerSession::Outcome ServerSession::HandleVertexCount(WireReader& reader,
                                                        Sink* sink) {
  uint64_t id;
  if (!reader.GetU64(&id) || !reader.Exhausted()) return Outcome::kClose;
  StoreReadTxn* read = FindRead(id);
  if (read == nullptr) return ReplyStatus(sink, Status::kNotActive);
  WireWriter writer = BeginReply(Status::kOk);
  writer.PutI64(read->VertexCount());
  return SendReply(sink) ? Outcome::kDone : Outcome::kClose;
}

// The streaming scan: walk the engine cursor once, flushing a reused
// batch buffer whenever either budget (edges or bytes) fills. The last
// frame carries kFlagEndOfStream; an error reply does too, so the client
// drain rule is uniform. Under a throttled sink the walk parks between
// batches (Outcome::kScanPaused) and ResumeScan() continues it — the
// cursor holds its position, so backpressure costs no rescan.
ServerSession::Outcome ServerSession::HandleScanLinks(WireReader& reader,
                                                      Sink* sink) {
  uint64_t id, limit;
  int64_t src;
  uint16_t label;
  if (!reader.GetU64(&id) || !reader.GetI64(&src) ||
      !reader.GetU16(&label) || !reader.GetU64(&limit) ||
      !reader.Exhausted()) {
    return Outcome::kClose;
  }
  StoreReadTxn* read = FindRead(id);
  if (read == nullptr) {
    return ReplyStatus(sink, Status::kNotActive, kFlagEndOfStream);
  }
  batch_body_.clear();
  WireWriter writer(&batch_body_);
  writer.PutU32(0);  // count placeholder, patched at flush
  scan_.emplace();
  scan_->cursor = read->ScanLinks(src, label, limit);
  scan_->start_nanos = metrics::MonotonicNanos();
  Outcome outcome = PumpScan(sink);
  if (outcome != Outcome::kScanPaused) scan_.reset();
  return outcome;
}

ServerSession::Outcome ServerSession::ResumeScan(Sink* sink) {
  Outcome outcome = PumpScan(sink);
  if (outcome != Outcome::kScanPaused) {
    RecordOp(OpMetricsFor(MsgType::kScanLinks), scan_->start_nanos);
    scan_.reset();
  }
  return outcome;
}

ServerSession::Outcome ServerSession::PumpScan(Sink* sink) {
  ActiveScan& scan = *scan_;
  WireWriter writer(&batch_body_);
  auto flush = [&](bool end_of_stream) {
    uint8_t count_le[4] = {
        static_cast<uint8_t>(scan.batch_count),
        static_cast<uint8_t>(scan.batch_count >> 8),
        static_cast<uint8_t>(scan.batch_count >> 16),
        static_cast<uint8_t>(scan.batch_count >> 24)};
    std::memcpy(batch_body_.data(), count_le, sizeof(count_le));
    bool sent = sink->SendFrame(
        MsgType::kScanBatch,
        end_of_stream ? kFlagEndOfStream : kFlagNone, batch_body_);
    scan.batch_count = 0;
    batch_body_.clear();
    writer.PutU32(0);
    return sent;
  };
  if (scan.advance_pending) {
    // Parked right after a budget flush, before stepping off the edge
    // already shipped in that batch.
    scan.cursor.Next();
    scan.advance_pending = false;
  }
  while (scan.cursor.Valid()) {
    // Flush early if this edge would push the frame past the protocol
    // cap (possible with outsized property blobs loaded embedded); a
    // single edge that alone exceeds the cap is unrepresentable and
    // fails the SendFrame below, closing the connection.
    size_t edge_bytes = 8 + 8 + 4 + scan.cursor.properties().size();
    if (scan.batch_count > 0 &&
        batch_body_.size() + edge_bytes > kMaxFrameBody) {
      if (!flush(/*end_of_stream=*/false)) return Outcome::kClose;
      if (sink->throttled()) return Outcome::kScanPaused;
    }
    writer.PutI64(scan.cursor.dst());
    writer.PutI64(scan.cursor.creation_timestamp());
    writer.PutBytes(scan.cursor.properties());
    if (++scan.batch_count >= config_.scan_batch_edges ||
        batch_body_.size() >= config_.scan_batch_bytes) {
      if (!flush(/*end_of_stream=*/false)) return Outcome::kClose;
      if (sink->throttled()) {
        scan.advance_pending = true;
        return Outcome::kScanPaused;
      }
    }
    scan.cursor.Next();
  }
  return flush(/*end_of_stream=*/true) ? Outcome::kDone : Outcome::kClose;
}

// --- Replication-adjacent reads (docs/REPLICATION.md) ----------------------

// Epoch-gated read session: wait until this node's frontier covers the
// client's epoch, then open a plain read snapshot (which therefore
// includes every commit at or below it). kTimeout when the frontier does
// not catch up in time — the client may fail over. In offload mode the
// (futex) frontier wait runs on a worker: Outcome::kWaitAsync, completed
// by FinishEpochWait().
ServerSession::Outcome ServerSession::HandleBeginReadTxnAt(
    WireReader& reader, Sink* sink) {
  int64_t min_epoch;
  uint32_t timeout_ms;
  if (!reader.GetI64(&min_epoch) || !reader.GetU32(&timeout_ms) ||
      !reader.Exhausted()) {
    return Outcome::kClose;
  }
  EpochFrontier* frontier = config_.frontier;
  if (min_epoch > 0) {
    if (frontier == nullptr) return ReplyStatus(sink, Status::kUnavailable);
    if (config_.offload) {
      pending_wait_.min_epoch = min_epoch;
      pending_wait_.timeout_ms = timeout_ms;
      pending_wait_.start_nanos = metrics::MonotonicNanos();
      return Outcome::kWaitAsync;
    }
    if (!frontier->WaitCovered(min_epoch,
                               static_cast<int64_t>(timeout_ms))) {
      return ReplyStatus(sink, Status::kTimeout);
    }
  }
  uint64_t id = next_txn_id_++;
  txns_[id].read = config_.store->BeginReadTxn();
  OpenTxnsGauge().Add(1);
  WireWriter writer = BeginReply(Status::kOk);
  writer.PutU64(id);
  return SendReply(sink) ? Outcome::kDone : Outcome::kClose;
}

ServerSession::Outcome ServerSession::FinishEpochWait(bool covered,
                                                      Sink* sink) {
  const uint64_t start = pending_wait_.start_nanos;
  pending_wait_ = PendingWait{};
  Outcome outcome;
  if (!covered) {
    outcome = ReplyStatus(sink, Status::kTimeout);
  } else {
    uint64_t id = next_txn_id_++;
    txns_[id].read = config_.store->BeginReadTxn();
    OpenTxnsGauge().Add(1);
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutU64(id);
    outcome = SendReply(sink) ? Outcome::kDone : Outcome::kClose;
  }
  RecordOp(OpMetricsFor(MsgType::kBeginReadTxnAt), start);
  return outcome;
}

/// STATS: collect the live registry (probes included) and reply with the
/// versioned binary snapshot (server/stats_codec.h).
ServerSession::Outcome ServerSession::HandleStats(WireReader& reader,
                                                  Sink* sink) {
  if (!reader.Exhausted()) return Outcome::kClose;
  metrics::Snapshot snapshot = metrics::Registry::Instance().Collect();
  batch_body_.clear();
  EncodeStats(snapshot, &batch_body_);
  WireWriter writer = BeginReply(Status::kOk);
  writer.PutBytes(batch_body_);
  return SendReply(sink) ? Outcome::kDone : Outcome::kClose;
}

// --- Writes ----------------------------------------------------------------

// Why the lock-acquiring mutations offload (kMutateAsync): acquiring a
// vertex lock can futex-wait up to the engine's deadlock-avoidance
// timeout (core/config.h lock_timeout_ns), and the holder is typically
// another client whose releasing Commit is a frame the event loop has yet
// to dispatch. Blocking the loop on the wait would therefore serialize
// the waiter IN FRONT of the release — every contended acquisition on a
// shared reactor would time out at the full bound instead of resolving in
// microseconds. AddNode stays inline: it locks a freshly minted vertex,
// which nothing else can hold. The transport narrows the offload further
// through set_offload_mutations(): when no other connection on the same
// loop holds a write transaction the hazard cannot arise, and the
// mutation runs inline, skipping both thread hand-offs.

bool ServerSession::StageMutation(uint64_t txn_id, MsgType op, int64_t src,
                                  uint16_t label, int64_t dst,
                                  std::string_view data) {
  auto it = txns_.find(txn_id);
  StoreTxn* txn = it->second.write.get();
  if (!config_.offload || !offload_mutations_ ||
      !txn->SupportsThreadHandoff()) {
    return false;
  }
  txn->DetachFromThread();
  pending_mutation_.txn = std::move(it->second.write);
  pending_mutation_.txn_id = txn_id;
  pending_mutation_.op = op;
  pending_mutation_.src = src;
  pending_mutation_.dst = dst;
  pending_mutation_.label = label;
  pending_mutation_.data.assign(data);
  pending_mutation_.start_nanos = metrics::MonotonicNanos();
  return true;
}

ServerSession::PendingMutation ServerSession::TakePendingMutation() {
  PendingMutation taken = std::move(pending_mutation_);
  pending_mutation_ = PendingMutation{};
  return taken;
}

ServerSession::MutationResult ServerSession::ExecuteMutation(
    StoreTxn& txn, const PendingMutation& mutation) {
  MutationResult result;
  switch (mutation.op) {
    case MsgType::kUpdateNode:
      result.status = txn.UpdateNode(mutation.src, mutation.data);
      break;
    case MsgType::kDeleteNode:
      result.status = txn.DeleteNode(mutation.src);
      break;
    case MsgType::kAddLink: {
      StatusOr<bool> inserted =
          txn.AddLink(mutation.src, mutation.label, mutation.dst,
                      mutation.data);
      result.status = inserted.status();
      if (inserted.ok()) result.inserted = *inserted;
      break;
    }
    case MsgType::kUpdateLink:
      result.status = txn.UpdateLink(mutation.src, mutation.label,
                                     mutation.dst, mutation.data);
      break;
    case MsgType::kDeleteLink:
      result.status =
          txn.DeleteLink(mutation.src, mutation.label, mutation.dst);
      break;
    default:
      result.status = Status::kUnavailable;
      break;
  }
  return result;
}

ServerSession::Outcome ServerSession::FinishMutation(
    PendingMutation mutation, MutationResult result, Sink* sink) {
  mutation.txn->AttachToThread();
  txns_[mutation.txn_id].write = std::move(mutation.txn);
  Outcome outcome;
  if (result.status != Status::kOk) {
    outcome = ReplyStatus(sink, result.status);
  } else if (mutation.op == MsgType::kAddLink) {
    WireWriter writer = BeginReply(Status::kOk);
    writer.PutU8(result.inserted ? 1 : 0);
    outcome = SendReply(sink) ? Outcome::kDone : Outcome::kClose;
  } else {
    outcome = ReplyStatus(sink, Status::kOk);
  }
  RecordOp(OpMetricsFor(mutation.op), mutation.start_nanos);
  return outcome;
}

ServerSession::Outcome ServerSession::HandleAddNode(WireReader& reader,
                                                    Sink* sink) {
  uint64_t id;
  std::string_view data;
  if (!reader.GetU64(&id) || !reader.GetBytes(&data) ||
      !reader.Exhausted()) {
    return Outcome::kClose;
  }
  StoreTxn* txn = FindWrite(id);
  if (txn == nullptr) return ReplyStatus(sink, Status::kNotActive);
  StatusOr<vertex_t> added = txn->AddNode(data);
  if (!added.ok()) return ReplyStatus(sink, added.status());
  WireWriter writer = BeginReply(Status::kOk);
  writer.PutI64(*added);
  return SendReply(sink) ? Outcome::kDone : Outcome::kClose;
}

ServerSession::Outcome ServerSession::HandleUpdateNode(WireReader& reader,
                                                       Sink* sink) {
  uint64_t id;
  int64_t vertex;
  std::string_view data;
  if (!reader.GetU64(&id) || !reader.GetI64(&vertex) ||
      !reader.GetBytes(&data) || !reader.Exhausted()) {
    return Outcome::kClose;
  }
  StoreTxn* txn = FindWrite(id);
  if (txn == nullptr) return ReplyStatus(sink, Status::kNotActive);
  if (StageMutation(id, MsgType::kUpdateNode, vertex, 0, 0, data)) {
    return Outcome::kMutateAsync;
  }
  return ReplyStatus(sink, txn->UpdateNode(vertex, data));
}

ServerSession::Outcome ServerSession::HandleDeleteNode(WireReader& reader,
                                                       Sink* sink) {
  uint64_t id;
  int64_t vertex;
  if (!reader.GetU64(&id) || !reader.GetI64(&vertex) ||
      !reader.Exhausted()) {
    return Outcome::kClose;
  }
  StoreTxn* txn = FindWrite(id);
  if (txn == nullptr) return ReplyStatus(sink, Status::kNotActive);
  if (StageMutation(id, MsgType::kDeleteNode, vertex, 0, 0, {})) {
    return Outcome::kMutateAsync;
  }
  return ReplyStatus(sink, txn->DeleteNode(vertex));
}

ServerSession::Outcome ServerSession::HandleAddLink(WireReader& reader,
                                                    Sink* sink,
                                                    bool upsert) {
  uint64_t id;
  int64_t src, dst;
  uint16_t label;
  std::string_view data;
  if (!reader.GetU64(&id) || !reader.GetI64(&src) ||
      !reader.GetU16(&label) || !reader.GetI64(&dst) ||
      !reader.GetBytes(&data) || !reader.Exhausted()) {
    return Outcome::kClose;
  }
  StoreTxn* txn = FindWrite(id);
  if (txn == nullptr) return ReplyStatus(sink, Status::kNotActive);
  if (StageMutation(id, upsert ? MsgType::kAddLink : MsgType::kUpdateLink,
                    src, label, dst, data)) {
    return Outcome::kMutateAsync;
  }
  if (!upsert) {
    return ReplyStatus(sink, txn->UpdateLink(src, label, dst, data));
  }
  StatusOr<bool> inserted = txn->AddLink(src, label, dst, data);
  if (!inserted.ok()) return ReplyStatus(sink, inserted.status());
  WireWriter writer = BeginReply(Status::kOk);
  writer.PutU8(*inserted ? 1 : 0);
  return SendReply(sink) ? Outcome::kDone : Outcome::kClose;
}

ServerSession::Outcome ServerSession::HandleDeleteLink(WireReader& reader,
                                                       Sink* sink) {
  uint64_t id;
  int64_t src, dst;
  uint16_t label;
  if (!reader.GetU64(&id) || !reader.GetI64(&src) ||
      !reader.GetU16(&label) || !reader.GetI64(&dst) ||
      !reader.Exhausted()) {
    return Outcome::kClose;
  }
  StoreTxn* txn = FindWrite(id);
  if (txn == nullptr) return ReplyStatus(sink, Status::kNotActive);
  if (StageMutation(id, MsgType::kDeleteLink, src, label, dst, {})) {
    return Outcome::kMutateAsync;
  }
  return ReplyStatus(sink, txn->DeleteLink(src, label, dst));
}

}  // namespace livegraph
