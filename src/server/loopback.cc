#include "server/loopback.h"

#include <utility>

namespace livegraph {

namespace {

// Owns the whole loopback sandwich. Declaration order is destruction
// order in reverse: the client disconnects first, then the server stops,
// then the engine dies.
class LoopbackStore : public Store {
 public:
  LoopbackStore(std::unique_ptr<Store> engine,
                std::unique_ptr<GraphServer> server,
                std::unique_ptr<RemoteStore> client)
      : engine_(std::move(engine)),
        server_(std::move(server)),
        client_(std::move(client)) {}

  ~LoopbackStore() override {
    client_.reset();  // hang up before the server goes away
    server_->Stop();
  }

  std::string Name() const override { return client_->Name(); }
  StoreTraits Traits() const override { return client_->Traits(); }
  std::unique_ptr<StoreTxn> BeginTxn() override {
    return client_->BeginTxn();
  }
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override {
    return client_->BeginReadTxn();
  }

 private:
  std::unique_ptr<Store> engine_;
  std::unique_ptr<GraphServer> server_;
  std::unique_ptr<RemoteStore> client_;
};

}  // namespace

std::unique_ptr<Store> MakeLoopbackStore(
    std::unique_ptr<Store> engine, GraphServer::Options server_options) {
  if (engine == nullptr) return nullptr;
  auto server = std::make_unique<GraphServer>(*engine, server_options);
  if (!server->Start()) return nullptr;
  auto client = RemoteStore::Connect(server_options.host, server->port());
  if (client == nullptr) {
    server->Stop();
    return nullptr;
  }
  return std::make_unique<LoopbackStore>(
      std::move(engine), std::move(server), std::move(client));
}

}  // namespace livegraph
