#include "server/loopback.h"

#include <utility>

#include "replication/epoch_frontier.h"
#include "replication/replica.h"
#include "replication/replication_hub.h"
#include "shard/sharded_store.h"

namespace livegraph {

namespace {

// Owns the whole loopback sandwich. Declaration order is destruction
// order in reverse: the client disconnects first, then the server stops,
// then the engine dies.
class LoopbackStore : public Store {
 public:
  LoopbackStore(std::unique_ptr<Store> engine,
                std::unique_ptr<GraphServer> server,
                std::unique_ptr<RemoteStore> client)
      : engine_(std::move(engine)),
        server_(std::move(server)),
        client_(std::move(client)) {}

  ~LoopbackStore() override {
    client_.reset();  // hang up before the server goes away
    server_->Stop();
  }

  std::string Name() const override { return client_->Name(); }
  StoreTraits Traits() const override { return client_->Traits(); }
  std::unique_ptr<StoreTxn> BeginTxn() override {
    return client_->BeginTxn();
  }
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override {
    return client_->BeginReadTxn();
  }

 private:
  std::unique_ptr<Store> engine_;
  std::unique_ptr<GraphServer> server_;
  std::unique_ptr<RemoteStore> client_;
};

// The replication topology packaged as one Store. Declaration order is
// destruction order in reverse: client hangs up, follower server stops,
// replica stops (closing its subscription), primary server stops, hub
// detaches its WAL sinks, engine dies.
class ReplicatedLoopbackStore : public Store {
 public:
  ReplicatedLoopbackStore(std::unique_ptr<ShardedStore> engine,
                          std::unique_ptr<ReplicationHub> hub,
                          std::unique_ptr<DomainFrontier> primary_frontier,
                          std::unique_ptr<GraphServer> primary_server,
                          std::unique_ptr<Replica> replica,
                          std::unique_ptr<GraphServer> follower_server,
                          std::unique_ptr<RemoteStore> client)
      : engine_(std::move(engine)),
        hub_(std::move(hub)),
        primary_frontier_(std::move(primary_frontier)),
        primary_server_(std::move(primary_server)),
        replica_(std::move(replica)),
        follower_server_(std::move(follower_server)),
        client_(std::move(client)) {}

  ~ReplicatedLoopbackStore() override {
    client_.reset();
    follower_server_->Stop();
    replica_->Stop();
    primary_server_->Stop();
  }

  std::string Name() const override { return client_->Name(); }
  StoreTraits Traits() const override { return client_->Traits(); }
  std::unique_ptr<StoreTxn> BeginTxn() override {
    return client_->BeginTxn();
  }
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override {
    return client_->BeginReadTxn();
  }

 private:
  std::unique_ptr<ShardedStore> engine_;
  std::unique_ptr<ReplicationHub> hub_;
  std::unique_ptr<DomainFrontier> primary_frontier_;
  std::unique_ptr<GraphServer> primary_server_;
  std::unique_ptr<Replica> replica_;
  std::unique_ptr<GraphServer> follower_server_;
  std::unique_ptr<RemoteStore> client_;
};

}  // namespace

std::unique_ptr<Store> MakeLoopbackStore(
    std::unique_ptr<Store> engine, GraphServer::Options server_options) {
  if (engine == nullptr) return nullptr;
  auto server = std::make_unique<GraphServer>(*engine, server_options);
  if (!server->Start()) return nullptr;
  auto client = RemoteStore::Connect(server_options.host, server->port());
  if (client == nullptr) {
    server->Stop();
    return nullptr;
  }
  return std::make_unique<LoopbackStore>(
      std::move(engine), std::move(server), std::move(client));
}

std::unique_ptr<Store> MakeReplicatedLoopbackStore(
    const ShardOptions& primary_options, const std::string& replica_dir) {
  if (primary_options.dir.empty()) return nullptr;  // hub needs real WALs
  std::unique_ptr<ShardedStore> engine = ShardedStore::Recover(primary_options);
  if (engine == nullptr) return nullptr;

  auto hub = std::make_unique<ReplicationHub>();
  if (!hub->Attach(*engine)) return nullptr;
  auto primary_frontier = std::make_unique<DomainFrontier>(hub->domain());

  GraphServer::Options primary_opts;
  primary_opts.replication = hub.get();
  primary_opts.frontier = primary_frontier.get();
  auto primary_server = std::make_unique<GraphServer>(*engine, primary_opts);
  if (!primary_server->Start()) return nullptr;

  Replica::Options replica_opts;
  replica_opts.primary_host = primary_opts.host;
  replica_opts.primary_port = primary_server->port();
  replica_opts.dir = replica_dir;
  replica_opts.graph = primary_options.graph;
  auto replica = std::make_unique<Replica>(replica_opts);
  replica->Start();
  if (!replica->WaitReady(/*timeout_ms=*/10000)) {
    replica->Stop();
    primary_server->Stop();
    return nullptr;
  }

  GraphServer::Options follower_opts;
  follower_opts.frontier = &replica->frontier();
  auto follower_server =
      std::make_unique<GraphServer>(replica->store(), follower_opts);
  if (!follower_server->Start()) {
    replica->Stop();
    primary_server->Stop();
    return nullptr;
  }

  RemoteStore::Options client_opts;
  client_opts.host = primary_opts.host;
  client_opts.port = primary_server->port();
  client_opts.replica_host = follower_opts.host;
  client_opts.replica_port = follower_server->port();
  auto client = RemoteStore::Connect(client_opts);
  if (client == nullptr) {
    follower_server->Stop();
    replica->Stop();
    primary_server->Stop();
    return nullptr;
  }
  return std::make_unique<ReplicatedLoopbackStore>(
      std::move(engine), std::move(hub), std::move(primary_frontier),
      std::move(primary_server), std::move(replica),
      std::move(follower_server), std::move(client));
}

}  // namespace livegraph
