// ServerSession: one wire-protocol session — the transaction table and
// every request handler — decoupled from its transport.
//
// Both server frontends speak through this class. The legacy blocking mode
// (thread per connection) wraps a socket in a Sink that writes frames
// synchronously and never throttles, so every Handle() call completes
// inline. The reactor (server/reactor.h) wraps its per-connection output
// queue instead and runs with `offload` set, which surfaces the three
// places a handler would otherwise block the event loop as explicit
// outcomes the caller schedules around:
//
//   kScanPaused   a streaming scan hit output backpressure mid-list; the
//                 cursor (and the engine read session it borrows from)
//                 stays parked in the session until ResumeScan().
//   kCommitAsync  a write commit would futex-wait on group durability;
//                 TakePendingCommit() hands the StoreTxn to a worker
//                 thread, whose result comes back through FinishCommit().
//   kWaitAsync    an epoch-gated read (kBeginReadTxnAt) must wait for the
//                 frontier; a worker runs the wait and reports through
//                 FinishEpochWait().
//   kMutateAsync  a lock-acquiring mutation (link/node write) can
//                 futex-wait up to the engine's deadlock-avoidance
//                 timeout — and the lock's holder may be ANOTHER
//                 connection on the same event loop, whose releasing
//                 Commit frame would then never dispatch, turning every
//                 contended wait into a guaranteed timeout. The staged op
//                 (TakePendingMutation) runs on a worker via
//                 ExecuteMutation(); FinishMutation() restores the
//                 transaction and queues the reply.
//
// While any of these is outstanding the caller must not Handle() further
// frames on the connection — replies are strictly in request order, which
// is what makes client-side pipelining safe.
//
// kSubscribe is answered with Outcome::kSubscribe without touching the
// frame: replication push streams are long-lived write-mostly loops that
// belong on a dedicated blocking thread, so the transport hands the socket
// (and the frame) to GraphServer's subscription path instead.
#ifndef LIVEGRAPH_SERVER_SESSION_H_
#define LIVEGRAPH_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "api/store.h"
#include "server/protocol.h"
#include "server/wire.h"

namespace livegraph {

class EpochFrontier;

class ServerSession {
 public:
  /// Where replies go. Implementations must be cheap: the blocking server
  /// writes straight to its socket; the reactor appends to a bounded
  /// per-connection output queue.
  class Sink {
   public:
    virtual ~Sink() = default;
    /// Queues/writes one reply frame. False means the connection is dead;
    /// the session stops producing and the caller tears down.
    virtual bool SendFrame(MsgType type, uint8_t flags,
                          std::string_view body) = 0;
    /// True when the transport wants the producer to pause (output
    /// backlog above high water). Only consulted between scan batches.
    virtual bool throttled() const { return false; }
  };

  enum class Outcome {
    kDone,         // request handled, replies queued
    kClose,        // protocol violation or dead sink: close the connection
    kScanPaused,   // scan parked on backpressure; ResumeScan() when clear
    kCommitAsync,  // TakePendingCommit() -> worker -> FinishCommit()
    kWaitAsync,    // pending_wait() -> worker -> FinishEpochWait()
    kMutateAsync,  // TakePendingMutation() -> worker -> FinishMutation()
    kSubscribe,    // hand the socket to a blocking replication thread
  };

  struct Config {
    Store* store = nullptr;
    /// Scan batches flush at whichever budget fills first.
    size_t scan_batch_edges = 512;
    size_t scan_batch_bytes = 60 * 1024;
    /// Epoch-gated reads (kBeginReadTxnAt); null rejects positive bounds.
    EpochFrontier* frontier = nullptr;
    /// Reactor mode: blocking work (commit durability waits, frontier
    /// waits) returns the async outcomes instead of running inline.
    bool offload = false;
  };

  explicit ServerSession(const Config& config);
  ~ServerSession();
  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  /// Handles one request frame end to end (per-opcode accounting
  /// included). See Outcome for the non-inline results.
  Outcome Handle(const Frame& request, Sink* sink);

  /// Continues the parked streaming scan. Precondition: scan_paused().
  Outcome ResumeScan(Sink* sink);
  bool scan_paused() const { return scan_.has_value(); }

  // --- Async commit (Outcome::kCommitAsync) ---

  struct PendingCommit {
    std::unique_ptr<StoreTxn> txn;
    uint64_t start_nanos = 0;
  };
  /// Transfers the committing transaction to the worker. The transaction
  /// is already detached from this thread (api/store.h "Cross-thread
  /// hand-off"); the worker calls AttachToThread(), then Commit().
  PendingCommit TakePendingCommit();
  /// Queues the commit reply (worker's result), on the transport thread.
  Outcome FinishCommit(StatusOr<timestamp_t> committed, Sink* sink);

  // --- Async epoch wait (Outcome::kWaitAsync) ---

  struct PendingWait {
    int64_t min_epoch = 0;
    uint32_t timeout_ms = 0;
    uint64_t start_nanos = 0;
  };
  const PendingWait& pending_wait() const { return pending_wait_; }
  /// Queues the kBeginReadTxnAt reply: opens the read session if the
  /// worker reported the frontier covered, kTimeout otherwise.
  Outcome FinishEpochWait(bool covered, Sink* sink);

  // --- Async mutation (Outcome::kMutateAsync) ---

  /// A staged lock-acquiring mutation, carrying its (detached) write
  /// transaction to the worker and back. `src` doubles as the vertex id
  /// for node ops.
  struct PendingMutation {
    std::unique_ptr<StoreTxn> txn;
    uint64_t txn_id = 0;
    MsgType op = MsgType::kReply;
    int64_t src = 0;
    int64_t dst = 0;
    uint16_t label = 0;
    std::string data;
    uint64_t start_nanos = 0;
  };
  struct MutationResult {
    Status status = Status::kUnavailable;
    bool inserted = false;  // kAddLink only
  };
  /// Transfers the staged mutation (transaction included, already
  /// detached) to the worker.
  PendingMutation TakePendingMutation();
  /// Runs the staged op against its transaction — on the worker thread,
  /// with the transaction attached there.
  static MutationResult ExecuteMutation(StoreTxn& txn,
                                        const PendingMutation& mutation);
  /// Back on the transport thread: re-attaches and restores the
  /// transaction into the session table, queues the reply.
  Outcome FinishMutation(PendingMutation mutation, MutationResult result,
                         Sink* sink);

  /// Open transactions (the global open-txns gauge tracks the sum).
  size_t open_txns() const { return txns_.size(); }
  /// Open WRITE transactions, a staged (offloaded) mutation's included —
  /// the transport's input for the mutation-offload hint below.
  size_t open_write_txns() const { return open_writes_; }
  /// Transport hint, consulted by StageMutation: false lets mutations run
  /// inline on the event loop. The reactor clears it only when no OTHER
  /// connection on the same loop holds an open write transaction — then
  /// any vertex-lock holder lives on a loop that stays live to dispatch
  /// its releasing Commit, so an inline wait cannot self-deadlock and the
  /// two thread hand-offs are pure overhead.
  void set_offload_mutations(bool offload) { offload_mutations_ = offload; }

 private:
  /// A slot in the session's transaction table. Write sessions serve
  /// reads too (read-your-writes); read sessions reject mutations.
  struct OpenTxn {
    std::unique_ptr<StoreTxn> write;
    std::unique_ptr<StoreReadTxn> read;
    StoreReadTxn* AsRead() const {
      return write != nullptr ? write.get() : read.get();
    }
  };

  /// A streaming scan parked between batches. Holds the live engine
  /// cursor; the read session it borrows from is pinned in txns_ (the
  /// caller defers any further frames until the scan finishes, so the
  /// session cannot be ended under the cursor).
  struct ActiveScan {
    EdgeCursor cursor;
    uint32_t batch_count = 0;
    /// Parked right after a budget flush: ResumeScan() must step the
    /// cursor past the already-shipped edge before continuing.
    bool advance_pending = false;
    uint64_t start_nanos = 0;
  };

  Outcome DispatchInner(const Frame& request, Sink* sink);

  // Reply plumbing: start a body with its status byte, append payload
  // through the returned writer, then SendReply().
  WireWriter BeginReply(Status status);
  bool SendReply(Sink* sink, uint8_t flags = kFlagNone);
  Outcome ReplyStatus(Sink* sink, Status status, uint8_t flags = kFlagNone);

  Outcome HandleHello(WireReader& reader, Sink* sink);
  Outcome HandleBegin(WireReader& reader, Sink* sink, bool write);
  Outcome HandleCommit(WireReader& reader, Sink* sink);
  Outcome HandleAbort(WireReader& reader, Sink* sink);
  Outcome HandleEndRead(WireReader& reader, Sink* sink);
  Outcome HandleGetNode(WireReader& reader, Sink* sink);
  Outcome HandleGetLink(WireReader& reader, Sink* sink);
  Outcome HandleScanLinks(WireReader& reader, Sink* sink);
  Outcome HandleCountLinks(WireReader& reader, Sink* sink);
  Outcome HandleVertexCount(WireReader& reader, Sink* sink);
  Outcome HandleBeginReadTxnAt(WireReader& reader, Sink* sink);
  Outcome HandleStats(WireReader& reader, Sink* sink);
  Outcome HandleAddNode(WireReader& reader, Sink* sink);
  Outcome HandleUpdateNode(WireReader& reader, Sink* sink);
  Outcome HandleDeleteNode(WireReader& reader, Sink* sink);
  Outcome HandleAddLink(WireReader& reader, Sink* sink, bool upsert);
  Outcome HandleDeleteLink(WireReader& reader, Sink* sink);

  StoreReadTxn* FindRead(uint64_t id);
  StoreTxn* FindWrite(uint64_t id);

  /// Offload-mode gate for the lock-acquiring mutations: when the engine
  /// supports thread hand-off, stages the op (detaching its transaction)
  /// and returns true — the handler then returns kMutateAsync. False
  /// means run it inline.
  bool StageMutation(uint64_t txn_id, MsgType op, int64_t src,
                     uint16_t label, int64_t dst, std::string_view data);

  /// Walks the parked cursor, flushing batches until done or throttled.
  Outcome PumpScan(Sink* sink);

  Config config_;

  uint64_t next_txn_id_ = 1;
  std::map<uint64_t, OpenTxn> txns_;
  size_t open_writes_ = 0;
  bool offload_mutations_ = true;

  std::optional<ActiveScan> scan_;
  PendingCommit pending_commit_;
  PendingWait pending_wait_;
  PendingMutation pending_mutation_;

  // Reused per-session buffers: steady-state replies allocate nothing.
  std::string reply_body_;
  std::string batch_body_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_SESSION_H_
