#include "server/remote_store.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <utility>

#include "server/net.h"
#include "server/stats_codec.h"
#include "server/wire.h"

namespace livegraph {

// One client connection. All methods serialize on mu_: a connection is
// normally owned by one session at a time, but a chunked scan cursor can
// outlive its scan (early exit) or even its session, and must observe a
// consistent answer rather than racing the next owner's frames.
//
// Interleaving rule: the socket carries at most one live scan stream. When
// a new request (including a nested scan — SNB traversals open cursors
// inside cursor loops) arrives while a stream is live, the stream's
// remaining frames are PARKED: read off the socket into the stream's own
// buffer, where its cursor keeps consuming them. Pure sequential scans —
// the hot path — never park and hold one batch at a time; only genuinely
// interleaved access pays memory proportional to what it left unconsumed,
// which is exactly what an embedded materialized cursor would have paid up
// front.
class RemoteStore::Connection {
 public:
  static std::shared_ptr<Connection> Dial(const Options& options,
                                          std::string* name,
                                          StoreTraits* traits) {
    Socket socket = ConnectTcp(options.host, options.port);
    if (!socket.valid()) return nullptr;
    // Deadlines on every operation: a server that stops responding fails
    // the call (surfaced as kUnavailable by the callers) instead of
    // wedging this client thread forever.
    socket.SetRecvTimeout(options.io_timeout_ms);
    socket.SetSendTimeout(options.io_timeout_ms);
    auto connection = std::make_shared<Connection>(std::move(socket));
    std::string body;
    WireWriter writer(&body);
    writer.PutU32(kProtocolVersion);
    Frame reply;
    if (!connection->Call(MsgType::kHello, body, &reply)) return nullptr;
    WireReader reader(reply.body);
    uint8_t status;
    uint32_t version;
    std::string_view remote_name;
    uint8_t time_ordered, snapshot, transactional;
    if (!reader.GetU8(&status) ||
        StatusFromWire(status) != Status::kOk ||
        !reader.GetU32(&version) || !reader.GetBytes(&remote_name) ||
        !reader.GetU8(&time_ordered) || !reader.GetU8(&snapshot) ||
        !reader.GetU8(&transactional) || !reader.Exhausted()) {
      return nullptr;
    }
    if (name != nullptr) *name = std::string(remote_name);
    if (traits != nullptr) {
      *traits = StoreTraits{time_ordered != 0, snapshot != 0,
                            transactional != 0};
    }
    return connection;
  }

  explicit Connection(Socket socket) : socket_(std::move(socket)) {}

  /// Per-stream state, shared between the connection (which appends parked
  /// frames) and the cursor's batch source (which consumes). `live` means
  /// the server still owes this stream frames on the socket; once false,
  /// everything the stream will ever yield sits in `parked`.
  struct StreamState {
    std::deque<std::string> parked;  // unconsumed batch bodies
    bool live = false;
  };

  bool healthy() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !broken_;
  }

  /// One request/reply exchange. Parks any live scan stream first so the
  /// reply read below cannot swallow its batch frames.
  bool Call(MsgType type, std::string_view body, Frame* reply) {
    std::lock_guard<std::mutex> lock(mu_);
    if (broken_) return false;
    ParkActiveStreamLocked();
    if (broken_) return false;
    if (!socket_.WriteFrame(type, kFlagNone, body, &send_scratch_) ||
        !socket_.ReadFrame(reply) || reply->type != MsgType::kReply) {
      MarkBrokenLocked();
      return false;
    }
    return true;
  }

  /// Pipelined exchange: `encoded` holds `count` fully framed requests.
  /// One send, then `count` in-order reply frames appended to `replies`.
  /// Parks any live scan stream first so its batch frames cannot be
  /// mistaken for replies.
  bool Exchange(std::string_view encoded, size_t count,
                std::vector<Frame>* replies) {
    std::lock_guard<std::mutex> lock(mu_);
    if (broken_) return false;
    ParkActiveStreamLocked();
    if (broken_) return false;
    if (!socket_.WriteFull(encoded.data(), encoded.size())) {
      MarkBrokenLocked();
      return false;
    }
    for (size_t i = 0; i < count; ++i) {
      Frame frame;
      if (!socket_.ReadFrame(&frame) || frame.type != MsgType::kReply) {
        MarkBrokenLocked();
        return false;
      }
      replies->push_back(std::move(frame));
    }
    return true;
  }

  /// Opens a scan stream, parking the previous one if still live. Null on
  /// I/O failure.
  std::shared_ptr<StreamState> StartScan(std::string_view body) {
    std::lock_guard<std::mutex> lock(mu_);
    if (broken_) return nullptr;
    ParkActiveStreamLocked();
    if (broken_) return nullptr;
    if (!socket_.WriteFrame(MsgType::kScanLinks, kFlagNone, body,
                            &send_scratch_)) {
      MarkBrokenLocked();
      return nullptr;
    }
    active_ = std::make_shared<StreamState>();
    active_->live = true;
    return active_;
  }

  /// Pulls the next batch of `stream` into edges/arena (replacing their
  /// contents): from its parked buffer if interleaving already moved the
  /// frames there, else straight off the socket. Returns false when the
  /// stream is exhausted (end marker, error reply, or dead connection).
  bool ReadScanBatch(StreamState& stream,
                     std::vector<EdgeCursor::Edge>* edges,
                     std::string* arena) {
    std::lock_guard<std::mutex> lock(mu_);
    while (true) {
      if (!stream.parked.empty()) {
        std::string body = std::move(stream.parked.front());
        stream.parked.pop_front();
        if (!ParseBatch(body, edges, arena)) {
          MarkBrokenLocked();
          return false;
        }
        if (!edges->empty()) return true;
        continue;  // empty filler/final frame
      }
      if (!stream.live || broken_) return false;
      Frame frame;
      if (!socket_.ReadFrame(&frame)) {
        MarkBrokenLocked();
        return false;
      }
      bool end = (frame.flags & kFlagEndOfStream) != 0;
      if (end) {
        stream.live = false;
        active_.reset();
      }
      if (frame.type != MsgType::kScanBatch) {
        // Error reply aborting the scan (it carries kFlagEndOfStream).
        if (!end) MarkBrokenLocked();  // protocol violation
        return false;
      }
      if (!ParseBatch(frame.body, edges, arena)) {
        MarkBrokenLocked();
        return false;
      }
      if (!edges->empty()) return true;
      if (!stream.live) return false;  // empty final frame
    }
  }

 private:
  void MarkBrokenLocked() {
    broken_ = true;
    if (active_ != nullptr) {
      active_->live = false;
      active_.reset();
    }
    socket_.Shutdown();
  }

  /// Moves the live stream's remaining frames off the socket into its
  /// parked buffer, freeing the socket for the next request while the
  /// stream's cursor keeps its position and data.
  void ParkActiveStreamLocked() {
    // If no cursor holds the stream anymore (early-exit scan whose cursor
    // is gone), the frames can be discarded instead of buffered.
    bool abandoned = active_ != nullptr && active_.use_count() == 1;
    while (active_ != nullptr && active_->live) {
      Frame frame;
      if (!socket_.ReadFrame(&frame)) {
        MarkBrokenLocked();
        return;
      }
      bool end = (frame.flags & kFlagEndOfStream) != 0;
      if (frame.type == MsgType::kScanBatch) {
        if (!abandoned) active_->parked.push_back(std::move(frame.body));
      } else if (!end) {
        MarkBrokenLocked();  // protocol violation
        return;
      }
      if (end) {
        active_->live = false;
        active_.reset();
      }
    }
  }

  static bool ParseBatch(std::string_view body,
                         std::vector<EdgeCursor::Edge>* edges,
                         std::string* arena) {
    edges->clear();
    arena->clear();
    WireReader reader(body);
    uint32_t count;
    if (!reader.GetU32(&count)) return false;
    edges->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      int64_t dst, created;
      std::string_view props;
      if (!reader.GetI64(&dst) || !reader.GetI64(&created) ||
          !reader.GetBytes(&props)) {
        return false;
      }
      edges->push_back(EdgeCursor::Edge{
          dst, static_cast<uint32_t>(arena->size()),
          static_cast<uint32_t>(props.size()), created});
      arena->append(props.data(), props.size());
    }
    return reader.Exhausted();
  }

  mutable std::mutex mu_;
  Socket socket_;
  bool broken_ = false;
  std::shared_ptr<StreamState> active_;  // stream with frames on the socket
  std::string send_scratch_;
};

namespace {

/// Chunked-cursor source over a scan stream. Holds both the connection
/// and its stream state alive; whether the remaining batches arrive
/// straight off the socket or out of the parked buffer (after an
/// interleaved request) is invisible here.
class RemoteBatchSource : public EdgeCursor::BatchSource {
 public:
  RemoteBatchSource(
      std::shared_ptr<RemoteStore::Connection> connection,
      std::shared_ptr<RemoteStore::Connection::StreamState> stream)
      : connection_(std::move(connection)), stream_(std::move(stream)) {}

  bool Fill(std::vector<EdgeCursor::Edge>* edges,
            std::string* arena) override {
    return connection_->ReadScanBatch(*stream_, edges, arena);
  }

 private:
  std::shared_ptr<RemoteStore::Connection> connection_;
  std::shared_ptr<RemoteStore::Connection::StreamState> stream_;
};

}  // namespace

// A remote session: one checked-out connection plus the server-side txn
// id. Serves as both StoreTxn and StoreReadTxn; mutations on a read-only
// session fail client-side with kNotActive (matching what the server
// would answer).
class RemoteTxn : public StoreTxn {
 public:
  RemoteTxn(RemoteStore* store,
            std::shared_ptr<RemoteStore::Connection> connection,
            uint64_t txn_id, bool writable, bool replica = false)
      : store_(store),
        connection_(std::move(connection)),
        txn_id_(txn_id),
        writable_(writable),
        replica_(replica),
        dead_(connection_ == nullptr),
        open_(connection_ != nullptr) {}

  ~RemoteTxn() override {
    // Destroying an open session aborts it (write) or releases it (read)
    // — synchronously, so engine latches are free once the destructor
    // returns. Release() is a no-op if Abort already returned the
    // connection.
    Abort();
    Release();
  }

  // --- Reads ---

  StatusOr<std::string> GetNode(vertex_t id) override {
    std::string body = BodyI64(id);
    Frame reply;
    Status status = RoundTrip(MsgType::kGetNode, body, &reply);
    if (status != Status::kOk) return status;
    return TakeBytesPayload(reply);
  }

  StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                vertex_t dst) override {
    std::string body = BodyLink(src, label, dst);
    Frame reply;
    Status status = RoundTrip(MsgType::kGetLink, body, &reply);
    if (status != Status::kOk) return status;
    return TakeBytesPayload(reply);
  }

  EdgeCursor ScanLinks(vertex_t src, label_t label, size_t limit) override {
    if (!open_) return EdgeCursor();
    std::string body;
    WireWriter writer(&body);
    writer.PutU64(txn_id_);
    writer.PutI64(src);
    writer.PutU16(label);
    writer.PutU64(limit);
    auto stream = connection_->StartScan(body);
    if (stream == nullptr) return EdgeCursor();
    return EdgeCursor(std::make_unique<RemoteBatchSource>(
        connection_, std::move(stream)));
  }

  size_t CountLinks(vertex_t src, label_t label) override {
    std::string body;
    WireWriter writer(&body);
    writer.PutU64(txn_id_);
    writer.PutI64(src);
    writer.PutU16(label);
    Frame reply;
    if (RoundTrip(MsgType::kCountLinks, body, &reply) != Status::kOk) {
      return 0;
    }
    WireReader reader(PayloadAfterStatus(reply));
    uint64_t count = 0;
    reader.GetU64(&count);
    return count;
  }

  vertex_t VertexCount() override {
    Frame reply;
    if (RoundTrip(MsgType::kVertexCount, {}, &reply) != Status::kOk) {
      return 0;
    }
    WireReader reader(PayloadAfterStatus(reply));
    int64_t count = 0;
    reader.GetI64(&count);
    return count;
  }

  Status SessionStatus() const override {
    Status guard = Guard();
    if (guard != Status::kOk) return guard;
    return connection_->healthy() ? Status::kOk : Status::kUnavailable;
  }

  // --- Writes ---

  StatusOr<vertex_t> AddNode(std::string_view data) override {
    if (!writable_) return Status::kNotActive;
    std::string body;
    WireWriter writer(&body);
    writer.PutU64(txn_id_);
    writer.PutBytes(data);
    Frame reply;
    Status status = RoundTrip(MsgType::kAddNode, body, &reply);
    if (status != Status::kOk) return status;
    WireReader reader(PayloadAfterStatus(reply));
    int64_t id;
    if (!reader.GetI64(&id)) return Status::kUnavailable;
    return id;
  }

  Status UpdateNode(vertex_t id, std::string_view data) override {
    if (!writable_) return Status::kNotActive;
    std::string body;
    WireWriter writer(&body);
    writer.PutU64(txn_id_);
    writer.PutI64(id);
    writer.PutBytes(data);
    Frame reply;
    return RoundTrip(MsgType::kUpdateNode, body, &reply);
  }

  Status DeleteNode(vertex_t id) override {
    if (!writable_) return Status::kNotActive;
    std::string body = BodyI64(id);
    Frame reply;
    return RoundTrip(MsgType::kDeleteNode, body, &reply);
  }

  StatusOr<bool> AddLink(vertex_t src, label_t label, vertex_t dst,
                         std::string_view data) override {
    if (!writable_) return Status::kNotActive;
    std::string body = BodyLink(src, label, dst, data);
    Frame reply;
    Status status = RoundTrip(MsgType::kAddLink, body, &reply);
    if (status != Status::kOk) return status;
    WireReader reader(PayloadAfterStatus(reply));
    uint8_t inserted;
    if (!reader.GetU8(&inserted)) return Status::kUnavailable;
    return inserted != 0;
  }

  Status UpdateLink(vertex_t src, label_t label, vertex_t dst,
                    std::string_view data) override {
    if (!writable_) return Status::kNotActive;
    std::string body = BodyLink(src, label, dst, data);
    Frame reply;
    return RoundTrip(MsgType::kUpdateLink, body, &reply);
  }

  Status DeleteLink(vertex_t src, label_t label, vertex_t dst) override {
    if (!writable_) return Status::kNotActive;
    std::string body = BodyLink(src, label, dst);
    Frame reply;
    return RoundTrip(MsgType::kDeleteLink, body, &reply);
  }

  // --- Lifecycle ---

  StatusOr<timestamp_t> Commit() override {
    if (!writable_) return Status::kNotActive;
    Status guard = Guard();
    if (guard != Status::kOk) return guard;
    Frame reply;
    Status status = CallWithTxn(MsgType::kCommit, {}, &reply);
    open_ = false;
    Release();
    if (status != Status::kOk) return status;
    WireReader reader(PayloadAfterStatus(reply));
    int64_t epoch;
    if (!reader.GetI64(&epoch)) return Status::kUnavailable;
    // Commit epochs feed the client's read-your-epoch bound: a later read
    // session routed to a follower waits until this epoch is applied.
    store_->NoteCommitEpoch(epoch);
    return epoch;
  }

  void Abort() override {
    if (!open_) return;
    Frame reply;
    CallWithTxn(writable_ ? MsgType::kAbort : MsgType::kEndRead, {}, &reply);
    open_ = false;
    Release();
  }

 private:
  /// txn-id-prefixed request with status-checked reply. Payload-free
  /// `extra` for lifecycle messages; reads/writes build their own bodies.
  Status CallWithTxn(MsgType type, std::string_view extra, Frame* reply) {
    if (connection_ == nullptr) return Status::kUnavailable;
    std::string body;
    WireWriter writer(&body);
    writer.PutU64(txn_id_);
    body.append(extra.data(), extra.size());
    if (!connection_->Call(type, body, reply)) return Status::kUnavailable;
    WireReader reader(reply->body);
    uint8_t status;
    if (!reader.GetU8(&status)) return Status::kUnavailable;
    return StatusFromWire(status);
  }

  /// Distinguishes "the network is gone" (kUnavailable) from "this session
  /// already ended" (kNotActive, matching embedded engines).
  Status Guard() const {
    if (dead_) return Status::kUnavailable;
    if (!open_ || connection_ == nullptr) return Status::kNotActive;
    return Status::kOk;
  }

  /// Sends a fully built body (already txn-id-prefixed).
  Status RoundTrip(MsgType type, std::string_view body, Frame* reply) {
    Status guard = Guard();
    if (guard != Status::kOk) return guard;
    if (body.empty()) return CallWithTxn(type, {}, reply);
    if (!connection_->Call(type, body, reply)) return Status::kUnavailable;
    WireReader reader(reply->body);
    uint8_t status;
    if (!reader.GetU8(&status)) return Status::kUnavailable;
    return StatusFromWire(status);
  }

  std::string BodyI64(int64_t value) const {
    std::string body;
    WireWriter writer(&body);
    writer.PutU64(txn_id_);
    writer.PutI64(value);
    return body;
  }

  std::string BodyLink(vertex_t src, label_t label, vertex_t dst) const {
    std::string body;
    WireWriter writer(&body);
    writer.PutU64(txn_id_);
    writer.PutI64(src);
    writer.PutU16(label);
    writer.PutI64(dst);
    return body;
  }

  std::string BodyLink(vertex_t src, label_t label, vertex_t dst,
                       std::string_view data) const {
    std::string body = BodyLink(src, label, dst);
    WireWriter writer(&body);
    writer.PutBytes(data);
    return body;
  }

  static std::string_view PayloadAfterStatus(const Frame& reply) {
    return std::string_view(reply.body).substr(1);
  }

  static StatusOr<std::string> TakeBytesPayload(const Frame& reply) {
    WireReader reader(PayloadAfterStatus(reply));
    std::string_view bytes;
    if (!reader.GetBytes(&bytes)) return Status::kUnavailable;
    return std::string(bytes);
  }

  void Release() {
    if (connection_ != nullptr) {
      store_->ReleaseConnection(std::move(connection_), replica_);
      connection_ = nullptr;
    }
  }

  RemoteStore* store_;
  std::shared_ptr<RemoteStore::Connection> connection_;
  uint64_t txn_id_;
  bool writable_;
  bool replica_;  // checked out of the follower pool, returns there
  bool dead_;  // never had a connection: kUnavailable, not kNotActive
  bool open_;
};

// --- Pipeline -------------------------------------------------------------

namespace {

/// One pipelined send is capped so its replies (small, but nonzero) can
/// never outgrow the server's per-connection output watermarks while the
/// client is still writing — the classic pipelining deadlock.
constexpr size_t kPipelineChunkBytes = 256u << 10;

}  // namespace

RemoteStore::Pipeline::Pipeline(RemoteStore* store,
                                std::shared_ptr<Connection> connection,
                                uint64_t txn_id)
    : store_(store),
      connection_(std::move(connection)),
      txn_id_(txn_id),
      open_(connection_ != nullptr) {}

RemoteStore::Pipeline::~Pipeline() { Abort(); }

void RemoteStore::Pipeline::Queue(MsgType type, std::string_view body) {
  if (!open_) return;
  EncodeFrame(type, kFlagNone, body, &batch_);
  ends_.push_back(batch_.size());
}

void RemoteStore::Pipeline::AddNode(std::string_view data) {
  std::string body;
  WireWriter writer(&body);
  writer.PutU64(txn_id_);
  writer.PutBytes(data);
  Queue(MsgType::kAddNode, body);
}

void RemoteStore::Pipeline::UpdateNode(vertex_t id, std::string_view data) {
  std::string body;
  WireWriter writer(&body);
  writer.PutU64(txn_id_);
  writer.PutI64(id);
  writer.PutBytes(data);
  Queue(MsgType::kUpdateNode, body);
}

void RemoteStore::Pipeline::DeleteNode(vertex_t id) {
  std::string body;
  WireWriter writer(&body);
  writer.PutU64(txn_id_);
  writer.PutI64(id);
  Queue(MsgType::kDeleteNode, body);
}

void RemoteStore::Pipeline::AddLink(vertex_t src, label_t label,
                                    vertex_t dst, std::string_view data) {
  std::string body;
  WireWriter writer(&body);
  writer.PutU64(txn_id_);
  writer.PutI64(src);
  writer.PutU16(label);
  writer.PutI64(dst);
  writer.PutBytes(data);
  Queue(MsgType::kAddLink, body);
}

void RemoteStore::Pipeline::UpdateLink(vertex_t src, label_t label,
                                       vertex_t dst, std::string_view data) {
  std::string body;
  WireWriter writer(&body);
  writer.PutU64(txn_id_);
  writer.PutI64(src);
  writer.PutU16(label);
  writer.PutI64(dst);
  writer.PutBytes(data);
  Queue(MsgType::kUpdateLink, body);
}

void RemoteStore::Pipeline::DeleteLink(vertex_t src, label_t label,
                                       vertex_t dst) {
  std::string body;
  WireWriter writer(&body);
  writer.PutU64(txn_id_);
  writer.PutI64(src);
  writer.PutU16(label);
  writer.PutI64(dst);
  Queue(MsgType::kDeleteLink, body);
}

bool RemoteStore::Pipeline::Flush(std::vector<Status>* statuses) {
  if (statuses != nullptr) statuses->clear();
  if (!open_) return false;
  if (ends_.empty()) return true;
  std::vector<Frame> replies;
  size_t first = 0;
  size_t first_off = 0;
  while (first < ends_.size()) {
    // At least one frame per chunk; otherwise as many as fit the cap.
    size_t last = first + 1;
    while (last < ends_.size() &&
           ends_[last] - first_off <= kPipelineChunkBytes) {
      ++last;
    }
    size_t last_off = ends_[last - 1];
    std::string_view chunk =
        std::string_view(batch_).substr(first_off, last_off - first_off);
    if (!connection_->Exchange(chunk, last - first, &replies)) {
      open_ = false;
      Release();
      return false;
    }
    first = last;
    first_off = last_off;
  }
  if (statuses != nullptr) {
    statuses->reserve(replies.size());
    for (const Frame& reply : replies) {
      WireReader reader(reply.body);
      uint8_t status;
      statuses->push_back(reader.GetU8(&status) ? StatusFromWire(status)
                                                : Status::kUnavailable);
    }
  }
  batch_.clear();
  ends_.clear();
  return true;
}

StatusOr<timestamp_t> RemoteStore::Pipeline::Commit() {
  if (!open_) return Status::kUnavailable;
  if (!Flush(nullptr)) return Status::kUnavailable;
  std::string body;
  WireWriter writer(&body);
  writer.PutU64(txn_id_);
  Frame reply;
  bool ok = connection_->Call(MsgType::kCommit, body, &reply);
  open_ = false;
  Release();
  if (!ok) return Status::kUnavailable;
  WireReader reader(reply.body);
  uint8_t status;
  if (!reader.GetU8(&status)) return Status::kUnavailable;
  Status decoded = StatusFromWire(status);
  if (decoded != Status::kOk) return decoded;
  int64_t epoch;
  if (!reader.GetI64(&epoch)) return Status::kUnavailable;
  store_->NoteCommitEpoch(epoch);
  return epoch;
}

void RemoteStore::Pipeline::Abort() {
  if (!open_) return;
  batch_.clear();
  ends_.clear();
  std::string body;
  WireWriter writer(&body);
  writer.PutU64(txn_id_);
  Frame reply;
  connection_->Call(MsgType::kAbort, body, &reply);
  open_ = false;
  Release();
}

void RemoteStore::Pipeline::Release() {
  if (connection_ != nullptr) {
    store_->ReleaseConnection(std::move(connection_), /*replica=*/false);
    connection_ = nullptr;
  }
}

std::unique_ptr<RemoteStore::Pipeline> RemoteStore::NewPipeline() {
  std::shared_ptr<Connection> connection =
      AcquireConnection(/*replica=*/false);
  uint64_t txn_id = 0;
  if (connection != nullptr) {
    Frame reply;
    if (connection->Call(MsgType::kBeginTxn, {}, &reply)) {
      WireReader reader(reply.body);
      uint8_t status;
      if (!reader.GetU8(&status) || StatusFromWire(status) != Status::kOk ||
          !reader.GetU64(&txn_id)) {
        connection = nullptr;
      }
    } else {
      connection = nullptr;
    }
  }
  return std::unique_ptr<Pipeline>(
      new Pipeline(this, std::move(connection), txn_id));
}

std::unique_ptr<RemoteStore> RemoteStore::Connect(const Options& options) {
  std::string name;
  StoreTraits traits;
  auto connection = Connection::Dial(options, &name, &traits);
  if (connection == nullptr) return nullptr;
  std::unique_ptr<RemoteStore> store(new RemoteStore(options));
  store->remote_name_ = std::move(name);
  store->traits_ = traits;
  store->pool_.push_back(std::move(connection));
  return store;
}

RemoteStore::~RemoteStore() = default;

std::shared_ptr<RemoteStore::Connection> RemoteStore::AcquireConnection(
    bool replica) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    std::vector<std::shared_ptr<Connection>>& pool =
        replica ? replica_pool_ : pool_;
    while (!pool.empty()) {
      std::shared_ptr<Connection> connection = std::move(pool.back());
      pool.pop_back();
      if (connection->healthy()) return connection;
    }
  }
  Options dial = options_;
  if (replica) {
    dial.host = options_.replica_host;
    dial.port = options_.replica_port;
  }
  return Connection::Dial(dial, nullptr, nullptr);
}

void RemoteStore::ReleaseConnection(std::shared_ptr<Connection> connection,
                                    bool replica) {
  if (connection == nullptr || !connection->healthy()) return;
  std::lock_guard<std::mutex> lock(pool_mu_);
  (replica ? replica_pool_ : pool_).push_back(std::move(connection));
}

void RemoteStore::NoteCommitEpoch(timestamp_t epoch) {
  timestamp_t current = last_commit_epoch_.load(std::memory_order_relaxed);
  while (current < epoch &&
         !last_commit_epoch_.compare_exchange_weak(
             current, epoch, std::memory_order_relaxed)) {
  }
}

bool RemoteStore::ReplicaBackedOff() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return replica_backoff_ms_ > 0 &&
         std::chrono::steady_clock::now() < replica_retry_at_;
}

void RemoteStore::NoteReplicaFailure() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  replica_backoff_ms_ =
      replica_backoff_ms_ == 0
          ? options_.replica_backoff_ms
          : std::min(replica_backoff_ms_ * 2,
                     options_.replica_backoff_cap_ms);
  replica_retry_at_ = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(replica_backoff_ms_);
}

// Follower-first read session: kBeginReadTxnAt carrying the client's
// read-your-epoch bound. Null on any failure — dead follower, lagging
// frontier (kTimeout), protocol mismatch — and the caller retries once
// against the primary; the follower goes into a capped backoff so a dead
// one is not re-dialed on every read.
std::unique_ptr<StoreTxn> RemoteStore::BeginReplicaReadSession() {
  if (ReplicaBackedOff()) return nullptr;
  std::shared_ptr<Connection> connection =
      AcquireConnection(/*replica=*/true);
  if (connection == nullptr) {
    NoteReplicaFailure();
    return nullptr;
  }
  std::string body;
  WireWriter writer(&body);
  writer.PutI64(last_commit_epoch_.load(std::memory_order_relaxed));
  writer.PutU32(options_.read_your_epoch_timeout_ms);
  Frame reply;
  uint64_t txn_id = 0;
  uint8_t status = 0;
  if (!connection->Call(MsgType::kBeginReadTxnAt, body, &reply)) {
    NoteReplicaFailure();
    return nullptr;
  }
  WireReader reader(reply.body);
  if (!reader.GetU8(&status) || StatusFromWire(status) != Status::kOk ||
      !reader.GetU64(&txn_id)) {
    // The follower answered but cannot serve the epoch (or rejected the
    // request): return its healthy connection and fail over this session.
    ReleaseConnection(std::move(connection), /*replica=*/true);
    NoteReplicaFailure();
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    replica_backoff_ms_ = 0;  // a served session clears the penalty box
  }
  return std::make_unique<RemoteTxn>(this, std::move(connection), txn_id,
                                     /*writable=*/false, /*replica=*/true);
}

size_t RemoteStore::idle_connections() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return pool_.size();
}

bool RemoteStore::Stats(metrics::Snapshot* out) {
  std::shared_ptr<Connection> connection =
      AcquireConnection(/*replica=*/false);
  if (connection == nullptr) return false;
  Frame reply;
  bool ok = connection->Call(MsgType::kStats, {}, &reply);
  ReleaseConnection(std::move(connection), /*replica=*/false);
  if (!ok) return false;
  WireReader reader(reply.body);
  uint8_t status;
  std::string_view payload;
  if (!reader.GetU8(&status) || StatusFromWire(status) != Status::kOk ||
      !reader.GetBytes(&payload) || !reader.Exhausted()) {
    return false;
  }
  return DecodeStats(payload, out);
}

std::unique_ptr<StoreTxn> RemoteStore::BeginSession(bool writable) {
  std::shared_ptr<Connection> connection =
      AcquireConnection(/*replica=*/false);
  uint64_t txn_id = 0;
  if (connection != nullptr) {
    Frame reply;
    std::string empty;
    if (connection->Call(
            writable ? MsgType::kBeginTxn : MsgType::kBeginReadTxn, empty,
            &reply)) {
      WireReader reader(reply.body);
      uint8_t status;
      if (!reader.GetU8(&status) ||
          StatusFromWire(status) != Status::kOk ||
          !reader.GetU64(&txn_id)) {
        connection = nullptr;
      }
    } else {
      connection = nullptr;
    }
  }
  // A null connection yields a dead session: every operation reports
  // kUnavailable, which RunWrite surfaces without retrying.
  return std::make_unique<RemoteTxn>(this, std::move(connection), txn_id,
                                     writable);
}

std::unique_ptr<StoreTxn> RemoteStore::BeginTxn() {
  return BeginSession(/*writable=*/true);
}

std::unique_ptr<StoreReadTxn> RemoteStore::BeginReadTxn() {
  if (options_.replica_port != 0) {
    std::unique_ptr<StoreTxn> session = BeginReplicaReadSession();
    if (session != nullptr) return session;
    // One retry, against the primary. The epoch bound needs no wait
    // there: the primary's visibility already covers every commit it
    // acknowledged.
    read_failovers_.fetch_add(1, std::memory_order_relaxed);
  }
  return BeginSession(/*writable=*/false);
}

}  // namespace livegraph
