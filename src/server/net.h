// Thin POSIX TCP helpers shared by GraphServer and RemoteStore: RAII fds,
// full-buffer read/write loops, and frame-granularity send/receive built
// on the protocol framing (server/protocol.h). Blocking sockets carry the
// client side, the legacy thread-per-connection server mode, and
// replication push streams; the reactor server (server/reactor.h) flips
// its accepted sockets non-blocking and drives them through the Epoll /
// EventFd wrappers below.
#ifndef LIVEGRAPH_SERVER_NET_H_
#define LIVEGRAPH_SERVER_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "server/protocol.h"

struct iovec;

namespace livegraph {

namespace metrics {
class Counter;
}  // namespace metrics

/// Owning socket fd. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept
      : fd_(other.fd_), rx_bytes_(other.rx_bytes_), tx_bytes_(other.tx_bytes_) {
    other.fd_ = -1;
  }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// shutdown(SHUT_RDWR): unblocks any thread sitting in recv/send on this
  /// socket without racing the fd's lifetime (close alone would not).
  void Shutdown();
  void Close();

  /// Reads exactly `size` bytes. False on EOF, error, shutdown, or an
  /// expired receive deadline (SetRecvTimeout) — a hung peer surfaces as
  /// a failed read, not a wedged thread.
  bool ReadFull(void* data, size_t size);
  /// Writes exactly `size` bytes (MSG_NOSIGNAL: a dead peer surfaces as an
  /// error return, not SIGPIPE). False also on an expired send deadline
  /// (SetSendTimeout) — a peer that stops draining cannot wedge a server
  /// or replication thread forever.
  bool WriteFull(const void* data, size_t size);

  /// Reads at most `size` bytes in one recv: > 0 bytes read, 0 on orderly
  /// EOF, -1 on error or an expired receive deadline. For byte-oriented
  /// peers (the /metrics HTTP endpoint); the frame protocol uses ReadFull.
  int64_t ReadSome(void* data, size_t size);

  /// Optional byte accounting (docs/OBSERVABILITY.md): when set, ReadFull/
  /// ReadSome and WriteFull add transferred byte counts to `rx`/`tx`.
  /// Pointers are borrowed and must outlive the socket — registry-owned
  /// metrics::Counter instances live for the process, so the server wires
  /// its rx/tx totals here on every accepted connection. Carried across
  /// moves with the fd.
  void SetByteCounters(metrics::Counter* rx, metrics::Counter* tx) {
    rx_bytes_ = rx;
    tx_bytes_ = tx;
  }

  /// Per-operation receive deadline (SO_RCVTIMEO): any single recv that
  /// makes no progress for `timeout_ms` fails the read. 0 disables.
  void SetRecvTimeout(int64_t timeout_ms);
  /// Per-operation send deadline (SO_SNDTIMEO), same semantics.
  void SetSendTimeout(int64_t timeout_ms);

  /// True when at least one byte is readable within `timeout_ms`
  /// (0 = pure poll). Used by the replication push loop to drain
  /// follower acks from a socket it otherwise only writes to, without a
  /// second thread. False on timeout, error, or invalid socket — callers
  /// that need to distinguish follow up with ReadFrame.
  bool Readable(int timeout_ms) const;

  // --- Non-blocking mode (reactor server) ---

  /// Result codes for the non-blocking transfer calls below.
  static constexpr int64_t kWouldBlock = -2;

  /// O_NONBLOCK on/off. The reactor flips accepted sockets non-blocking;
  /// a connection handed back to a blocking thread (replication
  /// subscription adoption) flips it back.
  bool SetNonBlocking(bool enabled);

  /// One non-blocking recv: > 0 bytes read, 0 on orderly EOF, kWouldBlock
  /// when nothing is buffered, -1 on error. Shares the "net.recv"
  /// failpoint with ReadFull so chaos runs exercise the reactor's read
  /// path too.
  int64_t ReadNonBlocking(void* data, size_t size);

  /// One non-blocking gathered send over `iov[0..iov_count)`: >= 0 bytes
  /// written (possibly short — the caller keeps its queue and retries on
  /// EPOLLOUT), kWouldBlock when the socket buffer is full, -1 on error.
  /// MSG_NOSIGNAL like WriteFull; shares the "net.send" failpoint.
  int64_t WritevNonBlocking(const struct iovec* iov, int iov_count);

  /// Frames `body` and writes it in one buffer. `scratch` is caller-owned
  /// so steady-state sends reuse its capacity.
  bool WriteFrame(MsgType type, uint8_t flags, std::string_view body,
                  std::string* scratch);
  /// Reads one frame, validating header structure and CRC. False means the
  /// stream is unusable (EOF, I/O error, corrupt frame) — the caller must
  /// close.
  bool ReadFrame(Frame* frame);

 private:
  int fd_ = -1;
  metrics::Counter* rx_bytes_ = nullptr;
  metrics::Counter* tx_bytes_ = nullptr;
};

/// Owning epoll instance (level-triggered). Thin enough that the reactor's
/// event loop reads as epoll calls, thick enough that fd lifetime and
/// EINTR handling live in one place.
class Epoll {
 public:
  /// One readiness report. `data` is the caller's cookie from Add/Mod.
  struct Event {
    uint64_t data;
    bool readable;   // EPOLLIN | EPOLLHUP | EPOLLERR
    bool writable;   // EPOLLOUT
  };

  static constexpr uint32_t kRead = 1u << 0;
  static constexpr uint32_t kWrite = 1u << 1;

  Epoll();
  ~Epoll();
  Epoll(const Epoll&) = delete;
  Epoll& operator=(const Epoll&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Registers / rearms / removes `fd` with interest in kRead/kWrite bits.
  /// `data` comes back verbatim in Event::data (connection cookie).
  bool Add(int fd, uint32_t interest, uint64_t data);
  bool Mod(int fd, uint32_t interest, uint64_t data);
  bool Del(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) and appends ready events to
  /// `out` (cleared first). Returns the event count; 0 on timeout. EINTR
  /// retries internally.
  int Wait(int timeout_ms, std::vector<Event>* out);

 private:
  int fd_ = -1;
};

/// Owning eventfd: the reactor's cross-thread doorbell (worker-pool
/// completions, Stop). Registered in the loop's epoll like any socket.
class EventFd {
 public:
  EventFd();
  ~EventFd();
  EventFd(const EventFd&) = delete;
  EventFd& operator=(const EventFd&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Wakes any epoll_wait watching the fd. Async-signal-safe, never
  /// blocks (the counter saturates harmlessly).
  void Signal();
  /// Consumes all pending signals so the level-triggered epoll quiets.
  void Drain();

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = ephemeral). On success fills
/// `bound_port` with the actual port. Invalid socket on failure.
Socket ListenTcp(const std::string& host, uint16_t port,
                 uint16_t* bound_port);

/// Accepts one connection (blocking); invalid socket once the listener is
/// shut down.
Socket AcceptTcp(const Socket& listener);

/// Connects to host:port with TCP_NODELAY. Invalid socket on failure.
Socket ConnectTcp(const std::string& host, uint16_t port);

}  // namespace livegraph

#endif  // LIVEGRAPH_SERVER_NET_H_
