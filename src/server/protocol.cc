#include "server/protocol.h"

#include "server/wire.h"
#include "util/crc32.h"

namespace livegraph {

namespace {

/// CRC over the first 12 header bytes, extended over the body — one value
/// guards both, and the header can still be validated (provisionally)
/// before the body arrives because its own bytes are covered.
uint32_t FrameCrc(const char* header12, std::string_view body) {
  uint32_t crc = Crc32c(header12, 12);
  return Crc32c(body.data(), body.size(), crc);
}

bool KnownMsgType(uint8_t type) {
  return (type >= static_cast<uint8_t>(MsgType::kHello) &&
          type <= static_cast<uint8_t>(MsgType::kStats)) ||
         (type >= static_cast<uint8_t>(MsgType::kReply) &&
          type <= static_cast<uint8_t>(MsgType::kLogBatch));
}

}  // namespace

void EncodeFrame(MsgType type, uint8_t flags, std::string_view body,
                 std::string* out) {
  size_t header_at = out->size();
  WireWriter writer(out);
  writer.PutU32(kFrameMagic);
  writer.PutU8(static_cast<uint8_t>(type));
  writer.PutU8(flags);
  writer.PutU16(0);  // reserved
  writer.PutU32(static_cast<uint32_t>(body.size()));
  writer.PutU32(FrameCrc(out->data() + header_at, body));
  out->append(body.data(), body.size());
}

bool DecodeFrameHeader(const char (&header)[kFrameHeaderSize],
                       MsgType* type, uint8_t* flags, uint32_t* body_size) {
  WireReader reader(std::string_view(header, kFrameHeaderSize));
  uint32_t magic, crc;
  uint8_t raw_type;
  uint16_t reserved;
  if (!reader.GetU32(&magic) || !reader.GetU8(&raw_type) ||
      !reader.GetU8(flags) || !reader.GetU16(&reserved) ||
      !reader.GetU32(body_size) || !reader.GetU32(&crc)) {
    return false;
  }
  if (magic != kFrameMagic || reserved != 0 || !KnownMsgType(raw_type) ||
      *body_size > kMaxFrameBody) {
    return false;
  }
  *type = static_cast<MsgType>(raw_type);
  return true;
}

bool ValidateFrame(const char (&header)[kFrameHeaderSize],
                   std::string_view body) {
  WireReader reader(std::string_view(header + 12, 4));
  uint32_t stored_crc;
  if (!reader.GetU32(&stored_crc)) return false;
  return FrameCrc(header, body) == stored_crc;
}

// Fixed wire constants, deliberately NOT the enum ordinals: reordering or
// inserting a Status value in util/types.h must not silently change what
// old peers decode. Both directions are explicit switches over the same
// constants.
uint8_t StatusToWire(Status status) {
  switch (status) {
    case Status::kOk: return 0;
    case Status::kConflict: return 1;
    case Status::kTimeout: return 2;
    case Status::kNotFound: return 3;
    case Status::kNotActive: return 4;
    case Status::kUnavailable: return 5;
    case Status::kOutOfRange: return 6;
    case Status::kIOError: return 7;
    case Status::kResourceExhausted: return 8;
  }
  return 5;  // unknown statuses degrade to kUnavailable
}

Status StatusFromWire(uint8_t wire) {
  switch (wire) {
    case 0: return Status::kOk;
    case 1: return Status::kConflict;
    case 2: return Status::kTimeout;
    case 3: return Status::kNotFound;
    case 4: return Status::kNotActive;
    case 5: return Status::kUnavailable;
    case 6: return Status::kOutOfRange;
    case 7: return Status::kIOError;
    case 8: return Status::kResourceExhausted;
    default: return Status::kUnavailable;
  }
}

}  // namespace livegraph
