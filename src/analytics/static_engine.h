// Gemini-style static analytics engine (§7.4): immutable CSR + parallel
// kernels. Compared against LiveGraph's in-situ analytics in Table 10,
// including the ETL cost of getting data into it.
#ifndef LIVEGRAPH_ANALYTICS_STATIC_ENGINE_H_
#define LIVEGRAPH_ANALYTICS_STATIC_ENGINE_H_

#include <utility>
#include <vector>

#include "analytics/conncomp.h"
#include "analytics/pagerank.h"
#include "baselines/csr.h"

namespace livegraph {

class StaticGraphEngine {
 public:
  explicit StaticGraphEngine(Csr csr) : csr_(std::move(csr)) {}

  const Csr& csr() const { return csr_; }

  std::vector<double> PageRank(const PageRankOptions& options) const {
    return PageRankOnCsr(csr_, options);
  }
  std::vector<vertex_t> ConnComp(int threads) const {
    return ConnCompOnCsr(csr_, threads);
  }

 private:
  Csr csr_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_ANALYTICS_STATIC_ENGINE_H_
