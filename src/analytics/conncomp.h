// Connected Components via label propagation — the paper's second
// iterative workload (§7.4, Table 10: "ConnComp runs till convergence").
// Edges are treated as undirected (both endpoints relax).
#ifndef LIVEGRAPH_ANALYTICS_CONNCOMP_H_
#define LIVEGRAPH_ANALYTICS_CONNCOMP_H_

#include <vector>

#include "baselines/csr.h"
#include "core/transaction.h"

namespace livegraph {

std::vector<vertex_t> ConnCompOnSnapshot(const ReadTransaction& snapshot,
                                         label_t label, int threads);

/// In-situ over a sharded engine: per-shard pinned snapshots, one shared
/// component frontier over global vertex IDs (see PageRankOnShardSnapshots
/// for the routing scheme).
std::vector<vertex_t> ConnCompOnShardSnapshots(
    const std::vector<ReadTransaction>& snapshots, label_t label,
    int threads);

std::vector<vertex_t> ConnCompOnCsr(const Csr& csr, int threads);

}  // namespace livegraph

#endif  // LIVEGRAPH_ANALYTICS_CONNCOMP_H_
