#include "analytics/conncomp.h"

#include <atomic>

#include "analytics/shard_view.h"
#include "util/thread_pool.h"

namespace livegraph {

namespace {

/// Relaxes components across an edge until fixpoint.
/// All `comp` accesses are relaxed by design: label propagation is a
/// monotone (min-relaxation) algorithm — a stale read can only delay
/// convergence, never produce a wrong fixpoint, and the outer loop's
/// ParallelFor joins are the synchronization between sweeps.
bool RelaxMin(std::vector<std::atomic<vertex_t>>& comp, vertex_t a,
              vertex_t b) {
  vertex_t ca = comp[static_cast<size_t>(a)].load(std::memory_order_relaxed);
  vertex_t cb = comp[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  bool changed = false;
  while (cb > ca) {
    if (comp[static_cast<size_t>(b)].compare_exchange_weak(
            cb, ca, std::memory_order_relaxed)) {
      changed = true;
      break;
    }
  }
  while (ca > cb) {
    if (comp[static_cast<size_t>(a)].compare_exchange_weak(
            ca, cb, std::memory_order_relaxed)) {
      changed = true;
      break;
    }
  }
  return changed;
}

template <typename ScanNeighbors>
std::vector<vertex_t> ConnCompKernel(vertex_t n, int threads,
                                     const ScanNeighbors& scan) {
  std::vector<std::atomic<vertex_t>> comp(static_cast<size_t>(n));
  for (vertex_t v = 0; v < n; ++v) {
    comp[static_cast<size_t>(v)].store(v, std::memory_order_relaxed);
  }
  // relaxed on `changed`: written before and read after ParallelFor's
  // thread joins, which already order it.
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    ParallelFor(0, n, threads, [&](int64_t lo, int64_t hi) {
      bool local = false;
      for (int64_t v = lo; v < hi; ++v) {
        scan(static_cast<vertex_t>(v), [&](vertex_t dst) {
          local |= RelaxMin(comp, static_cast<vertex_t>(v), dst);
        });
      }
      if (local) changed.store(true, std::memory_order_relaxed);
    });
  }
  std::vector<vertex_t> result(static_cast<size_t>(n));
  for (vertex_t v = 0; v < n; ++v) {
    // Path-compress to the root label for stable output.
    vertex_t c = comp[static_cast<size_t>(v)].load(std::memory_order_relaxed);
    while (comp[static_cast<size_t>(c)].load(std::memory_order_relaxed) != c) {
      c = comp[static_cast<size_t>(c)].load(std::memory_order_relaxed);
    }
    result[static_cast<size_t>(v)] = c;
  }
  return result;
}

}  // namespace

std::vector<vertex_t> ConnCompOnSnapshot(const ReadTransaction& snapshot,
                                         label_t label, int threads) {
  return ConnCompKernel(snapshot.VertexCount(), threads,
                        [&](vertex_t v, const auto& emit) {
                          for (auto it = snapshot.GetEdges(v, label);
                               it.Valid(); it.Next()) {
                            emit(it.DstId());
                          }
                        });
}

std::vector<vertex_t> ConnCompOnShardSnapshots(
    const std::vector<ReadTransaction>& snapshots, label_t label,
    int threads) {
  // One shared component frontier over global IDs; per-shard TEL scans
  // relax across it in parallel (see PageRankOnShardSnapshots).
  return ConnCompKernel(GlobalVertexBound(snapshots), threads,
                        [&](vertex_t v, const auto& emit) {
                          for (auto it = ShardEdges(snapshots, v, label);
                               it.Valid(); it.Next()) {
                            emit(it.DstId());
                          }
                        });
}

std::vector<vertex_t> ConnCompOnCsr(const Csr& csr, int threads) {
  return ConnCompKernel(csr.vertex_count(), threads,
                        [&](vertex_t v, const auto& emit) {
                          for (vertex_t dst : csr.Neighbors(v)) emit(dst);
                        });
}

}  // namespace livegraph
