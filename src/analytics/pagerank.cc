#include "analytics/pagerank.h"

#include <atomic>

#include "analytics/shard_view.h"
#include "util/thread_pool.h"

namespace livegraph {

namespace {

// relaxed throughout this kernel: rank contributions are commutative sums
// with no cross-thread data dependencies inside a sweep, and each sweep is
// bracketed by ParallelFor thread joins that order the arrays between
// phases.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Shared push-style kernel: `for_each_vertex(v, emit)` must call
/// emit(dst) for every out-neighbor of v.
template <typename ScanNeighbors>
std::vector<double> PageRankKernel(vertex_t n,
                                   const std::vector<int64_t>& degrees,
                                   const PageRankOptions& options,
                                   const ScanNeighbors& scan) {
  std::vector<double> rank(static_cast<size_t>(n), n > 0 ? 1.0 / n : 0.0);
  std::vector<std::atomic<double>> next(static_cast<size_t>(n));
  for (int iter = 0; iter < options.iterations; ++iter) {
    for (auto& x : next) x.store(0.0, std::memory_order_relaxed);
    std::atomic<double> dangling_sum{0.0};
    ParallelFor(0, n, options.threads, [&](int64_t lo, int64_t hi) {
      double local_dangling = 0.0;
      for (int64_t v = lo; v < hi; ++v) {
        int64_t degree = degrees[static_cast<size_t>(v)];
        if (degree == 0) {
          local_dangling += rank[static_cast<size_t>(v)];
          continue;
        }
        double share = rank[static_cast<size_t>(v)] / double(degree);
        scan(static_cast<vertex_t>(v), [&](vertex_t dst) {
          AtomicAdd(next[static_cast<size_t>(dst)], share);
        });
      }
      AtomicAdd(dangling_sum, local_dangling);
    });
    double base = n > 0 ? (1.0 - options.damping) / n +
                              options.damping * dangling_sum.load() / n
                        : 0.0;
    ParallelFor(0, n, options.threads, [&](int64_t lo, int64_t hi) {
      for (int64_t v = lo; v < hi; ++v) {
        rank[static_cast<size_t>(v)] =
            base + options.damping *
                       next[static_cast<size_t>(v)].load(
                           std::memory_order_relaxed);
      }
    });
  }
  return rank;
}

}  // namespace

std::vector<double> PageRankOnSnapshot(const ReadTransaction& snapshot,
                                       label_t label,
                                       const PageRankOptions& options) {
  const vertex_t n = snapshot.VertexCount();
  std::vector<int64_t> degrees(static_cast<size_t>(n), 0);
  ParallelFor(0, n, options.threads, [&](int64_t lo, int64_t hi) {
    for (int64_t v = lo; v < hi; ++v) {
      degrees[static_cast<size_t>(v)] =
          static_cast<int64_t>(snapshot.CountEdges(v, label));
    }
  });
  return PageRankKernel(
      n, degrees, options, [&](vertex_t v, const auto& emit) {
        for (auto it = snapshot.GetEdges(v, label); it.Valid(); it.Next()) {
          emit(it.DstId());
        }
      });
}

std::vector<double> PageRankOnShardSnapshots(
    const std::vector<ReadTransaction>& snapshots, label_t label,
    const PageRankOptions& options) {
  // Shared frontier: the rank/next/degree arrays span global vertex IDs;
  // each worker's slice of [0, n) interleaves across every shard, so all N
  // engines are scanned in parallel against the one frontier.
  const vertex_t n = GlobalVertexBound(snapshots);
  std::vector<int64_t> degrees(static_cast<size_t>(n), 0);
  ParallelFor(0, n, options.threads, [&](int64_t lo, int64_t hi) {
    for (int64_t v = lo; v < hi; ++v) {
      degrees[static_cast<size_t>(v)] =
          static_cast<int64_t>(ShardCountEdges(snapshots, v, label));
    }
  });
  return PageRankKernel(
      n, degrees, options, [&](vertex_t v, const auto& emit) {
        for (auto it = ShardEdges(snapshots, v, label); it.Valid();
             it.Next()) {
          emit(it.DstId());
        }
      });
}

std::vector<double> PageRankOnCsr(const Csr& csr,
                                  const PageRankOptions& options) {
  const vertex_t n = csr.vertex_count();
  std::vector<int64_t> degrees(static_cast<size_t>(n));
  for (vertex_t v = 0; v < n; ++v) degrees[static_cast<size_t>(v)] = csr.Degree(v);
  return PageRankKernel(n, degrees, options,
                        [&](vertex_t v, const auto& emit) {
                          for (vertex_t dst : csr.Neighbors(v)) emit(dst);
                        });
}

}  // namespace livegraph
