// ETL: export a LiveGraph snapshot to CSR — the conversion cost the paper
// eliminates with in-situ analytics (§7.4, Table 10: "We measured this ETL
// overhead (converting from TEL to CSR) ... to be 1520ms, greatly
// exceeding the PageRank/ConnComp execution time").
#ifndef LIVEGRAPH_ANALYTICS_ETL_H_
#define LIVEGRAPH_ANALYTICS_ETL_H_

#include "baselines/csr.h"
#include "core/transaction.h"

namespace livegraph {

/// Builds a CSR of (snapshot, label) using `threads` workers. This is what
/// a dedicated engine like Gemini would need before computing anything.
Csr ExportToCsr(const ReadTransaction& snapshot, label_t label, int threads);

}  // namespace livegraph

#endif  // LIVEGRAPH_ANALYTICS_ETL_H_
