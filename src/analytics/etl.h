// ETL: export a graph snapshot to CSR — the conversion cost the paper
// eliminates with in-situ analytics (§7.4, Table 10: "We measured this ETL
// overhead (converting from TEL to CSR) ... to be 1520ms, greatly
// exceeding the PageRank/ConnComp execution time").
#ifndef LIVEGRAPH_ANALYTICS_ETL_H_
#define LIVEGRAPH_ANALYTICS_ETL_H_

#include "api/store.h"
#include "baselines/csr.h"
#include "core/transaction.h"

namespace livegraph {

/// Builds a CSR of (snapshot, label) using `threads` workers. This is what
/// a dedicated engine like Gemini would need before computing anything.
Csr ExportToCsr(const ReadTransaction& snapshot, label_t label, int threads);

/// Same parallel export over a sharded engine's per-shard snapshots, all
/// pinned at one global epoch
/// (ShardedStore::PinShardSnapshots, docs/SHARDING.md): identical two-pass
/// structure and thread count to the single-snapshot export — apples to
/// apples for Table 10's ETL row — with every vertex's scan routed to its
/// owner shard and CSR rows indexed by global ID.
Csr ExportToCsr(const std::vector<ReadTransaction>& snapshots, label_t label,
                int threads);

/// Engine-neutral export through the v2 session API: walks every vertex's
/// adjacency cursor within one StoreReadTxn, so any engine — LiveGraph or
/// baseline — can feed the static analytics engine. Single-threaded (the
/// session is not shareable across threads on latch-based engines).
Csr ExportToCsr(StoreReadTxn& txn, label_t label);

}  // namespace livegraph

#endif  // LIVEGRAPH_ANALYTICS_ETL_H_
