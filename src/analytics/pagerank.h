// PageRank — the paper's first iterative analytics workload (§7.4,
// Table 10: 20 iterations). Two front-ends over the same push-style
// parallel kernel: in-situ on a LiveGraph snapshot (no ETL) and on CSR
// (the Gemini-style dedicated engine).
#ifndef LIVEGRAPH_ANALYTICS_PAGERANK_H_
#define LIVEGRAPH_ANALYTICS_PAGERANK_H_

#include <vector>

#include "baselines/csr.h"
#include "core/transaction.h"

namespace livegraph {

struct PageRankOptions {
  int iterations = 20;
  double damping = 0.85;
  int threads = 8;
};

/// In-situ: scans TELs of the snapshot directly each iteration.
std::vector<double> PageRankOnSnapshot(const ReadTransaction& snapshot,
                                       label_t label,
                                       const PageRankOptions& options);

/// In-situ over a sharded engine (docs/SHARDING.md): one snapshot per
/// shard, all pinned at ONE global epoch
/// (ShardedStore::PinShardSnapshots — index s is shard s), a
/// shared rank frontier over global vertex IDs. Every worker thread scans
/// the TELs of the shard owning its vertices; edges carry global
/// destination IDs, so contributions land directly in the shared arrays.
/// Result is indexed by global vertex ID, identical to the single-graph
/// kernel on the same logical graph.
std::vector<double> PageRankOnShardSnapshots(
    const std::vector<ReadTransaction>& snapshots, label_t label,
    const PageRankOptions& options);

/// Static engine (CSR) version — identical math, read-optimal layout.
std::vector<double> PageRankOnCsr(const Csr& csr,
                                  const PageRankOptions& options);

}  // namespace livegraph

#endif  // LIVEGRAPH_ANALYTICS_PAGERANK_H_
