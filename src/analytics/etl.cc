#include "analytics/etl.h"

#include <atomic>
#include <vector>

#include "analytics/shard_view.h"
#include "util/thread_pool.h"

namespace livegraph {

namespace {

/// Shared two-pass parallel export: `count(v)` is v's out-degree,
/// `edges(v)` its EdgeIterator.
template <typename CountFn, typename EdgesFn>
Csr ParallelExport(vertex_t n, int threads, const CountFn& count,
                   const EdgesFn& edges) {
  // Pass 1: degrees. relaxed stores/loads: each slot has exactly one
  // writer per pass and the passes are separated by ParallelFor's joins.
  std::vector<std::atomic<int64_t>> degrees(static_cast<size_t>(n));
  ParallelFor(0, n, threads, [&](int64_t lo, int64_t hi) {
    for (int64_t v = lo; v < hi; ++v) {
      degrees[static_cast<size_t>(v)].store(
          static_cast<int64_t>(count(static_cast<vertex_t>(v))),
          std::memory_order_relaxed);
    }
  });
  // Prefix sum (sequential: cheap relative to the scans).
  std::vector<int64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (vertex_t v = 0; v < n; ++v) {
    offsets[static_cast<size_t>(v) + 1] =
        offsets[static_cast<size_t>(v)] +
        degrees[static_cast<size_t>(v)].load(std::memory_order_relaxed);
  }
  // Pass 2: fill targets.
  std::vector<vertex_t> targets(static_cast<size_t>(offsets.back()));
  ParallelFor(0, n, threads, [&](int64_t lo, int64_t hi) {
    for (int64_t v = lo; v < hi; ++v) {
      int64_t cursor = offsets[static_cast<size_t>(v)];
      for (auto it = edges(static_cast<vertex_t>(v)); it.Valid();
           it.Next()) {
        targets[static_cast<size_t>(cursor++)] = it.DstId();
      }
    }
  });
  return Csr::Adopt(std::move(offsets), std::move(targets));
}

}  // namespace

Csr ExportToCsr(const ReadTransaction& snapshot, label_t label, int threads) {
  return ParallelExport(
      snapshot.VertexCount(), threads,
      [&](vertex_t v) { return snapshot.CountEdges(v, label); },
      [&](vertex_t v) { return snapshot.GetEdges(v, label); });
}

Csr ExportToCsr(const std::vector<ReadTransaction>& snapshots, label_t label,
                int threads) {
  return ParallelExport(
      GlobalVertexBound(snapshots), threads,
      [&](vertex_t v) { return ShardCountEdges(snapshots, v, label); },
      [&](vertex_t v) { return ShardEdges(snapshots, v, label); });
}

Csr ExportToCsr(StoreReadTxn& txn, label_t label) {
  // Single pass: offsets are recorded as each vertex's cursor drains, so
  // the export stays correct even on engines whose read sessions are only
  // read-committed (LSMT) and the degree could change between passes.
  const vertex_t n = txn.VertexCount();
  std::vector<int64_t> offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<vertex_t> targets;
  for (vertex_t v = 0; v < n; ++v) {
    offsets[static_cast<size_t>(v)] = static_cast<int64_t>(targets.size());
    for (EdgeCursor c = txn.ScanLinks(v, label); c.Valid(); c.Next()) {
      targets.push_back(c.dst());
    }
  }
  offsets[static_cast<size_t>(n)] = static_cast<int64_t>(targets.size());
  return Csr::Adopt(std::move(offsets), std::move(targets));
}

}  // namespace livegraph
