// StaticGraphEngine is header-only; this TU anchors the target.
#include "analytics/static_engine.h"
