// Shared routing helpers for analytics kernels fanned out over a sharded
// engine's per-shard snapshots (docs/SHARDING.md). The ID scheme is the
// sharded store's interleaved encoding (shard/id_partition.h), cheap
// enough to sit inside the per-vertex scan loop.
#ifndef LIVEGRAPH_ANALYTICS_SHARD_VIEW_H_
#define LIVEGRAPH_ANALYTICS_SHARD_VIEW_H_

#include <algorithm>
#include <vector>

#include "core/transaction.h"
#include "shard/id_partition.h"
#include "util/types.h"

namespace livegraph {

/// Exclusive upper bound on global vertex IDs across the shard snapshots.
inline vertex_t GlobalVertexBound(
    const std::vector<ReadTransaction>& snapshots) {
  const auto n = static_cast<int>(snapshots.size());
  vertex_t bound = 0;
  for (int s = 0; s < n; ++s) {
    bound = std::max(
        bound, shard_id::GlobalBoundOf(
                   s, snapshots[static_cast<size_t>(s)].VertexCount(), n));
  }
  return bound;
}

/// The edge scan of global vertex `v`: a purely sequential TEL walk inside
/// v's owner shard. Destinations in the TEL are global IDs already.
inline EdgeIterator ShardEdges(const std::vector<ReadTransaction>& snapshots,
                               vertex_t v, label_t label) {
  const auto n = static_cast<int>(snapshots.size());
  return snapshots[static_cast<size_t>(shard_id::ShardOf(v, n))].GetEdges(
      shard_id::LocalOf(v, n), label);
}

inline size_t ShardCountEdges(const std::vector<ReadTransaction>& snapshots,
                              vertex_t v, label_t label) {
  const auto n = static_cast<int>(snapshots.size());
  return snapshots[static_cast<size_t>(shard_id::ShardOf(v, n))].CountEdges(
      shard_id::LocalOf(v, n), label);
}

}  // namespace livegraph

#endif  // LIVEGRAPH_ANALYTICS_SHARD_VIEW_H_
