// ReplicationHub: the primary side of WAL shipping (docs/REPLICATION.md).
//
// Attach() hooks a serving engine's WALs: every shard gets a
// Wal::DurableSink that tees durable record batches (post-fsync, inside
// the single-appender section) into one ReplicationLog. Server connection
// threads then Subscribe() on behalf of followers; the hub picks the
// catch-up tier for each:
//
//   tier A (live):     from_epoch >= log trim epoch — every needed record
//                      is still buffered; filter = from_epoch.
//   tier B (disk):     from_epoch >= WAL floor — records in
//                      (from_epoch, F0] are shipped straight from the
//                      shard WAL files (the tail-reader path); the live
//                      filter starts at F0.
//   tier C (snapshot): anything older (or a shard-layout mismatch) —
//                      per-shard snapshots pinned at one epoch F0 are
//                      exported as synthetic WAL payloads, then live from
//                      F0.
//
// In every tier F0 (or from_epoch, tier A) is sampled AFTER the log
// cursor is registered, so a record of any higher epoch is necessarily at
// or past the cursor: handoff from catch-up phase to live buffer has no
// gap, by construction rather than by retry.
#ifndef LIVEGRAPH_REPLICATION_REPLICATION_HUB_H_
#define LIVEGRAPH_REPLICATION_REPLICATION_HUB_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/transaction.h"
#include "replication/replication_log.h"
#include "storage/wal.h"

namespace livegraph {

class Store;
class ShardedStore;

class ReplicationHub {
 public:
  explicit ReplicationHub(ReplicationLog::Options log_options = {});
  ~ReplicationHub();

  ReplicationHub(const ReplicationHub&) = delete;
  ReplicationHub& operator=(const ReplicationHub&) = delete;

  /// Hooks `store`'s WAL(s). Supported engines: ShardedStore (durable
  /// directory) and LiveGraphStore/PagedLiveGraph with a WAL — anything
  /// else (or an in-memory engine) returns false and the hub stays inert.
  /// Call before the server starts accepting traffic; the sinks are
  /// installed here and removed by Detach()/destruction.
  bool Attach(Store& store);
  void Detach();

  bool attached() const { return !graphs_.empty(); }
  int num_shards() const { return static_cast<int>(graphs_.size()); }
  EpochDomain* domain() const { return domain_; }
  ReplicationLog& log() { return log_; }
  Graph* shard_graph(int s) { return graphs_[static_cast<size_t>(s)]; }
  /// Shard `s`'s WAL file path ("" when unknown).
  const std::string& wal_path(int s) const {
    return wal_paths_[static_cast<size_t>(s)];
  }

  /// One follower subscription's catch-up plan (see tier table above).
  struct Subscription {
    uint64_t cursor = 0;
    /// Live-phase epoch filter: buffered entries with epoch <= filter are
    /// consumed silently (the catch-up phase delivered them). Also the
    /// push loop's initial shipped frontier.
    timestamp_t filter = 0;
    bool need_disk = false;
    /// Tier B: ship WAL-file records with epoch in (disk_from, filter].
    timestamp_t disk_from = 0;
    bool need_snapshot = false;
    /// Tier C: per-shard snapshots, all pinned at exactly `filter`.
    std::vector<ReadTransaction> snapshots;
  };

  /// Plans a subscription resuming after `from_epoch` for a follower with
  /// `follower_shards` local shards (0 = fresh). False when not attached.
  bool Subscribe(timestamp_t from_epoch, uint32_t follower_shards,
                 Subscription* sub);
  void Unsubscribe(Subscription* sub);

  /// Follower progress as reported by FRONTIER_ACK frames (min across
  /// nothing — last writer wins; observability only).
  void NoteFollowerAck(timestamp_t epoch) {
    follower_frontier_.store(epoch, std::memory_order_relaxed);
  }
  timestamp_t follower_frontier() const {
    return follower_frontier_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-shard WAL tee: forwards durable batches into the log, stamped
  /// with the shard number.
  class ShardSink : public Wal::DurableSink {
   public:
    ShardSink(ReplicationLog* log, uint32_t shard)
        : log_(log), shard_(shard) {}
    void OnDurableBatch(const std::vector<Wal::Record>& records) override {
      for (const Wal::Record& record : records) {
        log_->Append(shard_, record.epoch, record.participants,
                     record.payload);
      }
    }

   private:
    ReplicationLog* log_;
    uint32_t shard_;
  };

  ReplicationLog log_;
  std::vector<Graph*> graphs_;            // index = shard
  std::vector<std::string> wal_paths_;    // index = shard
  std::vector<std::unique_ptr<ShardSink>> sinks_;
  EpochDomain* domain_ = nullptr;
  /// Epochs at or below this floor are not in the WAL files (truncated by
  /// a recovery seal); resuming below it needs the snapshot tier.
  timestamp_t wal_floor_ = 0;
  std::atomic<timestamp_t> follower_frontier_{0};
  /// Replication gauges probe (registered in Attach, removed in Detach).
  uint64_t metrics_probe_ = 0;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_REPLICATION_REPLICATION_HUB_H_
