// EpochFrontier: "which epochs can this node serve reads at?" — the one
// question epoch-gated reads (kBeginReadTxnAt, docs/REPLICATION.md) need
// answered, abstracted over the two kinds of node:
//
//   * A primary's frontier IS its EpochDomain's visible() — every epoch at
//     or below it is fully applied on every shard (DomainFrontier).
//   * A follower's frontier is driven externally by the replica apply
//     loop: it advances to primary epoch e only when every primary epoch
//     <= e has been applied on every local shard — the same rule
//     ShardedStore::Recover enforces once, made continuous
//     (ReplicaFrontier). Note the follower frontier counts PRIMARY epochs;
//     the follower's own EpochDomain runs a separate local sequence.
#ifndef LIVEGRAPH_REPLICATION_EPOCH_FRONTIER_H_
#define LIVEGRAPH_REPLICATION_EPOCH_FRONTIER_H_

#include <atomic>
#include <cstdint>

#include "core/epoch_domain.h"
#include "util/types.h"

namespace livegraph {

class EpochFrontier {
 public:
  virtual ~EpochFrontier() = default;

  /// The highest epoch fully applied here. Monotone.
  virtual timestamp_t Frontier() const = 0;

  /// Blocks until Frontier() >= epoch; false after `timeout_ms` without
  /// it. Must tolerate arbitrary (client-supplied) epochs by timing out.
  virtual bool WaitCovered(timestamp_t epoch, int64_t timeout_ms) = 0;
};

/// Primary: the serving engine's own visibility frontier.
class DomainFrontier : public EpochFrontier {
 public:
  explicit DomainFrontier(EpochDomain* domain) : domain_(domain) {}

  timestamp_t Frontier() const override { return domain_->visible(); }
  bool WaitCovered(timestamp_t epoch, int64_t timeout_ms) override {
    return domain_->WaitVisibleFor(epoch, timeout_ms);
  }

 private:
  EpochDomain* domain_;
};

/// Follower: advanced by the replica apply loop, waited on by read
/// sessions carrying a read-your-epoch bound.
class ReplicaFrontier : public EpochFrontier {
 public:
  timestamp_t Frontier() const override {
    return frontier_.load(std::memory_order_acquire);
  }
  bool WaitCovered(timestamp_t epoch, int64_t timeout_ms) override;

  /// Monotone advance (lower/equal values are ignored); wakes waiters.
  /// Called by the replica apply loop AFTER every piece of every primary
  /// epoch <= `epoch` has been applied locally.
  void Advance(timestamp_t epoch);

 private:
  std::atomic<timestamp_t> frontier_{0};
  /// 32-bit futex word bumped on every advance (same waiter protocol as
  /// EpochDomain's visible_word_).
  std::atomic<uint32_t> word_{0};
};

}  // namespace livegraph

#endif  // LIVEGRAPH_REPLICATION_EPOCH_FRONTIER_H_
