#include "replication/replication_log.h"

#include <algorithm>
#include <chrono>

#include "util/lock_rank.h"

namespace livegraph {

ReplicationLog::ReplicationLog(Options options) : options_(options) {
  if (options_.hard_bytes < options_.soft_bytes) {
    options_.hard_bytes = options_.soft_bytes;
  }
}

void ReplicationLog::Append(uint32_t shard, timestamp_t epoch,
                            uint32_t participants,
                            std::string_view payload) {
  {
    // Rank note: taken inside the WAL single-appender section
    // (kReplicationLog > kWalAppend); leaf — nothing acquired under it.
    LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kReplicationLog);
    std::lock_guard<std::mutex> lock(mu_);
    Entry entry;
    entry.seq = next_seq_++;
    entry.epoch = epoch;
    entry.participants = participants;
    entry.shard = shard;
    entry.payload.assign(payload.data(), payload.size());
    bytes_ += entry.payload.size();
    entries_.push_back(std::move(entry));
    EvictLocked();
  }
  cv_.notify_all();
}

uint64_t ReplicationLog::OpenCursor(timestamp_t* trim_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_cursor_id_++;
  cursors_[id] = floor_seq_;
  // Sampled under the same lock as the registration: from here on nothing
  // below floor_seq_ can evict past soft policy without this cursor, and
  // trim_epoch_ is exactly the bound the registration point guarantees.
  *trim_epoch = trim_epoch_;
  return id;
}

void ReplicationLog::CloseCursor(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  cursors_.erase(id);
}

ReplicationLog::FetchStatus ReplicationLog::Fetch(
    uint64_t id, timestamp_t filter_epoch, size_t max_bytes,
    int64_t timeout_ms, std::vector<Entry>* out, bool* more) {
  out->clear();
  *more = false;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (closed_) return FetchStatus::kClosed;
    auto it = cursors_.find(id);
    if (it == cursors_.end()) return FetchStatus::kClosed;
    if (it->second < floor_seq_) return FetchStatus::kLapped;

    // Walk from the cursor: consume skipped entries, copy matching ones.
    uint64_t at = it->second;
    size_t copied_bytes = 0;
    while (at < next_seq_) {
      const Entry& entry = entries_[static_cast<size_t>(at - floor_seq_)];
      if (entry.epoch > filter_epoch) {
        if (!out->empty() && copied_bytes + entry.payload.size() > max_bytes) {
          *more = true;
          break;
        }
        copied_bytes += entry.payload.size();
        out->push_back(entry);
      }
      ++at;
    }
    it->second = at;
    if (!out->empty()) return FetchStatus::kOk;
    // Everything pending was filtered out (or the buffer is drained):
    // wait for appends. The consumed skips were still progress, so the
    // cursor no longer blocks their eviction.
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return FetchStatus::kTimeout;
    }
  }
}

timestamp_t ReplicationLog::trim_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trim_epoch_;
}

void ReplicationLog::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t ReplicationLog::buffered_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

uint64_t ReplicationLog::MinCursorLocked() const {
  uint64_t min = UINT64_MAX;
  for (const auto& [id, seq] : cursors_) min = std::min(min, seq);
  return min;
}

void ReplicationLog::EvictLocked() {
  if (bytes_ <= options_.soft_bytes) return;
  const uint64_t min_cursor = MinCursorLocked();
  while (!entries_.empty() && bytes_ > options_.soft_bytes) {
    const Entry& front = entries_.front();
    // Soft region: stop at the slowest cursor. Hard overrun: evict anyway
    // (the lapped cursor finds out at its next Fetch).
    if (front.seq >= min_cursor && bytes_ <= options_.hard_bytes) break;
    bytes_ -= front.payload.size();
    trim_epoch_ = std::max(trim_epoch_, front.epoch);
    entries_.pop_front();
    ++floor_seq_;
  }
}

}  // namespace livegraph
