// Replica: the follower side of WAL shipping (docs/REPLICATION.md).
//
// One background thread runs the subscription loop: connect to the
// primary, SUBSCRIBE from the durable local frontier, bootstrap from a
// streamed snapshot when the primary says so, then apply LOG_BATCH frames
// through the recovery apply path (ShardedStore::ApplyReplicated) and
// advance a ReplicaFrontier — the read-only frontier in PRIMARY epochs —
// only when every lower primary epoch has been applied on every local
// shard. That is ShardedStore::Recover's visibility rule made continuous;
// the LOG_BATCH `frontier` field carries exactly that bound from the
// primary, so the follower applies buffered epochs <= frontier in epoch
// order and then advances.
//
// Epoch spaces: the follower's OWN EpochDomain runs a separate local
// sequence (replay-mode commits draw fresh local epochs), so local
// CreationTimestamps are never comparable with the primary's. Progress,
// acks, durable resume points, and read-your-epoch waits are all primary
// epochs, tracked solely by the ReplicaFrontier.
//
// Durable resume: replay-mode applies write no local WAL, so the follower
// periodically checkpoints its store and then writes <dir>/REPLICA_STATE
// (the applied primary frontier) via tmp+fsync+rename. State is written
// AFTER the checkpoint, so at rest state <= checkpoint; a crash between
// the two resubscribes a little low and re-applies the overlap, which is
// safe (replicated applies are upserts) and converges (re-applied epochs
// are the newest on both sides, so edge order matches).
//
// A broken connection (primary restart, network, kLapped eviction) drops
// back to connect-with-backoff and resubscribes from the durable frontier;
// buffered-but-unapplied epochs are discarded (the primary re-ships them).
#ifndef LIVEGRAPH_REPLICATION_REPLICA_H_
#define LIVEGRAPH_REPLICATION_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/graph.h"
#include "replication/epoch_frontier.h"
#include "replication/replica_store.h"
#include "server/net.h"
#include "shard/sharded_store.h"

namespace livegraph {

class Replica {
 public:
  struct Options {
    std::string primary_host = "127.0.0.1";
    uint16_t primary_port = 0;
    /// Durable directory: <dir>/REPLICA_STATE + <dir>/store/... Empty runs
    /// the follower in memory (fresh bootstrap on every start).
    std::string dir;
    /// Template for the local store's shards (shard count always follows
    /// the primary's).
    GraphOptions graph;
    /// Checkpoint + REPLICA_STATE cadence, in advanced primary epochs.
    /// <= 0 disables periodic checkpoints (still one after bootstrap).
    int64_t checkpoint_every_epochs = 65536;
    int64_t reconnect_backoff_ms = 100;
    int64_t reconnect_backoff_cap_ms = 2000;
  };

  explicit Replica(Options options);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Loads durable local state if present, then starts the subscription
  /// thread. Always succeeds (the thread retries the primary forever).
  void Start();
  void Stop();

  /// The swappable serving facade (writes kUnavailable, reads delegate).
  ReplicaStore& store() { return serving_; }
  /// Applied-primary-epoch frontier; read sessions gate on it.
  ReplicaFrontier& frontier() { return frontier_; }

  /// Blocks until the follower has a serving store AND has applied at
  /// least one frontier advance (or bootstrap) since starting. False on
  /// timeout.
  bool WaitReady(int64_t timeout_ms);

  /// Times the subscription loop reconnected (observability, tests).
  uint64_t resubscribes() const {
    return resubscribes_.load(std::memory_order_relaxed);
  }

 private:
  void ThreadMain();
  /// One connect->subscribe->stream session; returns when the connection
  /// breaks or Stop() is called.
  void RunSession();
  /// Discards any local store and builds a fresh empty one with `shards`
  /// shards (invalidating REPLICA_STATE first, so a crash mid-bootstrap
  /// restarts from scratch instead of trusting a destroyed store).
  void BuildFreshStore(uint32_t shards);
  /// Checkpoint + REPLICA_STATE write (durable dir only).
  void PersistState();
  /// Reads <dir>/REPLICA_STATE; false when absent/corrupt.
  bool LoadState(uint32_t* shards, timestamp_t* out_frontier);

  std::string StorePath() const { return options_.dir + "/store"; }
  std::string StatePath() const { return options_.dir + "/REPLICA_STATE"; }

  Options options_;
  ReplicaStore serving_;
  ReplicaFrontier frontier_;
  std::shared_ptr<ShardedStore> store_;  // apply-loop-owned generation
  std::atomic<bool> running_{false};
  std::atomic<bool> ready_{false};
  std::atomic<uint64_t> resubscribes_{0};
  std::atomic<uint64_t> frames_{0};  // frames received across sessions
  /// Resume point: the primary frontier the durable state covers.
  timestamp_t durable_frontier_ = 0;
  timestamp_t last_persisted_frontier_ = 0;
  Socket socket_;  // live session socket; Shutdown() unblocks the thread
  std::mutex socket_mu_;
  std::thread thread_;
  /// Follower gauges probe (registered in the ctor, removed in the dtor).
  uint64_t metrics_probe_ = 0;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_REPLICATION_REPLICA_H_
