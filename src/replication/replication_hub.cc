#include "replication/replication_hub.h"

#include "baselines/livegraph_store.h"
#include "shard/sharded_store.h"
#include "util/metrics.h"

namespace livegraph {

ReplicationHub::ReplicationHub(ReplicationLog::Options log_options)
    : log_(log_options) {}

ReplicationHub::~ReplicationHub() {
  Detach();
  log_.Close();
}

bool ReplicationHub::Attach(Store& store) {
  Detach();
  if (auto* sharded = dynamic_cast<ShardedStore*>(&store)) {
    if (sharded->dir().empty()) return false;  // no WALs to tee
    for (int s = 0; s < sharded->num_shards(); ++s) {
      graphs_.push_back(&sharded->shard(s));
      wal_paths_.push_back(sharded->wal_path(s));
    }
    domain_ = sharded->epoch_domain();
    wal_floor_ = sharded->recovered_epoch();
  } else if (auto* single = dynamic_cast<LiveGraphStore*>(&store)) {
    Graph& graph = single->graph();
    if (graph.options().wal_path.empty()) return false;
    graphs_.push_back(&graph);
    wal_paths_.push_back(graph.options().wal_path);
    domain_ = graph.epoch_domain();
    // A standalone durable Graph never truncates its WAL (checkpoints are
    // filters, not seals), so the full epoch history is on disk.
    wal_floor_ = 0;
  } else {
    return false;
  }
  for (size_t s = 0; s < graphs_.size(); ++s) {
    sinks_.push_back(
        std::make_unique<ShardSink>(&log_, static_cast<uint32_t>(s)));
    graphs_[s]->SetWalSink(sinks_[s].get());
  }
  // Frontier/backlog gauges sampled at metrics-collection time
  // (docs/OBSERVABILITY.md). Lag is primary-visible minus the last acked
  // follower frontier; bytes is the live buffer backlog.
  metrics::Registry& registry = metrics::Registry::Instance();
  metrics::Gauge& frontier_gauge =
      registry.GetGauge("livegraph_replication_follower_frontier");
  metrics::Gauge& lag_gauge =
      registry.GetGauge("livegraph_replication_lag_epochs");
  metrics::Gauge& buffered_gauge =
      registry.GetGauge("livegraph_replication_buffered_bytes");
  metrics_probe_ = registry.AddProbe(
      [this, &frontier_gauge, &lag_gauge, &buffered_gauge] {
        const timestamp_t acked = follower_frontier();
        frontier_gauge.Set(acked);
        const timestamp_t visible = domain_->visible();
        lag_gauge.Set(acked > 0 ? visible - acked : visible);
        buffered_gauge.Set(static_cast<int64_t>(log_.buffered_bytes()));
      });
  return true;
}

void ReplicationHub::Detach() {
  if (metrics_probe_ != 0) {
    // Blocks out in-flight collection before the domain pointer dies.
    metrics::Registry::Instance().RemoveProbe(metrics_probe_);
    metrics_probe_ = 0;
  }
  for (Graph* graph : graphs_) graph->SetWalSink(nullptr);
  graphs_.clear();
  wal_paths_.clear();
  sinks_.clear();
  domain_ = nullptr;
  wal_floor_ = 0;
}

bool ReplicationHub::Subscribe(timestamp_t from_epoch,
                               uint32_t follower_shards, Subscription* sub) {
  if (!attached()) return false;
  if (from_epoch < 0) from_epoch = 0;
  // Register the cursor FIRST: from here on, every record of any epoch
  // above what the catch-up phase covers is at or past the cursor.
  timestamp_t trim = 0;
  sub->cursor = log_.OpenCursor(&trim);
  // Extreme corner: hard-cap eviction can outrun visibility. Wait the
  // trim epoch visible so the F0 we sample below is >= trim and the
  // disk/snapshot phases (which serve epochs <= F0) cover the evicted gap.
  if (trim > domain_->visible()) domain_->WaitVisible(trim);

  // A follower whose local layout cannot absorb per-shard payloads must
  // bootstrap from scratch, whatever epoch it claims.
  const bool layout_ok =
      follower_shards == 0 ||
      follower_shards == static_cast<uint32_t>(num_shards());

  static metrics::Gauge& subscribers = metrics::Registry::Instance().GetGauge(
      "livegraph_replication_subscribers");
  static metrics::Counter& tier_live =
      metrics::Registry::Instance().GetCounter(
          "livegraph_replication_subscribes_total{tier=\"live\"}");
  static metrics::Counter& tier_disk =
      metrics::Registry::Instance().GetCounter(
          "livegraph_replication_subscribes_total{tier=\"disk\"}");
  static metrics::Counter& tier_snapshot =
      metrics::Registry::Instance().GetCounter(
          "livegraph_replication_subscribes_total{tier=\"snapshot\"}");
  if (layout_ok && from_epoch >= trim) {
    // Tier A: pure live. The buffer holds every record above from_epoch.
    sub->filter = from_epoch;
    sub->need_disk = false;
    sub->need_snapshot = false;
    subscribers.Add(1);
    tier_live.Add();
    return true;
  }
  if (layout_ok && from_epoch >= wal_floor_) {
    // Tier B: disk catch-up over (from_epoch, F0], then live from F0.
    // F0 sampled after cursor registration: higher epochs are buffered.
    sub->filter = domain_->visible();
    sub->need_disk = true;
    sub->disk_from = from_epoch;
    sub->need_snapshot = false;
    subscribers.Add(1);
    tier_disk.Add();
    return true;
  }
  // Tier C: snapshot bootstrap. Pin every shard at ONE epoch F0 (the pin
  // is the sample, taken after cursor registration), export, live from F0.
  EpochDomain::ReadPin pin = domain_->PinRead();
  sub->filter = pin.epoch;
  sub->need_disk = false;
  sub->need_snapshot = true;
  sub->snapshots.reserve(graphs_.size());
  for (Graph* graph : graphs_) {
    sub->snapshots.push_back(graph->BeginTimeTravelTransaction(pin.epoch));
  }
  // The snapshots' own reading-epoch slots keep protecting F0 per shard.
  domain_->Unpin(pin);
  subscribers.Add(1);
  tier_snapshot.Add();
  return true;
}

void ReplicationHub::Unsubscribe(Subscription* sub) {
  sub->snapshots.clear();
  if (sub->cursor != 0) {
    log_.CloseCursor(sub->cursor);
    metrics::Registry::Instance()
        .GetGauge("livegraph_replication_subscribers")
        .Sub(1);
  }
  sub->cursor = 0;
}

}  // namespace livegraph
