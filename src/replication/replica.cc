#include "replication/replica.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>
#include <vector>

#include "server/wire.h"
#include "storage/wal.h"
#include "util/fault_injection.h"
#include "util/metrics.h"
#include "util/raw_io.h"

namespace livegraph {

namespace {

// "LGREPST1" little-endian.
constexpr uint64_t kReplicaStateMagic = 0x31545350'45524C47ull;
constexpr uint32_t kReplicaStateVersion = 1;

}  // namespace

Replica::Replica(Options options) : options_(std::move(options)) {
  // Follower-side gauges, sampled at metrics-collection time from the
  // atomics the replica already maintains (docs/OBSERVABILITY.md).
  metrics::Registry& registry = metrics::Registry::Instance();
  metrics::Gauge& frontier_gauge =
      registry.GetGauge("livegraph_replica_applied_frontier");
  metrics::Gauge& resub_gauge =
      registry.GetGauge("livegraph_replica_resubscribes");
  metrics::Gauge& frames_gauge =
      registry.GetGauge("livegraph_replica_frames");
  metrics_probe_ = registry.AddProbe(
      [this, &frontier_gauge, &resub_gauge, &frames_gauge] {
        frontier_gauge.Set(frontier_.Frontier());
        resub_gauge.Set(static_cast<int64_t>(resubscribes()));
        frames_gauge.Set(static_cast<int64_t>(
            frames_.load(std::memory_order_relaxed)));
      });
}

Replica::~Replica() {
  metrics::Registry::Instance().RemoveProbe(metrics_probe_);
  Stop();
}

void Replica::Start() {
  if (running_.exchange(true)) return;
  if (!options_.dir.empty()) {
    uint32_t shards = 0;
    timestamp_t state_frontier = 0;
    if (LoadState(&shards, &state_frontier)) {
      ShardOptions shard_options;
      shard_options.shards = static_cast<int>(shards);
      shard_options.dir = StorePath();
      shard_options.graph = options_.graph;
      store_ = ShardedStore::Recover(std::move(shard_options));
      serving_.SetInner(store_);
      // The state frontier was written after its checkpoint, so the
      // recovered store covers at least this many primary epochs.
      frontier_.Advance(state_frontier);
      durable_frontier_ = state_frontier;
      last_persisted_frontier_ = state_frontier;
    }
  }
  thread_ = std::thread([this] { ThreadMain(); });
}

void Replica::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(socket_mu_);
    socket_.Shutdown();
  }
  if (thread_.joinable()) thread_.join();
}

bool Replica::WaitReady(int64_t timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (!ready_.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

void Replica::ThreadMain() {
  int64_t backoff_ms = options_.reconnect_backoff_ms;
  bool first = true;
  while (running_.load(std::memory_order_acquire)) {
    // Count the resubscription when the non-first session STARTS: a
    // session that replaces a torn stream may itself run until Stop(),
    // and observers (tests, metrics) must see it immediately.
    if (!first) resubscribes_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t before = frames_.load(std::memory_order_relaxed);
    RunSession();
    if (!running_.load(std::memory_order_acquire)) break;
    first = false;
    // A session that streamed anything earned a fresh backoff.
    if (frames_.load(std::memory_order_relaxed) != before) {
      backoff_ms = options_.reconnect_backoff_ms;
    }
    // Interruptible backoff: Stop() must not wait out a 2s sleep.
    for (int64_t slept = 0;
         slept < backoff_ms && running_.load(std::memory_order_acquire);
         slept += 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    backoff_ms = std::min(backoff_ms * 2, options_.reconnect_backoff_cap_ms);
  }
}

void Replica::RunSession() {
  Socket sock = ConnectTcp(options_.primary_host, options_.primary_port);
  if (!sock.valid()) return;
  // Deadlines: the primary heartbeats an idle push stream every ~2s, so a
  // 15s silent socket means a dead/hung primary — fail the session and let
  // the reconnect loop resubscribe rather than wedging this thread.
  sock.SetRecvTimeout(15'000);
  sock.SetSendTimeout(15'000);
  {
    std::lock_guard<std::mutex> lock(socket_mu_);
    // Checked under the same lock Stop() holds for its Shutdown(): if
    // Stop ran while we were dialing, its Shutdown hit the previous
    // socket and would never unblock reads on this one.
    if (!running_.load(std::memory_order_acquire)) return;
    socket_ = std::move(sock);
  }
  std::string body, scratch;
  Frame frame;
  auto read_frame = [&]() {
    if (!socket_.ReadFrame(&frame)) return false;
    frames_.fetch_add(1, std::memory_order_relaxed);
    return true;
  };

  // Hello: version check. The reply's name/traits payload is the
  // primary's serving engine; the subscription does not depend on it.
  body.clear();
  WireWriter(&body).PutU32(kProtocolVersion);
  if (!socket_.WriteFrame(MsgType::kHello, 0, body, &scratch)) return;
  if (!read_frame() || frame.type != MsgType::kReply) return;
  {
    WireReader reader(frame.body);
    uint8_t status;
    if (!reader.GetU8(&status) ||
        StatusFromWire(status) != Status::kOk) {
      return;
    }
  }

  // Subscribe from the applied frontier (the in-memory store covers it,
  // even when the durable state trails behind).
  const timestamp_t from = frontier_.Frontier();
  body.clear();
  {
    WireWriter writer(&body);
    writer.PutI64(from);
    writer.PutU32(store_ == nullptr
                      ? 0u
                      : static_cast<uint32_t>(store_->num_shards()));
  }
  if (!socket_.WriteFrame(MsgType::kSubscribe, 0, body, &scratch)) return;
  if (!read_frame() || frame.type != MsgType::kReply) return;
  uint32_t shards = 0;
  uint8_t snapshot_follows = 0;
  int64_t snapshot_epoch = 0;
  {
    WireReader reader(frame.body);
    uint8_t status;
    if (!reader.GetU8(&status) ||
        StatusFromWire(status) != Status::kOk) {
      return;
    }
    if (!reader.GetU32(&shards) || !reader.GetU8(&snapshot_follows) ||
        !reader.GetI64(&snapshot_epoch) || shards == 0) {
      return;
    }
  }

  if (snapshot_follows != 0) {
    // Snapshot bootstrap: discard local state, rebuild from the stream.
    // The old serving store keeps answering (stale but consistent) until
    // the new one is complete.
    BuildFreshStore(shards);
    if (store_ == nullptr) return;
    while (true) {
      if (!read_frame() || frame.type != MsgType::kSnapshotBatch) return;
      WireReader reader(frame.body);
      uint32_t shard;
      std::string_view payload;
      if (!reader.GetU32(&shard) || !reader.GetBytes(&payload)) return;
      if (!payload.empty()) {
        store_->ApplyReplicated(static_cast<int>(shard), payload);
      }
      if ((frame.flags & kFlagEndOfStream) != 0) break;
    }
    frontier_.Advance(snapshot_epoch);
    serving_.SetInner(store_);
    PersistState();  // a crash right after bootstrap must not re-stream it
  } else if (store_ == nullptr ||
             store_->num_shards() != static_cast<int>(shards)) {
    // Live/disk catch-up onto a store we don't have yet: only offered
    // when `from` is 0 and the full history is coming, so an empty store
    // of the primary's layout absorbs it.
    BuildFreshStore(shards);
    if (store_ == nullptr) return;
    serving_.SetInner(store_);
  }
  ready_.store(true, std::memory_order_release);

  // Apply loop. Entries buffer per primary epoch; a batch's `frontier`
  // promises every piece of every epoch <= it has been shipped, so those
  // epochs apply in ascending order and the frontier advances — the
  // Recover visibility rule, continuous.
  std::map<timestamp_t, std::vector<std::pair<uint32_t, std::string>>>
      pending;
  while (running_.load(std::memory_order_acquire)) {
    if (!read_frame()) return;
    if (frame.type != MsgType::kLogBatch) return;
    WireReader reader(frame.body);
    int64_t batch_frontier;
    uint32_t count;
    if (!reader.GetI64(&batch_frontier) || !reader.GetU32(&count)) return;
    for (uint32_t i = 0; i < count; ++i) {
      int64_t epoch;
      uint32_t participants, shard;
      std::string_view payload;
      if (!reader.GetI64(&epoch) || !reader.GetU32(&participants) ||
          !reader.GetU32(&shard) || !reader.GetBytes(&payload)) {
        return;
      }
      if (epoch > frontier_.Frontier()) {
        pending[epoch].emplace_back(shard, std::string(payload));
      }
    }
    auto it = pending.begin();
    while (it != pending.end() && it->first <= batch_frontier) {
      for (const auto& [shard, payload] : it->second) {
        store_->ApplyReplicated(static_cast<int>(shard), payload);
      }
      it = pending.erase(it);
    }
    if (batch_frontier > frontier_.Frontier()) {
      frontier_.Advance(batch_frontier);
      // Persist BEFORE the ack: Advance just woke WaitCovered waiters,
      // and one of them may Stop() us — the dying socket must not skip
      // a durability point the frontier already promised.
      if (options_.checkpoint_every_epochs > 0 &&
          batch_frontier - last_persisted_frontier_ >=
              options_.checkpoint_every_epochs) {
        PersistState();
      }
      body.clear();
      WireWriter(&body).PutI64(batch_frontier);
      if (!socket_.WriteFrame(MsgType::kFrontierAck, 0, body, &scratch)) {
        return;
      }
    }
  }
}

void Replica::BuildFreshStore(uint32_t shards) {
  ShardOptions shard_options;
  shard_options.shards = static_cast<int>(shards);
  shard_options.graph = options_.graph;
  if (!options_.dir.empty()) {
    // Invalidate the resume point BEFORE destroying the store it
    // describes: a crash mid-bootstrap must restart from scratch.
    std::error_code ec;
    std::filesystem::remove(StatePath(), ec);
    std::filesystem::remove_all(StorePath(), ec);
    std::filesystem::create_directories(StorePath(), ec);
    shard_options.dir = StorePath();
    store_ = ShardedStore::Recover(std::move(shard_options));
  } else {
    store_ = std::make_shared<ShardedStore>(std::move(shard_options));
  }
  durable_frontier_ = 0;
  last_persisted_frontier_ = 0;
}

void Replica::PersistState() {
  if (options_.dir.empty() || store_ == nullptr) return;
  const timestamp_t covered = frontier_.Frontier();
  // The REPLICA_STATE frontier is a promise that the durable store covers
  // it; a failed checkpoint must therefore skip the state write entirely —
  // the previous state file keeps describing the previous checkpoint, and
  // the next cadence (or a restart's resubscribe-low) retries.
  if (store_->Checkpoint() < 0) return;
  // State after checkpoint: at rest, state <= checkpointed coverage. A
  // crash between the two resubscribes low and re-applies the overlap
  // (upsert-safe, order-convergent — see header).
  const std::string tmp = StatePath() + ".tmp";
  std::FILE* f = nullptr;
  int err = 0;
  if (faults::Action fault = LIVEGRAPH_FAULT("replica.state")) {
    err = fault.err != 0 ? fault.err : EIO;
  } else {
    f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) err = errno != 0 ? errno : EIO;
  }
  if (err == 0) {
    WriteRaw(f, kReplicaStateMagic);
    WriteRaw(f, kReplicaStateVersion);
    WriteRaw(f, static_cast<uint32_t>(store_->num_shards()));
    WriteRaw(f, covered);
    if (std::ferror(f) != 0 || std::fflush(f) != 0) {
      err = errno != 0 ? errno : EIO;
    }
    if (err == 0 && ::fsync(::fileno(f)) != 0) err = errno;
    std::fclose(f);
  }
  if (err != 0) {
    std::fprintf(stderr,
                 "livegraph: replica state write failed: %s (errno %d, "
                 "path %s) — previous state stays authoritative\n",
                 std::strerror(err), err, tmp.c_str());
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return;
  }
  if (!Wal::CommitRename(tmp, StatePath())) return;
  durable_frontier_ = covered;
  last_persisted_frontier_ = covered;
}

bool Replica::LoadState(uint32_t* shards, timestamp_t* out_frontier) {
  std::FILE* f = std::fopen(StatePath().c_str(), "rb");
  if (f == nullptr) return false;
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t state_shards = 0;
  timestamp_t state_frontier = 0;
  const bool ok = ReadRaw(f, &magic) && ReadRaw(f, &version) &&
                  ReadRaw(f, &state_shards) && ReadRaw(f, &state_frontier) &&
                  magic == kReplicaStateMagic &&
                  version == kReplicaStateVersion && state_shards > 0 &&
                  state_frontier >= 0;
  std::fclose(f);
  if (!ok) return false;
  *shards = state_shards;
  *out_frontier = state_frontier;
  return true;
}

}  // namespace livegraph
