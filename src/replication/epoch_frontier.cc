#include "replication/epoch_frontier.h"

#include <chrono>

#include "util/futex_lock.h"

namespace livegraph {

bool ReplicaFrontier::WaitCovered(timestamp_t epoch, int64_t timeout_ms) {
  if (frontier_.load(std::memory_order_acquire) >= epoch) return true;
  if (timeout_ms <= 0) return false;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  // FutexWait carries its own 50 ms safety timeout, so re-checking the
  // deadline on every wakeup bounds the wait without a timed futex call.
  while (frontier_.load(std::memory_order_acquire) < epoch) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    uint32_t word = word_.load(std::memory_order_acquire);
    if (frontier_.load(std::memory_order_acquire) >= epoch) break;
    FutexWait(&word_, word);
  }
  return true;
}

void ReplicaFrontier::Advance(timestamp_t epoch) {
  timestamp_t current = frontier_.load(std::memory_order_acquire);
  while (current < epoch &&
         !frontier_.compare_exchange_weak(current, epoch,
                                          std::memory_order_acq_rel)) {
  }
  if (current >= epoch) return;  // someone else got there first
  word_.fetch_add(1, std::memory_order_release);
  FutexWakeAll(&word_);
}

}  // namespace livegraph
