// ReplicaStore: the Store facade a follower serves (docs/REPLICATION.md).
//
// Reads delegate to an inner ShardedStore that the replica apply loop owns
// and may swap wholesale (snapshot re-bootstrap after lapping the primary's
// replication buffer). Read sessions grab the shared_ptr once at begin, so
// a session opened against the old state keeps its MVCC snapshot alive and
// consistent across a swap; new sessions land on the new state.
//
// Writes are rejected: every mutation and Commit() returns kUnavailable,
// the same status a RemoteStore client sees from a dead connection — which
// is exactly what lets the client fail a write over to the primary without
// a special "I am a follower" channel.
#ifndef LIVEGRAPH_REPLICATION_REPLICA_STORE_H_
#define LIVEGRAPH_REPLICATION_REPLICA_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "api/store.h"
#include "shard/sharded_store.h"

namespace livegraph {

class ReplicaStore : public Store {
 public:
  std::string Name() const override { return "ReplicaLiveGraph"; }
  StoreTraits Traits() const override {
    // Reads carry the inner engine's guarantees; `transactional_writes`
    // is vacuously true (no write ever applies, let alone non-atomically).
    return StoreTraits{/*time_ordered_scans=*/true, /*snapshot_reads=*/true,
                       /*transactional_writes=*/true};
  }

  std::unique_ptr<StoreTxn> BeginTxn() override {
    return std::make_unique<RejectTxn>();
  }

  std::unique_ptr<StoreReadTxn> BeginReadTxn() override {
    std::shared_ptr<ShardedStore> store = inner();
    if (store == nullptr) return std::make_unique<DeadReadTxn>();
    std::unique_ptr<StoreReadTxn> txn = store->BeginReadTxn();
    return std::make_unique<ReadTxn>(std::move(store), std::move(txn));
  }

  /// The serving state. Null before the first bootstrap completes; read
  /// sessions then report kUnavailable instead of fabricating emptiness.
  std::shared_ptr<ShardedStore> inner() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_;
  }

  /// Swaps the serving state (replica apply loop only). Open read sessions
  /// keep the old store alive via their shared_ptr.
  void SetInner(std::shared_ptr<ShardedStore> store) {
    std::lock_guard<std::mutex> lock(mu_);
    inner_ = std::move(store);
  }

 private:
  /// Read session pinned to one inner store generation.
  class ReadTxn : public StoreReadTxn {
   public:
    ReadTxn(std::shared_ptr<ShardedStore> keepalive,
            std::unique_ptr<StoreReadTxn> txn)
        : keepalive_(std::move(keepalive)), txn_(std::move(txn)) {}

    StatusOr<std::string> GetNode(vertex_t id) override {
      return txn_->GetNode(id);
    }
    StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                  vertex_t dst) override {
      return txn_->GetLink(src, label, dst);
    }
    EdgeCursor ScanLinks(vertex_t src, label_t label,
                         size_t limit) override {
      return txn_->ScanLinks(src, label, limit);
    }
    size_t CountLinks(vertex_t src, label_t label) override {
      return txn_->CountLinks(src, label);
    }
    vertex_t VertexCount() override { return txn_->VertexCount(); }
    Status SessionStatus() const override { return txn_->SessionStatus(); }

   private:
    std::shared_ptr<ShardedStore> keepalive_;  // destroyed after txn_
    std::unique_ptr<StoreReadTxn> txn_;
  };

  /// Read session begun before bootstrap: no state to serve yet.
  class DeadReadTxn : public StoreReadTxn {
   public:
    StatusOr<std::string> GetNode(vertex_t) override {
      return Status::kUnavailable;
    }
    StatusOr<std::string> GetLink(vertex_t, label_t, vertex_t) override {
      return Status::kUnavailable;
    }
    EdgeCursor ScanLinks(vertex_t, label_t, size_t) override {
      return EdgeCursor();
    }
    size_t CountLinks(vertex_t, label_t) override { return 0; }
    vertex_t VertexCount() override { return 0; }
    Status SessionStatus() const override { return Status::kUnavailable; }
  };

  /// Write session on a read-only node: everything is kUnavailable. The
  /// reads inside it answer too (read-your-writes is vacuous — there are
  /// never any writes), so a mixed session still sees consistent state.
  class RejectTxn : public StoreTxn {
   public:
    StatusOr<std::string> GetNode(vertex_t) override {
      return Status::kUnavailable;
    }
    StatusOr<std::string> GetLink(vertex_t, label_t, vertex_t) override {
      return Status::kUnavailable;
    }
    EdgeCursor ScanLinks(vertex_t, label_t, size_t) override {
      return EdgeCursor();
    }
    size_t CountLinks(vertex_t, label_t) override { return 0; }
    vertex_t VertexCount() override { return 0; }
    Status SessionStatus() const override { return Status::kUnavailable; }

    StatusOr<vertex_t> AddNode(std::string_view) override {
      return Status::kUnavailable;
    }
    Status UpdateNode(vertex_t, std::string_view) override {
      return Status::kUnavailable;
    }
    Status DeleteNode(vertex_t) override { return Status::kUnavailable; }
    StatusOr<bool> AddLink(vertex_t, label_t, vertex_t,
                           std::string_view) override {
      return Status::kUnavailable;
    }
    Status UpdateLink(vertex_t, label_t, vertex_t,
                      std::string_view) override {
      return Status::kUnavailable;
    }
    Status DeleteLink(vertex_t, label_t, vertex_t) override {
      return Status::kUnavailable;
    }
    StatusOr<timestamp_t> Commit() override { return Status::kUnavailable; }
    void Abort() override {}
  };

  mutable std::mutex mu_;
  std::shared_ptr<ShardedStore> inner_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_REPLICATION_REPLICA_STORE_H_
