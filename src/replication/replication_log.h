// ReplicationLog: the primary-side in-memory buffer of durable WAL
// records, teed out of every shard's Wal::AppendBatch (post-fsync) and
// fanned out to subscriber push loops (docs/REPLICATION.md).
//
// Entries carry a dense sequence number in APPEND order — which is NOT
// epoch order: N shard commit pipelines tee concurrently, so a lower epoch
// may land at a higher seq. Two invariants make the buffer a correct live
// feed anyway:
//
//   * Tee-before-visible: a record of epoch e is appended here before e's
//     MarkApplied, hence strictly before visible() reaches e. A reader
//     that samples F = visible() and then drains the buffer holds every
//     record of every epoch <= F.
//   * Trim bound: trim_epoch() is the max epoch over all evicted entries,
//     so every record with epoch > trim_epoch() is still in the buffer.
//     A subscriber resuming from an epoch >= trim_epoch() needs no disk
//     or snapshot phase.
//
// Retention: eviction from the front respects open cursors up to the soft
// byte cap; past the hard cap it evicts regardless and the overrun cursor
// reports kLapped on its next Fetch — the subscriber's connection drops
// and the follower resubscribes (possibly into the snapshot path). A slow
// follower can therefore never wedge the primary's memory.
#ifndef LIVEGRAPH_REPLICATION_REPLICATION_LOG_H_
#define LIVEGRAPH_REPLICATION_REPLICATION_LOG_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace livegraph {

class ReplicationLog {
 public:
  struct Options {
    /// Eviction starts here but never overruns an open cursor.
    size_t soft_bytes = 64u << 20;
    /// Eviction proceeds regardless here; overrun cursors lap.
    size_t hard_bytes = 256u << 20;
  };

  struct Entry {
    uint64_t seq = 0;
    timestamp_t epoch = 0;
    uint32_t participants = 1;
    uint32_t shard = 0;
    std::string payload;
  };

  ReplicationLog() : ReplicationLog(Options()) {}
  explicit ReplicationLog(Options options);

  /// Appends one durable record (called from shard WAL sinks, inside the
  /// single-appender section — rank kReplicationLog sits above kWalAppend).
  void Append(uint32_t shard, timestamp_t epoch, uint32_t participants,
              std::string_view payload);

  /// Registers a subscriber cursor at the buffer floor (the oldest
  /// retained entry) and atomically samples the trim epoch, so the caller
  /// can pick its catch-up tier with no eviction race. Returns the cursor
  /// id; ids are never reused.
  uint64_t OpenCursor(timestamp_t* trim_epoch);
  void CloseCursor(uint64_t id);

  enum class FetchStatus {
    kOk,       // at least one entry copied out
    kTimeout,  // nothing new within the deadline (heartbeat opportunity)
    kLapped,   // hard-cap eviction overran this cursor: resubscribe
    kClosed,   // log shut down (server stopping)
  };

  /// Drains entries past the cursor: entries with epoch > `filter_epoch`
  /// are copied to `out` (the rest are consumed silently — they reached
  /// the subscriber through its catch-up phase) until `max_bytes` of
  /// payload accumulate. Always makes progress: the first matching entry
  /// is included whatever its size. Blocks up to `timeout_ms` when the
  /// cursor is at the tail. `*more` reports whether matching entries
  /// remain past what was copied — while true, the push loop must NOT
  /// advance its shipped frontier (epochs <= the sampled frontier may
  /// still be in the remainder).
  FetchStatus Fetch(uint64_t id, timestamp_t filter_epoch, size_t max_bytes,
                    int64_t timeout_ms, std::vector<Entry>* out, bool* more);

  /// Max epoch over evicted entries (everything above it is retained).
  timestamp_t trim_epoch() const;

  /// Wakes every Fetch with kClosed and makes future ones fail fast.
  void Close();

  /// Buffered payload bytes (observability, tests).
  size_t buffered_bytes() const;

 private:
  /// Evicts from the front per the retention policy. Caller holds mu_.
  void EvictLocked();
  /// Smallest next_seq over open cursors, or UINT64_MAX. Caller holds mu_.
  uint64_t MinCursorLocked() const;

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> entries_;  // seqs are contiguous: floor_seq_ .. next_seq_-1
  uint64_t next_seq_ = 0;      // seq of the next appended entry
  uint64_t floor_seq_ = 0;     // seq of entries_.front() (== next_seq_ if empty)
  size_t bytes_ = 0;           // payload bytes currently buffered
  timestamp_t trim_epoch_ = 0;
  bool closed_ = false;
  uint64_t next_cursor_id_ = 1;
  std::unordered_map<uint64_t, uint64_t> cursors_;  // id -> next unread seq
};

}  // namespace livegraph

#endif  // LIVEGRAPH_REPLICATION_REPLICATION_LOG_H_
