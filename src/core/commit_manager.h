// Transaction manager thread: pipelined group commit (paper §5, persist
// phase).
//
// "LiveGraph keeps a pool of transaction-serving threads ... plus one
// transaction manager thread." The manager batches commit requests,
// advances the global write epoch GWE once per batch, persists the batch's
// WAL records with a single writev + fsync, hands every transaction in the
// group its write timestamp TWE = GWE, and — once all of them finish their
// apply phase — the global read epoch GRE advances, exposing the updates
// to future transactions.
//
// Unlike the classic single-mutex design, the pipeline never funnels
// committers through a lock and never barriers between groups:
//
//   * Workers hand their WAL payload to the manager through a lock-free
//     MPSC ring (Vyukov-style sequence numbers) and sleep on futex words —
//     first a global group-formation counter, then their group's own word —
//     so a wake targets exactly the committers it frees, instead of a
//     condvar broadcast over every waiter of every group.
//   * The manager assembles and fsyncs group N+1's batch while group N is
//     still in its apply phase. Groups live in a small ring; GRE still
//     advances strictly in epoch order because the last applier of a group
//     only publishes it when every lower epoch is already visible, and
//     cascades over any higher groups that finished early.
#ifndef LIVEGRAPH_CORE_COMMIT_MANAGER_H_
#define LIVEGRAPH_CORE_COMMIT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <thread>
#include <vector>

#include "storage/wal.h"
#include "util/types.h"

namespace livegraph {

class Graph;

class CommitManager {
 public:
  /// `wal` may be null (durability disabled); group sequencing still runs.
  CommitManager(Graph* graph, Wal* wal, size_t max_batch);
  ~CommitManager();

  CommitManager(const CommitManager&) = delete;
  CommitManager& operator=(const CommitManager&) = delete;

  /// Persist phase entry point, called by the committing worker thread.
  /// Blocks until the transaction's group is durable and returns the
  /// assigned write epoch TWE. The caller must then run its apply phase
  /// and call FinishApply(TWE). The payload is borrowed until return.
  timestamp_t Persist(std::string_view wal_payload);

  /// Signals that the calling transaction completed its apply phase, then
  /// blocks until the whole group is visible (GRE >= TWE), so a worker's
  /// next transaction always reads its own commit. The last applier of the
  /// group advances GRE itself (in strict epoch order) — the manager
  /// thread is by then already persisting the next group.
  void FinishApply(timestamp_t epoch);

 private:
  /// Commit groups in flight (one persisting, the rest applying/draining).
  /// Power of two; group for epoch e lives at groups_[e % kPipelineDepth]
  /// and is recycled only after GRE >= e, which makes the epoch -> slot
  /// mapping stable for everyone still touching the group.
  static constexpr size_t kPipelineDepth = 4;

  struct Group;

  /// One committing worker's hand-off cell; lives on the worker's stack
  /// for the duration of Persist().
  struct Request {
    std::string_view payload;
    std::atomic<Group*> group{nullptr};  // set by the manager
  };

  struct alignas(64) Group {
    /// Futex word for every wait tied to this group (durability in
    /// Persist, visibility in FinishApply, slot reuse by the manager).
    /// Monotonic — never reset — so sleepers can always detect a missed
    /// transition; all predicates are re-checked against the fields below.
    std::atomic<uint32_t> word{0};
    std::atomic<uint32_t> pending{0};  // applies outstanding
    std::atomic<timestamp_t> epoch{0};
    std::atomic<bool> durable{false};
    std::atomic<bool> applied{false};
    std::atomic<bool> free{true};
  };

  struct alignas(64) RingSlot {
    std::atomic<uint64_t> seq{0};
    Request* req = nullptr;
  };

  void Enqueue(Request* req);
  /// Pops 1..max_batch_ requests, sleeping on the doorbell while the ring
  /// is empty. Returns false on shutdown with a drained ring.
  bool DequeueBatch(std::vector<Request*>* batch);
  /// Drains whatever is immediately available into `batch` (up to
  /// max_batch_); returns the number of requests taken.
  size_t DrainRing(std::vector<Request*>* batch);
  /// True while a durable group still has appliers in flight — its
  /// committers are about to re-enter with fresh transactions, so the
  /// batch window stays open for them.
  bool AnyGroupApplying() const;
  Group* ClaimGroup(timestamp_t epoch);
  /// Advances GRE over every consecutive fully-applied group, waking each
  /// group's waiters and recycling its slot.
  void AdvanceGre();
  void ThreadMain();

  Graph* graph_;
  Wal* wal_;
  size_t max_batch_;
  /// Worker-side spin budget before a futex sleep; zero on a single
  /// hardware thread, where spinning can only delay the manager.
  int spin_iters_;

  // MPSC ring: many committing workers produce, the manager consumes.
  size_t ring_mask_;
  std::vector<RingSlot> ring_;
  alignas(64) std::atomic<uint64_t> ring_tail_{0};  // producers claim slots
  alignas(64) uint64_t ring_head_ = 0;              // manager only

  // Eventcount parking the manager while the ring is empty.
  alignas(64) std::atomic<uint32_t> doorbell_{0};
  std::atomic<uint32_t> manager_parked_{0};

  /// Bumped once per formed group; the futex word workers sleep on while
  /// waiting to learn which group they landed in.
  alignas(64) std::atomic<uint32_t> formed_{0};

  Group groups_[kPipelineDepth];

  std::atomic<bool> shutdown_{false};
  std::thread thread_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_CORE_COMMIT_MANAGER_H_
