// Transaction manager thread: pipelined group commit (paper §5, persist
// phase) over the unified EpochDomain.
//
// "LiveGraph keeps a pool of transaction-serving threads ... plus one
// transaction manager thread." The manager batches commit requests,
// persists the batch's WAL records with a single writev + fsync, and hands
// every transaction its write epoch TWE. Epochs come from the engine's
// EpochDomain — private to a standalone Graph, shared across every shard
// of a ShardedStore — and visibility is the domain's business: a commit
// epoch becomes readable only after every lower epoch (on every attached
// engine) finished its apply phase. The old per-graph GRE cascade lives in
// EpochDomain::MarkApplied now; the manager's only synchronization duty is
// durability.
//
// Two kinds of commit requests flow through the same ring:
//
//   * Fresh commits (the default): the manager acquires ONE fresh epoch
//     per batch and every fresh request in the batch commits at it — the
//     classic group commit, epochs dense per attached engine set.
//   * Externally-stamped commits: a multi-shard coordinator already
//     acquired one epoch for the whole transaction; each shard's piece
//     carries that epoch through its own shard's pipeline untouched, so
//     all pieces surface at a single point of the global visibility order.
//
// The pipeline never funnels committers through a lock and never barriers
// between batches: workers hand their payload to the manager through a
// lock-free MPSC ring (Vyukov-style sequence numbers), sleep on a global
// durability futex word, and run their apply phase concurrently with the
// manager's next WAL batch.
#ifndef LIVEGRAPH_CORE_COMMIT_MANAGER_H_
#define LIVEGRAPH_CORE_COMMIT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <thread>
#include <vector>

#include "storage/wal.h"
#include "util/types.h"

namespace livegraph {

class Graph;

class CommitManager {
 public:
  /// `wal` may be null (durability disabled); epoch sequencing still runs.
  CommitManager(Graph* graph, Wal* wal, size_t max_batch);
  ~CommitManager();

  CommitManager(const CommitManager&) = delete;
  CommitManager& operator=(const CommitManager&) = delete;

  /// Persist phase entry point, called by the committing worker thread.
  /// Blocks until the transaction's WAL record is durable and returns the
  /// assigned write epoch TWE. With `external_epoch` != 0 the record is
  /// stamped with that coordinator-acquired epoch (and `participants`
  /// counts the shard WALs holding a piece of it); otherwise the batch's
  /// fresh epoch is assigned. The caller must then run its apply phase and
  /// call FinishApply(TWE). The payload is borrowed until return.
  ///
  /// When the WAL append/sync fails, *error (if non-null) receives the
  /// typed status (kIOError/kResourceExhausted) and the engine has entered
  /// degraded mode. The returned epoch is still valid and the caller MUST
  /// still account for it to the domain (undo its writes, then
  /// FinishApply) — every acquired epoch needs exactly one MarkApplied per
  /// participant on every path, or the visibility frontier wedges.
  timestamp_t Persist(std::string_view wal_payload,
                      timestamp_t external_epoch = 0,
                      uint32_t participants = 1, Status* error = nullptr);

  /// Signals the domain that the calling transaction completed its apply
  /// phase. With `wait_visible` (every fresh commit) it then blocks until
  /// the epoch is visible, so a worker's next transaction always reads its
  /// own commit; a multi-shard coordinator passes false per piece and
  /// waits once itself after the last shard.
  void FinishApply(timestamp_t epoch, bool wait_visible = true);

 private:
  /// One committing worker's hand-off cell; lives on the worker's stack
  /// for the duration of Persist().
  struct Request {
    std::string_view payload;
    timestamp_t external_epoch = 0;
    uint32_t participants = 1;
    timestamp_t epoch = 0;                // result, set by the manager
    Status status = Status::kOk;          // result, set before durable flips
    std::atomic<uint32_t> durable{0};
  };

  struct alignas(64) RingSlot {
    std::atomic<uint64_t> seq{0};
    Request* req = nullptr;
  };

  void Enqueue(Request* req);
  /// Pops 1..max_batch_ requests, sleeping on the doorbell while the ring
  /// is empty. Returns false on shutdown with a drained ring.
  bool DequeueBatch(std::vector<Request*>* batch);
  /// Drains whatever is immediately available into `batch` (up to
  /// max_batch_); returns the number of requests taken.
  size_t DrainRing(std::vector<Request*>* batch);
  void ThreadMain();

  Graph* graph_;
  Wal* wal_;
  size_t max_batch_;
  /// Worker-side spin budget before a futex sleep; zero on a single
  /// hardware thread, where spinning can only delay the manager.
  int spin_iters_;

  // MPSC ring: many committing workers produce, the manager consumes.
  size_t ring_mask_;
  std::vector<RingSlot> ring_;
  alignas(64) std::atomic<uint64_t> ring_tail_{0};  // producers claim slots
  alignas(64) uint64_t ring_head_ = 0;              // manager only
  /// Highest epoch this manager issued or forwarded (manager thread only);
  /// visible() below it means appliers are still in flight, which keeps
  /// the batch-formation window open for their next transactions.
  timestamp_t last_issued_ = 0;

  // Eventcount parking the manager while the ring is empty.
  alignas(64) std::atomic<uint32_t> doorbell_{0};
  std::atomic<uint32_t> manager_parked_{0};

  /// Bumped once per durable batch; the futex word workers sleep on while
  /// waiting for their request's durable flag.
  alignas(64) std::atomic<uint32_t> durable_word_{0};

  std::atomic<bool> shutdown_{false};
  std::thread thread_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_CORE_COMMIT_MANAGER_H_
