// Transaction manager thread: group commit (paper §5, persist phase).
//
// "LiveGraph keeps a pool of transaction-serving threads ... plus one
// transaction manager thread." The manager batches commit requests,
// advances the global write epoch GWE once per batch, persists the batch's
// WAL records with a single fsync, hands every transaction in the group its
// write timestamp TWE = GWE, and — after all of them finish their apply
// phase — advances the global read epoch GRE, exposing the updates to
// future transactions.
#ifndef LIVEGRAPH_CORE_COMMIT_MANAGER_H_
#define LIVEGRAPH_CORE_COMMIT_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "storage/wal.h"
#include "util/types.h"

namespace livegraph {

class Graph;

class CommitManager {
 public:
  /// `wal` may be null (durability disabled); group sequencing still runs.
  CommitManager(Graph* graph, Wal* wal, size_t max_batch);
  ~CommitManager();

  CommitManager(const CommitManager&) = delete;
  CommitManager& operator=(const CommitManager&) = delete;

  /// Persist phase entry point, called by the committing worker thread.
  /// Blocks until the transaction's group is durable and returns the
  /// assigned write epoch TWE. The caller must then run its apply phase
  /// and call FinishApply(TWE).
  timestamp_t Persist(std::string_view wal_payload);

  /// Signals that the calling transaction completed its apply phase. The
  /// last transaction of a group lets the manager advance GRE.
  void FinishApply(timestamp_t epoch);

 private:
  struct Request {
    std::string_view payload;
    timestamp_t epoch = 0;  // 0 = not yet persisted
  };

  void ThreadMain();

  Graph* graph_;
  Wal* wal_;
  size_t max_batch_;

  std::mutex mu_;
  std::condition_variable worker_cv_;   // wakes workers whose epoch is set
  std::condition_variable manager_cv_;  // wakes the manager thread
  std::vector<Request*> queue_;
  size_t applies_outstanding_ = 0;
  timestamp_t current_group_epoch_ = 0;
  bool shutdown_ = false;

  std::thread thread_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_CORE_COMMIT_MANAGER_H_
