#include "core/graph.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/commit_manager.h"
#include "core/transaction.h"
#include "util/metrics.h"

namespace livegraph {

Graph::Graph(GraphOptions options) : options_(std::move(options)) {
  // Attach to the supplied visibility domain (sharded configuration) or
  // own a private one. The window only needs to exceed this engine's
  // concurrent-transaction bound; a shared domain was sized by its owner.
  domain_ = options_.epoch_domain;
  if (domain_ == nullptr) {
    domain_ = std::make_shared<EpochDomain>(
        static_cast<size_t>(options_.max_workers) * 8);
  }

  BlockManager::Options bm;
  bm.path = options_.storage_path;
  bm.reserve_bytes = options_.region_reserve;
  bm.private_order_threshold = options_.private_order_threshold;
  block_manager_ = std::make_unique<BlockManager>(bm);

  index_region_ = MmapRegion::CreateAnonymous(options_.max_vertices *
                                              sizeof(VertexIndexEntry));
  lock_region_ =
      MmapRegion::CreateAnonymous(options_.max_vertices * sizeof(FutexLock));

  slots_.reserve(static_cast<size_t>(options_.max_workers));
  for (int i = 0; i < options_.max_workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }

  // relaxed: constructor runs before any worker thread exists; the threads
  // spawned below synchronize with it through std::thread creation.
  next_compaction_at_.store(options_.compaction_interval,
                            std::memory_order_relaxed);

  if (!options_.wal_path.empty()) {
    Wal::Options wal_options;
    wal_options.path = options_.wal_path;
    wal_options.fsync = options_.fsync_wal;
    wal_ = std::make_unique<Wal>(wal_options);
  }
  commit_manager_ = std::make_unique<CommitManager>(
      this, wal_.get(), options_.group_commit_max_batch);

  if (options_.enable_compaction) {
    compaction_thread_ = std::thread([this] { CompactionThreadMain(); });
  }
}

Graph::~Graph() {
  shutdown_.store(true, std::memory_order_release);
  compaction_cv_.notify_all();
  if (compaction_thread_.joinable()) compaction_thread_.join();
  commit_manager_.reset();  // joins the transaction manager thread
}

Graph::WorkerSlot* Graph::AcquireSlot() {
  static thread_local size_t hint = 0;
  const size_t n = slots_.size();
  for (size_t attempt = 0; attempt < n * 4; ++attempt) {
    WorkerSlot* slot = slots_[(hint + attempt) % n].get();
    // relaxed pre-check: a pure contention hint — ownership (and the HB
    // edge to the previous tenant's release) comes from the acquire
    // exchange alone.
    if (!slot->in_use.load(std::memory_order_relaxed) &&
        !slot->in_use.exchange(true, std::memory_order_acquire)) {
      hint = (hint + attempt) % n;
      return slot;
    }
  }
  std::fprintf(stderr,
               "Graph: more concurrent transactions than max_workers=%d\n",
               options_.max_workers);
  std::abort();
}

void Graph::ReleaseSlot(WorkerSlot* slot) {
  slot->reading_epoch.store(kIdleEpoch, std::memory_order_seq_cst);
  slot->in_use.store(false, std::memory_order_release);
}

timestamp_t Graph::PublishReadEpoch(WorkerSlot* slot) {
  // Store-recheck protocol: after publishing we verify the visible
  // frontier did not move. If it did not, any compaction scan ordered
  // after our store sees our epoch; any scan ordered before used a
  // frontier <= ours, so its safe bound already covers us (see SafeEpoch).
  while (true) {
    timestamp_t epoch = domain_->visible();
    slot->reading_epoch.store(epoch, std::memory_order_seq_cst);
    if (domain_->visible() == epoch) {
      return epoch;
    }
  }
}

timestamp_t Graph::SafeEpoch() const {
  // Floor over the frontier, this engine's active transactions, and every
  // domain-level read pin (cross-shard snapshots pin the domain once
  // instead of a slot on each shard).
  timestamp_t safe = domain_->OldestPin(domain_->visible());
  for (const auto& slot : slots_) {
    timestamp_t e = slot->reading_epoch.load(std::memory_order_seq_cst);
    if (e < safe) safe = e;
  }
  return safe;
}

Transaction Graph::BeginTransaction() {
  WorkerSlot* slot = AcquireSlot();
  timestamp_t tre = PublishReadEpoch(slot);
  // relaxed: TIDs only need to be unique (they stamp -TID staging marks);
  // nothing is ordered by the counter itself.
  int64_t tid =
      static_cast<int64_t>(next_tid_.fetch_add(1, std::memory_order_relaxed));
  return Transaction(this, slot, tre, tid);
}

Transaction Graph::BeginTransactionAt(timestamp_t epoch) {
  WorkerSlot* slot = AcquireSlot();
  // Same protocol as BeginTimeTravelTransaction: publish the current
  // frontier first (store-recheck), then lower the slot to the pinned
  // epoch — publishing a value below GRE is always safe, SafeEpoch only
  // ever shrinks from it. The caller's domain-level read pin held `epoch`
  // alive up to this point; from here this slot protects it on this shard.
  timestamp_t now = PublishReadEpoch(slot);
  if (epoch < 0) epoch = 0;
  if (epoch > now) epoch = now;
  slot->reading_epoch.store(epoch, std::memory_order_seq_cst);
  int64_t tid =
      static_cast<int64_t>(next_tid_.fetch_add(1, std::memory_order_relaxed));
  return Transaction(this, slot, epoch, tid);
}

ReadTransaction Graph::BeginReadOnlyTransaction() {
  WorkerSlot* slot = AcquireSlot();
  timestamp_t tre = PublishReadEpoch(slot);
  return ReadTransaction(this, slot, tre);
}

ReadTransaction Graph::BeginTimeTravelTransaction(timestamp_t epoch) {
  WorkerSlot* slot = AcquireSlot();
  // Publish the historical epoch so compaction keeps (from now on) every
  // version this snapshot can still reach. Publishing a value below GRE is
  // always safe — SafeEpoch only ever shrinks from it.
  timestamp_t now = PublishReadEpoch(slot);
  if (epoch < 0) epoch = 0;
  if (epoch > now) epoch = now;
  slot->reading_epoch.store(epoch, std::memory_order_seq_cst);
  return ReadTransaction(this, slot, epoch);
}

block_ptr_t Graph::FindTel(vertex_t v, label_t label) const {
  if (v < 0 || v >= VertexCount()) return kNullBlock;
  block_ptr_t store =
      IndexEntry(v)->edge_store.load(std::memory_order_acquire);
  if (store == kNullBlock) return kNullBlock;
  uint8_t* base = block_manager_->Pointer(store);
  auto* header = reinterpret_cast<LabelIndexHeader*>(base);
  uint32_t count = header->count.load(std::memory_order_acquire);
  LabelIndexEntry* entries = LabelEntries(base);
  for (uint32_t i = 0; i < count; ++i) {
    if (entries[i].label == label) {
      return entries[i].tel.load(std::memory_order_acquire);
    }
  }
  return kNullBlock;
}

std::atomic<block_ptr_t>* Graph::FindOrCreateLabelSlot(vertex_t v,
                                                       label_t label) {
  VertexIndexEntry* index = IndexEntry(v);
  block_ptr_t store = index->edge_store.load(std::memory_order_acquire);
  if (store == kNullBlock) {
    // First adjacency list of this vertex: allocate the minimal label
    // index block (64 B: header + 3 slots).
    block_ptr_t fresh = block_manager_->Allocate(6);
    uint8_t* base = block_manager_->Pointer(fresh);
    auto* header = new (base) LabelIndexHeader();
    header->count.store(0, std::memory_order_relaxed);
    header->capacity = (64 - sizeof(LabelIndexHeader)) / sizeof(LabelIndexEntry);
    index->edge_store.store(fresh, std::memory_order_release);
    store = fresh;
  }
  uint8_t* base = block_manager_->Pointer(store);
  auto* header = reinterpret_cast<LabelIndexHeader*>(base);
  uint32_t count = header->count.load(std::memory_order_acquire);
  LabelIndexEntry* entries = LabelEntries(base);
  for (uint32_t i = 0; i < count; ++i) {
    if (entries[i].label == label) return &entries[i].tel;
  }
  if (count == header->capacity) {
    // Grow: copy into a block of twice the size; concurrent readers keep
    // scanning the (still intact) old block until the pointer swap.
    uint8_t new_order = static_cast<uint8_t>(BlockOrder(store) + 1);
    block_ptr_t bigger = block_manager_->Allocate(new_order);
    uint8_t* new_base = block_manager_->Pointer(bigger);
    auto* new_header = new (new_base) LabelIndexHeader();
    new_header->capacity = static_cast<uint32_t>(
        ((uint64_t{1} << new_order) - sizeof(LabelIndexHeader)) /
        sizeof(LabelIndexEntry));
    LabelIndexEntry* new_entries = LabelEntries(new_base);
    for (uint32_t i = 0; i < count; ++i) {
      new_entries[i].label = entries[i].label;
      // relaxed store: the new block is private until the two release
      // stores below publish it (count, then edge_store).
      new_entries[i].tel.store(entries[i].tel.load(std::memory_order_acquire),
                               std::memory_order_relaxed);
    }
    new_header->count.store(count, std::memory_order_release);
    index->edge_store.store(bigger, std::memory_order_release);
    block_manager_->Retire(store, domain_->visible() + 1);
    base = new_base;
    header = new_header;
    entries = new_entries;
  }
  entries[count].label = label;
  // relaxed: the entry is invisible until the count release-store below.
  entries[count].tel.store(kNullBlock, std::memory_order_relaxed);
  header->count.store(count + 1, std::memory_order_release);
  return &entries[count].tel;
}

block_ptr_t Graph::NewTel(vertex_t src, uint8_t order) {
  block_ptr_t ptr = block_manager_->Allocate(order);
  TelBlock block = Tel(ptr);
  auto* header = new (block.header()) TelHeader();
  // relaxed init stores throughout: the block is private to this thread
  // until the caller publishes its pointer with a release store.
  header->prev.store(kNullBlock, std::memory_order_relaxed);
  header->commit_ts.store(0, std::memory_order_relaxed);
  header->committed_entries.store(0, std::memory_order_relaxed);
  header->committed_prop_bytes.store(0, std::memory_order_relaxed);
  header->src = src;
  if (block.bloom_bytes() > 0) {
    std::memset(block.bloom_bits(), 0, block.bloom_bytes());
  }
  return ptr;
}

void Graph::ResetWal() {
  // A failed truncate poisons the log; the next commit group surfaces it
  // and degrades the engine. The stale log contents are harmless either
  // way — recovery filters records by epoch against the manifest.
  if (wal_ != nullptr) (void)wal_->Reset();
}

void Graph::EnterDegraded(Status status) {
  if (status == Status::kOk) return;
  Status expected = Status::kOk;
  if (degraded_.compare_exchange_strong(expected, status,
                                        std::memory_order_acq_rel)) {
    // Sticky flag + typed error counter (cold path: once per process
    // unless multiple engines degrade).
    metrics::Registry::Instance().GetGauge("livegraph_degraded").Set(1);
    std::string counter_name = "livegraph_errors_total{status=\"";
    counter_name += StatusName(status);
    counter_name += "\"}";
    metrics::Registry::Instance().GetCounter(counter_name).Add();
    std::fprintf(stderr,
                 "Graph: entering read-only degraded mode (%s) — reads keep "
                 "serving the last durable epoch, writes are rejected; "
                 "restart to recover\n",
                 StatusName(status));
  }
}

Graph::MemoryStats Graph::CollectMemoryStats() const {
  BlockManager::Stats bs = block_manager_->GetStats();
  MemoryStats stats;
  stats.block_store_allocated = bs.bump_allocated_bytes;
  stats.block_store_free = bs.free_list_bytes;
  stats.block_store_retired = bs.retired_bytes;
  stats.block_store_live = bs.live_bytes();
  stats.index_bytes = static_cast<uint64_t>(VertexCount()) *
                      (sizeof(VertexIndexEntry) + sizeof(FutexLock));
  stats.wal_bytes = wal_ ? wal_->bytes_written() : 0;
  return stats;
}

std::map<size_t, size_t> Graph::CollectTelSizeHistogram() const {
  std::map<size_t, size_t> histogram;
  vertex_t n = VertexCount();
  for (vertex_t v = 0; v < n; ++v) {
    block_ptr_t store =
        IndexEntry(v)->edge_store.load(std::memory_order_acquire);
    if (store == kNullBlock) continue;
    uint8_t* base = block_manager_->Pointer(store);
    auto* header = reinterpret_cast<LabelIndexHeader*>(base);
    uint32_t count = header->count.load(std::memory_order_acquire);
    LabelIndexEntry* entries = LabelEntries(base);
    for (uint32_t i = 0; i < count; ++i) {
      block_ptr_t tel = entries[i].tel.load(std::memory_order_acquire);
      if (tel == kNullBlock) continue;
      histogram[size_t{1} << BlockOrder(tel)]++;
    }
  }
  return histogram;
}

}  // namespace livegraph
