#include "core/commit_manager.h"

#include "core/graph.h"

namespace livegraph {

CommitManager::CommitManager(Graph* graph, Wal* wal, size_t max_batch)
    : graph_(graph), wal_(wal), max_batch_(max_batch == 0 ? 1 : max_batch) {
  thread_ = std::thread([this] { ThreadMain(); });
}

CommitManager::~CommitManager() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    shutdown_ = true;
  }
  manager_cv_.notify_all();
  thread_.join();
}

timestamp_t CommitManager::Persist(std::string_view wal_payload) {
  Request request;
  request.payload = wal_payload;
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&request);
  manager_cv_.notify_one();
  worker_cv_.wait(lock, [&] { return request.epoch != 0; });
  return request.epoch;
}

void CommitManager::FinishApply(timestamp_t epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  if (--applies_outstanding_ == 0) {
    // Last transaction of the group: expose the group's updates. "After
    // all transactions in the commit group make their updates visible, the
    // transaction manager advances the global read timestamp GRE" (§5).
    graph_->global_read_epoch_.store(epoch, std::memory_order_seq_cst);
    manager_cv_.notify_all();
    worker_cv_.notify_all();
  } else {
    // Commit() must not return before the whole group becomes visible:
    // otherwise this worker's next transaction could start at a read epoch
    // below its own commit timestamp and spuriously conflict with itself.
    worker_cv_.wait(lock, [&] {
      return graph_->global_read_epoch_.load(std::memory_order_acquire) >=
             epoch;
    });
  }
}

void CommitManager::ThreadMain() {
  std::vector<Request*> batch;
  std::vector<std::string_view> payloads;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      manager_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      size_t take = std::min(queue_.size(), max_batch_);
      batch.assign(queue_.begin(), queue_.begin() + take);
      queue_.erase(queue_.begin(), queue_.begin() + take);
    }

    // Advance GWE; every transaction in this group commits at `epoch`.
    timestamp_t epoch =
        graph_->global_write_epoch_.fetch_add(1, std::memory_order_acq_rel) +
        1;

    // Persist the whole group with one write + one fsync.
    if (wal_ != nullptr) {
      payloads.clear();
      for (Request* r : batch) {
        if (!r->payload.empty()) payloads.push_back(r->payload);
      }
      if (!payloads.empty()) wal_->AppendBatch(epoch, payloads);
    }

    // Release the group into its apply phase...
    {
      std::lock_guard<std::mutex> guard(mu_);
      current_group_epoch_ = epoch;
      applies_outstanding_ = batch.size();
      for (Request* r : batch) r->epoch = epoch;
    }
    worker_cv_.notify_all();

    // ...and wait for all applies before starting the next group, so GRE
    // advances in epoch order.
    {
      std::unique_lock<std::mutex> lock(mu_);
      manager_cv_.wait(lock, [&] { return applies_outstanding_ == 0; });
    }
  }
}

}  // namespace livegraph
