#include "core/commit_manager.h"

#include <thread>

#include "core/graph.h"
#include "util/futex_lock.h"

namespace livegraph {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CommitManager::CommitManager(Graph* graph, Wal* wal, size_t max_batch)
    : graph_(graph),
      wal_(wal),
      max_batch_(max_batch == 0 ? 1 : max_batch),
      spin_iters_(std::thread::hardware_concurrency() > 1 ? 256 : 0) {
  // Every concurrent committer holds a Graph worker slot, so max_workers
  // bounds the requests in flight; doubling that means a producer never
  // waits for the consumer to free its ring slot.
  size_t ring_size =
      NextPow2(static_cast<size_t>(graph->options().max_workers) * 2);
  if (ring_size < 64) ring_size = 64;
  ring_mask_ = ring_size - 1;
  ring_ = std::vector<RingSlot>(ring_size);
  for (size_t i = 0; i < ring_size; ++i) {
    ring_[i].seq.store(i, std::memory_order_relaxed);
  }
  thread_ = std::thread([this] { ThreadMain(); });
}

CommitManager::~CommitManager() {
  shutdown_.store(true, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  doorbell_.fetch_add(1, std::memory_order_relaxed);
  FutexWakeAll(&doorbell_);
  thread_.join();
}

void CommitManager::Enqueue(Request* req) {
  uint64_t pos = ring_tail_.fetch_add(1, std::memory_order_acq_rel);
  RingSlot& slot = ring_[pos & ring_mask_];
  // The ring is sized past the worker-slot table, so the slot is free in
  // the common case; a short stall here means the manager is a full lap
  // behind, which backpressure-throttles producers exactly then.
  while (slot.seq.load(std::memory_order_acquire) != pos) CpuRelax();
  slot.req = req;
  slot.seq.store(pos + 1, std::memory_order_release);
  // Doorbell eventcount: the fence orders the slot publication against the
  // parked-flag read (the manager mirrors it before its empty re-check),
  // so either we see it parked or it sees our slot.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  doorbell_.fetch_add(1, std::memory_order_relaxed);
  if (manager_parked_.load(std::memory_order_relaxed) != 0 &&
      manager_parked_.exchange(0, std::memory_order_relaxed) != 0) {
    FutexWakeOne(&doorbell_);
  }
}

size_t CommitManager::DrainRing(std::vector<Request*>* batch) {
  size_t taken = 0;
  while (batch->size() < max_batch_) {
    RingSlot& slot = ring_[ring_head_ & ring_mask_];
    if (slot.seq.load(std::memory_order_acquire) != ring_head_ + 1) break;
    batch->push_back(slot.req);
    slot.seq.store(ring_head_ + ring_.size(), std::memory_order_release);
    ++ring_head_;
    ++taken;
  }
  return taken;
}

bool CommitManager::AnyGroupApplying() const {
  for (const Group& group : groups_) {
    if (!group.free.load(std::memory_order_relaxed) &&
        group.durable.load(std::memory_order_relaxed) &&
        !group.applied.load(std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

bool CommitManager::DequeueBatch(std::vector<Request*>* batch) {
  // Block until at least one request is queued.
  while (true) {
    RingSlot& head = ring_[ring_head_ & ring_mask_];
    if (head.seq.load(std::memory_order_acquire) == ring_head_ + 1) break;
    uint32_t ticket = doorbell_.load(std::memory_order_relaxed);
    manager_parked_.store(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (head.seq.load(std::memory_order_acquire) == ring_head_ + 1) {
      manager_parked_.store(0, std::memory_order_relaxed);
      break;
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      manager_parked_.store(0, std::memory_order_relaxed);
      return false;
    }
    FutexWait(&doorbell_, ticket);
    manager_parked_.store(0, std::memory_order_relaxed);
  }
  DrainRing(batch);
  // Group-commit window: while the previous group is still applying, its
  // committers are about to re-enter with new transactions. Yield them the
  // CPU and re-drain so the batch does not collapse to whatever happened
  // to be queued the instant the manager came around — that keeps batches
  // near the number of active writers (the old apply-barrier design got
  // this for free, at the cost of stalling the pipeline).
  int window = 8;
  while (batch->size() < max_batch_ && window-- > 0 && AnyGroupApplying()) {
    std::this_thread::yield();
    DrainRing(batch);
  }
  return true;
}

CommitManager::Group* CommitManager::ClaimGroup(timestamp_t epoch) {
  Group* group = &groups_[static_cast<size_t>(epoch) & (kPipelineDepth - 1)];
  // Pipeline backpressure: the slot frees once epoch - kPipelineDepth
  // became visible. Applies usually finish well before the next lap.
  while (!group->free.load(std::memory_order_acquire)) {
    uint32_t word = group->word.load(std::memory_order_acquire);
    if (group->free.load(std::memory_order_acquire)) break;
    FutexWait(&group->word, word);
  }
  // Reset the lap state *before* publishing the new epoch: AdvanceGre
  // keys on epoch (acquire), so a stale applied=true from the previous
  // lap can never be paired with the new epoch.
  group->durable.store(false, std::memory_order_relaxed);
  group->applied.store(false, std::memory_order_relaxed);
  group->free.store(false, std::memory_order_relaxed);
  group->epoch.store(epoch, std::memory_order_seq_cst);
  return group;
}

timestamp_t CommitManager::Persist(std::string_view wal_payload) {
  Request request;
  request.payload = wal_payload;
  Enqueue(&request);

  // Stage 1: learn which group we landed in. The manager assigns groups
  // right after batch formation, so spin briefly, then sleep on the global
  // formation counter (one wake per formed group).
  Group* group = request.group.load(std::memory_order_acquire);
  for (int spin = 0; group == nullptr && spin < spin_iters_; ++spin) {
    CpuRelax();
    group = request.group.load(std::memory_order_acquire);
  }
  while (group == nullptr) {
    uint32_t formed = formed_.load(std::memory_order_acquire);
    group = request.group.load(std::memory_order_acquire);
    if (group != nullptr) break;
    FutexWait(&formed_, formed);
    group = request.group.load(std::memory_order_acquire);
  }

  // Stage 2: wait for the group to become durable (per-group futex word;
  // the manager wakes the whole group with one syscall after the fsync).
  while (!group->durable.load(std::memory_order_acquire)) {
    uint32_t word = group->word.load(std::memory_order_acquire);
    if (group->durable.load(std::memory_order_acquire)) break;
    FutexWait(&group->word, word);
  }
  return group->epoch.load(std::memory_order_relaxed);
}

void CommitManager::FinishApply(timestamp_t epoch) {
  Group* group = &groups_[static_cast<size_t>(epoch) & (kPipelineDepth - 1)];
  if (group->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last transaction of the group: expose the group's updates. "After
    // all transactions in the commit group make their updates visible, the
    // transaction manager advances the global read timestamp GRE" (§5) —
    // here the last applier advances it so the manager can keep persisting
    // the next group meanwhile. The store must be seq_cst: AdvanceGre is a
    // store-buffer litmus between concurrent last-appliers (each stores
    // its applied flag, then loads the other group's state); with weaker
    // orders both can read stale and the cascade stalls with no one left
    // to run it.
    group->applied.store(true, std::memory_order_seq_cst);
    AdvanceGre();
  }
  // Commit() must not return before the whole group becomes visible:
  // otherwise this worker's next transaction could start at a read epoch
  // below its own commit timestamp and spuriously conflict with itself.
  while (graph_->global_read_epoch_.load(std::memory_order_seq_cst) < epoch) {
    uint32_t word = group->word.load(std::memory_order_acquire);
    if (graph_->global_read_epoch_.load(std::memory_order_seq_cst) >= epoch) {
      break;
    }
    FutexWait(&group->word, word);
  }
}

void CommitManager::AdvanceGre() {
  // Advance GRE over every consecutive epoch whose group fully applied.
  // Strict epoch order falls out of the chain: epoch e only becomes
  // visible when GRE == e - 1, and whoever finishes a group retries the
  // cascade, so an early-finishing higher group waits for its predecessor.
  // Everything here is seq_cst: paired with the seq_cst applied-flag
  // store in FinishApply, the single total order guarantees that when two
  // last-appliers race, at least one of them observes the other's flag
  // and completes the cascade (see the litmus note there).
  while (true) {
    timestamp_t current =
        graph_->global_read_epoch_.load(std::memory_order_seq_cst);
    Group* next =
        &groups_[static_cast<size_t>(current + 1) & (kPipelineDepth - 1)];
    if (next->epoch.load(std::memory_order_seq_cst) != current + 1) return;
    if (!next->applied.load(std::memory_order_seq_cst)) return;
    if (!graph_->global_read_epoch_.compare_exchange_strong(
            current, current + 1, std::memory_order_seq_cst)) {
      continue;  // another applier advanced concurrently; re-examine
    }
    // Group current+1 is now visible: recycle its slot for the manager and
    // wake everyone parked on it (FinishApply waiters re-check GRE, the
    // manager re-checks free).
    next->free.store(true, std::memory_order_release);
    next->word.fetch_add(1, std::memory_order_release);
    FutexWakeAll(&next->word);
  }
}

void CommitManager::ThreadMain() {
  std::vector<Request*> batch;
  std::vector<std::string_view> payloads;
  batch.reserve(max_batch_);
  payloads.reserve(max_batch_);
  while (true) {
    batch.clear();
    if (!DequeueBatch(&batch)) return;

    // Advance GWE; every transaction in this group commits at `epoch`.
    timestamp_t epoch =
        graph_->global_write_epoch_.fetch_add(1, std::memory_order_acq_rel) +
        1;
    Group* group = ClaimGroup(epoch);
    group->pending.store(static_cast<uint32_t>(batch.size()),
                         std::memory_order_relaxed);

    // Hand every member its group so stage-1 waiters can move to the
    // group's own futex word.
    for (Request* request : batch) {
      request->group.store(group, std::memory_order_release);
    }
    formed_.fetch_add(1, std::memory_order_release);
    FutexWakeAll(&formed_);

    // Persist the whole group: writev gathered straight from the workers'
    // payload buffers, one fsync. Workers stay parked on the group word.
    if (wal_ != nullptr) {
      payloads.clear();
      for (Request* request : batch) {
        if (!request->payload.empty()) payloads.push_back(request->payload);
      }
      if (!payloads.empty()) wal_->AppendBatch(epoch, payloads);
    }

    // Release the group into its apply phase with one wake, then loop
    // straight into assembling the next batch — group N+1's WAL write
    // overlaps group N's apply phase; GRE order is enforced by the
    // appliers' cascade in AdvanceGre().
    group->durable.store(true, std::memory_order_release);
    group->word.fetch_add(1, std::memory_order_release);
    FutexWakeAll(&group->word);
  }
}

}  // namespace livegraph
