#include "core/commit_manager.h"

#include <thread>

#include "core/epoch_domain.h"
#include "core/graph.h"
#include "util/futex_lock.h"
#include "util/invariant.h"
#include "util/metrics.h"
#include "util/sync_annotations.h"

namespace livegraph {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CommitManager::CommitManager(Graph* graph, Wal* wal, size_t max_batch)
    : graph_(graph),
      wal_(wal),
      max_batch_(max_batch == 0 ? 1 : max_batch),
      spin_iters_(std::thread::hardware_concurrency() > 1 ? 256 : 0) {
  // Every concurrent committer holds a Graph worker slot, so max_workers
  // bounds the requests in flight; doubling that means a producer never
  // waits for the consumer to free its ring slot.
  size_t ring_size =
      NextPow2(static_cast<size_t>(graph->options().max_workers) * 2);
  if (ring_size < 64) ring_size = 64;
  ring_mask_ = ring_size - 1;
  ring_ = std::vector<RingSlot>(ring_size);
  for (size_t i = 0; i < ring_size; ++i) {
    ring_[i].seq.store(i, std::memory_order_relaxed);
  }
  thread_ = std::thread([this] { ThreadMain(); });
}

CommitManager::~CommitManager() {
  shutdown_.store(true, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  doorbell_.fetch_add(1, std::memory_order_relaxed);
  FutexWakeAll(&doorbell_);
  thread_.join();
}

void CommitManager::Enqueue(Request* req) {
  uint64_t pos = ring_tail_.fetch_add(1, std::memory_order_acq_rel);
  RingSlot& slot = ring_[pos & ring_mask_];
  // The ring is sized past the worker-slot table, so the slot is free in
  // the common case; a short stall here means the manager is a full lap
  // behind, which backpressure-throttles producers exactly then.
  while (slot.seq.load(std::memory_order_acquire) != pos) CpuRelax();
  // Single-writer discipline: the seq handshake above means the manager
  // finished with this slot (and nulled it in DrainRing); a non-null req
  // here is two producers inside one slot — ring corruption.
  LIVEGRAPH_DCHECK(slot.req == nullptr,
                   "commit ring slot %llu claimed while still occupied "
                   "(two producers in one slot)",
                   static_cast<unsigned long long>(pos & ring_mask_));
  slot.req = req;
  // Slot handoff edge: the request's fields (payload view, epoch inputs)
  // happen-before the manager's read of them — carried by the seq
  // release/acquire pair; annotated so TSan keeps the pair checkable.
  LIVEGRAPH_TSAN_RELEASE(&slot.seq);
  slot.seq.store(pos + 1, std::memory_order_release);
  // Doorbell eventcount: the fence orders the slot publication against the
  // parked-flag read (the manager mirrors it before its empty re-check),
  // so either we see it parked or it sees our slot.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // relaxed: the doorbell value is only a wake ticket (FutexWait compares
  // it for equality); all ordering comes from the seq_cst fences around it.
  doorbell_.fetch_add(1, std::memory_order_relaxed);
  // relaxed: parked is a hint to skip the wake syscall; the fence pairing
  // above guarantees we cannot miss a parked manager that missed our slot.
  if (manager_parked_.load(std::memory_order_relaxed) != 0 &&
      manager_parked_.exchange(0, std::memory_order_relaxed) != 0) {
    FutexWakeOne(&doorbell_);
  }
}

size_t CommitManager::DrainRing(std::vector<Request*>* batch) {
  size_t taken = 0;
  while (batch->size() < max_batch_) {
    RingSlot& slot = ring_[ring_head_ & ring_mask_];
    if (slot.seq.load(std::memory_order_acquire) != ring_head_ + 1) break;
    LIVEGRAPH_TSAN_ACQUIRE(&slot.seq);  // pairs with Enqueue's RELEASE
    LIVEGRAPH_DCHECK(slot.req != nullptr,
                     "commit ring slot %llu published empty",
                     static_cast<unsigned long long>(ring_head_ & ring_mask_));
    batch->push_back(slot.req);
    // Null before recycling the slot: the Request lives on the producer's
    // stack and dies when Persist returns; this also arms the
    // two-producers DCHECK in Enqueue.
    slot.req = nullptr;
    slot.seq.store(ring_head_ + ring_.size(), std::memory_order_release);
    ++ring_head_;
    ++taken;
  }
  return taken;
}

bool CommitManager::DequeueBatch(std::vector<Request*>* batch) {
  // Block until at least one request is queued.
  while (true) {
    RingSlot& head = ring_[ring_head_ & ring_mask_];
    if (head.seq.load(std::memory_order_acquire) == ring_head_ + 1) break;
    // relaxed: the ticket is only compared for equality by FutexWait; a
    // stale read causes at most one spurious wake-and-recheck. The
    // parked-flag store needs no ordering of its own — the seq_cst fence
    // below pairs with Enqueue's fence so a producer that missed our
    // parked flag published its slot before our re-check.
    uint32_t ticket = doorbell_.load(std::memory_order_relaxed);
    manager_parked_.store(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (head.seq.load(std::memory_order_acquire) == ring_head_ + 1) {
      manager_parked_.store(0, std::memory_order_relaxed);
      break;
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      manager_parked_.store(0, std::memory_order_relaxed);
      return false;
    }
    FutexWait(&doorbell_, ticket);
    manager_parked_.store(0, std::memory_order_relaxed);
  }
  DrainRing(batch);
  // Group-commit window: while this pipeline's previous epochs are still
  // below the visible frontier, their committers are in (or about to
  // finish) their apply phase and will re-enter with new transactions.
  // Yield them the CPU and re-drain so the batch does not collapse to
  // whatever happened to be queued the instant the manager came around —
  // that keeps batches near the number of active writers (the old
  // apply-barrier design got this for free, at the cost of stalling the
  // pipeline).
  EpochDomain* domain = graph_->epoch_domain();
  static metrics::Histogram& formation_latency =
      metrics::Registry::Instance().GetHistogram(
          "livegraph_commit_formation_latency", metrics::Unit::kNanos);
  const bool timed = metrics::SampleStageTiming();
  const uint64_t window_start = timed ? metrics::MonotonicNanos() : 0;
  int window = 8;
  while (batch->size() < max_batch_ && window-- > 0 &&
         domain->visible() < last_issued_) {
    std::this_thread::yield();
    DrainRing(batch);
  }
  if (timed) {
    formation_latency.Record(metrics::MonotonicNanos() - window_start);
  }
  return true;
}

timestamp_t CommitManager::Persist(std::string_view wal_payload,
                                   timestamp_t external_epoch,
                                   uint32_t participants, Status* error) {
  Request request;
  request.payload = wal_payload;
  request.external_epoch = external_epoch;
  request.participants = participants;
  Enqueue(&request);

  // Wait for the batch's writev + fsync. Spin briefly (the manager turns
  // batches around quickly), then sleep on the global durability word —
  // one wake syscall releases the whole batch; members of other in-flight
  // batches re-check their own flag and go back to sleep.
  for (int spin = 0; spin < spin_iters_; ++spin) {
    if (request.durable.load(std::memory_order_acquire) != 0) {
      if (error != nullptr) *error = request.status;
      return request.epoch;
    }
    CpuRelax();
  }
  while (request.durable.load(std::memory_order_acquire) == 0) {
    uint32_t word = durable_word_.load(std::memory_order_acquire);
    if (request.durable.load(std::memory_order_acquire) != 0) break;
    FutexWait(&durable_word_, word);
  }
  if (error != nullptr) *error = request.status;
  return request.epoch;
}

void CommitManager::FinishApply(timestamp_t epoch, bool wait_visible) {
  EpochDomain* domain = graph_->epoch_domain();
  // "After all transactions in the commit group make their updates
  // visible, the transaction manager advances the global read timestamp"
  // (§5) — here the domain's cascade advances the frontier the moment the
  // last participant of each consecutive epoch reports in, while the
  // manager keeps persisting the next batch.
  domain->MarkApplied(epoch);
  // Commit() must not return before the epoch becomes visible: otherwise
  // this worker's next transaction could start at a read epoch below its
  // own commit timestamp and spuriously conflict with itself. A
  // multi-shard coordinator instead waits once, after its last piece.
  if (wait_visible) domain->WaitVisible(epoch);
}

void CommitManager::ThreadMain() {
  std::vector<Request*> batch;
  std::vector<Wal::Record> records;
  batch.reserve(max_batch_);
  records.reserve(max_batch_);
  EpochDomain* domain = graph_->epoch_domain();
  static metrics::Counter& groups = metrics::Registry::Instance().GetCounter(
      "livegraph_commit_groups_total");
  static metrics::Histogram& group_size =
      metrics::Registry::Instance().GetHistogram("livegraph_commit_group_size",
                                                 metrics::Unit::kCount);
  static metrics::Histogram& ring_occupancy =
      metrics::Registry::Instance().GetHistogram(
          "livegraph_commit_ring_occupancy", metrics::Unit::kCount);
  while (true) {
    batch.clear();
    if (!DequeueBatch(&batch)) return;
    groups.Add();
    group_size.Record(batch.size());
    // Requests still queued behind the batch just taken: the backlog the
    // pipeline is running at.
    ring_occupancy.Record(ring_tail_.load(std::memory_order_relaxed) -
                          ring_head_);

    // One fresh epoch for every request that does not carry a
    // coordinator-stamped one; its MarkApplied countdown is the number of
    // fresh transactions in the batch.
    uint32_t fresh = 0;
    for (Request* request : batch) {
      if (request->external_epoch == 0) ++fresh;
    }
    timestamp_t fresh_epoch = fresh > 0 ? domain->Acquire(fresh) : 0;
    records.clear();
    for (Request* request : batch) {
      request->epoch = request->external_epoch != 0 ? request->external_epoch
                                                    : fresh_epoch;
      if (request->epoch > last_issued_) last_issued_ = request->epoch;
      if (!request->payload.empty()) {
        records.push_back(Wal::Record{request->epoch, request->participants,
                                      request->payload});
      }
    }

    // Persist the whole batch: writev gathered straight from the workers'
    // payload buffers, one fsync. Workers stay parked on the durability
    // word. A failed append/sync poisons the WAL, degrades the engine to
    // read-only, and fails every member of the group — none of their
    // records reached stable storage (the fsync covers the whole batch).
    Status wal_status = Status::kOk;
    if (wal_ != nullptr && !records.empty()) {
      wal_status = wal_->AppendBatch(records);
      if (wal_status != Status::kOk) graph_->EnterDegraded(wal_status);
    }

    // Release the batch into its apply phase with one wake, then loop
    // straight into assembling the next one — batch N+1's WAL write
    // overlaps batch N's apply phase; visibility order is enforced by the
    // domain's cascade, not by this thread.
    for (Request* request : batch) {
      request->status = wal_status;
      request->durable.store(1, std::memory_order_release);
    }
    durable_word_.fetch_add(1, std::memory_order_release);
    FutexWakeAll(&durable_word_);
  }
}

}  // namespace livegraph
