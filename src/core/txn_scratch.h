// Pooled write-phase staging state for read-write transactions.
//
// The write hot path used to allocate on every transaction: the WAL
// payload string, the TEL/vertex write sets, the lock list and the
// (vertex,label) -> write-set index all started empty and grew with
// malloc. A session committing many small transactions — the LinkBench
// write mix, every server connection — paid that over and over. The
// arenas now live in the transaction's Graph::WorkerSlot and are reset
// capacity-preserving between transactions, so steady-state commits touch
// no allocator at all.
#ifndef LIVEGRAPH_CORE_TXN_SCRATCH_H_
#define LIVEGRAPH_CORE_TXN_SCRATCH_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/types.h"

namespace livegraph {

/// Per-TEL staging state (paper §5 work phase).
struct TelWrite {
  vertex_t src;
  label_t label;
  std::atomic<block_ptr_t>* slot;  // label-index slot holding the TEL ptr
  block_ptr_t block;               // current (possibly upgraded) block
  block_ptr_t original_block;      // pre-upgrade block or kNullBlock
  uint32_t committed_entries;      // LS when first touched
  uint32_t committed_prop_bytes;
  uint32_t private_entries = 0;    // appended, creation == -TID
  uint32_t private_prop_bytes = 0;
  std::vector<uint32_t> invalidated;  // entry indices set to -TID
};

/// Per-vertex staging state.
struct VertexWrite {
  vertex_t v;
  block_ptr_t new_block;  // staged version, creation == -TID
  bool is_new_vertex;
};

/// The pooled arenas. One per WorkerSlot; a slot serves one transaction at
/// a time, so the active Transaction owns its slot's scratch exclusively.
struct TxnScratch {
  std::vector<TelWrite> tel_writes;
  // (vertex, label) -> index into tel_writes; keeps bulk-load transactions
  // (hundreds of thousands of distinct TELs) linear.
  std::unordered_map<uint64_t, size_t> tel_write_index;
  std::vector<VertexWrite> vertex_writes;
  std::vector<vertex_t> locked;
  std::unordered_set<vertex_t> locked_set;
  std::string wal_payload;

  /// Clears contents but keeps capacity, except after an outsized
  /// transaction (bulk load): then the memory goes back to the allocator
  /// instead of pinning a high-water mark on the slot forever.
  void Reset() {
    constexpr size_t kMaxPooled = 16384;
    if (tel_writes.capacity() > kMaxPooled) {
      std::vector<TelWrite>().swap(tel_writes);
      std::unordered_map<uint64_t, size_t>().swap(tel_write_index);
    } else {
      tel_writes.clear();
      tel_write_index.clear();
    }
    if (vertex_writes.capacity() > kMaxPooled) {
      std::vector<VertexWrite>().swap(vertex_writes);
    } else {
      vertex_writes.clear();
    }
    if (locked.capacity() > kMaxPooled) {
      std::vector<vertex_t>().swap(locked);
      std::unordered_set<vertex_t>().swap(locked_set);
    } else {
      locked.clear();
      locked_set.clear();
    }
    if (wal_payload.capacity() > (size_t{1} << 22)) {
      std::string().swap(wal_payload);
    } else {
      wal_payload.clear();
    }
  }
};

}  // namespace livegraph

#endif  // LIVEGRAPH_CORE_TXN_SCRATCH_H_
