// On-"disk" block layouts: TEL blocks, vertex blocks, label index blocks.
//
// Every structure here lives inside the block store's mmap region and is
// accessed concurrently: all mutable fields are std::atomic with the widths
// the paper requires ("Coordination with basic write operations on edges
// occurs only through cache-aligned 64-bit word timestamps, written and
// read atomically", §5).
//
// TEL block layout (paper Figure 3):
//
//   +-----------+-------------+------------------+------ ... -----+
//   | TelHeader | Bloom bits  | property entries>|  <edge entries |
//   +-----------+-------------+------------------+----------------+
//   0           32            32+bloom                         1<<order
//
// Edge log entries are fixed-size and appended backwards from the block end
// ("from right to left") and scanned forwards ("from left to right", i.e.
// newest first); property entries are variable-size and appended forwards.
//
// Layout deviation from the paper (documented in DESIGN.md §1.3): entries
// are 32 bytes (not 28) and the header 32 bytes (not 36) so that every
// timestamp is naturally 8-byte aligned, which C++ requires for atomic
// loads/stores. The minimal 64-byte block still holds one property-less
// edge, preserving the "new vertex = one cache line" property.
#ifndef LIVEGRAPH_CORE_BLOCKS_H_
#define LIVEGRAPH_CORE_BLOCKS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "storage/block_manager.h"
#include "util/types.h"

namespace livegraph {

/// One edge log entry (32 bytes). A log entry represents an edge insertion
/// or update; deletion is expressed by setting the invalidation timestamp
/// of the previous entry without appending.
struct EdgeEntry {
  vertex_t dst;
  /// Commit epoch of the writing transaction, or -TID while uncommitted.
  std::atomic<timestamp_t> creation_ts;
  /// kNullTimestamp while live; commit epoch of the deleting/updating
  /// transaction, or -TID while its deletion is uncommitted.
  std::atomic<timestamp_t> invalidation_ts;
  /// Size in bytes of this entry's property blob.
  uint32_t prop_size;
  /// Offset of the blob inside the TEL's property region.
  uint32_t prop_offset;

  /// Visibility under snapshot isolation (§5 scan rule), for a reader with
  /// read epoch `tre` belonging to transaction `tid` (0 for read-only).
  bool VisibleTo(timestamp_t tre, int64_t tid) const {
    timestamp_t created = creation_ts.load(std::memory_order_acquire);
    timestamp_t invalidated = invalidation_ts.load(std::memory_order_acquire);
    if (tid != 0) {
      // A transaction sees its own uncommitted writes...
      if (created == -tid) return invalidated != -tid;
      // ...and does not see entries it invalidated itself.
      if (invalidated == -tid) return false;
    }
    if (created <= 0 || created > tre) return false;
    // Another transaction's pending (-TID') invalidation does not count.
    return invalidated < 0 || invalidated > tre;
  }
};
static_assert(sizeof(EdgeEntry) == 32);

/// TEL block header (32 bytes).
struct TelHeader {
  /// Previous TEL version (packed block ptr), kNullBlock if none. Links
  /// versions like vertex blocks (§3).
  std::atomic<block_ptr_t> prev;
  /// CT: epoch of the latest transaction that committed to this TEL. Write
  /// transactions compare their read epoch against CT to detect
  /// write-write conflicts without scanning (§5).
  std::atomic<timestamp_t> commit_ts;
  /// LS: number of committed edge log entries. Readers scan exactly this
  /// many entries from the tail; entries beyond are transaction-private.
  std::atomic<uint32_t> committed_entries;
  /// Committed bytes of the property region.
  std::atomic<uint32_t> committed_prop_bytes;
  /// Source vertex (for integrity checks and debugging).
  vertex_t src;
};
static_assert(sizeof(TelHeader) == 32);

/// Geometry helpers for a TEL block of a given order.
struct TelGeometry {
  uint32_t block_size;
  uint32_t bloom_bytes;  // 0 if the block is too small for a filter
  uint32_t prop_start;   // offset of the property region
  uint32_t capacity_bytes() const { return block_size - prop_start; }

  /// Paper §4: "Each Bloom filter is fixed-sized: 1/16 of the TEL for each
  /// block larger than 256 bytes". Blocked filters need >= 64-byte (one
  /// cache line) bitmaps, so filters kick in at 1 KiB blocks; smaller
  /// blocks hold <= ~30 entries and scan within a few cache lines anyway.
  static TelGeometry For(uint8_t order, bool enable_bloom) {
    TelGeometry g;
    g.block_size = uint32_t{1} << order;
    uint32_t bloom = g.block_size / 16;
    g.bloom_bytes = (enable_bloom && bloom >= 64) ? bloom : 0;
    g.prop_start = static_cast<uint32_t>(sizeof(TelHeader)) + g.bloom_bytes;
    return g;
  }
};

/// Accessors over a raw TEL block.
class TelBlock {
 public:
  TelBlock() : base_(nullptr) {}
  TelBlock(uint8_t* base, uint8_t order, bool enable_bloom)
      : base_(base), geo_(TelGeometry::For(order, enable_bloom)) {}

  bool valid() const { return base_ != nullptr; }
  TelHeader* header() const { return reinterpret_cast<TelHeader*>(base_); }
  uint8_t* bloom_bits() const { return base_ + sizeof(TelHeader); }
  uint32_t bloom_bytes() const { return geo_.bloom_bytes; }
  uint8_t* props() const { return base_ + geo_.prop_start; }
  uint32_t block_size() const { return geo_.block_size; }

  /// Entry by insertion index: entry 0 is the oldest and sits at the block
  /// end; entry n-1 is the newest ("tail" in Figure 3).
  EdgeEntry* Entry(uint32_t index) const {
    return reinterpret_cast<EdgeEntry*>(base_ + geo_.block_size) - 1 - index;
  }

  /// Bytes used by n entries plus p property bytes.
  uint32_t UsedBytes(uint32_t entries, uint32_t prop_bytes) const {
    return geo_.prop_start + prop_bytes +
           entries * static_cast<uint32_t>(sizeof(EdgeEntry));
  }

  bool Fits(uint32_t entries, uint32_t prop_bytes) const {
    return UsedBytes(entries, prop_bytes) <= geo_.block_size;
  }

 private:
  uint8_t* base_;
  TelGeometry geo_{};
};

/// Vertex block header; property bytes follow immediately (§3: "for
/// vertices we use a standard copy-on-write approach", versions linked by
/// `prev` pointers).
struct VertexHeader {
  std::atomic<block_ptr_t> prev;
  std::atomic<timestamp_t> creation_ts;
  uint32_t prop_size;
  uint8_t tombstone;  // 1 => vertex deleted as of creation_ts
  uint8_t pad[3];
};
static_assert(sizeof(VertexHeader) == 24);

/// Label index block (§3: "an additional level of indirection between the
/// edge index and TELs, called label index blocks"). Fixed 16-byte header
/// followed by `capacity` slots.
struct LabelIndexHeader {
  std::atomic<uint32_t> count;
  uint32_t capacity;
  uint64_t pad;
};
static_assert(sizeof(LabelIndexHeader) == 16);

struct LabelIndexEntry {
  label_t label;
  uint16_t pad0;
  uint32_t pad1;
  std::atomic<block_ptr_t> tel;
};
static_assert(sizeof(LabelIndexEntry) == 16);

inline LabelIndexEntry* LabelEntries(uint8_t* block_base) {
  return reinterpret_cast<LabelIndexEntry*>(block_base +
                                            sizeof(LabelIndexHeader));
}

/// Vertex index slot: pointers to the newest committed vertex block and to
/// the label index block. 16 bytes; the index is a flat extendable array
/// indexed by vertex ID (§3: "Since vertex IDs grow contiguously, we use
/// extendable arrays for these indices").
struct VertexIndexEntry {
  std::atomic<block_ptr_t> vertex_block;
  std::atomic<block_ptr_t> edge_store;
};
static_assert(sizeof(VertexIndexEntry) == 16);

}  // namespace livegraph

#endif  // LIVEGRAPH_CORE_BLOCKS_H_
