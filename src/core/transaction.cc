// Read-write transaction implementation: work, persist and apply phases
// (paper §4 "Single-Threaded Operations" and §5 "Transaction Processing").
#include "core/transaction.h"

#include <algorithm>
#include <cstring>

#include "core/commit_manager.h"
#include "core/tel_ops.h"
#include "util/bloom_filter.h"
#include "util/lock_rank.h"
#include "util/metrics.h"

namespace livegraph {

namespace {

// WAL logical-record opcodes.
constexpr uint8_t kOpAddVertex = 1;
constexpr uint8_t kOpPutVertex = 2;
constexpr uint8_t kOpDeleteVertex = 3;
constexpr uint8_t kOpAddEdge = 4;
constexpr uint8_t kOpDeleteEdge = 5;

template <typename T>
void PutRaw(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void PutBytes(std::string* out, std::string_view bytes) {
  auto len = static_cast<uint32_t>(bytes.size());
  PutRaw(out, len);
  out->append(bytes.data(), bytes.size());
}

}  // namespace

Transaction::Transaction(Graph* graph, Graph::WorkerSlot* slot,
                         timestamp_t tre, int64_t tid)
    : graph_(graph),
      slot_(slot),
      tre_(tre),
      tid_(tid),
      scratch_(&slot->scratch) {}

Transaction::Transaction(Transaction&& other) noexcept
    : graph_(other.graph_),
      slot_(other.slot_),
      tre_(other.tre_),
      tid_(other.tid_),
      state_(other.state_),
      write_epoch_(other.write_epoch_),
      scratch_(other.scratch_),  // the arenas travel with the slot
      replay_mode_(other.replay_mode_) {
  other.slot_ = nullptr;
  other.state_ = State::kCommitted;  // moved-from shell: nothing to do
}

Transaction::~Transaction() {
  if (slot_ == nullptr) return;
  if (state_ == State::kActive) Abort();
  if (slot_ != nullptr) {
    graph_->ReleaseSlot(slot_);
    slot_ = nullptr;
  }
}

// --- Locking ---

Status Transaction::LockVertex(vertex_t v) {
  if (scratch_->locked_set.count(v) > 0) return Status::kOk;
  if (!graph_->LockFor(v)->TryLockFor(graph_->options_.lock_timeout_ns)) {
    return Status::kTimeout;
  }
  // Same-rank reacquisition is legal for vertex locks (arbitrary-order
  // locking with timeout rollback, §5); the rank table only forbids taking
  // one after a higher-ranked section started.
  LIVEGRAPH_LOCK_RANK_ACQUIRE(LockRank::kVertexLock);
  scratch_->locked.push_back(v);
  scratch_->locked_set.insert(v);
  return Status::kOk;
}

void Transaction::DetachFromThread() {
#ifdef LIVEGRAPH_DCHECK_ENABLED
  if (state_ != State::kActive || slot_ == nullptr) return;
  LIVEGRAPH_LOCK_RANK_DETACH(
      LockRank::kVertexLock,
      static_cast<uint32_t>(scratch_->locked.size()));
#endif
}

void Transaction::AttachToThread() {
#ifdef LIVEGRAPH_DCHECK_ENABLED
  if (state_ != State::kActive || slot_ == nullptr) return;
  LIVEGRAPH_LOCK_RANK_ATTACH(
      LockRank::kVertexLock,
      static_cast<uint32_t>(scratch_->locked.size()));
#endif
}

void Transaction::ReleaseLocksAndSlot() {
  for (vertex_t v : scratch_->locked) {
    graph_->LockFor(v)->Unlock();
    LIVEGRAPH_LOCK_RANK_RELEASE(LockRank::kVertexLock);
  }
  scratch_->locked.clear();
  scratch_->locked_set.clear();
}

// --- Vertex operations ---

vertex_t Transaction::AddVertex(std::string_view properties) {
  if (state_ != State::kActive) return kNullVertex;
  // Bounded claim: a CAS loop instead of a blind fetch-and-add so the
  // counter never overshoots max_vertices (the index and lock regions are
  // sized by it — an ID past the end would address unmapped pages).
  // Capacity exhaustion is not a conflict: the transaction stays active
  // and the caller decides (the v2 Store surfaces it as kOutOfRange).
  vertex_t id = graph_->next_vertex_.load(std::memory_order_relaxed);
  do {
    if (static_cast<size_t>(id) >= graph_->options_.max_vertices) {
      return kNullVertex;
    }
  } while (!graph_->next_vertex_.compare_exchange_weak(
      id, id + 1, std::memory_order_acq_rel, std::memory_order_relaxed));
  // Fresh ID: the lock trivially succeeds; holding it keeps commit/abort
  // uniform with other vertex writes.
  if (LockVertex(id) != Status::kOk) {
    Abort();
    return kNullVertex;
  }
  block_ptr_t block = graph_->block_manager_->Allocate(
      BlockManager::OrderFor(sizeof(VertexHeader) + properties.size()));
  // relaxed init stores: the staged version block stays private to this
  // transaction until ApplyCommit publishes it with release stores.
  auto* header = new (graph_->block_manager_->Pointer(block)) VertexHeader();
  header->prev.store(kNullBlock, std::memory_order_relaxed);
  header->creation_ts.store(-tid_, std::memory_order_relaxed);
  header->prop_size = static_cast<uint32_t>(properties.size());
  header->tombstone = 0;
  if (!properties.empty()) {
    std::memcpy(static_cast<void*>(header + 1), properties.data(),
                properties.size());
  }
  scratch_->vertex_writes.push_back(VertexWrite{id, block, true});
  LogAddVertex(id, properties);
  return id;
}

Status Transaction::PutVertex(vertex_t v, std::string_view properties) {
  if (state_ != State::kActive) return Status::kNotActive;
  if (v < 0 || v >= graph_->VertexCount()) return Status::kNotFound;
  Status st = LockVertex(v);
  if (st != Status::kOk) {
    Abort();
    return st;
  }
  block_ptr_t current =
      graph_->IndexEntry(v)->vertex_block.load(std::memory_order_acquire);
  if (current != kNullBlock) {
    auto* head = reinterpret_cast<const VertexHeader*>(
        graph_->block_manager_->Pointer(current));
    // First-committer-wins: a version committed after our snapshot is a
    // write-write conflict (§5).
    if (head->creation_ts.load(std::memory_order_acquire) > tre_) {
      Abort();
      return Status::kConflict;
    }
  }
  block_ptr_t block = graph_->block_manager_->Allocate(
      BlockManager::OrderFor(sizeof(VertexHeader) + properties.size()));
  // relaxed init stores: private until ApplyCommit's release publication.
  auto* header = new (graph_->block_manager_->Pointer(block)) VertexHeader();
  header->prev.store(current, std::memory_order_relaxed);
  header->creation_ts.store(-tid_, std::memory_order_relaxed);
  header->prop_size = static_cast<uint32_t>(properties.size());
  header->tombstone = 0;
  if (!properties.empty()) {
    std::memcpy(static_cast<void*>(header + 1), properties.data(),
                properties.size());
  }
  // Re-staging the same vertex replaces the previous staged version.
  for (VertexWrite& w : scratch_->vertex_writes) {
    if (w.v == v) {
      graph_->block_manager_->Free(w.new_block);  // never published
      w.new_block = block;
      LogPutVertex(v, properties);
      return Status::kOk;
    }
  }
  scratch_->vertex_writes.push_back(VertexWrite{v, block, false});
  LogPutVertex(v, properties);
  return Status::kOk;
}

Status Transaction::DeleteVertex(vertex_t v) {
  if (state_ != State::kActive) return Status::kNotActive;
  if (v < 0 || v >= graph_->VertexCount()) return Status::kNotFound;
  Status st = LockVertex(v);
  if (st != Status::kOk) {
    Abort();
    return st;
  }
  block_ptr_t current =
      graph_->IndexEntry(v)->vertex_block.load(std::memory_order_acquire);
  if (current != kNullBlock) {
    auto* head = reinterpret_cast<const VertexHeader*>(
        graph_->block_manager_->Pointer(current));
    if (head->creation_ts.load(std::memory_order_acquire) > tre_) {
      Abort();
      return Status::kConflict;
    }
  }
  block_ptr_t block =
      graph_->block_manager_->Allocate(BlockManager::OrderFor(
          sizeof(VertexHeader)));
  // relaxed init stores: private until ApplyCommit's release publication.
  auto* header = new (graph_->block_manager_->Pointer(block)) VertexHeader();
  header->prev.store(current, std::memory_order_relaxed);
  header->creation_ts.store(-tid_, std::memory_order_relaxed);
  header->prop_size = 0;
  header->tombstone = 1;
  for (VertexWrite& w : scratch_->vertex_writes) {
    if (w.v == v) {
      graph_->block_manager_->Free(w.new_block);
      w.new_block = block;
      LogDeleteVertex(v);
      return Status::kOk;
    }
  }
  scratch_->vertex_writes.push_back(VertexWrite{v, block, false});
  LogDeleteVertex(v);
  return Status::kOk;
}

StatusOr<std::string_view> Transaction::GetVertex(vertex_t v) const {
  // Read-your-writes: staged version first.
  for (const VertexWrite& w : scratch_->vertex_writes) {
    if (w.v == v) {
      auto* header = reinterpret_cast<const VertexHeader*>(
          graph_->block_manager_->Pointer(w.new_block));
      if (header->tombstone) return Status::kNotFound;
      return std::string_view(reinterpret_cast<const char*>(header + 1),
                              header->prop_size);
    }
  }
  auto committed = internal::ReadVertexVersion(*graph_, v, tre_);
  if (!committed.has_value()) return Status::kNotFound;
  return *committed;
}

// --- Edge write path ---

namespace {
inline uint64_t TelWriteKey(vertex_t v, label_t label) {
  return (static_cast<uint64_t>(v) << 16) | label;
}
}  // namespace

TelWrite* Transaction::FindTelWrite(vertex_t v, label_t label) {
  auto it = scratch_->tel_write_index.find(TelWriteKey(v, label));
  return it == scratch_->tel_write_index.end() ? nullptr : &scratch_->tel_writes[it->second];
}

Status Transaction::PrepareTelWrite(vertex_t v, label_t label,
                                    TelWrite** out) {
  if (state_ != State::kActive) return Status::kNotActive;
  if (v < 0 || v >= graph_->VertexCount()) return Status::kNotFound;
  if (TelWrite* existing = FindTelWrite(v, label)) {
    *out = existing;
    return Status::kOk;
  }
  Status st = LockVertex(v);
  if (st != Status::kOk) return st;
  std::atomic<block_ptr_t>* slot = graph_->FindOrCreateLabelSlot(v, label);
  block_ptr_t block = slot->load(std::memory_order_acquire);
  TelWrite w;
  w.src = v;
  w.label = label;
  w.slot = slot;
  w.original_block = block;  // kNullBlock when we create the TEL below
  if (block == kNullBlock) {
    block = graph_->NewTel(v, BlockManager::kMinOrder);
    slot->store(block, std::memory_order_release);
  } else {
    TelHeader* header = graph_->Tel(block).header();
    // CT check: "write operations can simply compare their timestamp
    // against CT instead of paying the cost of scanning the TEL" (§5).
    if (header->commit_ts.load(std::memory_order_acquire) > tre_) {
      return Status::kConflict;
    }
  }
  w.block = block;
  TelHeader* header = graph_->Tel(block).header();
  w.committed_entries =
      header->committed_entries.load(std::memory_order_acquire);
  w.committed_prop_bytes =
      header->committed_prop_bytes.load(std::memory_order_acquire);
  scratch_->tel_writes.push_back(std::move(w));
  scratch_->tel_write_index[TelWriteKey(v, label)] = scratch_->tel_writes.size() - 1;
  *out = &scratch_->tel_writes.back();
  return Status::kOk;
}

void Transaction::UpgradeTel(TelWrite* w, uint32_t needed_bytes) {
  TelBlock old_block = graph_->Tel(w->block);
  const uint32_t total_entries = w->committed_entries + w->private_entries;
  const uint32_t total_props = w->committed_prop_bytes + w->private_prop_bytes;

  uint8_t order = BlockOrder(w->block);
  TelGeometry geometry;
  do {
    ++order;
    geometry =
        TelGeometry::For(order, graph_->options_.enable_bloom_filters);
  } while (geometry.prop_start + total_props + needed_bytes +
               (total_entries + 1) * sizeof(EdgeEntry) >
           geometry.block_size);

  block_ptr_t new_ptr = graph_->NewTel(w->src, order);
  TelBlock new_block = graph_->Tel(new_ptr);
  TelHeader* new_header = new_block.header();
  TelHeader* old_header = old_block.header();

  // Copy the whole log verbatim — committed history must stay identical
  // because concurrent readers that pick up the new pointer before our
  // commit still read at their older snapshots.
  if (total_entries > 0) {
    std::memcpy(static_cast<void*>(new_block.Entry(total_entries - 1)),
                static_cast<const void*>(old_block.Entry(total_entries - 1)),
                size_t{total_entries} * sizeof(EdgeEntry));
  }
  if (total_props > 0) {
    std::memcpy(new_block.props(), old_block.props(), total_props);
  }
  // relaxed stores into the upgrade copy: it is unreachable until the
  // slot-pointer release swap below; committed_entries keeps its release
  // store so readers that race the swap still pair LS with the entries.
  new_header->commit_ts.store(
      old_header->commit_ts.load(std::memory_order_acquire),
      std::memory_order_relaxed);
  new_header->committed_prop_bytes.store(w->committed_prop_bytes,
                                         std::memory_order_relaxed);
  new_header->committed_entries.store(w->committed_entries,
                                      std::memory_order_release);
  // Rebuild the Bloom filter over all destinations in the log.
  if (new_block.bloom_bytes() > 0) {
    for (uint32_t i = 0; i < total_entries; ++i) {
      BloomFilter::Insert(new_block.bloom_bits(), new_block.bloom_bytes(),
                          static_cast<uint64_t>(new_block.Entry(i)->dst));
    }
  }
  // Link versions ("different versions of a TEL are linked with previous
  // pointers", §3) and swap the index pointer. The old block stays intact
  // for readers holding it; compaction retires the chain later (§6).
  new_header->prev.store(w->block, std::memory_order_release);
  w->slot->store(new_ptr, std::memory_order_release);
  w->block = new_ptr;
}

Status Transaction::WriteEdge(vertex_t v, label_t label, vertex_t dst,
                              std::string_view properties, bool is_delete) {
  TelWrite* w = nullptr;
  Status st = PrepareTelWrite(v, label, &w);
  if (st == Status::kConflict || st == Status::kTimeout) {
    Abort();
    return st;
  }
  if (st != Status::kOk) return st;

  TelBlock block = graph_->Tel(w->block);
  const uint32_t total_entries = w->committed_entries + w->private_entries;

  // Insert-vs-update discrimination: "LiveGraph includes a Bloom filter in
  // the TEL header to determine whether an edge operation is a simple
  // insert or a more expensive update" (§4).
  bool check_previous = true;
  if (block.bloom_bytes() > 0) {
    check_previous = BloomFilter::MayContain(
        block.bloom_bits(), block.bloom_bytes(), static_cast<uint64_t>(dst));
  }
  bool invalidated_previous = false;
  if (check_previous) {
    int64_t index =
        internal::FindVisibleEdge(block, total_entries, dst, tre_, tid_);
    if (index >= 0) {
      block.Entry(static_cast<uint32_t>(index))
          ->invalidation_ts.store(-tid_, std::memory_order_release);
      w->invalidated.push_back(static_cast<uint32_t>(index));
      invalidated_previous = true;
    }
  }
  if (is_delete) {
    if (invalidated_previous) LogDeleteEdge(v, label, dst);
    return invalidated_previous ? Status::kOk : Status::kNotFound;
  }

  // Append the new entry (amortized constant time, §4).
  if (!block.Fits(total_entries + 1, w->committed_prop_bytes +
                                         w->private_prop_bytes +
                                         properties.size())) {
    UpgradeTel(w, static_cast<uint32_t>(properties.size()));
    block = graph_->Tel(w->block);
  }
  uint32_t prop_offset = w->committed_prop_bytes + w->private_prop_bytes;
  if (!properties.empty()) {
    std::memcpy(block.props() + prop_offset, properties.data(),
                properties.size());
  }
  EdgeEntry* entry = block.Entry(total_entries);
  entry->dst = dst;
  entry->prop_size = static_cast<uint32_t>(properties.size());
  entry->prop_offset = prop_offset;
  // relaxed: the entry sits beyond every reader's LS snapshot until commit
  // publishes the new committed_entries; the creation_ts release below
  // orders the fields for the staged-read path (our own GetEdges).
  entry->invalidation_ts.store(kNullTimestamp, std::memory_order_relaxed);
  entry->creation_ts.store(-tid_, std::memory_order_release);
  w->private_entries++;
  w->private_prop_bytes += static_cast<uint32_t>(properties.size());
  if (block.bloom_bytes() > 0) {
    BloomFilter::Insert(block.bloom_bits(), block.bloom_bytes(),
                        static_cast<uint64_t>(dst));
  }
  LogAddEdge(v, label, dst, properties);
  return Status::kOk;
}

Status Transaction::AddEdge(vertex_t v, label_t label, vertex_t dst,
                            std::string_view properties) {
  if (state_ != State::kActive) return Status::kNotActive;
  return WriteEdge(v, label, dst, properties, /*is_delete=*/false);
}

Status Transaction::DeleteEdge(vertex_t v, label_t label, vertex_t dst) {
  if (state_ != State::kActive) return Status::kNotActive;
  return WriteEdge(v, label, dst, {}, /*is_delete=*/true);
}

// --- Edge read path (write transactions see their own staged entries) ---

EdgeIterator Transaction::GetEdges(vertex_t v, label_t label) const {
  auto* self = const_cast<Transaction*>(this);
  if (TelWrite* w = self->FindTelWrite(v, label)) {
    TelBlock block = graph_->Tel(w->block);
    return EdgeIterator(block, w->committed_entries + w->private_entries,
                        tre_, tid_);
  }
  block_ptr_t tel = graph_->FindTel(v, label);
  if (tel == kNullBlock) return EdgeIterator();
  TelBlock block = graph_->Tel(tel);
  uint32_t committed =
      block.header()->committed_entries.load(std::memory_order_acquire);
  return EdgeIterator(block, committed, tre_, tid_);
}

StatusOr<std::string_view> Transaction::GetEdge(vertex_t v, label_t label,
                                                vertex_t dst) const {
  auto* self = const_cast<Transaction*>(this);
  TelBlock block;
  uint32_t total = 0;
  if (TelWrite* w = self->FindTelWrite(v, label)) {
    block = graph_->Tel(w->block);
    total = w->committed_entries + w->private_entries;
  } else {
    block_ptr_t tel = graph_->FindTel(v, label);
    if (tel == kNullBlock) return Status::kNotFound;
    block = graph_->Tel(tel);
    total = block.header()->committed_entries.load(std::memory_order_acquire);
  }
  if (block.bloom_bytes() > 0 &&
      !BloomFilter::MayContain(block.bloom_bits(), block.bloom_bytes(),
                               static_cast<uint64_t>(dst))) {
    return Status::kNotFound;
  }
  int64_t index = internal::FindVisibleEdge(block, total, dst, tre_, tid_);
  if (index < 0) return Status::kNotFound;
  const EdgeEntry* entry = block.Entry(static_cast<uint32_t>(index));
  return std::string_view(
      reinterpret_cast<const char*>(block.props() + entry->prop_offset),
      entry->prop_size);
}

size_t Transaction::CountEdges(vertex_t v, label_t label) const {
  size_t n = 0;
  for (EdgeIterator it = GetEdges(v, label); it.Valid(); it.Next()) ++n;
  return n;
}

// --- Commit / abort ---

StatusOr<timestamp_t> Transaction::Commit() {
  if (state_ != State::kActive) return Status::kNotActive;
  if (scratch_->tel_writes.empty() && scratch_->vertex_writes.empty()) {
    // Nothing written: no persist phase needed; the snapshot epoch is the
    // commit epoch.
    state_ = State::kCommitted;
    ReleaseLocksAndSlot();
    scratch_->Reset();
    return tre_;
  }
  // Degraded engine: the WAL is poisoned, so this commit could never be
  // durable. Reject before the persist phase; the staged writes (still
  // private -TID entries) are undone like an abort.
  if (Status degraded = graph_->degraded_status(); degraded != Status::kOk) {
    Abort();
    return degraded;
  }
  // Persist phase: group commit through the transaction manager (§5).
  // Stage timings feed the commit-pipeline histograms and, past the
  // configured threshold, the slow-op ring (docs/OBSERVABILITY.md).
  static metrics::Histogram& persist_latency =
      metrics::Registry::Instance().GetHistogram(
          "livegraph_commit_persist_latency", metrics::Unit::kNanos);
  static metrics::Histogram& apply_latency =
      metrics::Registry::Instance().GetHistogram(
          "livegraph_commit_apply_latency", metrics::Unit::kNanos);
  static metrics::Histogram& visible_latency =
      metrics::Registry::Instance().GetHistogram(
          "livegraph_commit_visible_wait", metrics::Unit::kNanos);
  static metrics::Counter& commits =
      metrics::Registry::Instance().GetCounter("livegraph_commit_txns_total");
  const bool timed = metrics::SampleStageTiming();
  const uint64_t commit_start = timed ? metrics::MonotonicNanos() : 0;
  std::string_view payload = replay_mode_ ? std::string_view{} : scratch_->wal_payload;
  Status persist_error = Status::kOk;
  write_epoch_ = graph_->commit_manager_->Persist(payload, 0, 1,
                                                  &persist_error);
  if (persist_error != Status::kOk) {
    // The group's WAL batch never reached stable storage. Undo the staged
    // writes (still private: ApplyCommit has not published anything), then
    // report the epoch applied anyway — every acquired epoch needs exactly
    // one MarkApplied per participant or the visibility frontier wedges.
    // The epoch becomes an empty visible epoch.
    UndoWrites();
    ReleaseLocksAndSlot();
    scratch_->Reset();
    state_ = State::kAborted;
    graph_->commit_manager_->FinishApply(write_epoch_);
    return persist_error;
  }
  uint64_t persist_done = 0;
  if (timed) {
    persist_done = metrics::MonotonicNanos();
    persist_latency.Record(persist_done - commit_start);
  }
  // Apply phase.
  ApplyCommit(write_epoch_);
  uint64_t apply_done = 0;
  if (timed) {
    apply_done = metrics::MonotonicNanos();
    apply_latency.Record(apply_done - persist_done);
  }
  graph_->commit_manager_->FinishApply(write_epoch_);
  commits.Add();
  if (timed) {
    const uint64_t visible_done = metrics::MonotonicNanos();
    visible_latency.Record(visible_done - apply_done);
    if (metrics::SlowOpRing::Instance().ShouldRecord(visible_done -
                                                     commit_start)) {
      metrics::SlowOp op;
      op.name = "COMMIT";
      op.epoch = write_epoch_;
      op.total_nanos = visible_done - commit_start;
      op.stage_nanos[0] = persist_done - commit_start;  // persist
      op.stage_nanos[1] = apply_done - persist_done;    // apply
      op.stage_nanos[2] = visible_done - apply_done;    // visible wait
      metrics::SlowOpRing::Instance().Record(std::move(op));
    }
  }
  MarkDirty();
  state_ = State::kCommitted;
  scratch_->Reset();
  // relaxed: a statistics/trigger counter — MaybeScheduleCompaction's
  // threshold CAS tolerates any interleaving of these increments.
  graph_->committed_txns_.fetch_add(1, std::memory_order_relaxed);
  graph_->MaybeScheduleCompaction();
  return write_epoch_;
}

StatusOr<timestamp_t> Transaction::CommitAt(timestamp_t epoch,
                                            uint32_t participants) {
  // Whatever happens below, the coordinator declared this shard a
  // participant of `epoch` when it acquired the epoch — exactly one
  // MarkApplied must reach the domain on every path or the visibility
  // frontier (and with it every later commit) stalls forever.
  if (state_ != State::kActive) {
    graph_->epoch_domain()->MarkApplied(epoch);
    return Status::kNotActive;
  }
  if (scratch_->tel_writes.empty() && scratch_->vertex_writes.empty()) {
    // Coordinators only stamp shards that landed a mutation, so this is
    // defensive: an empty piece publishes nothing and needs no WAL record
    // (a record here would make recovery's piece count miss forever).
    graph_->epoch_domain()->MarkApplied(epoch);
    state_ = State::kCommitted;
    ReleaseLocksAndSlot();
    scratch_->Reset();
    return epoch;
  }
  // Degraded engine: reject the piece, but this shard is still a declared
  // participant of `epoch` — report it applied so the frontier stays dense.
  if (Status degraded = graph_->degraded_status(); degraded != Status::kOk) {
    Abort();
    graph_->epoch_domain()->MarkApplied(epoch);
    return degraded;
  }
  // Same stage histograms as Commit(): the registry dedupes by name, so
  // sharded pieces land in the same commit-pipeline series.
  static metrics::Histogram& persist_latency =
      metrics::Registry::Instance().GetHistogram(
          "livegraph_commit_persist_latency", metrics::Unit::kNanos);
  static metrics::Histogram& apply_latency =
      metrics::Registry::Instance().GetHistogram(
          "livegraph_commit_apply_latency", metrics::Unit::kNanos);
  static metrics::Counter& commits =
      metrics::Registry::Instance().GetCounter("livegraph_commit_txns_total");
  const bool timed = metrics::SampleStageTiming();
  const uint64_t commit_start = timed ? metrics::MonotonicNanos() : 0;
  std::string_view payload =
      replay_mode_ ? std::string_view{} : scratch_->wal_payload;
  Status persist_error = Status::kOk;
  write_epoch_ = graph_->commit_manager_->Persist(payload, epoch,
                                                  participants,
                                                  &persist_error);
  if (persist_error != Status::kOk) {
    // Same discipline as Commit(): undo the (still private) staged writes
    // and settle this participant's MarkApplied so the epoch can pass.
    UndoWrites();
    ReleaseLocksAndSlot();
    scratch_->Reset();
    state_ = State::kAborted;
    graph_->commit_manager_->FinishApply(write_epoch_,
                                         /*wait_visible=*/false);
    return persist_error;
  }
  uint64_t persist_done = 0;
  if (timed) {
    persist_done = metrics::MonotonicNanos();
    persist_latency.Record(persist_done - commit_start);
  }
  ApplyCommit(write_epoch_);
  if (timed) apply_latency.Record(metrics::MonotonicNanos() - persist_done);
  commits.Add();
  graph_->commit_manager_->FinishApply(write_epoch_, /*wait_visible=*/false);
  MarkDirty();
  state_ = State::kCommitted;
  scratch_->Reset();
  graph_->committed_txns_.fetch_add(1, std::memory_order_relaxed);
  graph_->MaybeScheduleCompaction();
  return write_epoch_;
}

void Transaction::ApplyCommit(timestamp_t twe) {
  // 1. Publish per-TEL commit metadata: CT, property size, then LS with
  //    release ordering so readers that see the new LS see the entries.
  for (TelWrite& w : scratch_->tel_writes) {
    TelHeader* header = graph_->Tel(w.block).header();
    // relaxed CT/prop stores: both ride the committed_entries release
    // below — a reader that acquires the new LS sees them; a reader on the
    // old LS never dereferences past its snapshot.
    header->commit_ts.store(twe, std::memory_order_relaxed);
    header->committed_prop_bytes.store(
        w.committed_prop_bytes + w.private_prop_bytes,
        std::memory_order_relaxed);
    header->committed_entries.store(w.committed_entries + w.private_entries,
                                    std::memory_order_release);
  }
  // 2. Publish vertex versions through the index.
  for (VertexWrite& w : scratch_->vertex_writes) {
    auto* header = reinterpret_cast<VertexHeader*>(
        graph_->block_manager_->Pointer(w.new_block));
    header->creation_ts.store(twe, std::memory_order_release);
    graph_->IndexEntry(w.v)->vertex_block.store(w.new_block,
                                                std::memory_order_release);
  }
  // 3. "It releases all its locks before starting the potentially lengthy
  //    process of making its updates visible by converting their
  //    timestamps from -TID to TWE" (§5). Safe because any new writer on
  //    these TELs fails the CT check until GRE catches up with TWE.
  ReleaseLocksAndSlot();
  // 4. Convert -TID timestamps to TWE.
  for (TelWrite& w : scratch_->tel_writes) {
    TelBlock block = graph_->Tel(w.block);
    for (uint32_t i = 0; i < w.private_entries; ++i) {
      block.Entry(w.committed_entries + i)
          ->creation_ts.store(twe, std::memory_order_release);
    }
    for (uint32_t index : w.invalidated) {
      block.Entry(index)->invalidation_ts.store(twe,
                                                std::memory_order_release);
    }
  }
}

void Transaction::Abort() {
  if (state_ != State::kActive) return;
  UndoWrites();
  ReleaseLocksAndSlot();
  scratch_->Reset();
  state_ = State::kAborted;
}

void Transaction::UndoWrites() {
  timestamp_t retire_epoch = graph_->domain_->visible() + 1;
  for (TelWrite& w : scratch_->tel_writes) {
    if (w.original_block == kNullBlock) {
      // We created this TEL (and possibly upgraded it): unpublish, then
      // retire every version we allocated. Readers may hold the pointers,
      // so reclamation is epoch-deferred.
      w.slot->store(kNullBlock, std::memory_order_release);
      block_ptr_t ptr = w.block;
      while (ptr != kNullBlock) {
        block_ptr_t prev =
            graph_->Tel(ptr).header()->prev.load(std::memory_order_acquire);
        graph_->block_manager_->Retire(ptr, retire_epoch);
        ptr = prev;
      }
      continue;
    }
    if (w.block != w.original_block) {
      // Undo upgrades: restore the original block and retire the chain of
      // upgraded copies (which stop at original_block).
      w.slot->store(w.original_block, std::memory_order_release);
      block_ptr_t ptr = w.block;
      while (ptr != kNullBlock && ptr != w.original_block) {
        block_ptr_t prev =
            graph_->Tel(ptr).header()->prev.load(std::memory_order_acquire);
        graph_->block_manager_->Retire(ptr, retire_epoch);
        ptr = prev;
      }
    }
    // "Whenever a transaction aborts, it reverts the updated invalidation
    // timestamps from -TID to NULL" (§5). Marks on our own appended
    // entries live beyond the committed region of the original block and
    // are skipped — the region is dead anyway.
    TelBlock original = graph_->Tel(w.original_block);
    uint32_t original_committed =
        original.header()->committed_entries.load(std::memory_order_acquire);
    for (uint32_t index : w.invalidated) {
      if (index < original_committed) {
        original.Entry(index)->invalidation_ts.store(
            kNullTimestamp, std::memory_order_release);
      }
    }
    // "An aborted transaction never modifies the log size variable LS so
    // its new entries will be ignored by future reads and overwritten by
    // future writes" (§5).
  }
  for (VertexWrite& w : scratch_->vertex_writes) {
    // Staged vertex versions were never published: plain free.
    graph_->block_manager_->Free(w.new_block);
  }
  scratch_->tel_writes.clear();
  scratch_->tel_write_index.clear();
  scratch_->vertex_writes.clear();
}

void Transaction::MarkDirty() {
  if (scratch_->tel_writes.empty() && scratch_->vertex_writes.empty()) return;
  LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kDirtySet);
  std::lock_guard<std::mutex> guard(slot_->dirty_mu);
  for (const TelWrite& w : scratch_->tel_writes) {
    slot_->dirty_vertices.push_back(w.src);
  }
  for (const VertexWrite& w : scratch_->vertex_writes) {
    slot_->dirty_vertices.push_back(w.v);
  }
}

// --- WAL logical records ---

void Transaction::LogAddVertex(vertex_t v, std::string_view props) {
  if (replay_mode_ || graph_->wal_ == nullptr) return;
  PutRaw(&scratch_->wal_payload, kOpAddVertex);
  PutRaw(&scratch_->wal_payload, v);
  PutBytes(&scratch_->wal_payload, props);
}

void Transaction::LogPutVertex(vertex_t v, std::string_view props) {
  if (replay_mode_ || graph_->wal_ == nullptr) return;
  PutRaw(&scratch_->wal_payload, kOpPutVertex);
  PutRaw(&scratch_->wal_payload, v);
  PutBytes(&scratch_->wal_payload, props);
}

void Transaction::LogDeleteVertex(vertex_t v) {
  if (replay_mode_ || graph_->wal_ == nullptr) return;
  PutRaw(&scratch_->wal_payload, kOpDeleteVertex);
  PutRaw(&scratch_->wal_payload, v);
}

void Transaction::LogAddEdge(vertex_t v, label_t label, vertex_t dst,
                             std::string_view props) {
  if (replay_mode_ || graph_->wal_ == nullptr) return;
  PutRaw(&scratch_->wal_payload, kOpAddEdge);
  PutRaw(&scratch_->wal_payload, v);
  PutRaw(&scratch_->wal_payload, label);
  PutRaw(&scratch_->wal_payload, dst);
  PutBytes(&scratch_->wal_payload, props);
}

void Transaction::LogDeleteEdge(vertex_t v, label_t label, vertex_t dst) {
  if (replay_mode_ || graph_->wal_ == nullptr) return;
  PutRaw(&scratch_->wal_payload, kOpDeleteEdge);
  PutRaw(&scratch_->wal_payload, v);
  PutRaw(&scratch_->wal_payload, label);
  PutRaw(&scratch_->wal_payload, dst);
}

}  // namespace livegraph
