#include "core/epoch_domain.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/futex_lock.h"
#include "util/invariant.h"
#include "util/metrics.h"
#include "util/sync_annotations.h"

namespace livegraph {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EpochDomain::EpochDomain(size_t window)
    : spin_iters_(std::thread::hardware_concurrency() > 1 ? 128 : 0),
      pins_(kPinSlots) {
  size_t size = NextPow2(window < 64 ? 64 : window);
  mask_ = size - 1;
  slots_ = std::vector<Slot>(size);
  for (auto& pin : pins_) pin.store(kFreePin, std::memory_order_relaxed);
  // Epoch-frontier gauges are sampled on demand (a metrics probe run at
  // snapshot time) instead of being maintained on the commit path. With
  // several domains in one process (embedded tests/benches) the last
  // probe to run wins; a server process has exactly one relevant domain
  // (docs/OBSERVABILITY.md).
  metrics::Registry& registry = metrics::Registry::Instance();
  metrics::Gauge& issued_gauge = registry.GetGauge("livegraph_epoch_issued");
  metrics::Gauge& visible_gauge =
      registry.GetGauge("livegraph_epoch_visible");
  metrics::Gauge& lag_gauge = registry.GetGauge("livegraph_epoch_lag");
  metrics::Gauge& pins_gauge = registry.GetGauge("livegraph_epoch_read_pins");
  metrics::Gauge& pin_age_gauge =
      registry.GetGauge("livegraph_epoch_oldest_pin_age");
  metrics_probe_ = registry.AddProbe([this, &issued_gauge, &visible_gauge,
                                      &lag_gauge, &pins_gauge,
                                      &pin_age_gauge] {
    const timestamp_t now_visible = visible();
    const timestamp_t now_issued = issued();
    issued_gauge.Set(now_issued);
    visible_gauge.Set(now_visible);
    lag_gauge.Set(now_issued - now_visible);
    int64_t live_pins = 0;
    timestamp_t oldest = now_visible;
    for (const auto& pin : pins_) {
      timestamp_t pinned = pin.load(std::memory_order_relaxed);
      if (pinned == kFreePin) continue;
      ++live_pins;
      if (pinned < oldest) oldest = pinned;
    }
    pins_gauge.Set(live_pins);
    pin_age_gauge.Set(now_visible - oldest);
  });
}

EpochDomain::~EpochDomain() {
  // Blocks out any in-flight Collect() before `this` goes away.
  metrics::Registry::Instance().RemoveProbe(metrics_probe_);
}

timestamp_t EpochDomain::Acquire(uint32_t participants) {
  timestamp_t epoch = next_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // GRE <= GWE at issue time: the epoch we just minted cannot already be
  // visible — only its own MarkApplied countdown may publish it.
  LIVEGRAPH_DCHECK(visible_.load(std::memory_order_seq_cst) < epoch,
                   "visible frontier %lld is at/past freshly issued epoch "
                   "%lld (GRE overran GWE)",
                   static_cast<long long>(
                       visible_.load(std::memory_order_seq_cst)),
                   static_cast<long long>(epoch));
  // Slot reuse guard: the previous tenant of this slot is epoch - size;
  // once it is visible its countdown is spent and the slot is ours. In
  // flight epochs are bounded by attached engines' worker tables, far
  // below the window, so this wait never fires in practice — it is the
  // backstop that makes the ring formally safe at any scale.
  timestamp_t previous_lap = epoch - static_cast<timestamp_t>(mask_ + 1);
  if (previous_lap > 0) WaitVisible(previous_lap);
  Slot& slot = slots_[static_cast<size_t>(epoch) & mask_];
  slot.pending.store(participants == 0 ? 1 : participants,
                     std::memory_order_release);
  return epoch;
}

void EpochDomain::MarkApplied(timestamp_t epoch) {
  // Epochs apply in issue order and at most `participants` times. Both
  // checks read state BEFORE our decrement: while our participation is
  // outstanding the countdown is >= 1, so the cascade cannot have
  // published `epoch` yet — seeing it visible means a double MarkApplied
  // (or a MarkApplied for a never-issued epoch).
  LIVEGRAPH_DCHECK(epoch >= 1 &&
                       epoch <= next_.load(std::memory_order_acquire),
                   "MarkApplied(%lld) for an epoch this domain never issued",
                   static_cast<long long>(epoch));
  LIVEGRAPH_DCHECK(visible_.load(std::memory_order_seq_cst) < epoch,
                   "MarkApplied(%lld) after the epoch became visible — "
                   "double apply would corrupt the visibility order",
                   static_cast<long long>(epoch));
  Slot& slot = slots_[static_cast<size_t>(epoch) & mask_];
  uint32_t prev = slot.pending.fetch_sub(1, std::memory_order_acq_rel);
  LIVEGRAPH_DCHECK(prev != 0,
                   "MarkApplied(%lld) underflowed the participant countdown",
                   static_cast<long long>(epoch));
  if (prev != 1) return;
  // Last participant: publish, then cascade the frontier over every
  // consecutive fully-applied epoch. Everything here is seq_cst for the
  // same store-buffer litmus as the old per-graph cascade: when two last
  // participants of adjacent epochs race, the single total order makes at
  // least one of them observe the other's applied store and finish the
  // cascade — otherwise both could read stale and the frontier would
  // stall with nobody left to move it.
  //
  // Publish edge: everything this group's transactions wrote
  // happens-before any thread that observes visible() >= epoch (the
  // matching ACQUIRE is in WaitVisible / PinRead). The edge exists in the
  // C++ model through the seq_cst stores below; the annotation keeps the
  // futex-mediated pair explicit for TSan.
  LIVEGRAPH_TSAN_RELEASE(&visible_);
  slot.applied.store(epoch, std::memory_order_seq_cst);
  while (true) {
    timestamp_t current = visible_.load(std::memory_order_seq_cst);
    Slot& next = slots_[static_cast<size_t>(current + 1) & mask_];
    if (next.applied.load(std::memory_order_seq_cst) != current + 1) return;
    if (!visible_.compare_exchange_strong(current, current + 1,
                                          std::memory_order_seq_cst)) {
      continue;  // another participant advanced concurrently; re-examine
    }
    visible_word_.fetch_add(1, std::memory_order_release);
    FutexWakeAll(&visible_word_);
  }
}

void EpochDomain::WaitVisible(timestamp_t epoch) {
  // Waiting on an epoch the domain never issued would sleep forever —
  // nobody's MarkApplied can advance the frontier past next_.
  LIVEGRAPH_DCHECK(epoch <= next_.load(std::memory_order_acquire),
                   "WaitVisible(%lld) beyond the issued frontier %lld would "
                   "hang",
                   static_cast<long long>(epoch),
                   static_cast<long long>(
                       next_.load(std::memory_order_acquire)));
  if (visible_.load(std::memory_order_seq_cst) >= epoch) {
    LIVEGRAPH_TSAN_ACQUIRE(&visible_);  // pairs with MarkApplied's RELEASE
    return;
  }
  for (int spin = 0; spin < spin_iters_; ++spin) {
    CpuRelax();
    if (visible_.load(std::memory_order_seq_cst) >= epoch) {
      LIVEGRAPH_TSAN_ACQUIRE(&visible_);
      return;
    }
  }
  while (visible_.load(std::memory_order_seq_cst) < epoch) {
    uint32_t word = visible_word_.load(std::memory_order_acquire);
    if (visible_.load(std::memory_order_seq_cst) >= epoch) break;
    FutexWait(&visible_word_, word);
  }
  LIVEGRAPH_TSAN_ACQUIRE(&visible_);  // pairs with MarkApplied's RELEASE
}

bool EpochDomain::WaitVisibleFor(timestamp_t epoch, int64_t timeout_ms) {
  if (visible_.load(std::memory_order_seq_cst) >= epoch) {
    LIVEGRAPH_TSAN_ACQUIRE(&visible_);  // pairs with MarkApplied's RELEASE
    return true;
  }
  if (timeout_ms <= 0) return false;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  // FutexWait carries its own 50 ms safety timeout, so re-checking the
  // deadline on every wakeup bounds the wait without a timed futex call.
  while (visible_.load(std::memory_order_seq_cst) < epoch) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    uint32_t word = visible_word_.load(std::memory_order_acquire);
    if (visible_.load(std::memory_order_seq_cst) >= epoch) break;
    FutexWait(&visible_word_, word);
  }
  LIVEGRAPH_TSAN_ACQUIRE(&visible_);  // pairs with MarkApplied's RELEASE
  return true;
}

void EpochDomain::FastForward(timestamp_t epoch) {
  timestamp_t next = next_.load(std::memory_order_acquire);
  timestamp_t visible = visible_.load(std::memory_order_seq_cst);
  if (next != visible) {
    std::fprintf(stderr,
                 "EpochDomain::FastForward with epochs in flight "
                 "(issued=%lld visible=%lld)\n",
                 static_cast<long long>(next),
                 static_cast<long long>(visible));
    std::abort();
  }
  if (epoch <= visible) return;
  next_.store(epoch, std::memory_order_release);
  visible_.store(epoch, std::memory_order_seq_cst);
  visible_word_.fetch_add(1, std::memory_order_release);
  FutexWakeAll(&visible_word_);
}

uint32_t EpochDomain::ClaimPinSlot() {
  static thread_local uint32_t hint = 0;
  for (uint32_t attempt = 0; attempt < kPinSlots * 4; ++attempt) {
    uint32_t i = (hint + attempt) % kPinSlots;
    timestamp_t expected = kFreePin;
    // Claim conservatively at epoch 0; the caller publishes the real pin
    // (and rechecks) before relying on it, and a momentary 0 pin can only
    // make a concurrent SafeEpoch scan more conservative.
    // relaxed pre-check: an availability hint — ownership comes from the
    // CAS alone; a stale read just moves the probe to the next slot.
    if (pins_[i].load(std::memory_order_relaxed) == kFreePin &&
        pins_[i].compare_exchange_strong(expected, 0,
                                         std::memory_order_acq_rel)) {
      hint = i;
      return i;
    }
  }
  std::fprintf(stderr,
               "EpochDomain: more concurrent read pins than %u slots\n",
               kPinSlots);
  std::abort();
}

EpochDomain::ReadPin EpochDomain::PinRead() {
  uint32_t slot = ClaimPinSlot();
  // Store-recheck (mirrors Graph::PublishReadEpoch): after publishing we
  // verify the frontier did not move. If it did not, any SafeEpoch scan
  // ordered after our store sees our pin; any scan ordered before used a
  // frontier <= ours, whose floor already covers us.
  while (true) {
    timestamp_t epoch = visible_.load(std::memory_order_seq_cst);
    pins_[slot].store(epoch, std::memory_order_seq_cst);
    if (visible_.load(std::memory_order_seq_cst) == epoch) {
      // Observe edge: the snapshot we pinned is fully applied; pair with
      // MarkApplied's RELEASE so TSan sees the commit's writes as ordered
      // before this reader.
      LIVEGRAPH_TSAN_ACQUIRE(&visible_);
      return ReadPin{epoch, slot};
    }
  }
}

EpochDomain::ReadPin EpochDomain::PinReadAt(timestamp_t epoch) {
  ReadPin pin = PinRead();
  if (epoch < 0) epoch = 0;
  if (epoch < pin.epoch) {
    // Publishing a value below the frontier is always safe — the floor
    // only ever shrinks from it.
    pins_[pin.slot].store(epoch, std::memory_order_seq_cst);
    pin.epoch = epoch;
  }
  return pin;
}

void EpochDomain::Unpin(const ReadPin& pin) {
  LIVEGRAPH_DCHECK(
      pins_[pin.slot].load(std::memory_order_seq_cst) != kFreePin,
      "Unpin of slot %u that is already free (double unpin)", pin.slot);
  pins_[pin.slot].store(kFreePin, std::memory_order_seq_cst);
}

timestamp_t EpochDomain::OldestPin(timestamp_t bound) const {
  for (const auto& pin : pins_) {
    timestamp_t e = pin.load(std::memory_order_seq_cst);
    if (e < bound) bound = e;
  }
  return bound;
}

}  // namespace livegraph
