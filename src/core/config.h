// Tunables for a LiveGraph instance.
#ifndef LIVEGRAPH_CORE_CONFIG_H_
#define LIVEGRAPH_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace livegraph {

class EpochDomain;

struct GraphOptions {
  /// Visibility-epoch domain this engine commits into. Null (the default)
  /// gives the graph a private domain — the standalone configuration. A
  /// ShardedStore passes one shared domain to every shard so commit
  /// epochs from all N pipelines form a single monotone visibility order
  /// (docs/SHARDING.md "Epoch domain").
  std::shared_ptr<EpochDomain> epoch_domain;

  /// Backing file for the block store; empty keeps all graph data in
  /// anonymous memory (the paper's in-memory configuration).
  std::string storage_path;

  /// WAL file for durability; empty disables logging entirely.
  std::string wal_path;

  /// fsync the WAL on every group commit (§5 persist phase).
  bool fsync_wal = true;

  /// Virtual address reservation of the block store.
  size_t region_reserve = size_t{1} << 36;

  /// Maximum number of vertices (sizes the index/lock reservations; pages
  /// commit lazily so over-reserving is cheap).
  size_t max_vertices = size_t{1} << 26;

  /// Maximum concurrently running transactions (reading-epoch table size).
  int max_workers = 512;

  /// Vertex lock acquisition timeout — the paper's deadlock-avoidance
  /// mechanism ("a timed-out transaction has to rollback and restart", §5).
  int64_t lock_timeout_ns = 50'000'000;  // 50 ms

  /// Embed Bloom filters in TEL blocks (§4). Disable for ablation.
  bool enable_bloom_filters = true;

  /// Committed transactions between automatic compaction passes
  /// (§6: "every 65536 transactions in our default setting").
  uint64_t compaction_interval = 65536;

  /// Run the background compaction thread at all.
  bool enable_compaction = true;

  /// Group commit: max transactions per batch.
  size_t group_commit_max_batch = 256;

  /// Threshold m: block orders <= m use striped thread-private free lists
  /// (§6; paper sets m to 14 on their 48-hyperthread platform).
  int private_order_threshold = 14;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_CORE_CONFIG_H_
