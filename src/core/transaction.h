// Read-write and read-only transactions (paper §4 and §5).
#ifndef LIVEGRAPH_CORE_TRANSACTION_H_
#define LIVEGRAPH_CORE_TRANSACTION_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/status.h"
#include "core/blocks.h"
#include "core/graph.h"
#include "core/txn_scratch.h"
#include "util/types.h"

namespace livegraph {

/// Purely sequential adjacency list scan (§4): walks a TEL's edge log from
/// the tail (newest entry) towards the block end (oldest), returning only
/// entries visible at the transaction's read timestamp. The visibility
/// check reads the entry's embedded double timestamps — no auxiliary
/// structures, no random accesses.
class EdgeIterator {
 public:
  EdgeIterator() = default;

  bool Valid() const { return entry_ != nullptr; }
  vertex_t DstId() const { return entry_->dst; }
  /// This edge's property bytes (view into the TEL; valid while the owning
  /// transaction lives).
  std::string_view Properties() const;
  /// Creation timestamp of the visible entry (useful for time-ordered
  /// queries; LinkBench/TAO read "most recently added" edges first).
  /// relaxed: SkipInvisible already acquire-loaded this entry's timestamps
  /// to admit it, so the value here is pinned — either our own snapshot's
  /// committed TWE or our own -TID staging mark, never mid-conversion
  /// (conversion happens strictly above a reader's LS snapshot).
  timestamp_t CreationTimestamp() const {
    return entry_->creation_ts.load(std::memory_order_relaxed);
  }

  /// Advances to the next visible (older) edge entry.
  void Next();

  /// Address range of the edge-log strip this scan walks, for out-of-core
  /// page-touch accounting by store adapters. {nullptr, 0} when empty.
  std::pair<const void*, size_t> ScanSpan() const {
    if (entry_ == nullptr) return {nullptr, 0};
    return {entry_, static_cast<size_t>(reinterpret_cast<const uint8_t*>(end_) -
                                        reinterpret_cast<const uint8_t*>(entry_))};
  }

 private:
  friend class ReadTransaction;
  friend class Transaction;

  EdgeIterator(TelBlock block, uint32_t total_entries, timestamp_t tre,
               int64_t tid);

  void SkipInvisible();

  TelBlock block_{};
  EdgeEntry* entry_ = nullptr;  // current position
  EdgeEntry* end_ = nullptr;    // one past the oldest entry
  const uint8_t* props_base_ = nullptr;
  timestamp_t tre_ = 0;
  int64_t tid_ = 0;
};

/// A read-only snapshot transaction. Cheap to create; safe to share across
/// threads for whole-graph analytics (§7.4). Releases its reading-epoch
/// slot on destruction.
class ReadTransaction {
 public:
  ~ReadTransaction();
  ReadTransaction(ReadTransaction&& other) noexcept;
  ReadTransaction& operator=(ReadTransaction&&) = delete;
  ReadTransaction(const ReadTransaction&) = delete;
  ReadTransaction& operator=(const ReadTransaction&) = delete;

  timestamp_t read_epoch() const { return tre_; }

  /// Latest committed properties of `v` visible in this snapshot, or
  /// kNotFound if the vertex does not exist (never created, not yet
  /// committed, or deleted).
  StatusOr<std::string_view> GetVertex(vertex_t v) const;

  /// Sequential scan of (v, label)'s adjacency list, newest edges first.
  EdgeIterator GetEdges(vertex_t v, label_t label) const;

  /// Single-edge lookup, Bloom-filter assisted (§4 "Reading a single edge").
  StatusOr<std::string_view> GetEdge(vertex_t v, label_t label,
                                     vertex_t dst) const;

  /// Number of visible edges in (v, label)'s list.
  size_t CountEdges(vertex_t v, label_t label) const;

  vertex_t VertexCount() const { return graph_->VertexCount(); }

 private:
  friend class Graph;
  ReadTransaction(Graph* graph, Graph::WorkerSlot* slot, timestamp_t tre)
      : graph_(graph), slot_(slot), tre_(tre) {}

  Graph* graph_;
  Graph::WorkerSlot* slot_;
  timestamp_t tre_;
};

/// A read-write transaction under snapshot isolation. Single-threaded.
/// Writes are staged in the graph's TELs with negative (-TID) timestamps,
/// invisible to every other transaction until commit (§5).
class Transaction {
 public:
  ~Transaction();
  Transaction(Transaction&& other) noexcept;
  Transaction& operator=(Transaction&&) = delete;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  timestamp_t read_epoch() const { return tre_; }
  bool active() const { return state_ == State::kActive; }

  // --- Vertex operations (§4) ---

  /// Allocates a fresh vertex ID and stages its first version. The ID is
  /// assigned eagerly; the vertex payload becomes visible at commit.
  /// Returns kNullVertex when `GraphOptions::max_vertices` is exhausted —
  /// the transaction stays active (capacity is not a conflict) — or when
  /// the transaction aborted (lock timeout / already dead).
  vertex_t AddVertex(std::string_view properties = {});

  /// Stages a new version of v's properties (copy-on-write, §3).
  Status PutVertex(vertex_t v, std::string_view properties);

  /// Stages a tombstone version of v.
  Status DeleteVertex(vertex_t v);

  /// Visible properties of `v`, including this transaction's own staged
  /// writes; kNotFound if absent or deleted.
  StatusOr<std::string_view> GetVertex(vertex_t v) const;

  // --- Edge operations (§4) ---

  /// Upsert: appends a new edge log entry; if a previous version of
  /// (v,label,dst) exists (Bloom-checked), its entry is invalidated.
  Status AddEdge(vertex_t v, label_t label, vertex_t dst,
                 std::string_view properties = {});

  /// Invalidates the current version of (v,label,dst). kNotFound if the
  /// edge is not visible.
  Status DeleteEdge(vertex_t v, label_t label, vertex_t dst);

  StatusOr<std::string_view> GetEdge(vertex_t v, label_t label,
                                     vertex_t dst) const;

  EdgeIterator GetEdges(vertex_t v, label_t label) const;

  size_t CountEdges(vertex_t v, label_t label) const;

  // --- Lifecycle (§5: work / persist / apply phases) ---

  /// Runs the persist phase through the transaction manager (group commit
  /// + WAL fsync) and the apply phase (publish LS/CT, convert -TID
  /// timestamps to the write epoch). Returns the commit epoch: the write
  /// epoch (TWE) assigned by the commit manager, or the read epoch for a
  /// transaction that staged no writes. On conflict/timeout the
  /// transaction was already aborted at the failing operation and this
  /// returns kNotActive.
  StatusOr<timestamp_t> Commit();

  /// Commit one piece of a multi-shard transaction at a coordinator-
  /// acquired epoch from the shared EpochDomain. `participants` is the
  /// number of shards committing a piece at `epoch` (recorded in the WAL
  /// so recovery can detect a half-durable cross-shard transaction).
  /// Unlike Commit(), CommitAt does NOT wait for the epoch to become
  /// visible — the coordinator waits once after its last piece — and it
  /// ALWAYS reports the piece's MarkApplied to the domain, even on the
  /// failure paths, so the visibility frontier can never wedge on a dead
  /// piece.
  StatusOr<timestamp_t> CommitAt(timestamp_t epoch, uint32_t participants);

  /// Reverts all staged changes (§5: restore invalidation timestamps,
  /// release locks, return new blocks to the memory manager).
  void Abort();

  // --- Cross-thread hand-off ---
  //
  // A transaction may be moved between threads mid-life (the reactor
  // server runs the work phase on an event-loop thread and Commit() on a
  // commit-worker thread). The futex vertex locks themselves are not
  // thread-affine, but the debug lock-rank ledger (util/lock_rank.h) is
  // per-thread: call DetachFromThread() on the old thread after the last
  // operation there and AttachToThread() on the new thread before the
  // next one. No-ops outside LIVEGRAPH_DCHECK builds; exactly one thread
  // may operate on the transaction at a time either way.
  void DetachFromThread();
  void AttachToThread();

 private:
  friend class Graph;
  friend class CommitManager;

  enum class State { kActive, kCommitted, kAborted };

  Transaction(Graph* graph, Graph::WorkerSlot* slot, timestamp_t tre,
              int64_t tid);

  /// Acquires v's futex lock (once per transaction). kTimeout on deadlock
  /// timeout, after which the caller aborts.
  Status LockVertex(vertex_t v);

  TelWrite* FindTelWrite(vertex_t v, label_t label);
  /// Locks, conflict-checks (CT vs TRE) and stages the TEL for writing.
  Status PrepareTelWrite(vertex_t v, label_t label, TelWrite** out);

  /// Moves the TEL into a block of twice the size (§3 upgrade), preserving
  /// all entries and timestamps; swaps the label-index slot.
  void UpgradeTel(TelWrite* w, uint32_t needed_bytes);

  /// Work-phase edge write shared by AddEdge/DeleteEdge.
  Status WriteEdge(vertex_t v, label_t label, vertex_t dst,
                   std::string_view properties, bool is_delete);

  /// Apply phase (runs on the committing worker thread after persist).
  void ApplyCommit(timestamp_t twe);
  void UndoWrites();
  void ReleaseLocksAndSlot();
  void MarkDirty();

  // WAL logical-record staging (storage format documented in wal.h users).
  void LogAddVertex(vertex_t v, std::string_view props);
  void LogPutVertex(vertex_t v, std::string_view props);
  void LogDeleteVertex(vertex_t v);
  void LogAddEdge(vertex_t v, label_t label, vertex_t dst,
                  std::string_view props);
  void LogDeleteEdge(vertex_t v, label_t label, vertex_t dst);

  Graph* graph_;
  Graph::WorkerSlot* slot_;
  timestamp_t tre_;
  int64_t tid_;
  State state_ = State::kActive;
  timestamp_t write_epoch_ = 0;  // TWE, assigned by the commit manager

  /// The slot's pooled write-set arenas (core/txn_scratch.h). Exclusive to
  /// this transaction while it is active; reset — capacity preserved — on
  /// commit/abort so the next transaction on the slot reuses the memory.
  TxnScratch* scratch_;
  bool replay_mode_ = false;  // recovery: skip WAL logging
};

}  // namespace livegraph

#endif  // LIVEGRAPH_CORE_TRANSACTION_H_
