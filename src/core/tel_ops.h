// Internal helpers shared by read/write transaction paths and compaction.
#ifndef LIVEGRAPH_CORE_TEL_OPS_H_
#define LIVEGRAPH_CORE_TEL_OPS_H_

#include <optional>
#include <string_view>

#include "core/blocks.h"
#include "core/graph.h"
#include "util/types.h"

namespace livegraph::internal {

/// In-library access to Graph internals for free-function helpers.
struct GraphAccess {
  static VertexIndexEntry* IndexEntry(const Graph& graph, vertex_t v) {
    return graph.IndexEntry(v);
  }
  static BlockManager* Blocks(const Graph& graph) {
    return graph.block_manager_.get();
  }
  static TelBlock Tel(const Graph& graph, block_ptr_t ptr) {
    return graph.Tel(ptr);
  }
  static block_ptr_t FindTel(const Graph& graph, vertex_t v, label_t label) {
    return graph.FindTel(v, label);
  }
};

/// Walks a vertex version chain and returns the properties visible at
/// `tre`, or nullopt (missing / deleted / not yet visible).
std::optional<std::string_view> ReadVertexVersion(const Graph& graph,
                                                  vertex_t v, timestamp_t tre);

/// Tail-to-head scan for the visible entry of (src -> dst); returns the
/// entry index or -1. `total_entries` bounds the scan (committed entries,
/// plus transaction-private ones for the writing transaction).
int64_t FindVisibleEdge(const TelBlock& block, uint32_t total_entries,
                        vertex_t dst, timestamp_t tre, int64_t tid);

}  // namespace livegraph::internal

#endif  // LIVEGRAPH_CORE_TEL_OPS_H_
