// The LiveGraph storage engine facade.
#ifndef LIVEGRAPH_CORE_GRAPH_H_
#define LIVEGRAPH_CORE_GRAPH_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/blocks.h"
#include "core/config.h"
#include "core/epoch_domain.h"
#include "core/txn_scratch.h"
#include "storage/block_manager.h"
#include "storage/wal.h"
#include "util/futex_lock.h"
#include "util/mmap_region.h"
#include "util/types.h"

namespace livegraph {

class CommitManager;
class ReadTransaction;
class Transaction;

namespace internal {
struct GraphAccess;
}  // namespace internal

/// A transactional property-graph store with purely sequential adjacency
/// list scans (VLDB'20). One instance owns a block store (optionally
/// file-backed), vertex/edge index arrays, a futex vertex-lock array, a
/// group-commit WAL, and a background compaction thread.
///
/// Thread safety: all public methods are thread-safe. Transactions are
/// single-threaded objects; ReadTransactions may additionally be shared by
/// many reader threads (used for in-situ analytics, §7.4).
class Graph {
 public:
  explicit Graph(GraphOptions options = {});
  ~Graph();

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Opens a graph from durable state: loads the newest checkpoint under
  /// `checkpoint_dir` (if any) and replays the WAL tail (§6 "Recovery").
  static std::unique_ptr<Graph> Recover(GraphOptions options,
                                        const std::string& checkpoint_dir);

  /// Starts a read-write transaction with snapshot isolation.
  Transaction BeginTransaction();

  /// Starts a read-write transaction whose snapshot is pinned at `epoch`
  /// (clamped to [0, current GRE]) instead of the engine's own frontier.
  /// Used by multi-shard write sessions: the coordinator pins ONE global
  /// epoch up front and opens every shard's native transaction at it, so
  /// the session reads one cross-shard-consistent view no matter when each
  /// shard is first touched. Conflict checks (CT/creation-ts against TRE)
  /// are unchanged — an older snapshot can only see MORE conflicts, never
  /// miss one.
  Transaction BeginTransactionAt(timestamp_t epoch);

  /// Starts a read-only snapshot transaction. Never blocks writers and is
  /// never blocked by them (§2.2, §5).
  ReadTransaction BeginReadOnlyTransaction();

  /// Temporal extension (paper §9: "the multi-versioning nature of TELs
  /// makes it natural to support temporal graph processing"): opens a
  /// read-only transaction pinned at a historical epoch. The snapshot is
  /// exact for any epoch not yet garbage-collected; entries reclaimed by
  /// compaction before this call are no longer recoverable, so workloads
  /// using time travel should lower compaction aggressiveness (§6 "a
  /// user-specified level of historical data storage"). `epoch` is clamped
  /// to [0, current GRE].
  ReadTransaction BeginTimeTravelTransaction(timestamp_t epoch);

  /// Upper bound (exclusive) on allocated vertex IDs.
  vertex_t VertexCount() const {
    return next_vertex_.load(std::memory_order_acquire);
  }

  /// Current visible epoch (the paper's GRE) — the frontier of the
  /// engine's EpochDomain.
  timestamp_t ReadEpoch() const { return domain_->visible(); }

  /// The visibility-epoch domain this engine commits into (private by
  /// default, shared across shards under a ShardedStore).
  EpochDomain* epoch_domain() const { return domain_.get(); }

  /// Writes a consistent checkpoint of the latest snapshot into
  /// `checkpoint_dir` using `threads` writer threads (§6 "Recovery"; the
  /// WAL stays append-only — recovery filters by epoch). Returns the
  /// checkpointed epoch, or -1 when an I/O failure prevented the
  /// checkpoint — the previous checkpoint (if any) stays authoritative
  /// and the next cadence retries.
  timestamp_t Checkpoint(const std::string& checkpoint_dir, int threads = 1);

  /// Writes a checkpoint of `snapshot` (its pinned epoch, exact) into
  /// `checkpoint_dir`. Used by the sharded cross-shard checkpoint, which
  /// pins ONE domain epoch and checkpoints every shard at it.
  timestamp_t CheckpointSnapshot(const ReadTransaction& snapshot,
                                 const std::string& checkpoint_dir,
                                 int threads = 1);

  /// Truncates the WAL after a durable checkpoint made its contents
  /// redundant (sharded recovery: the replayed tail is re-checkpointed and
  /// the logs reset so a torn cross-shard suffix can never resurface).
  void ResetWal();

  /// Installs (nullptr clears) the durable-batch tee on this engine's WAL —
  /// the replication hub's hook (docs/REPLICATION.md). No-op without a WAL.
  void SetWalSink(Wal::DurableSink* sink) {
    if (wal_ != nullptr) wal_->SetDurableSink(sink);
  }

  /// Streams `snapshot`'s full state as synthetic WAL-record payloads
  /// (kOpPutVertex + kOpAddEdge, edges oldest-first), chunked so each call
  /// to `emit` carries at most ~chunk_bytes. Replaying every emitted
  /// payload through the WAL apply path on an empty engine reconstructs the
  /// snapshot exactly — the replication bootstrap for followers too far
  /// behind the primary's log (docs/REPLICATION.md).
  void ExportSnapshot(const ReadTransaction& snapshot,
                      const std::function<void(std::string_view)>& emit,
                      size_t chunk_bytes = 256 * 1024) const;

  /// Runs one synchronous compaction pass over all dirty vertices (§6
  /// "Compaction"). Also invoked automatically every
  /// `options.compaction_interval` committed transactions.
  void RunCompactionPass();

  struct MemoryStats {
    uint64_t block_store_allocated;  // bump high-water mark
    uint64_t block_store_free;       // recycled, awaiting reuse
    uint64_t block_store_retired;    // awaiting epoch reclamation
    uint64_t block_store_live;       // allocated - free - retired
    uint64_t index_bytes;            // vertex index + lock array footprint
    uint64_t wal_bytes;              // bytes written to the WAL so far
  };
  MemoryStats CollectMemoryStats() const;

  /// Count of live TEL blocks per block size in bytes (Figure 7b).
  std::map<size_t, size_t> CollectTelSizeHistogram() const;

  const GraphOptions& options() const { return options_; }

  /// Degraded-mode status: kOk while healthy; the first durable-path
  /// failure (WAL append/sync) latches its typed status here and the
  /// engine becomes read-only — reads/scans/analytics keep serving the
  /// last durable epoch, new write transactions are rejected with this
  /// status at commit. Cleared only by restart + recovery.
  Status degraded_status() const {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Latches degraded mode (first error wins). Called by the commit
  /// pipeline when the WAL poisons itself; idempotent.
  void EnterDegraded(Status status);

 private:
  friend class CommitManager;
  friend class ReadTransaction;
  friend class Transaction;
  friend class ShardedStore;  // per-shard recovery plumbing (src/shard/)
  friend struct internal::GraphAccess;

  /// Per-running-transaction bookkeeping slot. Slots double as the
  /// reading-epoch table used by compaction to find the oldest active read
  /// epoch (§6).
  struct WorkerSlot {
    std::atomic<timestamp_t> reading_epoch{kIdleEpoch};
    std::atomic<bool> in_use{false};
    /// Vertices written since the last compaction pass (paper's per-worker
    /// dirty vertex set, §6).
    std::mutex dirty_mu;
    std::vector<vertex_t> dirty_vertices;
    /// Pooled write-phase arenas: the slot's current transaction stages
    /// into these and resets them (capacity-preserving) on commit/abort,
    /// so repeated transactions on a session allocate nothing.
    TxnScratch scratch;
  };

  WorkerSlot* AcquireSlot();
  void ReleaseSlot(WorkerSlot* slot);

  /// Publishes `slot`'s read epoch and returns the transaction's TRE using
  /// the store-recheck protocol that makes compaction's min-epoch scan
  /// race-free.
  timestamp_t PublishReadEpoch(WorkerSlot* slot);

  VertexIndexEntry* IndexEntry(vertex_t v) const {
    return reinterpret_cast<VertexIndexEntry*>(index_region_.data()) + v;
  }
  FutexLock* LockFor(vertex_t v) const {
    return reinterpret_cast<FutexLock*>(lock_region_.data()) + v;
  }

  TelBlock Tel(block_ptr_t ptr) const {
    return TelBlock(block_manager_->Pointer(ptr), BlockOrder(ptr),
                    options_.enable_bloom_filters);
  }

  /// Finds the TEL for (v, label): packed ptr or kNullBlock.
  block_ptr_t FindTel(vertex_t v, label_t label) const;

  /// Ensures a label-index slot exists for (v, label) and returns a pointer
  /// to its TEL slot. Caller must hold the vertex lock.
  std::atomic<block_ptr_t>* FindOrCreateLabelSlot(vertex_t v, label_t label);

  /// Allocates + initializes an empty TEL block.
  block_ptr_t NewTel(vertex_t src, uint8_t order);

  /// Minimum epoch any current or future transaction can read at.
  timestamp_t SafeEpoch() const;

  /// Compaction internals (core/compaction.cc).
  void CompactionThreadMain();
  void CompactVertex(vertex_t v, timestamp_t safe_epoch);
  void MaybeScheduleCompaction();

  /// Recovery internals (core/checkpoint.cc).
  void ApplyWalRecord(std::string_view payload);
  void LoadCheckpoint(const std::string& checkpoint_dir);

  GraphOptions options_;
  /// Visibility domain (owns GWE/GRE; see epoch_domain.h). Private unless
  /// options supplied a shared one.
  std::shared_ptr<EpochDomain> domain_;
  std::unique_ptr<BlockManager> block_manager_;
  MmapRegion index_region_;  // VertexIndexEntry[max_vertices]
  MmapRegion lock_region_;   // FutexLock[max_vertices]

  std::atomic<vertex_t> next_vertex_{0};
  std::atomic<uint64_t> next_tid_{1};
  std::atomic<uint64_t> committed_txns_{0};
  /// Committed-transaction count at which the next compaction pass fires;
  /// compare-exchanged forward by the committer that crosses it, so
  /// concurrent commits jumping the counter across the boundary cannot
  /// skip a trigger (an exact `% interval == 0` observation can be missed).
  std::atomic<uint64_t> next_compaction_at_{0};

  std::vector<std::unique_ptr<WorkerSlot>> slots_;

  std::unique_ptr<Wal> wal_;
  std::unique_ptr<CommitManager> commit_manager_;
  /// Sticky read-only degraded mode (see degraded_status()).
  std::atomic<Status> degraded_{Status::kOk};

  // Background compaction.
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> compaction_requested_{false};
  std::mutex compaction_mu_;
  std::condition_variable compaction_cv_;
  std::thread compaction_thread_;
  std::mutex compaction_pass_mu_;  // serializes manual + background passes
};

}  // namespace livegraph

#endif  // LIVEGRAPH_CORE_GRAPH_H_
