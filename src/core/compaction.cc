// Background compaction and garbage collection (paper §6).
//
// "LiveGraph periodically (every 65536 transactions in our default setting)
// launches a compaction task. Each worker thread maintains a dirty vertex
// set ... When doing compaction, a thread scans through its local dirty set
// and compacts or garbage-collects blocks based on version visibility."
#include <algorithm>
#include <cstring>
#include <vector>

#include "core/graph.h"
#include "core/transaction.h"
#include "util/bloom_filter.h"
#include "util/lock_rank.h"
#include "util/metrics.h"

namespace livegraph {

namespace {
// Lock acquisition budget for compaction: it must only "temporarily prevent
// concurrent writes to that specific block" (§6), so contended vertices are
// skipped and retried in a later pass.
constexpr int64_t kCompactionLockTimeoutNs = 1'000'000;  // 1 ms
}  // namespace

void Graph::MaybeScheduleCompaction() {
  if (!options_.enable_compaction) return;
  // Threshold compare-exchange rather than `committed % interval == 0`:
  // concurrent commits can jump the counter across a boundary so that no
  // single committer ever observes an exact multiple, which would skip the
  // trigger entirely. Exactly one committer wins the CAS per crossing.
  // relaxed loads: both are trigger heuristics — stale values delay a pass
  // by at most a few commits; the CAS arbitrates the actual crossing.
  uint64_t committed = committed_txns_.load(std::memory_order_relaxed);
  uint64_t next = next_compaction_at_.load(std::memory_order_relaxed);
  if (committed < next) return;
  if (!next_compaction_at_.compare_exchange_strong(
          next, committed + options_.compaction_interval,
          std::memory_order_acq_rel, std::memory_order_relaxed)) {
    return;  // another committer claimed this crossing
  }
  compaction_requested_.store(true, std::memory_order_release);
  compaction_cv_.notify_one();
}

void Graph::CompactionThreadMain() {
  std::unique_lock<std::mutex> lock(compaction_mu_);
  while (true) {
    compaction_cv_.wait(lock, [&] {
      return shutdown_.load(std::memory_order_acquire) ||
             compaction_requested_.load(std::memory_order_acquire);
    });
    if (shutdown_.load(std::memory_order_acquire)) return;
    compaction_requested_.store(false, std::memory_order_release);
    lock.unlock();
    RunCompactionPass();
    lock.lock();
  }
}

void Graph::RunCompactionPass() {
  // Outermost rank: the pass takes vertex locks and dirty sets below it.
  LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kCompactionPass);
  std::lock_guard<std::mutex> pass_guard(compaction_pass_mu_);
  static metrics::Counter& passes = metrics::Registry::Instance().GetCounter(
      "livegraph_compaction_passes_total");
  static metrics::Counter& dirty_total =
      metrics::Registry::Instance().GetCounter(
          "livegraph_compaction_dirty_vertices_total");
  static metrics::Counter& reclaimed_blocks =
      metrics::Registry::Instance().GetCounter(
          "livegraph_compaction_reclaimed_blocks_total");
  static metrics::Counter& reclaimed_bytes =
      metrics::Registry::Instance().GetCounter(
          "livegraph_compaction_reclaimed_bytes_total");
  static metrics::Histogram& pass_latency =
      metrics::Registry::Instance().GetHistogram(
          "livegraph_compaction_pass_latency", metrics::Unit::kNanos);
  const uint64_t pass_start = metrics::MonotonicNanos();
  const timestamp_t safe = SafeEpoch();

  // Collect and dedup all workers' dirty sets.
  std::vector<vertex_t> dirty;
  for (auto& slot : slots_) {
    LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kDirtySet);
    std::lock_guard<std::mutex> guard(slot->dirty_mu);
    dirty.insert(dirty.end(), slot->dirty_vertices.begin(),
                 slot->dirty_vertices.end());
    slot->dirty_vertices.clear();
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  for (vertex_t v : dirty) CompactVertex(v, safe);

  const uint64_t retired_before = block_manager_->GetStats().retired_bytes;
  size_t blocks = block_manager_->ReclaimRetired(SafeEpoch());
  const uint64_t retired_after = block_manager_->GetStats().retired_bytes;

  passes.Add();
  dirty_total.Add(dirty.size());
  reclaimed_blocks.Add(blocks);
  if (retired_before > retired_after)
    reclaimed_bytes.Add(retired_before - retired_after);
  pass_latency.Record(metrics::MonotonicNanos() - pass_start);
}

void Graph::CompactVertex(vertex_t v, timestamp_t safe) {
  FutexLock* lock = LockFor(v);
  if (!lock->TryLockFor(kCompactionLockTimeoutNs)) {
    // Contended: requeue for the next pass.
    LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kDirtySet);
    std::lock_guard<std::mutex> guard(slots_[0]->dirty_mu);
    slots_[0]->dirty_vertices.push_back(v);
    return;
  }
  LIVEGRAPH_LOCK_RANK_ACQUIRE(LockRank::kVertexLock);
  const timestamp_t retire_epoch = domain_->visible() + 1;

  // --- Vertex version chain GC ("similar to existing MVCC
  // implementations ... related previous pointers are cleared
  // simultaneously", §6) ---
  block_ptr_t head =
      IndexEntry(v)->vertex_block.load(std::memory_order_acquire);
  block_ptr_t keep = head;
  while (keep != kNullBlock) {
    auto* header =
        reinterpret_cast<VertexHeader*>(block_manager_->Pointer(keep));
    timestamp_t ts = header->creation_ts.load(std::memory_order_acquire);
    if (ts > 0 && ts <= safe) {
      // `keep` is the newest version any current/future reader can need;
      // everything behind it is garbage.
      block_ptr_t stale = header->prev.exchange(kNullBlock,
                                                std::memory_order_acq_rel);
      while (stale != kNullBlock) {
        auto* stale_header =
            reinterpret_cast<VertexHeader*>(block_manager_->Pointer(stale));
        block_ptr_t next = stale_header->prev.load(std::memory_order_acquire);
        block_manager_->Retire(stale, retire_epoch);
        stale = next;
      }
      break;
    }
    keep = header->prev.load(std::memory_order_acquire);
  }

  // --- TEL compaction ---
  block_ptr_t store = IndexEntry(v)->edge_store.load(std::memory_order_acquire);
  if (store == kNullBlock) {
    lock->Unlock();
    LIVEGRAPH_LOCK_RANK_RELEASE(LockRank::kVertexLock);
    return;
  }
  uint8_t* base = block_manager_->Pointer(store);
  auto* label_header = reinterpret_cast<LabelIndexHeader*>(base);
  uint32_t labels = label_header->count.load(std::memory_order_acquire);
  LabelIndexEntry* entries = LabelEntries(base);

  for (uint32_t li = 0; li < labels; ++li) {
    block_ptr_t tel_ptr = entries[li].tel.load(std::memory_order_acquire);
    if (tel_ptr == kNullBlock) continue;
    TelBlock tel = Tel(tel_ptr);
    TelHeader* header = tel.header();

    // A TEL whose CT is above the safe epoch may belong to a transaction
    // still converting its -TID timestamps (apply phase runs after lock
    // release, §5); requeue and skip.
    if (header->commit_ts.load(std::memory_order_acquire) > safe) {
      // Taken with the vertex lock held — kDirtySet ranks above
      // kVertexLock, so this nesting is legal by the table.
      LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kDirtySet);
      std::lock_guard<std::mutex> guard(slots_[0]->dirty_mu);
      slots_[0]->dirty_vertices.push_back(v);
      continue;
    }

    uint32_t committed =
        header->committed_entries.load(std::memory_order_acquire);
    // Count survivors: an entry stays unless it was invalidated at or
    // before the safe epoch (then no current or future snapshot sees it).
    uint32_t survivors = 0;
    uint32_t survivor_props = 0;
    for (uint32_t i = 0; i < committed; ++i) {
      timestamp_t inv =
          tel.Entry(i)->invalidation_ts.load(std::memory_order_acquire);
      if (inv > 0 && inv <= safe) continue;
      survivors++;
      survivor_props += tel.Entry(i)->prop_size;
    }
    bool has_history = header->prev.load(std::memory_order_acquire) !=
                       kNullBlock;
    if (survivors == committed && !has_history) continue;  // nothing to do

    if (survivors == committed && has_history) {
      // No dead entries, but stale upgrade chain to prune.
      block_ptr_t stale =
          header->prev.exchange(kNullBlock, std::memory_order_acq_rel);
      while (stale != kNullBlock) {
        TelHeader* stale_header = Tel(stale).header();
        block_ptr_t next = stale_header->prev.load(std::memory_order_acquire);
        block_manager_->Retire(stale, retire_epoch);
        stale = next;
      }
      continue;
    }

    // Rewrite into a right-sized block ("sometimes the block could shrink
    // after many edges being deleted", §6).
    uint8_t order = BlockManager::kMinOrder;
    TelGeometry geometry;
    while (true) {
      geometry = TelGeometry::For(order, options_.enable_bloom_filters);
      if (geometry.prop_start + survivor_props +
              survivors * sizeof(EdgeEntry) <=
          geometry.block_size) {
        break;
      }
      ++order;
    }
    // relaxed stores into `fresh` below: the rewritten block is private to
    // this thread until the committed_entries release + tel release swap
    // publish it.
    block_ptr_t new_ptr = NewTel(v, order);
    TelBlock fresh = Tel(new_ptr);
    uint32_t out_index = 0;
    uint32_t out_props = 0;
    for (uint32_t i = 0; i < committed; ++i) {
      EdgeEntry* entry = tel.Entry(i);
      timestamp_t inv = entry->invalidation_ts.load(std::memory_order_acquire);
      if (inv > 0 && inv <= safe) continue;
      EdgeEntry* out = fresh.Entry(out_index);
      out->dst = entry->dst;
      out->creation_ts.store(entry->creation_ts.load(std::memory_order_acquire),
                             std::memory_order_relaxed);
      out->invalidation_ts.store(inv, std::memory_order_relaxed);
      out->prop_size = entry->prop_size;
      out->prop_offset = out_props;
      if (entry->prop_size > 0) {
        std::memcpy(fresh.props() + out_props, tel.props() + entry->prop_offset,
                    entry->prop_size);
      }
      if (fresh.bloom_bytes() > 0) {
        BloomFilter::Insert(fresh.bloom_bits(), fresh.bloom_bytes(),
                            static_cast<uint64_t>(out->dst));
      }
      out_props += entry->prop_size;
      out_index++;
    }
    TelHeader* fresh_header = fresh.header();
    fresh_header->commit_ts.store(
        header->commit_ts.load(std::memory_order_acquire),
        std::memory_order_relaxed);
    fresh_header->committed_prop_bytes.store(out_props,
                                             std::memory_order_relaxed);
    fresh_header->committed_entries.store(out_index,
                                          std::memory_order_release);
    entries[li].tel.store(new_ptr, std::memory_order_release);

    // Retire the replaced chain once every current reader drains.
    block_ptr_t stale = tel_ptr;
    while (stale != kNullBlock) {
      TelHeader* stale_header = Tel(stale).header();
      block_ptr_t next = stale_header->prev.load(std::memory_order_acquire);
      block_manager_->Retire(stale, retire_epoch);
      stale = next;
    }
  }
  lock->Unlock();
  LIVEGRAPH_LOCK_RANK_RELEASE(LockRank::kVertexLock);
}

}  // namespace livegraph
