// EdgeIterator, ReadTransaction, and shared TEL scan helpers.
#include <optional>

#include "core/tel_ops.h"
#include "core/transaction.h"
#include "util/bloom_filter.h"

namespace livegraph {

namespace internal {

std::optional<std::string_view> ReadVertexVersion(const Graph& graph,
                                                  vertex_t v,
                                                  timestamp_t tre) {
  if (v < 0 || v >= graph.VertexCount()) return std::nullopt;
  block_ptr_t ptr = GraphAccess::IndexEntry(graph, v)->vertex_block.load(
      std::memory_order_acquire);
  // "In the uncommon case where a read requires a previous version of the
  // vertex, it follows the per-vertex linked list of vertex block versions
  // in backward timestamp order" (§4).
  while (ptr != kNullBlock) {
    auto* header = reinterpret_cast<const VertexHeader*>(
        GraphAccess::Blocks(graph)->Pointer(ptr));
    timestamp_t ts = header->creation_ts.load(std::memory_order_acquire);
    if (ts > 0 && ts <= tre) {
      if (header->tombstone) return std::nullopt;
      return std::string_view(reinterpret_cast<const char*>(header + 1),
                              header->prop_size);
    }
    ptr = header->prev.load(std::memory_order_acquire);
  }
  return std::nullopt;
}

int64_t FindVisibleEdge(const TelBlock& block, uint32_t total_entries,
                        vertex_t dst, timestamp_t tre, int64_t tid) {
  // Tail-to-head: "edge updates and deletions have high time locality:
  // edges appended most recently are most likely to be accessed" (§4).
  for (int64_t i = static_cast<int64_t>(total_entries) - 1; i >= 0; --i) {
    const EdgeEntry* entry = block.Entry(static_cast<uint32_t>(i));
    if (entry->dst != dst) continue;
    if (entry->VisibleTo(tre, tid)) return i;
  }
  return -1;
}

}  // namespace internal

// --- EdgeIterator ---

EdgeIterator::EdgeIterator(TelBlock block, uint32_t total_entries,
                           timestamp_t tre, int64_t tid)
    : block_(block), tre_(tre), tid_(tid) {
  if (!block_.valid() || total_entries == 0) return;
  // Entry(total-1) is the newest ("tail" in Figure 3) and sits at the
  // lowest address; the scan walks addresses strictly upward to the oldest
  // entry at the block end — purely sequential.
  end_ = block_.Entry(0) + 1;
  entry_ = block_.Entry(total_entries - 1);
  props_base_ = block_.props();
  SkipInvisible();
}

void EdgeIterator::SkipInvisible() {
  while (entry_ != end_ && !entry_->VisibleTo(tre_, tid_)) ++entry_;
  if (entry_ == end_) entry_ = nullptr;
}

void EdgeIterator::Next() {
  ++entry_;
  SkipInvisible();
}

std::string_view EdgeIterator::Properties() const {
  return std::string_view(
      reinterpret_cast<const char*>(props_base_ + entry_->prop_offset),
      entry_->prop_size);
}

// --- ReadTransaction ---

ReadTransaction::~ReadTransaction() {
  if (slot_ != nullptr) graph_->ReleaseSlot(slot_);
}

ReadTransaction::ReadTransaction(ReadTransaction&& other) noexcept
    : graph_(other.graph_), slot_(other.slot_), tre_(other.tre_) {
  other.slot_ = nullptr;
}

StatusOr<std::string_view> ReadTransaction::GetVertex(vertex_t v) const {
  auto committed = internal::ReadVertexVersion(*graph_, v, tre_);
  if (!committed.has_value()) return Status::kNotFound;
  return *committed;
}

EdgeIterator ReadTransaction::GetEdges(vertex_t v, label_t label) const {
  block_ptr_t tel = graph_->FindTel(v, label);
  if (tel == kNullBlock) return EdgeIterator();
  TelBlock block = graph_->Tel(tel);
  uint32_t committed =
      block.header()->committed_entries.load(std::memory_order_acquire);
  return EdgeIterator(block, committed, tre_, /*tid=*/0);
}

StatusOr<std::string_view> ReadTransaction::GetEdge(vertex_t v, label_t label,
                                                    vertex_t dst) const {
  block_ptr_t tel = graph_->FindTel(v, label);
  if (tel == kNullBlock) return Status::kNotFound;
  TelBlock block = graph_->Tel(tel);
  // "Reading a single edge involves checking if the edge is present using
  // the Bloom filter. If so, the edge is located with a scan" (§4).
  if (block.bloom_bytes() > 0 &&
      !BloomFilter::MayContain(block.bloom_bits(), block.bloom_bytes(),
                               static_cast<uint64_t>(dst))) {
    return Status::kNotFound;
  }
  uint32_t committed =
      block.header()->committed_entries.load(std::memory_order_acquire);
  int64_t index =
      internal::FindVisibleEdge(block, committed, dst, tre_, /*tid=*/0);
  if (index < 0) return Status::kNotFound;
  const EdgeEntry* entry = block.Entry(static_cast<uint32_t>(index));
  return std::string_view(
      reinterpret_cast<const char*>(block.props() + entry->prop_offset),
      entry->prop_size);
}

size_t ReadTransaction::CountEdges(vertex_t v, label_t label) const {
  size_t n = 0;
  for (EdgeIterator it = GetEdges(v, label); it.Valid(); it.Next()) ++n;
  return n;
}

}  // namespace livegraph
