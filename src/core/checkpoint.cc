// Checkpointing and recovery (paper §6 "Recovery").
//
// "A checkpointer (which can be configured to use any number of threads)
// periodically persists the latest consistent snapshot (using a read-only
// transaction) ... When a failure happens, LiveGraph first loads the latest
// checkpoint and then replays the WAL to apply committed updates."
//
// Checkpoint format: a MANIFEST file {epoch, shard count, next vertex ID}
// plus shard files, each a stream of per-vertex records written from a
// consistent snapshot. The WAL is kept append-only; recovery replays only
// records with epoch > checkpoint epoch, so checkpoints taken concurrently
// with a live workload never lose later commits.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <cerrno>
#include <filesystem>

#include "core/graph.h"
#include "core/transaction.h"
#include "util/fault_injection.h"
#include "util/raw_io.h"
#include "util/thread_pool.h"

namespace livegraph {

namespace {

constexpr uint64_t kShardMagic = 0x4C47434B50543031ull;  // "LGCKPT01"

// WAL payload opcodes — the format ApplyWalRecord replays and
// ExportSnapshot synthesizes (and CommitManager emits on the write path).
constexpr uint8_t kOpAddVertex = 1;
constexpr uint8_t kOpPutVertex = 2;
constexpr uint8_t kOpDeleteVertex = 3;
constexpr uint8_t kOpAddEdge = 4;
constexpr uint8_t kOpDeleteEdge = 5;

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }
std::string ShardPath(const std::string& dir, int shard) {
  return dir + "/shard_" + std::to_string(shard) + ".ckpt";
}

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

void AppendBytes(std::string* out, std::string_view bytes) {
  auto len = static_cast<uint32_t>(bytes.size());
  AppendRaw(out, &len, sizeof(len));
  out->append(bytes.data(), bytes.size());
}

}  // namespace

timestamp_t Graph::Checkpoint(const std::string& checkpoint_dir,
                              int threads) {
  ReadTransaction snapshot = BeginReadOnlyTransaction();
  return CheckpointSnapshot(snapshot, checkpoint_dir, threads);
}

timestamp_t Graph::CheckpointSnapshot(const ReadTransaction& snapshot,
                                      const std::string& checkpoint_dir,
                                      int threads) {
  if (threads < 1) threads = 1;
  const timestamp_t epoch = snapshot.read_epoch();
  const vertex_t vertex_count = VertexCount();

  {
    // A missing directory is a config/first-run condition, not an I/O
    // fault; create it rather than failing the cadence.
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
  }

  // Shard files are written under tmp names and renamed into place only
  // when every byte landed, so a failed checkpoint never corrupts the
  // previous one: the old MANIFEST (and the shard files it describes)
  // stay authoritative and the next cadence simply retries.
  std::vector<std::FILE*> shards(static_cast<size_t>(threads), nullptr);
  std::vector<int> shard_errs(static_cast<size_t>(threads), 0);
  auto cleanup_tmps = [&](const char* what, int err) -> timestamp_t {
    for (std::FILE* f : shards) {
      if (f != nullptr) std::fclose(f);
    }
    for (int s = 0; s < threads; ++s) {
      std::error_code ec;
      std::filesystem::remove(ShardPath(checkpoint_dir, s) + ".tmp", ec);
    }
    std::error_code ec;
    std::filesystem::remove(ManifestPath(checkpoint_dir) + ".tmp", ec);
    std::fprintf(stderr,
                 "Checkpoint: %s failed: %s (errno %d, dir %s) — previous "
                 "checkpoint stays authoritative\n",
                 what, std::strerror(err), err, checkpoint_dir.c_str());
    return -1;
  };
  for (int s = 0; s < threads; ++s) {
    const std::string tmp = ShardPath(checkpoint_dir, s) + ".tmp";
    if (faults::Action fault = LIVEGRAPH_FAULT("ckpt.open")) {
      return cleanup_tmps("open", fault.err);
    }
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return cleanup_tmps("open", errno);
    shards[static_cast<size_t>(s)] = f;
    WriteRaw(f, kShardMagic);
  }

  // Static range split: shard s owns vertices [s*per, (s+1)*per).
  const vertex_t per =
      threads == 1 ? vertex_count : (vertex_count + threads - 1) / threads;
  ParallelFor(0, threads, threads, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      std::FILE* f = shards[static_cast<size_t>(s)];
      if (faults::Action fault = LIVEGRAPH_FAULT("ckpt.write")) {
        shard_errs[static_cast<size_t>(s)] = fault.err;
        continue;
      }
      vertex_t lo = static_cast<vertex_t>(s) * per;
      vertex_t hi = std::min<vertex_t>(lo + per, vertex_count);
      std::vector<std::pair<vertex_t, std::string_view>> edges;
      for (vertex_t v = lo; v < hi; ++v) {
        auto props = snapshot.GetVertex(v);
        if (!props.has_value()) continue;  // never committed or deleted
        WriteRaw(f, v);
        auto prop_len = static_cast<uint32_t>(props->size());
        WriteRaw(f, prop_len);
        if (prop_len > 0) std::fwrite(props->data(), 1, prop_len, f);
        // Enumerate this vertex's labels through the index.
        block_ptr_t store =
            IndexEntry(v)->edge_store.load(std::memory_order_acquire);
        uint32_t labels = 0;
        LabelIndexEntry* label_entries = nullptr;
        if (store != kNullBlock) {
          uint8_t* base = block_manager_->Pointer(store);
          labels = reinterpret_cast<LabelIndexHeader*>(base)->count.load(
              std::memory_order_acquire);
          label_entries = LabelEntries(base);
        }
        WriteRaw(f, labels);
        for (uint32_t li = 0; li < labels; ++li) {
          label_t label = label_entries[li].label;
          WriteRaw(f, label);
          edges.clear();
          for (EdgeIterator it = snapshot.GetEdges(v, label); it.Valid();
               it.Next()) {
            edges.emplace_back(it.DstId(), it.Properties());
          }
          auto edge_count = static_cast<uint32_t>(edges.size());
          WriteRaw(f, edge_count);
          // The iterator yields newest-first; persist oldest-first so that
          // replayed appends restore the original log order.
          for (auto rit = edges.rbegin(); rit != edges.rend(); ++rit) {
            WriteRaw(f, rit->first);
            auto len = static_cast<uint32_t>(rit->second.size());
            WriteRaw(f, len);
            if (len > 0) std::fwrite(rit->second.data(), 1, len, f);
          }
        }
      }
    }
  }, /*chunk=*/1);

  for (int s = 0; s < threads; ++s) {
    std::FILE* f = shards[static_cast<size_t>(s)];
    int err = shard_errs[static_cast<size_t>(s)];
    if (err == 0 && (std::ferror(f) != 0 || std::fflush(f) != 0)) {
      err = errno != 0 ? errno : EIO;
    }
    if (err == 0) {
      if (faults::Action fault = LIVEGRAPH_FAULT("ckpt.sync")) {
        err = fault.err;
      } else if (::fsync(::fileno(f)) != 0) {
        err = errno;  // shard contents must be durable before the manifest
      }
    }
    if (err != 0) {
      shards[static_cast<size_t>(s)] = nullptr;
      std::fclose(f);
      return cleanup_tmps("write/sync", err);
    }
  }
  for (std::FILE*& f : shards) {
    std::fclose(f);
    f = nullptr;
  }
  for (int s = 0; s < threads; ++s) {
    if (!Wal::CommitRename(ShardPath(checkpoint_dir, s) + ".tmp",
                           ShardPath(checkpoint_dir, s))) {
      return cleanup_tmps("rename", EIO);
    }
  }

  // Manifest last: its presence marks the checkpoint complete. fsync the
  // file, rename it into place, then fsync the directory so the rename
  // itself survives a crash.
  std::string tmp = ManifestPath(checkpoint_dir) + ".tmp";
  std::FILE* manifest = std::fopen(tmp.c_str(), "wb");
  if (manifest == nullptr) return cleanup_tmps("open(manifest)", errno);
  WriteRaw(manifest, epoch);
  WriteRaw(manifest, threads);
  vertex_t next = VertexCount();
  WriteRaw(manifest, next);
  int err = 0;
  if (std::ferror(manifest) != 0 || std::fflush(manifest) != 0) {
    err = errno != 0 ? errno : EIO;
  }
  if (err == 0 && ::fsync(::fileno(manifest)) != 0) err = errno;
  std::fclose(manifest);
  if (err != 0) return cleanup_tmps("write(manifest)", err);
  if (!Wal::CommitRename(tmp, ManifestPath(checkpoint_dir))) {
    return cleanup_tmps("rename(manifest)", EIO);
  }
  return epoch;
}

void Graph::ExportSnapshot(
    const ReadTransaction& snapshot,
    const std::function<void(std::string_view)>& emit,
    size_t chunk_bytes) const {
  if (chunk_bytes < 4096) chunk_bytes = 4096;
  const vertex_t vertex_count = VertexCount();
  std::string chunk;
  chunk.reserve(chunk_bytes + 4096);
  auto flush = [&] {
    if (!chunk.empty()) {
      emit(chunk);
      chunk.clear();
    }
  };
  std::vector<std::pair<vertex_t, std::string_view>> edges;
  for (vertex_t v = 0; v < vertex_count; ++v) {
    auto props = snapshot.GetVertex(v);
    if (!props.has_value()) continue;  // never committed or deleted
    chunk.push_back(static_cast<char>(kOpPutVertex));
    AppendRaw(&chunk, &v, sizeof(v));
    AppendBytes(&chunk, *props);
    // Labels via the index, edges via the snapshot — the same enumeration
    // CheckpointSnapshot uses, serialized as replayable WAL ops instead of
    // checkpoint shard records.
    block_ptr_t store =
        IndexEntry(v)->edge_store.load(std::memory_order_acquire);
    uint32_t labels = 0;
    LabelIndexEntry* label_entries = nullptr;
    if (store != kNullBlock) {
      uint8_t* base = block_manager_->Pointer(store);
      labels = reinterpret_cast<LabelIndexHeader*>(base)->count.load(
          std::memory_order_acquire);
      label_entries = LabelEntries(base);
    }
    for (uint32_t li = 0; li < labels; ++li) {
      label_t label = label_entries[li].label;
      edges.clear();
      for (EdgeIterator it = snapshot.GetEdges(v, label); it.Valid();
           it.Next()) {
        edges.emplace_back(it.DstId(), it.Properties());
      }
      // Newest-first iterator, oldest-first replay: restores log order.
      for (auto rit = edges.rbegin(); rit != edges.rend(); ++rit) {
        chunk.push_back(static_cast<char>(kOpAddEdge));
        AppendRaw(&chunk, &v, sizeof(v));
        AppendRaw(&chunk, &label, sizeof(label));
        AppendRaw(&chunk, &rit->first, sizeof(rit->first));
        AppendBytes(&chunk, rit->second);
      }
    }
    // Chunk boundaries only between vertices: a payload replays as ONE
    // transaction, and splitting a vertex's ops across payloads is legal
    // (replay is per-op) but keeps the common case tidy.
    if (chunk.size() >= chunk_bytes) flush();
  }
  flush();
}

void Graph::LoadCheckpoint(const std::string& checkpoint_dir) {
  std::FILE* manifest = std::fopen(ManifestPath(checkpoint_dir).c_str(), "rb");
  if (manifest == nullptr) return;  // no checkpoint: WAL-only recovery
  timestamp_t epoch = 0;
  int shards = 0;
  vertex_t next = 0;
  if (!ReadRaw(manifest, &epoch) || !ReadRaw(manifest, &shards) ||
      !ReadRaw(manifest, &next)) {
    std::fclose(manifest);
    return;
  }
  std::fclose(manifest);

  for (int s = 0; s < shards; ++s) {
    std::FILE* f = std::fopen(ShardPath(checkpoint_dir, s).c_str(), "rb");
    if (f == nullptr) continue;
    uint64_t magic = 0;
    if (!ReadRaw(f, &magic) || magic != kShardMagic) {
      std::fclose(f);
      continue;
    }
    vertex_t v;
    std::string buffer;
    while (ReadRaw(f, &v)) {
      // One replay transaction per vertex keeps peak staging memory low.
      Transaction txn = BeginTransaction();
      txn.replay_mode_ = true;
      uint32_t prop_len = 0;
      ReadRaw(f, &prop_len);
      buffer.resize(prop_len);
      if (prop_len > 0) std::fread(buffer.data(), 1, prop_len, f);
      // Bump the vertex counter so the ID becomes addressable.
      vertex_t expected = next_vertex_.load(std::memory_order_acquire);
      while (expected <= v && !next_vertex_.compare_exchange_weak(
                                  expected, v + 1, std::memory_order_acq_rel)) {
      }
      txn.PutVertex(v, buffer);
      uint32_t labels = 0;
      ReadRaw(f, &labels);
      std::string edge_props;
      for (uint32_t li = 0; li < labels; ++li) {
        label_t label = 0;
        uint32_t edge_count = 0;
        ReadRaw(f, &label);
        ReadRaw(f, &edge_count);
        for (uint32_t e = 0; e < edge_count; ++e) {
          vertex_t dst = 0;
          uint32_t len = 0;
          ReadRaw(f, &dst);
          ReadRaw(f, &len);
          edge_props.resize(len);
          if (len > 0) std::fread(edge_props.data(), 1, len, f);
          txn.AddEdge(v, label, dst, edge_props);
        }
      }
      txn.Commit();
    }
    std::fclose(f);
  }
  vertex_t expected = next_vertex_.load(std::memory_order_acquire);
  while (expected < next && !next_vertex_.compare_exchange_weak(
                                expected, next, std::memory_order_acq_rel)) {
  }
}

void Graph::ApplyWalRecord(std::string_view payload) {
  Transaction txn = BeginTransaction();
  txn.replay_mode_ = true;
  const char* p = payload.data();
  const char* end = p + payload.size();
  auto read_raw = [&](auto* value) {
    std::memcpy(value, p, sizeof(*value));
    p += sizeof(*value);
  };
  auto read_bytes = [&]() {
    uint32_t len = 0;
    read_raw(&len);
    std::string_view bytes(p, len);
    p += len;
    return bytes;
  };
  auto ensure_vertex = [&](vertex_t v) {
    vertex_t expected = next_vertex_.load(std::memory_order_acquire);
    while (expected <= v && !next_vertex_.compare_exchange_weak(
                                expected, v + 1, std::memory_order_acq_rel)) {
    }
  };

  while (p < end) {
    uint8_t op = static_cast<uint8_t>(*p++);
    switch (op) {
      case kOpAddVertex:
      case kOpPutVertex: {
        vertex_t v;
        read_raw(&v);
        std::string_view props = read_bytes();
        ensure_vertex(v);
        txn.PutVertex(v, props);
        break;
      }
      case kOpDeleteVertex: {
        vertex_t v;
        read_raw(&v);
        ensure_vertex(v);
        txn.DeleteVertex(v);
        break;
      }
      case kOpAddEdge: {
        vertex_t v, dst;
        label_t label;
        read_raw(&v);
        read_raw(&label);
        read_raw(&dst);
        std::string_view props = read_bytes();
        ensure_vertex(v);
        txn.AddEdge(v, label, dst, props);
        break;
      }
      case kOpDeleteEdge: {
        vertex_t v, dst;
        label_t label;
        read_raw(&v);
        read_raw(&label);
        read_raw(&dst);
        ensure_vertex(v);
        txn.DeleteEdge(v, label, dst);
        break;
      }
      default:
        txn.Abort();
        return;  // unknown opcode: stop applying this record
    }
  }
  txn.Commit();
}

std::unique_ptr<Graph> Graph::Recover(GraphOptions options,
                                      const std::string& checkpoint_dir) {
  auto graph = std::make_unique<Graph>(options);
  timestamp_t checkpoint_epoch = 0;
  if (!checkpoint_dir.empty()) {
    std::FILE* manifest =
        std::fopen(ManifestPath(checkpoint_dir).c_str(), "rb");
    if (manifest != nullptr) {
      ReadRaw(manifest, &checkpoint_epoch);
      std::fclose(manifest);
    }
  }
  // Resume the durable epoch sequence past everything already stamped
  // into the checkpoint or the WAL, so replayed state commits at fresh
  // epochs and a later checkpoint's manifest epoch supersedes every
  // surviving WAL record.
  timestamp_t max_epoch = checkpoint_epoch;
  if (!options.wal_path.empty()) {
    Wal::Reader reader(options.wal_path);
    timestamp_t epoch = 0;
    std::string payload;
    while (reader.Next(&epoch, &payload)) {
      if (epoch > max_epoch) max_epoch = epoch;
    }
    // Cut off a torn/corrupt tail (crash mid-append). The graph's own Wal
    // keeps appending to this file; without the truncation every
    // post-recovery record would sit behind unreadable bytes and the NEXT
    // replay would stop before reaching it — losing fsync-acknowledged
    // commits on the second crash.
    reader.TruncateTornTail(options.wal_path);
    graph->epoch_domain()->FastForward(max_epoch);
    if (!checkpoint_dir.empty()) graph->LoadCheckpoint(checkpoint_dir);
    // Replay pass over the same in-memory buffer (no second file read).
    reader.Rewind();
    while (reader.Next(&epoch, &payload)) {
      if (epoch <= checkpoint_epoch) continue;  // superseded by checkpoint
      graph->ApplyWalRecord(payload);
    }
  } else {
    graph->epoch_domain()->FastForward(max_epoch);
    if (!checkpoint_dir.empty()) graph->LoadCheckpoint(checkpoint_dir);
  }
  return graph;
}

}  // namespace livegraph
