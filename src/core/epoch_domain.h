// The unified visibility-epoch domain (docs/SHARDING.md "Epoch domain").
//
// One EpochDomain is the single source of commit timestamps for every
// engine attached to it: a standalone Graph owns a private domain, a
// ShardedStore shares one domain across all of its shards. Epochs are
// issued densely from one monotone counter and become *visible* strictly
// in issue order — epoch e is readable only once every participant of
// every epoch <= e has finished its apply phase, on every attached engine.
// That single invariant is what makes cross-shard snapshots, time travel
// and the checkpoint manifest exact: a reader pins ONE epoch and is
// guaranteed that no shard holds a half-applied commit at or below it.
//
// Three kinds of clients:
//   * Commit managers acquire a fresh epoch per commit group
//     (Acquire(participants = group size)); every transaction of the group
//     reports MarkApplied(epoch) after converting its timestamps.
//   * A multi-shard coordinator acquires one epoch for the whole
//     transaction (participants = writer shards) and each shard's piece
//     reports MarkApplied once — the epoch turns visible only when the
//     last shard finishes, so the commit is all-or-nothing by construction.
//   * Read sessions pin the current visible epoch (PinRead) so compaction
//     on any attached engine keeps every version such a snapshot can reach.
#ifndef LIVEGRAPH_CORE_EPOCH_DOMAIN_H_
#define LIVEGRAPH_CORE_EPOCH_DOMAIN_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace livegraph {

class EpochDomain {
 public:
  /// `window` bounds epochs in flight (issued, not yet visible); it is
  /// rounded up to a power of two. Size it past the worst-case concurrent
  /// transaction count of every attached engine — Acquire backpressures
  /// (it cannot deadlock: the wait is on strictly older epochs, whose
  /// participants never wait on younger ones).
  explicit EpochDomain(size_t window = 4096);
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Issues the next epoch. `participants` is the number of MarkApplied
  /// calls required before the epoch can become visible (>= 1).
  timestamp_t Acquire(uint32_t participants);

  /// Reports that one participant of `epoch` finished its apply phase. The
  /// last participant publishes the epoch: the visible frontier cascades
  /// over every consecutive fully-applied epoch and wakes waiters.
  void MarkApplied(timestamp_t epoch);

  /// The visible frontier: every epoch <= visible() is fully applied on
  /// every attached engine. Monotone.
  timestamp_t visible() const {
    return visible_.load(std::memory_order_seq_cst);
  }

  /// Upper bound on issued epochs (diagnostics; racy by nature).
  timestamp_t issued() const {
    return next_.load(std::memory_order_acquire);
  }

  /// Blocks until visible() >= epoch.
  void WaitVisible(timestamp_t epoch);

  /// Bounded WaitVisible: true once visible() >= epoch, false after
  /// `timeout_ms` without it. Unlike WaitVisible this tolerates epochs the
  /// domain never issued (it simply times out) — the epoch may come from an
  /// untrusted peer (a client's read-your-epoch bound, docs/REPLICATION.md),
  /// and a bogus value must degrade to kTimeout, not abort the server.
  bool WaitVisibleFor(timestamp_t epoch, int64_t timeout_ms);

  /// Recovery only: jumps an idle domain (no epochs in flight) forward so
  /// post-recovery commits continue the durable epoch sequence instead of
  /// re-issuing epochs that already exist in WAL records and checkpoint
  /// manifests. No-op if the domain is already past `epoch`.
  void FastForward(timestamp_t epoch);

  // --- Reader pins (compaction safety for cross-engine snapshots) ---

  /// A pinned read epoch: while held, no attached engine's compaction may
  /// reclaim a version still visible at `epoch`.
  struct ReadPin {
    timestamp_t epoch = 0;
    uint32_t slot = 0;
  };

  /// Pins the current visible epoch (store-recheck protocol, so a
  /// concurrent compaction scan either sees the pin or used a frontier
  /// the pin does not precede).
  ReadPin PinRead();

  /// Pins a historical epoch, clamped to [0, visible()] (time travel).
  ReadPin PinReadAt(timestamp_t epoch);

  void Unpin(const ReadPin& pin);

  /// Minimum over `bound` and every live pin — the floor attached engines
  /// fold into their SafeEpoch scans.
  timestamp_t OldestPin(timestamp_t bound) const;

 private:
  struct alignas(16) Slot {
    /// MarkApplied countdown for the epoch currently mapped to this slot.
    std::atomic<uint32_t> pending{0};
    /// The epoch value once fully applied — lap-safe: the cascade compares
    /// against the exact epoch it expects, never a flag.
    std::atomic<timestamp_t> applied{0};
  };

  uint32_t ClaimPinSlot();

  size_t mask_;
  std::vector<Slot> slots_;
  /// Worker-side spin budget before sleeping on the visibility futex.
  int spin_iters_;

  alignas(64) std::atomic<timestamp_t> next_{0};
  alignas(64) std::atomic<timestamp_t> visible_{0};
  /// 32-bit futex word bumped on every visibility advance.
  std::atomic<uint32_t> visible_word_{0};

  /// Read-pin table. kFreePin marks a free slot; a live slot holds the
  /// pinned epoch.
  static constexpr uint32_t kPinSlots = 2048;
  static constexpr timestamp_t kFreePin = INT64_MAX;
  std::vector<std::atomic<timestamp_t>> pins_;

  /// Frontier/pin gauges sampled at metrics-collection time; removed in
  /// the destructor (removal blocks out in-flight collection).
  uint64_t metrics_probe_ = 0;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_CORE_EPOCH_DOMAIN_H_
