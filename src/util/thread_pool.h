// Minimal parallel-for used by analytics (§7.4) and the checkpointer (§6,
// "a checkpointer which can be configured to use any number of threads").
#ifndef LIVEGRAPH_UTIL_THREAD_POOL_H_
#define LIVEGRAPH_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>

namespace livegraph {

/// Runs fn(begin..end) partitioned over `threads` workers with dynamic
/// chunked scheduling (power-law degree graphs make static partitioning
/// badly imbalanced). Blocks until all iterations complete. Threads are
/// spawned per call: analytics runs are long enough that spawn cost is
/// noise, and it keeps the utility dependency-free.
void ParallelFor(int64_t begin, int64_t end, int threads,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t chunk = 1024);

/// Number of hardware threads, clamped to at least 1.
int DefaultThreads();

}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_THREAD_POOL_H_
