#include "util/bloom_filter.h"

#include <atomic>

namespace livegraph {
namespace {

// Derives (block index, per-probe bit offsets) from the key hash. The low
// bits choose bit positions; the high bits choose the block, following the
// standard blocked-Bloom split so the two choices stay independent.
struct Probe {
  size_t block;
  uint32_t h1;
  uint32_t h2;
};

inline Probe MakeProbe(uint64_t key, size_t num_blocks) {
  uint64_t h = BloomFilter::Hash(key);
  Probe p;
  p.block = static_cast<size_t>((h >> 32) % num_blocks);
  p.h1 = static_cast<uint32_t>(h);
  p.h2 = static_cast<uint32_t>(h >> 17) | 1u;  // odd step for double hashing
  return p;
}

}  // namespace

void BloomFilter::Insert(uint8_t* bits, size_t size_bytes, uint64_t key) {
  const size_t num_blocks = size_bytes / kBlockBytes;
  if (num_blocks == 0) return;
  Probe p = MakeProbe(key, num_blocks);
  uint8_t* block = bits + p.block * kBlockBytes;
  uint32_t h = p.h1;
  for (int i = 0; i < kProbes; ++i) {
    uint32_t bit = h % (kBlockBytes * 8);
    // Relaxed atomic OR: single-edge readers probe the filter without the
    // vertex lock while the (single, lock-holding) writer inserts. A reader
    // missing a bit of an uncommitted insert is harmless — the entry is
    // timestamp-invisible to it anyway.
    std::atomic_ref<uint8_t>(block[bit >> 3])
        .fetch_or(uint8_t(1u << (bit & 7)), std::memory_order_relaxed);
    h += p.h2;
  }
}

bool BloomFilter::MayContain(const uint8_t* bits, size_t size_bytes,
                             uint64_t key) {
  const size_t num_blocks = size_bytes / kBlockBytes;
  if (num_blocks == 0) return true;  // no filter => must scan
  Probe p = MakeProbe(key, num_blocks);
  const uint8_t* block = bits + p.block * kBlockBytes;
  uint32_t h = p.h1;
  for (int i = 0; i < kProbes; ++i) {
    uint32_t bit = h % (kBlockBytes * 8);
    uint8_t byte = std::atomic_ref<const uint8_t>(block[bit >> 3])
                       .load(std::memory_order_relaxed);
    if ((byte & uint8_t(1u << (bit & 7))) == 0) return false;
    h += p.h2;
  }
  return true;
}

}  // namespace livegraph
