// Per-vertex write locks.
//
// The paper (§5) detects write-write conflicts "using per-vertex locks,
// implemented with a futex array of fixed-size entries (with a very large
// size pre-allocated via mmap)", because "for write-intensive scenarios ...
// spinning becomes a significant bottleneck while futex-based
// implementations utilize CPU cycles better by putting waiters to sleep".
// Deadlocks are avoided with "a simple timeout mechanism: a timed-out
// transaction has to rollback and restart".
//
// FutexLock is a 4-byte three-state futex mutex (0 = free, 1 = locked,
// 2 = contended) with timed acquisition. SpinLock is the alternative the
// authors measured against; it is kept for the ablation benchmark.
#ifndef LIVEGRAPH_UTIL_FUTEX_LOCK_H_
#define LIVEGRAPH_UTIL_FUTEX_LOCK_H_

#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>

#include "util/sync_annotations.h"

namespace livegraph {

// --- Raw futex plumbing (used by the commit pipeline; FutexLock keeps
// its own timed FUTEX_WAIT because its deadline semantics differ) ---

/// Pause instruction for spin loops (keeps the sibling hyperthread and the
/// store buffer happy while we poll a flag another thread will flip).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Sleeps while `*addr == expected`. Returns on wake, value change, or the
/// safety timeout — callers always re-check their real predicate in a loop,
/// so the bounded wait only puts a ceiling on the cost of a lost wake, it
/// is never load-bearing for correctness.
inline void FutexWait(std::atomic<uint32_t>* addr, uint32_t expected) {
  timespec timeout{0, 50'000'000};  // 50 ms safety net
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(addr), FUTEX_WAIT_PRIVATE,
          expected, &timeout, nullptr, 0);
  // HB edge for TSan (sync_annotations.h): the waker published its state
  // with an atomic release/seq_cst store on (or ordered before a bump of)
  // this word, so the edge exists in the C++ model too — the annotation
  // documents the futex pairing and keeps the pair checkable if a backing
  // order is ever weakened.
  LIVEGRAPH_TSAN_ACQUIRE(addr);
}

inline void FutexWakeOne(std::atomic<uint32_t>* addr) {
  LIVEGRAPH_TSAN_RELEASE(addr);  // pairs with the ACQUIRE in FutexWait
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(addr), FUTEX_WAKE_PRIVATE, 1,
          nullptr, nullptr, 0);
}

inline void FutexWakeAll(std::atomic<uint32_t>* addr) {
  LIVEGRAPH_TSAN_RELEASE(addr);  // pairs with the ACQUIRE in FutexWait
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(addr), FUTEX_WAKE_PRIVATE,
          INT32_MAX, nullptr, nullptr, 0);
}

class FutexLock {
 public:
  FutexLock() : state_(0) {}

  /// Attempts to acquire within `timeout_ns`; returns false on timeout.
  /// A zero timeout degenerates to try-lock.
  bool TryLockFor(int64_t timeout_ns) {
    uint32_t expected = 0;
    if (state_.compare_exchange_strong(expected, 1,
                                       std::memory_order_acquire)) {
      LIVEGRAPH_TSAN_ACQUIRE(&state_);  // pairs with Unlock's RELEASE
      return true;
    }
    if (timeout_ns <= 0) return false;
    timespec deadline = DeadlineAfter(timeout_ns);
    // Announce contention, then sleep until woken or timed out.
    while (true) {
      // relaxed: a pure hint — acquisition ordering comes solely from the
      // acquire CAS below; a stale read here only costs one loop turn.
      expected = state_.load(std::memory_order_relaxed);
      if (expected == 0) {
        if (state_.compare_exchange_weak(expected, 2,
                                         std::memory_order_acquire)) {
          LIVEGRAPH_TSAN_ACQUIRE(&state_);  // pairs with Unlock's RELEASE
          return true;
        }
        continue;
      }
      if (expected == 1 &&
          !state_.compare_exchange_weak(expected, 2,
                                        std::memory_order_relaxed)) {
        continue;
      }
      timespec remaining;
      if (!RemainingUntil(deadline, &remaining)) return false;
      long rc = syscall(SYS_futex, reinterpret_cast<uint32_t*>(&state_),
                        FUTEX_WAIT_PRIVATE, 2, &remaining, nullptr, 0);
      if (rc != 0 && errno == ETIMEDOUT) return false;
      // EAGAIN (value changed) or spurious wake: retry the CAS loop. No
      // acquire annotation here — waking does not mean owning; the HB edge
      // into the critical section is the acquire CAS above.
    }
  }

  void Unlock() {
    // The release exchange is the critical-section-exit HB edge; annotate
    // it for TSan so the futex hand-off below stays paired even if the
    // backing order is ever weakened.
    LIVEGRAPH_TSAN_RELEASE(&state_);
    if (state_.exchange(0, std::memory_order_release) == 2) {
      FutexWakeOne(&state_);
    }
  }

  bool IsLocked() const {
    // relaxed: diagnostics only (tests, stats) — never used to order
    // access to data the lock protects.
    return state_.load(std::memory_order_relaxed) != 0;
  }

 private:
  static timespec DeadlineAfter(int64_t ns) {
    timespec now;
    clock_gettime(CLOCK_MONOTONIC, &now);
    timespec d;
    d.tv_sec = now.tv_sec + ns / 1'000'000'000;
    d.tv_nsec = now.tv_nsec + ns % 1'000'000'000;
    if (d.tv_nsec >= 1'000'000'000) {
      d.tv_sec += 1;
      d.tv_nsec -= 1'000'000'000;
    }
    return d;
  }

  static bool RemainingUntil(const timespec& deadline, timespec* out) {
    timespec now;
    clock_gettime(CLOCK_MONOTONIC, &now);
    int64_t ns = (deadline.tv_sec - now.tv_sec) * 1'000'000'000 +
                 (deadline.tv_nsec - now.tv_nsec);
    if (ns <= 0) return false;
    out->tv_sec = ns / 1'000'000'000;
    out->tv_nsec = ns % 1'000'000'000;
    return true;
  }

  std::atomic<uint32_t> state_;
};

static_assert(sizeof(FutexLock) == 4, "futex array entries must be 4 bytes");

/// Test-and-test-and-set spinlock with timeout — the alternative design the
/// paper rejected for write-heavy contention; kept for ablation benches.
class SpinLock {
 public:
  SpinLock() : state_(0) {}

  bool TryLockFor(int64_t timeout_ns) {
    int spins = 0;
    timespec deadline{};
    bool have_deadline = false;
    while (true) {
      uint32_t expected = 0;
      if (state_.compare_exchange_weak(expected, 1,
                                       std::memory_order_acquire)) {
        return true;
      }
      while (state_.load(std::memory_order_relaxed) != 0) {
        if (++spins > 1024) {
          if (!have_deadline) {
            clock_gettime(CLOCK_MONOTONIC, &deadline);
            deadline.tv_sec += timeout_ns / 1'000'000'000;
            deadline.tv_nsec += timeout_ns % 1'000'000'000;
            if (deadline.tv_nsec >= 1'000'000'000) {
              deadline.tv_sec += 1;
              deadline.tv_nsec -= 1'000'000'000;
            }
            have_deadline = true;
          }
          timespec now;
          clock_gettime(CLOCK_MONOTONIC, &now);
          if (now.tv_sec > deadline.tv_sec ||
              (now.tv_sec == deadline.tv_sec &&
               now.tv_nsec >= deadline.tv_nsec)) {
            return false;
          }
          sched_yield();
        }
      }
    }
  }

  void Unlock() { state_.store(0, std::memory_order_release); }

 private:
  std::atomic<uint32_t> state_;
};

static_assert(sizeof(SpinLock) == 4, "spinlock entries must be 4 bytes");

}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_FUTEX_LOCK_H_
