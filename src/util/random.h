// Fast deterministic PRNG used by workload generators and property tests.
#ifndef LIVEGRAPH_UTIL_RANDOM_H_
#define LIVEGRAPH_UTIL_RANDOM_H_

#include <cstdint>

namespace livegraph {

/// xorshift128+ generator: fast, decent quality, fully deterministic for a
/// given seed — required so benchmark runs and property tests are
/// reproducible across machines.
class Xorshift {
 public:
  explicit Xorshift(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding avoids weak all-zero-ish states.
    uint64_t z = seed;
    for (int i = 0; i < 2; ++i) {
      z += 0x9E3779B97F4A7C15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      state_[i] = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    uint64_t s1 = state_[0];
    const uint64_t s0 = state_[1];
    state_[0] = s0;
    s1 ^= s1 << 23;
    state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    return state_[1] + s0;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_[2];
};

}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_RANDOM_H_
