#include "util/log.h"

#include <cinttypes>
#include <cstdio>
#include <ctime>

#include "util/metrics.h"

namespace livegraph::logging {

namespace {

void AppendKey(std::string* line, std::string_view key) {
  *line += ' ';
  line->append(key.data(), key.size());
  *line += '=';
}

bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '=' || c == '"' || c == '\n') return true;
  }
  return false;
}

}  // namespace

LogLine::LogLine(std::string_view event) {
  timespec wall{};
  clock_gettime(CLOCK_REALTIME, &wall);
  tm utc{};
  gmtime_r(&wall.tv_sec, &utc);
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "ts=%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ mono_us=%" PRIu64,
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, wall.tv_nsec / 1'000'000,
                metrics::MonotonicNanos() / 1'000);
  line_ = buf;
  AppendKey(&line_, "event");
  line_.append(event.data(), event.size());
}

LogLine::~LogLine() {
  line_ += '\n';
  std::fwrite(line_.data(), 1, line_.size(), stderr);
  std::fflush(stderr);
}

LogLine& LogLine::Str(std::string_view key, std::string_view value) {
  AppendKey(&line_, key);
  if (NeedsQuoting(value)) {
    line_ += '"';
    for (char c : value) {
      if (c == '"' || c == '\\') line_ += '\\';
      line_ += c == '\n' ? ' ' : c;
    }
    line_ += '"';
  } else {
    line_.append(value.data(), value.size());
  }
  return *this;
}

LogLine& LogLine::I64(std::string_view key, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  AppendKey(&line_, key);
  line_ += buf;
  return *this;
}

LogLine& LogLine::U64(std::string_view key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  AppendKey(&line_, key);
  line_ += buf;
  return *this;
}

LogLine& LogLine::F64(std::string_view key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  AppendKey(&line_, key);
  line_ += buf;
  return *this;
}

LogLine& LogLine::Bool(std::string_view key, bool value) {
  AppendKey(&line_, key);
  line_ += value ? "true" : "false";
  return *this;
}

}  // namespace livegraph::logging
