#include "util/histogram.h"

#include <bit>
#include <cstddef>

namespace livegraph {

LatencyHistogram::LatencyHistogram()
    : buckets_(kBuckets, 0), count_(0), sum_(0.0) {}

int LatencyHistogram::BucketFor(uint64_t nanos) {
  if (nanos == 0) return 0;
  int exponent = 63 - std::countl_zero(nanos);
  int sub;
  if (exponent <= kSubBucketBits) {
    // Small values: identity-map into the first buckets.
    return static_cast<int>(nanos);
  }
  sub = static_cast<int>((nanos >> (exponent - kSubBucketBits)) &
                         ((1 << kSubBucketBits) - 1));
  int bucket = (exponent << kSubBucketBits) | sub;
  return bucket >= kBuckets ? kBuckets - 1 : bucket;
}

uint64_t LatencyHistogram::BucketUpperBound(int bucket) {
  int exponent = bucket >> kSubBucketBits;
  int sub = bucket & ((1 << kSubBucketBits) - 1);
  if (exponent <= kSubBucketBits) return static_cast<uint64_t>(bucket);
  uint64_t base = uint64_t{1} << exponent;
  uint64_t step = base >> kSubBucketBits;
  return base + step * (sub + 1) - 1;
}

void LatencyHistogram::Record(uint64_t nanos) {
  buckets_[BucketFor(nanos)]++;
  count_++;
  sum_ += static_cast<double>(nanos);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::MeanNanos() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t LatencyHistogram::PercentileNanos(double q) const {
  if (count_ == 0) return 0;
  auto target = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (target >= count_) target = count_ - 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

void LatencyHistogram::AddBucketCount(int bucket, uint64_t n,
                                      double sum_nanos) {
  if (bucket < 0 || bucket >= kBuckets || n == 0) return;
  buckets_[static_cast<size_t>(bucket)] += n;
  count_ += n;
  sum_ += sum_nanos;
}

void LatencyHistogram::Reset() {
  buckets_.assign(kBuckets, 0);
  count_ = 0;
  sum_ = 0.0;
}

}  // namespace livegraph
