// Debug invariant checker: LIVEGRAPH_DCHECK.
//
// Compiled into debug and sanitizer builds (CMake option LIVEGRAPH_DCHECK,
// ON by default except in Release): a failed check prints the condition,
// location and a formatted message, then aborts — loudly, so CI's
// sanitizer/TSan jobs catch protocol violations the moment they happen
// instead of as downstream corruption. In builds without
// LIVEGRAPH_DCHECK_ENABLED every check compiles to nothing (the condition
// is not evaluated), so hot paths are untouched.
//
// These checks guard the documented concurrency protocol, not user input:
//   * EpochDomain: GRE never exceeds GWE, epochs become visible densely in
//     issue order, MarkApplied countdowns never underflow (a double
//     MarkApplied would silently corrupt the visibility order).
//   * CommitManager: single-writer discipline on ring slots.
//   * Wal: exactly one appender at a time (the manager thread).
//   * Lock ranking (util/lock_rank.h): out-of-order lock acquisition
//     aborts instead of deadlocking once in a blue moon.
#ifndef LIVEGRAPH_UTIL_INVARIANT_H_
#define LIVEGRAPH_UTIL_INVARIANT_H_

#ifdef LIVEGRAPH_DCHECK_ENABLED

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace livegraph::internal {

[[noreturn]] inline void InvariantFailure(const char* file, int line,
                                          const char* condition,
                                          const char* format, ...) {
  std::fprintf(stderr, "LIVEGRAPH_DCHECK failed at %s:%d: %s\n  ", file, line,
               condition);
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace livegraph::internal

/// LIVEGRAPH_DCHECK(cond, "format", args...) — abort with a message when
/// `cond` is false. The message should name the protocol invariant that
/// broke, not restate the condition.
#define LIVEGRAPH_DCHECK(cond, ...)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::livegraph::internal::InvariantFailure(__FILE__, __LINE__, #cond, \
                                              __VA_ARGS__);             \
    }                                                                   \
  } while (false)

#else  // !LIVEGRAPH_DCHECK_ENABLED

// Disabled: the condition is not evaluated (it may be racy-but-monotone
// diagnostics too expensive or too strict for production ordering).
#define LIVEGRAPH_DCHECK(cond, ...) \
  do {                              \
  } while (false)

#endif  // LIVEGRAPH_DCHECK_ENABLED

#endif  // LIVEGRAPH_UTIL_INVARIANT_H_
