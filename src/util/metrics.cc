#include "util/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <utility>

#include "util/build_info.h"

namespace livegraph::metrics {

uint64_t MonotonicNanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

uint64_t WallUnixMicros() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec) / 1'000ull;
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(Unit unit) : unit_(unit) {
  for (Stripe& stripe : stripes_) {
    stripe.buckets = std::make_unique<std::atomic<uint64_t>[]>(
        LatencyHistogram::kBuckets);
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
      stripe.buckets[i].store(0, std::memory_order_relaxed);
  }
}

namespace {

struct MergedBuckets {
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  uint64_t sum = 0;
};

uint64_t QuantileFromBuckets(const MergedBuckets& merged, double q) {
  if (merged.count == 0) return 0;
  auto target = static_cast<uint64_t>(q * static_cast<double>(merged.count));
  if (target >= merged.count) target = merged.count - 1;
  uint64_t seen = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    seen += merged.buckets[i];
    if (seen > target) return LatencyHistogram::BucketUpperBound(i);
  }
  return LatencyHistogram::BucketUpperBound(LatencyHistogram::kBuckets - 1);
}

}  // namespace

HistogramSample Histogram::Sample(std::string name) const {
  MergedBuckets merged;
  merged.buckets.assign(LatencyHistogram::kBuckets, 0);
  for (const Stripe& stripe : stripes_) {
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      uint64_t n = stripe.buckets[i].load(std::memory_order_relaxed);
      merged.buckets[i] += n;
      merged.count += n;
    }
    merged.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  HistogramSample sample;
  sample.name = std::move(name);
  sample.unit = unit_;
  sample.count = merged.count;
  sample.sum = static_cast<double>(merged.sum);
  sample.p50 = QuantileFromBuckets(merged, 0.50);
  sample.p90 = QuantileFromBuckets(merged, 0.90);
  sample.p99 = QuantileFromBuckets(merged, 0.99);
  sample.p999 = QuantileFromBuckets(merged, 0.999);
  return sample;
}

void Histogram::CollectInto(LatencyHistogram* out) const {
  MergedBuckets merged;
  merged.buckets.assign(LatencyHistogram::kBuckets, 0);
  for (const Stripe& stripe : stripes_) {
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
      merged.buckets[i] += stripe.buckets[i].load(std::memory_order_relaxed);
    merged.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  // Attribute the exact cross-stripe sum to the first populated bucket so
  // the reconstructed mean is exact; per-bucket counts carry the shape.
  bool sum_attached = false;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (merged.buckets[i] == 0) continue;
    out->AddBucketCount(
        i, merged.buckets[i],
        sum_attached ? 0.0 : static_cast<double>(merged.sum));
    sum_attached = true;
  }
}

// ---------------------------------------------------------------------------
// SlowOpRing

SlowOpRing& SlowOpRing::Instance() {
  static SlowOpRing ring;
  return ring;
}

void SlowOpRing::Record(SlowOp op) {
  if (op.wall_unix_micros == 0) op.wall_unix_micros = WallUnixMicros();
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(op));
  } else {
    ring_[next_] = std::move(op);
    next_ = (next_ + 1) % kCapacity;
  }
}

std::vector<SlowOp> SlowOpRing::Snapshot(uint64_t* total_recorded) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (total_recorded != nullptr) *total_recorded = recorded_;
  std::vector<SlowOp> out;
  out.reserve(ring_.size());
  // Oldest first: when the ring has wrapped, next_ points at the oldest.
  for (size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

void SlowOpRing::DumpToStderr() const {
  uint64_t total = 0;
  std::vector<SlowOp> ops = Snapshot(&total);
  std::fprintf(stderr,
               "event=slowop_dump threshold_ms=%.3f ring=%zu total=%" PRIu64
               "\n",
               static_cast<double>(threshold_nanos()) / 1e6, ops.size(),
               total);
  for (const SlowOp& op : ops) {
    std::fprintf(stderr,
                 "event=slowop ts_us=%" PRIu64
                 " name=%s shard=%d epoch=%" PRId64 " total_ms=%.3f"
                 " s0_ms=%.3f s1_ms=%.3f s2_ms=%.3f s3_ms=%.3f\n",
                 op.wall_unix_micros, op.name.c_str(), op.shard, op.epoch,
                 static_cast<double>(op.total_nanos) / 1e6,
                 static_cast<double>(op.stage_nanos[0]) / 1e6,
                 static_cast<double>(op.stage_nanos[1]) / 1e6,
                 static_cast<double>(op.stage_nanos[2]) / 1e6,
                 static_cast<double>(op.stage_nanos[3]) / 1e6);
  }
}

void SlowOpRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::Instance() {
  static Registry* registry = new Registry();  // leaked: outlive all users
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name, Unit unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(unit))
             .first;
  }
  return *it->second;
}

uint64_t Registry::AddProbe(std::function<void()> probe) {
  std::lock_guard<std::mutex> lock(probe_mu_);
  uint64_t id = next_probe_id_++;
  probes_.emplace(id, std::move(probe));
  return id;
}

void Registry::RemoveProbe(uint64_t id) {
  std::lock_guard<std::mutex> lock(probe_mu_);
  probes_.erase(id);
}

Snapshot Registry::Collect() {
  Snapshot snapshot;
  snapshot.mono_nanos = MonotonicNanos();
  snapshot.wall_unix_micros = WallUnixMicros();
  snapshot.build_info = BuildInfoLabels();
  {
    // Probes run under probe_mu_ (not mu_) so they may not re-enter the
    // registry but RemoveProbe() can safely block out a mid-flight
    // Collect() from destructors.
    std::lock_guard<std::mutex> probe_lock(probe_mu_);
    for (auto& [id, probe] : probes_) probe();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_)
      snapshot.counters.emplace_back(name, counter->Value());
    snapshot.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_)
      snapshot.gauges.emplace_back(name, gauge->Value());
    snapshot.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_)
      snapshot.histograms.push_back(histogram->Sample(name));
  }
  snapshot.slow_ops = SlowOpRing::Instance().Snapshot(&snapshot.slow_ops_total);
  return snapshot;
}

uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

int64_t Snapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return v;
  return 0;
}

const HistogramSample* Snapshot::histogram(std::string_view name) const {
  for (const HistogramSample& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Build info + Prometheus exposition

std::string BuildInfoLabels() {
  std::string labels = "sha=\"";
  labels += kBuildGitSha;
  labels += "\",type=\"";
  labels += kBuildType;
  labels += "\",flags=\"";
  labels += kBuildFlags;
  labels += "\"";
  return labels;
}

namespace {

/// Splits a registered name into base and brace-less label list:
/// "a_total{op=\"X\"}" -> {"a_total", "op=\"X\""}.
void SplitName(const std::string& name, std::string* base,
               std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1);
  if (!labels->empty() && labels->back() == '}') labels->pop_back();
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

const char* UnitSuffix(Unit unit) {
  switch (unit) {
    case Unit::kNanos:
      return "_seconds";
    case Unit::kBytes:
      return "_bytes";
    case Unit::kCount:
      return "";
  }
  return "";
}

double ScaleValue(Unit unit, double raw) {
  return unit == Unit::kNanos ? raw / 1e9 : raw;
}

struct Family {
  const char* type = "untyped";
  std::vector<std::string> lines;
};

void EmitSample(Family* family, const std::string& metric,
                const std::string& labels, double value) {
  std::string line = metric;
  if (!labels.empty()) {
    line += '{';
    line += labels;
    line += '}';
  }
  line += ' ';
  AppendDouble(&line, value);
  line += '\n';
  family->lines.push_back(std::move(line));
}

}  // namespace

void RenderPrometheus(const Snapshot& snapshot, std::string* out) {
  // Group samples by family so each family gets exactly one # TYPE line
  // with all of its samples contiguous, as the text format requires.
  std::map<std::string, Family> families;

  for (const auto& [name, value] : snapshot.counters) {
    std::string base;
    std::string labels;
    SplitName(name, &base, &labels);
    Family& family = families[base];
    family.type = "counter";
    EmitSample(&family, base, labels, static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string base;
    std::string labels;
    SplitName(name, &base, &labels);
    Family& family = families[base];
    family.type = "gauge";
    EmitSample(&family, base, labels, static_cast<double>(value));
  }
  for (const HistogramSample& h : snapshot.histograms) {
    std::string base;
    std::string labels;
    SplitName(h.name, &base, &labels);
    base += UnitSuffix(h.unit);
    Family& family = families[base];
    family.type = "summary";
    const std::pair<const char*, uint64_t> quantiles[] = {
        {"0.5", h.p50}, {"0.9", h.p90}, {"0.99", h.p99}, {"0.999", h.p999}};
    for (const auto& [q, v] : quantiles) {
      std::string qlabels = labels;
      if (!qlabels.empty()) qlabels += ',';
      qlabels += "quantile=\"";
      qlabels += q;
      qlabels += '"';
      EmitSample(&family, base, qlabels,
                 ScaleValue(h.unit, static_cast<double>(v)));
    }
    EmitSample(&family, base + "_sum", labels, ScaleValue(h.unit, h.sum));
    EmitSample(&family, base + "_count", labels,
               static_cast<double>(h.count));
  }
  if (!snapshot.build_info.empty()) {
    Family& family = families["livegraph_build_info"];
    family.type = "gauge";
    EmitSample(&family, "livegraph_build_info", snapshot.build_info, 1.0);
  }
  {
    Family& family = families["livegraph_slowops_recorded_total"];
    family.type = "counter";
    EmitSample(&family, "livegraph_slowops_recorded_total", "",
               static_cast<double>(snapshot.slow_ops_total));
  }
  {
    Family& family = families["livegraph_snapshot_wall_unix_micros"];
    family.type = "gauge";
    std::string line = "livegraph_snapshot_wall_unix_micros ";
    AppendU64(&line, snapshot.wall_unix_micros);
    line += '\n';
    family.lines.push_back(std::move(line));
  }

  for (const auto& [base, family] : families) {
    *out += "# TYPE ";
    *out += base;
    *out += ' ';
    *out += family.type;
    *out += '\n';
    for (const std::string& line : family.lines) *out += line;
  }
}

}  // namespace livegraph::metrics
