// Named-failpoint registry for deterministic fault injection.
//
// A failpoint is a named site in the code (e.g. "wal.fdatasync") where a
// test or operator can arrange for an error, a torn write, a delay, or a
// process crash to happen — deterministically, without mocking the
// filesystem or the network. Sites are threaded through the durability
// path (WAL, checkpoints, manifests, REPLICA_STATE), the network layer,
// and the replication push loop; docs/FAULTS.md catalogs every point.
//
// Spec grammar (env var LIVEGRAPH_FAULTS or --faults= on the server):
//
//   spec     := point '=' kind [':' param] ['@' trigger (',' trigger)*]
//               (';' spec)*
//   kind     := 'error' ':' (ENOSPC|EIO|EPIPE|EDQUOT|<int>)
//             | 'short' [':' bytes]      -- truncate the I/O to `bytes`
//             | 'delay' ':' millis      -- sleep, then proceed normally
//             | 'crash'                 -- ::_exit(42) at the point
//   trigger  := 'every' '=' N           -- fire on every Nth hit
//             | 'after' '=' N           -- fire on hits > N
//             | 'once'                  -- fire on exactly the first match
//             | 'prob' '=' P            -- fire with probability P (0..1],
//                                          deterministic per-point PRNG
//
// Examples:
//   wal.append=error:ENOSPC
//   wal.fdatasync=error:EIO@after=3,once
//   net.send=short:4@every=7;net.recv=delay:50@prob=0.1
//   ckpt.sync=crash
//
// Compiled to zero overhead when the LIVEGRAPH_FAULTS CMake option is off:
// LIVEGRAPH_FAULT(point) folds to a constexpr no-action value, Configure
// and friends become empty inlines, and no registry code is linked. The
// API is identical in both modes so callers (main.cc, tests) never need
// their own #ifdefs.
#ifndef LIVEGRAPH_UTIL_FAULT_INJECTION_H_
#define LIVEGRAPH_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace livegraph {
namespace faults {

/// What a triggered failpoint asks the call site to do. Delay and crash
/// are handled inside Evaluate (the site never sees them); error and
/// short-write come back here because only the site knows how to fail
/// its particular syscall or truncate its particular buffer.
struct Action {
  enum class Kind : uint8_t { kNone = 0, kError, kShortWrite };
  Kind kind = Kind::kNone;
  /// For kError: the errno to inject (ENOSPC, EIO, EPIPE, ...).
  int err = 0;
  /// For kShortWrite: byte budget for the truncated I/O.
  uint64_t arg = 0;

  explicit operator bool() const { return kind != Kind::kNone; }
};

#if defined(LIVEGRAPH_FAULTS_ENABLED)

/// Parses and installs a spec, replacing the previous configuration.
/// Returns false (with a message in *error when non-null) on a malformed
/// spec; the previous configuration is left untouched in that case.
bool Configure(std::string_view spec, std::string* error = nullptr);

/// Installs the spec from the LIVEGRAPH_FAULTS environment variable, if
/// set. Called once at process start (server main, test main).
void ConfigureFromEnv();

/// Removes every configured failpoint.
void Clear();

/// True when at least one failpoint is configured (single relaxed atomic
/// load — the fast path for every LIVEGRAPH_FAULT hit).
bool Enabled();

/// Times `point` has been evaluated (hit), whether or not it fired.
uint64_t HitCount(std::string_view point);

/// Evaluates `point`: counts the hit, runs the trigger, and either
/// returns the action for the site to apply (error/short) or handles it
/// internally (delay sleeps here; crash calls ::_exit(42) and never
/// returns).
Action Evaluate(std::string_view point);

/// Convenience used at every instrumented site.
inline Action Hit(std::string_view point) {
  if (!Enabled()) return Action{};
  return Evaluate(point);
}

#define LIVEGRAPH_FAULT(point) ::livegraph::faults::Hit(point)

#else  // !LIVEGRAPH_FAULTS_ENABLED

inline bool Configure(std::string_view, std::string* = nullptr) {
  return true;
}
inline void ConfigureFromEnv() {}
inline void Clear() {}
inline bool Enabled() { return false; }
inline uint64_t HitCount(std::string_view) { return 0; }
inline Action Evaluate(std::string_view) { return Action{}; }

#define LIVEGRAPH_FAULT(point) (::livegraph::faults::Action{})

#endif  // LIVEGRAPH_FAULTS_ENABLED

}  // namespace faults
}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_FAULT_INJECTION_H_
