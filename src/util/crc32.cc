#include "util/crc32.h"

#include <array>

namespace livegraph {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected CRC32C polynomial

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t length, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& table = Table();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < length; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace livegraph
