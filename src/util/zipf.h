// Zipf / power-law samplers used to pick workload start vertices (§2.1:
// "each start vertex is selected randomly under a power-law distribution").
#ifndef LIVEGRAPH_UTIL_ZIPF_H_
#define LIVEGRAPH_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace livegraph {

/// Zipfian sampler over [0, n) with exponent theta, using the rejection
/// method of Gray et al. (same approach as YCSB's ZipfianGenerator). O(1)
/// per sample after O(1) setup; no O(n) tables.
class ZipfSampler {
 public:
  /// @param n      domain size, must be >= 1.
  /// @param theta  skew in (0, 1); 0.99 approximates social-graph skew.
  ZipfSampler(uint64_t n, double theta = 0.99);

  /// Draw one sample in [0, n). Hot items are the small ranks.
  uint64_t Sample(Xorshift& rng) const;

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Maps Zipf ranks onto vertex IDs with a fixed pseudo-random permutation so
/// hot vertices are spread across the ID space (avoids accidentally
/// benchmarking only the lowest IDs, which some structures lay out
/// adjacently).
class ScrambledZipf {
 public:
  ScrambledZipf(uint64_t n, double theta = 0.99, uint64_t seed = 42);

  uint64_t Sample(Xorshift& rng) const;

 private:
  ZipfSampler zipf_;
  uint64_t n_;
  uint64_t multiplier_;  // odd multiplier => bijection mod 2^64, folded to n
};

}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_ZIPF_H_
