// Lock-rank table: runtime lock-order-inversion detection (debug builds).
//
// The engine's blocking primitives form a small set whose nesting order is
// part of the concurrency protocol but was previously only prose in
// docs/DESIGN.md. This header makes the order machine-checked: every
// acquisition notes its rank on a thread-local ledger, and acquiring a rank
// at or below the highest rank already held aborts through
// LIVEGRAPH_DCHECK — a deterministic crash at the inversion site instead of
// a once-a-month deadlock in production.
//
// The rank order (lower acquires first; a thread may only acquire strictly
// increasing ranks):
//
//   kCompactionPass   Graph::compaction_pass_mu_ — serializes manual and
//                     background compaction passes. Outermost: a pass then
//                     takes vertex locks and dirty sets below it.
//   kVertexLock       per-vertex futex locks (§5). SAME-RANK REACQUISITION
//                     IS ALLOWED: transactions lock many vertices in
//                     arbitrary (data-dependent) order, and deadlock among
//                     them is broken by the paper's timeout-and-rollback,
//                     not by ordering. The rank table therefore only
//                     asserts vertex locks are never taken after anything
//                     ranked above them.
//   kCommitCoordinator The multi-shard commit section of a ShardedWriteTxn
//                     (epoch acquire + CommitAt fan-out + visibility wait).
//                     Entered while the work phase's vertex locks are still
//                     held — hence above kVertexLock — and must never
//                     itself acquire new vertex locks (writes after commit
//                     start would escape the WAL record).
//   kDirtySet         WorkerSlot::dirty_mu — leaf mutex guarding a slot's
//                     dirty-vertex list; taken inside commit (MarkDirty)
//                     and inside a compaction pass while a vertex lock is
//                     held (the contended-vertex requeue).
//   kWalAppend        Wal::AppendBatch — not a mutex but a single-writer
//                     section owned by the commit-manager thread, which
//                     holds nothing else; ranked near-last so any future
//                     code that tried to append while holding engine locks
//                     trips the checker.
//   kReplicationLog   ReplicationLog::mu_ — guards the primary's in-memory
//                     replication buffer. Acquired by the WAL durable-sink
//                     tee INSIDE the append section (hence above
//                     kWalAppend) and by subscriber threads that hold
//                     nothing; it is a leaf — nothing is acquired under it.
//
// All of it compiles away without LIVEGRAPH_DCHECK_ENABLED.
#ifndef LIVEGRAPH_UTIL_LOCK_RANK_H_
#define LIVEGRAPH_UTIL_LOCK_RANK_H_

#include <cstdint>

#include "util/invariant.h"

namespace livegraph {

enum class LockRank : uint8_t {
  kNone = 0,
  kCompactionPass = 1,
  kVertexLock = 2,
  kCommitCoordinator = 3,
  kDirtySet = 4,
  kWalAppend = 5,
  kReplicationLog = 6,
};

#ifdef LIVEGRAPH_DCHECK_ENABLED

namespace lock_rank {

inline constexpr int kNumRanks = 7;

/// Per-thread count of held locks at each rank.
struct ThreadLedger {
  uint32_t held[kNumRanks] = {};
};

inline ThreadLedger& Ledger() {
  thread_local ThreadLedger ledger;
  return ledger;
}

inline const char* Name(LockRank rank) {
  switch (rank) {
    case LockRank::kNone: return "none";
    case LockRank::kCompactionPass: return "compaction-pass";
    case LockRank::kVertexLock: return "vertex-futex";
    case LockRank::kCommitCoordinator: return "commit-coordinator";
    case LockRank::kDirtySet: return "dirty-set";
    case LockRank::kWalAppend: return "wal-append";
    case LockRank::kReplicationLog: return "replication-log";
  }
  return "?";
}

/// Highest rank this thread currently holds (kNone when lock-free).
inline LockRank Highest() {
  ThreadLedger& ledger = Ledger();
  for (int r = kNumRanks - 1; r > 0; --r) {
    if (ledger.held[r] != 0) return static_cast<LockRank>(r);
  }
  return LockRank::kNone;
}

inline void NoteAcquire(LockRank rank) {
  LockRank highest = Highest();
  // Strictly increasing ranks, except vertex locks against themselves
  // (arbitrary-order acquisition with timeout-based deadlock recovery).
  bool ok = highest < rank ||
            (highest == rank && rank == LockRank::kVertexLock);
  LIVEGRAPH_DCHECK(ok,
                   "lock-order inversion: acquiring %s while holding %s "
                   "(see the rank table in util/lock_rank.h)",
                   Name(rank), Name(highest));
  ++Ledger().held[static_cast<int>(rank)];
}

inline void NoteRelease(LockRank rank) {
  uint32_t& held = Ledger().held[static_cast<int>(rank)];
  LIVEGRAPH_DCHECK(held != 0, "releasing %s that this thread does not hold",
                   Name(rank));
  --held;
}

/// Cross-thread hand-off of held locks. The futex vertex locks are not
/// thread-affine (any thread may Unlock a held word), and the reactor
/// server exploits that: a write transaction acquires its locks on an
/// event-loop thread but commits — and therefore releases them — on a
/// commit-worker thread. The ownership transfer is legal for the locks
/// themselves; only this per-thread ledger needs to be told, or the
/// worker's NoteRelease would fire "releasing a lock this thread does not
/// hold". Call NoteDetach(rank, n) on the old thread before the hand-off
/// and NoteAttach(rank, n) on the new thread before any release.
inline void NoteDetach(LockRank rank, uint32_t n) {
  uint32_t& held = Ledger().held[static_cast<int>(rank)];
  LIVEGRAPH_DCHECK(held >= n,
                   "detaching %u %s locks but this thread holds only %u",
                   n, Name(rank), held);
  held -= n;
}

inline void NoteAttach(LockRank rank, uint32_t n) {
  // Same admission rule as NoteAcquire: the receiving thread must not
  // already be inside a higher-ranked section (vertex locks may join
  // other vertex locks, as in NoteAcquire).
  if (n == 0) return;
  LockRank highest = Highest();
  bool ok = highest < rank ||
            (highest == rank && rank == LockRank::kVertexLock);
  LIVEGRAPH_DCHECK(ok,
                   "lock-order inversion: attaching %s while holding %s "
                   "(see the rank table in util/lock_rank.h)",
                   Name(rank), Name(highest));
  Ledger().held[static_cast<int>(rank)] += n;
}

}  // namespace lock_rank

/// RAII rank note for scoped sections (mutex guards, the WAL append
/// section, the multi-shard commit section).
class ScopedLockRank {
 public:
  explicit ScopedLockRank(LockRank rank) : rank_(rank) {
    lock_rank::NoteAcquire(rank_);
  }
  ~ScopedLockRank() { lock_rank::NoteRelease(rank_); }
  ScopedLockRank(const ScopedLockRank&) = delete;
  ScopedLockRank& operator=(const ScopedLockRank&) = delete;

 private:
  LockRank rank_;
};

#define LIVEGRAPH_LOCK_RANK_ACQUIRE(rank) \
  ::livegraph::lock_rank::NoteAcquire(rank)
#define LIVEGRAPH_LOCK_RANK_RELEASE(rank) \
  ::livegraph::lock_rank::NoteRelease(rank)
#define LIVEGRAPH_LOCK_RANK_DETACH(rank, n) \
  ::livegraph::lock_rank::NoteDetach(rank, n)
#define LIVEGRAPH_LOCK_RANK_ATTACH(rank, n) \
  ::livegraph::lock_rank::NoteAttach(rank, n)
#define LIVEGRAPH_LOCK_RANK_CONCAT_INNER(a, b) a##b
#define LIVEGRAPH_LOCK_RANK_CONCAT(a, b) LIVEGRAPH_LOCK_RANK_CONCAT_INNER(a, b)
#define LIVEGRAPH_SCOPED_LOCK_RANK(rank)                                  \
  ::livegraph::ScopedLockRank LIVEGRAPH_LOCK_RANK_CONCAT(                 \
      livegraph_scoped_lock_rank_, __LINE__)(rank)

#else  // !LIVEGRAPH_DCHECK_ENABLED

#define LIVEGRAPH_LOCK_RANK_ACQUIRE(rank) ((void)0)
#define LIVEGRAPH_LOCK_RANK_RELEASE(rank) ((void)0)
#define LIVEGRAPH_LOCK_RANK_DETACH(rank, n) ((void)0)
#define LIVEGRAPH_LOCK_RANK_ATTACH(rank, n) ((void)0)
#define LIVEGRAPH_SCOPED_LOCK_RANK(rank) ((void)0)

#endif  // LIVEGRAPH_DCHECK_ENABLED

}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_LOCK_RANK_H_
