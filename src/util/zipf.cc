#include "util/zipf.h"

#include <cmath>

namespace livegraph {

double ZipfSampler::Zeta(uint64_t n, double theta) {
  // Exact harmonic sum for small n; for large n switch to the standard
  // integral approximation so construction stays O(1)-ish.
  if (n <= 1'000'000) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
    return sum;
  }
  double head = 0.0;
  const uint64_t kHead = 1'000'000;
  for (uint64_t i = 1; i <= kHead; ++i) head += 1.0 / std::pow(double(i), theta);
  // Integral of x^-theta from kHead to n.
  double tail = (std::pow(double(n), 1.0 - theta) -
                 std::pow(double(kHead), 1.0 - theta)) /
                (1.0 - theta);
  return head + tail;
}

ZipfSampler::ZipfSampler(uint64_t n, double theta)
    : n_(n < 1 ? 1 : n), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfSampler::Sample(Xorshift& rng) const {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

ScrambledZipf::ScrambledZipf(uint64_t n, double theta, uint64_t seed)
    : zipf_(n, theta), n_(n < 1 ? 1 : n) {
  Xorshift rng(seed);
  multiplier_ = rng.Next() | 1;  // odd => invertible mod 2^64
}

uint64_t ScrambledZipf::Sample(Xorshift& rng) const {
  uint64_t rank = zipf_.Sample(rng);
  // Fibonacci-style hash keeps the mapping a (near-)uniform spread. Using
  // the high bits of the product avoids modulo bias clustering.
  unsigned __int128 prod =
      static_cast<unsigned __int128>(rank * multiplier_ + 0x9E3779B97F4A7C15ull) *
      n_;
  return static_cast<uint64_t>(prod >> 64);
}

}  // namespace livegraph
