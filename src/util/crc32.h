// CRC32C checksums guarding WAL records and checkpoint files.
#ifndef LIVEGRAPH_UTIL_CRC32_H_
#define LIVEGRAPH_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace livegraph {

/// CRC32C (Castagnoli polynomial), software slice-by-1 implementation.
/// Used for torn-write detection on WAL records (§5 persist phase) and
/// checkpoint integrity.
uint32_t Crc32c(const void* data, size_t length, uint32_t seed = 0);

}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_CRC32_H_
