#include "util/fault_injection.h"

#if defined(LIVEGRAPH_FAULTS_ENABLED)

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace livegraph {
namespace faults {

namespace {

struct Point {
  Action::Kind kind = Action::Kind::kNone;
  bool crash = false;
  bool delay = false;
  int err = 0;
  uint64_t arg = 0;        // short-write byte budget or delay millis
  // Triggers (all must pass for the point to fire).
  uint64_t every = 0;      // fire on hits where hit % every == 0
  uint64_t after = 0;      // fire only on hits > after
  bool once = false;       // disarm after the first firing
  double prob = 0.0;       // 0 disables the probabilistic gate
  // State.
  uint64_t hits = 0;
  bool fired_once = false;
  uint64_t prng = 0;       // per-point deterministic xorshift state
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point, std::less<>> points;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

std::atomic<bool> g_enabled{false};

/// xorshift64*: deterministic, seeded from the point name, good enough
/// for prob= gates (this is test machinery, not cryptography).
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

uint64_t SeedFromName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h != 0 ? h : 1;
}

bool ParseErrno(std::string_view text, int* out) {
  if (text == "ENOSPC") { *out = ENOSPC; return true; }
  if (text == "EIO") { *out = EIO; return true; }
  if (text == "EPIPE") { *out = EPIPE; return true; }
  if (text == "EDQUOT") { *out = EDQUOT; return true; }
  int value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (text.empty() || value <= 0) return false;
  *out = value;
  return true;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseProb(std::string_view text, double* out) {
  // Accept "0.1", "1", ".5" — no locale, no exponent.
  if (text.empty()) return false;
  double value = 0.0;
  double scale = 0.1;
  bool in_frac = false;
  for (char c : text) {
    if (c == '.') {
      if (in_frac) return false;
      in_frac = true;
      continue;
    }
    if (c < '0' || c > '9') return false;
    if (in_frac) {
      value += (c - '0') * scale;
      scale /= 10.0;
    } else {
      value = value * 10.0 + (c - '0');
    }
  }
  if (value <= 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Parses one `point=kind[:param][@trigger,...]` clause into (*name, *p).
bool ParseClause(std::string_view clause, std::string* name, Point* p,
                 std::string* error) {
  size_t eq = clause.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Fail(error, "fault clause missing 'point=': " + std::string(clause));
  }
  *name = std::string(clause.substr(0, eq));
  std::string_view rest = clause.substr(eq + 1);

  std::string_view action = rest;
  std::string_view triggers;
  size_t at = rest.find('@');
  if (at != std::string_view::npos) {
    action = rest.substr(0, at);
    triggers = rest.substr(at + 1);
  }

  std::string_view kind = action;
  std::string_view param;
  size_t colon = action.find(':');
  if (colon != std::string_view::npos) {
    kind = action.substr(0, colon);
    param = action.substr(colon + 1);
  }

  if (kind == "error") {
    p->kind = Action::Kind::kError;
    if (!ParseErrno(param, &p->err)) {
      return Fail(error, "bad errno in fault clause: " + std::string(clause));
    }
  } else if (kind == "short") {
    p->kind = Action::Kind::kShortWrite;
    p->arg = 0;
    if (!param.empty() && !ParseU64(param, &p->arg)) {
      return Fail(error, "bad short-write bytes: " + std::string(clause));
    }
  } else if (kind == "delay") {
    p->delay = true;
    if (!ParseU64(param, &p->arg) || p->arg == 0) {
      return Fail(error, "bad delay millis: " + std::string(clause));
    }
  } else if (kind == "crash") {
    p->crash = true;
  } else {
    return Fail(error, "unknown fault kind: " + std::string(clause));
  }

  while (!triggers.empty()) {
    size_t comma = triggers.find(',');
    std::string_view trigger = triggers.substr(0, comma);
    triggers = comma == std::string_view::npos
                   ? std::string_view{}
                   : triggers.substr(comma + 1);
    if (trigger == "once") {
      p->once = true;
    } else if (trigger.substr(0, 6) == "every=") {
      if (!ParseU64(trigger.substr(6), &p->every) || p->every == 0) {
        return Fail(error, "bad every= trigger: " + std::string(clause));
      }
    } else if (trigger.substr(0, 6) == "after=") {
      if (!ParseU64(trigger.substr(6), &p->after)) {
        return Fail(error, "bad after= trigger: " + std::string(clause));
      }
    } else if (trigger.substr(0, 5) == "prob=") {
      if (!ParseProb(trigger.substr(5), &p->prob)) {
        return Fail(error, "bad prob= trigger: " + std::string(clause));
      }
    } else {
      return Fail(error, "unknown fault trigger: " + std::string(clause));
    }
  }

  p->prng = SeedFromName(*name);
  return true;
}

}  // namespace

bool Configure(std::string_view spec, std::string* error) {
  std::map<std::string, Point, std::less<>> parsed;
  std::string_view rest = spec;
  while (!rest.empty()) {
    size_t semi = rest.find(';');
    std::string_view clause = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (clause.empty()) continue;
    std::string name;
    Point point;
    if (!ParseClause(clause, &name, &point, error)) return false;
    parsed[name] = point;
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points = std::move(parsed);
  g_enabled.store(!r.points.empty(), std::memory_order_release);
  return true;
}

void ConfigureFromEnv() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): called once before threads start.
  const char* spec = std::getenv("LIVEGRAPH_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return;
  std::string error;
  if (!Configure(spec, &error)) {
    std::fprintf(stderr, "LIVEGRAPH_FAULTS: %s\n", error.c_str());
    std::abort();  // a typo'd chaos run must not silently run fault-free
  }
}

void Clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
  g_enabled.store(false, std::memory_order_release);
}

bool Enabled() { return g_enabled.load(std::memory_order_acquire); }

uint64_t HitCount(std::string_view point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(point);
  return it == r.points.end() ? 0 : it->second.hits;
}

Action Evaluate(std::string_view point) {
  bool crash = false;
  uint64_t delay_ms = 0;
  Action action;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.points.find(point);
    if (it == r.points.end()) return Action{};
    Point& p = it->second;
    ++p.hits;
    if (p.once && p.fired_once) return Action{};
    if (p.hits <= p.after) return Action{};
    if (p.every > 1 && (p.hits - p.after) % p.every != 0) return Action{};
    if (p.prob > 0.0) {
      const double roll =
          static_cast<double>(NextRand(&p.prng) >> 11) * 0x1.0p-53;
      if (roll >= p.prob) return Action{};
    }
    p.fired_once = true;
    crash = p.crash;
    delay_ms = p.delay ? p.arg : 0;
    if (p.kind != Action::Kind::kNone) {
      action.kind = p.kind;
      action.err = p.err;
      action.arg = p.arg;
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (crash) {
    // _exit, not abort: no atexit handlers, no core, no flushing — the
    // crash harness wants "power cut at this exact point" semantics.
    ::_exit(42);
  }
  return action;
}

}  // namespace faults
}  // namespace livegraph

#endif  // LIVEGRAPH_FAULTS_ENABLED
