// Blocked Bloom filter operating over caller-owned memory.
//
// The paper (§4) embeds a fixed-size Bloom filter in each TEL header region
// ("1/16 of the TEL for each block larger than 256 bytes") and uses a
// blocked implementation [Putze et al.] for cache efficiency: a key probes
// bits inside a single cache line, so a filter lookup costs one cache miss.
//
// The filter does not own its bits: TELs hand it a view into their block,
// so it is expressed as static operations over a byte span.
#ifndef LIVEGRAPH_UTIL_BLOOM_FILTER_H_
#define LIVEGRAPH_UTIL_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>

namespace livegraph {

class BloomFilter {
 public:
  /// Cache-line-sized probe block.
  static constexpr size_t kBlockBytes = 64;
  /// Bits set per key inside the chosen block.
  static constexpr int kProbes = 8;

  /// Insert `key` into the filter stored at [bits, bits+size_bytes).
  /// size_bytes must be a positive multiple of kBlockBytes.
  static void Insert(uint8_t* bits, size_t size_bytes, uint64_t key);

  /// Returns false only if `key` was definitely never inserted.
  static bool MayContain(const uint8_t* bits, size_t size_bytes, uint64_t key);

  /// Mixes a raw key into a well-distributed 64-bit hash.
  static uint64_t Hash(uint64_t key) {
    uint64_t x = key + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }
};

}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_BLOOM_FILTER_H_
