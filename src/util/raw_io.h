// Tiny raw-value stdio helpers shared by the checkpoint writers
// (core/checkpoint.cc, shard/sharded_store.cc) so the two manifest
// formats cannot drift on serialization mechanics.
#ifndef LIVEGRAPH_UTIL_RAW_IO_H_
#define LIVEGRAPH_UTIL_RAW_IO_H_

#include <cstdio>

namespace livegraph {

template <typename T>
inline void WriteRaw(std::FILE* f, const T& value) {
  std::fwrite(&value, sizeof(value), 1, f);
}

template <typename T>
inline bool ReadRaw(std::FILE* f, T* value) {
  return std::fread(value, sizeof(*value), 1, f) == 1;
}

}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_RAW_IO_H_
