// Log-bucketed latency histogram producing the mean/P99/P999 rows reported
// in the paper's LinkBench tables (Tables 3-6) and SNB latency table (9).
#ifndef LIVEGRAPH_UTIL_HISTOGRAM_H_
#define LIVEGRAPH_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace livegraph {

/// HDR-style histogram over nanosecond latencies. Buckets are
/// (exponent, mantissa-slice) pairs giving <= ~1.6% relative error, enough
/// resolution for P999 reporting while staying allocation-free on record.
class LatencyHistogram {
 public:
  /// Bucket scheme, shared with util/metrics.h so histogram metrics and
  /// bench reporting agree on resolution: 64 sub-buckets per power of two,
  /// identity-mapped below 2^6, <= ~1.6% relative error above.
  static constexpr int kSubBucketBits = 6;
  static constexpr int kBuckets = 64 * (1 << kSubBucketBits);

  static int BucketFor(uint64_t nanos);
  static uint64_t BucketUpperBound(int bucket);

  LatencyHistogram();

  /// Record one latency observation in nanoseconds.
  void Record(uint64_t nanos);

  /// Merge another histogram into this one (per-thread then merged).
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  double MeanNanos() const;
  /// q in (0,1]; e.g. 0.99 for P99, 0.999 for P999.
  uint64_t PercentileNanos(double q) const;

  double MeanMillis() const { return MeanNanos() / 1e6; }
  double PercentileMillis(double q) const {
    return double(PercentileNanos(q)) / 1e6;
  }

  /// Bulk-add `n` observations into `bucket` with aggregate sum
  /// `sum_nanos` — reconstructs a histogram from a sharded metrics
  /// snapshot without replaying individual samples.
  void AddBucketCount(int bucket, uint64_t n, double sum_nanos);

  void Reset();

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_;
  double sum_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_HISTOGRAM_H_
