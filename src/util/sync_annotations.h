// ThreadSanitizer happens-before annotations for futex-mediated edges.
//
// TSan models the C++ memory model through std::atomic operations, which
// covers almost all synchronization in this codebase. What it cannot see is
// a happens-before edge carried by a raw futex syscall: FUTEX_WAKE in one
// thread releasing a FUTEX_WAIT sleeper in another (util/futex_lock.h, the
// commit ring's durability/doorbell words, the epoch domain's visibility
// word). Today every such edge is *also* established by an atomic
// release/acquire or seq_cst pair on the same word — the futex is strictly
// a sleep/wake mechanism, never load-bearing for ordering — so TSan needs
// no help. These annotations pin that contract down explicitly:
//
//   * LIVEGRAPH_TSAN_RELEASE(addr) marks "everything this thread did so
//     far happens-before whoever acquires addr" — placed where a waker
//     publishes state and rings a futex word.
//   * LIVEGRAPH_TSAN_ACQUIRE(addr) marks the matching observation edge —
//     placed where a sleeper returns from a futex wait (or a spin loop) and
//     is about to rely on the waker's writes.
//
// If a future refactor ever weakens one of the backing atomics to relaxed,
// the annotation keeps the TSan suite green *only* along the annotated
// pairs — any unannotated path through the weakened atomic surfaces as a
// report, which is exactly the alarm we want.
//
// Under non-TSan builds everything compiles to nothing.
#ifndef LIVEGRAPH_UTIL_SYNC_ANNOTATIONS_H_
#define LIVEGRAPH_UTIL_SYNC_ANNOTATIONS_H_

#if defined(__SANITIZE_THREAD__)
// GCC defines __SANITIZE_THREAD__ under -fsanitize=thread.
#define LIVEGRAPH_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
// Clang spells the same thing via __has_feature.
#define LIVEGRAPH_TSAN_ENABLED 1
#endif
#endif

#ifdef LIVEGRAPH_TSAN_ENABLED

#include <sanitizer/tsan_interface.h>

/// Statement-level escape hatch: LIVEGRAPH_TSAN_ANNOTATE(stmt) compiles
/// `stmt` only under TSan (for annotation code that does not fit the two
/// edge macros below).
#define LIVEGRAPH_TSAN_ANNOTATE(stmt) stmt

#define LIVEGRAPH_TSAN_RELEASE(addr) \
  __tsan_release(const_cast<void*>(static_cast<const volatile void*>(addr)))
#define LIVEGRAPH_TSAN_ACQUIRE(addr) \
  __tsan_acquire(const_cast<void*>(static_cast<const volatile void*>(addr)))

#else  // !LIVEGRAPH_TSAN_ENABLED

#define LIVEGRAPH_TSAN_ANNOTATE(stmt)
#define LIVEGRAPH_TSAN_RELEASE(addr) ((void)0)
#define LIVEGRAPH_TSAN_ACQUIRE(addr) ((void)0)

#endif  // LIVEGRAPH_TSAN_ENABLED

#endif  // LIVEGRAPH_UTIL_SYNC_ANNOTATIONS_H_
