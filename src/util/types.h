// Core identifier and timestamp types shared by every LiveGraph module.
#ifndef LIVEGRAPH_UTIL_TYPES_H_
#define LIVEGRAPH_UTIL_TYPES_H_

#include <cstdint>
#include <limits>

namespace livegraph {

/// Vertex identifier. Vertex IDs are allocated contiguously from zero by
/// Graph::AddVertex (paper §4, "adding a new vertex first uses an atomic
/// fetch-and-add operation to get the vertex ID").
using vertex_t = int64_t;

/// Edge label. Each edge carries exactly one label; edges incident to the
/// same vertex are grouped into one adjacency list (TEL) per label (§3).
using label_t = uint16_t;

/// Logical timestamp / epoch. Positive values are commit epochs handed out
/// by the transaction manager; negative values are `-TID` markers that make
/// in-flight updates private to their writing transaction (§5).
using timestamp_t = int64_t;

/// Offset of a block inside the block store's mmap region. Offsets are
/// stable across region growth, unlike raw pointers.
using block_ptr_t = uint64_t;

/// Sentinel for "no block". Zero, deliberately: index arrays and lock
/// tables live in zero-filled anonymous mmap pages, so "absent" needs no
/// initialization pass. Packed block references always carry an order
/// >= 6 in their top byte (see block_manager.h), so no real block ever
/// encodes to zero.
inline constexpr block_ptr_t kNullBlock = 0;

/// Sentinel for "no vertex".
inline constexpr vertex_t kNullVertex = -1;

/// Invalidation timestamp of a live edge entry ("NULL" in the paper's
/// notation). Chosen as +inf so the visibility test `read_ts < invalidation`
/// holds naturally for live entries.
inline constexpr timestamp_t kNullTimestamp =
    std::numeric_limits<timestamp_t>::max();

/// Epoch published in the reading-epoch table by workers with no ongoing
/// transaction; never blocks compaction.
inline constexpr timestamp_t kIdleEpoch =
    std::numeric_limits<timestamp_t>::max();

/// Operation status for non-throwing write paths. The paper's prototype
/// uses exceptions (`Timeout`, `RollbackExcept`); we surface the same
/// conditions as values, which keeps the hot path branch-predictable.
enum class Status {
  kOk = 0,
  /// Write-write conflict: the TEL/vertex was committed to by a transaction
  /// with a timestamp above this transaction's read epoch (§5, CT check).
  kConflict,
  /// Vertex lock acquisition timed out (deadlock-avoidance timeout, §5).
  kTimeout,
  kNotFound,
  /// The transaction was already aborted or committed.
  kNotActive,
  /// The store is unreachable (remote connection refused, reset, or torn
  /// down mid-operation). Not retryable within the same session: the
  /// caller must reconnect or fail over before re-running the transaction.
  kUnavailable,
  /// A configured capacity bound was exhausted (e.g. AddNode past
  /// GraphOptions::max_vertices). The session stays usable; retrying
  /// cannot succeed until the store is reconfigured.
  kOutOfRange,
  /// An I/O operation on the durable state (WAL append/sync, checkpoint
  /// write, manifest publish) failed. The store transitions to read-only
  /// degraded mode: reads keep serving the last durable epoch, writes are
  /// rejected with this status until the process restarts and recovers.
  kIOError,
  /// The durable medium ran out of space or quota (ENOSPC/EDQUOT).
  /// Degrades the store exactly like kIOError, but callers can distinguish
  /// "disk full" (operator can free space and restart) from hard I/O loss.
  kResourceExhausted,
};

/// Human-readable status name, for logs and test failure messages.
inline const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "Ok";
    case Status::kConflict: return "Conflict";
    case Status::kTimeout: return "Timeout";
    case Status::kNotFound: return "NotFound";
    case Status::kNotActive: return "NotActive";
    case Status::kUnavailable: return "Unavailable";
    case Status::kOutOfRange: return "OutOfRange";
    case Status::kIOError: return "IOError";
    case Status::kResourceExhausted: return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_TYPES_H_
