// Structured one-line key=value logging for the server binaries
// (docs/OBSERVABILITY.md). Not a general logging framework: the engine
// stays quiet; this is for lifecycle events (startup, shutdown, drain,
// degraded transitions) that operators grep and machines parse.
#ifndef LIVEGRAPH_UTIL_LOG_H_
#define LIVEGRAPH_UTIL_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace livegraph::logging {

/// Builder for one structured record:
///
///   ts=2026-08-08T12:34:56.789Z mono_us=123456 event=server.start \
///       engine=livegraph port=9271 ...
///
/// ts is wall clock (UTC, for correlation across hosts); mono_us is
/// CLOCK_MONOTONIC microseconds (for intra-process deltas across a wall
/// clock step). The record is emitted to stderr as a single write on
/// destruction, so concurrent lines never interleave mid-record. Values
/// containing spaces or '=' are double-quoted.
class LogLine {
 public:
  explicit LogLine(std::string_view event);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  LogLine& Str(std::string_view key, std::string_view value);
  LogLine& I64(std::string_view key, int64_t value);
  LogLine& U64(std::string_view key, uint64_t value);
  LogLine& F64(std::string_view key, double value);
  LogLine& Bool(std::string_view key, bool value);

 private:
  std::string line_;
};

}  // namespace livegraph::logging

#endif  // LIVEGRAPH_UTIL_LOG_H_
