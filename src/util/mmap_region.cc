#include "util/mmap_region.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace livegraph {

namespace {

[[noreturn]] void Die(const char* what, const std::string& path) {
  const int err = errno;
  std::fprintf(stderr,
               "MmapRegion: %s failed: %s (errno %d, path %s)\n", what,
               std::strerror(err), err,
               path.empty() ? "<anonymous>" : path.c_str());
  std::abort();
}

size_t RoundUpToPage(size_t bytes) {
  static const size_t kPage = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return (bytes + kPage - 1) & ~(kPage - 1);
}

}  // namespace

MmapRegion MmapRegion::CreateAnonymous(size_t reserve_bytes) {
  MmapRegion region;
  region.reserved_ = RoundUpToPage(reserve_bytes);
  void* addr = mmap(nullptr, region.reserved_, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (addr == MAP_FAILED) Die("mmap(anonymous)", region.path_);
  region.base_ = static_cast<uint8_t*>(addr);
  region.committed_ = region.reserved_;  // lazily faulted by the kernel
  return region;
}

MmapRegion MmapRegion::CreateFileBacked(const std::string& path,
                                        size_t reserve_bytes) {
  MmapRegion region;
  region.path_ = path;
  region.reserved_ = RoundUpToPage(reserve_bytes);
  region.fd_ = open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (region.fd_ < 0) Die("open", path);
  off_t existing = lseek(region.fd_, 0, SEEK_END);
  if (existing < 0) Die("lseek", path);
  size_t initial = RoundUpToPage(
      std::max<size_t>(static_cast<size_t>(existing), 1 << 20));
  if (ftruncate(region.fd_, static_cast<off_t>(initial)) != 0)
    Die("ftruncate", path);
  void* addr = mmap(nullptr, region.reserved_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_NORESERVE, region.fd_, 0);
  if (addr == MAP_FAILED) Die("mmap(file)", path);
  region.base_ = static_cast<uint8_t*>(addr);
  region.committed_ = initial;
  return region;
}

MmapRegion::~MmapRegion() {
  if (base_ != nullptr) munmap(base_, reserved_);
  if (fd_ >= 0) close(fd_);
}

MmapRegion::MmapRegion(MmapRegion&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      reserved_(std::exchange(other.reserved_, 0)),
      // relaxed: moves happen during single-threaded setup, before any
      // allocator thread can touch either region.
      committed_(other.committed_.exchange(0, std::memory_order_relaxed)),
      fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)) {}

MmapRegion& MmapRegion::operator=(MmapRegion&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) munmap(base_, reserved_);
    if (fd_ >= 0) close(fd_);
    base_ = std::exchange(other.base_, nullptr);
    reserved_ = std::exchange(other.reserved_, 0);
    committed_.store(other.committed_.exchange(0, std::memory_order_relaxed),
                     std::memory_order_relaxed);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

void MmapRegion::EnsureCommitted(size_t bytes) {
  // Callers serialize growth (BlockManager's grow_mu_), so plain reads of
  // the current value are single-writer here; the release store below
  // pairs with the unlocked acquire in committed() — whoever sees the new
  // mark sees the file already grown.
  size_t current = committed_.load(std::memory_order_relaxed);
  if (bytes <= current) return;
  if (bytes > reserved_) {
    Die("reservation exhausted; raise Options reserve", path_);
  }
  if (fd_ < 0) return;  // anonymous memory faults in on demand
  // Grow the file in large steps to amortize ftruncate calls.
  size_t target = current;
  while (target < bytes) target *= 2;
  if (target > reserved_) target = reserved_;
  if (ftruncate(fd_, static_cast<off_t>(target)) != 0) {
    Die("ftruncate(grow)", path_);
  }
  committed_.store(target, std::memory_order_release);
}

void MmapRegion::Sync(bool async) {
  if (fd_ < 0 || base_ == nullptr) return;
  msync(base_, committed(), async ? MS_ASYNC : MS_SYNC);
}

}  // namespace livegraph
