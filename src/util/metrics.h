// Process-global metrics registry: the measurement substrate for every
// subsystem (docs/OBSERVABILITY.md).
//
// Design goals, in order:
//   1. Hot-path cost: recording into a Counter or Histogram is a single
//      relaxed atomic add into a per-thread stripe — no locks, no
//      allocation, no branches on registration state. Registration
//      (GetCounter et al.) is mutex-guarded but happens once per call
//      site via a function-local static; the returned reference is
//      stable for the life of the process.
//   2. One histogram scheme: latency/size histograms reuse
//      LatencyHistogram's log-bucket mapping (util/histogram.h), so the
//      wire snapshot, /metrics exposition, and bench reporting all agree
//      on resolution (<= ~1.6% relative error).
//   3. Pull-based sampling: state that is cheap to read but wasteful to
//      maintain eagerly (epoch lag, pin counts, replication frontiers)
//      is sampled by probe callbacks run at Collect() time.
//
// Naming convention: livegraph_<subsystem>_<what>[_total] with at most
// one label pair embedded in the registered name, e.g.
//   livegraph_server_requests_total{op="GET_NODE"}
// Histograms are registered WITHOUT a unit suffix; the Prometheus
// renderer appends _seconds/_bytes per the metric's Unit and converts
// nanoseconds to seconds.
#ifndef LIVEGRAPH_UTIL_METRICS_H_
#define LIVEGRAPH_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.h"

namespace livegraph::metrics {

/// CLOCK_MONOTONIC in nanoseconds — the clock for every latency metric.
uint64_t MonotonicNanos();
/// CLOCK_REALTIME in microseconds since the Unix epoch (timestamps only).
uint64_t WallUnixMicros();

/// Stripe count for sharded counters/histograms; power of two.
inline constexpr size_t kStripes = 16;

namespace internal {
inline std::atomic<uint64_t> g_next_thread_stripe{0};
/// Threads are assigned stripes round-robin on first use; the thread_local
/// makes the hot path a TLS load + masked index.
inline size_t ThreadStripe() {
  thread_local const size_t stripe =
      static_cast<size_t>(g_next_thread_stripe.fetch_add(
          1, std::memory_order_relaxed)) &
      (kStripes - 1);
  return stripe;
}
}  // namespace internal

/// Monotonic event counter, per-thread-sharded to avoid cache-line
/// ping-pong between recording threads. Value() is a full-stripe sum and
/// is only approximately ordered against concurrent Add()s — exact once
/// recording threads are quiesced.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    cells_[internal::ThreadStripe()].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_)
      total += cell.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kStripes];
};

/// Point-in-time signed value (open connections, lag, sticky flags).
/// Single atomic: gauges are updated at state transitions, not per-op.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// What a metric's raw uint64 observations mean; drives exposition
/// suffixes (_seconds/_bytes) and nanos->seconds conversion.
enum class Unit : uint8_t { kCount = 0, kNanos = 1, kBytes = 2 };

/// Aggregate view of one histogram at collection time.
struct HistogramSample {
  std::string name;
  Unit unit = Unit::kCount;
  uint64_t count = 0;
  double sum = 0.0;  // in the metric's raw unit (nanos/bytes/count)
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
};

/// Striped log-bucket histogram over uint64 observations, sharing
/// LatencyHistogram's bucket mapping. Record() is two relaxed adds into
/// this thread's stripe.
class Histogram {
 public:
  explicit Histogram(Unit unit);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    Stripe& stripe = stripes_[internal::ThreadStripe()];
    stripe.buckets[LatencyHistogram::BucketFor(value)].fetch_add(
        1, std::memory_order_relaxed);
    stripe.sum.fetch_add(value, std::memory_order_relaxed);
  }

  Unit unit() const { return unit_; }
  /// Cross-stripe merge + quantile scan; `name` is copied into the result.
  HistogramSample Sample(std::string name) const;
  /// Merge this histogram's cross-stripe totals into a LatencyHistogram
  /// (bench reporting interop).
  void CollectInto(LatencyHistogram* out) const;

 private:
  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> sum{0};
  };
  Unit unit_;
  Stripe stripes_[kStripes];
};

/// One entry in the slow-op trace ring: an operation that exceeded the
/// configured threshold, with its stage breakdown.
struct SlowOp {
  std::string name;            // opcode or pipeline stage, e.g. "SCAN_LINKS"
  int32_t shard = -1;          // -1 when not shard-scoped
  int64_t epoch = 0;           // commit/read epoch when known, else 0
  uint64_t total_nanos = 0;
  uint64_t stage_nanos[4] = {0, 0, 0, 0};  // meaning is per-site; 0 unused
  uint64_t wall_unix_micros = 0;           // when the op completed
};

/// Bounded in-memory ring of recent slow ops. ShouldRecord() is the hot
/// check (one relaxed load + compare); Record() takes a mutex but only
/// runs for ops already known to be slow.
class SlowOpRing {
 public:
  static constexpr size_t kCapacity = 256;

  static SlowOpRing& Instance();

  /// 0 disables tracing (the default).
  void set_threshold_nanos(uint64_t nanos) {
    threshold_nanos_.store(nanos, std::memory_order_relaxed);
  }
  uint64_t threshold_nanos() const {
    return threshold_nanos_.load(std::memory_order_relaxed);
  }
  bool ShouldRecord(uint64_t total_nanos) const {
    uint64_t t = threshold_nanos();
    return t != 0 && total_nanos >= t;
  }

  /// `op.wall_unix_micros` is stamped here if zero.
  void Record(SlowOp op);

  /// Oldest-first copy of the ring plus the all-time recorded count.
  std::vector<SlowOp> Snapshot(uint64_t* total_recorded = nullptr) const;

  /// key=value dump of the ring to stderr (SIGUSR1 handler path — called
  /// from the main loop, never from the signal handler itself).
  void DumpToStderr() const;

  void Clear();

 private:
  SlowOpRing() = default;

  std::atomic<uint64_t> threshold_nanos_{0};
  mutable std::mutex mu_;
  std::vector<SlowOp> ring_;
  size_t next_ = 0;
  uint64_t recorded_ = 0;
};

/// 1-in-16 sampling gate for stage-latency timing on sub-microsecond hot
/// paths (the embedded commit pipeline), where the clock reads around
/// each stage would otherwise cost a measurable slice of the operation
/// itself. One thread-local increment + mask; counters are never
/// sampled, only the optional MonotonicNanos() reads and histogram
/// records ride behind this. Forced on while slow-op tracing is armed:
/// the ring must see every slow operation, not 1 in 16.
inline bool SampleStageTiming() {
  if (SlowOpRing::Instance().threshold_nanos() != 0) return true;
  thread_local uint32_t tick = 0;
  return (++tick & 15u) == 0;
}

/// Everything the registry knows at one instant; the payload of the STATS
/// opcode, /metrics exposition, and bench --dump-metrics.
struct Snapshot {
  uint64_t mono_nanos = 0;
  uint64_t wall_unix_micros = 0;
  /// Prometheus label list for livegraph_build_info, e.g.
  /// sha="1a2b3c",type="Release",flags="none".
  std::string build_info;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<SlowOp> slow_ops;
  uint64_t slow_ops_total = 0;

  /// Lookups by exact registered name; 0 when absent.
  uint64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;
  const HistogramSample* histogram(std::string_view name) const;
};

/// The process-global registry. Get* registers on first use and returns a
/// stable reference; call sites cache it in a function-local static.
class Registry {
 public:
  static Registry& Instance();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name, Unit unit);

  /// Probes run at the start of every Collect() to refresh sampled
  /// gauges. They must not call back into the registry (fetch your
  /// Gauge references before registering). RemoveProbe blocks until any
  /// in-flight Collect() finishes, so `this`-capturing probes are safe
  /// to remove from destructors.
  uint64_t AddProbe(std::function<void()> probe);
  void RemoveProbe(uint64_t id);

  Snapshot Collect();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;

  mutable std::mutex probe_mu_;
  std::map<uint64_t, std::function<void()>> probes_;
  uint64_t next_probe_id_ = 1;
};

/// Prometheus label list for the build-info gauge (from the generated
/// util/build_info.h).
std::string BuildInfoLabels();

/// Prometheus text exposition (format 0.0.4) of a snapshot: counters and
/// gauges verbatim, histograms as summaries (quantile/_sum/_count) with
/// nanos rendered as seconds, plus the livegraph_build_info info gauge.
void RenderPrometheus(const Snapshot& snapshot, std::string* out);

/// RAII latency recorder around a scope.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& histogram)
      : histogram_(&histogram), start_(MonotonicNanos()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() { histogram_->Record(MonotonicNanos() - start_); }

 private:
  Histogram* histogram_;
  uint64_t start_;
};

}  // namespace livegraph::metrics

#endif  // LIVEGRAPH_UTIL_METRICS_H_
