#include "util/thread_pool.h"

#include <atomic>
#include <thread>
#include <vector>

namespace livegraph {

void ParallelFor(int64_t begin, int64_t end, int threads,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t chunk) {
  if (end <= begin) return;
  if (threads <= 1 || end - begin <= chunk) {
    fn(begin, end);
    return;
  }
  std::atomic<int64_t> next(begin);
  auto worker = [&] {
    while (true) {
      // relaxed: the counter only parcels out disjoint [lo, hi) ranges.
      // Work done inside fn is published to the caller by thread join.
      int64_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      int64_t hi = lo + chunk < end ? lo + chunk : end;
      fn(lo, hi);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads) - 1);
  for (int i = 1; i < threads; ++i) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
}

int DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace livegraph
