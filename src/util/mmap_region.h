// Growable mmap-backed memory region.
//
// LiveGraph stores all vertex blocks and TELs "in a single large
// memory-mapped file managed by LiveGraph's memory allocator" (§3, §6) and
// relies on the OS page cache for out-of-core operation. This wrapper
// reserves a large virtual range up front (so block offsets translate to
// stable addresses without remapping) and commits pages lazily; with a
// backing file it extends the file as the high-water mark grows.
#ifndef LIVEGRAPH_UTIL_MMAP_REGION_H_
#define LIVEGRAPH_UTIL_MMAP_REGION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace livegraph {

class MmapRegion {
 public:
  /// Creates an anonymous (purely in-memory) region reserving
  /// `reserve_bytes` of virtual address space.
  static MmapRegion CreateAnonymous(size_t reserve_bytes);

  /// Creates (or opens) a file-backed region. The file is grown with
  /// ftruncate as EnsureCommitted extends the high-water mark.
  static MmapRegion CreateFileBacked(const std::string& path,
                                     size_t reserve_bytes);

  MmapRegion() = default;
  ~MmapRegion();

  MmapRegion(MmapRegion&& other) noexcept;
  MmapRegion& operator=(MmapRegion&& other) noexcept;
  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;

  /// Base address of the reservation; stable for the region's lifetime.
  uint8_t* data() const { return base_; }
  size_t reserved() const { return reserved_; }
  /// Bytes currently committed (file length for file-backed regions).
  /// Atomic because allocators read it as an unlocked fast-path check
  /// while another thread grows the region under its growth lock; acquire
  /// pairs with EnsureCommitted's release so a reader that sees the new
  /// high-water mark also sees the file grown past it. A stale (smaller)
  /// read is harmless — the caller takes the growth lock and re-checks.
  size_t committed() const {
    return committed_.load(std::memory_order_acquire);
  }
  bool file_backed() const { return fd_ >= 0; }

  /// Ensures [0, bytes) is usable, growing the backing file if needed.
  /// Thread-compatible: callers must serialize growth externally (the block
  /// manager does, under its allocation lock).
  void EnsureCommitted(size_t bytes);

  /// msync for durability of file-backed regions (no-op otherwise).
  void Sync(bool async = false);

 private:
  uint8_t* base_ = nullptr;
  size_t reserved_ = 0;
  std::atomic<size_t> committed_{0};
  int fd_ = -1;
  std::string path_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_UTIL_MMAP_REGION_H_
