#include "storage/block_manager.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace livegraph {

namespace {

// Cheap stable stripe id for the calling thread.
size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  // relaxed: the id only needs to be distinct per thread; nothing is
  // ordered through the counter.
  thread_local size_t stripe = next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace

BlockManager::BlockManager(Options options) : options_(std::move(options)) {
  region_ = options_.path.empty()
                ? MmapRegion::CreateAnonymous(options_.reserve_bytes)
                : MmapRegion::CreateFileBacked(options_.path,
                                               options_.reserve_bytes);
  free_lists_.resize(kMaxOrder + 1);
  for (int order = 0; order <= kMaxOrder; ++order) {
    size_t stripes =
        order <= options_.private_order_threshold ? kStripes : 1;
    free_lists_[order] = std::vector<FreeList>(stripes);
  }
}

uint8_t BlockManager::OrderFor(size_t bytes) {
  size_t size = bytes < (size_t{1} << kMinOrder) ? (size_t{1} << kMinOrder)
                                                 : std::bit_ceil(bytes);
  return static_cast<uint8_t>(std::countr_zero(size));
}

BlockManager::FreeList& BlockManager::ListFor(uint8_t order) {
  auto& lists = free_lists_[order];
  return lists.size() == 1 ? lists[0] : lists[ThreadStripe() % lists.size()];
}

block_ptr_t BlockManager::Allocate(uint8_t order) {
  if (order < kMinOrder) order = kMinOrder;
  if (order > kMaxOrder) {
    std::fprintf(stderr, "BlockManager: order %d too large\n", order);
    std::abort();
  }
  const uint64_t size = uint64_t{1} << order;
  // Fast path: recycle from the (striped) free list.
  {
    FreeList& list = ListFor(order);
    std::lock_guard<std::mutex> guard(list.mu);
    if (!list.blocks.empty()) {
      block_ptr_t ptr = list.blocks.back();
      list.blocks.pop_back();
      // relaxed (here and on every *_bytes_ counter below): pure memory
      // statistics, read only by GetStats; the block hand-off itself is
      // ordered by the free-list mutex.
      free_bytes_.fetch_sub(size, std::memory_order_relaxed);
      return ptr;
    }
  }
  // Slow path: bump-allocate from the tail of the store ("allocating new
  // blocks from the tail of the block store only when that list is empty",
  // §6). Natural alignment to the block size keeps entries cache-aligned.
  uint64_t offset;
  // relaxed CAS loop: the bump pointer only parcels out disjoint offset
  // ranges — no data is transferred through it (fresh block bytes reach
  // other threads via the caller's release publication of the pointer),
  // and the committed() check below carries its own acquire.
  while (true) {
    uint64_t cur = bump_.load(std::memory_order_relaxed);
    uint64_t aligned = (cur + size - 1) & ~(size - 1);
    if (bump_.compare_exchange_weak(cur, aligned + size,
                                    std::memory_order_relaxed)) {
      offset = aligned;
      break;
    }
  }
  if (offset + size > region_.committed() && region_.file_backed()) {
    std::lock_guard<std::mutex> guard(grow_mu_);
    region_.EnsureCommitted(offset + size);
  } else if (offset + size > region_.reserved()) {
    std::fprintf(stderr, "BlockManager: reservation exhausted\n");
    std::abort();
  }
  return PackBlockPtr(offset, order);
}

void BlockManager::Free(block_ptr_t ptr) {
  if (ptr == kNullBlock) return;
  uint8_t order = BlockOrder(ptr);
  FreeList& list = ListFor(order);
  std::lock_guard<std::mutex> guard(list.mu);
  list.blocks.push_back(ptr);
  free_bytes_.fetch_add(uint64_t{1} << order, std::memory_order_relaxed);
}

void BlockManager::Retire(block_ptr_t ptr, timestamp_t retire_epoch) {
  if (ptr == kNullBlock) return;
  std::lock_guard<std::mutex> guard(retired_mu_);
  retired_.push_back(Retired{retire_epoch, ptr});
  retired_bytes_.fetch_add(uint64_t{1} << BlockOrder(ptr),
                           std::memory_order_relaxed);
}

size_t BlockManager::ReclaimRetired(timestamp_t safe_epoch) {
  std::vector<block_ptr_t> reclaimable;
  {
    std::lock_guard<std::mutex> guard(retired_mu_);
    size_t kept = 0;
    for (size_t i = 0; i < retired_.size(); ++i) {
      if (retired_[i].epoch <= safe_epoch) {
        reclaimable.push_back(retired_[i].ptr);
      } else {
        retired_[kept++] = retired_[i];
      }
    }
    retired_.resize(kept);
  }
  for (block_ptr_t ptr : reclaimable) {
    retired_bytes_.fetch_sub(uint64_t{1} << BlockOrder(ptr),
                             std::memory_order_relaxed);
    Free(ptr);
  }
  return reclaimable.size();
}

BlockManager::Stats BlockManager::GetStats() const {
  Stats stats;
  stats.bump_allocated_bytes = bump_.load(std::memory_order_relaxed);
  stats.free_list_bytes = free_bytes_.load(std::memory_order_relaxed);
  stats.retired_bytes = retired_bytes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace livegraph
