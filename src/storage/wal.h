// Sequential write-ahead log with group commit (paper §5, persist phase).
//
// "The transaction manager first advances the GWE counter by 1, then appends
// a batch of log entries to a sequential write-ahead log (WAL) and uses
// fsync to persist it to stable storage."
//
// Record framing: [u32 payload_len][u32 crc32c(epoch ++ participants ++
//                 payload)][i64 epoch][u32 participants][u32 reserved]
//                 [payload bytes]
// A torn tail record (crash mid-write) fails its CRC and terminates replay.
// Epochs come from the unified EpochDomain, so records of one group-commit
// batch may carry distinct epochs: fresh commits share the batch's epoch
// while coordinator-stamped multi-shard pieces keep the epoch the
// coordinator acquired for the whole transaction. `participants` records
// how many shard WALs hold a piece of that epoch (1 for single-shard
// commits) — sharded recovery replays a multi-shard epoch only when every
// piece is present, so a crash between two shards' fsyncs can never
// resurrect half a transaction.
//
// The batch append gathers every record with writev straight from the
// committing workers' (pooled) payload buffers: headers live in a reusable
// array, payload bytes are never copied into the log's address space. The
// workers block inside the commit pipeline until the batch is durable, so
// the borrowed payload memory cannot be reused mid-write.
#ifndef LIVEGRAPH_STORAGE_WAL_H_
#define LIVEGRAPH_STORAGE_WAL_H_

#include <sys/uio.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/wal_reader.h"
#include "util/types.h"

namespace livegraph {

/// Maps an errno from a failed durable-path syscall to the typed Status
/// surfaced to committers: disk-full conditions (operator can free space
/// and restart) are distinguishable from hard I/O loss.
inline Status IoStatusFromErrno(int err) {
  return (err == ENOSPC || err == EDQUOT) ? Status::kResourceExhausted
                                          : Status::kIOError;
}

class Wal {
 public:
  struct Options {
    std::string path;
    /// fsync after every batch. Disable for benchmarks that isolate
    /// non-durability costs (paper: "persistence features are enabled for
    /// all the systems, except when specified otherwise").
    bool fsync = true;
  };

  /// One logical record of a batch append.
  struct Record {
    timestamp_t epoch = 0;
    /// Shard WALs holding a piece of this epoch (cross-shard atomicity
    /// metadata; 1 for everything but multi-shard transaction pieces).
    uint32_t participants = 1;
    std::string_view payload;
  };

  /// Observer of durable batches — the replication tee (docs/REPLICATION.md).
  /// OnDurableBatch runs inside the single-appender section immediately
  /// after the batch's fdatasync returns, so every record it sees is on
  /// stable storage and notifications arrive in exact log order. The callee
  /// must not call back into this Wal and should only copy the records out
  /// (the payload views borrow the committing workers' buffers).
  class DurableSink {
   public:
    virtual ~DurableSink() = default;
    virtual void OnDurableBatch(const std::vector<Record>& records) = 0;
  };

  explicit Wal(Options options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one group-commit batch, gathered with writev (zero payload
  /// copies) and made durable with one fsync. On I/O failure the batch is
  /// NOT durable, the log is permanently poisoned (see error()), and the
  /// typed status (kResourceExhausted for ENOSPC/EDQUOT, kIOError
  /// otherwise) is returned for the commit group to surface.
  Status AppendBatch(const std::vector<Record>& records);

  /// Single-epoch convenience (tests, tools): every payload becomes a
  /// record stamped with `epoch`, participants = 1.
  Status AppendBatch(timestamp_t epoch,
                     const std::vector<std::string_view>& payloads);

  /// Truncates the log (after a durable checkpoint supersedes it, §6).
  /// Failure poisons the log like a failed append.
  Status Reset();

  /// First-error-wins sticky status. Once any append/sync/reset fails the
  /// log never touches the fd again: after a failed fsync the kernel may
  /// have dropped the dirty pages, so retrying the sync could "succeed"
  /// without the data ever reaching stable storage (the fsyncgate
  /// failure mode). Recovery is a process restart + WAL replay.
  Status error() const { return error_.load(std::memory_order_acquire); }

  /// Installs (nullptr clears) the durable-batch tee. The pointer is read
  /// with acquire semantics on every append, so installing before the
  /// first append (the replication hub does it at attach time, before the
  /// server accepts traffic) needs no further synchronization. The sink
  /// must outlive the Wal or be cleared first.
  void SetDurableSink(DurableSink* sink) {
    sink_.store(sink, std::memory_order_release);
  }

  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return options_.path; }

  /// fsyncs the directory containing `path` so a just-created or
  /// just-renamed entry survives a crash (file-content fsync alone does
  /// not persist the directory entry). Used after WAL creation and after
  /// checkpoint-manifest renames. Returns false when the directory sync
  /// failed (the entry may not survive a crash).
  static bool FsyncParentDir(const std::string& path);

  /// The atomic-publish tail shared by every manifest writer: rename
  /// `tmp` over `final_path`, then fsync the directory so the rename
  /// itself survives a crash. The caller fsynced the file contents.
  /// Returns false when the publish is not durable; the previous
  /// `final_path` content (if any) stays authoritative.
  static bool CommitRename(const std::string& tmp,
                           const std::string& final_path);

  /// Replays records from a WAL file in order. Stops at EOF or the first
  /// corrupt/torn record. The parse loop itself lives in
  /// storage/wal_reader.h, shared with the replication tail-reader.
  using Reader = WalReader;

 private:
  /// The on-disk framing, shared with the reader side.
  using RecordHeader = WalRecordHeader;

  Status WritevAll(struct iovec* iov, size_t count);

  /// Records the first failure: logs one line (operation, errno,
  /// strerror, path) and latches error_. Idempotent; first error wins.
  Status Poison(const char* what, int err);

  Options options_;
  int fd_ = -1;
  std::vector<RecordHeader> headers_;  // reused across batches
  std::vector<struct iovec> iov_;      // reused across batches
  /// Plain (non-atomic) on purpose: AppendBatch is a single-writer section
  /// owned by the commit-manager thread, enforced by `appending_` below in
  /// DCHECK builds.
  uint64_t bytes_written_ = 0;
  /// Single-appender guard (LIVEGRAPH_DCHECK builds): set for the duration
  /// of AppendBatch; a second concurrent appender aborts loudly instead of
  /// interleaving torn records.
  std::atomic<uint32_t> appending_{0};
  /// Durable-batch tee (replication). Atomic so installation from the
  /// serving thread is safe against a concurrent commit-manager append.
  std::atomic<DurableSink*> sink_{nullptr};
  /// Sticky first-error status (see error()). Atomic: committers and the
  /// serving thread may read it while the appender poisons it.
  std::atomic<Status> error_{Status::kOk};
};

}  // namespace livegraph

#endif  // LIVEGRAPH_STORAGE_WAL_H_
