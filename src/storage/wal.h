// Sequential write-ahead log with group commit (paper §5, persist phase).
//
// "The transaction manager first advances the GWE counter by 1, then appends
// a batch of log entries to a sequential write-ahead log (WAL) and uses
// fsync to persist it to stable storage."
//
// Record framing: [u32 payload_len][u32 crc32c(epoch ++ participants ++
//                 payload)][i64 epoch][u32 participants][u32 reserved]
//                 [payload bytes]
// A torn tail record (crash mid-write) fails its CRC and terminates replay.
// Epochs come from the unified EpochDomain, so records of one group-commit
// batch may carry distinct epochs: fresh commits share the batch's epoch
// while coordinator-stamped multi-shard pieces keep the epoch the
// coordinator acquired for the whole transaction. `participants` records
// how many shard WALs hold a piece of that epoch (1 for single-shard
// commits) — sharded recovery replays a multi-shard epoch only when every
// piece is present, so a crash between two shards' fsyncs can never
// resurrect half a transaction.
//
// The batch append gathers every record with writev straight from the
// committing workers' (pooled) payload buffers: headers live in a reusable
// array, payload bytes are never copied into the log's address space. The
// workers block inside the commit pipeline until the batch is durable, so
// the borrowed payload memory cannot be reused mid-write.
#ifndef LIVEGRAPH_STORAGE_WAL_H_
#define LIVEGRAPH_STORAGE_WAL_H_

#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace livegraph {

class Wal {
 public:
  struct Options {
    std::string path;
    /// fsync after every batch. Disable for benchmarks that isolate
    /// non-durability costs (paper: "persistence features are enabled for
    /// all the systems, except when specified otherwise").
    bool fsync = true;
  };

  /// One logical record of a batch append.
  struct Record {
    timestamp_t epoch = 0;
    /// Shard WALs holding a piece of this epoch (cross-shard atomicity
    /// metadata; 1 for everything but multi-shard transaction pieces).
    uint32_t participants = 1;
    std::string_view payload;
  };

  explicit Wal(Options options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one group-commit batch, gathered with writev (zero payload
  /// copies) and made durable with one fsync.
  void AppendBatch(const std::vector<Record>& records);

  /// Single-epoch convenience (tests, tools): every payload becomes a
  /// record stamped with `epoch`, participants = 1.
  void AppendBatch(timestamp_t epoch,
                   const std::vector<std::string_view>& payloads);

  /// Truncates the log (after a durable checkpoint supersedes it, §6).
  void Reset();

  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return options_.path; }

  /// fsyncs the directory containing `path` so a just-created or
  /// just-renamed entry survives a crash (file-content fsync alone does
  /// not persist the directory entry). Used after WAL creation and after
  /// checkpoint-manifest renames.
  static void FsyncParentDir(const std::string& path);

  /// The atomic-publish tail shared by every manifest writer: rename
  /// `tmp` over `final_path`, then fsync the directory so the rename
  /// itself survives a crash. The caller fsynced the file contents.
  static void CommitRename(const std::string& tmp,
                           const std::string& final_path);

  /// Replays records from a WAL file in order. Stops at EOF or the first
  /// corrupt/torn record.
  class Reader {
   public:
    explicit Reader(const std::string& path);
    ~Reader();

    /// Returns false at end of log.
    bool Next(timestamp_t* epoch, uint32_t* participants,
              std::string* payload);
    bool Next(timestamp_t* epoch, std::string* payload) {
      uint32_t participants = 0;
      return Next(epoch, &participants, payload);
    }

    /// Byte length of the valid record prefix consumed so far. After a
    /// scan to the end, everything past this offset is a torn/corrupt
    /// tail — recovery truncates to it so post-recovery appends stay
    /// reachable by the next replay.
    size_t valid_bytes() const { return pos_; }
    size_t file_bytes() const { return buffer_.size(); }

    /// Restarts iteration over the already-loaded buffer (recovery scans
    /// the log twice — epoch bounds, then replay — without re-reading the
    /// file).
    void Rewind() { pos_ = 0; }

    /// After a scan to the end: truncates the on-disk file at `path` to
    /// the valid record prefix, cutting off a torn/corrupt tail left by a
    /// crash mid-append so post-recovery appends land behind readable
    /// bytes. No-op when the whole file parsed.
    void TruncateTornTail(const std::string& path) const;

   private:
    int fd_ = -1;
    std::vector<uint8_t> buffer_;
    size_t pos_ = 0;
  };

 private:
  /// Matches the record framing byte-for-byte: 4+4 bytes, an 8-aligned
  /// epoch, then participants + padding, so one iovec covers the whole
  /// header.
  struct RecordHeader {
    uint32_t len;
    uint32_t crc;
    timestamp_t epoch;
    uint32_t participants;
    uint32_t reserved;
  };
  static_assert(sizeof(RecordHeader) == 24, "framing layout");

  void WritevAll(struct iovec* iov, size_t count);

  Options options_;
  int fd_ = -1;
  std::vector<RecordHeader> headers_;  // reused across batches
  std::vector<struct iovec> iov_;      // reused across batches
  /// Plain (non-atomic) on purpose: AppendBatch is a single-writer section
  /// owned by the commit-manager thread, enforced by `appending_` below in
  /// DCHECK builds.
  uint64_t bytes_written_ = 0;
  /// Single-appender guard (LIVEGRAPH_DCHECK builds): set for the duration
  /// of AppendBatch; a second concurrent appender aborts loudly instead of
  /// interleaving torn records.
  std::atomic<uint32_t> appending_{0};
};

}  // namespace livegraph

#endif  // LIVEGRAPH_STORAGE_WAL_H_
