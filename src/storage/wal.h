// Sequential write-ahead log with group commit (paper §5, persist phase).
//
// "The transaction manager first advances the GWE counter by 1, then appends
// a batch of log entries to a sequential write-ahead log (WAL) and uses
// fsync to persist it to stable storage."
//
// Record framing: [u32 payload_len][u32 crc32c(epoch ++ payload)]
//                 [i64 epoch][payload bytes]
// A torn tail record (crash mid-write) fails its CRC and terminates replay.
#ifndef LIVEGRAPH_STORAGE_WAL_H_
#define LIVEGRAPH_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace livegraph {

class Wal {
 public:
  struct Options {
    std::string path;
    /// fsync after every batch. Disable for benchmarks that isolate
    /// non-durability costs (paper: "persistence features are enabled for
    /// all the systems, except when specified otherwise").
    bool fsync = true;
  };

  explicit Wal(Options options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one group-commit batch: every payload becomes a record stamped
  /// with `epoch`, written with a single write() and one fsync.
  void AppendBatch(timestamp_t epoch,
                   const std::vector<std::string_view>& payloads);

  /// Truncates the log (after a durable checkpoint supersedes it, §6).
  void Reset();

  uint64_t bytes_written() const { return bytes_written_; }

  /// Replays records from a WAL file in order. Stops at EOF or the first
  /// corrupt/torn record.
  class Reader {
   public:
    explicit Reader(const std::string& path);
    ~Reader();

    /// Returns false at end of log.
    bool Next(timestamp_t* epoch, std::string* payload);

   private:
    int fd_ = -1;
    std::vector<uint8_t> buffer_;
    size_t pos_ = 0;
  };

 private:
  Options options_;
  int fd_ = -1;
  std::string scratch_;
  uint64_t bytes_written_ = 0;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_STORAGE_WAL_H_
