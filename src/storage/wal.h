// Sequential write-ahead log with group commit (paper §5, persist phase).
//
// "The transaction manager first advances the GWE counter by 1, then appends
// a batch of log entries to a sequential write-ahead log (WAL) and uses
// fsync to persist it to stable storage."
//
// Record framing: [u32 payload_len][u32 crc32c(epoch ++ payload)]
//                 [i64 epoch][payload bytes]
// A torn tail record (crash mid-write) fails its CRC and terminates replay.
//
// The batch append gathers every record with writev straight from the
// committing workers' (pooled) payload buffers: headers live in a reusable
// array, payload bytes are never copied into the log's address space. The
// workers block inside the commit pipeline until the batch is durable, so
// the borrowed payload memory cannot be reused mid-write.
#ifndef LIVEGRAPH_STORAGE_WAL_H_
#define LIVEGRAPH_STORAGE_WAL_H_

#include <sys/uio.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace livegraph {

class Wal {
 public:
  struct Options {
    std::string path;
    /// fsync after every batch. Disable for benchmarks that isolate
    /// non-durability costs (paper: "persistence features are enabled for
    /// all the systems, except when specified otherwise").
    bool fsync = true;
  };

  explicit Wal(Options options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one group-commit batch: every payload becomes a record stamped
  /// with `epoch`, gathered with writev (zero payload copies) and made
  /// durable with one fsync.
  void AppendBatch(timestamp_t epoch,
                   const std::vector<std::string_view>& payloads);

  /// Truncates the log (after a durable checkpoint supersedes it, §6).
  void Reset();

  uint64_t bytes_written() const { return bytes_written_; }

  /// Replays records from a WAL file in order. Stops at EOF or the first
  /// corrupt/torn record.
  class Reader {
   public:
    explicit Reader(const std::string& path);
    ~Reader();

    /// Returns false at end of log.
    bool Next(timestamp_t* epoch, std::string* payload);

   private:
    int fd_ = -1;
    std::vector<uint8_t> buffer_;
    size_t pos_ = 0;
  };

 private:
  /// Matches the record framing byte-for-byte: 4+4 bytes then an 8-aligned
  /// epoch, so one iovec covers the whole header.
  struct RecordHeader {
    uint32_t len;
    uint32_t crc;
    timestamp_t epoch;
  };
  static_assert(sizeof(RecordHeader) == 16, "framing layout");

  void WritevAll(struct iovec* iov, size_t count);

  Options options_;
  int fd_ = -1;
  std::vector<RecordHeader> headers_;  // reused across batches
  std::vector<struct iovec> iov_;      // reused across batches
  uint64_t bytes_written_ = 0;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_STORAGE_WAL_H_
