#include "storage/wal.h"

#include <fcntl.h>
#include <limits.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/crc32.h"

namespace livegraph {

namespace {

[[noreturn]] void Die(const char* what) {
  std::fprintf(stderr, "Wal: %s failed: %s\n", what, std::strerror(errno));
  std::abort();
}

}  // namespace

Wal::Wal(Options options) : options_(std::move(options)) {
  fd_ = open(options_.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) Die("open");
}

Wal::~Wal() {
  if (fd_ >= 0) close(fd_);
}

void Wal::AppendBatch(timestamp_t epoch,
                      const std::vector<std::string_view>& payloads) {
  if (payloads.empty()) return;
  // Headers into a reusable array first (the iovecs point into it, so it
  // must not reallocate while they are built), then gather headers and the
  // workers' payload buffers directly — no per-batch payload copy.
  headers_.clear();
  headers_.reserve(payloads.size());
  iov_.clear();
  iov_.reserve(payloads.size() * 2);
  size_t total = 0;
  for (std::string_view payload : payloads) {
    RecordHeader header;
    header.len = static_cast<uint32_t>(payload.size());
    header.crc = Crc32c(&epoch, sizeof(epoch));
    header.crc = Crc32c(payload.data(), payload.size(), header.crc);
    header.epoch = epoch;
    headers_.push_back(header);
    total += sizeof(RecordHeader) + payload.size();
  }
  for (size_t i = 0; i < payloads.size(); ++i) {
    iov_.push_back({&headers_[i], sizeof(RecordHeader)});
    if (!payloads[i].empty()) {
      iov_.push_back({const_cast<char*>(payloads[i].data()),
                      payloads[i].size()});
    }
  }
  WritevAll(iov_.data(), iov_.size());
  bytes_written_ += total;
  if (options_.fsync && fdatasync(fd_) != 0) Die("fdatasync");
}

void Wal::WritevAll(struct iovec* iov, size_t count) {
  size_t idx = 0;
  while (idx < count) {
    int batch = static_cast<int>(std::min(count - idx, size_t{IOV_MAX}));
    ssize_t written = writev(fd_, iov + idx, batch);
    if (written < 0) {
      if (errno == EINTR) continue;
      Die("writev");
    }
    // Resume after a partial write: consume whole iovecs, then trim the
    // first partially written one in place.
    auto remaining = static_cast<size_t>(written);
    while (remaining > 0) {
      if (remaining >= iov[idx].iov_len) {
        remaining -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + remaining;
        iov[idx].iov_len -= remaining;
        remaining = 0;
      }
    }
    while (idx < count && iov[idx].iov_len == 0) ++idx;
  }
}

void Wal::Reset() {
  if (ftruncate(fd_, 0) != 0) Die("ftruncate");
  if (lseek(fd_, 0, SEEK_SET) < 0) Die("lseek");
  bytes_written_ = 0;
}

Wal::Reader::Reader(const std::string& path) {
  fd_ = open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return;  // missing WAL == empty WAL
  off_t size = lseek(fd_, 0, SEEK_END);
  if (size > 0) {
    buffer_.resize(static_cast<size_t>(size));
    ssize_t got = pread(fd_, buffer_.data(), buffer_.size(), 0);
    if (got != size) buffer_.clear();
  }
}

Wal::Reader::~Reader() {
  if (fd_ >= 0) close(fd_);
}

bool Wal::Reader::Next(timestamp_t* epoch, std::string* payload) {
  constexpr size_t kHeader = sizeof(uint32_t) * 2 + sizeof(timestamp_t);
  if (pos_ + kHeader > buffer_.size()) return false;
  uint32_t len, crc;
  std::memcpy(&len, buffer_.data() + pos_, sizeof(len));
  std::memcpy(&crc, buffer_.data() + pos_ + 4, sizeof(crc));
  std::memcpy(epoch, buffer_.data() + pos_ + 8, sizeof(*epoch));
  if (pos_ + kHeader + len > buffer_.size()) return false;  // torn tail
  const uint8_t* body = buffer_.data() + pos_ + kHeader;
  uint32_t expect = Crc32c(epoch, sizeof(*epoch));
  expect = Crc32c(body, len, expect);
  if (expect != crc) return false;  // corrupt record terminates replay
  payload->assign(reinterpret_cast<const char*>(body), len);
  pos_ += kHeader + len;
  return true;
}

}  // namespace livegraph
