#include "storage/wal.h"

#include <fcntl.h>
#include <limits.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/invariant.h"
#include "util/lock_rank.h"
#include "util/metrics.h"

namespace livegraph {

bool Wal::FsyncParentDir(const std::string& path) {
  std::string dir;
  size_t slash = path.find_last_of('/');
  dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return true;  // best effort: an unreachable parent fails the
                            // file operation itself long before this point
  int err = 0;
  if (faults::Action fault = LIVEGRAPH_FAULT("wal.dirsync")) {
    err = fault.err;
  } else if (fsync(fd) != 0 && errno != EINVAL && errno != EROFS) {
    err = errno;
  }
  close(fd);
  if (err != 0) {
    std::fprintf(stderr, "Wal: fsync(dir) failed: %s (errno %d, path %s)\n",
                 std::strerror(err), err, dir.c_str());
    return false;
  }
  return true;
}

bool Wal::CommitRename(const std::string& tmp,
                       const std::string& final_path) {
  int err = 0;
  if (faults::Action fault = LIVEGRAPH_FAULT("wal.rename")) {
    err = fault.err;
  } else if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    err = errno;
  }
  if (err != 0) {
    std::fprintf(stderr, "Wal: rename failed: %s (errno %d, %s -> %s)\n",
                 std::strerror(err), err, tmp.c_str(), final_path.c_str());
    return false;
  }
  return FsyncParentDir(final_path);
}

Status Wal::Poison(const char* what, int err) {
  Status expected = Status::kOk;
  const Status fresh = IoStatusFromErrno(err);
  if (error_.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel)) {
    static metrics::Counter& poisoned =
        metrics::Registry::Instance().GetCounter(
            "livegraph_wal_poisoned_total");
    poisoned.Add();
    std::fprintf(stderr,
                 "Wal: %s failed: %s (errno %d, path %s) — log poisoned, "
                 "store degrades to read-only\n",
                 what, std::strerror(err), err, options_.path.c_str());
    return fresh;
  }
  return expected;  // first error wins
}

Wal::Wal(Options options) : options_(std::move(options)) {
  int err = 0;
  if (faults::Action fault = LIVEGRAPH_FAULT("wal.open")) {
    err = fault.err;
  } else {
    fd_ = open(options_.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) err = errno;
  }
  if (err != 0) {
    Poison("open", err);
    return;
  }
  // Persist the directory entry too: without this a crash right after
  // creation can lose the (empty but expected) log file even though the
  // fd was valid — every later record fsync would then sync an orphan.
  if (options_.fsync) FsyncParentDir(options_.path);
}

Wal::~Wal() {
  if (fd_ >= 0) close(fd_);
}

Status Wal::AppendBatch(const std::vector<Record>& records) {
  if (records.empty()) return error();
  // Poisoned log: never touch the fd again (see error() in the header).
  if (Status sticky = error(); sticky != Status::kOk) return sticky;
  // Single-writer section: the commit-manager thread is the only appender,
  // and it must hold no engine locks here (WAL is the bottom of the rank
  // table — see util/lock_rank.h). Both facts are checked, not assumed.
  LIVEGRAPH_DCHECK(appending_.exchange(1, std::memory_order_acquire) == 0,
                   "concurrent Wal::AppendBatch — the WAL has exactly one "
                   "appender (the commit-manager thread)");
  LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kWalAppend);
  // Headers into a reusable array first (the iovecs point into it, so it
  // must not reallocate while they are built), then gather headers and the
  // workers' payload buffers directly — no per-batch payload copy.
  headers_.clear();
  headers_.reserve(records.size());
  iov_.clear();
  iov_.reserve(records.size() * 2);
  size_t total = 0;
  for (const Record& record : records) {
    RecordHeader header;
    header.len = static_cast<uint32_t>(record.payload.size());
    header.epoch = record.epoch;
    header.participants = record.participants;
    header.reserved = 0;
    header.crc = Crc32c(&header.epoch, sizeof(header.epoch));
    header.crc =
        Crc32c(&header.participants, sizeof(header.participants), header.crc);
    header.crc =
        Crc32c(record.payload.data(), record.payload.size(), header.crc);
    headers_.push_back(header);
    total += sizeof(RecordHeader) + record.payload.size();
  }
  for (size_t i = 0; i < records.size(); ++i) {
    iov_.push_back({&headers_[i], sizeof(RecordHeader)});
    if (!records[i].payload.empty()) {
      iov_.push_back({const_cast<char*>(records[i].payload.data()),
                      records[i].payload.size()});
    }
  }
  // Registered once; recording below is a relaxed add per batch
  // (docs/OBSERVABILITY.md).
  static metrics::Counter& appends = metrics::Registry::Instance().GetCounter(
      "livegraph_wal_appends_total");
  static metrics::Counter& appended_records =
      metrics::Registry::Instance().GetCounter("livegraph_wal_records_total");
  static metrics::Counter& appended_bytes =
      metrics::Registry::Instance().GetCounter("livegraph_wal_bytes_total");
  static metrics::Histogram& batch_bytes =
      metrics::Registry::Instance().GetHistogram("livegraph_wal_batch",
                                                 metrics::Unit::kBytes);
  static metrics::Histogram& fsync_latency =
      metrics::Registry::Instance().GetHistogram("livegraph_wal_fsync_latency",
                                                 metrics::Unit::kNanos);
  Status status = WritevAll(iov_.data(), iov_.size());
  if (status == Status::kOk) {
    bytes_written_ += total;
    appends.Add();
    appended_records.Add(records.size());
    appended_bytes.Add(total);
    batch_bytes.Record(total);
    if (options_.fsync) {
      const uint64_t fsync_start = metrics::MonotonicNanos();
      if (faults::Action fault = LIVEGRAPH_FAULT("wal.fdatasync")) {
        status = Poison("fdatasync", fault.err);
      } else if (fdatasync(fd_) != 0) {
        status = Poison("fdatasync", errno);
      }
      fsync_latency.Record(metrics::MonotonicNanos() - fsync_start);
    }
  }
  // Tee the now-durable batch to replication (post-fsync: a subscriber can
  // never observe a record the primary could still lose — which is exactly
  // why a failed batch is never teed). Still inside the single-appender
  // section, so the sink sees batches in exact log order.
  if (status == Status::kOk) {
    if (DurableSink* sink = sink_.load(std::memory_order_acquire)) {
      sink->OnDurableBatch(records);
    }
  }
  appending_.store(0, std::memory_order_release);
  return status;
}

Status Wal::AppendBatch(timestamp_t epoch,
                        const std::vector<std::string_view>& payloads) {
  std::vector<Record> records;
  records.reserve(payloads.size());
  for (std::string_view payload : payloads) {
    records.push_back(Record{epoch, 1, payload});
  }
  return AppendBatch(records);
}

Status Wal::WritevAll(struct iovec* iov, size_t count) {
  // Fault hook for the whole gather: an injected error fails the batch
  // before any byte lands; an injected short write puts REAL partial bytes
  // on disk first (a torn batch), so recovery's torn-tail truncation gets
  // exercised against genuine on-disk state.
  uint64_t byte_budget = UINT64_MAX;
  if (faults::Action fault = LIVEGRAPH_FAULT("wal.append")) {
    if (fault.kind == faults::Action::Kind::kError) {
      return Poison("writev", fault.err);
    }
    byte_budget = fault.arg;
  }
  size_t idx = 0;
  while (idx < count) {
    if (byte_budget == 0) return Poison("writev", EIO);  // torn mid-batch
    int batch = static_cast<int>(std::min(count - idx, size_t{IOV_MAX}));
    if (byte_budget != UINT64_MAX) {
      // Trim the gather to the injected budget: whole iovecs, then a
      // partial first-overflowing one.
      uint64_t left = byte_budget;
      int kept = 0;
      for (int i = 0; i < batch && left > 0; ++i) {
        if (iov[idx + static_cast<size_t>(i)].iov_len > left) {
          iov[idx + static_cast<size_t>(i)].iov_len = left;
        }
        left -= iov[idx + static_cast<size_t>(i)].iov_len;
        ++kept;
      }
      batch = kept > 0 ? kept : 1;
    }
    ssize_t written = writev(fd_, iov + idx, batch);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Poison("writev", errno);
    }
    if (byte_budget != UINT64_MAX) {
      byte_budget -= static_cast<uint64_t>(written);
    }
    // Resume after a partial write: consume whole iovecs, then trim the
    // first partially written one in place.
    auto remaining = static_cast<size_t>(written);
    while (remaining > 0) {
      if (remaining >= iov[idx].iov_len) {
        remaining -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + remaining;
        iov[idx].iov_len -= remaining;
        remaining = 0;
      }
    }
    while (idx < count && iov[idx].iov_len == 0) ++idx;
  }
  return Status::kOk;
}

Status Wal::Reset() {
  if (Status sticky = error(); sticky != Status::kOk) return sticky;
  if (faults::Action fault = LIVEGRAPH_FAULT("wal.reset")) {
    return Poison("ftruncate", fault.err);
  }
  if (ftruncate(fd_, 0) != 0) return Poison("ftruncate", errno);
  if (lseek(fd_, 0, SEEK_SET) < 0) return Poison("lseek", errno);
  if (options_.fsync && fdatasync(fd_) != 0) {
    return Poison("fdatasync", errno);
  }
  bytes_written_ = 0;
  return Status::kOk;
}

}  // namespace livegraph
