#include "storage/wal.h"

#include <fcntl.h>
#include <limits.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/crc32.h"
#include "util/invariant.h"
#include "util/lock_rank.h"

namespace livegraph {

namespace {

[[noreturn]] void Die(const char* what) {
  std::fprintf(stderr, "Wal: %s failed: %s\n", what, std::strerror(errno));
  std::abort();
}

}  // namespace

void Wal::FsyncParentDir(const std::string& path) {
  std::string dir;
  size_t slash = path.find_last_of('/');
  dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: an unreachable parent fails the
                       // file operation itself long before this point
  if (fsync(fd) != 0 && errno != EINVAL && errno != EROFS) {
    close(fd);
    Die("fsync(dir)");
  }
  close(fd);
}

void Wal::CommitRename(const std::string& tmp,
                       const std::string& final_path) {
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) Die("rename");
  FsyncParentDir(final_path);
}

Wal::Wal(Options options) : options_(std::move(options)) {
  fd_ = open(options_.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) Die("open");
  // Persist the directory entry too: without this a crash right after
  // creation can lose the (empty but expected) log file even though the
  // fd was valid — every later record fsync would then sync an orphan.
  if (options_.fsync) FsyncParentDir(options_.path);
}

Wal::~Wal() {
  if (fd_ >= 0) close(fd_);
}

void Wal::AppendBatch(const std::vector<Record>& records) {
  if (records.empty()) return;
  // Single-writer section: the commit-manager thread is the only appender,
  // and it must hold no engine locks here (WAL is the bottom of the rank
  // table — see util/lock_rank.h). Both facts are checked, not assumed.
  LIVEGRAPH_DCHECK(appending_.exchange(1, std::memory_order_acquire) == 0,
                   "concurrent Wal::AppendBatch — the WAL has exactly one "
                   "appender (the commit-manager thread)");
  LIVEGRAPH_SCOPED_LOCK_RANK(LockRank::kWalAppend);
  // Headers into a reusable array first (the iovecs point into it, so it
  // must not reallocate while they are built), then gather headers and the
  // workers' payload buffers directly — no per-batch payload copy.
  headers_.clear();
  headers_.reserve(records.size());
  iov_.clear();
  iov_.reserve(records.size() * 2);
  size_t total = 0;
  for (const Record& record : records) {
    RecordHeader header;
    header.len = static_cast<uint32_t>(record.payload.size());
    header.epoch = record.epoch;
    header.participants = record.participants;
    header.reserved = 0;
    header.crc = Crc32c(&header.epoch, sizeof(header.epoch));
    header.crc =
        Crc32c(&header.participants, sizeof(header.participants), header.crc);
    header.crc =
        Crc32c(record.payload.data(), record.payload.size(), header.crc);
    headers_.push_back(header);
    total += sizeof(RecordHeader) + record.payload.size();
  }
  for (size_t i = 0; i < records.size(); ++i) {
    iov_.push_back({&headers_[i], sizeof(RecordHeader)});
    if (!records[i].payload.empty()) {
      iov_.push_back({const_cast<char*>(records[i].payload.data()),
                      records[i].payload.size()});
    }
  }
  WritevAll(iov_.data(), iov_.size());
  bytes_written_ += total;
  if (options_.fsync && fdatasync(fd_) != 0) Die("fdatasync");
  // Tee the now-durable batch to replication (post-fsync: a subscriber can
  // never observe a record the primary could still lose). Still inside the
  // single-appender section, so the sink sees batches in exact log order.
  if (DurableSink* sink = sink_.load(std::memory_order_acquire)) {
    sink->OnDurableBatch(records);
  }
  appending_.store(0, std::memory_order_release);
}

void Wal::AppendBatch(timestamp_t epoch,
                      const std::vector<std::string_view>& payloads) {
  std::vector<Record> records;
  records.reserve(payloads.size());
  for (std::string_view payload : payloads) {
    records.push_back(Record{epoch, 1, payload});
  }
  AppendBatch(records);
}

void Wal::WritevAll(struct iovec* iov, size_t count) {
  size_t idx = 0;
  while (idx < count) {
    int batch = static_cast<int>(std::min(count - idx, size_t{IOV_MAX}));
    ssize_t written = writev(fd_, iov + idx, batch);
    if (written < 0) {
      if (errno == EINTR) continue;
      Die("writev");
    }
    // Resume after a partial write: consume whole iovecs, then trim the
    // first partially written one in place.
    auto remaining = static_cast<size_t>(written);
    while (remaining > 0) {
      if (remaining >= iov[idx].iov_len) {
        remaining -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + remaining;
        iov[idx].iov_len -= remaining;
        remaining = 0;
      }
    }
    while (idx < count && iov[idx].iov_len == 0) ++idx;
  }
}

void Wal::Reset() {
  if (ftruncate(fd_, 0) != 0) Die("ftruncate");
  if (lseek(fd_, 0, SEEK_SET) < 0) Die("lseek");
  if (options_.fsync && fdatasync(fd_) != 0) Die("fdatasync");
  bytes_written_ = 0;
}

}  // namespace livegraph
