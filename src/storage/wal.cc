#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/crc32.h"

namespace livegraph {

namespace {

[[noreturn]] void Die(const char* what) {
  std::fprintf(stderr, "Wal: %s failed: %s\n", what, std::strerror(errno));
  std::abort();
}

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

}  // namespace

Wal::Wal(Options options) : options_(std::move(options)) {
  fd_ = open(options_.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) Die("open");
}

Wal::~Wal() {
  if (fd_ >= 0) close(fd_);
}

void Wal::AppendBatch(timestamp_t epoch,
                      const std::vector<std::string_view>& payloads) {
  scratch_.clear();
  for (std::string_view payload : payloads) {
    uint32_t len = static_cast<uint32_t>(payload.size());
    uint32_t crc = Crc32c(&epoch, sizeof(epoch));
    crc = Crc32c(payload.data(), payload.size(), crc);
    AppendRaw(&scratch_, &len, sizeof(len));
    AppendRaw(&scratch_, &crc, sizeof(crc));
    AppendRaw(&scratch_, &epoch, sizeof(epoch));
    AppendRaw(&scratch_, payload.data(), payload.size());
  }
  if (scratch_.empty()) return;
  const char* data = scratch_.data();
  size_t remaining = scratch_.size();
  while (remaining > 0) {
    ssize_t n = write(fd_, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      Die("write");
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  bytes_written_ += scratch_.size();
  if (options_.fsync && fdatasync(fd_) != 0) Die("fdatasync");
}

void Wal::Reset() {
  if (ftruncate(fd_, 0) != 0) Die("ftruncate");
  if (lseek(fd_, 0, SEEK_SET) < 0) Die("lseek");
  bytes_written_ = 0;
}

Wal::Reader::Reader(const std::string& path) {
  fd_ = open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return;  // missing WAL == empty WAL
  off_t size = lseek(fd_, 0, SEEK_END);
  if (size > 0) {
    buffer_.resize(static_cast<size_t>(size));
    ssize_t got = pread(fd_, buffer_.data(), buffer_.size(), 0);
    if (got != size) buffer_.clear();
  }
}

Wal::Reader::~Reader() {
  if (fd_ >= 0) close(fd_);
}

bool Wal::Reader::Next(timestamp_t* epoch, std::string* payload) {
  constexpr size_t kHeader = sizeof(uint32_t) * 2 + sizeof(timestamp_t);
  if (pos_ + kHeader > buffer_.size()) return false;
  uint32_t len, crc;
  std::memcpy(&len, buffer_.data() + pos_, sizeof(len));
  std::memcpy(&crc, buffer_.data() + pos_ + 4, sizeof(crc));
  std::memcpy(epoch, buffer_.data() + pos_ + 8, sizeof(*epoch));
  if (pos_ + kHeader + len > buffer_.size()) return false;  // torn tail
  const uint8_t* body = buffer_.data() + pos_ + kHeader;
  uint32_t expect = Crc32c(epoch, sizeof(*epoch));
  expect = Crc32c(body, len, expect);
  if (expect != crc) return false;  // corrupt record terminates replay
  payload->assign(reinterpret_cast<const char*>(body), len);
  pos_ += kHeader + len;
  return true;
}

}  // namespace livegraph
