// WalReader: the one bounds-checked record-iteration loop over a WAL file,
// shared by everything that replays log bytes — single-engine recovery
// (Graph::Recover), sharded recovery (ShardedStore::Recover), and the
// replication hub's disk catch-up phase (docs/REPLICATION.md).
//
// Record framing (see storage/wal.h): a 24-byte header {u32 payload_len,
// u32 crc32c(epoch ++ participants ++ payload), i64 epoch,
// u32 participants, u32 reserved} followed by the payload bytes. A torn
// tail record (crash mid-append) fails its bounds or CRC check and
// terminates iteration; everything before it is the valid prefix.
//
// Two reading modes:
//   * One-shot: the constructor loads the whole file; Next() walks it.
//     Recovery scans the log twice (epoch bounds, then replay) over the
//     same buffer via Rewind().
//   * Tail-reading: ReadMore() re-checks the on-disk file for bytes
//     appended past the loaded buffer and extends it, so a reader can
//     follow a live log (the replication catch-up path) without
//     re-reading from offset zero.
#ifndef LIVEGRAPH_STORAGE_WAL_READER_H_
#define LIVEGRAPH_STORAGE_WAL_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace livegraph {

/// The on-disk record header, byte-for-byte: 4+4 bytes, an 8-aligned
/// epoch, then participants + padding, so one iovec covers the whole
/// header on the append side.
struct WalRecordHeader {
  uint32_t len;
  uint32_t crc;
  timestamp_t epoch;
  uint32_t participants;
  uint32_t reserved;
};
static_assert(sizeof(WalRecordHeader) == 24, "framing layout");

/// A parsed record, viewing the reader's buffer (valid until the buffer is
/// extended or destroyed).
struct WalRecordView {
  timestamp_t epoch = 0;
  uint32_t participants = 0;
  const uint8_t* payload = nullptr;
  uint32_t payload_len = 0;
};

/// Parses (and CRC-checks) the record starting at `pos` in `data[0,size)`.
/// False at end of valid records: EOF, a torn tail (header or payload runs
/// past `size`), or a corrupt record (CRC mismatch). Every access is
/// bounds-checked against `size` before it happens.
bool ParseWalRecord(const uint8_t* data, size_t size, size_t pos,
                    WalRecordView* out);

class WalReader {
 public:
  /// Loads the whole file at `path`; a missing file reads as empty.
  explicit WalReader(const std::string& path);
  ~WalReader();

  WalReader(const WalReader&) = delete;
  WalReader& operator=(const WalReader&) = delete;

  /// Returns false at end of log (EOF or first torn/corrupt record).
  bool Next(timestamp_t* epoch, uint32_t* participants,
            std::string* payload);
  bool Next(timestamp_t* epoch, std::string* payload) {
    uint32_t participants = 0;
    return Next(epoch, &participants, payload);
  }
  /// Copy-free variant: `view` aliases the buffer until ReadMore() or
  /// destruction.
  bool Next(WalRecordView* view);

  /// Byte length of the valid record prefix consumed so far. After a scan
  /// to the end, everything past this offset is a torn/corrupt tail —
  /// recovery truncates to it so post-recovery appends stay reachable by
  /// the next replay.
  size_t valid_bytes() const { return pos_; }
  size_t file_bytes() const { return buffer_.size(); }

  /// Restarts iteration over the already-loaded buffer.
  void Rewind() { pos_ = 0; }

  /// Tail mode: extends the buffer with bytes appended to the on-disk
  /// file since the last load. True when new bytes arrived — a Next()
  /// that previously returned false (apparent torn tail that was really a
  /// record mid-append) may now succeed. The iteration position is kept.
  bool ReadMore();

  /// After a scan to the end: truncates the on-disk file at `path` to the
  /// valid record prefix, cutting off a torn/corrupt tail left by a crash
  /// mid-append. No-op when the whole file parsed.
  void TruncateTornTail(const std::string& path) const;

 private:
  int fd_ = -1;
  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_STORAGE_WAL_READER_H_
