#include "storage/wal_reader.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"

namespace livegraph {

bool ParseWalRecord(const uint8_t* data, size_t size, size_t pos,
                    WalRecordView* out) {
  constexpr size_t kHeader = sizeof(WalRecordHeader);
  if (pos > size || size - pos < kHeader) return false;
  uint32_t len, crc;
  std::memcpy(&len, data + pos, sizeof(len));
  std::memcpy(&crc, data + pos + 4, sizeof(crc));
  std::memcpy(&out->epoch, data + pos + 8, sizeof(out->epoch));
  std::memcpy(&out->participants, data + pos + 16,
              sizeof(out->participants));
  if (size - pos - kHeader < len) return false;  // torn tail
  const uint8_t* body = data + pos + kHeader;
  uint32_t expect = Crc32c(&out->epoch, sizeof(out->epoch));
  expect = Crc32c(&out->participants, sizeof(out->participants), expect);
  expect = Crc32c(body, len, expect);
  if (expect != crc) {
    // Corrupt record terminates replay. Failing on the very FIRST record
    // of a non-empty log is indistinguishable from "empty log" to the
    // caller, and the usual cause is a file written with a different
    // record framing — say so instead of silently replaying nothing.
    if (pos == 0) {
      std::fprintf(stderr,
                   "Wal: first record fails its CRC (%zu bytes on disk) — "
                   "corrupt log or incompatible record framing; replaying "
                   "nothing\n",
                   size);
    }
    return false;
  }
  out->payload = body;
  out->payload_len = len;
  return true;
}

WalReader::WalReader(const std::string& path) {
  fd_ = open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return;  // missing WAL == empty WAL
  off_t size = lseek(fd_, 0, SEEK_END);
  if (size > 0) {
    buffer_.resize(static_cast<size_t>(size));
    ssize_t got = pread(fd_, buffer_.data(), buffer_.size(), 0);
    if (got != size) buffer_.clear();
  }
}

WalReader::~WalReader() {
  if (fd_ >= 0) close(fd_);
}

bool WalReader::Next(WalRecordView* view) {
  if (!ParseWalRecord(buffer_.data(), buffer_.size(), pos_, view)) {
    return false;
  }
  pos_ += sizeof(WalRecordHeader) + view->payload_len;
  return true;
}

bool WalReader::Next(timestamp_t* epoch, uint32_t* participants,
                     std::string* payload) {
  WalRecordView view;
  if (!Next(&view)) return false;
  *epoch = view.epoch;
  *participants = view.participants;
  payload->assign(reinterpret_cast<const char*>(view.payload),
                  view.payload_len);
  return true;
}

bool WalReader::ReadMore() {
  if (fd_ < 0) return false;
  off_t size = lseek(fd_, 0, SEEK_END);
  if (size <= 0 || static_cast<size_t>(size) <= buffer_.size()) {
    return false;
  }
  size_t old_size = buffer_.size();
  buffer_.resize(static_cast<size_t>(size));
  ssize_t got = pread(fd_, buffer_.data() + old_size,
                      buffer_.size() - old_size,
                      static_cast<off_t>(old_size));
  if (got < 0) got = 0;
  // A short read (file still growing, or I/O error) keeps what arrived;
  // the next ReadMore picks up from the new end.
  buffer_.resize(old_size + static_cast<size_t>(got));
  return buffer_.size() > old_size;
}

void WalReader::TruncateTornTail(const std::string& path) const {
  if (pos_ >= buffer_.size()) return;  // whole file parsed: nothing torn
  if (truncate(path.c_str(), static_cast<off_t>(pos_)) != 0) {
    std::fprintf(stderr, "Wal: torn-tail truncation of %s failed: %s\n",
                 path.c_str(), std::strerror(errno));
  }
}

}  // namespace livegraph
