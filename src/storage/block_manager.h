// Block store: one large mmap region carved into power-of-2 blocks.
//
// Paper §6 ("Memory management"): "Inspired by the buddy system, LiveGraph
// fits each TEL into a log block of the closest power-of-2 size", starting
// at 64 bytes, with "an array of lists L ... where L[i] contains the
// positions of blocks with size equal to 2^i × 64 bytes", per-thread private
// free lists for small orders up to a threshold m, and shared lists above.
// Retired blocks (superseded TEL/vertex versions) are reclaimed with an
// epoch-based scheme during compaction (§6 "Compaction").
#ifndef LIVEGRAPH_STORAGE_BLOCK_MANAGER_H_
#define LIVEGRAPH_STORAGE_BLOCK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/mmap_region.h"
#include "util/types.h"

namespace livegraph {

/// Packed block reference: top 8 bits hold the block order (block size =
/// 1 << order bytes), low 56 bits hold the byte offset in the region.
inline constexpr int kPtrOrderShift = 56;
inline constexpr block_ptr_t kPtrOffsetMask =
    (block_ptr_t{1} << kPtrOrderShift) - 1;

inline block_ptr_t PackBlockPtr(uint64_t offset, uint8_t order) {
  return (block_ptr_t{order} << kPtrOrderShift) | offset;
}
inline uint64_t BlockOffset(block_ptr_t p) { return p & kPtrOffsetMask; }
inline uint8_t BlockOrder(block_ptr_t p) {
  return static_cast<uint8_t>(p >> kPtrOrderShift);
}

class BlockManager {
 public:
  struct Options {
    /// Backing file; empty for anonymous (in-memory) storage.
    std::string path;
    /// Virtual address reservation; pages commit lazily.
    size_t reserve_bytes = size_t{1} << 36;  // 64 GiB of address space
    /// Orders <= this use striped (effectively thread-private) free lists;
    /// larger orders share one list (paper's tunable threshold m, §6).
    int private_order_threshold = 14;
  };

  struct Stats {
    uint64_t bump_allocated_bytes;  // high-water mark of the bump pointer
    uint64_t free_list_bytes;       // recycled but unused
    uint64_t retired_bytes;         // awaiting epoch reclamation
    uint64_t live_bytes() const {
      return bump_allocated_bytes - free_list_bytes - retired_bytes;
    }
  };

  static constexpr int kMinOrder = 6;   // 64-byte minimum block (§6)
  static constexpr int kMaxOrder = 48;

  explicit BlockManager(Options options);

  BlockManager(const BlockManager&) = delete;
  BlockManager& operator=(const BlockManager&) = delete;

  /// Allocates a block of 1<<order bytes. Thread-safe.
  block_ptr_t Allocate(uint8_t order);

  /// Returns a block to the free lists for immediate reuse. Only valid when
  /// no concurrent reader can still reach the block.
  void Free(block_ptr_t ptr);

  /// Defers reclamation of a block that may still be visible to readers
  /// with read epoch < retire_epoch.
  void Retire(block_ptr_t ptr, timestamp_t retire_epoch);

  /// Moves retired blocks with retire_epoch <= safe_epoch to the free
  /// lists. Returns the number of blocks reclaimed.
  size_t ReclaimRetired(timestamp_t safe_epoch);

  /// Translates a block reference to a raw pointer. Stable for the life of
  /// the BlockManager.
  uint8_t* Pointer(block_ptr_t ptr) const {
    return region_.data() + BlockOffset(ptr);
  }

  /// Smallest order whose block fits `bytes`.
  static uint8_t OrderFor(size_t bytes);

  Stats GetStats() const;

  /// msync the backing file (durability of the primary store is provided by
  /// the WAL + checkpoints; this is used by tests).
  void Sync() { region_.Sync(); }

 private:
  struct FreeList {
    std::mutex mu;
    std::vector<block_ptr_t> blocks;
  };

  static constexpr int kStripes = 64;

  FreeList& ListFor(uint8_t order);

  Options options_;
  MmapRegion region_;
  std::atomic<uint64_t> bump_{0};
  std::mutex grow_mu_;

  // free_lists_[order][stripe] for order <= threshold (stripe by thread),
  // free_lists_[order][0] shared otherwise.
  std::vector<std::vector<FreeList>> free_lists_;
  std::atomic<uint64_t> free_bytes_{0};

  std::mutex retired_mu_;
  struct Retired {
    timestamp_t epoch;
    block_ptr_t ptr;
  };
  std::vector<Retired> retired_;
  std::atomic<uint64_t> retired_bytes_{0};
};

}  // namespace livegraph

#endif  // LIVEGRAPH_STORAGE_BLOCK_MANAGER_H_
