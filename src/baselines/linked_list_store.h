// Per-vertex linked-list adjacency storage — the paper's stand-in for
// Neo4j ("we ... implement an efficient in-memory linked list prototype in
// C++ rather than running Neo4j on a managed language", §2.1). Nodes for
// different vertices interleave in the allocation pool, so traversing one
// list chases pointers across scattered cache lines: the all-random row of
// Table 1. Sessions hold the shared/exclusive latch for their lifetime,
// like the B+ tree comparator.
#ifndef LIVEGRAPH_BASELINES_LINKED_LIST_STORE_H_
#define LIVEGRAPH_BASELINES_LINKED_LIST_STORE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/store.h"
#include "baselines/paged_store.h"

namespace livegraph {

class LinkedListStore : public Store {
 public:
  /// Exposed for the §2 microbenchmarks, which measure the raw pointer
  /// chase without session or cursor machinery.
  struct EdgeNode {
    vertex_t dst;
    label_t label;
    std::string props;
    EdgeNode* next;
  };

  explicit LinkedListStore(PageCacheSim* pagesim = nullptr);

  std::string Name() const override { return "LinkedList"; }
  StoreTraits Traits() const override {
    // Prepend-on-insert gives newest-first scans; no MVCC, no rollback.
    return StoreTraits{/*time_ordered_scans=*/true, /*snapshot_reads=*/false,
                       /*transactional_writes=*/false};
  }

  std::unique_ptr<StoreTxn> BeginTxn() override;
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override;

  /// Head of `src`'s adjacency chain (newest first), for single-threaded
  /// microbenchmarks only: bypasses the latch.
  const EdgeNode* head(vertex_t src) const {
    if (src < 0 || static_cast<size_t>(src) >= vertices_.size()) {
      return nullptr;
    }
    return vertices_[static_cast<size_t>(src)].head;
  }

 private:
  template <typename Base, typename Lock>
  friend class LinkedListSession;
  friend class LinkedListWriteTxn;

  struct Vertex {
    std::string props;
    bool exists = false;
    EdgeNode* head = nullptr;  // newest first (prepend on insert)
  };

  EdgeNode* FindNode(vertex_t src, label_t label, vertex_t dst) const;
  EdgeCursor ScanLocked(vertex_t src, label_t label, size_t limit) const;
  size_t CountLocked(vertex_t src, label_t label) const;

  mutable std::shared_mutex mu_;
  std::vector<Vertex> vertices_;
  std::deque<EdgeNode> pool_;  // interleaved allocation across vertices
  std::atomic<timestamp_t> commit_seq_{0};
  PageCacheSim* pagesim_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_LINKED_LIST_STORE_H_
