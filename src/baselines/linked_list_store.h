// Per-vertex linked-list adjacency storage — the paper's stand-in for
// Neo4j ("we ... implement an efficient in-memory linked list prototype in
// C++ rather than running Neo4j on a managed language", §2.1). Nodes for
// different vertices interleave in the allocation pool, so traversing one
// list chases pointers across scattered cache lines: the all-random row of
// Table 1.
#ifndef LIVEGRAPH_BASELINES_LINKED_LIST_STORE_H_
#define LIVEGRAPH_BASELINES_LINKED_LIST_STORE_H_

#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "baselines/paged_store.h"
#include "baselines/store_interface.h"

namespace livegraph {

class LinkedListStore : public GraphStore {
 public:
  explicit LinkedListStore(PageCacheSim* pagesim = nullptr);

  std::string Name() const override { return "LinkedList"; }

  vertex_t AddNode(std::string_view data) override;
  bool GetNode(vertex_t id, std::string* out) override;
  bool UpdateNode(vertex_t id, std::string_view data) override;
  bool DeleteNode(vertex_t id) override;

  bool AddLink(vertex_t src, label_t label, vertex_t dst,
               std::string_view data) override;
  bool UpdateLink(vertex_t src, label_t label, vertex_t dst,
                  std::string_view data) override;
  bool DeleteLink(vertex_t src, label_t label, vertex_t dst) override;
  bool GetLink(vertex_t src, label_t label, vertex_t dst,
               std::string* out) override;
  size_t ScanLinks(vertex_t src, label_t label, const EdgeScanFn& fn) override;
  size_t CountLinks(vertex_t src, label_t label) override;

  std::unique_ptr<GraphReadView> OpenReadView() override;

 private:
  friend class LinkedListReadView;

  struct EdgeNode {
    vertex_t dst;
    label_t label;
    std::string props;
    EdgeNode* next;
  };
  struct Vertex {
    std::string props;
    bool exists = false;
    EdgeNode* head = nullptr;  // newest first (prepend on insert)
  };

  EdgeNode* FindNode(vertex_t src, label_t label, vertex_t dst) const;

  mutable std::shared_mutex mu_;
  std::vector<Vertex> vertices_;
  std::deque<EdgeNode> pool_;  // interleaved allocation across vertices
  PageCacheSim* pagesim_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_LINKED_LIST_STORE_H_
