#include "baselines/linked_list_store.h"

namespace livegraph {

namespace {

class LinkedListReadView;

}  // namespace

LinkedListStore::LinkedListStore(PageCacheSim* pagesim) : pagesim_(pagesim) {}

vertex_t LinkedListStore::AddNode(std::string_view data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  vertices_.push_back(Vertex{std::string(data), true, nullptr});
  return static_cast<vertex_t>(vertices_.size() - 1);
}

bool LinkedListStore::GetNode(vertex_t id, std::string* out) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= vertices_.size() ||
      !vertices_[static_cast<size_t>(id)].exists) {
    return false;
  }
  out->assign(vertices_[static_cast<size_t>(id)].props);
  return true;
}

bool LinkedListStore::UpdateNode(vertex_t id, std::string_view data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= vertices_.size() ||
      !vertices_[static_cast<size_t>(id)].exists) {
    return false;
  }
  vertices_[static_cast<size_t>(id)].props.assign(data.data(), data.size());
  return true;
}

bool LinkedListStore::DeleteNode(vertex_t id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= vertices_.size() ||
      !vertices_[static_cast<size_t>(id)].exists) {
    return false;
  }
  vertices_[static_cast<size_t>(id)].exists = false;
  vertices_[static_cast<size_t>(id)].head = nullptr;
  return true;
}

LinkedListStore::EdgeNode* LinkedListStore::FindNode(vertex_t src,
                                                     label_t label,
                                                     vertex_t dst) const {
  if (src < 0 || static_cast<size_t>(src) >= vertices_.size()) return nullptr;
  // Pointer chase: every hop is a potential cache miss.
  for (EdgeNode* node = vertices_[static_cast<size_t>(src)].head;
       node != nullptr; node = node->next) {
    if (pagesim_ != nullptr) pagesim_->Touch(node, sizeof(EdgeNode), false);
    if (node->label == label && node->dst == dst) return node;
  }
  return nullptr;
}

bool LinkedListStore::AddLink(vertex_t src, label_t label, vertex_t dst,
                              std::string_view data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (EdgeNode* existing = FindNode(src, label, dst)) {
    existing->props.assign(data.data(), data.size());
    return false;
  }
  if (src < 0 || static_cast<size_t>(src) >= vertices_.size()) return false;
  pool_.push_back(EdgeNode{dst, label, std::string(data),
                           vertices_[static_cast<size_t>(src)].head});
  vertices_[static_cast<size_t>(src)].head = &pool_.back();
  if (pagesim_ != nullptr) {
    pagesim_->Touch(&pool_.back(), sizeof(EdgeNode), true);
  }
  return true;
}

bool LinkedListStore::UpdateLink(vertex_t src, label_t label, vertex_t dst,
                                 std::string_view data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  EdgeNode* node = FindNode(src, label, dst);
  if (node == nullptr) return false;
  node->props.assign(data.data(), data.size());
  return true;
}

bool LinkedListStore::DeleteLink(vertex_t src, label_t label, vertex_t dst) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (src < 0 || static_cast<size_t>(src) >= vertices_.size()) return false;
  EdgeNode** slot = &vertices_[static_cast<size_t>(src)].head;
  while (*slot != nullptr) {
    if ((*slot)->label == label && (*slot)->dst == dst) {
      *slot = (*slot)->next;  // node leaks into the pool; freed at destruct
      return true;
    }
    slot = &(*slot)->next;
  }
  return false;
}

bool LinkedListStore::GetLink(vertex_t src, label_t label, vertex_t dst,
                              std::string* out) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  EdgeNode* node = FindNode(src, label, dst);
  if (node == nullptr) return false;
  out->assign(node->props);
  return true;
}

size_t LinkedListStore::ScanLinks(vertex_t src, label_t label,
                                  const EdgeScanFn& fn) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (src < 0 || static_cast<size_t>(src) >= vertices_.size()) return 0;
  size_t visited = 0;
  for (EdgeNode* node = vertices_[static_cast<size_t>(src)].head;
       node != nullptr; node = node->next) {
    if (pagesim_ != nullptr) pagesim_->Touch(node, sizeof(EdgeNode), false);
    if (node->label != label) continue;
    visited++;
    if (!fn(node->dst, node->props)) break;
  }
  return visited;
}

size_t LinkedListStore::CountLinks(vertex_t src, label_t label) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (src < 0 || static_cast<size_t>(src) >= vertices_.size()) return 0;
  size_t count = 0;
  for (EdgeNode* node = vertices_[static_cast<size_t>(src)].head;
       node != nullptr; node = node->next) {
    if (node->label == label) count++;
  }
  return count;
}

namespace {

class LinkedListViewImpl : public GraphReadView {
 public:
  explicit LinkedListViewImpl(LinkedListStore* store) : store_(store) {}
  bool GetNode(vertex_t id, std::string* out) const override {
    return store_->GetNode(id, out);
  }
  bool GetLink(vertex_t src, label_t label, vertex_t dst,
               std::string* out) const override {
    return store_->GetLink(src, label, dst, out);
  }
  size_t ScanLinks(vertex_t src, label_t label,
                   const EdgeScanFn& fn) const override {
    return store_->ScanLinks(src, label, fn);
  }
  size_t CountLinks(vertex_t src, label_t label) const override {
    return store_->CountLinks(src, label);
  }

 private:
  LinkedListStore* store_;
};

}  // namespace

std::unique_ptr<GraphReadView> LinkedListStore::OpenReadView() {
  return std::make_unique<LinkedListViewImpl>(this);
}

}  // namespace livegraph
