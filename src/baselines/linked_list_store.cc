#include "baselines/linked_list_store.h"

#include <mutex>

namespace livegraph {

LinkedListStore::LinkedListStore(PageCacheSim* pagesim) : pagesim_(pagesim) {}

LinkedListStore::EdgeNode* LinkedListStore::FindNode(vertex_t src,
                                                     label_t label,
                                                     vertex_t dst) const {
  if (src < 0 || static_cast<size_t>(src) >= vertices_.size()) return nullptr;
  // Pointer chase: every hop is a potential cache miss.
  for (EdgeNode* node = vertices_[static_cast<size_t>(src)].head;
       node != nullptr; node = node->next) {
    if (pagesim_ != nullptr) pagesim_->Touch(node, sizeof(EdgeNode), false);
    if (node->label == label && node->dst == dst) return node;
  }
  return nullptr;
}

EdgeCursor LinkedListStore::ScanLocked(vertex_t src, label_t label,
                                       size_t limit) const {
  if (src < 0 || static_cast<size_t>(src) >= vertices_.size()) {
    return EdgeCursor();
  }
  EdgeCursorBuilder builder;
  timestamp_t seq = 0;
  for (EdgeNode* node = vertices_[static_cast<size_t>(src)].head;
       node != nullptr && builder.size() < limit; node = node->next) {
    if (pagesim_ != nullptr) pagesim_->Touch(node, sizeof(EdgeNode), false);
    if (node->label != label) continue;
    // Chain order is newest-first already; keep it.
    builder.Add(node->dst, node->props, seq--);
  }
  return std::move(builder).Build();
}

size_t LinkedListStore::CountLocked(vertex_t src, label_t label) const {
  if (src < 0 || static_cast<size_t>(src) >= vertices_.size()) return 0;
  size_t count = 0;
  for (EdgeNode* node = vertices_[static_cast<size_t>(src)].head;
       node != nullptr; node = node->next) {
    if (node->label == label) count++;
  }
  return count;
}

/// Latch-holding session: the read surface shared by both session kinds,
/// parameterized on the interface it fulfills and the latch it holds.
template <typename Base, typename Lock>
class LinkedListSession : public Base {
 public:
  explicit LinkedListSession(LinkedListStore* store)
      : store_(store), lock_(store->mu_) {}

  StatusOr<std::string> GetNode(vertex_t id) override {
    if (id < 0 || static_cast<size_t>(id) >= store_->vertices_.size() ||
        !store_->vertices_[static_cast<size_t>(id)].exists) {
      return Status::kNotFound;
    }
    return store_->vertices_[static_cast<size_t>(id)].props;
  }

  StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                vertex_t dst) override {
    LinkedListStore::EdgeNode* node = store_->FindNode(src, label, dst);
    if (node == nullptr) return Status::kNotFound;
    return node->props;
  }

  EdgeCursor ScanLinks(vertex_t src, label_t label, size_t limit) override {
    return store_->ScanLocked(src, label, limit);
  }

  size_t CountLinks(vertex_t src, label_t label) override {
    return store_->CountLocked(src, label);
  }

  vertex_t VertexCount() override {
    return static_cast<vertex_t>(store_->vertices_.size());
  }

 protected:
  LinkedListStore* store_;
  Lock lock_;
};

using LinkedListReadTxn =
    LinkedListSession<StoreReadTxn, std::shared_lock<std::shared_mutex>>;

/// Exclusive-latch write session; writes apply in place.
class LinkedListWriteTxn final
    : public LinkedListSession<StoreTxn, std::unique_lock<std::shared_mutex>> {
 public:
  using LinkedListSession::LinkedListSession;

  StatusOr<vertex_t> AddNode(std::string_view data) override {
    store_->vertices_.push_back(
        LinkedListStore::Vertex{std::string(data), true, nullptr});
    return static_cast<vertex_t>(store_->vertices_.size() - 1);
  }

  Status UpdateNode(vertex_t id, std::string_view data) override {
    if (id < 0 || static_cast<size_t>(id) >= store_->vertices_.size() ||
        !store_->vertices_[static_cast<size_t>(id)].exists) {
      return Status::kNotFound;
    }
    store_->vertices_[static_cast<size_t>(id)].props.assign(data.data(),
                                                            data.size());
    return Status::kOk;
  }

  Status DeleteNode(vertex_t id) override {
    if (id < 0 || static_cast<size_t>(id) >= store_->vertices_.size() ||
        !store_->vertices_[static_cast<size_t>(id)].exists) {
      return Status::kNotFound;
    }
    store_->vertices_[static_cast<size_t>(id)].exists = false;
    store_->vertices_[static_cast<size_t>(id)].head = nullptr;
    return Status::kOk;
  }

  StatusOr<bool> AddLink(vertex_t src, label_t label, vertex_t dst,
                         std::string_view data) override {
    if (LinkedListStore::EdgeNode* existing =
            store_->FindNode(src, label, dst)) {
      existing->props.assign(data.data(), data.size());
      return false;
    }
    if (src < 0 || static_cast<size_t>(src) >= store_->vertices_.size()) {
      return Status::kNotFound;
    }
    store_->pool_.push_back(LinkedListStore::EdgeNode{
        dst, label, std::string(data),
        store_->vertices_[static_cast<size_t>(src)].head});
    store_->vertices_[static_cast<size_t>(src)].head = &store_->pool_.back();
    if (store_->pagesim_ != nullptr) {
      store_->pagesim_->Touch(&store_->pool_.back(),
                              sizeof(LinkedListStore::EdgeNode), true);
    }
    return true;
  }

  Status UpdateLink(vertex_t src, label_t label, vertex_t dst,
                    std::string_view data) override {
    LinkedListStore::EdgeNode* node = store_->FindNode(src, label, dst);
    if (node == nullptr) return Status::kNotFound;
    node->props.assign(data.data(), data.size());
    return Status::kOk;
  }

  Status DeleteLink(vertex_t src, label_t label, vertex_t dst) override {
    if (src < 0 || static_cast<size_t>(src) >= store_->vertices_.size()) {
      return Status::kNotFound;
    }
    LinkedListStore::EdgeNode** slot =
        &store_->vertices_[static_cast<size_t>(src)].head;
    while (*slot != nullptr) {
      if ((*slot)->label == label && (*slot)->dst == dst) {
        *slot = (*slot)->next;  // node leaks into the pool; freed at destruct
        return Status::kOk;
      }
      slot = &(*slot)->next;
    }
    return Status::kNotFound;
  }

  StatusOr<timestamp_t> Commit() override {
    if (!lock_.owns_lock()) return Status::kNotActive;
    // relaxed: distinct-epoch minting only; the held writer lock orders
    // the writes.
    timestamp_t epoch =
        store_->commit_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    lock_.unlock();
    return epoch;
  }

  void Abort() override {
    if (lock_.owns_lock()) lock_.unlock();
  }
};

std::unique_ptr<StoreTxn> LinkedListStore::BeginTxn() {
  return std::make_unique<LinkedListWriteTxn>(this);
}

std::unique_ptr<StoreReadTxn> LinkedListStore::BeginReadTxn() {
  return std::make_unique<LinkedListReadTxn>(this);
}

}  // namespace livegraph
