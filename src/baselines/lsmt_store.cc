#include "baselines/lsmt_store.h"

#include <limits>

namespace livegraph {

namespace {
EdgeKey NodeKey(vertex_t id) { return EdgeKey{id, 0, 0}; }
}  // namespace

LsmtStore::LsmtStore() : LsmtStore(Lsmt::Options()) {}

LsmtStore::LsmtStore(Lsmt::Options options)
    : edges_(options), nodes_(options) {}

/// One session class serves both roles: the Lsmt locks per operation, so a
/// read session adds no state and a write session only tracks liveness.
class LsmtTxn : public StoreTxn {
 public:
  explicit LsmtTxn(LsmtStore* store) : store_(store) {}

  StatusOr<std::string> GetNode(vertex_t id) override {
    std::string out;
    if (!store_->nodes_.Get(NodeKey(id), &out)) return Status::kNotFound;
    return out;
  }

  StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                vertex_t dst) override {
    std::string out;
    if (!store_->edges_.Get(EdgeKey{src, label, dst}, &out)) {
      return Status::kNotFound;
    }
    return out;
  }

  EdgeCursor ScanLinks(vertex_t src, label_t label, size_t limit) override {
    EdgeKey lower{src, label, std::numeric_limits<vertex_t>::min()};
    EdgeKey upper{src, static_cast<label_t>(label + 1),
                  std::numeric_limits<vertex_t>::min()};
    if (label == std::numeric_limits<label_t>::max()) {
      upper = EdgeKey{src + 1, 0, std::numeric_limits<vertex_t>::min()};
    }
    EdgeCursorBuilder builder;
    timestamp_t seq = 0;
    store_->edges_.Scan(lower, upper,
                        [&](const EdgeKey& key, std::string_view value) {
                          if (builder.size() >= limit) return false;
                          builder.Add(key.dst, value, seq++);
                          return builder.size() < limit;
                        });
    return std::move(builder).Build();
  }

  size_t CountLinks(vertex_t src, label_t label) override {
    EdgeKey lower{src, label, std::numeric_limits<vertex_t>::min()};
    EdgeKey upper{src, static_cast<label_t>(label + 1),
                  std::numeric_limits<vertex_t>::min()};
    if (label == std::numeric_limits<label_t>::max()) {
      upper = EdgeKey{src + 1, 0, std::numeric_limits<vertex_t>::min()};
    }
    return store_->edges_.Scan(
        lower, upper, [](const EdgeKey&, std::string_view) { return true; });
  }

  vertex_t VertexCount() override {
    return store_->next_node_.load(std::memory_order_acquire);
  }

  StatusOr<vertex_t> AddNode(std::string_view data) override {
    vertex_t id = store_->next_node_.fetch_add(1, std::memory_order_acq_rel);
    store_->nodes_.Put(NodeKey(id), data);
    return id;
  }

  Status UpdateNode(vertex_t id, std::string_view data) override {
    std::string unused;
    if (!store_->nodes_.Get(NodeKey(id), &unused)) return Status::kNotFound;
    store_->nodes_.Put(NodeKey(id), data);
    return Status::kOk;
  }

  Status DeleteNode(vertex_t id) override {
    return store_->nodes_.Delete(NodeKey(id)) ? Status::kOk
                                              : Status::kNotFound;
  }

  StatusOr<bool> AddLink(vertex_t src, label_t label, vertex_t dst,
                         std::string_view data) override {
    return store_->edges_.Put(EdgeKey{src, label, dst}, data);
  }

  Status UpdateLink(vertex_t src, label_t label, vertex_t dst,
                    std::string_view data) override {
    std::string unused;
    if (!store_->edges_.Get(EdgeKey{src, label, dst}, &unused)) {
      return Status::kNotFound;
    }
    store_->edges_.Put(EdgeKey{src, label, dst}, data);
    return Status::kOk;
  }

  Status DeleteLink(vertex_t src, label_t label, vertex_t dst) override {
    return store_->edges_.Delete(EdgeKey{src, label, dst})
               ? Status::kOk
               : Status::kNotFound;
  }

  StatusOr<timestamp_t> Commit() override {
    if (!active_) return Status::kNotActive;
    active_ = false;
    // relaxed: distinct-epoch minting only; Lsmt's rw_mu_ orders the
    // writes themselves.
    return store_->commit_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void Abort() override { active_ = false; }

 private:
  LsmtStore* store_;
  bool active_ = true;
};

std::unique_ptr<StoreTxn> LsmtStore::BeginTxn() {
  return std::make_unique<LsmtTxn>(this);
}

std::unique_ptr<StoreReadTxn> LsmtStore::BeginReadTxn() {
  return std::make_unique<LsmtTxn>(this);
}

}  // namespace livegraph
