#include "baselines/lsmt_store.h"

namespace livegraph {

namespace {
EdgeKey NodeKey(vertex_t id) { return EdgeKey{id, 0, 0}; }
}  // namespace

LsmtStore::LsmtStore() : LsmtStore(Lsmt::Options()) {}

LsmtStore::LsmtStore(Lsmt::Options options)
    : edges_(options), nodes_(options) {}

vertex_t LsmtStore::AddNode(std::string_view data) {
  vertex_t id = next_node_.fetch_add(1, std::memory_order_relaxed);
  nodes_.Put(NodeKey(id), data);
  return id;
}

bool LsmtStore::GetNode(vertex_t id, std::string* out) {
  return nodes_.Get(NodeKey(id), out);
}

bool LsmtStore::UpdateNode(vertex_t id, std::string_view data) {
  std::string unused;
  if (!nodes_.Get(NodeKey(id), &unused)) return false;
  nodes_.Put(NodeKey(id), data);
  return true;
}

bool LsmtStore::DeleteNode(vertex_t id) { return nodes_.Delete(NodeKey(id)); }

bool LsmtStore::AddLink(vertex_t src, label_t label, vertex_t dst,
                        std::string_view data) {
  return edges_.Put(EdgeKey{src, label, dst}, data);
}

bool LsmtStore::UpdateLink(vertex_t src, label_t label, vertex_t dst,
                           std::string_view data) {
  std::string unused;
  if (!edges_.Get(EdgeKey{src, label, dst}, &unused)) return false;
  edges_.Put(EdgeKey{src, label, dst}, data);
  return true;
}

bool LsmtStore::DeleteLink(vertex_t src, label_t label, vertex_t dst) {
  return edges_.Delete(EdgeKey{src, label, dst});
}

bool LsmtStore::GetLink(vertex_t src, label_t label, vertex_t dst,
                        std::string* out) {
  return edges_.Get(EdgeKey{src, label, dst}, out);
}

size_t LsmtStore::ScanLinks(vertex_t src, label_t label,
                            const EdgeScanFn& fn) {
  EdgeKey lower{src, label, std::numeric_limits<vertex_t>::min()};
  EdgeKey upper{src, static_cast<label_t>(label + 1),
                std::numeric_limits<vertex_t>::min()};
  if (label == std::numeric_limits<label_t>::max()) {
    upper = EdgeKey{src + 1, 0, std::numeric_limits<vertex_t>::min()};
  }
  return edges_.Scan(lower, upper,
                     [&fn](const EdgeKey& key, std::string_view value) {
                       return fn(key.dst, value);
                     });
}

size_t LsmtStore::CountLinks(vertex_t src, label_t label) {
  return ScanLinks(src, label,
                   [](vertex_t, std::string_view) { return true; });
}

namespace {

class LsmtViewImpl : public GraphReadView {
 public:
  explicit LsmtViewImpl(LsmtStore* store) : store_(store) {}
  bool GetNode(vertex_t id, std::string* out) const override {
    return store_->GetNode(id, out);
  }
  bool GetLink(vertex_t src, label_t label, vertex_t dst,
               std::string* out) const override {
    return store_->GetLink(src, label, dst, out);
  }
  size_t ScanLinks(vertex_t src, label_t label,
                   const EdgeScanFn& fn) const override {
    return store_->ScanLinks(src, label, fn);
  }
  size_t CountLinks(vertex_t src, label_t label) const override {
    return store_->CountLinks(src, label);
  }

 private:
  LsmtStore* store_;
};

}  // namespace

std::unique_ptr<GraphReadView> LsmtStore::OpenReadView() {
  return std::make_unique<LsmtViewImpl>(this);
}

}  // namespace livegraph
