// Store adaptor over the LiveGraph engine: sessions map 1:1 onto the
// native Transaction/ReadTransaction MVCC objects — the way the paper's
// harness drives the embedded stores (§7.1). Scans hand back the core
// EdgeIterator inside an EdgeCursor, so the purely sequential TEL walk
// (§4) reaches drivers with no callback, no virtual call and no
// allocation per edge.
#ifndef LIVEGRAPH_BASELINES_LIVEGRAPH_STORE_H_
#define LIVEGRAPH_BASELINES_LIVEGRAPH_STORE_H_

#include <memory>
#include <string>

#include "api/store.h"
#include "baselines/paged_store.h"
#include "core/graph.h"
#include "core/transaction.h"

namespace livegraph {

class LiveGraphStore : public Store {
 public:
  explicit LiveGraphStore(GraphOptions options = {},
                          PageCacheSim* pagesim = nullptr);

  /// Out-of-core configuration ("Paged" engine): owns its page-cache
  /// simulator, charging device latencies for every byte range scans and
  /// lookups actually walk (paper Tables 5/6/8).
  LiveGraphStore(GraphOptions options, PageCacheSim::Options pagesim_options);

  /// Adopts an already-built engine — the restart path: wrap the graph
  /// returned by Graph::Recover (§6) behind the Store surface.
  explicit LiveGraphStore(std::unique_ptr<Graph> graph);

  /// Restart path for the out-of-core configuration: a recovered engine
  /// plus an owned page-cache simulator.
  LiveGraphStore(std::unique_ptr<Graph> graph,
                 PageCacheSim::Options pagesim_options);

  std::string Name() const override {
    return owned_pagesim_ != nullptr ? "PagedLiveGraph" : "LiveGraph";
  }
  StoreTraits Traits() const override {
    return StoreTraits{/*time_ordered_scans=*/true, /*snapshot_reads=*/true,
                       /*transactional_writes=*/true};
  }

  std::unique_ptr<StoreTxn> BeginTxn() override;
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override;

  Graph& graph() { return *graph_; }

 private:
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<PageCacheSim> owned_pagesim_;
  PageCacheSim* pagesim_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_LIVEGRAPH_STORE_H_
