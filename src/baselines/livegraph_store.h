// GraphStore adapter over the LiveGraph engine: each operation is one
// (auto-commit) transaction, with bounded retry on conflicts — the way the
// paper's LinkBench harness drives the embedded stores (§7.1).
#ifndef LIVEGRAPH_BASELINES_LIVEGRAPH_STORE_H_
#define LIVEGRAPH_BASELINES_LIVEGRAPH_STORE_H_

#include <memory>
#include <string>

#include "baselines/paged_store.h"
#include "baselines/store_interface.h"
#include "core/graph.h"
#include "core/transaction.h"

namespace livegraph {

class LiveGraphStore : public GraphStore {
 public:
  explicit LiveGraphStore(GraphOptions options = {},
                          PageCacheSim* pagesim = nullptr);

  std::string Name() const override { return "LiveGraph"; }

  vertex_t AddNode(std::string_view data) override;
  bool GetNode(vertex_t id, std::string* out) override;
  bool UpdateNode(vertex_t id, std::string_view data) override;
  bool DeleteNode(vertex_t id) override;

  bool AddLink(vertex_t src, label_t label, vertex_t dst,
               std::string_view data) override;
  bool UpdateLink(vertex_t src, label_t label, vertex_t dst,
                  std::string_view data) override;
  bool DeleteLink(vertex_t src, label_t label, vertex_t dst) override;
  bool GetLink(vertex_t src, label_t label, vertex_t dst,
               std::string* out) override;
  size_t ScanLinks(vertex_t src, label_t label, const EdgeScanFn& fn) override;
  size_t CountLinks(vertex_t src, label_t label) override;

  std::unique_ptr<GraphReadView> OpenReadView() override;

  Graph& graph() { return *graph_; }

 private:
  static constexpr int kMaxRetries = 32;

  std::unique_ptr<Graph> graph_;
  PageCacheSim* pagesim_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_LIVEGRAPH_STORE_H_
