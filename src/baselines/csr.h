// Compressed Sparse Rows — the immutable, read-optimal reference layout
// used by static graph engines (paper §2.1 and the Gemini comparison in
// §7.4). "It enables pure sequential adjacency list scans ... On the flip
// side, it is immutable."
#ifndef LIVEGRAPH_BASELINES_CSR_H_
#define LIVEGRAPH_BASELINES_CSR_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/types.h"

namespace livegraph {

class Csr {
 public:
  Csr() = default;

  /// Builds from an unsorted edge list (counting sort by source).
  static Csr FromEdges(vertex_t vertex_count,
                       const std::vector<std::pair<vertex_t, vertex_t>>& edges) {
    Csr csr;
    csr.offsets_.assign(static_cast<size_t>(vertex_count) + 1, 0);
    for (const auto& [src, dst] : edges) {
      csr.offsets_[static_cast<size_t>(src) + 1]++;
    }
    for (size_t v = 1; v < csr.offsets_.size(); ++v) {
      csr.offsets_[v] += csr.offsets_[v - 1];
    }
    csr.targets_.resize(edges.size());
    std::vector<int64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
    for (const auto& [src, dst] : edges) {
      csr.targets_[static_cast<size_t>(cursor[static_cast<size_t>(src)]++)] =
          dst;
    }
    return csr;
  }

  /// Adopts pre-built arrays (used by the snapshot -> CSR ETL path).
  static Csr Adopt(std::vector<int64_t> offsets, std::vector<vertex_t> targets) {
    Csr csr;
    csr.offsets_ = std::move(offsets);
    csr.targets_ = std::move(targets);
    return csr;
  }

  vertex_t vertex_count() const {
    return static_cast<vertex_t>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  int64_t edge_count() const { return static_cast<int64_t>(targets_.size()); }

  int64_t Degree(vertex_t v) const {
    return offsets_[static_cast<size_t>(v) + 1] - offsets_[static_cast<size_t>(v)];
  }

  /// O(1) seek ("the beginning of an adjacency list is stored in the
  /// offset array", §2.1), purely sequential scan.
  std::span<const vertex_t> Neighbors(vertex_t v) const {
    return std::span<const vertex_t>(
        targets_.data() + offsets_[static_cast<size_t>(v)],
        static_cast<size_t>(Degree(v)));
  }

  const std::vector<int64_t>& offsets() const { return offsets_; }
  const std::vector<vertex_t>& targets() const { return targets_; }

 private:
  std::vector<int64_t> offsets_;
  std::vector<vertex_t> targets_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_CSR_H_
