#include "baselines/paged_store.h"

#include <chrono>

namespace livegraph {

namespace {
constexpr uint64_t kPageShift = 12;  // 4 KiB pages
}

PageCacheSim::PageCacheSim(Options options) : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  per_shard_capacity_ =
      options_.capacity_pages / static_cast<size_t>(options_.shards);
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  shards_ = std::vector<Shard>(static_cast<size_t>(options_.shards));
}

void PageCacheSim::SpinFor(uint64_t ns) {
  // Busy-wait: the issuing thread is stalled exactly as it would be on a
  // synchronous 4 KiB device read.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

void PageCacheSim::Touch(const void* addr, size_t bytes, bool write) {
  if (bytes == 0) return;
  auto start = reinterpret_cast<uint64_t>(addr) >> kPageShift;
  auto end = (reinterpret_cast<uint64_t>(addr) + bytes - 1) >> kPageShift;
  for (uint64_t page = start; page <= end; ++page) TouchPage(page, write);
}

// All counter updates below are relaxed: hits_/misses_/bytes_written_/
// dirty_evictions_/simulated_io_ns_ are simulation statistics read only by
// GetStats; the cache state itself is guarded by the shard mutex.
void PageCacheSim::TouchPage(uint64_t page, bool write) {
  Shard& shard = shards_[page % shards_.size()];
  uint64_t stall_ns = 0;
  {
    std::lock_guard<std::mutex> guard(shard.mu);
    auto it = shard.pages.find(page);
    if (it != shard.pages.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      shard.lru.erase(it->second.lru_pos);
      shard.lru.push_front(page);
      it->second.lru_pos = shard.lru.begin();
      it->second.dirty |= write;
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      stall_ns += options_.read_latency_ns;
      if (shard.pages.size() >= per_shard_capacity_) {
        uint64_t victim = shard.lru.back();
        shard.lru.pop_back();
        auto victim_it = shard.pages.find(victim);
        if (victim_it->second.dirty) {
          dirty_evictions_.fetch_add(1, std::memory_order_relaxed);
          bytes_written_.fetch_add(4096, std::memory_order_relaxed);
          stall_ns += options_.write_latency_ns;
        }
        shard.pages.erase(victim_it);
      }
      shard.lru.push_front(page);
      shard.pages[page] = Shard::Entry{shard.lru.begin(), write};
    }
  }
  if (stall_ns > 0) {
    simulated_io_ns_.fetch_add(stall_ns, std::memory_order_relaxed);
    SpinFor(stall_ns);
  }
}

void PageCacheSim::SequentialWrite(size_t bytes) {
  uint64_t pages = (bytes + 4095) / 4096;
  uint64_t ns = pages * options_.write_latency_ns /
                (options_.sequential_factor == 0 ? 1 : options_.sequential_factor);
  bytes_written_.fetch_add(pages * 4096, std::memory_order_relaxed);
  simulated_io_ns_.fetch_add(ns, std::memory_order_relaxed);
  SpinFor(ns);
}

PageCacheSim::Stats PageCacheSim::GetStats() const {
  return Stats{hits_.load(), misses_.load(), dirty_evictions_.load(),
               simulated_io_ns_.load(), bytes_written_.load()};
}

void PageCacheSim::ResetStats() {
  hits_.store(0);
  misses_.store(0);
  dirty_evictions_.store(0);
  simulated_io_ns_.store(0);
  bytes_written_.store(0);
}

}  // namespace livegraph
