// Store over the B+ tree — LMDB's stand-in. Concurrency model mirrors
// LMDB: one writer at a time, concurrent readers. A write session holds
// the exclusive latch from BeginTxn() to Commit()/Abort(); read sessions
// hold the shared latch for their lifetime — the lock-based
// multi-operation read the paper contrasts with MVCC snapshots (§7.3:
// "Virtuoso spending over 60% of its CPU time on locks").
// §7.2: "LMDB suffers due to B+ tree's higher insert complexity and its
// single-threaded writes."
#ifndef LIVEGRAPH_BASELINES_BTREE_STORE_H_
#define LIVEGRAPH_BASELINES_BTREE_STORE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>

#include "api/store.h"
#include "baselines/btree.h"

namespace livegraph {

class BTreeStore : public Store {
 public:
  explicit BTreeStore(PageCacheSim* pagesim = nullptr);

  std::string Name() const override { return "BTree(LMDB)"; }
  StoreTraits Traits() const override {
    // Range scans run in destination order: B+ trees cannot serve "most
    // recent first" without a secondary time index (§7.2).
    return StoreTraits{};
  }

  std::unique_ptr<StoreTxn> BeginTxn() override;
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override;

  int tree_height() const { return edges_.height(); }

 private:
  template <typename Base, typename Lock>
  friend class BTreeSession;
  friend class BTreeWriteTxn;

  EdgeCursor ScanLocked(vertex_t src, label_t label, size_t limit);
  size_t CountLocked(vertex_t src, label_t label);

  mutable std::shared_mutex mu_;
  BPlusTree edges_;
  // Nodes in a second tree keyed (id, 0, 0): LMDB-style separate "object
  // table", same structure.
  BPlusTree nodes_;
  vertex_t next_node_ = 0;
  std::atomic<timestamp_t> commit_seq_{0};
  PageCacheSim* pagesim_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_BTREE_STORE_H_
