// GraphStore over the B+ tree — LMDB's stand-in. Concurrency model mirrors
// LMDB: one writer at a time, concurrent readers (shared/exclusive latch).
// §7.2: "LMDB suffers due to B+ tree's higher insert complexity and its
// single-threaded writes."
#ifndef LIVEGRAPH_BASELINES_BTREE_STORE_H_
#define LIVEGRAPH_BASELINES_BTREE_STORE_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "baselines/btree.h"
#include "baselines/store_interface.h"

namespace livegraph {

class BTreeStore : public GraphStore {
 public:
  explicit BTreeStore(PageCacheSim* pagesim = nullptr);

  std::string Name() const override { return "BTree(LMDB)"; }

  vertex_t AddNode(std::string_view data) override;
  bool GetNode(vertex_t id, std::string* out) override;
  bool UpdateNode(vertex_t id, std::string_view data) override;
  bool DeleteNode(vertex_t id) override;

  bool AddLink(vertex_t src, label_t label, vertex_t dst,
               std::string_view data) override;
  bool UpdateLink(vertex_t src, label_t label, vertex_t dst,
                  std::string_view data) override;
  bool DeleteLink(vertex_t src, label_t label, vertex_t dst) override;
  bool GetLink(vertex_t src, label_t label, vertex_t dst,
               std::string* out) override;
  size_t ScanLinks(vertex_t src, label_t label, const EdgeScanFn& fn) override;
  size_t CountLinks(vertex_t src, label_t label) override;

  std::unique_ptr<GraphReadView> OpenReadView() override;

  int tree_height() const { return edges_.height(); }

 private:
  friend class BTreeViewImpl;

  size_t ScanLocked(vertex_t src, label_t label, const EdgeScanFn& fn);

  mutable std::shared_mutex mu_;
  BPlusTree edges_;
  // Nodes in a second tree keyed (id, 0, 0): LMDB-style separate "object
  // table", same structure.
  BPlusTree nodes_;
  vertex_t next_node_ = 0;
  PageCacheSim* pagesim_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_BTREE_STORE_H_
