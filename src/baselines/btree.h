// In-memory B+ tree over (src, label, dst) edge keys — the data-structure
// stand-in for LMDB in the paper's comparisons (Table 1, Figure 1,
// LinkBench tables). Edges live in "a single sorted collection ... whose
// unique key is a <src,dest> vertex ID pair" (§2.1); an adjacency scan is a
// range query that walks leaf links, paying a logarithmic random-access
// seek and a random hop at every leaf boundary.
#ifndef LIVEGRAPH_BASELINES_BTREE_H_
#define LIVEGRAPH_BASELINES_BTREE_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "baselines/paged_store.h"
#include "util/types.h"

namespace livegraph {

struct EdgeKey {
  vertex_t src;
  label_t label;
  vertex_t dst;

  friend auto operator<=>(const EdgeKey&, const EdgeKey&) = default;
};

class BPlusTree {
 public:
  /// `pagesim` (optional) charges simulated I/O per node visited.
  explicit BPlusTree(PageCacheSim* pagesim = nullptr);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Upsert. Returns true if the key was newly inserted.
  bool Insert(const EdgeKey& key, std::string_view value);

  /// Returns false if absent.
  bool Erase(const EdgeKey& key);

  /// Returns nullptr if absent; pointer valid until the next mutation.
  const std::string* Find(const EdgeKey& key);

  size_t size() const { return size_; }

  /// Forward iterator positioned by LowerBound; walks leaf links.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    const EdgeKey& key() const;
    const std::string& value() const;
    void Next();

   private:
    friend class BPlusTree;
    Iterator(void* leaf, int pos, PageCacheSim* pagesim)
        : leaf_(leaf), pos_(pos), pagesim_(pagesim) {}
    void* leaf_;
    int pos_;
    PageCacheSim* pagesim_;
  };

  Iterator LowerBound(const EdgeKey& key);

  /// Height of the tree (for tests / complexity verification).
  int height() const { return height_; }

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  void FreeRecursive(Node* node);
  LeafNode* DescendToLeaf(const EdgeKey& key) const;

  Node* root_;
  int height_ = 1;
  size_t size_ = 0;
  PageCacheSim* pagesim_;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_BTREE_H_
