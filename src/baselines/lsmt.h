// Log-Structured Merge-Tree over (src, label, dst) edge keys — the
// data-structure stand-in for RocksDB (§2.1, §7). A skip list serves as
// memtable ("RocksDB's implementation of LSMTs uses a skip list as
// memtable"); full memtables flush to immutable sorted runs; reads merge
// memtable + runs newest-first with tombstone suppression; size-tiered
// compaction merges runs when they pile up. Seeks pay the skip-list tower
// walk plus a binary search per run; scans pay a k-way merge across runs —
// the "sequential with random" row of Table 1.
#ifndef LIVEGRAPH_BASELINES_LSMT_H_
#define LIVEGRAPH_BASELINES_LSMT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/btree.h"  // EdgeKey
#include "baselines/paged_store.h"
#include "util/random.h"

namespace livegraph {

class Lsmt {
 public:
  struct Options {
    /// Memtable flush threshold in bytes (RocksDB default: 64 MiB; scaled
    /// down so benchmark-scale datasets actually exercise runs).
    size_t memtable_bytes = 4 << 20;
    /// Size-tiered compaction trigger.
    size_t max_runs = 8;
    PageCacheSim* pagesim = nullptr;
  };

  Lsmt();  // default options
  explicit Lsmt(Options options);
  ~Lsmt();

  Lsmt(const Lsmt&) = delete;
  Lsmt& operator=(const Lsmt&) = delete;

  /// Upsert. Returns true if the key was not previously present.
  bool Put(const EdgeKey& key, std::string_view value);
  /// Returns false if absent (checked via Get, as RocksDB's Delete+Get
  /// upsert emulation in LinkBench does).
  bool Delete(const EdgeKey& key);
  bool Get(const EdgeKey& key, std::string* out);

  /// Merged scan over [lower, upper): newest version per key wins,
  /// tombstones suppress. Callback returns false to stop.
  size_t Scan(const EdgeKey& lower, const EdgeKey& upper,
              const std::function<bool(const EdgeKey&, std::string_view)>& fn);

  size_t run_count() const;
  size_t memtable_entries() const;

 private:
  struct SkipNode {
    EdgeKey key;
    uint64_t seq;  // global sequence; newest wins
    bool tombstone;
    std::string value;
    int height;
    std::atomic<SkipNode*> next[1];  // flexible towers
  };

  struct RunItem {
    EdgeKey key;
    uint64_t seq;
    bool tombstone;
    std::string value;
  };
  using Run = std::vector<RunItem>;

  static constexpr int kMaxHeight = 16;

  SkipNode* NewNode(const EdgeKey& key, uint64_t seq, bool tombstone,
                    std::string_view value, int height);
  /// Finds the first node with (key, seq) >= target ordering.
  SkipNode* SkipLowerBound(const EdgeKey& key) const;
  void InsertIntoMemtable(const EdgeKey& key, bool tombstone,
                          std::string_view value);
  void MaybeFlushLocked();
  void CompactLocked();
  /// Newest visible version of key, searching memtable then runs. Returns
  /// 0 = absent, 1 = present (value in *out), 2 = tombstoned.
  int Lookup(const EdgeKey& key, std::string* out);

  Options options_;
  mutable std::shared_mutex rw_mu_;  // writers exclusive, readers shared
  SkipNode* head_;
  std::atomic<uint64_t> seq_{0};
  size_t memtable_bytes_used_ = 0;
  size_t memtable_count_ = 0;
  std::vector<std::shared_ptr<Run>> runs_;  // newest first
  std::vector<SkipNode*> all_nodes_;        // ownership, freed on destruct
  Xorshift height_rng_{0xC0FFEE};
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_LSMT_H_
