// Log-Structured Merge-Tree over (src, label, dst) edge keys — the
// data-structure stand-in for RocksDB (§2.1, §7). A skip list serves as
// memtable ("RocksDB's implementation of LSMTs uses a skip list as
// memtable"); full memtables flush to immutable sorted runs; reads merge
// memtable + runs newest-first with tombstone suppression; size-tiered
// compaction merges runs when they pile up. Seeks pay the skip-list tower
// walk plus a binary search per run; scans pay a k-way merge across runs —
// the "sequential with random" row of Table 1.
#ifndef LIVEGRAPH_BASELINES_LSMT_H_
#define LIVEGRAPH_BASELINES_LSMT_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "baselines/btree.h"  // EdgeKey
#include "baselines/paged_store.h"
#include "util/random.h"

namespace livegraph {

class Lsmt {
 public:
  struct Options {
    /// Memtable flush threshold in bytes (RocksDB default: 64 MiB; scaled
    /// down so benchmark-scale datasets actually exercise runs).
    size_t memtable_bytes = 4 << 20;
    /// Size-tiered compaction trigger.
    size_t max_runs = 8;
    PageCacheSim* pagesim = nullptr;
  };

  Lsmt();  // default options
  explicit Lsmt(Options options);
  ~Lsmt();

  Lsmt(const Lsmt&) = delete;
  Lsmt& operator=(const Lsmt&) = delete;

  /// Upsert. Returns true if the key was not previously present.
  bool Put(const EdgeKey& key, std::string_view value);
  /// Returns false if absent (checked via Get, as RocksDB's Delete+Get
  /// upsert emulation in LinkBench does).
  bool Delete(const EdgeKey& key);
  bool Get(const EdgeKey& key, std::string* out);

  /// Merged scan over [lower, upper): newest version per key wins,
  /// tombstones suppress. Callback returns false to stop. Statically
  /// dispatched (no std::function): the k-way merge itself is the cost the
  /// paper charges LSMTs for scans, not callback indirection.
  template <typename Fn>
  size_t Scan(const EdgeKey& lower, const EdgeKey& upper, Fn&& fn);

  size_t run_count() const;
  size_t memtable_entries() const;

 private:
  struct SkipNode {
    EdgeKey key;
    uint64_t seq;  // global sequence; newest wins
    bool tombstone;
    std::string value;
    int height;
    std::atomic<SkipNode*> next[1];  // flexible towers
  };

  struct RunItem {
    EdgeKey key;
    uint64_t seq;
    bool tombstone;
    std::string value;
  };
  using Run = std::vector<RunItem>;

  static constexpr int kMaxHeight = 16;

  // Ordering inside the LSMT: key ascending, then sequence DESCENDING so
  // the newest version of a key is encountered first in any forward walk.
  static bool OrderedBefore(const EdgeKey& a, uint64_t seq_a, const EdgeKey& b,
                            uint64_t seq_b) {
    if (a != b) return a < b;
    return seq_a > seq_b;
  }

  SkipNode* NewNode(const EdgeKey& key, uint64_t seq, bool tombstone,
                    std::string_view value, int height);
  /// Finds the first node with (key, seq) >= target ordering.
  SkipNode* SkipLowerBound(const EdgeKey& key) const;
  void InsertIntoMemtable(const EdgeKey& key, bool tombstone,
                          std::string_view value);
  void MaybeFlushLocked();
  void CompactLocked();
  /// Newest visible version of key, searching memtable then runs. Returns
  /// 0 = absent, 1 = present (value in *out), 2 = tombstoned.
  int Lookup(const EdgeKey& key, std::string* out);

  Options options_;
  mutable std::shared_mutex rw_mu_;  // writers exclusive, readers shared
  SkipNode* head_;
  std::atomic<uint64_t> seq_{0};
  size_t memtable_bytes_used_ = 0;
  size_t memtable_count_ = 0;
  std::vector<std::shared_ptr<Run>> runs_;  // newest first
  std::vector<SkipNode*> all_nodes_;        // ownership, freed on destruct
  Xorshift height_rng_{0xC0FFEE};
};

template <typename Fn>
size_t Lsmt::Scan(const EdgeKey& lower, const EdgeKey& upper, Fn&& fn) {
  std::shared_lock<std::shared_mutex> lock(rw_mu_);
  // K-way merge across memtable + all runs: "LSMTs require scanning SST
  // tables also for scans because ... only the first component of the edge
  // key is known" (§2.1).
  SkipNode* mem_cursor = SkipLowerBound(lower);
  std::vector<std::pair<size_t, size_t>> run_cursors;  // (run, index)
  for (size_t r = 0; r < runs_.size(); ++r) {
    auto it = std::lower_bound(
        runs_[r]->begin(), runs_[r]->end(), lower,
        [](const RunItem& item, const EdgeKey& k) { return item.key < k; });
    run_cursors.emplace_back(r, static_cast<size_t>(it - runs_[r]->begin()));
  }
  size_t visited = 0;
  EdgeKey last_emitted{INT64_MIN, 0, INT64_MIN};
  bool emitted_any = false;
  while (true) {
    // Pick the smallest (key, seq desc) among memtable + runs.
    const EdgeKey* best_key = nullptr;
    uint64_t best_seq = 0;
    int best_source = -1;  // -1 none, 0 memtable, 1+r run r
    if (mem_cursor != nullptr && mem_cursor->key < upper) {
      best_key = &mem_cursor->key;
      best_seq = mem_cursor->seq;
      best_source = 0;
    }
    for (auto& [r, idx] : run_cursors) {
      if (idx >= runs_[r]->size()) continue;
      const RunItem& item = (*runs_[r])[idx];
      if (!(item.key < upper)) continue;
      if (best_source < 0 ||
          OrderedBefore(item.key, item.seq, *best_key, best_seq)) {
        best_key = &item.key;
        best_seq = item.seq;
        best_source = static_cast<int>(r) + 1;
      }
    }
    if (best_source < 0) break;
    EdgeKey key;
    bool tombstone;
    std::string_view value;
    if (best_source == 0) {
      key = mem_cursor->key;
      tombstone = mem_cursor->tombstone;
      value = mem_cursor->value;
      if (options_.pagesim != nullptr) {
        options_.pagesim->Touch(mem_cursor, sizeof(SkipNode), false);
      }
      mem_cursor = mem_cursor->next[0].load(std::memory_order_acquire);
    } else {
      auto& [r, idx] = run_cursors[static_cast<size_t>(best_source - 1)];
      const RunItem& item = (*runs_[r])[idx++];
      key = item.key;
      tombstone = item.tombstone;
      value = item.value;
      if (options_.pagesim != nullptr) {
        options_.pagesim->Touch(&item, sizeof(RunItem) + item.value.size(),
                                false);
      }
    }
    if (emitted_any && key == last_emitted) continue;  // older version
    last_emitted = key;
    emitted_any = true;
    if (tombstone) continue;
    visited++;
    if (!fn(key, value)) break;
  }
  return visited;
}

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_LSMT_H_
