#include "baselines/btree_store.h"

#include <limits>

namespace livegraph {

namespace {
EdgeKey NodeKey(vertex_t id) { return EdgeKey{id, 0, 0}; }
}  // namespace

BTreeStore::BTreeStore(PageCacheSim* pagesim)
    : edges_(pagesim), nodes_(pagesim), pagesim_(pagesim) {}

vertex_t BTreeStore::AddNode(std::string_view data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  vertex_t id = next_node_++;
  nodes_.Insert(NodeKey(id), data);
  return id;
}

bool BTreeStore::GetNode(vertex_t id, std::string* out) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const std::string* value = nodes_.Find(NodeKey(id));
  if (value == nullptr) return false;
  out->assign(*value);
  return true;
}

bool BTreeStore::UpdateNode(vertex_t id, std::string_view data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (nodes_.Find(NodeKey(id)) == nullptr) return false;
  nodes_.Insert(NodeKey(id), data);
  return true;
}

bool BTreeStore::DeleteNode(vertex_t id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return nodes_.Erase(NodeKey(id));
}

bool BTreeStore::AddLink(vertex_t src, label_t label, vertex_t dst,
                         std::string_view data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return edges_.Insert(EdgeKey{src, label, dst}, data);
}

bool BTreeStore::UpdateLink(vertex_t src, label_t label, vertex_t dst,
                            std::string_view data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (edges_.Find(EdgeKey{src, label, dst}) == nullptr) return false;
  edges_.Insert(EdgeKey{src, label, dst}, data);
  return true;
}

bool BTreeStore::DeleteLink(vertex_t src, label_t label, vertex_t dst) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return edges_.Erase(EdgeKey{src, label, dst});
}

bool BTreeStore::GetLink(vertex_t src, label_t label, vertex_t dst,
                         std::string* out) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const std::string* value = edges_.Find(EdgeKey{src, label, dst});
  if (value == nullptr) return false;
  out->assign(*value);
  return true;
}

size_t BTreeStore::ScanLocked(vertex_t src, label_t label,
                              const EdgeScanFn& fn) {
  // Range query from (src, label, -inf): destination order, not time
  // order — B+ trees cannot serve "most recent first" without a secondary
  // time index, one of the costs §7.2 attributes to tree-based stores.
  EdgeKey lower{src, label, std::numeric_limits<vertex_t>::min()};
  size_t visited = 0;
  for (auto it = edges_.LowerBound(lower); it.Valid(); it.Next()) {
    if (it.key().src != src || it.key().label != label) break;
    visited++;
    if (!fn(it.key().dst, it.value())) break;
  }
  return visited;
}

size_t BTreeStore::ScanLinks(vertex_t src, label_t label,
                             const EdgeScanFn& fn) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ScanLocked(src, label, fn);
}

size_t BTreeStore::CountLinks(vertex_t src, label_t label) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ScanLocked(src, label,
                    [](vertex_t, std::string_view) { return true; });
}

class BTreeViewImpl : public GraphReadView {
 public:
  /// Holds the shared latch for the view's lifetime — the lock-based
  /// multi-operation read the paper contrasts with MVCC snapshots (§7.3).
  explicit BTreeViewImpl(BTreeStore* store) : store_(store), lock_(store->mu_) {}

  bool GetNode(vertex_t id, std::string* out) const override {
    const std::string* value = store_->nodes_.Find(NodeKey(id));
    if (value == nullptr) return false;
    out->assign(*value);
    return true;
  }
  bool GetLink(vertex_t src, label_t label, vertex_t dst,
               std::string* out) const override {
    const std::string* value = store_->edges_.Find(EdgeKey{src, label, dst});
    if (value == nullptr) return false;
    out->assign(*value);
    return true;
  }
  size_t ScanLinks(vertex_t src, label_t label,
                   const EdgeScanFn& fn) const override {
    return store_->ScanLocked(src, label, fn);
  }
  size_t CountLinks(vertex_t src, label_t label) const override {
    return store_->ScanLocked(src, label,
                              [](vertex_t, std::string_view) { return true; });
  }

 private:
  BTreeStore* store_;
  std::shared_lock<std::shared_mutex> lock_;
};

std::unique_ptr<GraphReadView> BTreeStore::OpenReadView() {
  return std::make_unique<BTreeViewImpl>(this);
}

}  // namespace livegraph
