#include "baselines/btree_store.h"

#include <limits>
#include <mutex>

namespace livegraph {

namespace {
EdgeKey NodeKey(vertex_t id) { return EdgeKey{id, 0, 0}; }
}  // namespace

BTreeStore::BTreeStore(PageCacheSim* pagesim)
    : edges_(pagesim), nodes_(pagesim), pagesim_(pagesim) {}

EdgeCursor BTreeStore::ScanLocked(vertex_t src, label_t label, size_t limit) {
  // Range query from (src, label, -inf); snapshot the run into the cursor
  // so the caller iterates without holding tree positions. `limit` keeps
  // LIMIT queries O(limit), matching the v1 callback's early exit.
  EdgeKey lower{src, label, std::numeric_limits<vertex_t>::min()};
  EdgeCursorBuilder builder;
  timestamp_t seq = 0;
  for (auto it = edges_.LowerBound(lower); it.Valid() && builder.size() < limit;
       it.Next()) {
    if (it.key().src != src || it.key().label != label) break;
    builder.Add(it.key().dst, it.value(), seq++);
  }
  return std::move(builder).Build();
}

size_t BTreeStore::CountLocked(vertex_t src, label_t label) {
  EdgeKey lower{src, label, std::numeric_limits<vertex_t>::min()};
  size_t count = 0;
  for (auto it = edges_.LowerBound(lower); it.Valid(); it.Next()) {
    if (it.key().src != src || it.key().label != label) break;
    count++;
  }
  return count;
}

/// Latch-holding session: the read surface shared by both session kinds,
/// parameterized on the interface it fulfills and the latch it holds
/// (shared for readers, exclusive for the single writer — LMDB's model).
template <typename Base, typename Lock>
class BTreeSession : public Base {
 public:
  explicit BTreeSession(BTreeStore* store)
      : store_(store), lock_(store->mu_) {}

  StatusOr<std::string> GetNode(vertex_t id) override {
    const std::string* value = store_->nodes_.Find(NodeKey(id));
    if (value == nullptr) return Status::kNotFound;
    return *value;
  }

  StatusOr<std::string> GetLink(vertex_t src, label_t label,
                                vertex_t dst) override {
    const std::string* value = store_->edges_.Find(EdgeKey{src, label, dst});
    if (value == nullptr) return Status::kNotFound;
    return *value;
  }

  EdgeCursor ScanLinks(vertex_t src, label_t label, size_t limit) override {
    return store_->ScanLocked(src, label, limit);
  }

  size_t CountLinks(vertex_t src, label_t label) override {
    return store_->CountLocked(src, label);
  }

  vertex_t VertexCount() override { return store_->next_node_; }

 protected:
  BTreeStore* store_;
  Lock lock_;
};

using BTreeReadTxn =
    BTreeSession<StoreReadTxn, std::shared_lock<std::shared_mutex>>;

/// Exclusive-latch write session: LMDB's single-writer model. Writes apply
/// in place; Commit() releases the latch and stamps a commit sequence.
class BTreeWriteTxn final
    : public BTreeSession<StoreTxn, std::unique_lock<std::shared_mutex>> {
 public:
  using BTreeSession::BTreeSession;

  StatusOr<vertex_t> AddNode(std::string_view data) override {
    vertex_t id = store_->next_node_++;
    store_->nodes_.Insert(NodeKey(id), data);
    return id;
  }

  Status UpdateNode(vertex_t id, std::string_view data) override {
    if (store_->nodes_.Find(NodeKey(id)) == nullptr) return Status::kNotFound;
    store_->nodes_.Insert(NodeKey(id), data);
    return Status::kOk;
  }

  Status DeleteNode(vertex_t id) override {
    return store_->nodes_.Erase(NodeKey(id)) ? Status::kOk : Status::kNotFound;
  }

  StatusOr<bool> AddLink(vertex_t src, label_t label, vertex_t dst,
                         std::string_view data) override {
    return store_->edges_.Insert(EdgeKey{src, label, dst}, data);
  }

  Status UpdateLink(vertex_t src, label_t label, vertex_t dst,
                    std::string_view data) override {
    if (store_->edges_.Find(EdgeKey{src, label, dst}) == nullptr) {
      return Status::kNotFound;
    }
    store_->edges_.Insert(EdgeKey{src, label, dst}, data);
    return Status::kOk;
  }

  Status DeleteLink(vertex_t src, label_t label, vertex_t dst) override {
    return store_->edges_.Erase(EdgeKey{src, label, dst}) ? Status::kOk
                                                          : Status::kNotFound;
  }

  StatusOr<timestamp_t> Commit() override {
    if (!lock_.owns_lock()) return Status::kNotActive;
    // relaxed: the sequence only mints distinct epochs; the writer lock
    // we still hold orders the writes themselves.
    timestamp_t epoch =
        store_->commit_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    lock_.unlock();
    return epoch;
  }

  void Abort() override {
    // In-place engine: nothing to roll back, just end the session.
    if (lock_.owns_lock()) lock_.unlock();
  }
};

std::unique_ptr<StoreTxn> BTreeStore::BeginTxn() {
  return std::make_unique<BTreeWriteTxn>(this);
}

std::unique_ptr<StoreReadTxn> BTreeStore::BeginReadTxn() {
  return std::make_unique<BTreeReadTxn>(this);
}

}  // namespace livegraph
