#include "baselines/btree.h"

#include <algorithm>
#include <vector>

namespace livegraph {

namespace {
constexpr int kLeafCapacity = 64;      // ~ a 4 KiB page of edge keys
constexpr int kInternalCapacity = 64;
}  // namespace

struct BPlusTree::Node {
  bool is_leaf;
  int count = 0;
  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct BPlusTree::LeafNode : BPlusTree::Node {
  LeafNode() : Node(true) {}
  EdgeKey keys[kLeafCapacity];
  std::string values[kLeafCapacity];
  LeafNode* next = nullptr;
};

struct BPlusTree::InternalNode : BPlusTree::Node {
  InternalNode() : Node(false) {}
  // children[i] holds keys < keys[i]; children[count] holds the rest.
  EdgeKey keys[kInternalCapacity];
  Node* children[kInternalCapacity + 1] = {nullptr};
};

BPlusTree::BPlusTree(PageCacheSim* pagesim)
    : root_(new LeafNode()), pagesim_(pagesim) {}

BPlusTree::~BPlusTree() { FreeRecursive(root_); }

void BPlusTree::FreeRecursive(Node* node) {
  if (!node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    for (int i = 0; i <= internal->count; ++i) {
      if (internal->children[i] != nullptr) FreeRecursive(internal->children[i]);
    }
    delete internal;
  } else {
    delete static_cast<LeafNode*>(node);
  }
}

BPlusTree::LeafNode* BPlusTree::DescendToLeaf(const EdgeKey& key) const {
  Node* node = root_;
  while (!node->is_leaf) {
    if (pagesim_ != nullptr) pagesim_->Touch(node, sizeof(InternalNode), false);
    auto* internal = static_cast<InternalNode*>(node);
    int i = static_cast<int>(
        std::upper_bound(internal->keys, internal->keys + internal->count,
                         key) -
        internal->keys);
    node = internal->children[i];
  }
  if (pagesim_ != nullptr) pagesim_->Touch(node, sizeof(LeafNode), false);
  return static_cast<LeafNode*>(node);
}

const std::string* BPlusTree::Find(const EdgeKey& key) {
  LeafNode* leaf = DescendToLeaf(key);
  int i = static_cast<int>(
      std::lower_bound(leaf->keys, leaf->keys + leaf->count, key) -
      leaf->keys);
  if (i < leaf->count && leaf->keys[i] == key) return &leaf->values[i];
  return nullptr;
}

bool BPlusTree::Insert(const EdgeKey& key, std::string_view value) {
  // Iterative descent remembering the path, for bottom-up splits.
  std::vector<std::pair<InternalNode*, int>> path;
  Node* node = root_;
  while (!node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    int i = static_cast<int>(
        std::upper_bound(internal->keys, internal->keys + internal->count,
                         key) -
        internal->keys);
    path.emplace_back(internal, i);
    node = internal->children[i];
  }
  if (pagesim_ != nullptr) pagesim_->Touch(node, sizeof(LeafNode), true);
  auto* leaf = static_cast<LeafNode*>(node);
  int pos = static_cast<int>(
      std::lower_bound(leaf->keys, leaf->keys + leaf->count, key) -
      leaf->keys);
  if (pos < leaf->count && leaf->keys[pos] == key) {
    leaf->values[pos].assign(value.data(), value.size());
    return false;  // updated in place
  }
  // Shift and insert.
  for (int i = leaf->count; i > pos; --i) {
    leaf->keys[i] = leaf->keys[i - 1];
    leaf->values[i] = std::move(leaf->values[i - 1]);
  }
  leaf->keys[pos] = key;
  leaf->values[pos].assign(value.data(), value.size());
  leaf->count++;
  size_++;
  if (leaf->count < kLeafCapacity) return true;

  // Split the leaf; propagate upward.
  auto* right = new LeafNode();
  int half = leaf->count / 2;
  right->count = leaf->count - half;
  for (int i = 0; i < right->count; ++i) {
    right->keys[i] = leaf->keys[half + i];
    right->values[i] = std::move(leaf->values[half + i]);
  }
  leaf->count = half;
  right->next = leaf->next;
  leaf->next = right;
  EdgeKey separator = right->keys[0];
  Node* new_child = right;

  while (!path.empty()) {
    auto [parent, index] = path.back();
    path.pop_back();
    for (int i = parent->count; i > index; --i) {
      parent->keys[i] = parent->keys[i - 1];
      parent->children[i + 1] = parent->children[i];
    }
    parent->keys[index] = separator;
    parent->children[index + 1] = new_child;
    parent->count++;
    if (parent->count < kInternalCapacity) return true;
    // Split internal node.
    auto* right_internal = new InternalNode();
    int mid = parent->count / 2;
    EdgeKey up = parent->keys[mid];
    right_internal->count = parent->count - mid - 1;
    for (int i = 0; i < right_internal->count; ++i) {
      right_internal->keys[i] = parent->keys[mid + 1 + i];
    }
    for (int i = 0; i <= right_internal->count; ++i) {
      right_internal->children[i] = parent->children[mid + 1 + i];
    }
    parent->count = mid;
    separator = up;
    new_child = right_internal;
    if (path.empty()) {
      auto* new_root = new InternalNode();
      new_root->count = 1;
      new_root->keys[0] = separator;
      new_root->children[0] = root_;
      new_root->children[1] = new_child;
      root_ = new_root;
      height_++;
      return true;
    }
  }
  // Root leaf split.
  auto* new_root = new InternalNode();
  new_root->count = 1;
  new_root->keys[0] = separator;
  new_root->children[0] = root_;
  new_root->children[1] = new_child;
  root_ = new_root;
  height_++;
  return true;
}

bool BPlusTree::Erase(const EdgeKey& key) {
  LeafNode* leaf = DescendToLeaf(key);
  if (pagesim_ != nullptr) pagesim_->Touch(leaf, sizeof(LeafNode), true);
  int pos = static_cast<int>(
      std::lower_bound(leaf->keys, leaf->keys + leaf->count, key) -
      leaf->keys);
  if (pos >= leaf->count || !(leaf->keys[pos] == key)) return false;
  for (int i = pos; i < leaf->count - 1; ++i) {
    leaf->keys[i] = leaf->keys[i + 1];
    leaf->values[i] = std::move(leaf->values[i + 1]);
  }
  leaf->count--;
  size_--;
  // Lazy deletion: underflowing leaves are left sparse (no rebalance);
  // range scans simply skip them. Documented trade-off — LinkBench's
  // delete rate is 3% and LMDB similarly avoids eager merging.
  return true;
}

BPlusTree::Iterator BPlusTree::LowerBound(const EdgeKey& key) {
  LeafNode* leaf = DescendToLeaf(key);
  int pos = static_cast<int>(
      std::lower_bound(leaf->keys, leaf->keys + leaf->count, key) -
      leaf->keys);
  // Walk to the next non-empty leaf if we landed past this one's last slot
  // (possible with lazily-deleted sparse leaves).
  while (leaf != nullptr && pos >= leaf->count) {
    leaf = leaf->next;
    pos = 0;
    if (leaf != nullptr && pagesim_ != nullptr) {
      pagesim_->Touch(leaf, sizeof(LeafNode), false);
    }
  }
  return Iterator(leaf, pos, pagesim_);
}

const EdgeKey& BPlusTree::Iterator::key() const {
  return static_cast<LeafNode*>(leaf_)->keys[pos_];
}

const std::string& BPlusTree::Iterator::value() const {
  return static_cast<LeafNode*>(leaf_)->values[pos_];
}

void BPlusTree::Iterator::Next() {
  auto* leaf = static_cast<LeafNode*>(leaf_);
  pos_++;
  while (leaf != nullptr && pos_ >= leaf->count) {
    leaf = leaf->next;  // random access at every leaf boundary
    pos_ = 0;
    if (leaf != nullptr && pagesim_ != nullptr) {
      pagesim_->Touch(leaf, sizeof(LeafNode), false);
    }
  }
  leaf_ = leaf;
}

}  // namespace livegraph
