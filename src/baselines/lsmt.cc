#include "baselines/lsmt.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace livegraph {

Lsmt::Lsmt() : Lsmt(Options()) {}

Lsmt::Lsmt(Options options) : options_(options) {
  head_ = NewNode(EdgeKey{INT64_MIN, 0, INT64_MIN}, ~uint64_t{0}, false, {},
                  kMaxHeight);
}

Lsmt::~Lsmt() {
  for (SkipNode* node : all_nodes_) {
    node->~SkipNode();
    ::free(node);
  }
}

Lsmt::SkipNode* Lsmt::NewNode(const EdgeKey& key, uint64_t seq,
                              bool tombstone, std::string_view value,
                              int height) {
  size_t bytes =
      sizeof(SkipNode) + sizeof(std::atomic<SkipNode*>) * (height - 1);
  void* mem = ::malloc(bytes);
  auto* node = new (mem) SkipNode{key, seq, tombstone,
                                  std::string(value), height, {}};
  // relaxed: the node is private until InsertIntoMemtable's release store
  // links it into the list.
  for (int i = 0; i < height; ++i) {
    node->next[i].store(nullptr, std::memory_order_relaxed);
  }
  all_nodes_.push_back(node);
  return node;
}

Lsmt::SkipNode* Lsmt::SkipLowerBound(const EdgeKey& key) const {
  // Tower walk: the logarithmic chain of random accesses that makes LSMT
  // seeks expensive (Figure 1a).
  SkipNode* node = head_;
  for (int level = kMaxHeight - 1; level >= 0; --level) {
    while (true) {
      SkipNode* next = node->next[level].load(std::memory_order_acquire);
      if (next == nullptr || !OrderedBefore(next->key, next->seq, key, ~uint64_t{0})) {
        break;
      }
      if (options_.pagesim != nullptr) {
        options_.pagesim->Touch(next, sizeof(SkipNode), false);
      }
      node = next;
    }
  }
  return node->next[0].load(std::memory_order_acquire);
}

void Lsmt::InsertIntoMemtable(const EdgeKey& key, bool tombstone,
                              std::string_view value) {
  // relaxed throughout the insert: writers hold rw_mu_ exclusively, so the
  // skiplist has one mutator at a time; concurrent shared-lock readers are
  // admitted only through the release store of prev->next below, which
  // publishes the fully initialized node.
  uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  int height = 1;
  while (height < kMaxHeight && (height_rng_.Next() & 3) == 0) height++;
  SkipNode* node = NewNode(key, seq, tombstone, value, height);
  if (options_.pagesim != nullptr) {
    options_.pagesim->Touch(node, sizeof(SkipNode), true);
  }
  SkipNode* prev[kMaxHeight];
  SkipNode* cursor = head_;
  for (int level = kMaxHeight - 1; level >= 0; --level) {
    while (true) {
      SkipNode* next = cursor->next[level].load(std::memory_order_acquire);
      if (next == nullptr ||
          !OrderedBefore(next->key, next->seq, key, seq)) {
        break;
      }
      cursor = next;
    }
    prev[level] = cursor;
  }
  for (int level = 0; level < height; ++level) {
    node->next[level].store(prev[level]->next[level].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    prev[level]->next[level].store(node, std::memory_order_release);
  }
  memtable_bytes_used_ += sizeof(SkipNode) + value.size();
  memtable_count_++;
}

void Lsmt::MaybeFlushLocked() {
  if (memtable_bytes_used_ < options_.memtable_bytes) return;
  // Drain the memtable into a sorted immutable run ("dumping sorted blocks
  // of data sequentially", §7.2).
  auto run = std::make_shared<Run>();
  run->reserve(memtable_count_);
  for (SkipNode* node = head_->next[0].load(std::memory_order_acquire);
       node != nullptr; node = node->next[0].load(std::memory_order_acquire)) {
    run->push_back(RunItem{node->key, node->seq, node->tombstone, node->value});
  }
  if (options_.pagesim != nullptr) {
    options_.pagesim->SequentialWrite(memtable_bytes_used_);
  }
  runs_.insert(runs_.begin(), std::move(run));
  // Reset the memtable (nodes stay owned by all_nodes_ until destruction;
  // simpler than refcounting and irrelevant to measured behaviour).
  for (int level = 0; level < kMaxHeight; ++level) {
    head_->next[level].store(nullptr, std::memory_order_release);
  }
  memtable_bytes_used_ = 0;
  memtable_count_ = 0;
  if (runs_.size() > options_.max_runs) CompactLocked();
}

void Lsmt::CompactLocked() {
  // Size-tiered full merge: newest version per key survives; tombstones
  // drop once merged to the bottom.
  auto merged = std::make_shared<Run>();
  std::vector<size_t> cursors(runs_.size(), 0);
  size_t total_bytes = 0;
  while (true) {
    int best = -1;
    for (size_t r = 0; r < runs_.size(); ++r) {
      if (cursors[r] >= runs_[r]->size()) continue;
      const RunItem& item = (*runs_[r])[cursors[r]];
      if (best < 0) {
        best = static_cast<int>(r);
        continue;
      }
      const RunItem& current = (*runs_[static_cast<size_t>(best)])
          [cursors[static_cast<size_t>(best)]];
      if (OrderedBefore(item.key, item.seq, current.key, current.seq)) {
        best = static_cast<int>(r);
      }
    }
    if (best < 0) break;
    RunItem& item = (*runs_[static_cast<size_t>(best)])
        [cursors[static_cast<size_t>(best)]++];
    if (!merged->empty() && merged->back().key == item.key) continue;  // older
    if (item.tombstone) {
      // Remember the tombstone long enough to suppress older versions in
      // this same merge, then drop it.
      merged->push_back(item);
      continue;
    }
    merged->push_back(std::move(item));
    total_bytes += merged->back().value.size() + sizeof(RunItem);
  }
  // Strip tombstones (full merge == bottom level).
  merged->erase(std::remove_if(merged->begin(), merged->end(),
                               [](const RunItem& i) { return i.tombstone; }),
                merged->end());
  if (options_.pagesim != nullptr) {
    options_.pagesim->SequentialWrite(total_bytes);
  }
  runs_.clear();
  runs_.push_back(std::move(merged));
}

bool Lsmt::Put(const EdgeKey& key, std::string_view value) {
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  std::string unused;
  bool existed = Lookup(key, &unused) == 1;
  InsertIntoMemtable(key, false, value);
  MaybeFlushLocked();
  return !existed;
}

bool Lsmt::Delete(const EdgeKey& key) {
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  std::string unused;
  if (Lookup(key, &unused) != 1) return false;
  InsertIntoMemtable(key, true, {});
  MaybeFlushLocked();
  return true;
}

int Lsmt::Lookup(const EdgeKey& key, std::string* out) {
  // Memtable first (newest), then runs newest-to-oldest.
  SkipNode* node = SkipLowerBound(key);
  if (node != nullptr && node->key == key) {
    if (node->tombstone) return 2;
    out->assign(node->value);
    return 1;
  }
  for (const auto& run : runs_) {
    auto it = std::lower_bound(
        run->begin(), run->end(), key, [](const RunItem& item, const EdgeKey& k) {
          return item.key < k;  // first version of k is the newest (seq desc)
        });
    if (options_.pagesim != nullptr && !run->empty()) {
      options_.pagesim->Touch(&(*run)[0] + (it - run->begin()),
                              sizeof(RunItem), false);
    }
    if (it != run->end() && it->key == key) {
      if (it->tombstone) return 2;
      out->assign(it->value);
      return 1;
    }
  }
  return 0;
}

bool Lsmt::Get(const EdgeKey& key, std::string* out) {
  std::shared_lock<std::shared_mutex> lock(rw_mu_);
  return Lookup(key, out) == 1;
}

size_t Lsmt::run_count() const {
  std::shared_lock<std::shared_mutex> lock(rw_mu_);
  return runs_.size();
}

size_t Lsmt::memtable_entries() const {
  std::shared_lock<std::shared_mutex> lock(rw_mu_);
  return memtable_count_;
}

}  // namespace livegraph
