// GraphStore over the LSM-tree — RocksDB's stand-in (§7.1: "RocksDB ...
// as representative for ... LSMT").
#ifndef LIVEGRAPH_BASELINES_LSMT_STORE_H_
#define LIVEGRAPH_BASELINES_LSMT_STORE_H_

#include <atomic>
#include <limits>
#include <memory>
#include <string>

#include "baselines/lsmt.h"
#include "baselines/store_interface.h"

namespace livegraph {

class LsmtStore : public GraphStore {
 public:
  LsmtStore();
  explicit LsmtStore(Lsmt::Options options);

  std::string Name() const override { return "LSMT(RocksDB)"; }

  vertex_t AddNode(std::string_view data) override;
  bool GetNode(vertex_t id, std::string* out) override;
  bool UpdateNode(vertex_t id, std::string_view data) override;
  bool DeleteNode(vertex_t id) override;

  bool AddLink(vertex_t src, label_t label, vertex_t dst,
               std::string_view data) override;
  bool UpdateLink(vertex_t src, label_t label, vertex_t dst,
                  std::string_view data) override;
  bool DeleteLink(vertex_t src, label_t label, vertex_t dst) override;
  bool GetLink(vertex_t src, label_t label, vertex_t dst,
               std::string* out) override;
  size_t ScanLinks(vertex_t src, label_t label, const EdgeScanFn& fn) override;
  size_t CountLinks(vertex_t src, label_t label) override;

  std::unique_ptr<GraphReadView> OpenReadView() override;

  Lsmt& lsmt() { return edges_; }

 private:
  Lsmt edges_;
  Lsmt nodes_;
  std::atomic<vertex_t> next_node_{0};
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_LSMT_STORE_H_
