// Store over the LSM-tree — RocksDB's stand-in (§7.1: "RocksDB ... as
// representative for ... LSMT"). The Lsmt is internally synchronized
// (writers exclusive, readers shared, per operation), so sessions carry no
// latch: reads are read-committed, like driving RocksDB without explicit
// snapshots — the weakest consistency of the contenders.
#ifndef LIVEGRAPH_BASELINES_LSMT_STORE_H_
#define LIVEGRAPH_BASELINES_LSMT_STORE_H_

#include <atomic>
#include <memory>
#include <string>

#include "api/store.h"
#include "baselines/lsmt.h"

namespace livegraph {

class LsmtStore : public Store {
 public:
  LsmtStore();
  explicit LsmtStore(Lsmt::Options options);

  std::string Name() const override { return "LSMT(RocksDB)"; }
  StoreTraits Traits() const override {
    // Scans k-way-merge in (src, label, dst) key order, not time order;
    // reads are per-operation consistent only.
    return StoreTraits{};
  }

  std::unique_ptr<StoreTxn> BeginTxn() override;
  std::unique_ptr<StoreReadTxn> BeginReadTxn() override;

  Lsmt& lsmt() { return edges_; }

 private:
  friend class LsmtTxn;

  Lsmt edges_;
  Lsmt nodes_;
  std::atomic<vertex_t> next_node_{0};
  std::atomic<timestamp_t> commit_seq_{0};
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_LSMT_STORE_H_
