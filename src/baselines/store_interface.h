// Common storage interface all engines implement, so the LinkBench and SNB
// drivers run unmodified against LiveGraph and every baseline (the role the
// embedded-store adaptors play in the paper's §7.1 methodology).
#ifndef LIVEGRAPH_BASELINES_STORE_INTERFACE_H_
#define LIVEGRAPH_BASELINES_STORE_INTERFACE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "util/types.h"

namespace livegraph {

/// Callback for adjacency scans: (dst, edge properties). Return false to
/// stop early (e.g. LIMIT queries).
using EdgeScanFn = std::function<bool(vertex_t, std::string_view)>;

/// A consistent multi-operation read view. LiveGraph backs it with an MVCC
/// snapshot (readers never block); lock-based baselines hold their read
/// latch for the view's lifetime — exactly the contrast the paper measures
/// on SNB complex queries (§7.3: "Virtuoso spending over 60% of its CPU
/// time on locks").
class GraphReadView {
 public:
  virtual ~GraphReadView() = default;
  virtual bool GetNode(vertex_t id, std::string* out) const = 0;
  virtual bool GetLink(vertex_t src, label_t label, vertex_t dst,
                       std::string* out) const = 0;
  /// Newest-first scan; returns edges visited.
  virtual size_t ScanLinks(vertex_t src, label_t label,
                           const EdgeScanFn& fn) const = 0;
  virtual size_t CountLinks(vertex_t src, label_t label) const = 0;
};

/// LinkBench-style graph store: nodes with opaque payloads and directed,
/// labelled links with upsert semantics.
class GraphStore {
 public:
  virtual ~GraphStore() = default;
  virtual std::string Name() const = 0;

  // --- Node operations ---
  virtual vertex_t AddNode(std::string_view data) = 0;
  virtual bool GetNode(vertex_t id, std::string* out) = 0;
  virtual bool UpdateNode(vertex_t id, std::string_view data) = 0;
  virtual bool DeleteNode(vertex_t id) = 0;

  // --- Link operations ---
  /// Upsert. Returns true if the link was newly inserted (LinkBench
  /// ADD_LINK semantics).
  virtual bool AddLink(vertex_t src, label_t label, vertex_t dst,
                       std::string_view data) = 0;
  /// Returns false if the link did not exist.
  virtual bool UpdateLink(vertex_t src, label_t label, vertex_t dst,
                          std::string_view data) = 0;
  virtual bool DeleteLink(vertex_t src, label_t label, vertex_t dst) = 0;
  virtual bool GetLink(vertex_t src, label_t label, vertex_t dst,
                       std::string* out) = 0;
  /// Newest-first adjacency scan (LinkBench GET_LINKS_LIST returns the most
  /// recently added links first, §7.2 "storing edges by time order").
  virtual size_t ScanLinks(vertex_t src, label_t label,
                           const EdgeScanFn& fn) = 0;
  virtual size_t CountLinks(vertex_t src, label_t label) = 0;

  /// Multi-operation consistent view for analytics/SNB complex reads.
  virtual std::unique_ptr<GraphReadView> OpenReadView() = 0;
};

}  // namespace livegraph

#endif  // LIVEGRAPH_BASELINES_STORE_INTERFACE_H_
